(* Benchmark & reproduction harness.

   With no arguments this regenerates every figure of the paper at the
   quick scale, runs the ablation suite, and runs the Bechamel
   micro-benchmarks of the partition finders (the paper's Appendix 9
   comparison). Sub-commands restrict the run:

     main.exe figs [--full]       all paper figures
     main.exe fig <id> [--full]   one paper figure (3..10, intro)
     main.exe ablate [<id>]       ablation suite (or one ablation)
     main.exe micro               Bechamel micro-benchmarks only
     main.exe scale               machine-size scaling group only
     main.exe all [--full]        everything (default)

   CSVs are written to ./results/. *)

let results_dir = "results"

let ensure_results_dir () =
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755

let emit_figure fig =
  ensure_results_dir ();
  Format.printf "%a@." Bgl_core.Series.pp_figure fig;
  let path = Bgl_core.Series.save_csv fig ~dir:results_dir in
  Format.printf "  (csv: %s)@.@." path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the partition-finder lineage *)

open Bgl_torus
open Bgl_partition

let busy_grid_at dims ~seed ~fraction =
  let rng = Bgl_stats.Rng.create ~seed in
  let grid = Grid.create dims in
  for node = 0 to Dims.volume dims - 1 do
    if Bgl_stats.Rng.unit_float rng < fraction then Grid.occupy_node grid node ~owner:(node mod 9)
  done;
  grid

let busy_grid ~seed ~fraction = busy_grid_at Dims.bgl ~seed ~fraction

let finder_tests () =
  let grids = [ ("empty", busy_grid ~seed:1 ~fraction:0.); ("half", busy_grid ~seed:1 ~fraction:0.5) ] in
  let volumes = [ 8; 32 ] in
  let tests =
    List.concat_map
      (fun (gname, grid) ->
        List.concat_map
          (fun volume ->
            List.map
              (fun algo ->
                Bechamel.Test.make
                  ~name:(Printf.sprintf "find/%s/v=%d/%s" gname volume (Finder.algo_name algo))
                  (Bechamel.Staged.stage (fun () -> ignore (Finder.find algo grid ~volume))))
              Finder.all_algos)
          volumes)
      grids
  in
  let mfp_tests =
    List.map
      (fun (gname, grid) ->
        Bechamel.Test.make
          ~name:(Printf.sprintf "mfp/%s" gname)
          (Bechamel.Staged.stage (fun () -> ignore (Mfp.volume grid))))
      grids
  in
  let half = busy_grid ~seed:2 ~fraction:0.5 in
  let prefix_tests =
    [
      Bechamel.Test.make ~name:"prefix/build"
        (Bechamel.Staged.stage (fun () -> ignore (Prefix.build half)));
    ]
  in
  Bechamel.Test.make_grouped ~name:"partition" (tests @ mfp_tests @ prefix_tests)

(* The incremental-occupancy layer vs the rebuild-per-event baseline:
   each staged run applies a burst of single-node occupancy events to a
   half-busy grid and re-queries the finder after each one, the way a
   scheduling pass interleaves placements and candidate queries. The
   toggles flip the same nodes back and forth, so grid state is stable
   across Bechamel iterations. *)
let finder_incremental_tests () =
  let toggle grid node =
    match Grid.owner grid node with
    | None -> Grid.occupy_node grid node ~owner:7
    | Some owner -> Grid.vacate_node grid node ~owner
  in
  let nodes = List.init 16 (fun i -> (i * 37) mod Dims.volume Dims.bgl) in
  let rebuild =
    let grid = busy_grid ~seed:4 ~fraction:0.5 in
    Bechamel.Staged.stage (fun () ->
        List.iter
          (fun node ->
            toggle grid node;
            ignore (Finder.find Finder.Prefix grid ~volume:32))
          nodes)
  in
  let incremental =
    let grid = busy_grid ~seed:4 ~fraction:0.5 in
    let cache = Finder.Cache.create grid in
    Bechamel.Staged.stage (fun () ->
        List.iter
          (fun node ->
            toggle grid node;
            Finder.Cache.note_node cache node;
            ignore (Finder.Cache.find cache ~volume:32))
          nodes)
  in
  let requery =
    let grid = busy_grid ~seed:4 ~fraction:0.5 in
    let cache = Finder.Cache.create grid in
    ignore (Finder.Cache.find cache ~volume:32);
    Bechamel.Staged.stage (fun () -> ignore (Finder.Cache.find cache ~volume:32))
  in
  let prefix_full =
    let grid = busy_grid ~seed:4 ~fraction:0.5 in
    Bechamel.Staged.stage (fun () ->
        List.iter
          (fun node ->
            toggle grid node;
            ignore (Prefix.build grid))
          nodes)
  in
  let prefix_incr =
    let grid = busy_grid ~seed:4 ~fraction:0.5 in
    let table = Prefix.track grid in
    Bechamel.Staged.stage (fun () ->
        List.iter
          (fun node ->
            toggle grid node;
            Prefix.note_node table node;
            Prefix.sync table)
          nodes)
  in
  Bechamel.Test.make_grouped ~name:"finder-incremental"
    [
      Bechamel.Test.make ~name:"events-16/rebuild-per-query" rebuild;
      Bechamel.Test.make ~name:"events-16/incremental-cache" incremental;
      Bechamel.Test.make ~name:"requery/memo-hit" requery;
      Bechamel.Test.make ~name:"prefix-16-events/full-build" prefix_full;
      Bechamel.Test.make ~name:"prefix-16-events/incremental-sync" prefix_incr;
    ]

(* Machine-size scaling: the same operations at the paper's 4x4x8
   supernode view up to the full 64x32x32 node torus (512x the
   volume). The claim under test is that per-event costs — a node
   mutation with its summary upkeep, and an exists-style probe that
   the hierarchical summary rejects — stay (near-)flat as the machine
   grows, while the full prefix-table build shows the O(volume) cost
   the summary gate avoids paying per probe. 90% occupancy makes a
   quarter-machine partition geometrically impossible, so the
   infeasible probe exercises the reject path the scheduler hits
   whenever the queue holds jobs bigger than any surviving hole. *)
let torus_scale_tests () =
  let sizes =
    [
      ("4x4x8", Dims.bgl);
      ("8x8x16", Dims.make 8 8 16);
      ("16x16x32", Dims.make 16 16 32);
      ("64x32x32", Dims.bgl_full);
    ]
  in
  let tests =
    List.concat_map
      (fun (name, d) ->
        let volume = Dims.volume d in
        let grid = busy_grid_at d ~seed:5 ~fraction:0.9 in
        let nodes = List.init 64 (fun i -> i * 131 mod volume) in
        let toggle node =
          match Grid.owner grid node with
          | None -> Grid.occupy_node grid node ~owner:7
          | Some owner -> Grid.vacate_node grid node ~owner
        in
        let cache = Finder.Cache.create grid in
        ignore (Finder.Cache.exists_free cache ~volume:2);
        [
          Bechamel.Test.make
            ~name:(Printf.sprintf "mutate-64/%s" name)
            (Bechamel.Staged.stage (fun () -> List.iter toggle nodes));
          Bechamel.Test.make
            ~name:(Printf.sprintf "probe-infeasible/%s" name)
            (Bechamel.Staged.stage (fun () ->
                 ignore (Finder.exists_free grid ~volume:(max 8 (volume / 16)))));
          Bechamel.Test.make
            ~name:(Printf.sprintf "probe-feasible-cached/%s" name)
            (Bechamel.Staged.stage (fun () -> ignore (Finder.Cache.exists_free cache ~volume:2)));
          Bechamel.Test.make
            ~name:(Printf.sprintf "prefix-build/%s" name)
            (Bechamel.Staged.stage (fun () -> ignore (Prefix.build grid)));
          Bechamel.Test.make
            ~name:(Printf.sprintf "grid-copy/%s" name)
            (Bechamel.Staged.stage (fun () -> ignore (Grid.copy grid)));
        ])
      sizes
  in
  Bechamel.Test.make_grouped ~name:"torus-scale" tests

(* Counted enumeration vs the materialising path it replaced: capped
   candidate queries over a prebuilt table on near-empty machines —
   the regime where the free-box population is maximal and the old
   path had to materialise all of it to subsample 24. The count-only
   row isolates the first pass; select adds the rank walk. *)
let finder_counted_tests () =
  let sizes =
    [ ("4x4x8", Dims.bgl); ("8x8x16", Dims.make 8 8 16); ("64x32x32", Dims.bgl_full) ]
  in
  let cap_list cap boxes =
    let n = List.length boxes in
    if n <= cap then boxes
    else
      let arr = Array.of_list boxes in
      List.init cap (fun i -> arr.(i * n / cap))
  in
  let tests =
    List.concat_map
      (fun (name, d) ->
        (* One job-like box holding an eighth of the machine: the
           scheduler's steady near-empty state. Clustered occupancy is
           the regime that matters — scattered single nodes would
           contaminate every row and defeat the ribbon fast path,
           degrading counted to materialise-cost parity. *)
        let grid = Grid.create d in
        Grid.occupy grid
          (Box.make (Coord.make 0 0 0)
             (Shape.make (max 1 (d.nx / 2)) (max 1 (d.ny / 2)) (max 1 (d.nz / 2))))
          ~owner:1;
        let table = Prefix.build grid in
        let volume = max 8 (Dims.volume d / 256) in
        [
          Bechamel.Test.make
            ~name:(Printf.sprintf "count/%s" name)
            (Bechamel.Staged.stage (fun () -> ignore (Finder.count_with table grid ~volume)));
          Bechamel.Test.make
            ~name:(Printf.sprintf "select-24/%s" name)
            (Bechamel.Staged.stage (fun () ->
                 ignore (Finder.select_with table grid ~volume ~cap:24)));
          Bechamel.Test.make
            ~name:(Printf.sprintf "materialise-cap-24/%s" name)
            (Bechamel.Staged.stage (fun () ->
                 ignore (cap_list 24 (Finder.find_with table grid ~volume))));
        ])
      sizes
  in
  Bechamel.Test.make_grouped ~name:"finder-counted" tests

let event_queue_tests () =
  Bechamel.Test.make_grouped ~name:"engine"
    [
      Bechamel.Test.make ~name:"event-queue/push-pop-1k"
        (Bechamel.Staged.stage (fun () ->
             let q = Bgl_sim.Event_queue.create () in
             for i = 0 to 999 do
               Bgl_sim.Event_queue.push q ~time:(float_of_int ((i * 7919) mod 1000)) i
             done;
             while not (Bgl_sim.Event_queue.is_empty q) do
               ignore (Bgl_sim.Event_queue.pop q)
             done));
    ]

(* Observability overhead: the acceptance bar is that instrumented hot
   paths cost (essentially) nothing while spans are disabled and the
   registry is the noop one. Each staged closure pins the global state
   it needs, so groups can run in any order. *)
let obs_tests () =
  let half = busy_grid ~seed:2 ~fraction:0.5 in
  let finder_with_spans on =
    Bechamel.Staged.stage (fun () ->
        Bgl_obs.Span.set_enabled on;
        ignore (Finder.find Finder.Prefix half ~volume:32);
        Bgl_obs.Span.set_enabled false)
  in
  let queue_with_spans on =
    Bechamel.Staged.stage (fun () ->
        Bgl_obs.Span.set_enabled on;
        let q = Bgl_sim.Event_queue.create () in
        for i = 0 to 999 do
          Bgl_sim.Event_queue.push q ~time:(float_of_int ((i * 7919) mod 1000)) i
        done;
        while not (Bgl_sim.Event_queue.is_empty q) do
          ignore (Bgl_sim.Event_queue.pop q)
        done;
        Bgl_obs.Span.set_enabled false)
  in
  let noop_counter = Bgl_obs.Registry.counter Bgl_obs.Registry.noop "bench_total" in
  let live_reg = Bgl_obs.Registry.create () in
  let live_counter = Bgl_obs.Registry.counter live_reg "bench_total" in
  let inc_1k c =
    Bechamel.Staged.stage (fun () ->
        for _ = 1 to 1000 do
          Bgl_obs.Registry.inc c
        done)
  in
  Bechamel.Test.make_grouped ~name:"obs"
    [
      Bechamel.Test.make ~name:"find/half/v=32/prefix/spans-off" (finder_with_spans false);
      Bechamel.Test.make ~name:"find/half/v=32/prefix/spans-on" (finder_with_spans true);
      Bechamel.Test.make ~name:"event-queue/push-pop-1k/spans-off" (queue_with_spans false);
      Bechamel.Test.make ~name:"event-queue/push-pop-1k/spans-on" (queue_with_spans true);
      Bechamel.Test.make ~name:"counter/inc-1k/noop" (inc_1k noop_counter);
      Bechamel.Test.make ~name:"counter/inc-1k/live" (inc_1k live_counter);
    ]

(* Domain-pool overhead/scaling on a CPU-bound kernel. On a single-core
   host d>1 only measures the spawn+join cost; on a multi-core one it
   shows the scaling headroom of parallel sweeps. *)
let parallel_tests () =
  let half = busy_grid ~seed:3 ~fraction:0.5 in
  let items = Array.make 16 half in
  let map_d d =
    Bechamel.Test.make
      ~name:(Printf.sprintf "pool/map-mfp-16/d=%d" d)
      (Bechamel.Staged.stage (fun () ->
           ignore (Bgl_parallel.Pool.map ~domains:d (fun g -> Mfp.volume g) items)))
  in
  Bechamel.Test.make_grouped ~name:"parallel" [ map_d 1; map_d 2; map_d 4 ]

(* Service-layer kernels: the fixed per-request costs bgl-served pays
   before any simulation runs — frame codec round-trip over a
   socketpair, request parse + fingerprint, admission handoff, memo
   probe. End-to-end daemon latency and throughput under real load
   are scripted, not staged (EXPERIMENTS.md "Service"). *)
let serve_tests () =
  let module Serve = Bgl_serve in
  let wr, rd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let reader = Serve.Frame.reader rd in
  let frame_roundtrip payload =
    Bechamel.Staged.stage (fun () ->
        Serve.Frame.write wr payload;
        match Serve.Frame.read reader with
        | Ok (Some _) -> ()
        | Ok None | Error _ -> assert false)
  in
  let blob = Printf.sprintf {|{"blob":%S}|} (String.make 4096 'x') in
  let parse_fingerprint payload =
    Bechamel.Staged.stage (fun () ->
        match Serve.Protocol.parse payload with
        | Ok req -> ignore (Serve.Protocol.fingerprint req)
        | Error _ -> assert false)
  in
  let sim_req = {|{"op":"sim","algo":"mfp","jobs":500,"seed":11,"failures":2.0}|} in
  let adm = Serve.Admission.create ~capacity:64 in
  let memo = Serve.Memo.create ~capacity:64 in
  Serve.Memo.add memo "hot" blob;
  Bechamel.Test.make_grouped ~name:"serve"
    [
      Bechamel.Test.make ~name:"frame/roundtrip-ping" (frame_roundtrip {|{"op":"ping"}|});
      Bechamel.Test.make ~name:"frame/roundtrip-4k" (frame_roundtrip blob);
      Bechamel.Test.make ~name:"protocol/parse+fingerprint-sim" (parse_fingerprint sim_req);
      Bechamel.Test.make ~name:"admission/submit-take-16"
        (Bechamel.Staged.stage (fun () ->
             for i = 0 to 15 do
               ignore (Serve.Admission.submit adm i)
             done;
             for _ = 0 to 15 do
               ignore (Serve.Admission.take adm)
             done));
      Bechamel.Test.make ~name:"memo/find-hit"
        (Bechamel.Staged.stage (fun () -> ignore (Serve.Memo.find memo "hot")));
    ]

let run_micro_groups ?cfg ~banner groups =
  Format.printf "=== %s ===@." banner;
  let tests = Bechamel.Test.make_grouped ~name:"bgl" groups in
  let cfg =
    match cfg with
    | Some c -> c
    | None -> Bechamel.Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.5) ()
  in
  let raw = Bechamel.Benchmark.all cfg [ Bechamel.Toolkit.Instance.monotonic_clock ] tests in
  let ols = Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |] in
  let results = Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name res acc ->
        match Bechamel.Analyze.OLS.estimates res with
        | Some (ns :: _) -> (name, ns) :: acc
        | Some [] | None -> acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (name, ns) -> Format.printf "%-44s %12.1f ns/run@." name ns) rows;
  Format.printf "@."

let run_micro () =
  run_micro_groups
    ~banner:"micro: partition finders (Appendix 9 lineage), engine kernels, obs overhead"
    [
      finder_tests ();
      finder_incremental_tests ();
      event_queue_tests ();
      obs_tests ();
      parallel_tests ();
      serve_tests ();
    ]

(* The scaling group keeps tens of megabytes of grid state live, so
   bechamel's default per-sample GC stabilisation (a compaction each
   time, not charged against the quota) would dominate the wall clock;
   run it unstabilised with a smaller sample budget instead. *)
let run_scale_micro () =
  run_micro_groups
    ~cfg:(Bechamel.Benchmark.cfg ~stabilize:false ~limit:300 ~quota:(Bechamel.Time.second 0.25) ())
    ~banner:"micro: machine-size scaling (4x4x8 .. 64x32x32)"
    [ torus_scale_tests (); finder_counted_tests () ]

(* ------------------------------------------------------------------ *)

let scale_of_args args =
  if List.mem "--full" args then Bgl_core.Figures.full else Bgl_core.Figures.quick

(* [--jobs N] must come out of the argument list before the positional
   split below, or its value would be read as a sub-command. *)
let parse_jobs args =
  let rec go acc = function
    | [] -> (1, List.rev acc)
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some 0 -> (Bgl_parallel.Pool.recommended (), List.rev_append acc rest)
        | Some d when d > 0 -> (d, List.rev_append acc rest)
        | Some _ | None ->
            Format.eprintf "--jobs expects a non-negative integer (got %S)@." n;
            exit 1)
    | [ "--jobs" ] ->
        Format.eprintf "--jobs expects a value@.";
        exit 1
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

let run_figs ~domains scale =
  Format.printf "=== paper figures (%d jobs/run, %d seeds) ===@.@." scale.Bgl_core.Figures.n_jobs
    (List.length scale.Bgl_core.Figures.seeds);
  List.iter
    (fun (_, f) -> List.iter emit_figure (Bgl_core.Figures.produce ~domains f scale))
    Bgl_core.Figures.producers

let run_one_fig ~domains scale id =
  match Bgl_core.Figures.by_id id with
  | Some f -> List.iter emit_figure (Bgl_core.Figures.produce ~domains f scale)
  | None ->
      Format.eprintf "unknown figure %S (try 3..10 or intro)@." id;
      exit 1

let run_baseline ~domains scale =
  List.iter emit_figure
    (Bgl_core.Figures.produce ~domains (fun scale -> Bgl_core.Baseline.all scale) scale)

let run_ablations ~domains scale = function
  | None ->
      List.iter emit_figure
        (Bgl_core.Figures.produce ~domains (fun scale -> Bgl_core.Ablations.all scale) scale)
  | Some id -> (
      match Bgl_core.Ablations.by_id id with
      | Some f ->
          List.iter emit_figure
            (Bgl_core.Figures.produce ~domains (fun scale -> [ f scale ]) scale)
      | None ->
          Format.eprintf "unknown ablation %S@." id;
          exit 1)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let t0 = Unix.gettimeofday () in
  let domains, args = parse_jobs args in
  let positional =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
  in
  (match positional with
  | [] | [ "all" ] ->
      run_micro ();
      run_figs ~domains (scale_of_args args);
      run_baseline ~domains (scale_of_args args);
      run_ablations ~domains (scale_of_args args) None
  | [ "micro" ] -> run_micro ()
  | [ "scale" ] -> run_scale_micro ()
  | [ "serve" ] ->
      run_micro_groups ~banner:"micro: bgl-served request-path kernels" [ serve_tests () ]
  | [ "figs" ] -> run_figs ~domains (scale_of_args args)
  | [ "fig"; id ] -> run_one_fig ~domains (scale_of_args args) id
  | [ "ablate" ] -> run_ablations ~domains (scale_of_args args) None
  | [ "ablate"; id ] -> run_ablations ~domains (scale_of_args args) (Some id)
  | [ "baseline" ] -> run_baseline ~domains (scale_of_args args)
  | _ ->
      Format.eprintf
        "usage: main.exe [all|micro|scale|serve|figs|fig <id>|ablate [<id>]|baseline] [--full] [--jobs \
         N]@.";
      exit 1);
  Format.printf "total wall time: %.1f s@." (Unix.gettimeofday () -. t0)
