type algo =
  | First_fit
  | Random_fit
  | Fault_oblivious
  | Balancing of { confidence : float }
  | Tie_breaking of { accuracy : float }
  | Safest
  | Balancing_history of { half_life : float; threshold : float }
  | Tie_breaking_history of { half_life : float; threshold : float }

type t = {
  profile : Bgl_workload.Profile.t;
  n_jobs : int;
  load : float;
  failures_paper : int;
  algo : algo;
  seed : int;
  config : Bgl_sim.Config.t;
  combine : [ `Product | `Max ];
  false_positive : float;
  failure_amplification : float;
  failure_spec_of : (span:float -> volume:int -> n_events:int -> seed:int -> Bgl_failure.Generator.spec);
  variant_tag : string;
}

let make ?(n_jobs = 2000) ?(load = 1.0) ?failures_paper ?(seed = 11)
    ?(config = Bgl_sim.Config.default) ?dims ?(combine = `Product) ?(false_positive = 0.)
    ?(failure_amplification = 2.0) ~(profile : Bgl_workload.Profile.t) algo =
  let config =
    match dims with None -> config | Some d -> { config with Bgl_sim.Config.dims = d }
  in
  {
    profile;
    n_jobs;
    load;
    failures_paper = Option.value failures_paper ~default:profile.paper_failures;
    algo;
    seed;
    config;
    combine;
    false_positive;
    failure_amplification;
    failure_spec_of = Bgl_failure.Generator.default;
    variant_tag = "";
  }

let injected_failures t =
  let ratio = float_of_int t.n_jobs /. float_of_int t.profile.source_jobs in
  int_of_float
    (Float.round (float_of_int t.failures_paper *. ratio *. t.failure_amplification))

let algo_label = function
  | First_fit -> "first-fit"
  | Random_fit -> "random-fit"
  | Fault_oblivious -> "fault-oblivious"
  | Balancing { confidence } -> Printf.sprintf "balancing(a=%g)" confidence
  | Tie_breaking { accuracy } -> Printf.sprintf "tie-breaking(a=%g)" accuracy
  | Safest -> "safest"
  | Balancing_history { half_life; threshold } ->
      Printf.sprintf "balancing-history(hl=%g,th=%g)" half_life threshold
  | Tie_breaking_history { half_life; threshold } ->
      Printf.sprintf "tie-breaking-history(hl=%g,th=%g)" half_life threshold

(* One parser for every textual algorithm spec (bgl-sim's --algo, the
   service protocol's "algo" field), so the two front-ends can never
   drift apart. *)
let algo_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let param prefix =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      float_of_string_opt (String.sub s plen (String.length s - plen))
    else None
  in
  match s with
  | "first-fit" -> Ok First_fit
  | "random" | "random-fit" -> Ok Random_fit
  | "safest" -> Ok Safest
  | "mfp" | "oblivious" | "fault-oblivious" -> Ok Fault_oblivious
  | _ -> (
      match param "balancing:" with
      | Some confidence -> Ok (Balancing { confidence })
      | None -> (
          match param "tie-breaking:" with
          | Some accuracy -> Ok (Tie_breaking { accuracy })
          | None -> (
              match param "history:" with
              | Some half_life_hours ->
                  Ok (Balancing_history { half_life = half_life_hours *. 3600.; threshold = 0.5 })
              | None ->
                  Error
                    (Printf.sprintf
                       "unknown algorithm %S (first-fit, random, mfp, safest, balancing:<a>, \
                        tie-breaking:<a>, history:<half-life-hours>)" s))))

let label t =
  let combine = match t.combine with `Product -> "prod" | `Max -> "max" in
  (* The config is plain data, so a structural digest distinguishes
     scenarios that differ only in engine settings. *)
  let config_digest = Digest.to_hex (Digest.string (Marshal.to_string t.config [])) in
  Printf.sprintf "%s c=%g f=%d(x%g) %s seed=%d n=%d comb=%s fp=%g cfg=%s%s" t.profile.name
    t.load t.failures_paper t.failure_amplification (algo_label t.algo) t.seed t.n_jobs combine
    t.false_positive
    (String.sub config_digest 0 8)
    (if t.variant_tag = "" then "" else " tag=" ^ t.variant_tag)

(* Every stochastic subsystem of a run draws from its own stream,
   derived from the scenario seed by [Rng.split] under a subsystem
   label. Two properties matter:

   - Determinism in the scenario value alone: no stream is shared
     between scenarios, so sweep cells can run in any order — or on
     any domain of a parallel pool — and stay bit-identical to a
     sequential sweep.
   - The labels name the {e subsystem}, not the scenario: scenarios
     differing only in algorithm replay the same workload and failure
     trace, which keeps cross-algorithm comparisons paired. *)
let subseed t label =
  let master = Bgl_stats.Rng.create ~seed:t.seed in
  Int64.to_int (Int64.shift_right_logical (Bgl_stats.Rng.bits64 (Bgl_stats.Rng.split master ~label)) 2)

let synthetic_failures ~log t =
  let volume = Bgl_torus.Dims.volume t.config.dims in
  let n_events = injected_failures t in
  if n_events = 0 then Bgl_trace.Failure_log.make ~name:"no-failures" []
  else
    (* Cover the whole simulated makespan, which can overrun the log
       span under load: failures keep arriving while the backlog
       drains. *)
    let span = Bgl_trace.Job_log.span log *. 1.5 in
    Bgl_failure.Generator.generate
      (t.failure_spec_of ~span ~volume ~n_events ~seed:(subseed t "failures"))

let placement t ~index =
  let predictor_seed = subseed t "predictor" in
  let policy =
    match t.algo with
    | First_fit -> Bgl_sched.Placement.first_fit
    | Random_fit -> Bgl_sched.Placement.random ~seed:predictor_seed
    | Fault_oblivious -> Bgl_sched.Placement.mfp
    | Safest ->
        Bgl_sched.Placement.safest ~predictor:(Bgl_predict.Predictor.oracle index) ()
    | Balancing_history { half_life; threshold } ->
        Bgl_sched.Placement.balancing ~combine:t.combine
          ~predictor:(Bgl_predict.History.ewma ~half_life ~threshold index)
          ()
    | Tie_breaking_history { half_life; threshold } ->
        Bgl_sched.Placement.tie_breaking
          ~predictor:(Bgl_predict.History.ewma ~half_life ~threshold index)
          ()
    | Balancing { confidence } ->
        Bgl_sched.Placement.balancing ~combine:t.combine
          ~predictor:(Bgl_predict.Predictor.balancing ~confidence index)
          ()
    | Tie_breaking { accuracy } ->
        let predictor =
          if t.false_positive > 0. then
            Bgl_predict.Predictor.noisy ~accuracy ~false_positive:t.false_positive
              ~seed:predictor_seed index
          else Bgl_predict.Predictor.tie_breaking ~accuracy ~seed:predictor_seed index
        in
        Bgl_sched.Placement.tie_breaking ~predictor ()
  in
  policy

let run_on ?(run_tag = "") ~log ~failures t =
  let log = Bgl_trace.Job_log.scale_runtime log ~c:t.load in
  let index = Bgl_predict.Failure_index.of_log failures in
  let policy = placement t ~index in
  (* The trace run id is the scenario-label digest — the same key the
     sweep journal files cells under, so trace sections and journal
     records cross-reference directly. Payload-driven runs extend the
     label with [run_tag] (the request fingerprint): the label alone
     does not capture inline log contents, and two requests differing
     only in payload must not share a run id. *)
  Bgl_sim.Engine.run ~config:t.config ~policy ~log ~failures
    ~run_id:(Digest.to_hex (Digest.string (label t ^ run_tag)))
    ~seed:t.seed ()

let run t =
  let volume = Bgl_torus.Dims.volume t.config.dims in
  let log =
    Bgl_workload.Synthetic.generate
      { profile = t.profile; n_jobs = t.n_jobs; max_nodes = volume; seed = subseed t "workload" }
  in
  let failures = synthetic_failures ~log:(Bgl_trace.Job_log.scale_runtime log ~c:t.load) t in
  run_on ~log ~failures t
