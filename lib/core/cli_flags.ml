type format = Human | Jsonl

let format_conv =
  let parse = function
    | "human" -> Ok Human
    | "jsonl" | "json" -> Ok Jsonl
    | s -> Error (`Msg (Printf.sprintf "unknown format %S (human, jsonl)" s))
  in
  let print ppf f = Format.pp_print_string ppf (match f with Human -> "human" | Jsonl -> "jsonl") in
  Cmdliner.Arg.conv (parse, print)

let format =
  Cmdliner.Arg.(
    value
    & opt format_conv Human
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Report format: human-readable lines, or jsonl (one JSON object per line, for \
              tooling).")

let quiet =
  Cmdliner.Arg.(
    value
    & flag
    & info [ "quiet"; "q" ]
        ~doc:"Suppress informational notes (skipped/malformed trace lines, scan summaries), for \
              script use. Errors still print.")

let dims =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "dims" ] ~docv:"XxYxZ"
        ~doc:"Machine size as three torus dimensions, e.g. 4x4x8 (the paper's supernode view, \
              the default) or 64x32x32 (the full BG/L node torus). Comma separators also \
              accepted.")

let quiet_state = Atomic.make false
let set_quiet b = Atomic.set quiet_state b
let quiet_enabled () = Atomic.get quiet_state

let notef fmt =
  if Atomic.get quiet_state then Format.ifprintf Format.err_formatter fmt
  else Format.eprintf fmt

let usage_failf fmt = Bgl_resilience.Error.raise_usagef fmt

let parse_dims ~default = function
  | None -> default
  | Some s -> (
      match Bgl_torus.Dims.of_string s with
      | Ok d -> d
      | Error msg -> usage_failf "--dims %s" msg)

let open_out_or_fail path =
  try open_out path
  with Sys_error detail -> raise (Bgl_resilience.Error.Cli (Io { path; detail }))

let write_registry ~path reg =
  let oc = open_out_or_fail path in
  output_string oc
    (if Filename.check_suffix path ".csv" then Bgl_obs.Registry.to_csv reg
     else Bgl_obs.Registry.to_prometheus reg);
  close_out oc
