(** Schedule timelines reconstructed from a {!Bgl_sim.Recorder} trace.

    Turns the raw event stream into per-job segments (which partition a
    job held, from when to when, and how the tenancy ended) and renders
    machine-utilisation strips — the textual equivalent of the Gantt
    charts scheduling papers draw. Used by `bgl-sim --timeline` and
    `examples/schedule_forensics.exe`. *)

open Bgl_torus

type ending =
  | Finished
  | Killed of int  (** the node whose failure ended the tenancy *)
  | Migrated
  | Truncated  (** the trace ended while the job was still running *)

type segment = {
  job : int;
  box : Box.t;
  started : float;
  ended : float;
  ending : ending;
}

val segments : Bgl_sim.Recorder.t -> segment list
(** One segment per (job, tenancy), in start order. A kill, migration
    or finish closes the current tenancy of that job. *)

val busy_profile : segment list -> buckets:int -> span:float -> float array
(** Fraction of node-time covered by segments in each of [buckets]
    equal slices of [\[0, span\]], with node counts from each segment's
    box volume, normalised by [volume]... the caller supplies the
    machine volume through {!render}; this returns raw node-seconds per
    bucket. *)

val render : segment list -> volume:int -> width:int -> string
(** ASCII utilisation strip: one character per time slice, ' ' (idle)
    through '#' (full). Empty segments render an empty strip. *)

val utilisation_of_segments : segment list -> volume:int -> float
(** Busy node-seconds over volume × observed span; 0 for no segments. *)
