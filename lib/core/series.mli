(** Figure data: labelled series of (x, y) points plus rendering to
    aligned text tables and CSV — the harness's answer to the paper's
    plots. *)

type series = { label : string; points : (float * float) list }

type figure = {
  id : string;  (** e.g. "fig3" *)
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  notes : string list;  (** provenance and caveats printed with the data *)
}

val series : label:string -> (float * float) list -> series

val figure :
  id:string -> title:string -> xlabel:string -> ylabel:string -> ?notes:string list ->
  series list -> figure

val xs : figure -> float list
(** Sorted union of x values across all series. *)

val value_at : series -> float -> float option

val pp_figure : Format.formatter -> figure -> unit
(** Aligned table: one row per x, one column per series. *)

val pp_chart : ?height:int -> Format.formatter -> figure -> unit
(** Terminal chart: each series as a braille-free ASCII row of bars
    scaled to the figure's global y range, with the y extremes printed.
    [height] (default 8) is the number of glyph levels used. *)

val to_csv : figure -> string

val save_csv : figure -> dir:string -> string
(** Write [<dir>/<id>.csv]; returns the path. *)
