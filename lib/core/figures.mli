(** Reproduction of every data figure in the paper's evaluation
    (Section 7). Each function regenerates one plot as a
    {!Series.figure}; {!all} runs the full set. Sub-plots (a)/(b)/(c)
    of a paper figure are emitted as separate figures with suffixed
    ids.

    X axes use the paper's units: failure counts on the paper's scale
    (converted internally to preserve failures-per-job, see
    {!Scenario}), prediction confidence/accuracy in [0, 1], and the
    load coefficients c = 1.0 / 1.2. *)

type scale = {
  n_jobs : int;  (** synthetic jobs per simulation *)
  seeds : int list;  (** replications averaged per point *)
  a_values : float list;  (** confidence/accuracy grid *)
  fail_fracs : float list;  (** fractions of the per-log max failure count *)
}

val quick : scale
(** 1200 jobs, one seed: minutes for the full set. The default for
    [bench/main.exe]. *)

val full : scale
(** 3000 jobs, three seeds, the paper's full 0.1-step grids. *)

val intro_claim : scale -> Series.figure
(** Section 1's motivating number: slowdown increase of a
    fault-oblivious scheduler at the 1000-failure rate (paper: ≈70%). *)

val fig3 : scale -> Series.figure

val fig4 : scale -> Series.figure

val fig5 : scale -> Series.figure list
(** (a) c=1.0, (b) c=1.2 *)

val fig6 : scale -> Series.figure list
(** (a) SDSC, (b) NASA, (c) LLNL *)

val fig7 : scale -> Series.figure list

val fig8 : scale -> Series.figure list

val fig9 : scale -> Series.figure list

val fig10 : scale -> Series.figure list

val by_id : string -> (scale -> Series.figure list) option
(** Lookup by ["3"], ["fig3"], ["intro"], ... *)

val all : scale -> Series.figure list
(** Every figure, in paper order. *)

val producers : (string * (scale -> Series.figure list)) list
(** The figures as named thunks, in paper order — lets drivers render
    each figure as soon as it is computed. *)

val cached_report : Scenario.t -> Bgl_sim.Metrics.report
(** Run a scenario through the shared memo table (used by the ablation
    suite so overlapping sweep points are simulated once). *)

val clear_cache : unit -> unit
(** Figures share scenario runs through a memo table; clear it to force
    re-simulation (e.g. between scales in one process). *)
