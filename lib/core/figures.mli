(** Reproduction of every data figure in the paper's evaluation
    (Section 7). Each function regenerates one plot as a
    {!Series.figure}; {!all} runs the full set. Sub-plots (a)/(b)/(c)
    of a paper figure are emitted as separate figures with suffixed
    ids.

    X axes use the paper's units: failure counts on the paper's scale
    (converted internally to preserve failures-per-job, see
    {!Scenario}), prediction confidence/accuracy in [0, 1], and the
    load coefficients c = 1.0 / 1.2. *)

type scale = {
  n_jobs : int;  (** synthetic jobs per simulation *)
  seeds : int list;  (** replications averaged per point *)
  a_values : float list;  (** confidence/accuracy grid *)
  fail_fracs : float list;  (** fractions of the per-log max failure count *)
  dims : Bgl_torus.Dims.t;
      (** machine size every scenario runs on (the [--dims] flag);
          {!quick}/{!full} default to the paper's 4×4×8 supernode
          torus *)
}

val quick : scale
(** 1200 jobs, one seed: minutes for the full set. The default for
    [bench/main.exe]. *)

val full : scale
(** 3000 jobs, three seeds, the paper's full 0.1-step grids. *)

val intro_claim : scale -> Series.figure
(** Section 1's motivating number: slowdown increase of a
    fault-oblivious scheduler at the 1000-failure rate (paper: ≈70%). *)

val fig3 : scale -> Series.figure

val fig4 : scale -> Series.figure

val fig5 : scale -> Series.figure list
(** (a) c=1.0, (b) c=1.2 *)

val fig6 : scale -> Series.figure list
(** (a) SDSC, (b) NASA, (c) LLNL *)

val fig7 : scale -> Series.figure list

val fig8 : scale -> Series.figure list

val fig9 : scale -> Series.figure list

val fig10 : scale -> Series.figure list

val by_id : string -> (scale -> Series.figure list) option
(** Lookup by ["3"], ["fig3"], ["intro"], ... *)

val all : ?domains:int -> scale -> Series.figure list
(** Every figure, in paper order. [domains] > 1 simulates the sweep
    cells on that many OCaml domains; the output is bit-identical to
    [domains = 1] (default) because scenario runs are deterministic in
    the scenario value and the shared memo cache is only written from
    the calling domain. *)

val produce : ?domains:int -> (scale -> Series.figure list) -> scale -> Series.figure list
(** [produce ~domains f scale] evaluates a figure producer with its
    scenario cells pre-simulated on [domains] domains (a first pass
    replays [f] with simulation stubbed out to discover the cells,
    then [f] re-runs against the warmed cache). [~domains:1] is just
    [f scale]. *)

val producers : (string * (scale -> Series.figure list)) list
(** The figures as named thunks, in paper order — lets drivers render
    each figure as soon as it is computed. *)

val cached_report : Scenario.t -> Bgl_sim.Metrics.report
(** Run a scenario through the shared memo table (used by the ablation
    suite so overlapping sweep points are simulated once). *)

val cells_of : (scale -> Series.figure list) -> scale -> Scenario.t array
(** The distinct scenario cells [f scale] would simulate, discovered
    by the collect pass (simulation stubbed out), minus any already in
    the memo table — the unit of work {!Sweep} journals and
    supervises. *)

val install_report : Scenario.t -> Bgl_sim.Metrics.report -> unit
(** Install a report in the memo table, so a subsequent producer run
    replays it instead of simulating (journal resume, prefetched
    parallel cells). Call from the main domain only. *)

val placeholder_report : Bgl_sim.Metrics.report
(** The all-zero report the collect pass answers with; {!Sweep}
    installs it for quarantined cells so a degraded sweep can still
    emit its remaining figures. *)

val clear_cache : unit -> unit
(** Figures share scenario runs through a memo table; clear it to force
    re-simulation (e.g. between scales in one process). *)
