(** One fully specified simulation run: workload profile, load scale,
    failure intensity, scheduling algorithm, seed. This is the unit the
    figure sweeps iterate over.

    Failure counts are expressed on the {e paper's} x-axis scale (the
    counts Section 6.2 pairs with the multi-month archive logs) and
    converted to injected counts by the ratio of our synthetic job
    count to the source log's job count, preserving failures-per-job —
    the coupling that actually determines how much work failures
    destroy. See DESIGN.md. *)

type algo =
  | First_fit  (** cheapest baseline; not in the paper *)
  | Random_fit  (** uniform candidate choice; lower-bound baseline *)
  | Fault_oblivious  (** Krevat's MFP heuristic, no prediction (a = 0) *)
  | Balancing of { confidence : float }  (** Section 5.2.1 *)
  | Tie_breaking of { accuracy : float }  (** Section 5.2.2 *)
  | Safest  (** minimise P_f only, with an oracle; stability extreme *)
  | Balancing_history of { half_life : float; threshold : float }
      (** the balancing algorithm driven by the honest
          {!Bgl_predict.History.ewma} predictor instead of the paper's
          simulated-confidence one *)
  | Tie_breaking_history of { half_life : float; threshold : float }

type t = {
  profile : Bgl_workload.Profile.t;
  n_jobs : int;
  load : float;  (** the paper's load-scale coefficient c *)
  failures_paper : int;  (** failure count on the paper's scale *)
  algo : algo;
  seed : int;
  config : Bgl_sim.Config.t;
  combine : [ `Product | `Max ];  (** P_f combination for balancing *)
  false_positive : float;  (** tie-breaking predictor extension; 0 = paper *)
  failure_amplification : float;
      (** extra multiplier on the scaled failure count (default 2.0):
          our synthetic logs are ~20x shorter than the archive logs, so
          at a faithful failures-per-job ratio the per-point kill count
          is too small for stable statistics; the amplification doubles
          the intensity to keep every sweep point statistically
          meaningful. Recorded in EXPERIMENTS.md. *)
  failure_spec_of : (span:float -> volume:int -> n_events:int -> seed:int -> Bgl_failure.Generator.spec);
      (** how failure traces are drawn; default {!Bgl_failure.Generator.default} *)
  variant_tag : string;
      (** free-form marker distinguishing otherwise-identical scenarios
          that differ in [failure_spec_of] (functions cannot be
          compared); included in {!label} *)
}

val make :
  ?n_jobs:int ->
  ?load:float ->
  ?failures_paper:int ->
  ?seed:int ->
  ?config:Bgl_sim.Config.t ->
  ?dims:Bgl_torus.Dims.t ->
  ?combine:[ `Product | `Max ] ->
  ?false_positive:float ->
  ?failure_amplification:float ->
  profile:Bgl_workload.Profile.t ->
  algo ->
  t
(** Defaults: 2000 jobs, load 1.0, the profile's paper failure count,
    seed 11, {!Bgl_sim.Config.default}, [`Product], no false
    positives. [dims] overrides the machine size of [config] — the
    sweep drivers thread {!Figures.scale}'s dims through it, and the
    config digest in {!label} keys journal cells on it. *)

val injected_failures : t -> int
(** The failure count actually injected after job-count scaling. *)

val algo_label : algo -> string

val algo_of_string : string -> (algo, string) result
(** Parse a textual algorithm spec — ["first-fit"], ["random"],
    ["mfp"], ["safest"], ["balancing:<a>"], ["tie-breaking:<a>"],
    ["history:<half-life-hours>"] — the one parser behind bgl-sim's
    [--algo] and the service protocol's ["algo"] field. *)

val label : t -> string

val run : t -> Bgl_sim.Engine.outcome
(** Deterministic in the scenario value: every stochastic subsystem
    (workload, failure trace, predictor) draws from its own stream
    split from [seed] under a subsystem label, so no state is shared
    between runs — sweep cells may execute in any order, on any
    domain, with identical results. Scenarios differing only in
    [algo] see the same workload and failure trace (paired
    comparisons). *)

val run_on :
  ?run_tag:string ->
  log:Bgl_trace.Job_log.t ->
  failures:Bgl_trace.Failure_log.t ->
  t ->
  Bgl_sim.Engine.outcome
(** Run the scenario's algorithm/config on an explicit workload and
    failure trace (an SWF payload, a replayed archive log) instead of
    the synthetic generators. The log's runtimes are scaled by the
    scenario's load coefficient first; the predictor draws from the
    scenario's own stream as in {!run}. [run_tag] (e.g. a request
    fingerprint) is folded into the trace run id, which otherwise
    could not distinguish two payloads under one scenario label. *)

val synthetic_failures : log:Bgl_trace.Job_log.t -> t -> Bgl_trace.Failure_log.t
(** The failure trace {!run} would inject for this scenario over
    [log]'s span (already load-scaled) — for callers pairing an
    explicit workload with the scenario's synthetic failures. *)
