(** Shared command-line glue for the observability flags.

    Both CLIs accept [--metrics-out FILE], [--trace-out FILE] and
    [--progress N]; this module turns them into process-wide
    {!Bgl_obs.Runtime} state before the run and materialises the
    outputs afterwards. *)

type t

val setup : ?metrics_out:string -> ?trace_out:string -> ?progress:int -> unit -> t
(** Install a live registry (when [metrics_out] is given), a JSONL
    trace writer onto a freshly opened [trace_out], and a heartbeat
    printing to stderr every [progress] events. Bad flag values and
    unwritable paths raise {!Bgl_resilience.Error.Cli} (the callers
    all run under {!Bgl_resilience.Error.run}). *)

val finish : ?report:Bgl_sim.Metrics.report -> t -> unit
(** Publish [report] and any recorded spans into the registry, write
    the metrics snapshot ([.csv] extension selects CSV, anything else
    Prometheus text), close the trace channel, and reset
    {!Bgl_obs.Runtime} to its inert defaults. *)
