open Bgl_torus

type ending =
  | Finished
  | Killed of int
  | Migrated
  | Truncated

type segment = {
  job : int;
  box : Box.t;
  started : float;
  ended : float;
  ending : ending;
}

let segments recorder =
  let open Bgl_sim.Recorder in
  (* Track the open tenancy of each job; any closing event emits a
     segment. *)
  let open_tenancies : (int, float * Box.t) Hashtbl.t = Hashtbl.create 64 in
  let acc = ref [] in
  let close job time ending =
    match Hashtbl.find_opt open_tenancies job with
    | None -> ()
    | Some (started, box) ->
        Hashtbl.remove open_tenancies job;
        acc := { job; box; started; ended = time; ending } :: !acc
  in
  let last_time = ref 0. in
  List.iter
    (fun entry ->
      (match entry with
      | Job_started s ->
          last_time := Float.max !last_time s.time;
          Hashtbl.replace open_tenancies s.job (s.time, s.box)
      | Job_killed k ->
          last_time := Float.max !last_time k.time;
          close k.job k.time (Killed k.node)
      | Job_finished f ->
          last_time := Float.max !last_time f.time;
          close f.job f.time Finished
      | Job_migrated m ->
          last_time := Float.max !last_time m.time;
          close m.job m.time Migrated;
          Hashtbl.replace open_tenancies m.job (m.time, m.to_box)
      | Node_failed n -> last_time := Float.max !last_time n.time
      | Node_repaired n -> last_time := Float.max !last_time n.time
      (* Framing and arrival entries carry no tenancy. *)
      | Run_meta _ | Job_arrived _ | Run_summary _ -> ());
      ())
    (entries recorder);
  Hashtbl.iter
    (fun job (started, box) ->
      acc := { job; box; started; ended = !last_time; ending = Truncated } :: !acc)
    open_tenancies;
  List.sort
    (fun a b -> match compare a.started b.started with 0 -> Int.compare a.job b.job | c -> c)
    !acc

let busy_profile segs ~buckets ~span =
  if buckets <= 0 then invalid_arg "Timeline.busy_profile: buckets must be positive";
  if span <= 0. then invalid_arg "Timeline.busy_profile: span must be positive";
  let profile = Array.make buckets 0. in
  let bucket_width = span /. float_of_int buckets in
  List.iter
    (fun seg ->
      let nodes = float_of_int (Box.volume seg.box) in
      let first = max 0 (int_of_float (seg.started /. bucket_width)) in
      let last = min (buckets - 1) (int_of_float (seg.ended /. bucket_width)) in
      for b = first to last do
        let b_lo = float_of_int b *. bucket_width in
        let b_hi = b_lo +. bucket_width in
        let overlap = Float.max 0. (Float.min seg.ended b_hi -. Float.max seg.started b_lo) in
        profile.(b) <- profile.(b) +. (nodes *. overlap)
      done)
    segs;
  profile

let observed_span segs = List.fold_left (fun acc s -> Float.max acc s.ended) 0. segs

let render segs ~volume ~width =
  if volume <= 0 then invalid_arg "Timeline.render: volume must be positive";
  if width <= 0 then invalid_arg "Timeline.render: width must be positive";
  match segs with
  | [] -> ""
  | _ ->
      let span = observed_span segs in
      if span <= 0. then ""
      else begin
        let profile = busy_profile segs ~buckets:width ~span in
        let bucket_capacity = float_of_int volume *. span /. float_of_int width in
        let glyphs = " .:-=+*%#" in
        String.init width (fun i ->
            let frac = Float.min 1. (profile.(i) /. bucket_capacity) in
            let level = int_of_float (frac *. float_of_int (String.length glyphs - 1)) in
            glyphs.[level])
      end

let utilisation_of_segments segs ~volume =
  match segs with
  | [] -> 0.
  | _ ->
      let span = observed_span segs in
      if span <= 0. then 0.
      else
        let busy =
          List.fold_left
            (fun acc s -> acc +. (float_of_int (Box.volume s.box) *. (s.ended -. s.started)))
            0. segs
        in
        busy /. (float_of_int volume *. span)
