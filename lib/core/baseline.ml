let profiles =
  [ (0., Bgl_workload.Profile.nasa); (1., Bgl_workload.Profile.sdsc); (2., Bgl_workload.Profile.llnl) ]

let variants =
  [
    ("fcfs", fun (c : Bgl_sim.Config.t) -> { c with backfill = false; migration = false });
    ("+backfill", fun c -> { c with backfill = true; migration = false });
    ( "+migration",
      fun c -> { c with backfill = true; migration = true; migration_overhead = 60. } );
  ]

let avg = Ablations.avg

let point (scale : Figures.scale) ~profile ~failures ~variant metric =
  let config = variant Bgl_sim.Config.default in
  let mk ~seed =
    Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~failures_paper:failures ~seed ~config ~profile
      Scenario.Fault_oblivious
  in
  avg scale mk metric

let sweep scale ~failures metric =
  List.map
    (fun (label, variant) ->
      Series.series ~label
        (List.map (fun (x, profile) -> (x, point scale ~profile ~failures ~variant metric)) profiles))
    variants

let profile_note = "x axis: 0=NASA, 1=SDSC, 2=LLNL"

let slowdown scale =
  Series.figure ~id:"baseline-slowdown"
    ~title:"Krevat baseline: FCFS vs backfilling vs migration (failure-free)" ~xlabel:"workload"
    ~ylabel:"avg bounded slowdown"
    ~notes:[ profile_note ]
    (sweep scale ~failures:0 (fun r -> r.Bgl_sim.Metrics.avg_bounded_slowdown))

let utilisation scale =
  Series.figure ~id:"baseline-util"
    ~title:"Krevat baseline: utilised capacity (failure-free)" ~xlabel:"workload"
    ~ylabel:"utilised fraction"
    ~notes:[ profile_note ]
    (sweep scale ~failures:0 (fun r -> r.Bgl_sim.Metrics.util))

let under_failures scale =
  let sdsc = Bgl_workload.Profile.sdsc in
  Series.figure ~id:"baseline-failures"
    ~title:"Krevat baseline under failures (SDSC, paper failure count)" ~xlabel:"variant"
    ~ylabel:"metric"
    ~notes:[ "x axis: 0=fcfs, 1=+backfill, 2=+migration" ]
    [
      Series.series ~label:"avg slowdown"
        (List.mapi
           (fun i (_, variant) ->
             ( float_of_int i,
               point scale ~profile:sdsc ~failures:sdsc.paper_failures ~variant (fun r ->
                   r.Bgl_sim.Metrics.avg_bounded_slowdown) ))
           variants);
      Series.series ~label:"utilization"
        (List.mapi
           (fun i (_, variant) ->
             ( float_of_int i,
               point scale ~profile:sdsc ~failures:sdsc.paper_failures ~variant (fun r ->
                   r.Bgl_sim.Metrics.util) ))
           variants);
    ]

let by_id id =
  match String.lowercase_ascii (String.trim id) with
  | "baseline-slowdown" -> Some slowdown
  | "baseline-util" -> Some utilisation
  | "baseline-failures" -> Some under_failures
  | _ -> None

let all scale = [ slowdown scale; utilisation scale; under_failures scale ]
