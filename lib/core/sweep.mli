(** Crash-safe, supervised figure sweeps.

    {!run} drives a figure producer the way {!Figures.produce} does —
    collect the scenario cells, simulate them on a domain pool, replay
    the producer against the warmed memo table — but wraps the
    simulation pass in the resilience machinery:

    - each completed cell is appended to a {!Bgl_resilience.Journal}
      as one fsync'd JSONL record keyed by the cell {!fingerprint}, so
      a SIGKILL mid-sweep loses at most the cells in flight;
    - [`Resume journal] restores journaled cells into the memo table
      (reports round-trip bit-exactly) and simulates only the rest,
      then keeps appending to the same journal;
    - cells run under {!Bgl_parallel.Pool.map_supervised}: a raising
      cell is retried and, failing that, quarantined — the sweep
      completes the remaining cells and reports the degradation
      instead of dying.

    Quarantined cells are {e not} journaled; their figure points are
    filled from {!Figures.placeholder_report} so partial output still
    renders, and the caller is expected to exit non-zero (see
    {!degraded_error}). *)

type journal_mode =
  | No_journal
  | Fresh of string  (** write a new journal at this path (truncates) *)
  | Resume of string  (** restore from this journal, append new cells to it *)

type cell_failure = {
  label : string;  (** {!Scenario.label} of the quarantined cell *)
  fingerprint : string;
  error : Bgl_resilience.Supervise.error;
}

type outcome = {
  figures : Series.figure list;
  simulated : int;  (** cells simulated in this process *)
  replayed : int;  (** cells restored from the journal *)
  journal_dropped : int;  (** journal lines dropped as truncated/corrupt *)
  quarantined : cell_failure list;
  degradation : Bgl_resilience.Supervise.degradation;
}

val fingerprint : Scenario.t -> string
(** Hex digest of the scenario's {!Scenario.label} — which spells out
    profile, load, failure intensity, algorithm, seed and the config
    hash — the journal record key. *)

val run :
  ?policy:Bgl_resilience.Supervise.policy ->
  ?journal:journal_mode ->
  ?pool:Bgl_parallel.Pool.Persistent.t ->
  ?on_cell:(Scenario.t -> Bgl_sim.Metrics.report -> unit) ->
  domains:int ->
  (Figures.scale -> Series.figure list) ->
  Figures.scale ->
  (outcome, Bgl_resilience.Error.t) result
(** [Error] covers journal I/O failures (unreadable resume file,
    failed append); cell failures are never an [Error] — they come
    back as [quarantined].

    [pool] shards the cells across a persistent domain pool instead of
    spawning domains for this sweep ([domains] is then ignored for
    execution) — the service's steady-state path. [on_cell] is invoked
    for every cell right after it completes and is journaled, from
    whichever domain ran it (must be domain-safe and must not raise) —
    the hook for streaming per-cell progress to a client. *)

val degraded_error : outcome -> Bgl_resilience.Error.t option
(** [Some (Degraded ...)] naming the quarantined cells when the sweep
    was degraded, for the CLI's exit path. *)
