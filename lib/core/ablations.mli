(** Ablation experiments for the design choices DESIGN.md calls out —
    knobs the paper fixes, leaves ambiguous, or defers to future work.
    Each returns figures in the same format as the paper reproductions
    so the bench harness renders them uniformly. *)

val avg :
  Figures.scale -> (seed:int -> Scenario.t) -> (Bgl_sim.Metrics.report -> float) -> float
(** Seed-averaged metric over cached scenario runs — shared by the
    ablation and baseline sweeps. *)

val combine_rule : Figures.scale -> Series.figure
(** Section 4.1 vs 5.2.1 ambiguity: partition failure probability as
    [max p_n] vs [1 - prod (1 - p_n)] in the balancing algorithm. *)

val false_positives : Figures.scale -> Series.figure
(** The paper drops false positives from the analysis; this measures
    tie-breaking with p_f+ in {0, 0.05, 0.1, 0.2}. *)

val checkpointing : Figures.scale -> Series.figure
(** Future-work item 1: periodic checkpoint interval sweep under the
    fault-oblivious scheduler (no-checkpoint baseline included). *)

val adaptive_checkpointing : Figures.scale -> Series.figure
(** Prediction-coupled checkpoint intervals vs fixed periodic, across
    predictor accuracy. *)

val backfilling : Figures.scale -> Series.figure
(** FCFS with and without EASY backfilling, with and without faults. *)

val migration : Figures.scale -> Series.figure
(** Krevat's migration option on/off under the balancing policy. *)

val failure_model : Figures.scale -> Series.figure
(** Bursty + node-skewed failure traces (our default, modelled on the
    source logs) vs a uniform Poisson strawman, under fault-oblivious
    and balancing scheduling. *)

val repair_time : Figures.scale -> Series.figure
(** Node downtime after failure in {0 (paper), 10 min, 1 h}. *)

val candidate_cap : Figures.scale -> Series.figure
(** Placement-candidate subsampling cap vs full enumeration: solution
    quality (slowdown) as a function of the cap. *)

val history_predictor : Figures.scale -> Series.figure
(** Honest prediction: the balancing algorithm driven by the
    history-only EWMA predictor ({!Bgl_predict.History}) across
    decision thresholds, against the fault-oblivious baseline and the
    paper's simulated-confidence predictor. *)

val policy_zoo : Figures.scale -> Series.figure
(** Every placement policy under the same faulty workload: random,
    first-fit, MFP, safest (stability-only), balancing, tie-breaking —
    how much each ingredient of the paper's design buys. *)

val by_id : string -> (Figures.scale -> Series.figure) option
val all : Figures.scale -> Series.figure list
