let mean = Bgl_stats.Summary.mean
let sdsc = Bgl_workload.Profile.sdsc

let avg (scale : Figures.scale) mk (metric : Bgl_sim.Metrics.report -> float) =
  mean (List.map (fun seed -> metric (Figures.cached_report (mk ~seed))) scale.seeds)

let slowdown (r : Bgl_sim.Metrics.report) = r.avg_bounded_slowdown
let util (r : Bgl_sim.Metrics.report) = r.util

let a_grid (scale : Figures.scale) = scale.a_values

let combine_rule (scale : Figures.scale) =
  let series combine label =
    Series.series ~label
      (List.filter_map
         (fun a ->
           if a <= 0. then None
           else
             let mk ~seed =
               Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~seed ~combine ~profile:sdsc
                 (Scenario.Balancing { confidence = a })
             in
             Some (a, avg scale mk slowdown))
         (a_grid scale))
  in
  Series.figure ~id:"ablate-combine"
    ~title:"P_f combination rule in the balancing algorithm (SDSC)" ~xlabel:"confidence"
    ~ylabel:"avg bounded slowdown"
    ~notes:[ "paper Section 4.1 says max, Section 5.2.1 says 1-prod(1-p); we default to product" ]
    [ series `Product "product"; series `Max "max" ]

let false_positives (scale : Figures.scale) =
  let series fp =
    Series.series ~label:(Printf.sprintf "p_f+=%g" fp)
      (List.filter_map
         (fun a ->
           if a <= 0. then None
           else
             let mk ~seed =
               Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~seed ~false_positive:fp ~profile:sdsc
                 (Scenario.Tie_breaking { accuracy = a })
             in
             Some (a, avg scale mk slowdown))
         (a_grid scale))
  in
  Series.figure ~id:"ablate-fpos"
    ~title:"Tie-breaking under predictor false positives (SDSC)" ~xlabel:"accuracy"
    ~ylabel:"avg bounded slowdown"
    ~notes:[ "the paper argues p_f+ < p_f-/2 in practice and drops it from the analysis" ]
    [ series 0.; series 0.05; series 0.1; series 0.2 ]

let with_checkpoint spec (config : Bgl_sim.Config.t) = { config with checkpoint = spec }

let checkpointing (scale : Figures.scale) =
  let intervals = [ (0., "none"); (1800., "30min"); (3600., "1h"); (14400., "4h") ] in
  let point (interval, _) metric =
    let config =
      if interval <= 0. then Bgl_sim.Config.default
      else
        with_checkpoint (Some (Bgl_sim.Checkpoint.Periodic { interval; overhead = 60. }))
          Bgl_sim.Config.default
    in
    let mk ~seed =
      Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~seed ~config ~profile:sdsc Scenario.Fault_oblivious
    in
    avg scale mk metric
  in
  Series.figure ~id:"ablate-checkpoint"
    ~title:"Periodic checkpointing interval (SDSC, fault-oblivious, 60 s overhead)"
    ~xlabel:"interval (s; 0 = no checkpointing)" ~ylabel:"metric"
    ~notes:[ "future-work item 1 of the paper" ]
    [
      Series.series ~label:"avg slowdown"
        (List.map (fun p -> (fst p, point p slowdown)) intervals);
      Series.series ~label:"utilization" (List.map (fun p -> (fst p, point p util)) intervals);
    ]

let adaptive_checkpointing (scale : Figures.scale) =
  let series label spec =
    Series.series ~label
      (List.filter_map
         (fun a ->
           if a <= 0. then None
           else
             let config = with_checkpoint spec Bgl_sim.Config.default in
             let mk ~seed =
               Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~seed ~config ~profile:sdsc
                 (Scenario.Tie_breaking { accuracy = a })
             in
             Some (a, avg scale mk slowdown))
         (a_grid scale))
  in
  Series.figure ~id:"ablate-adaptive"
    ~title:"Adaptive (prediction-coupled) vs periodic checkpointing (SDSC, tie-breaking)"
    ~xlabel:"accuracy" ~ylabel:"avg bounded slowdown"
    ~notes:[ "adaptive checkpoints doomed placements every 30 min, safe ones every 4 h" ]
    [
      series "none" None;
      series "periodic 1h" (Some (Bgl_sim.Checkpoint.Periodic { interval = 3600.; overhead = 60. }));
      series "adaptive"
        (Some
           (Bgl_sim.Checkpoint.Adaptive
              { risky_interval = 1800.; safe_interval = 14400.; overhead = 60. }));
    ]

let backfilling (scale : Figures.scale) =
  let point ~backfill ~failures metric =
    let config = { Bgl_sim.Config.default with backfill } in
    let mk ~seed =
      Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~seed ~config ~failures_paper:failures ~profile:sdsc
        Scenario.Fault_oblivious
    in
    avg scale mk metric
  in
  let xs = [ (0., 0); (4000., 4000) ] in
  Series.figure ~id:"ablate-backfill" ~title:"EASY backfilling on/off (SDSC, fault-oblivious)"
    ~xlabel:"failures" ~ylabel:"avg bounded slowdown"
    ~notes:[ "backfilling is part of Krevat's baseline; this quantifies its contribution" ]
    [
      Series.series ~label:"backfill"
        (List.map (fun (x, f) -> (x, point ~backfill:true ~failures:f slowdown)) xs);
      Series.series ~label:"no backfill"
        (List.map (fun (x, f) -> (x, point ~backfill:false ~failures:f slowdown)) xs);
    ]

let migration (scale : Figures.scale) =
  let point ~migration metric =
    let config = { Bgl_sim.Config.default with migration; migration_overhead = 60. } in
    let mk ~seed =
      Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~seed ~config ~profile:sdsc
        (Scenario.Balancing { confidence = 0.1 })
    in
    avg scale mk metric
  in
  Series.figure ~id:"ablate-migration"
    ~title:"Job migration (defragmentation) on/off (SDSC, balancing a=0.1)" ~xlabel:"migration"
    ~ylabel:"metric"
    ~notes:[ "Krevat's migration option; off in the paper's experiments" ]
    [
      Series.series ~label:"avg slowdown"
        [ (0., point ~migration:false slowdown); (1., point ~migration:true slowdown) ];
      Series.series ~label:"utilization"
        [ (0., point ~migration:false util); (1., point ~migration:true util) ];
    ]

let failure_model (scale : Figures.scale) =
  let uniform_spec ~span ~volume ~n_events ~seed =
    {
      (Bgl_failure.Generator.default ~span ~volume ~n_events ~seed) with
      burst_mean_size = 1.;
      burst_jitter = 0.;
      node_skew = 0.;
    }
  in
  let point ~uniform ~algo =
    let mk ~seed =
      let sc = Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~seed ~profile:sdsc algo in
      if uniform then { sc with failure_spec_of = uniform_spec; variant_tag = "uniform" } else sc
    in
    avg scale mk slowdown
  in
  let algos =
    [ (0., Scenario.Fault_oblivious); (1., Scenario.Balancing { confidence = 0.5 }) ]
  in
  Series.figure ~id:"ablate-failure-model"
    ~title:"Bursty/skewed vs uniform Poisson failures (SDSC, 4000 failures)"
    ~xlabel:"algorithm (0=oblivious, 1=balancing a=0.5)" ~ylabel:"avg bounded slowdown"
    ~notes:
      [
        "prediction pays off because real failures concentrate on few nodes; uniform failures \
         erase much of the benefit";
      ]
    [
      Series.series ~label:"bursty+skewed"
        (List.map (fun (x, algo) -> (x, point ~uniform:false ~algo)) algos);
      Series.series ~label:"uniform"
        (List.map (fun (x, algo) -> (x, point ~uniform:true ~algo)) algos);
    ]

let repair_time (scale : Figures.scale) =
  let times = [ 0.; 600.; 3600. ] in
  let point repair metric =
    let config = { Bgl_sim.Config.default with repair_time = repair } in
    let mk ~seed =
      Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~seed ~config ~profile:sdsc
        (Scenario.Balancing { confidence = 0.5 })
    in
    avg scale mk metric
  in
  Series.figure ~id:"ablate-repair"
    ~title:"Node downtime after failure (SDSC, balancing a=0.5)" ~xlabel:"repair time (s)"
    ~ylabel:"metric"
    ~notes:[ "the paper assumes failed nodes return instantly; Section 7.1 flags this" ]
    [
      Series.series ~label:"avg slowdown" (List.map (fun r -> (r, point r slowdown)) times);
      Series.series ~label:"utilization" (List.map (fun r -> (r, point r util)) times);
    ]

let candidate_cap (scale : Figures.scale) =
  let caps = [ (4., Some 4); (8., Some 8); (16., Some 16); (24., Some 24); (64., None) ] in
  let point cap =
    let config = { Bgl_sim.Config.default with candidate_cap = cap } in
    let mk ~seed =
      Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~seed ~config ~profile:sdsc
        (Scenario.Balancing { confidence = 0.5 })
    in
    avg scale mk slowdown
  in
  Series.figure ~id:"ablate-candidates"
    ~title:"Candidate-partition cap (SDSC, balancing a=0.5)" ~xlabel:"cap (64 = unlimited)"
    ~ylabel:"avg bounded slowdown"
    ~notes:[ "engine-level optimisation: evenly subsampled candidate partitions" ]
    [ Series.series ~label:"avg slowdown" (List.map (fun (x, c) -> (x, point c)) caps) ]

let history_predictor (scale : Figures.scale) =
  (* x axis: EWMA half-life in hours. The balancing variant consumes
     the predictor's probability, so the decision threshold (only
     meaningful for the boolean view) is fixed at 0.5 for the
     tie-breaking variant. *)
  let half_lives_h = [ 6.; 24.; 48.; 168.; 672. ] in
  let slow algo =
    let mk ~seed = Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~seed ~profile:sdsc algo in
    avg scale mk slowdown
  in
  let baseline = slow Scenario.Fault_oblivious in
  let simulated = slow (Scenario.Balancing { confidence = 0.5 }) in
  let per_hl mk_algo =
    List.map (fun hl_h -> (hl_h, slow (mk_algo (hl_h *. 3600.)))) half_lives_h
  in
  Series.figure ~id:"ablate-history"
    ~title:"Learned (history-only EWMA) prediction vs the paper's simulated confidence (SDSC)"
    ~xlabel:"EWMA half-life (hours)" ~ylabel:"avg bounded slowdown"
    ~notes:
      [
        "the EWMA predictor sees only past failures (no oracle)";
        "flat reference lines: fault-oblivious and balancing with simulated confidence 0.5";
      ]
    [
      Series.series ~label:"balancing+ewma"
        (per_hl (fun half_life -> Scenario.Balancing_history { half_life; threshold = 0.5 }));
      Series.series ~label:"tie-break+ewma"
        (per_hl (fun half_life -> Scenario.Tie_breaking_history { half_life; threshold = 0.5 }));
      Series.series ~label:"fault-oblivious" (List.map (fun t -> (t, baseline)) half_lives_h);
      Series.series ~label:"balancing(a=0.5)" (List.map (fun t -> (t, simulated)) half_lives_h);
    ]

let policy_zoo (scale : Figures.scale) =
  let policies =
    [
      (0., "random", Scenario.Random_fit);
      (1., "first-fit", Scenario.First_fit);
      (2., "mfp", Scenario.Fault_oblivious);
      (3., "safest", Scenario.Safest);
      (4., "balancing a=0.5", Scenario.Balancing { confidence = 0.5 });
      (5., "tie-breaking a=0.5", Scenario.Tie_breaking { accuracy = 0.5 });
    ]
  in
  let measure metric =
    List.map
      (fun (x, _, algo) ->
        let mk ~seed = Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~seed ~profile:sdsc algo in
        (x, avg scale mk metric))
      policies
  in
  let labels = String.concat ", " (List.map (fun (x, l, _) -> Printf.sprintf "%g=%s" x l) policies) in
  Series.figure ~id:"ablate-policy-zoo"
    ~title:"Placement-policy zoo under 4000 failures (SDSC)" ~xlabel:"policy" ~ylabel:"metric"
    ~notes:[ labels ]
    [
      Series.series ~label:"avg slowdown" (measure slowdown);
      Series.series ~label:"utilization" (measure util);
    ]

let by_id id =
  let id = String.lowercase_ascii (String.trim id) in
  match id with
  | "combine" | "ablate-combine" -> Some combine_rule
  | "fpos" | "ablate-fpos" -> Some false_positives
  | "checkpoint" | "ablate-checkpoint" -> Some checkpointing
  | "adaptive" | "ablate-adaptive" -> Some adaptive_checkpointing
  | "backfill" | "ablate-backfill" -> Some backfilling
  | "migration" | "ablate-migration" -> Some migration
  | "failure-model" | "ablate-failure-model" -> Some failure_model
  | "repair" | "ablate-repair" -> Some repair_time
  | "candidates" | "ablate-candidates" -> Some candidate_cap
  | "history" | "ablate-history" -> Some history_predictor
  | "zoo" | "policy-zoo" | "ablate-policy-zoo" -> Some policy_zoo
  | _ -> None

let all scale =
  [
    combine_rule scale;
    false_positives scale;
    checkpointing scale;
    adaptive_checkpointing scale;
    backfilling scale;
    migration scale;
    failure_model scale;
    repair_time scale;
    candidate_cap scale;
    history_predictor scale;
    policy_zoo scale;
  ]
