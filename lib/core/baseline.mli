(** The Krevat-baseline study: what the substrate scheduler (FCFS,
    EASY backfilling, migration — Krevat et al., JSSPP 2002) buys on
    each workload {e before} any fault-awareness. The fault-aware paper
    builds directly on these results; regenerating them validates the
    substrate against its own source.

    Each figure sweeps the three scheduler variants over the three
    workload profiles, with and without failures. *)

val slowdown : Figures.scale -> Series.figure
(** Avg bounded slowdown of plain FCFS / +backfilling / +migration per
    profile (failure-free). *)

val utilisation : Figures.scale -> Series.figure
(** Utilised capacity for the same grid. *)

val under_failures : Figures.scale -> Series.figure
(** The same three variants on SDSC with the profile's failure count —
    scheduling throughput still dominates fault losses. *)

val by_id : string -> (Figures.scale -> Series.figure) option
val all : Figures.scale -> Series.figure list
