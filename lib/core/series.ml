type series = { label : string; points : (float * float) list }

type figure = {
  id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  notes : string list;
}

let series ~label points = { label; points }

let figure ~id ~title ~xlabel ~ylabel ?(notes = []) series =
  { id; title; xlabel; ylabel; series; notes }

let xs fig =
  List.concat_map (fun s -> List.map fst s.points) fig.series
  |> List.sort_uniq compare

let value_at s x = List.assoc_opt x s.points

let pp_figure ppf fig =
  Format.fprintf ppf "=== %s: %s ===@." fig.id fig.title;
  List.iter (fun n -> Format.fprintf ppf "  note: %s@." n) fig.notes;
  let xs = xs fig in
  let cell = 14 in
  let pad s = Printf.sprintf "%*s" cell s in
  Format.fprintf ppf "%s" (pad fig.xlabel);
  List.iter (fun s -> Format.fprintf ppf " %s" (pad s.label)) fig.series;
  Format.fprintf ppf "@.";
  List.iter
    (fun x ->
      Format.fprintf ppf "%s" (pad (Printf.sprintf "%g" x));
      List.iter
        (fun s ->
          match value_at s x with
          | Some y -> Format.fprintf ppf " %s" (pad (Printf.sprintf "%.4g" y))
          | None -> Format.fprintf ppf " %s" (pad "-"))
        fig.series;
      Format.fprintf ppf "@.")
    xs

let pp_chart ?(height = 8) ppf fig =
  let all_ys = List.concat_map (fun s -> List.map snd s.points) fig.series in
  match all_ys with
  | [] -> ()
  | _ ->
      let ymin = List.fold_left Float.min infinity all_ys in
      let ymax = List.fold_left Float.max neg_infinity all_ys in
      let glyphs = " _.-=oO#@" in
      let levels = min height (String.length glyphs - 1) in
      let glyph y =
        if ymax <= ymin then glyphs.[levels]
        else
          let frac = (y -. ymin) /. (ymax -. ymin) in
          glyphs.[1 + int_of_float (frac *. float_of_int (levels - 1))]
      in
      Format.fprintf ppf "%s: y in [%.4g, %.4g]@." fig.id ymin ymax;
      let label_width =
        List.fold_left (fun acc s -> max acc (String.length s.label)) 0 fig.series
      in
      List.iter
        (fun s ->
          let bars = String.init (List.length s.points) (fun i -> glyph (snd (List.nth s.points i))) in
          Format.fprintf ppf "  %-*s |%s|@." label_width s.label bars)
        fig.series

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv fig =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (csv_escape fig.xlabel);
  List.iter (fun s -> Buffer.add_string buf ("," ^ csv_escape s.label)) fig.series;
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%g" x);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          match value_at s x with
          | Some y -> Buffer.add_string buf (Printf.sprintf "%.6g" y)
          | None -> ())
        fig.series;
      Buffer.add_char buf '\n')
    (xs fig);
  Buffer.contents buf

let save_csv fig ~dir =
  let path = Filename.concat dir (fig.id ^ ".csv") in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_csv fig));
  path
