type t = {
  metrics_out : string option;
  registry : Bgl_obs.Registry.t option;
  trace_channel : out_channel option;
}

(* The trailer marker never occurs elsewhere: event names are fixed
   and no trace field embeds the quoted ["ev":] fragment. *)
let contains_summary line =
  let needle = {|"ev":"run_summary"|} in
  let n = String.length needle and h = String.length line in
  let rec hit i j = j = n || (line.[i + j] = needle.[j] && hit i (j + 1)) in
  let rec go i = i + n <= h && (hit i 0 || go (i + 1)) in
  go 0

let setup ?metrics_out ?trace_out ?progress () =
  Option.iter
    (fun every ->
      if every < 1 then Cli_flags.usage_failf "--progress must be >= 1 (got %d)" every)
    progress;
  let registry =
    Option.map
      (fun path ->
        (* Fail now, not after a long run, if the path is unwritable. *)
        close_out (Cli_flags.open_out_or_fail path);
        let reg = Bgl_obs.Registry.create () in
        Bgl_obs.Runtime.set_registry reg;
        reg)
      metrics_out
  in
  let trace_channel =
    Option.map
      (fun path ->
        let oc = Cli_flags.open_out_or_fail path in
        (* One [output_string] per line: OCaml 5 channels lock per
           operation, so whole lines stay atomic even when worker
           domains trace into the same channel. Flushing on the
           section trailer keeps trace durability ahead of journal
           durability: the sweep journals a cell as complete right
           after its run_summary is emitted, and a kill between a
           buffered trailer and the journal append would otherwise
           orphan a truncated section no resume ever replays. *)
        Bgl_obs.Runtime.set_trace_writer
          (Some
             (fun line ->
               output_string oc (line ^ "\n");
               if contains_summary line then flush oc));
        oc)
      trace_out
  in
  Option.iter
    (fun every -> Bgl_obs.Runtime.set_heartbeat (Some (Bgl_obs.Heartbeat.create ~every ())))
    progress;
  { metrics_out; registry; trace_channel }

let finish ?report t =
  (match (t.registry, t.metrics_out) with
  | Some reg, Some path ->
      Option.iter (Bgl_sim.Metrics.report_to_registry reg) report;
      Bgl_obs.Span.export reg;
      Cli_flags.write_registry ~path reg
  | _ -> ());
  Option.iter
    (fun oc ->
      flush oc;
      close_out oc)
    t.trace_channel;
  Bgl_obs.Runtime.reset ()
