(** Flag plumbing shared by every CLI (bgl-sim, bgl-sweep, bgl-trace,
    bgl-lint), so [--quiet] and [--format] mean one thing everywhere
    instead of being re-declared per tool.

    Error paths raise {!Bgl_resilience.Error.Cli} rather than printing
    and exiting here: the tools all evaluate inside
    {!Bgl_resilience.Error.run}, which turns the exception into the
    documented one-line report and exit code. *)

type format = Human | Jsonl

val format_conv : format Cmdliner.Arg.conv

val format : format Cmdliner.Term.t
(** [--format human|jsonl], default human. *)

val quiet : bool Cmdliner.Term.t
(** [--quiet] / [-q]. *)

val dims : string option Cmdliner.Term.t
(** [--dims XxYxZ] — machine size, unparsed (validated by
    {!parse_dims} inside the tool's [run], so a bad value exits 2
    rather than with cmdliner's 124). *)

val parse_dims : default:Bgl_torus.Dims.t -> string option -> Bgl_torus.Dims.t
(** Parse a [--dims] value ([4x4x8] or [64,32,32] style); [None]
    yields [default]. Malformed input raises [Error.Cli (Usage _)]
    (exit 2). *)

val set_quiet : bool -> unit
(** Install the flag's value process-wide so library-level note paths
    ({!notef}) need no threading. *)

val quiet_enabled : unit -> bool

val notef : ('a, Format.formatter, unit) Stdlib.format -> 'a
(** Informational note to stderr; dropped entirely under [--quiet]. *)

val usage_failf : ('a, unit, string, 'b) format4 -> 'a
(** Flag-validation failure: raises [Error.Cli (Usage _)] (exit 2). *)

val open_out_or_fail : string -> out_channel
(** [open_out], with failure mapped to [Error.Cli (Io _)] (exit 74) —
    used to fail on unwritable output paths before a long run. *)

val write_registry : path:string -> Bgl_obs.Registry.t -> unit
(** Write a metrics snapshot; the [.csv] extension selects CSV,
    anything else Prometheus text (the convention every tool's
    [--metrics-out] documents). *)
