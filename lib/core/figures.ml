type scale = {
  n_jobs : int;
  seeds : int list;
  a_values : float list;
  fail_fracs : float list;
  dims : Bgl_torus.Dims.t;
}

let grid_01 step =
  let n = int_of_float (Float.round (1. /. step)) in
  List.init (n + 1) (fun i -> float_of_int i *. step)

let quick =
  {
    n_jobs = 1500;
    seeds = [ 11; 12 ];
    a_values = grid_01 0.1;
    fail_fracs = grid_01 0.125;
    dims = Bgl_torus.Dims.bgl;
  }

let full =
  {
    n_jobs = 3000;
    seeds = [ 11; 12; 13 ];
    a_values = grid_01 0.1;
    fail_fracs = grid_01 0.125;
    dims = Bgl_torus.Dims.bgl;
  }

(* ------------------------------------------------------------------ *)
(* Memoised scenario runs: sweeps share many (profile, load, failures,
   algo, seed) combinations. *)

let cache : (string, Bgl_sim.Metrics.report) Hashtbl.t = Hashtbl.create 256

let clear_cache () = Hashtbl.reset cache

(* Parallelism works by replaying a figure producer twice. A first
   "collect" pass runs it with simulation stubbed out — [report_of]
   records each scenario it is asked for and answers with a dummy
   report — which yields the cell list without running anything. The
   cells are then simulated on a domain pool, their reports installed
   in [cache] from the main domain only (no locking, no cross-domain
   table), and the producer re-runs normally, all hits. Scenario runs
   are deterministic in the scenario value, so the result is
   bit-identical to a sequential sweep. *)
let collecting : Scenario.t list ref option ref = ref None

let dummy_report : Bgl_sim.Metrics.report =
  {
    total_jobs = 0;
    completed_jobs = 0;
    avg_wait = 0.;
    avg_response = 0.;
    avg_bounded_slowdown = 0.;
    median_bounded_slowdown = 0.;
    p90_bounded_slowdown = 0.;
    util = 0.;
    unused = 0.;
    lost = 0.;
    busy_fraction = 0.;
    makespan = 0.;
    failures_injected = 0;
    job_kills = 0;
    restarts = 0;
    lost_work = 0.;
    migrations = 0;
    checkpoints = 0;
  }

let report_of scenario =
  let key = Scenario.label scenario in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None -> (
      match !collecting with
      | Some acc ->
          acc := scenario :: !acc;
          dummy_report
      | None ->
          let r = (Scenario.run scenario).report in
          Hashtbl.replace cache key r;
          r)

let collect thunk =
  let acc = ref [] in
  collecting := Some acc;
  Fun.protect ~finally:(fun () -> collecting := None) thunk;
  (* Dedupe cells the producer asks for repeatedly (and any already
     cached): one simulation per distinct scenario label. *)
  let seen = Hashtbl.create 256 in
  List.filter
    (fun s ->
      let key = Scenario.label s in
      if Hashtbl.mem cache key || Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.rev !acc)
  |> Array.of_list

let cells_of f scale = collect (fun () -> ignore (f scale))
let install_report s r = Hashtbl.replace cache (Scenario.label s) r
let placeholder_report = dummy_report

let prefetch ~domains thunk =
  let cells = collect (fun () -> ignore (thunk ())) in
  let reports = Bgl_parallel.Pool.map ~domains (fun s -> (Scenario.run s).report) cells in
  Array.iteri (fun i s -> install_report s reports.(i)) cells

let cached_report = report_of
let mean = Bgl_stats.Summary.mean

let avg scale mk (metric : Bgl_sim.Metrics.report -> float) =
  mean (List.map (fun seed -> metric (report_of (mk ~seed))) scale.seeds)

let slowdown (r : Bgl_sim.Metrics.report) = r.avg_bounded_slowdown
let util (r : Bgl_sim.Metrics.report) = r.util
let unused (r : Bgl_sim.Metrics.report) = r.unused
let lost (r : Bgl_sim.Metrics.report) = r.lost

let fail_points scale (profile : Bgl_workload.Profile.t) =
  List.map
    (fun frac -> int_of_float (Float.round (frac *. float_of_int profile.paper_failures)))
    scale.fail_fracs

let provenance scale =
  Printf.sprintf "synthetic workload/failure traces; %d jobs/run, %d seed(s)" scale.n_jobs
    (List.length scale.seeds)

(* ------------------------------------------------------------------ *)

let sdsc = Bgl_workload.Profile.sdsc
let nasa = Bgl_workload.Profile.nasa
let llnl = Bgl_workload.Profile.llnl

let intro_claim scale =
  let point failures ~seed =
    Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~failures_paper:failures ~seed ~profile:sdsc
      Scenario.Fault_oblivious
  in
  let at f = avg scale (point f) slowdown in
  let base = at 0 and faulty = at 1000 in
  let increase = if base > 0. then 100. *. (faulty -. base) /. base else 0. in
  Series.figure ~id:"intro" ~title:"Slowdown cost of ignoring faults (Section 1)"
    ~xlabel:"failures" ~ylabel:"avg bounded slowdown"
    ~notes:
      [
        provenance scale;
        Printf.sprintf
          "fault-oblivious slowdown rises %.0f%% from 0 to the 1000-failure rate (paper: ~70%%)"
          increase;
      ]
    [ Series.series ~label:"fault-oblivious" [ (0., base); (1000., faulty) ] ]

let fig3 scale =
  let algo_of a =
    if a <= 0. then Scenario.Fault_oblivious else Scenario.Balancing { confidence = a }
  in
  let series a =
    Series.series
      ~label:(if a <= 0. then "no prediction" else Printf.sprintf "a=%g" a)
      (List.map
         (fun failures ->
           let mk ~seed =
             Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~failures_paper:failures ~seed ~profile:sdsc
               (algo_of a)
           in
           (float_of_int failures, avg scale mk slowdown))
         (fail_points scale sdsc))
  in
  Series.figure ~id:"fig3" ~title:"Avg bounded slowdown vs failure rate (SDSC, balancing)"
    ~xlabel:"failures" ~ylabel:"avg bounded slowdown"
    ~notes:[ provenance scale ]
    [ series 0.; series 0.1; series 0.9 ]

let fig4 scale =
  let series c =
    Series.series ~label:(Printf.sprintf "c=%g" c)
      (List.map
         (fun failures ->
           let mk ~seed =
             Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~load:c ~failures_paper:failures ~seed
               ~profile:sdsc
               (Scenario.Balancing { confidence = 0.1 })
           in
           (float_of_int failures, avg scale mk slowdown))
         (fail_points scale sdsc))
  in
  Series.figure ~id:"fig4"
    ~title:"Avg bounded slowdown vs failure rate for different loads (SDSC, balancing a=0.1)"
    ~xlabel:"failures" ~ylabel:"avg bounded slowdown"
    ~notes:[ provenance scale ]
    [ series 1.0; series 1.2 ]

let capacity_series scale ~profile ~load ~x_of mk =
  List.map
    (fun (label, metric) ->
      Series.series ~label
        (List.map (fun x -> (x_of x, avg scale (mk x) metric)) (fail_points scale profile)))
    [ ("utilized", util); ("unused", unused); ("lost", lost) ]
  |> fun series -> ignore load; series

let fig5 scale =
  List.map
    (fun (sub, c) ->
      let mk failures ~seed =
        Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~load:c ~failures_paper:failures ~seed ~profile:sdsc
          (Scenario.Balancing { confidence = 0.1 })
      in
      Series.figure
        ~id:(Printf.sprintf "fig5%s" sub)
        ~title:(Printf.sprintf "Utilization vs failure rate (SDSC, balancing a=0.1, c=%g)" c)
        ~xlabel:"failures" ~ylabel:"fraction of capacity"
        ~notes:[ provenance scale ]
        (capacity_series scale ~profile:sdsc ~load:c ~x_of:float_of_int mk))
    [ ("a", 1.0); ("b", 1.2) ]

let confidence_sweep scale ~profile ~load metric a =
  let algo = if a <= 0. then Scenario.Fault_oblivious else Scenario.Balancing { confidence = a } in
  let mk ~seed = Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~load ~seed ~profile algo in
  avg scale mk metric

let fig6 scale =
  List.map
    (fun (sub, profile) ->
      let series c =
        Series.series ~label:(Printf.sprintf "c=%g" c)
          (List.map
             (fun a -> (a, confidence_sweep scale ~profile ~load:c slowdown a))
             scale.a_values)
      in
      Series.figure
        ~id:(Printf.sprintf "fig6%s" sub)
        ~title:
          (Printf.sprintf "Avg bounded slowdown vs confidence (%s, balancing, %d failures)"
             profile.Bgl_workload.Profile.name profile.paper_failures)
        ~xlabel:"confidence" ~ylabel:"avg bounded slowdown"
        ~notes:[ provenance scale ]
        [ series 1.0; series 1.2 ])
    [ ("a", sdsc); ("b", nasa); ("c", llnl) ]

let util_vs_confidence scale ~id ~profile ~load =
  Series.figure ~id
    ~title:
      (Printf.sprintf "Utilization vs confidence (%s, balancing, c=%g)"
         profile.Bgl_workload.Profile.name load)
    ~xlabel:"confidence" ~ylabel:"fraction of capacity"
    ~notes:[ provenance scale ]
    (List.map
       (fun (label, metric) ->
         Series.series ~label
           (List.map
              (fun a -> (a, confidence_sweep scale ~profile ~load metric a))
              scale.a_values))
       [ ("utilized", util); ("unused", unused); ("lost", lost) ])

let fig7 scale =
  [
    util_vs_confidence scale ~id:"fig7a" ~profile:sdsc ~load:1.0;
    util_vs_confidence scale ~id:"fig7b" ~profile:sdsc ~load:1.2;
  ]

let fig8 scale =
  [
    util_vs_confidence scale ~id:"fig8a" ~profile:llnl ~load:1.0;
    util_vs_confidence scale ~id:"fig8b" ~profile:llnl ~load:1.2;
  ]

let accuracy_sweep scale ~profile ~load metric a =
  let algo =
    if a <= 0. then Scenario.Fault_oblivious else Scenario.Tie_breaking { accuracy = a }
  in
  let mk ~seed = Scenario.make ~n_jobs:scale.n_jobs ~dims:scale.dims ~load ~seed ~profile algo in
  avg scale mk metric

let fig9 scale =
  List.map
    (fun (sub, profile) ->
      let series c =
        Series.series ~label:(Printf.sprintf "c=%g" c)
          (List.map (fun a -> (a, accuracy_sweep scale ~profile ~load:c slowdown a)) scale.a_values)
      in
      Series.figure
        ~id:(Printf.sprintf "fig9%s" sub)
        ~title:
          (Printf.sprintf "Avg bounded slowdown vs accuracy (%s, tie-breaking, %d failures)"
             profile.Bgl_workload.Profile.name profile.paper_failures)
        ~xlabel:"accuracy" ~ylabel:"avg bounded slowdown"
        ~notes:[ provenance scale ]
        [ series 1.0; series 1.2 ])
    [ ("a", sdsc); ("b", nasa); ("c", llnl) ]

let fig10 scale =
  List.map
    (fun (sub, load) ->
      Series.figure
        ~id:(Printf.sprintf "fig10%s" sub)
        ~title:(Printf.sprintf "Utilization vs accuracy (LLNL, tie-breaking, c=%g)" load)
        ~xlabel:"accuracy" ~ylabel:"fraction of capacity"
        ~notes:[ provenance scale ]
        (List.map
           (fun (label, metric) ->
             Series.series ~label
               (List.map
                  (fun a -> (a, accuracy_sweep scale ~profile:llnl ~load metric a))
                  scale.a_values))
           [ ("utilized", util); ("unused", unused); ("lost", lost) ]))
    [ ("a", 1.0); ("b", 1.2) ]

let by_id id =
  let id = String.lowercase_ascii (String.trim id) in
  let single f = Some (fun scale -> [ f scale ]) in
  match id with
  | "intro" | "1" -> single intro_claim
  | "3" | "fig3" -> single fig3
  | "4" | "fig4" -> single fig4
  | "5" | "fig5" -> Some fig5
  | "6" | "fig6" -> Some fig6
  | "7" | "fig7" -> Some fig7
  | "8" | "fig8" -> Some fig8
  | "9" | "fig9" -> Some fig9
  | "10" | "fig10" -> Some fig10
  | _ -> None

let producers =
  [
    ("intro", fun scale -> [ intro_claim scale ]);
    ("fig3", fun scale -> [ fig3 scale ]);
    ("fig4", fun scale -> [ fig4 scale ]);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
  ]

let produce ?(domains = 1) f scale =
  if domains > 1 then prefetch ~domains (fun () -> f scale);
  f scale

let all ?(domains = 1) scale =
  produce ~domains (fun scale -> List.concat_map (fun (_, f) -> f scale) producers) scale
