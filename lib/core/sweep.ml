open Bgl_resilience

type journal_mode = No_journal | Fresh of string | Resume of string

type cell_failure = { label : string; fingerprint : string; error : Supervise.error }

type outcome = {
  figures : Series.figure list;
  simulated : int;
  replayed : int;
  journal_dropped : int;
  quarantined : cell_failure list;
  degradation : Supervise.degradation;
}

let fingerprint s = Digest.to_hex (Digest.string (Scenario.label s))

(* Restore journaled reports for the cells this sweep will ask for.
   Later records win (a resumed run may re-journal a cell); records
   whose report fails to decode count as dropped and the cell is
   simply simulated again. *)
let restore entries cells =
  let by_key = Hashtbl.create (List.length entries) in
  List.iter (fun (e : Journal.entry) -> Hashtbl.replace by_key e.key e.value) entries;
  let bad = ref 0 in
  let remaining =
    Array.to_list cells
    |> List.filter (fun cell ->
           match Hashtbl.find_opt by_key (fingerprint cell) with
           | None -> true
           | Some value -> (
               match
                 Option.to_result ~none:"no report member"
                   (Bgl_obs.Jsonl.member "report" value)
                 |> Fun.flip Result.bind Bgl_sim.Metrics.report_of_json
               with
               | Ok report ->
                   Figures.install_report cell report;
                   false
               | Error _ ->
                   incr bad;
                   true))
    |> Array.of_list
  in
  (remaining, !bad)

let run ?(policy = Supervise.default) ?(journal = No_journal) ?pool ?on_cell ~domains f scale =
  (* Resumed runs advertise the journal they continue in every trace
     header, so an auditor can tie the stitched halves together. *)
  (match journal with
  | Resume path -> Bgl_obs.Runtime.set_trace_parent (Some (Digest.to_hex (Digest.string path)))
  | No_journal | Fresh _ -> ());
  let cells = Figures.cells_of f scale in
  let restored =
    match journal with
    | No_journal | Fresh _ -> Ok (cells, 0)
    | Resume path -> (
        match Journal.load ~path with
        | Ok (entries, dropped) ->
            let remaining, bad = restore entries cells in
            Ok (remaining, dropped + bad)
        | Error detail -> Error (Error.Io { path; detail }))
  in
  match restored with
  | Error e -> Error e
  | Ok (remaining, journal_dropped) -> (
      let writer =
        match journal with
        | No_journal -> Ok None
        | Fresh path -> (
            try Ok (Some (Journal.create ~path))
            with e -> Error (Error.Io { path; detail = Printexc.to_string e }))
        | Resume path -> (
            try Ok (Some (Journal.append_to ~path))
            with e -> Error (Error.Io { path; detail = Printexc.to_string e }))
      in
      match writer with
      | Error e -> Error e
      | Ok writer -> (
          let finish () = Option.iter Journal.close writer in
          (* Journal each cell the moment it completes, from whichever
             domain ran it (appends serialised by a mutex), so a kill
             mid-sweep loses only the cells in flight. Records land in
             completion order; the reader keys by fingerprint, so order
             never matters. A journal failure is captured (first one
             wins), not raised across domains — the sweep still
             completes, then reports the I/O error. *)
          let journal_mutex = Mutex.create () in
          let journal_error = ref None in
          let on_complete i (report : Bgl_sim.Metrics.report) =
            (match writer with
            | None -> ()
            | Some w ->
                Mutex.lock journal_mutex;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock journal_mutex)
                  (fun () ->
                    if !journal_error = None then
                      try
                        Journal.append w ~key:(fingerprint remaining.(i))
                          ~fields:
                            [
                              ("label", Bgl_obs.Jsonl.string (Scenario.label remaining.(i)));
                              ("report", Bgl_sim.Metrics.report_to_json report);
                            ]
                      with e -> journal_error := Some (Error.of_exn e)));
            (* Progress streaming (the service's per-cell frames) runs
               after the cell is durably journaled, from whichever
               domain completed it — same contract as [on_complete]. *)
            match on_cell with None -> () | Some g -> g remaining.(i) report
          in
          let map_cells g items =
            match pool with
            | Some p -> Bgl_parallel.Pool.Persistent.map_supervised p ~policy ~on_complete g items
            | None -> Bgl_parallel.Pool.map_supervised ~policy ~on_complete ~domains g items
          in
          match map_cells (fun s -> (Scenario.run s).report) remaining with
          | exception e ->
              finish ();
              Error (Error.of_exn e)
          | outcomes, degradation -> (
              finish ();
              match !journal_error with
              | Some e -> Error e
              | None ->
                  let quarantined = ref [] in
                  Array.iteri
                    (fun i -> function
                      | Supervise.Completed { value = report; _ } ->
                          Figures.install_report remaining.(i) report
                      | Supervise.Quarantined error ->
                          Figures.install_report remaining.(i) Figures.placeholder_report;
                          quarantined :=
                            {
                              label = Scenario.label remaining.(i);
                              fingerprint = fingerprint remaining.(i);
                              error;
                            }
                            :: !quarantined)
                    outcomes;
                  let figures = f scale in
                  Ok
                    {
                      figures;
                      simulated = degradation.Supervise.completed;
                      replayed = Array.length cells - Array.length remaining;
                      journal_dropped;
                      quarantined = List.rev !quarantined;
                      degradation;
                    })))

let degraded_error outcome =
  match outcome.quarantined with
  | [] -> None
  | cells ->
      Some
        (Error.Degraded
           {
             quarantined =
               List.map
                 (fun c ->
                   Printf.sprintf "%s (%s): %s after %d attempt%s" c.label
                     (String.sub c.fingerprint 0 8) c.error.Supervise.message
                     c.error.Supervise.attempts
                     (if c.error.Supervise.attempts = 1 then "" else "s"))
                 cells;
             detail =
               Printf.sprintf
                 "%d of %d cells quarantined; their figure points are placeholders"
                 (List.length cells)
                 (List.length cells + outcome.simulated + outcome.replayed);
           })
