type t = {
  name : string;
  machine_nodes : int;
  size_mix : (int * float) array;
  runtime_mu : float;
  runtime_sigma : float;
  runtime_min : float;
  runtime_cap : float;
  estimate_inflation_mu : float;
  estimate_inflation_sigma : float;
  exact_estimate_prob : float;
  diurnal_amplitude : float;
  target_util : float;
  source_jobs : int;
  paper_failures : int;
}

(* Size mixes follow the published characterisations: the NASA iPSC/860
   log is power-of-two only with ~57% sequential jobs (Feitelson &
   Nitzberg 1995); the SDSC SP log mixes arbitrary small sizes with
   power-of-two spikes; the LLNL T3D log is gang-scheduled powers of
   two with most work in 32-256 node jobs. *)

let nasa =
  {
    name = "NASA";
    machine_nodes = 128;
    size_mix =
      [| (1, 0.57); (2, 0.06); (4, 0.08); (8, 0.08); (16, 0.09); (32, 0.07); (64, 0.04); (128, 0.01) |];
    runtime_mu = 4.4;
    (* median ~81 s *)
    runtime_sigma = 1.5;
    runtime_min = 1.;
    runtime_cap = 4. *. 3600.;
    estimate_inflation_mu = 0.1;
    estimate_inflation_sigma = 1.0;
    exact_estimate_prob = 0.3;
    diurnal_amplitude = 0.7;
    target_util = 0.62;
    source_jobs = 42_264;
    paper_failures = 4000;
  }

let sdsc =
  {
    name = "SDSC";
    machine_nodes = 128;
    size_mix =
      [|
        (1, 0.26); (2, 0.08); (3, 0.03); (4, 0.09); (5, 0.02); (8, 0.12); (9, 0.02); (16, 0.14);
        (24, 0.03); (32, 0.11); (48, 0.02); (64, 0.06); (96, 0.01); (128, 0.01);
      |];
    runtime_mu = 6.2;
    (* median ~8 min *)
    runtime_sigma = 1.7;
    runtime_min = 1.;
    runtime_cap = 12. *. 3600.;
    estimate_inflation_mu = 0.4;
    estimate_inflation_sigma = 1.1;
    exact_estimate_prob = 0.15;
    diurnal_amplitude = 0.5;
    target_util = 0.68;
    source_jobs = 54_041;
    paper_failures = 4000;
  }

let llnl =
  {
    name = "LLNL";
    machine_nodes = 256;
    size_mix =
      [| (32, 0.27); (64, 0.33); (128, 0.27); (256, 0.13) |];
    runtime_mu = 6.8;
    (* median ~15 min *)
    runtime_sigma = 1.5;
    runtime_min = 5.;
    runtime_cap = 18. *. 3600.;
    estimate_inflation_mu = 0.5;
    estimate_inflation_sigma = 0.9;
    exact_estimate_prob = 0.1;
    diurnal_amplitude = 0.4;
    target_util = 0.64;
    source_jobs = 21_323;
    paper_failures = 1000;
  }

let all = [ nasa; sdsc; llnl ]

let by_name name =
  let target = String.lowercase_ascii (String.trim name) in
  List.find_opt (fun p -> String.lowercase_ascii p.name = target) all

let mean_runtime p = exp (p.runtime_mu +. (p.runtime_sigma ** 2. /. 2.))

let sizes_for p ~max_nodes =
  if max_nodes <= 0 then invalid_arg "Profile.sizes_for: max_nodes must be positive";
  let scale = max 1 (p.machine_nodes / max_nodes) in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (size, w) ->
      let size = min max_nodes (max 1 (size / scale)) in
      Hashtbl.replace tbl size (w +. Option.value ~default:0. (Hashtbl.find_opt tbl size)))
    p.size_mix;
  Hashtbl.fold (fun size w acc -> (size, w) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> Array.of_list

let mean_size p ~max_nodes =
  let sizes = sizes_for p ~max_nodes in
  let total_w = Array.fold_left (fun acc (_, w) -> acc +. w) 0. sizes in
  Array.fold_left (fun acc (s, w) -> acc +. (float_of_int s *. w)) 0. sizes /. total_w
