(** Statistical profiles of the supercomputer workloads used in the
    paper.

    The archive logs themselves are not redistributable inside this
    repository, so each profile captures the published marginal
    statistics of one log — job-size mix, runtime distribution,
    runtime-estimate inflation, arrival burstiness — and the generator
    ({!Synthetic}) draws a log from the profile. See DESIGN.md
    ("Substitutions") for why this preserves the paper's conclusions.

    Sizes are in nodes of the simulated machine; a profile whose source
    machine was larger than the target torus is rescaled at generation
    time. *)

type t = {
  name : string;
  machine_nodes : int;  (** node count of the source machine *)
  size_mix : (int * float) array;  (** (nodes, weight), weights > 0 *)
  runtime_mu : float;  (** lognormal location of runtime, ln-seconds *)
  runtime_sigma : float;  (** lognormal scale of runtime *)
  runtime_min : float;  (** floor, seconds *)
  runtime_cap : float;  (** ceiling, seconds *)
  estimate_inflation_mu : float;
      (** lognormal location of (estimate / runtime - 1); estimates are
          always >= the actual runtime *)
  estimate_inflation_sigma : float;
  exact_estimate_prob : float;  (** fraction of users asking exactly the runtime *)
  diurnal_amplitude : float;  (** 0 = flat arrivals, 1 = full day/night swing *)
  target_util : float;  (** offered load at load scale c = 1 *)
  source_jobs : int;
      (** approximate job count of the real archive log; the experiment
          layer scales the paper's failure counts by
          [n_jobs / source_jobs] to preserve failures-per-job *)
  paper_failures : int;
      (** the failure count the paper pairs with this log (Section
          6.2): 4000 for NASA and SDSC, 1000 for LLNL *)
}

val nasa : t
(** NASA Ames iPSC/860, 1993: 128 nodes, power-of-two sizes only, a
    large population of sequential (1-node) jobs, short runtimes. *)

val sdsc : t
(** SDSC IBM SP, 1998–2000: 128 nodes, mixed sizes with power-of-two
    spikes, heavy-tailed runtimes. The paper's primary log. *)

val llnl : t
(** LLNL Cray T3D, 1996: 256 nodes, gang-scheduled powers of two from
    32 up, long runtimes. *)

val all : t list
val by_name : string -> t option
(** Case-insensitive lookup of ["nasa"], ["sdsc"], ["llnl"]. *)

val mean_runtime : t -> float
(** Analytic mean of the (uncapped) runtime distribution. *)

val mean_size : t -> max_nodes:int -> float
(** Mean of the size mix, after rescaling to [max_nodes]. *)

val sizes_for : t -> max_nodes:int -> (int * float) array
(** The size mix rescaled so no job exceeds [max_nodes]: sizes are
    divided by [machine_nodes / max_nodes] (at least 1) and clamped to
    [\[1, max_nodes\]], merging weights of collapsed sizes. *)
