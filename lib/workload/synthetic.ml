open Bgl_stats

type spec = {
  profile : Profile.t;
  n_jobs : int;
  max_nodes : int;
  seed : int;
}

let day = 86_400.

(* Offered load = rate * E[size * runtime] / nodes, so the base rate for a
   target utilisation is target * nodes / (E[size] * E[runtime]). The
   runtime cap is ignored in the expectation; the cap only trims the
   extreme tail, and tests check the realised load empirically. *)
let arrival_rate (p : Profile.t) ~max_nodes =
  let work = Profile.mean_size p ~max_nodes *. Profile.mean_runtime p in
  p.target_util *. float_of_int max_nodes /. work

let generate spec =
  let p = spec.profile in
  if spec.n_jobs <= 0 then invalid_arg "Synthetic.generate: n_jobs must be positive";
  if spec.max_nodes <= 0 then invalid_arg "Synthetic.generate: max_nodes must be positive";
  let master = Rng.create ~seed:spec.seed in
  let arrival_rng = Rng.split master ~label:"arrivals" in
  let size_rng = Rng.split master ~label:"sizes" in
  let runtime_rng = Rng.split master ~label:"runtimes" in
  let estimate_rng = Rng.split master ~label:"estimates" in
  let sizes = Profile.sizes_for p ~max_nodes:spec.max_nodes in
  let base_rate = arrival_rate p ~max_nodes:spec.max_nodes in
  (* Thinning: generate candidate arrivals at the peak rate and accept
     with probability rate(t) / peak. *)
  let peak = base_rate *. (1. +. p.diurnal_amplitude) in
  let rate_at t =
    base_rate *. (1. +. (p.diurnal_amplitude *. sin (2. *. Float.pi *. t /. day)))
  in
  let next_arrival t =
    let rec loop t =
      let t = t +. Dist.exponential arrival_rng ~rate:peak in
      if Rng.unit_float arrival_rng *. peak <= rate_at t then t else loop t
    in
    loop t
  in
  let draw_runtime () =
    let r = Dist.lognormal runtime_rng ~mu:p.runtime_mu ~sigma:p.runtime_sigma in
    Float.min p.runtime_cap (Float.max p.runtime_min r)
  in
  let draw_estimate run_time =
    if Rng.unit_float estimate_rng < p.exact_estimate_prob then run_time
    else
      let inflation =
        Dist.lognormal estimate_rng ~mu:p.estimate_inflation_mu ~sigma:p.estimate_inflation_sigma
      in
      run_time *. (1. +. inflation)
  in
  let rec build id t acc =
    if id >= spec.n_jobs then List.rev acc
    else
      let t = next_arrival t in
      let size = Dist.discrete size_rng sizes in
      let run_time = draw_runtime () in
      let job =
        { Bgl_trace.Job_log.id; arrival = t; size; run_time; estimate = draw_estimate run_time }
      in
      build (id + 1) t (job :: acc)
  in
  let name = Printf.sprintf "%s-synth(n=%d,seed=%d)" p.name spec.n_jobs spec.seed in
  Bgl_trace.Job_log.make ~name (build 0 0. [])
