(** Synthetic job-log generation from a {!Profile}.

    Arrivals are a diurnally modulated Poisson process whose base rate
    is solved so the log's offered load on the target machine matches
    the profile's [target_util] in expectation; sizes and runtimes are
    drawn independently from the profile's marginals. Everything is a
    deterministic function of the seed. *)

type spec = {
  profile : Profile.t;
  n_jobs : int;
  max_nodes : int;  (** machine size jobs must fit (128 for BG/L supernodes) *)
  seed : int;
}

val generate : spec -> Bgl_trace.Job_log.t
(** A log of exactly [n_jobs] jobs sorted by arrival, every job sized
    within [\[1, max_nodes\]], runtimes within the profile's
    [\[runtime_min, runtime_cap\]], estimates [>=] runtimes. *)

val arrival_rate : Profile.t -> max_nodes:int -> float
(** The solved base arrival rate (jobs/second) for [target_util]. *)
