(** Shapes of rectangular partitions.

    A shape is the extent of a box along each axis. Partitions on BG/L
    must be contiguous and rectangular (Section 3.3), so a job of size
    [s] can only occupy boxes whose shape has volume [s] and fits in
    the torus. *)

type t = { sx : int; sy : int; sz : int }

val make : int -> int -> int -> t
(** All extents must be positive. *)

val volume : t -> int

val fits : Dims.t -> t -> bool
(** Whether each extent is at most the corresponding torus dimension. *)

val rotations : t -> t list
(** The distinct axis permutations of a shape (1, 3 or 6 entries). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
