(** Dimensions of a three-dimensional torus of supernodes.

    The job scheduler sees BlueGene/L as a 4×4×8 torus of 128
    supernodes (Section 3.1 of the paper); {!bgl} is that machine.
    All torus code is parametric in the dimensions so tests and benches
    can use other machine sizes. *)

type t = private { nx : int; ny : int; nz : int }

val make : int -> int -> int -> t
(** [make nx ny nz]. All dimensions must be positive. *)

val bgl : t
(** The 4×4×8 supernode torus of BlueGene/L. *)

val bgl_full : t
(** The full 64×32×32 node torus of BlueGene/L (65,536 compute
    nodes) — the machine the paper's scheduling claims are about. *)

val volume : t -> int
(** Total number of supernodes, [nx * ny * nz]. *)

val max_dim : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses ["4x4x8"] or ["64,32,32"] (the [--dims] flag syntax). *)
