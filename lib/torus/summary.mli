(** Coarse hierarchical occupancy summary.

    Maintained in O(1) per grid mutation by {!Grid}: free-node counts
    per axis slab (each yz-, xz- and xy-plane) and per 8×8×8 block,
    plus a lazily rebuilt cumulative table over the block grid. The
    finders consult it through {!shape_feasible} to reject candidate
    shapes on large machines before paying for a base enumeration or a
    summed-area-table sync.

    All probes are conservative: [false] proves no free box of the
    shape exists; [true] only licenses the exact search. *)

type t

val create : Dims.t -> t
(** Summary of a fully free grid. *)

val copy : t -> t

val occupy : t -> Coord.t -> unit
(** Record that the cell just became occupied. *)

val vacate : t -> Coord.t -> unit
(** Record that the cell just became free. *)

val version : t -> int
(** Number of updates applied; {!copy} carries it over. *)

val slab_free : t -> axis:[ `X | `Y | `Z ] -> int -> int
(** [slab_free t ~axis:`X x] is the number of free nodes in the plane
    of all cells with that x coordinate. *)

val feasible_starts :
  t -> wrap:bool -> axis:[ `X | `Y | `Z ] -> extent:int -> threshold:int -> bool array
(** Per-base-position refinement of the slab test behind
    {!shape_feasible}, used by the counted enumeration to skip whole
    planes and rows of bases. Entry [p] is [false] only if no free box
    spanning [extent] slabs (cyclically when [wrap]) can be based at
    axis coordinate [p] — i.e. some slab in the window [p, p+extent)
    holds fewer than [threshold] free nodes. As everywhere in this
    module, [false] is a proof of absence and [true] merely licenses
    the exact scan, but because skipping is only ever done on [false]
    the counted and materialising enumerations agree exactly. *)

val shape_feasible : t -> wrap:bool -> Shape.t -> bool
(** Necessary condition for a free box of exactly this shape to exist
    (with or without torus wraparound): every slab window the box
    would span must hold enough free nodes, and some block window big
    enough to contain the box must hold at least its volume. A [false]
    is definitive; a [true] must be confirmed by an exact finder. *)
