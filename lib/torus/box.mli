(** Rectangular partitions: a base coordinate plus a shape.

    With torus wraparound enabled, a box may extend past a dimension's
    upper edge and continue from 0; such a box is still contiguous in
    the torus topology. *)

type t = { base : Coord.t; shape : Shape.t }

val make : Coord.t -> Shape.t -> t
val volume : t -> int

val cells : Dims.t -> t -> Coord.t list
(** Coordinates covered by the box, wrapped into bounds. The base must
    be in bounds and the shape must fit the torus. *)

val indices : Dims.t -> t -> int list
(** Linear indices of {!cells}. *)

val canonical : Dims.t -> wrap:bool -> t -> t
(** Normal form used to deduplicate finder output: when wraparound is
    on and the shape spans a full dimension, every base along that
    dimension denotes the same node set, so the base component is
    forced to 0. *)

val overlap : Dims.t -> t -> t -> bool
(** Whether the two boxes share at least one (wrapped) node. *)

val member : Dims.t -> t -> Coord.t -> bool
(** Whether the (in-bounds) coordinate lies in the box, accounting for
    wraparound. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
