(** Mutable occupancy state of the torus.

    Each supernode is either free or owned by an integer owner id —
    a job id, or a sentinel such as {!down_owner} for a node held out
    of service. The grid enforces the space-sharing constraint: a node
    can never be claimed while already owned (Section 3.3, "only one
    job may run on a given node at a time").

    Occupancy is bit-packed (32 nodes per word), so freeness probes
    stream through a cache-resident bitset even on the full 64×32×32
    machine; owner ids live in a side array consulted only on cold
    paths. A {!Summary} of slab/block free counts is maintained in
    O(1) per mutation. *)

type t

val down_owner : int
(** Reserved owner id marking a node as unavailable (repair downtime
    extension). Job ids must be non-negative; [down_owner] is negative
    and distinct from the free marker. *)

val create : ?wrap:bool -> Dims.t -> t
(** A fully free grid. [wrap] (default [true]) selects whether boxes
    may use torus wraparound; it is consulted by the finders through
    {!wrap}. *)

val dims : t -> Dims.t
val wrap : t -> bool
val copy : t -> t

val volume : t -> int
val free_count : t -> int
val busy_count : t -> int

val version : t -> int
(** Total number of single-node mutations (occupies + vacates) applied
    to this grid so far. Monotonic; {!copy} carries it over. Change
    trackers ({!Prefix.track}) use it to detect occupancy drift. *)

val fingerprint : t -> int
(** Occupancy fingerprint: a Zobrist-style xor over the occupied
    nodes. Equal fingerprints mean (with overwhelming probability)
    equal free/occupied sets — owner ids do not contribute — and a
    probe that occupies then vacates a box restores the fingerprint
    exactly, so finder caches keyed on it survive MFP what-if probes. *)

val summary : t -> Summary.t
(** The coarse occupancy summary maintained inline by every mutation
    (slab and block free counts). Read-only for callers: the finders
    use {!Summary.shape_feasible} to reject shapes early on large
    machines. Mutating the grid through anything but this module's
    operations would desynchronise it. *)

val owner : t -> int -> int option
(** [owner t node] is [Some id] if the node (linear index) is owned. *)

val is_free : t -> int -> bool

val box_is_free : t -> Box.t -> bool
(** Whether every node of the box is free. *)

val occupy : t -> Box.t -> owner:int -> unit
(** Claim every node of the box for [owner].
    @raise Invalid_argument if any node is already owned. *)

val vacate : t -> Box.t -> owner:int -> unit
(** Release every node of the box.
    @raise Invalid_argument if some node is not owned by [owner]. *)

val occupy_node : t -> int -> owner:int -> unit
val vacate_node : t -> int -> owner:int -> unit

val iter_owned : t -> (int -> int -> unit) -> unit
(** [iter_owned t f] calls [f node owner] for every owned node. *)

val owners : t -> int list
(** Sorted distinct owner ids present in the grid. *)

val pp : Format.formatter -> t -> unit
(** z-layer by z-layer ASCII rendering ('.' free, letters for owners). *)
