(** Supernode coordinates and their linearisation.

    A coordinate addresses one supernode. The linear index is
    [x + nx * (y + ny * z)]; failure traces and the occupancy grid use
    linear indices, the geometric algorithms use coordinates. *)

type t = { x : int; y : int; z : int }

val make : int -> int -> int -> t

val in_bounds : Dims.t -> t -> bool
(** Whether each component is within [\[0, dim)]. *)

val wrap : Dims.t -> t -> t
(** Reduce each component modulo the corresponding dimension (torus
    wraparound); the result is always in bounds. *)

val index : Dims.t -> t -> int
(** Linear index of an in-bounds coordinate. *)

val of_index : Dims.t -> int -> t
(** Inverse of {!index}. The index must be in [\[0, volume)]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
