type t = { x : int; y : int; z : int }

let make x y z = { x; y; z }

let in_bounds (d : Dims.t) c =
  c.x >= 0 && c.x < d.nx && c.y >= 0 && c.y < d.ny && c.z >= 0 && c.z < d.nz

(* (a mod b + b) mod b handles negative components. *)
let pos_mod a b = ((a mod b) + b) mod b

let wrap (d : Dims.t) c = { x = pos_mod c.x d.nx; y = pos_mod c.y d.ny; z = pos_mod c.z d.nz }

let index (d : Dims.t) c =
  assert (in_bounds d c);
  c.x + (d.nx * (c.y + (d.ny * c.z)))

let of_index (d : Dims.t) i =
  if i < 0 || i >= Dims.volume d then invalid_arg "Coord.of_index: out of range";
  { x = i mod d.nx; y = i / d.nx mod d.ny; z = i / (d.nx * d.ny) }

let equal a b = a.x = b.x && a.y = b.y && a.z = b.z

let compare a b =
  match Int.compare a.z b.z with
  | 0 -> ( match Int.compare a.y b.y with 0 -> Int.compare a.x b.x | c -> c)
  | c -> c

let pp ppf c = Format.fprintf ppf "(%d,%d,%d)" c.x c.y c.z
