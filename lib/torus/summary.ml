(* Coarse occupancy summary maintained inline by Grid: per-slab free
   counts along each axis plus free counts per BxBxB block, with a
   lazily rebuilt cumulative table over the block grid. Feasibility
   probes use it to reject shapes in O(nx + ny + nz + #blocks) without
   touching the summed-area table — on a 64x32x32 machine that is a
   ~128-slab scan instead of a 65,536-base enumeration.

   Every check here is a *necessary* condition for a free box of the
   shape to exist, never a sufficient one: a [false] from
   [shape_feasible] is a proof of absence, a [true] only means the
   exact finders must look. *)

type t = {
  dims : Dims.t;
  free_x : int array;  (* free nodes per x-slab (a yz-plane) *)
  free_y : int array;
  free_z : int array;
  block : int;  (* block edge length *)
  bx : int;
  by : int;
  bz : int;  (* block-grid dimensions (ceiling division) *)
  blocks : int array;  (* free nodes per block, bi + bx*(bj + by*bk) *)
  mutable version : int;  (* bumped on every occupy/vacate *)
  (* Cumulative free counts over the (doubled when wrapped) block grid,
     rebuilt on demand when [bcum_version] trails [version]. *)
  bcum : int array;
  mutable bcum_version : int;
  mutable bcum_wrap : bool;  (* the doubling the bcum layout reflects *)
}

let block_edge = 8

let create dims =
  let { Dims.nx; ny; nz } = dims in
  let b = block_edge in
  let bx = (nx + b - 1) / b and by = (ny + b - 1) / b and bz = (nz + b - 1) / b in
  let blocks = Array.make (bx * by * bz) 0 in
  (* Edge blocks are clipped by the torus bounds, so seed each block
     with its actual cell count. *)
  for bk = 0 to bz - 1 do
    for bj = 0 to by - 1 do
      for bi = 0 to bx - 1 do
        let ex = min b (nx - (bi * b)) in
        let ey = min b (ny - (bj * b)) in
        let ez = min b (nz - (bk * b)) in
        blocks.(bi + (bx * (bj + (by * bk)))) <- ex * ey * ez
      done
    done
  done;
  let ebx = (2 * bx) + 1 and eby = (2 * by) + 1 and ebz = (2 * bz) + 1 in
  {
    dims;
    free_x = Array.make nx (ny * nz);
    free_y = Array.make ny (nx * nz);
    free_z = Array.make nz (nx * ny);
    block = b;
    bx;
    by;
    bz;
    blocks;
    version = 0;
    bcum = Array.make (ebx * eby * ebz) 0;
    bcum_version = -1;
    bcum_wrap = true;
  }

let copy t =
  {
    t with
    free_x = Array.copy t.free_x;
    free_y = Array.copy t.free_y;
    free_z = Array.copy t.free_z;
    blocks = Array.copy t.blocks;
    bcum = Array.copy t.bcum;
  }

let version t = t.version

let block_index t (c : Coord.t) =
  (c.x / t.block) + (t.bx * ((c.y / t.block) + (t.by * (c.z / t.block))))

let update t (c : Coord.t) delta =
  t.free_x.(c.x) <- t.free_x.(c.x) + delta;
  t.free_y.(c.y) <- t.free_y.(c.y) + delta;
  t.free_z.(c.z) <- t.free_z.(c.z) + delta;
  let b = block_index t c in
  t.blocks.(b) <- t.blocks.(b) + delta;
  t.version <- t.version + 1

let occupy t c = update t c (-1)
let vacate t c = update t c 1

let slab_free t ~axis i =
  match axis with `X -> t.free_x.(i) | `Y -> t.free_y.(i) | `Z -> t.free_z.(i)

(* Is there a run of [extent] consecutive slabs — cyclically consecutive
   when [wrap] — whose free count each reaches [threshold]? Any free box
   spanning [extent] slabs puts [threshold] free nodes in each of them,
   so a [false] rules the whole axis out. *)
let axis_ok ~wrap counts n extent threshold =
  if extent = n then Array.for_all (fun c -> c >= threshold) counts
  else begin
    let limit = if wrap then (2 * n) - 1 else n in
    let run = ref 0 and ok = ref false in
    let i = ref 0 in
    while (not !ok) && !i < limit do
      if counts.(!i mod n) >= threshold then begin
        incr run;
        if !run >= extent then ok := true
      end
      else run := 0;
      incr i
    done;
    !ok
  end

(* Per-base-position refinement of [axis_ok]: for every start slab p,
   does the (cyclic when [wrap]) window [p, p+extent) keep [threshold]
   free nodes in each slab? A free box of the shape based at axis
   coordinate p puts [threshold] free nodes in each slab it spans, so
   [false] at p rules out every base with that coordinate. Computed in
   one backward run-length pass over the (virtually doubled) slab
   array. *)
let feasible_starts t ~wrap ~axis ~extent ~threshold =
  let counts =
    match axis with `X -> t.free_x | `Y -> t.free_y | `Z -> t.free_z
  in
  let n = Array.length counts in
  let ok = Array.make n false in
  if extent >= n then begin
    (* Full-span window: every slab participates regardless of base. *)
    let all = Array.for_all (fun c -> c >= threshold) counts in
    if all then Array.fill ok 0 n true
  end
  else begin
    let len = if wrap then n + extent - 1 else n in
    (* run = length of the good-slab run starting at extended index i *)
    let run = ref 0 in
    for i = len - 1 downto 0 do
      if counts.(i mod n) >= threshold then incr run else run := 0;
      if i < n && (wrap || i + extent <= n) then ok.(i) <- !run >= extent
    done
  end;
  ok

let rebuild_bcum t ~wrap =
  let ebx = if wrap then 2 * t.bx else t.bx in
  let eby = if wrap then 2 * t.by else t.by in
  let ebz = if wrap then 2 * t.bz else t.bz in
  let sy = ebx + 1 in
  let sz = sy * (eby + 1) in
  let cum = t.bcum in
  Array.fill cum 0 (Array.length cum) 0;
  for k = 1 to ebz do
    let zoff = t.bx * t.by * ((k - 1) mod t.bz) in
    for j = 1 to eby do
      let yoff = zoff + (t.bx * ((j - 1) mod t.by)) in
      for i = 1 to ebx do
        let v = t.blocks.(yoff + ((i - 1) mod t.bx)) in
        cum.(i + (sy * j) + (sz * k)) <-
          v
          + cum.(i - 1 + (sy * j) + (sz * k))
          + cum.(i + (sy * (j - 1)) + (sz * k))
          + cum.(i + (sy * j) + (sz * (k - 1)))
          - cum.(i - 1 + (sy * (j - 1)) + (sz * k))
          - cum.(i - 1 + (sy * j) + (sz * (k - 1)))
          - cum.(i + (sy * (j - 1)) + (sz * (k - 1)))
          + cum.(i - 1 + (sy * (j - 1)) + (sz * (k - 1)))
      done
    done
  done

(* A box of shape s spans at most ceil(s/B)+1 blocks per axis (one for
   each full stripe plus the two clipped ends), so if no block window of
   that many blocks holds [volume s] free nodes anywhere, no placement
   can either. *)
let block_window_ok t ~wrap (s : Shape.t) =
  let vol = Shape.volume s in
  let span extent grid_blocks =
    min grid_blocks (((extent + t.block - 1) / t.block) + 1)
  in
  let wx = span s.sx t.bx and wy = span s.sy t.by and wz = span s.sz t.bz in
  let ebx = if wrap then 2 * t.bx else t.bx in
  let eby = if wrap then 2 * t.by else t.by in
  let sy = ebx + 1 in
  let sz = sy * (eby + 1) in
  let cum = t.bcum in
  let at i j k = cum.(i + (sy * j) + (sz * k)) in
  let window i j k =
    at (i + wx) (j + wy) (k + wz)
    - at i (j + wy) (k + wz) - at (i + wx) j (k + wz) - at (i + wx) (j + wy) k
    + at i j (k + wz) + at i (j + wy) k + at (i + wx) j k
    - at i j k
  in
  let xi = if wrap then t.bx - 1 else t.bx - wx in
  let yj = if wrap then t.by - 1 else t.by - wy in
  let zk = if wrap then t.bz - 1 else t.bz - wz in
  let ok = ref false in
  let k = ref 0 in
  while (not !ok) && !k <= zk do
    let j = ref 0 in
    while (not !ok) && !j <= yj do
      let i = ref 0 in
      while (not !ok) && !i <= xi do
        if window !i !j !k >= vol then ok := true;
        incr i
      done;
      incr j
    done;
    incr k
  done;
  !ok

let shape_feasible t ~wrap (s : Shape.t) =
  let d = t.dims in
  Shape.fits d s
  && axis_ok ~wrap t.free_x d.nx s.sx (s.sy * s.sz)
  && axis_ok ~wrap t.free_y d.ny s.sy (s.sx * s.sz)
  && axis_ok ~wrap t.free_z d.nz s.sz (s.sx * s.sy)
  && begin
       if t.bcum_version <> t.version || t.bcum_wrap <> wrap then begin
         rebuild_bcum t ~wrap;
         t.bcum_version <- t.version;
         t.bcum_wrap <- wrap
       end;
       block_window_ok t ~wrap s
     end
