type t = { sx : int; sy : int; sz : int }

let make sx sy sz =
  if sx <= 0 || sy <= 0 || sz <= 0 then invalid_arg "Shape.make: extents must be positive";
  { sx; sy; sz }

let volume t = t.sx * t.sy * t.sz
let fits (d : Dims.t) t = t.sx <= d.nx && t.sy <= d.ny && t.sz <= d.nz
let equal a b = a.sx = b.sx && a.sy = b.sy && a.sz = b.sz

let compare a b =
  match Int.compare a.sx b.sx with
  | 0 -> ( match Int.compare a.sy b.sy with 0 -> Int.compare a.sz b.sz | c -> c)
  | c -> c

let rotations t =
  let all =
    [
      (t.sx, t.sy, t.sz);
      (t.sx, t.sz, t.sy);
      (t.sy, t.sx, t.sz);
      (t.sy, t.sz, t.sx);
      (t.sz, t.sx, t.sy);
      (t.sz, t.sy, t.sx);
    ]
  in
  List.sort_uniq Stdlib.compare all |> List.map (fun (a, b, c) -> make a b c)

let pp ppf t = Format.fprintf ppf "%dx%dx%d" t.sx t.sy t.sz
