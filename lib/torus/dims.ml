type t = { nx : int; ny : int; nz : int }

let make nx ny nz =
  if nx <= 0 || ny <= 0 || nz <= 0 then invalid_arg "Dims.make: dimensions must be positive";
  { nx; ny; nz }

let bgl = make 4 4 8
let bgl_full = make 64 32 32
let volume t = t.nx * t.ny * t.nz
let max_dim t = max t.nx (max t.ny t.nz)
let equal a b = a.nx = b.nx && a.ny = b.ny && a.nz = b.nz
let pp ppf t = Format.fprintf ppf "%dx%dx%d" t.nx t.ny t.nz
let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  (* Accept both "64x32x32" and "64,32,32"; mixing separators is
     rejected by the three-way split below. *)
  let sep = if String.contains s ',' then ',' else 'x' in
  match String.split_on_char sep s with
  | [ a; b; c ] -> (
      match
        (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b),
         int_of_string_opt (String.trim c))
      with
      | Some nx, Some ny, Some nz when nx > 0 && ny > 0 && nz > 0 -> Ok (make nx ny nz)
      | _ -> Error (Printf.sprintf "invalid dimensions %S (expected e.g. 4x4x8 or 64,32,32)" s))
  | _ -> Error (Printf.sprintf "invalid dimensions %S (expected e.g. 4x4x8 or 64,32,32)" s)
