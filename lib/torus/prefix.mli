(** Three-dimensional summed-area table over the occupancy grid.

    Building the table costs O(volume) (O(8·volume) with wraparound,
    because every wrapping dimension is virtually doubled); afterwards
    the number of occupied nodes in any box — wrapped or not — is read
    in O(1). This is what turns the shape-driven partition finder of
    the paper's Appendix into the O(1)-per-candidate {!Finder.prefix}
    variant and makes maximal-free-partition search cheap enough to
    evaluate for every candidate placement.

    Two flavours exist. {!build} is a snapshot: it reflects the grid at
    build time and never changes. {!track} is an incrementally
    maintained table bound to its grid: after each occupy/vacate the
    caller calls {!note_box}/{!note_node}, and the next query
    recomputes only the cumulative block the change can reach (the
    entries dominated by the minimal changed coordinate) instead of the
    whole table. Notes are checked against {!Grid.version}; a mutation
    that was not noted degrades the next {!sync} to a full rebuild, so
    a tracker is never silently stale. *)

type t

val build : Grid.t -> t
(** Snapshot the grid's occupancy. The table does not track later
    mutations; rebuild after the grid changes. *)

val track : Grid.t -> t
(** A tracking table bound to [grid], initially in sync. After each
    grid mutation, call {!note_box} or {!note_node}; queries then
    update the table incrementally (falling back to a full rebuild on
    any unnoted change). *)

val note_box : t -> Box.t -> unit
(** Record that every node of [box] was just occupied or vacated.
    Call once per {!Grid.occupy}/{!Grid.vacate}, after the mutation.
    @raise Invalid_argument on a snapshot table. *)

val note_node : t -> int -> unit
(** Record a single-node mutation (linear index), e.g. a failure
    takedown or repair. *)

val sync : t -> unit
(** Bring a tracking table up to date now (queries also do this
    lazily). No-op on snapshots and on tables already in sync. *)

val is_stale : t -> bool
(** Whether a tracking table has pending grid changes. Always [false]
    for snapshots. *)

type stats = { full_rebuilds : int; incremental_updates : int }

val stats : t -> stats
(** How often {!sync} recomputed the whole table vs only a dirty
    block, since {!track}. Zero for snapshots. *)

val occupied_in_box : t -> Box.t -> int
(** Number of occupied nodes inside the box. *)

val occupied_in_range : t -> x0:int -> y0:int -> z0:int -> sx:int -> sy:int -> sz:int -> int
(** As {!occupied_in_box} on the box based at [(x0, y0, z0)] with
    extents [(sx, sy, sz)], without allocating the box — the counted
    enumeration's ribbon probes issue hundreds of thousands of these
    per scan, where three records per probe is measurable GC load.
    Extents may reach into the doubled wraparound space (up to
    [2*dim - 1] per axis), like any wrapped box. *)

val box_is_free : t -> Box.t -> bool

val equal : t -> t -> bool
(** Whether two (synced) tables encode identical cumulative sums over
    identical extended spaces — the differential-test oracle for the
    incremental maintenance. *)
