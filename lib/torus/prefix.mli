(** Three-dimensional summed-area table over the occupancy grid.

    Building the table costs O(volume) (O(8·volume) with wraparound,
    because every wrapping dimension is virtually doubled); afterwards
    the number of occupied nodes in any box — wrapped or not — is read
    in O(1). This is what turns the shape-driven partition finder of
    the paper's Appendix into the O(1)-per-candidate {!Finder.prefix}
    variant and makes maximal-free-partition search cheap enough to
    evaluate for every candidate placement. *)

type t

val build : Grid.t -> t
(** Snapshot the grid's occupancy. The table does not track later
    mutations; rebuild after the grid changes. *)

val occupied_in_box : t -> Box.t -> int
(** Number of occupied nodes inside the box. *)

val box_is_free : t -> Box.t -> bool
