type t = { base : Coord.t; shape : Shape.t }

let make base shape = { base; shape }
let volume t = Shape.volume t.shape

let cells (d : Dims.t) t =
  assert (Coord.in_bounds d t.base);
  assert (Shape.fits d t.shape);
  let acc = ref [] in
  for dz = t.shape.sz - 1 downto 0 do
    for dy = t.shape.sy - 1 downto 0 do
      for dx = t.shape.sx - 1 downto 0 do
        let c = Coord.make (t.base.x + dx) (t.base.y + dy) (t.base.z + dz) in
        acc := Coord.wrap d c :: !acc
      done
    done
  done;
  !acc

let indices d t = List.map (Coord.index d) (cells d t)

let canonical (d : Dims.t) ~wrap t =
  if not wrap then t
  else
    let base =
      Coord.make
        (if t.shape.sx = d.nx then 0 else t.base.x)
        (if t.shape.sy = d.ny then 0 else t.base.y)
        (if t.shape.sz = d.nz then 0 else t.base.z)
    in
    { t with base }

(* One-dimensional interval overlap on a ring of size n: the interval
   [b, b+s) taken modulo n. *)
let ring_overlap n b1 s1 b2 s2 =
  if s1 >= n || s2 >= n then true
  else
    let covered1 = Array.make n false in
    for i = 0 to s1 - 1 do
      covered1.((b1 + i) mod n) <- true
    done;
    let rec scan i = i < s2 && (covered1.((b2 + i) mod n) || scan (i + 1)) in
    scan 0

let overlap (d : Dims.t) a b =
  ring_overlap d.nx a.base.x a.shape.sx b.base.x b.shape.sx
  && ring_overlap d.ny a.base.y a.shape.sy b.base.y b.shape.sy
  && ring_overlap d.nz a.base.z a.shape.sz b.base.z b.shape.sz

let ring_member n b s v =
  let off = ((v - b) mod n + n) mod n in
  off < s

let member (d : Dims.t) t (c : Coord.t) =
  ring_member d.nx t.base.x t.shape.sx c.x
  && ring_member d.ny t.base.y t.shape.sy c.y
  && ring_member d.nz t.base.z t.shape.sz c.z

let equal a b = Coord.equal a.base b.base && Shape.equal a.shape b.shape

let compare a b =
  match Coord.compare a.base b.base with 0 -> Shape.compare a.shape b.shape | c -> c

let pp ppf t = Format.fprintf ppf "%a@%a" Shape.pp t.shape Coord.pp t.base
