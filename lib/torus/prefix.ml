(* The table is a cumulative count over an extended array: every
   dimension with wraparound is doubled so a wrapped box becomes an
   ordinary box in the extended space (its base is in the original
   bounds and extents are at most the dimension, so base + extent fits
   in twice the dimension). *)

type t = {
  dims : Dims.t;
  ex : int;
  ey : int;
  ez : int;
  (* cum.(i + (ex+1) * (j + (ey+1) * k)) = #occupied in [0,i) x [0,j) x [0,k) of
     the extended space. *)
  cum : int array;
}

let build grid =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let ex = if wrap then 2 * d.nx else d.nx in
  let ey = if wrap then 2 * d.ny else d.ny in
  let ez = if wrap then 2 * d.nz else d.nz in
  let stride_y = ex + 1 in
  let stride_z = stride_y * (ey + 1) in
  let cum = Array.make (stride_z * (ez + 1)) 0 in
  (* Hot path for the schedulers: plain index arithmetic, occupancy read
     once per original cell. *)
  let occ = Array.make (d.nx * d.ny * d.nz) 0 in
  for node = 0 to Array.length occ - 1 do
    if not (Grid.is_free grid node) then occ.(node) <- 1
  done;
  for k = 1 to ez do
    let zoff = d.nx * d.ny * ((k - 1) mod d.nz) in
    let row_k = stride_z * k and row_k1 = stride_z * (k - 1) in
    for j = 1 to ey do
      let yoff = zoff + (d.nx * ((j - 1) mod d.ny)) in
      let row_kj = row_k + (stride_y * j)
      and row_kj1 = row_k + (stride_y * (j - 1))
      and row_k1j = row_k1 + (stride_y * j)
      and row_k1j1 = row_k1 + (stride_y * (j - 1)) in
      for i = 1 to ex do
        cum.(i + row_kj) <-
          occ.(yoff + ((i - 1) mod d.nx))
          + cum.(i - 1 + row_kj) + cum.(i + row_kj1) + cum.(i + row_k1j)
          - cum.(i - 1 + row_kj1) - cum.(i - 1 + row_k1j) - cum.(i + row_k1j1)
          + cum.(i - 1 + row_k1j1)
      done
    done
  done;
  { dims = d; ex; ey; ez; cum }

let occupied_in_box t (box : Box.t) =
  let b = box.base and s = box.shape in
  let x1 = b.x + s.sx and y1 = b.y + s.sy and z1 = b.z + s.sz in
  if x1 > t.ex || y1 > t.ey || z1 > t.ez then
    invalid_arg "Prefix.occupied_in_box: box exceeds table (wraparound disabled?)";
  let stride_y = t.ex + 1 in
  let stride_z = stride_y * (t.ey + 1) in
  let at i j k = t.cum.(i + (stride_y * j) + (stride_z * k)) in
  at x1 y1 z1
  - at b.x y1 z1 - at x1 b.y z1 - at x1 y1 b.z
  + at b.x b.y z1 + at b.x y1 b.z + at x1 b.y b.z
  - at b.x b.y b.z

let box_is_free t box = occupied_in_box t box = 0
