(* The table is a cumulative count over an extended array: every
   dimension with wraparound is doubled so a wrapped box becomes an
   ordinary box in the extended space (its base is in the original
   bounds and extents are at most the dimension, so base + extent fits
   in twice the dimension).

   A table is either a snapshot ([build]) or a tracker ([track]). A
   tracker keeps the grid it was built from plus a dirty region: after
   each grid mutation the caller notes the touched box/node, and the
   next query recomputes only the cumulative entries the change can
   reach — everything dominated by the minimal changed coordinate. A
   change at original cell (x,y,z) maps to extended copies that are
   componentwise >= (x,y,z), so entries with i <= x or j <= y or
   k <= z are untouched and serve as the clean boundary of the
   recomputed block. Notes are verified against the grid's mutation
   counter; any unnoted mutation degrades the next sync to a full
   rebuild instead of producing a stale table. *)

type tracking = {
  grid : Grid.t;
  mutable seen_version : int;  (* Grid.version the cum array reflects *)
  mutable noted_version : int;  (* Grid.version covered by notes *)
  mutable dirty : (int * int * int) option;  (* min corner of noted changes *)
  mutable lost : bool;  (* a mutation was not noted: full rebuild *)
  mutable full_rebuilds : int;
  mutable incremental_updates : int;
}

type t = {
  dims : Dims.t;
  ex : int;
  ey : int;
  ez : int;
  (* cum.(i + (ex+1) * (j + (ey+1) * k)) = #occupied in [0,i) x [0,j) x [0,k) of
     the extended space. *)
  cum : int array;
  (* Precomputed wrapped-index tables: wx.(i) = (i-1) mod nx and the
     y/z variants pre-scaled by their linear strides, so the recompute
     inner loop does three adds per cell instead of three mods. Entry 0
     of each table is unused (the cum boundary plane). *)
  wx : int array;
  wy : int array;
  wz : int array;
  tracking : tracking option;
}

(* Recompute cum over the block (x0, ex] x (y0, ey] x (z0, ez], reading
   occupancy straight from the grid. Entries at i = x0 / j = y0 / k = z0
   are the block's clean boundary ((0,0,0) makes this a full rebuild:
   plane 0 of cum is all zeros and is never written). Hot path for the
   schedulers: plain index arithmetic, one occupancy read per cell. *)
let recompute t grid ~x0 ~y0 ~z0 =
  let stride_y = t.ex + 1 in
  let stride_z = stride_y * (t.ey + 1) in
  let cum = t.cum in
  let wx = t.wx in
  for k = z0 + 1 to t.ez do
    let zoff = t.wz.(k) in
    let row_k = stride_z * k and row_k1 = stride_z * (k - 1) in
    for j = y0 + 1 to t.ey do
      let yoff = zoff + t.wy.(j) in
      let row_kj = row_k + (stride_y * j)
      and row_kj1 = row_k + (stride_y * (j - 1))
      and row_k1j = row_k1 + (stride_y * j)
      and row_k1j1 = row_k1 + (stride_y * (j - 1)) in
      for i = x0 + 1 to t.ex do
        let occ = if Grid.is_free grid (yoff + wx.(i)) then 0 else 1 in
        cum.(i + row_kj) <-
          occ
          + cum.(i - 1 + row_kj) + cum.(i + row_kj1) + cum.(i + row_k1j)
          - cum.(i - 1 + row_kj1) - cum.(i - 1 + row_k1j) - cum.(i + row_k1j1)
          + cum.(i - 1 + row_k1j1)
      done
    done
  done

let make grid ~tracking =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let ex = if wrap then 2 * d.nx else d.nx in
  let ey = if wrap then 2 * d.ny else d.ny in
  let ez = if wrap then 2 * d.nz else d.nz in
  let t =
    {
      dims = d;
      ex;
      ey;
      ez;
      cum = Array.make ((ex + 1) * (ey + 1) * (ez + 1)) 0;
      wx = Array.init (ex + 1) (fun i -> if i = 0 then 0 else (i - 1) mod d.nx);
      wy = Array.init (ey + 1) (fun j -> if j = 0 then 0 else d.nx * ((j - 1) mod d.ny));
      wz = Array.init (ez + 1) (fun k -> if k = 0 then 0 else d.nx * d.ny * ((k - 1) mod d.nz));
      tracking;
    }
  in
  recompute t grid ~x0:0 ~y0:0 ~z0:0;
  t

let build grid = make grid ~tracking:None

let track grid =
  let v = Grid.version grid in
  make grid
    ~tracking:
      (Some
         {
           grid;
           seen_version = v;
           noted_version = v;
           dirty = None;
           lost = false;
           full_rebuilds = 0;
           incremental_updates = 0;
         })

type stats = { full_rebuilds : int; incremental_updates : int }

let stats t =
  match t.tracking with
  | None -> { full_rebuilds = 0; incremental_updates = 0 }
  | Some tr ->
      { full_rebuilds = tr.full_rebuilds; incremental_updates = tr.incremental_updates }

(* Record [cells] mutations whose minimal changed original coordinate
   is [corner]. Notes must account for every mutation: if the grid's
   counter moved further than the noted cell count, some change went
   unrecorded and the tracker schedules a full rebuild instead. *)
let note t ~cells ~corner:(cx, cy, cz) =
  match t.tracking with
  | None -> invalid_arg "Prefix.note: table is a snapshot, not a tracker"
  | Some tr ->
      if tr.noted_version + cells <> Grid.version tr.grid then tr.lost <- true
      else begin
        tr.noted_version <- tr.noted_version + cells;
        tr.dirty <-
          (match tr.dirty with
          | None -> Some (cx, cy, cz)
          | Some (x, y, z) -> Some (min x cx, min y cy, min z cz))
      end

let note_box t (box : Box.t) =
  let d = t.dims in
  let b = box.base and s = box.shape in
  (* A box wrapping past the end of an axis touches cell 0 of that
     axis, which is then the minimal changed coordinate. *)
  let corner =
    ( (if b.x + s.sx > d.nx then 0 else b.x),
      (if b.y + s.sy > d.ny then 0 else b.y),
      if b.z + s.sz > d.nz then 0 else b.z )
  in
  note t ~cells:(Shape.volume s) ~corner

let note_node t node =
  let c = Coord.of_index t.dims node in
  note t ~cells:1 ~corner:(c.x, c.y, c.z)

let sync t =
  match t.tracking with
  | None -> ()
  | Some tr ->
      let v = Grid.version tr.grid in
      if v <> tr.seen_version then begin
        (if (not tr.lost) && tr.noted_version = v then
           match tr.dirty with
           | Some (x, y, z) ->
               recompute t tr.grid ~x0:x ~y0:y ~z0:z;
               tr.incremental_updates <- tr.incremental_updates + 1
           | None ->
               (* Mutations netted out to notes with no region — cannot
                  happen via note (every note carries a corner), so
                  treat defensively as a rebuild. *)
               recompute t tr.grid ~x0:0 ~y0:0 ~z0:0;
               tr.full_rebuilds <- tr.full_rebuilds + 1
         else begin
           recompute t tr.grid ~x0:0 ~y0:0 ~z0:0;
           tr.full_rebuilds <- tr.full_rebuilds + 1
         end);
        tr.seen_version <- v;
        tr.noted_version <- v;
        tr.dirty <- None;
        tr.lost <- false
      end

let is_stale t =
  match t.tracking with
  | None -> false
  | Some tr -> Grid.version tr.grid <> tr.seen_version

let occupied_in_range t ~x0 ~y0 ~z0 ~sx ~sy ~sz =
  sync t;
  let x1 = x0 + sx and y1 = y0 + sy and z1 = z0 + sz in
  if x1 > t.ex || y1 > t.ey || z1 > t.ez then
    invalid_arg "Prefix.occupied_in_range: box exceeds table (wraparound disabled?)";
  let stride_y = t.ex + 1 in
  let stride_z = stride_y * (t.ey + 1) in
  let at i j k = t.cum.(i + (stride_y * j) + (stride_z * k)) in
  at x1 y1 z1
  - at x0 y1 z1 - at x1 y0 z1 - at x1 y1 z0
  + at x0 y0 z1 + at x0 y1 z0 + at x1 y0 z0
  - at x0 y0 z0

let occupied_in_box t (box : Box.t) =
  let b = box.base and s = box.shape in
  occupied_in_range t ~x0:b.x ~y0:b.y ~z0:b.z ~sx:s.sx ~sy:s.sy ~sz:s.sz

let box_is_free t box = occupied_in_box t box = 0

let equal a b =
  sync a;
  sync b;
  Dims.equal a.dims b.dims && a.ex = b.ex && a.ey = b.ey && a.ez = b.ez && a.cum = b.cum
