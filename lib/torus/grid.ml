type t = {
  dims : Dims.t;
  wrap : bool;
  cells : int array;
  mutable free : int;
  mutable version : int;
  mutable fingerprint : int;
}

let free_marker = -1
let down_owner = -2

(* Zobrist-style per-node key: occupancy state hashes to the xor of the
   keys of the occupied nodes, so occupy/vacate update the fingerprint
   in O(1) and a probe that occupies then vacates restores it exactly.
   A splitmix-style finalizer keeps the keys well spread; constants are
   chosen to fit OCaml's 63-bit native int. *)
let node_key node =
  let x = (node + 1) * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1B03738712FAD5C9 in
  x lxor (x lsr 32)

let create ?(wrap = true) dims =
  let n = Dims.volume dims in
  { dims; wrap; cells = Array.make n free_marker; free = n; version = 0; fingerprint = 0 }

let dims t = t.dims
let wrap t = t.wrap
let copy t = { t with cells = Array.copy t.cells }
let volume t = Dims.volume t.dims
let free_count t = t.free
let busy_count t = volume t - t.free
let version t = t.version
let fingerprint t = t.fingerprint
let owner t node = if t.cells.(node) = free_marker then None else Some t.cells.(node)
let is_free t node = t.cells.(node) = free_marker

let box_is_free t box = List.for_all (is_free t) (Box.indices t.dims box)

let occupy_node t node ~owner =
  if owner < 0 && owner <> down_owner then invalid_arg "Grid.occupy_node: invalid owner id";
  if t.cells.(node) <> free_marker then
    invalid_arg
      (Printf.sprintf "Grid.occupy_node: node %d already owned by %d" node t.cells.(node));
  t.cells.(node) <- owner;
  t.free <- t.free - 1;
  t.version <- t.version + 1;
  t.fingerprint <- t.fingerprint lxor node_key node

let vacate_node t node ~owner =
  if t.cells.(node) <> owner then
    invalid_arg
      (Printf.sprintf "Grid.vacate_node: node %d owned by %d, not %d" node t.cells.(node) owner);
  t.cells.(node) <- free_marker;
  t.free <- t.free + 1;
  t.version <- t.version + 1;
  t.fingerprint <- t.fingerprint lxor node_key node

let occupy t box ~owner =
  let idx = Box.indices t.dims box in
  (* Validate first so a failed claim leaves the grid unchanged. *)
  List.iter
    (fun node ->
      if t.cells.(node) <> free_marker then
        invalid_arg (Printf.sprintf "Grid.occupy: node %d already owned" node))
    idx;
  List.iter (fun node -> occupy_node t node ~owner) idx

let vacate t box ~owner =
  let idx = Box.indices t.dims box in
  List.iter
    (fun node ->
      if t.cells.(node) <> owner then
        invalid_arg (Printf.sprintf "Grid.vacate: node %d not owned by %d" node owner))
    idx;
  List.iter (fun node -> vacate_node t node ~owner) idx

let iter_owned t f =
  Array.iteri (fun node o -> if o <> free_marker then f node o) t.cells

let owners t =
  let tbl = Hashtbl.create 16 in
  iter_owned t (fun _ o -> Hashtbl.replace tbl o ());
  Hashtbl.fold (fun o () acc -> o :: acc) tbl [] |> List.sort Int.compare

let pp ppf t =
  let d = t.dims in
  let glyph o =
    if o = free_marker then '.'
    else if o = down_owner then '!'
    else Char.chr (Char.code 'A' + (o mod 26))
  in
  for z = 0 to d.nz - 1 do
    Format.fprintf ppf "z=%d@." z;
    for y = d.ny - 1 downto 0 do
      for x = 0 to d.nx - 1 do
        Format.fprintf ppf "%c" (glyph t.cells.(Coord.index d (Coord.make x y z)))
      done;
      Format.fprintf ppf "@."
    done
  done
