(* Occupancy lives in a bit-packed Bigarray (32 nodes per word, so a
   full 64x32x32 machine is a 16 KB bitset the prefix rebuild streams
   through cache-resident), owner ids in a plain side array consulted
   only on the cold paths (vacate validation, rendering, owner
   queries). A Summary is maintained inline so feasibility probes can
   reject shapes without scanning either. *)

type t = {
  dims : Dims.t;
  wrap : bool;
  occ : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  owners : int array;
  summary : Summary.t;
  mutable free : int;
  mutable version : int;
  mutable fingerprint : int;
}

let free_marker = -1
let down_owner = -2

(* Zobrist-style per-node key: occupancy state hashes to the xor of the
   keys of the occupied nodes, so occupy/vacate update the fingerprint
   in O(1) and a probe that occupies then vacates restores it exactly.
   A splitmix-style finalizer keeps the keys well spread; constants are
   chosen to fit OCaml's 63-bit native int. *)
let node_key node =
  let x = (node + 1) * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1B03738712FAD5C9 in
  x lxor (x lsr 32)

let create ?(wrap = true) dims =
  let n = Dims.volume dims in
  let occ = Bigarray.Array1.create Bigarray.int Bigarray.c_layout ((n + 31) lsr 5) in
  Bigarray.Array1.fill occ 0;
  {
    dims;
    wrap;
    occ;
    owners = Array.make n free_marker;
    summary = Summary.create dims;
    free = n;
    version = 0;
    fingerprint = 0;
  }

let dims t = t.dims
let wrap t = t.wrap

let copy t =
  let occ = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (Bigarray.Array1.dim t.occ) in
  Bigarray.Array1.blit t.occ occ;
  { t with occ; owners = Array.copy t.owners; summary = Summary.copy t.summary }

let volume t = Dims.volume t.dims
let free_count t = t.free
let busy_count t = volume t - t.free
let version t = t.version
let fingerprint t = t.fingerprint
let summary t = t.summary

let is_free t node = Bigarray.Array1.get t.occ (node lsr 5) land (1 lsl (node land 31)) = 0
let owner t node = if is_free t node then None else Some t.owners.(node)

let box_is_free t box = List.for_all (is_free t) (Box.indices t.dims box)

let occupy_node t node ~owner =
  if owner < 0 && owner <> down_owner then invalid_arg "Grid.occupy_node: invalid owner id";
  let w = node lsr 5 and bit = 1 lsl (node land 31) in
  let word = Bigarray.Array1.get t.occ w in
  if word land bit <> 0 then
    invalid_arg
      (Printf.sprintf "Grid.occupy_node: node %d already owned by %d" node t.owners.(node));
  Bigarray.Array1.set t.occ w (word lor bit);
  t.owners.(node) <- owner;
  t.free <- t.free - 1;
  t.version <- t.version + 1;
  t.fingerprint <- t.fingerprint lxor node_key node;
  Summary.occupy t.summary (Coord.of_index t.dims node)

let vacate_node t node ~owner =
  let w = node lsr 5 and bit = 1 lsl (node land 31) in
  let word = Bigarray.Array1.get t.occ w in
  let current = if word land bit = 0 then free_marker else t.owners.(node) in
  if current <> owner then
    invalid_arg (Printf.sprintf "Grid.vacate_node: node %d owned by %d, not %d" node current owner);
  Bigarray.Array1.set t.occ w (word lxor bit);
  t.owners.(node) <- free_marker;
  t.free <- t.free + 1;
  t.version <- t.version + 1;
  t.fingerprint <- t.fingerprint lxor node_key node;
  Summary.vacate t.summary (Coord.of_index t.dims node)

let occupy t box ~owner =
  let idx = Box.indices t.dims box in
  (* Validate first so a failed claim leaves the grid unchanged. *)
  List.iter
    (fun node ->
      if not (is_free t node) then
        invalid_arg (Printf.sprintf "Grid.occupy: node %d already owned" node))
    idx;
  List.iter (fun node -> occupy_node t node ~owner) idx

let vacate t box ~owner =
  let idx = Box.indices t.dims box in
  List.iter
    (fun node ->
      if is_free t node || t.owners.(node) <> owner then
        invalid_arg (Printf.sprintf "Grid.vacate: node %d not owned by %d" node owner))
    idx;
  List.iter (fun node -> vacate_node t node ~owner) idx

let iter_owned t f =
  let n = volume t in
  for w = 0 to Bigarray.Array1.dim t.occ - 1 do
    let word = Bigarray.Array1.get t.occ w in
    if word <> 0 then begin
      let base = w lsl 5 in
      for b = 0 to min 31 (n - 1 - base) do
        if word land (1 lsl b) <> 0 then f (base + b) t.owners.(base + b)
      done
    end
  done

let owners t =
  let tbl = Hashtbl.create 16 in
  iter_owned t (fun _ o -> Hashtbl.replace tbl o ());
  Hashtbl.fold (fun o () acc -> o :: acc) tbl [] |> List.sort Int.compare

let pp ppf t =
  let d = t.dims in
  let glyph node =
    if is_free t node then '.'
    else
      let o = t.owners.(node) in
      if o = down_owner then '!' else Char.chr (Char.code 'A' + (o mod 26))
  in
  for z = 0 to d.nz - 1 do
    Format.fprintf ppf "z=%d@." z;
    for y = d.ny - 1 downto 0 do
      for x = 0 to d.nx - 1 do
        Format.fprintf ppf "%c" (glyph (Coord.index d (Coord.make x y z)))
      done;
      Format.fprintf ppf "@."
    done
  done
