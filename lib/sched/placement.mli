(** Placement policies: Section 5 of the paper.

    Each constructor returns a {!Bgl_sim.Policy.t} choosing among the
    free candidate partitions the engine found for a job:

    - {!first_fit}: the first candidate in deterministic scan order —
      the cheapest baseline.
    - {!mfp}: Krevat's heuristic — minimise the MFP loss
      L_MFP = MFP(before) − MFP(after placement), i.e. keep the largest
      possible contiguous free partition for subsequent jobs.
    - {!balancing}: Section 5.2.1 — minimise the expected loss
      E_loss = L_MFP + L_PF where L_PF = P_f · s_j and P_f is the
      predicted partition-failure probability over the job's estimated
      duration. Fault-oblivious MFP falls out at confidence 0.
    - {!tie_breaking}: Section 5.2.2 — minimise L_MFP, and break ties
      among equal-L_MFP candidates by preferring partitions the boolean
      predictor expects to survive; if every tied candidate is
      predicted to fail, the choice is arbitrary (first).

    Ties are always resolved toward the earlier candidate in the
    finder's canonical order, so runs are deterministic. *)

open Bgl_sim

val first_fit : Policy.t

val mfp : Policy.t

val balancing :
  ?combine:[ `Product | `Max ] ->
  ?decline_threshold:float ->
  predictor:Bgl_predict.Predictor.t ->
  unit ->
  Policy.t
(** [combine] selects the partition-failure formula (default
    [`Product], the form used in the E_loss derivation; [`Max] is the
    Section 4.1 variant — see DESIGN.md). [decline_threshold], an
    extension, makes the policy refuse placement when even the best
    candidate's E_loss exceeds [threshold · s_j]; the paper's policy
    always places (equivalent to [None]). *)

val tie_breaking : predictor:Bgl_predict.Predictor.t -> unit -> Policy.t

val random : seed:int -> Policy.t
(** Uniform choice among candidates, deterministic in
    [(seed, job id, now)] — a lower-bound baseline showing how much the
    MFP heuristic itself buys. *)

val safest : predictor:Bgl_predict.Predictor.t -> unit -> Policy.t
(** Minimise the predicted partition-failure probability and ignore
    fragmentation entirely — the opposite extreme of {!mfp}, used by
    the policy-zoo ablation to show why the balancing trade-off needs
    both terms. *)

val mfp_loss : Policy.ctx -> Bgl_torus.Box.t -> int
(** The L_MFP of one candidate in a context, with the shortcut: if some
    maximal free partition does not intersect the candidate, the MFP
    survives placement and the loss is 0 without recomputation.
    Exposed for tests and benches. *)
