open Bgl_torus
open Bgl_sim

(* Every exported policy is wrapped so placement decisions show up in
   the span profile under "placement.<family>". The guard sits outside
   Span.time to keep the unprofiled path closure-free. *)
let instrument span_name (policy : Policy.t) =
  {
    policy with
    Policy.choose =
      (fun ctx ~job ~volume ~candidates ->
        if Bgl_obs.Span.enabled () then
          Bgl_obs.Span.time ~name:span_name (fun () ->
              policy.choose ctx ~job ~volume ~candidates)
        else policy.choose ctx ~job ~volume ~candidates);
  }

let first_fit =
  instrument "placement.first-fit"
  {
    Policy.name = "first-fit";
    choose = (fun _ctx ~job:_ ~volume:_ ~candidates -> match candidates with [] -> None | b :: _ -> Some b);
  }

let mfp_loss (ctx : Policy.ctx) candidate =
  let dims = Grid.dims ctx.grid in
  let before = Lazy.force ctx.mfp_before in
  (* If a maximal free partition survives the placement untouched, the
     MFP cannot shrink. *)
  let survives =
    List.exists (fun b -> not (Box.overlap dims b candidate)) (Lazy.force ctx.mfp_boxes)
  in
  if survives then 0
  else before - Bgl_partition.Mfp.volume_after ?cache:ctx.cache ctx.grid candidate

(* Choose the candidate minimising [score]; earlier candidates win
   ties. [stop] is a known lower bound on the score: the scan ends at
   the first candidate reaching it (placement can never enlarge the
   MFP, so 0 is a valid bound for loss-based scores), which returns the
   same candidate a full scan would. *)
let argmin ?(stop = neg_infinity) score candidates =
  let rec go best best_score = function
    | [] -> Some best
    | candidate :: rest ->
        let s = score candidate in
        if s <= stop then Some candidate
        else if s < best_score then go candidate s rest
        else go best best_score rest
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      let s = score first in
      if s <= stop then Some first else go first s rest

let mfp =
  instrument "placement.mfp"
  {
    Policy.name = "mfp";
    choose =
      (fun ctx ~job:_ ~volume:_ ~candidates ->
        argmin ~stop:0. (fun c -> float_of_int (mfp_loss ctx c)) candidates);
  }

let balancing ?(combine = `Product) ?decline_threshold ~predictor () =
  let name =
    Printf.sprintf "balancing[%s]" predictor.Bgl_predict.Predictor.name
  in
  instrument "placement.balancing"
  {
    Policy.name;
    choose =
      (fun ctx ~job ~volume:_ ~candidates ->
        let dims = Grid.dims ctx.grid in
        let e_loss candidate =
          let l_mfp = float_of_int (mfp_loss ctx candidate) in
          let p_f =
            Bgl_predict.Predictor.partition_prob predictor ~combine
              ~nodes:(Box.indices dims candidate) ~now:ctx.now ~horizon:job.estimate
          in
          l_mfp +. (p_f *. float_of_int job.size)
        in
        match argmin ~stop:0. e_loss candidates with
        | None -> None
        | Some best -> (
            match decline_threshold with
            | Some threshold when e_loss best > threshold *. float_of_int job.size -> None
            | Some _ | None -> Some best));
  }

let tie_breaking ~predictor () =
  let name =
    Printf.sprintf "tie-breaking[%s]" predictor.Bgl_predict.Predictor.name
  in
  instrument "placement.tie-breaking"
  {
    Policy.name;
    choose =
      (fun ctx ~job ~volume:_ ~candidates ->
        match candidates with
        | [] -> None
        | _ ->
            let dims = Grid.dims ctx.grid in
            let scored = List.map (fun c -> (c, mfp_loss ctx c)) candidates in
            let best_loss = List.fold_left (fun acc (_, l) -> min acc l) max_int scored in
            let tied = List.filter (fun (_, l) -> l = best_loss) scored in
            let safe (c, _) =
              not
                (Bgl_predict.Predictor.partition_will_fail predictor
                   ~nodes:(Box.indices dims c) ~now:ctx.now ~horizon:job.estimate)
            in
            (match List.find_opt safe tied with
            | Some (c, _) -> Some c
            | None -> ( match tied with (c, _) :: _ -> Some c | [] -> None)));
  }

let random ~seed =
  instrument "placement.random"
  {
    Policy.name = Printf.sprintf "random(seed=%d)" seed;
    choose =
      (fun ctx ~job ~volume:_ ~candidates ->
        match candidates with
        | [] -> None
        | _ ->
            let n = List.length candidates in
            let draw =
              Bgl_stats.Rng.hash_float ~seed job.Bgl_trace.Job_log.id
                (int_of_float (ctx.Policy.now *. 10.))
            in
            List.nth_opt candidates (int_of_float (draw *. float_of_int n)));
  }

let safest ~predictor () =
  let name = Printf.sprintf "safest[%s]" predictor.Bgl_predict.Predictor.name in
  instrument "placement.safest"
  {
    Policy.name;
    choose =
      (fun ctx ~job ~volume:_ ~candidates ->
        let dims = Grid.dims ctx.grid in
        let p_f candidate =
          Bgl_predict.Predictor.partition_prob predictor ~combine:`Product
            ~nodes:(Box.indices dims candidate) ~now:ctx.now ~horizon:job.estimate
        in
        argmin ~stop:0. p_f candidates);
  }
