(** Trace loading: JSONL lines → demultiplexed run sections.

    The recorder's schema-2 trace frames every run with a [run_meta]
    header and a [run_summary] trailer, and tags every line of a
    multiplexed stream (parallel sweeps share one writer) with its run
    id. This module parses lines totally ({!parse_line} never raises),
    demuxes them by run id, and splits each run's stream into
    {!section}s at [run_meta] boundaries — so a stitched
    kill-then-resume audit sees the truncated first attempt and the
    resumed complete run as two sections of the same id. *)

open Bgl_torus

type meta = {
  schema : int;
  log : string;
  failures : string;
  policy : string;
  dims : Dims.t;
  wrap : bool;
  jobs : int;
  seed : int option;
  parent : string option;
  repair_time : float;
  checkpointed : bool;
}

type ev =
  | Arrive of { job : int; size : int; work : float }
  | Start of { job : int; box : Box.t; restart : bool }
  | Kill of { job : int; node : int; lost_node_s : float }
  | Finish of { job : int }
  | Migrate of { job : int; from_box : Box.t; to_box : Box.t }
  | Node_fail of { node : int; victim : int option }
  | Node_repair of { node : int }

val ev_name : ev -> string
(** The wire name (["job_start"], ...). *)

type item = { file : string; lineno : int; len : int; time : float; event : ev }

type section = {
  run : string option;  (** the stream's run tag; [None] for untagged traces *)
  meta : meta;
  meta_time : float;
  meta_file : string;
  meta_line : int;
  events : item list;  (** lifecycle events between header and trailer *)
  summary : (Bgl_sim.Metrics.report * float) option;
      (** absent iff the section was truncated (crash or new header) *)
  last_file : string;
  last_line : int;
}

val complete : section -> bool
(** Whether the section closed with a [run_summary]. *)

type t = {
  sections : section list;  (** in stream order of their closing line *)
  findings : Finding.t list;  (** A1 parse and A2 orphan findings *)
  lines_total : int;
  dropped_tail : int;
      (** truncated final lines dropped as crash tails, like the
          journal reader does — at most one per file *)
}

type payload = P_meta of meta | P_ev of ev | P_summary of Bgl_sim.Metrics.report
type parsed = { p_run : string option; p_time : float; p_payload : payload }

val parse_line : string -> (parsed, string) result
(** Total: malformed JSON, unknown events and missing or ill-typed
    members are [Error]s. *)

val of_lines : (string * string list) list -> t
(** [(filename, lines)] pairs, concatenated in order; blank lines are
    skipped. The filename only labels findings. *)

val load_files : string list -> (t, Bgl_resilience.Error.t) result
(** Read and section the files; [Error (Io _)] on unreadable paths. *)
