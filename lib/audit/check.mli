(** Schedule checkers: independent re-verification of one run.

    Each checker replays a {!Trace.section} against its declared torus
    and compares what the trace claims with what a correct scheduler
    could have done. The catalogue (rules {!Finding.rule}):

    - A2 — schema version supported; stitched sections agree.
    - A3 — timestamps never regress within a section.
    - A4 — every box is in bounds, wrap-canonical, and large enough
      for its job.
    - A5 — sweep-line occupancy: partitions never overlap, down nodes
      are never handed out, kills come from nodes inside the victim's
      partition, failure victims match the preceding kill.
    - A6 — lifecycle legality: arrive → queued → running →
      {finish, kill → queued, migrate}; restart flags truthful; no
      events after finish; no duplicate arrivals.
    - A7 — conservation: arrivals, finishes, kills, migrations,
      failures and restarts all agree with the run summary's counts.
    - A8 — metrics: utilization, unused capacity, busy fraction, lost
      node-seconds, makespan, mean wait/response and the ω-identity
      recomputed from the events match the summary within a relative
      float tolerance. *)

val tol : float
(** Relative tolerance used by the metric cross-checks (1e-6). *)

val close_enough : ?slack:float -> float -> float -> bool
(** [close_enough ?slack a b]: equal within [slack] (an absolute
    allowance, default 0 — used for timestamp-quantization error) plus
    the relative tolerance {!tol}. *)

val section : Trace.section -> Finding.t list * int
(** Audit one section; returns findings and the number of checks run.
    A truncated section (no summary) gets the streaming checks
    (A2–A6) only. *)

val stitch : Trace.section list -> Finding.t list * int
(** Cross-section checks over the whole stitched stream: sections
    sharing a run id must agree — truncated attempts must be exact
    event prefixes of a complete resume, duplicate complete runs must
    replay identically, and a cross-file resume must declare its
    parent journal. *)
