type certificate = {
  files : string list;
  sections : int;
  complete : int;
  lines : int;
  dropped_tail : int;
  checks : int;
  findings : Finding.t list;
}

let pass c = c.findings = []

type obs = { checks_total : Bgl_obs.Registry.counter; violations_total : Bgl_obs.Registry.counter }

let make_obs () =
  let reg = Bgl_obs.Runtime.registry () in
  {
    checks_total =
      Bgl_obs.Registry.counter reg ~help:"audit checks executed" "bgl_audit_checks_total";
    violations_total =
      Bgl_obs.Registry.counter reg ~help:"audit violations found" "bgl_audit_violations_total";
  }

let audit ~files (t : Trace.t) =
  let obs = make_obs () in
  let span name f =
    if Bgl_obs.Span.enabled () then Bgl_obs.Span.time ~name f else f ()
  in
  let per_section =
    span "audit.check" (fun () -> List.map Check.section t.sections)
  in
  let stitch_findings, stitch_checks = span "audit.stitch" (fun () -> Check.stitch t.sections) in
  let checks = List.fold_left (fun acc (_, c) -> acc + c) stitch_checks per_section in
  let findings =
    t.findings @ List.concat_map fst per_section @ stitch_findings |> List.sort Finding.compare
  in
  Bgl_obs.Registry.add obs.checks_total (float_of_int checks);
  Bgl_obs.Registry.add obs.violations_total (float_of_int (List.length findings));
  {
    files;
    sections = List.length t.sections;
    complete = List.length (List.filter Trace.complete t.sections);
    lines = t.lines_total;
    dropped_tail = t.dropped_tail;
    checks;
    findings;
  }

let audit_files paths =
  let load () =
    if Bgl_obs.Span.enabled () then
      Bgl_obs.Span.time ~name:"audit.load" (fun () -> Trace.load_files paths)
    else Trace.load_files paths
  in
  Result.map (audit ~files:paths) (load ())

let audit_lines ?(file = "<memory>") lines = audit ~files:[ file ] (Trace.of_lines [ (file, lines) ])

let certificate_json c =
  let open Bgl_obs.Jsonl in
  obj
    [
      ("kind", string "certificate");
      ("pass", bool (pass c));
      ("files", "[" ^ String.concat "," (List.map string c.files) ^ "]");
      ("runs", int c.sections);
      ("complete", int c.complete);
      ("lines", int c.lines);
      ("dropped_tail", int c.dropped_tail);
      ("checks", int c.checks);
      ("violations", int (List.length c.findings));
      ("schema", int Bgl_sim.Recorder.schema_version);
    ]

let to_jsonl c = List.map Finding.to_json c.findings @ [ certificate_json c ]

let pp ppf c =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) c.findings;
  Format.fprintf ppf "%s: %d run section%s (%d complete), %d line%s, %d checks, %d violation%s%s@."
    (if pass c then "PASS" else "FAIL")
    c.sections
    (if c.sections = 1 then "" else "s")
    c.complete c.lines
    (if c.lines = 1 then "" else "s")
    c.checks
    (List.length c.findings)
    (if List.length c.findings = 1 then "" else "s")
    (if c.dropped_tail > 0 then Printf.sprintf " (%d truncated tail line(s) dropped)" c.dropped_tail
     else "")
