(** Certificate assembly: load → check → verdict.

    A certificate is the machine-checkable result of auditing one or
    more trace files as a single stitched stream: every run section
    individually verified ({!Check.section}), the cross-section seam
    rules applied ({!Check.stitch}), and the verdict reduced to
    pass/fail plus the violation findings. The obs counters
    [bgl_audit_checks_total] / [bgl_audit_violations_total] and the
    [audit.*] span group record every audit against the ambient
    {!Bgl_obs.Runtime} registry. *)

type certificate = {
  files : string list;
  sections : int;  (** run sections seen across all files *)
  complete : int;  (** sections closed by a run_summary *)
  lines : int;
  dropped_tail : int;  (** truncated final lines dropped as crash tails *)
  checks : int;
  findings : Finding.t list;  (** sorted; empty iff the audit passes *)
}

val pass : certificate -> bool

val audit : files:string list -> Trace.t -> certificate
(** Pure core: audit an already-loaded trace. [files] only labels the
    certificate. *)

val audit_files : string list -> (certificate, Bgl_resilience.Error.t) result
(** Load the files (in the order given — stitch order matters for
    resumed runs) and audit them. [Error] only on I/O failure;
    unparseable content becomes findings, not errors. *)

val audit_lines : ?file:string -> string list -> certificate
(** In-memory variant for tests and self-checks. *)

val certificate_json : certificate -> string
(** One [{"kind":"certificate",...}] JSON line. *)

val to_jsonl : certificate -> string list
(** One finding line per violation (lint shape), then the certificate
    line. *)

val pp : Format.formatter -> certificate -> unit
