(** Audit violations, in the lint findings shape.

    Every checker failure becomes one finding anchored to the trace
    line that exposed it. The JSONL encoding mirrors
    {!Bgl_lint.Finding.to_json} (kind/rule/name/severity/file/line/
    col/end_col/msg) so downstream findings consumers handle both
    tools; audit findings additionally carry the run id. *)

type rule =
  | A1  (** malformed-line: unparseable JSON, unknown event, missing field *)
  | A2  (** framing: missing run_meta/run_summary, orphan lines, seam mismatch *)
  | A3  (** timestamp-regression: non-monotone times within a run *)
  | A4  (** invalid-box: out of bounds, non-canonical, too small for the job *)
  | A5  (** occupancy: overlap, start on a down node, phantom vacate *)
  | A6  (** lifecycle: illegal job state transition *)
  | A7  (** conservation: job counts disagree with the run summary *)
  | A8  (** metrics-mismatch: recomputed metrics disagree with the summary *)

val id : rule -> string
val name : rule -> string
val all_rules : rule list
val rule_of_id : string -> rule option

type t = {
  rule : rule;
  file : string;
  line : int;  (** 1-based line number in [file]; 0 for whole-trace findings *)
  end_col : int;  (** length of the offending line; the finding spans it *)
  run : string option;  (** run id of the section the finding belongs to *)
  message : string;
}

val make : rule -> file:string -> line:int -> ?end_col:int -> ?run:string -> string -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_json : t -> string
