open Bgl_torus

(* Relative float tolerance for cross-checking recomputed metrics
   against the engine's totals. The engine integrates piecewise in
   event order and the auditor regroups the same intervals (stale
   finish events split the engine's batches invisibly), so the sums
   differ in rounding only — parts in 1e-15, nowhere near 1e-6. *)
let tol = 1e-6

(* The trace serializes floats at 12 significant digits, so every
   timestamp read back carries a relative quantization error up to
   ~5e-13. Checks that *subtract* nearby timestamps (tenancies, waits)
   lose that cancellation and need an absolute slack proportional to
   the timestamp magnitude, not the difference. *)
let time_quantum = 1e-11

let close_enough ?(slack = 0.) a b =
  Float.abs (a -. b) <= slack +. (tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b)))

(* ------------------------------------------------------------------ *)
(* Per-job lifecycle state, reconstructed from the trace alone. *)

type jstate = Queued | Running of { box : Box.t; started : float } | Done

type jinfo = {
  arrival : float;
  size : int;
  work : float;
  mutable state : jstate;
  mutable first_start : float option;
  mutable kills : int;
}

let free_owner = min_int
let down_owner = min_int + 1

let box_valid dims ~wrap (b : Box.t) =
  b.shape.sx > 0 && b.shape.sy > 0 && b.shape.sz > 0
  && Coord.in_bounds dims b.base && Shape.fits dims b.shape
  && (wrap
     || b.base.x + b.shape.sx <= dims.nx
        && b.base.y + b.shape.sy <= dims.ny
        && b.base.z + b.shape.sz <= dims.nz)
  && Box.equal (Box.canonical dims ~wrap b) b

(* ------------------------------------------------------------------ *)

let section (s : Trace.section) =
  let findings = ref [] in
  let viol rule (it : Trace.item) msg =
    findings :=
      Finding.make rule ~file:it.file ~line:it.lineno ~end_col:it.len ?run:s.run msg :: !findings
  in
  let viol_meta rule msg =
    findings := Finding.make rule ~file:s.meta_file ~line:s.meta_line ?run:s.run msg :: !findings
  in
  let viol_last rule msg =
    findings := Finding.make rule ~file:s.last_file ~line:s.last_line ?run:s.run msg :: !findings
  in
  let m = s.meta in
  let dims = m.dims in
  let nodes = Dims.volume dims in
  let checks = ref 0 in
  let check () = incr checks in

  (* A2: schema version *)
  check ();
  if m.schema < 2 || m.schema > Bgl_sim.Recorder.schema_version then
    viol_meta A2
      (Printf.sprintf "trace schema %d not supported (auditor understands 2..%d)" m.schema
         Bgl_sim.Recorder.schema_version);

  (* A3: monotone timestamps *)
  check ();
  let prev = ref s.meta_time in
  List.iter
    (fun (it : Trace.item) ->
      if it.time < !prev then
        viol A3 it (Printf.sprintf "time %.17g regresses below %.17g" it.time !prev)
      else prev := it.time)
    s.events;
  (match s.summary with
  | Some (_, stime) when stime < !prev ->
      viol_last A3 (Printf.sprintf "run_summary time %.17g regresses below %.17g" stime !prev)
  | Some _ | None -> ());

  (* A4/A5/A6 + independent metric accumulation, in one sweep. *)
  check ();
  check ();
  check ();
  let jobs : (int, jinfo) Hashtbl.t = Hashtbl.create 64 in
  let owner = Array.make (max nodes 1) free_owner in
  let arrived = ref 0 and finished = ref 0 in
  let kills_total = ref 0 and migrations_total = ref 0 and failures_total = ref 0 in
  let lost_sum = ref 0. in
  let restarts_completed = ref 0 in
  let waits = ref [] and responses = ref [] in
  (* occupancy integrals, engine-style: busy = occupied + down nodes *)
  let busy = ref 0 and demand = ref 0 in
  let anchored = ref false and anchor = ref 0. and last_t = ref 0. in
  let snap_busy = ref 0 and snap_demand = ref 0 in
  let busy_integral = ref 0. and unused_integral = ref 0. in
  let last_kill = ref None in
  let job_of it j =
    match Hashtbl.find_opt jobs j with
    | Some info -> Some info
    | None ->
        viol A6 it (Printf.sprintf "job %d acts before arriving" j);
        None
  in
  let check_box it b =
    if not (box_valid dims ~wrap:m.wrap b) then begin
      viol A4 it (Format.asprintf "box %a is invalid on %s torus" Box.pp b (Dims.to_string dims));
      false
    end
    else true
  in
  (* A box that fails the bounds checks has no well-defined cell set
     (Box.indices asserts); treat it as occupying nothing so the audit
     can keep going after the A4 finding instead of crashing. *)
  let indices_of (b : Box.t) =
    if
      b.shape.sx > 0 && b.shape.sy > 0 && b.shape.sz > 0
      && Coord.in_bounds dims b.base && Shape.fits dims b.shape
    then Box.indices dims b
    else []
  in
  let occupy it j b =
    let bad = ref 0 and down = ref 0 in
    let idx = indices_of b in
    List.iter
      (fun n ->
        if owner.(n) = down_owner then incr down
        else if owner.(n) <> free_owner then incr bad;
        owner.(n) <- j)
      idx;
    if !down > 0 then
      viol A5 it (Printf.sprintf "job %d starts on %d down node(s)" j !down);
    if !bad > 0 then
      viol A5 it
        (Printf.sprintf "job %d overlaps %d node(s) already owned by another job" j !bad);
    busy := !busy + List.length idx - !down
  in
  let vacate it j b =
    let bad = ref 0 in
    let idx = indices_of b in
    List.iter (fun n -> if owner.(n) = j then owner.(n) <- free_owner else incr bad) idx;
    if !bad > 0 then
      viol A5 it (Printf.sprintf "job %d vacates %d node(s) it did not own" j !bad);
    busy := !busy - (List.length idx - !bad)
  in
  let handle_item (it : Trace.item) =
    match it.event with
    | Trace.Arrive { job; size; work } -> (
        match Hashtbl.find_opt jobs job with
        | Some _ -> viol A6 it (Printf.sprintf "job %d arrives twice" job)
        | None ->
            Hashtbl.replace jobs job
              { arrival = it.time; size; work; state = Queued; first_start = None; kills = 0 };
            incr arrived;
            demand := !demand + size)
    | Trace.Start { job; box; restart } -> (
        ignore (check_box it box);
        match job_of it job with
        | None -> ()
        | Some info ->
            (match info.state with
            | Queued -> ()
            | Running _ -> viol A6 it (Printf.sprintf "job %d starts while already running" job)
            | Done -> viol A6 it (Printf.sprintf "job %d starts after finishing" job));
            if Box.volume box < info.size then
              viol A4 it
                (Printf.sprintf "job %d needs %d nodes but its box holds %d" job info.size
                   (Box.volume box));
            if restart <> (info.kills > 0) then
              viol A6 it
                (Printf.sprintf "job %d restart flag is %b after %d kill(s)" job restart info.kills);
            occupy it job box;
            if info.state = Queued then demand := !demand - info.size;
            if info.first_start = None then info.first_start <- Some it.time;
            info.state <- Running { box; started = it.time })
    | Trace.Kill { job; node; lost_node_s } -> (
        match job_of it job with
        | None -> ()
        | Some info -> (
            match info.state with
            | Running { box; started } ->
                if not (List.mem node (indices_of box)) then
                  viol A5 it
                    (Printf.sprintf "job %d killed by node %d outside its partition" job node);
                vacate it job box;
                info.kills <- info.kills + 1;
                info.state <- Queued;
                demand := !demand + info.size;
                incr kills_total;
                lost_sum := !lost_sum +. lost_node_s;
                last_kill := Some (it.time, node, job);
                (* A8: per-kill lost work is bounded by the tenancy *)
                let cap = float_of_int (Box.volume box) *. (it.time -. started) in
                let slack =
                  float_of_int (Box.volume box)
                  *. time_quantum
                  *. (Float.abs it.time +. Float.abs started)
                in
                if m.checkpointed then begin
                  if lost_node_s < -.tol || lost_node_s > cap +. slack +. (tol *. Float.max 1. cap)
                  then
                    viol A8 it
                      (Printf.sprintf "job %d lost %.17g node-s, outside [0, %.17g]" job
                         lost_node_s cap)
                end
                else if not (close_enough ~slack lost_node_s cap) then
                  viol A8 it
                    (Printf.sprintf
                       "job %d lost %.17g node-s but the uncheckpointed tenancy held %.17g" job
                       lost_node_s cap)
            | Queued | Done -> viol A6 it (Printf.sprintf "job %d killed while not running" job)))
    | Trace.Finish { job } -> (
        match job_of it job with
        | None -> ()
        | Some info -> (
            match info.state with
            | Running { box; _ } ->
                vacate it job box;
                info.state <- Done;
                incr finished;
                restarts_completed := !restarts_completed + info.kills;
                waits :=
                  (match info.first_start with Some fs -> fs -. info.arrival | None -> 0.)
                  :: !waits;
                responses := (it.time -. info.arrival) :: !responses
            | Queued | Done -> viol A6 it (Printf.sprintf "job %d finishes while not running" job)))
    | Trace.Migrate _ -> assert false (* handled in batches below *)
    | Trace.Node_fail { node; victim } ->
        if node < 0 || node >= nodes then
          viol A5 it (Printf.sprintf "failure on node %d outside the %d-node torus" node nodes)
        else begin
          incr failures_total;
          (match victim with
          | Some j -> (
              match !last_kill with
              | Some (t, n, k) when t = it.time && n = node && k = j -> ()
              | Some _ | None ->
                  viol A5 it
                    (Printf.sprintf
                       "node %d claims victim %d but no matching kill precedes it" node j))
          | None ->
              if owner.(node) <> free_owner && owner.(node) <> down_owner then
                viol A5 it
                  (Printf.sprintf "node %d fails with no victim while job %d occupies it" node
                     owner.(node)));
          if m.repair_time > 0. && owner.(node) = free_owner then begin
            owner.(node) <- down_owner;
            incr busy
          end
        end
    | Trace.Node_repair { node } ->
        if node < 0 || node >= nodes then
          viol A5 it (Printf.sprintf "repair of node %d outside the %d-node torus" node nodes)
        else if owner.(node) = down_owner then begin
          owner.(node) <- free_owner;
          busy := !busy - 1
        end
        else viol A5 it (Printf.sprintf "node %d repaired while not down" node)
  in
  let handle_migration_batch (batch : Trace.item list) =
    (* The engine commits a repack two-phase (all vacates before any
       occupies), so a job's new box may overlap another's old box
       within the same batch. *)
    let moves =
      List.filter_map
        (fun (it : Trace.item) ->
          match it.event with
          | Trace.Migrate { job; from_box; to_box } -> (
              ignore (check_box it to_box);
              match job_of it job with
              | None -> None
              | Some info -> (
                  match info.state with
                  | Running { box; started } ->
                      if not (Box.equal box from_box) then
                        viol A5 it
                          (Format.asprintf "job %d migrates from %a but occupies %a" job Box.pp
                             from_box Box.pp box);
                      if Box.volume to_box < info.size then
                        viol A4 it
                          (Printf.sprintf "job %d needs %d nodes but its new box holds %d" job
                             info.size (Box.volume to_box));
                      Some (it, job, info, box, started, to_box)
                  | Queued | Done ->
                      viol A6 it (Printf.sprintf "job %d migrates while not running" job);
                      None))
          | _ -> None)
        batch
    in
    List.iter (fun (it, job, _, from_box, _, _) -> vacate it job from_box) moves;
    List.iter
      (fun (it, job, (info : jinfo), _, started, to_box) ->
        occupy it job to_box;
        info.state <- Running { box = to_box; started };
        incr migrations_total)
      moves
  in
  (* Group events into equal-time batches (the engine drains
     simultaneous events before rescheduling and integrates metrics
     once per batch), and migration runs within a batch. *)
  let first_arrival =
    List.find_map
      (fun (it : Trace.item) ->
        match it.event with Trace.Arrive _ -> Some it.time | _ -> None)
      s.events
  in
  let batch_end t =
    match first_arrival with
    | Some fa when t >= fa ->
        if not !anchored then begin
          anchored := true;
          anchor := t;
          last_t := t
        end
        else begin
          let dt = t -. !last_t in
          if dt > 0. then begin
            busy_integral := !busy_integral +. (float_of_int !snap_busy *. dt);
            let surplus = max 0 (nodes - !snap_busy - !snap_demand) in
            unused_integral := !unused_integral +. (float_of_int surplus *. dt);
            last_t := t
          end
        end;
        snap_busy := !busy;
        snap_demand := !demand
    | Some _ | None -> ()
  in
  let rec run_events = function
    | [] -> ()
    | (it : Trace.item) :: _ as items ->
        let t = it.time in
        let batch, rest =
          let rec split acc = function
            | (x : Trace.item) :: tl when x.time = t -> split (x :: acc) tl
            | tl -> (List.rev acc, tl)
          in
          split [] items
        in
        let rec go = function
          | [] -> ()
          | (x : Trace.item) :: _ as l when (match x.event with Trace.Migrate _ -> true | _ -> false)
            ->
              let rec take acc = function
                | (y : Trace.item) :: tl
                  when match y.event with Trace.Migrate _ -> true | _ -> false ->
                    take (y :: acc) tl
                | tl -> (List.rev acc, tl)
              in
              let migrations, tl = take [] l in
              handle_migration_batch migrations;
              last_kill := None;
              go tl
          | x :: tl ->
              handle_item x;
              (* A kill certifies only the node_fail recorded right
                 after it; any other event invalidates the pairing. *)
              (match x.event with Trace.Kill _ -> () | _ -> last_kill := None);
              go tl
        in
        go batch;
        batch_end t;
        run_events rest
  in
  run_events s.events;

  (* A7/A8: cross-check the engine's summary against the recomputation.
     Only a complete section carries one. *)
  (match s.summary with
  | None -> ()
  | Some (report, _) ->
      check ();
      check ();
      let conserve name got want =
        if got <> want then
          viol_last A7 (Printf.sprintf "%s: trace shows %d, summary claims %d" name got want)
      in
      conserve "arrived jobs vs run_meta" !arrived m.jobs;
      conserve "arrived jobs vs total_jobs" !arrived report.total_jobs;
      conserve "finished jobs" !finished report.completed_jobs;
      conserve "job kills" !kills_total report.job_kills;
      conserve "migrations" !migrations_total report.migrations;
      conserve "failure events" !failures_total report.failures_injected;
      conserve "restarts over completed jobs" !restarts_completed report.restarts;
      let running_at_end =
        Hashtbl.fold
          (fun _ info acc -> match info.state with Running _ -> acc + 1 | _ -> acc)
          jobs 0
      in
      if running_at_end > 0 then
        viol_last A7 (Printf.sprintf "%d job(s) still running at run_summary" running_at_end);
      let metric ?slack name got want =
        if not (close_enough ?slack got want) then
          viol_last A8 (Printf.sprintf "%s: recomputed %.17g, summary claims %.17g" name got want)
      in
      (* Differences of quantized timestamps (waits, tenancies, spans)
         need the absolute quantization slack; see [time_quantum]. *)
      let time_slack = 4. *. time_quantum *. (Float.abs !anchor +. Float.abs report.makespan) in
      metric "lost node-seconds" !lost_sum report.lost_work;
      if !finished = !arrived && !arrived > 0 then
        metric ~slack:time_slack "makespan" (!last_t -. !anchor) report.makespan;
      if !arrived = 0 then metric "makespan (empty run)" 0. report.makespan;
      (* Extend the integrals to the reported end of span with the final
         state: stale finish events past the last visible event advance
         the engine's clock without changing occupancy. *)
      let end_time = !anchor +. report.makespan in
      if !anchored && end_time > !last_t then begin
        let dt = end_time -. !last_t in
        busy_integral := !busy_integral +. (float_of_int !snap_busy *. dt);
        let surplus = max 0 (nodes - !snap_busy - !snap_demand) in
        unused_integral := !unused_integral +. (float_of_int surplus *. dt)
      end;
      let capacity = report.makespan *. float_of_int nodes in
      let useful =
        Hashtbl.fold
          (fun _ info acc ->
            match info.state with
            | Done -> acc +. (float_of_int info.size *. info.work)
            | _ -> acc)
          jobs 0.
      in
      let util = if capacity > 0. then useful /. capacity else 0. in
      let unused = if capacity > 0. then !unused_integral /. capacity else 0. in
      let busy_fraction = if capacity > 0. then !busy_integral /. capacity else 0. in
      metric "omega_util" util report.util;
      metric "omega_unused" unused report.unused;
      metric "busy_fraction" busy_fraction report.busy_fraction;
      metric "omega_lost" (1. -. util -. unused) report.lost;
      metric "omega identity (util+unused+lost)" (report.util +. report.unused +. report.lost) 1.;
      if report.completed_jobs > 0 then begin
        let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
        metric ~slack:time_slack "avg_wait" (mean !waits) report.avg_wait;
        metric ~slack:time_slack "avg_response" (mean !responses) report.avg_response
      end);
  (List.rev !findings, !checks)

(* ------------------------------------------------------------------ *)
(* Stitch checks: sections sharing a run id must agree. A truncated
   section (crashed sweep) is only certifiable when a complete sibling
   — the journal-resumed re-run — replays it event for event. *)

let meta_eq_sans_parent (a : Trace.meta) (b : Trace.meta) =
  a.schema = b.schema && a.log = b.log && a.failures = b.failures && a.policy = b.policy
  && Dims.equal a.dims b.dims && a.wrap = b.wrap && a.jobs = b.jobs && a.seed = b.seed
  && a.repair_time = b.repair_time && a.checkpointed = b.checkpointed

let events_prefix (short : Trace.item list) (long : Trace.item list) =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | (x : Trace.item) :: xs, (y : Trace.item) :: ys ->
        x.time = y.time && x.event = y.event && go xs ys
  in
  go short long

let stitch (sections : Trace.section list) =
  let findings = ref [] in
  let checks = ref 0 in
  let by_run = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace.section) ->
      let k = Option.value ~default:"" s.run in
      Hashtbl.replace by_run k (s :: Option.value ~default:[] (Hashtbl.find_opt by_run k)))
    sections;
  Hashtbl.iter
    (fun _ group ->
      incr checks;
      let group = List.rev group in
      let completes = List.filter Trace.complete group in
      let truncated = List.filter (fun s -> not (Trace.complete s)) group in
      (* Duplicate complete runs must replay identically. *)
      (match completes with
      | first :: rest ->
          List.iter
            (fun (s : Trace.section) ->
              if
                not
                  (meta_eq_sans_parent first.meta s.meta
                  && events_prefix s.events first.events
                  && events_prefix first.events s.events)
              then
                findings :=
                  Finding.make A2 ~file:s.meta_file ~line:s.meta_line ?run:s.run
                    "duplicate complete sections for this run disagree"
                  :: !findings)
            rest
      | [] -> ());
      List.iter
        (fun (t : Trace.section) ->
          match
            List.find_opt
              (fun (c : Trace.section) ->
                meta_eq_sans_parent t.meta c.meta && events_prefix t.events c.events)
              completes
          with
          | None ->
              findings :=
                Finding.make A2 ~file:t.meta_file ~line:t.meta_line ?run:t.run
                  "run truncated (no run_summary) and no complete resume replays it"
                :: !findings
          | Some c ->
              (* Cross-file seams come from kill-then-resume: the
                 resumed run must carry its parent journal. *)
              if c.meta_file <> t.meta_file && c.meta.parent = None then
                findings :=
                  Finding.make A2 ~file:c.meta_file ~line:c.meta_line ?run:c.run
                    "resumed section completes a truncated run but declares no parent journal"
                  :: !findings)
        truncated)
    by_run;
  (List.rev !findings, !checks)
