open Bgl_torus

type meta = {
  schema : int;
  log : string;
  failures : string;
  policy : string;
  dims : Dims.t;
  wrap : bool;
  jobs : int;
  seed : int option;
  parent : string option;
  repair_time : float;
  checkpointed : bool;
}

type ev =
  | Arrive of { job : int; size : int; work : float }
  | Start of { job : int; box : Box.t; restart : bool }
  | Kill of { job : int; node : int; lost_node_s : float }
  | Finish of { job : int }
  | Migrate of { job : int; from_box : Box.t; to_box : Box.t }
  | Node_fail of { node : int; victim : int option }
  | Node_repair of { node : int }

let ev_name = function
  | Arrive _ -> "job_arrive"
  | Start _ -> "job_start"
  | Kill _ -> "job_kill"
  | Finish _ -> "job_finish"
  | Migrate _ -> "job_migrate"
  | Node_fail _ -> "node_fail"
  | Node_repair _ -> "node_repair"

type item = { file : string; lineno : int; len : int; time : float; event : ev }

type section = {
  run : string option;
  meta : meta;
  meta_time : float;
  meta_file : string;
  meta_line : int;
  events : item list;
  summary : (Bgl_sim.Metrics.report * float) option;  (** report, summary time *)
  last_file : string;
  last_line : int;
}

let complete s = Option.is_some s.summary

type t = {
  sections : section list;
  findings : Finding.t list;
  lines_total : int;
  dropped_tail : int;
}

(* ------------------------------------------------------------------ *)
(* Line parsing *)

let ( let* ) = Result.bind

let field name v =
  Option.to_result ~none:(Printf.sprintf "missing member %S" name) (Bgl_obs.Jsonl.member name v)

let num name v =
  let* x = field name v in
  match x with
  | Bgl_obs.Jsonl.Number f -> Ok f
  | _ -> Error (Printf.sprintf "member %S is not a number" name)

let intm name v = Result.map int_of_float (num name v)

let strm name v =
  let* x = field name v in
  match x with
  | Bgl_obs.Jsonl.String s -> Ok s
  | _ -> Error (Printf.sprintf "member %S is not a string" name)

let boolm name v =
  let* x = field name v in
  match x with
  | Bgl_obs.Jsonl.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "member %S is not a bool" name)

let opt_intm name v =
  let* x = field name v in
  match x with
  | Bgl_obs.Jsonl.Null -> Ok None
  | Bgl_obs.Jsonl.Number f -> Ok (Some (int_of_float f))
  | _ -> Error (Printf.sprintf "member %S is not a number or null" name)

let opt_strm name v =
  let* x = field name v in
  match x with
  | Bgl_obs.Jsonl.Null -> Ok None
  | Bgl_obs.Jsonl.String s -> Ok (Some s)
  | _ -> Error (Printf.sprintf "member %S is not a string or null" name)

let boxm name v =
  let* b = field name v in
  let* x = intm "x" b in
  let* y = intm "y" b in
  let* z = intm "z" b in
  let* sx = intm "sx" b in
  let* sy = intm "sy" b in
  let* sz = intm "sz" b in
  match Box.make (Coord.make x y z) (Shape.make sx sy sz) with
  | box -> Ok box
  | exception Invalid_argument m -> Error (Printf.sprintf "member %S: %s" name m)

type payload = P_meta of meta | P_ev of ev | P_summary of Bgl_sim.Metrics.report

type parsed = { p_run : string option; p_time : float; p_payload : payload }

let parse_line raw =
  let* v = Bgl_obs.Jsonl.parse raw in
  let* evname = strm "ev" v in
  let* time = num "t" v in
  let run =
    match Bgl_obs.Jsonl.member "run" v with Some (Bgl_obs.Jsonl.String s) -> Some s | _ -> None
  in
  let* payload =
    match evname with
    | "run_meta" ->
        let* schema = intm "schema" v in
        let* log = strm "log" v in
        let* failures = strm "failures" v in
        let* policy = strm "policy" v in
        let* dims_s = strm "dims" v in
        let* dims = Dims.of_string dims_s in
        let* wrap = boolm "wrap" v in
        let* jobs = intm "jobs" v in
        let* seed = opt_intm "seed" v in
        let* parent = opt_strm "parent" v in
        let* repair_time = num "repair_time" v in
        let* checkpointed = boolm "checkpointed" v in
        Ok
          (P_meta
             {
               schema;
               log;
               failures;
               policy;
               dims;
               wrap;
               jobs;
               seed;
               parent;
               repair_time;
               checkpointed;
             })
    | "job_arrive" ->
        let* job = intm "job" v in
        let* size = intm "size" v in
        let* work = num "work" v in
        Ok (P_ev (Arrive { job; size; work }))
    | "job_start" ->
        let* job = intm "job" v in
        let* box = boxm "box" v in
        let* restart = boolm "restart" v in
        Ok (P_ev (Start { job; box; restart }))
    | "job_kill" ->
        let* job = intm "job" v in
        let* node = intm "node" v in
        let* lost_node_s = num "lost_node_s" v in
        Ok (P_ev (Kill { job; node; lost_node_s }))
    | "job_finish" ->
        let* job = intm "job" v in
        Ok (P_ev (Finish { job }))
    | "job_migrate" ->
        let* job = intm "job" v in
        let* from_box = boxm "from" v in
        let* to_box = boxm "to" v in
        Ok (P_ev (Migrate { job; from_box; to_box }))
    | "node_fail" ->
        let* node = intm "node" v in
        let* victim = opt_intm "victim" v in
        Ok (P_ev (Node_fail { node; victim }))
    | "node_repair" ->
        let* node = intm "node" v in
        Ok (P_ev (Node_repair { node }))
    | "run_summary" ->
        let* report = field "report" v in
        let* report = Bgl_sim.Metrics.report_of_json report in
        Ok (P_summary report)
    | other -> Error (Printf.sprintf "unknown event %S" other)
  in
  Ok { p_run = run; p_time = time; p_payload = payload }

(* ------------------------------------------------------------------ *)
(* Sectioning: demultiplex the (possibly interleaved) line stream by
   run id, and split each run's stream into sections at run_meta
   boundaries. A parallel sweep interleaves whole lines from many
   domains; a stitched kill-then-resume audit concatenates files, so
   one run id may open several sections (a truncated first attempt
   followed by the resumed complete one). *)

type open_section = {
  o_run : string option;
  o_meta : meta;
  o_meta_time : float;
  o_meta_file : string;
  o_meta_line : int;
  mutable o_events : item list;  (* reversed *)
  mutable o_summary : (Bgl_sim.Metrics.report * float) option;
  mutable o_last_file : string;
  mutable o_last_line : int;
}

let close (o : open_section) =
  {
    run = o.o_run;
    meta = o.o_meta;
    meta_time = o.o_meta_time;
    meta_file = o.o_meta_file;
    meta_line = o.o_meta_line;
    events = List.rev o.o_events;
    summary = o.o_summary;
    last_file = o.o_last_file;
    last_line = o.o_last_line;
  }

let of_lines files =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let open_by_run : (string, open_section) Hashtbl.t = Hashtbl.create 16 in
  let closed = ref [] in
  let order = ref [] in  (* open-section keys in first-seen order *)
  let key = function None -> "" | Some r -> r in
  let lines_total = ref 0 in
  let dropped_tail = ref 0 in
  let handle_line file lineno raw ~is_last =
    incr lines_total;
    match parse_line raw with
    | Error msg ->
        (* A truncated final line is the expected signature of a killed
           writer (the journal reader tolerates the same); anything
           else is a real violation. *)
        if is_last then incr dropped_tail
        else
          emit
            (Finding.make A1 ~file ~line:lineno ~end_col:(String.length raw)
               (Printf.sprintf "unparseable trace line: %s" msg))
    | Ok { p_run; p_time; p_payload } -> (
        let k = key p_run in
        match p_payload with
        | P_meta m ->
            (match Hashtbl.find_opt open_by_run k with
            | Some o ->
                (* New header for a run that never closed: the previous
                   attempt was truncated (crash); keep it for the
                   stitch check. *)
                closed := close o :: !closed;
                Hashtbl.remove open_by_run k
            | None -> ());
            if not (List.mem k !order) then order := !order @ [ k ];
            Hashtbl.replace open_by_run k
              {
                o_run = p_run;
                o_meta = m;
                o_meta_time = p_time;
                o_meta_file = file;
                o_meta_line = lineno;
                o_events = [];
                o_summary = None;
                o_last_file = file;
                o_last_line = lineno;
              }
        | P_ev event -> (
            match Hashtbl.find_opt open_by_run k with
            | None ->
                emit
                  (Finding.make A2 ~file ~line:lineno ~end_col:(String.length raw) ?run:p_run
                     (Printf.sprintf "%s line outside any run (no run_meta seen)" (ev_name event)))
            | Some o ->
                o.o_events <-
                  { file; lineno; len = String.length raw; time = p_time; event } :: o.o_events;
                o.o_last_file <- file;
                o.o_last_line <- lineno)
        | P_summary report -> (
            match Hashtbl.find_opt open_by_run k with
            | None ->
                emit
                  (Finding.make A2 ~file ~line:lineno ~end_col:(String.length raw) ?run:p_run
                     "run_summary outside any run (no run_meta seen)")
            | Some o ->
                o.o_summary <- Some (report, p_time);
                o.o_last_file <- file;
                o.o_last_line <- lineno;
                closed := close o :: !closed;
                Hashtbl.remove open_by_run k))
  in
  List.iter
    (fun (file, lines) ->
      let n = List.length lines in
      List.iteri
        (fun i raw -> if String.length raw > 0 then handle_line file (i + 1) raw ~is_last:(i = n - 1))
        lines)
    files;
  (* Runs still open at end of stream are truncated sections. *)
  List.iter
    (fun k ->
      match Hashtbl.find_opt open_by_run k with
      | Some o -> closed := close o :: !closed
      | None -> ())
    !order;
  {
    sections = List.rev !closed;
    findings = List.rev !findings;
    lines_total = !lines_total;
    dropped_tail = !dropped_tail;
  }

let read_lines path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match In_channel.input_line ic with Some l -> go (l :: acc) | None -> List.rev acc
        in
        Ok (go []))
  with Sys_error detail -> Error (Bgl_resilience.Error.Io { path; detail })

let load_files paths =
  let rec go acc = function
    | [] -> Ok (of_lines (List.rev acc))
    | path :: rest -> (
        match read_lines path with
        | Ok lines -> go ((path, lines) :: acc) rest
        | Error e -> Error e)
  in
  go [] paths
