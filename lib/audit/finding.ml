type rule = A1 | A2 | A3 | A4 | A5 | A6 | A7 | A8

let id = function
  | A1 -> "A1"
  | A2 -> "A2"
  | A3 -> "A3"
  | A4 -> "A4"
  | A5 -> "A5"
  | A6 -> "A6"
  | A7 -> "A7"
  | A8 -> "A8"

let name = function
  | A1 -> "malformed-line"
  | A2 -> "framing"
  | A3 -> "timestamp-regression"
  | A4 -> "invalid-box"
  | A5 -> "occupancy"
  | A6 -> "lifecycle"
  | A7 -> "conservation"
  | A8 -> "metrics-mismatch"

let all_rules = [ A1; A2; A3; A4; A5; A6; A7; A8 ]
let rule_of_id s = List.find_opt (fun r -> id r = s) all_rules

type t = {
  rule : rule;
  file : string;
  line : int;  (** 1-based line number in [file]; 0 for whole-trace findings *)
  end_col : int;  (** length of the offending line; the finding spans it *)
  run : string option;  (** run id of the section the finding belongs to *)
  message : string;
}

let make rule ~file ~line ?(end_col = 0) ?run message = { rule; file; line; end_col; run; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else String.compare (id a.rule) (id b.rule)

let pp ppf t =
  Format.fprintf ppf "%s:%d: [%s/error] %s: %s%s" t.file t.line (id t.rule) (name t.rule) t.message
    (match t.run with Some r -> Printf.sprintf " (run %s)" r | None -> "")

(* Same shape as Bgl_lint.Finding.to_json, so one findings consumer
   handles both tools; the extra "run" member is the trace-audit
   addition. *)
let to_json t =
  Bgl_obs.Jsonl.obj
    ([
       ("kind", Bgl_obs.Jsonl.string "finding");
       ("rule", Bgl_obs.Jsonl.string (id t.rule));
       ("name", Bgl_obs.Jsonl.string (name t.rule));
       ("severity", Bgl_obs.Jsonl.string "error");
       ("file", Bgl_obs.Jsonl.string t.file);
       ("line", Bgl_obs.Jsonl.int t.line);
       ("col", Bgl_obs.Jsonl.int 0);
       ("end_col", Bgl_obs.Jsonl.int t.end_col);
       ("msg", Bgl_obs.Jsonl.string t.message);
     ]
    @ match t.run with Some r -> [ ("run", Bgl_obs.Jsonl.string r) ] | None -> [])
