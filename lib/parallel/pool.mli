(** A fixed-size domain pool for embarrassingly-parallel sweeps.

    {!map} fans an array of independent work items out over [domains]
    OCaml 5 domains. Items are claimed from a shared atomic cursor —
    effectively single-item work stealing — so a slow cell (a large
    simulation) never leaves the other domains idle behind a static
    block partition.

    Determinism contract: [map ~domains:n f items] returns exactly
    [Array.map f items] for every [n], provided each [f items.(i)] is
    self-contained — it must not read mutable state another call
    writes. The simulator's per-scenario RNG derivation and the
    domain-local caches/observability state are designed to satisfy
    this, which is what makes parallel figure sweeps bit-identical to
    sequential ones. *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f items] applies [f] to every item and returns the
    results in item order. At most [domains] domains run at once
    (clamped to at least 1 and at most [Array.length items]); with
    [domains = 1], or fewer than two items, no domain is spawned and
    this is plain [Array.map].

    Worker domains inherit the calling domain's observability
    configuration ({!Bgl_obs.Runtime.snapshot}). If any [f] raises,
    the first exception (in item order) is re-raised with its original
    backtrace after all workers have joined.

    @raise Invalid_argument if [domains < 1]. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible default for a
    [--jobs] flag's auto mode. *)
