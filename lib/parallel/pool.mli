(** A fixed-size domain pool for embarrassingly-parallel sweeps.

    {!map} fans an array of independent work items out over [domains]
    OCaml 5 domains. Items are claimed from a shared atomic cursor —
    effectively single-item work stealing — so a slow cell (a large
    simulation) never leaves the other domains idle behind a static
    block partition.

    Determinism contract: [map ~domains:n f items] returns exactly
    [Array.map f items] for every [n], provided each [f items.(i)] is
    self-contained — it must not read mutable state another call
    writes. The simulator's per-scenario RNG derivation and the
    domain-local caches/observability state are designed to satisfy
    this, which is what makes parallel figure sweeps bit-identical to
    sequential ones. *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f items] applies [f] to every item and returns the
    results in item order. At most [domains] domains run at once
    (clamped to at least 1 and at most [Array.length items]); with
    [domains = 1], or fewer than two items, no domain is spawned and
    this is plain [Array.map].

    Worker domains inherit the calling domain's observability
    configuration ({!Bgl_obs.Runtime.snapshot}). If any [f] raises,
    the first exception (in item order) is re-raised with its original
    backtrace after all workers have joined.

    @raise Invalid_argument if [domains < 1]. *)

val map_supervised :
  ?policy:Bgl_resilience.Supervise.policy ->
  ?on_complete:(int -> 'b -> unit) ->
  domains:int ->
  ('a -> 'b) ->
  'a array ->
  'b Bgl_resilience.Supervise.outcome array * Bgl_resilience.Supervise.degradation
(** [on_complete i v] is called as soon as item [i] completes with
    [v], from whichever domain ran it — the hook for incremental
    durability (journaling a sweep cell the moment it finishes, not
    when the whole map returns). It must be domain-safe and must not
    raise; quarantined items never reach it.

    Fault-tolerant {!map}: each item runs under
    {!Bgl_resilience.Supervise.run} with [policy] (default
    {!Bgl_resilience.Supervise.default}), so a raising item is retried
    with deterministic backoff and, if it keeps failing, reported as
    [Quarantined] instead of killing the sweep — every other item
    still completes and is returned. The degradation summary counts
    completions, retries and quarantines; when the ambient
    {!Bgl_obs.Runtime} registry is live they are also exported as
    [bgl_pool_cells_total{outcome=...}] counters.

    Each attempt passes the item's index to the ["pool.cell"] failpoint
    ({!Bgl_resilience.Failpoint}), so tests and CLIs can deterministically
    fail one chosen cell.

    @raise Invalid_argument if [domains < 1]. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible default for a
    [--jobs] flag's auto mode. *)

(** A pool whose worker domains are spawned once and reused across
    batches — the substrate for a long-running service, where spawning
    domains per request would dominate small-request latency.

    A batch is executed exactly like {!map_supervised}'s (shared
    atomic-cursor claiming, supervised cells, per-batch observability
    snapshot propagation), so the results are bit-identical to the
    spawning pool for the same policy and items. One batch runs at a
    time; concurrent submitters queue on the batch slot. *)
module Persistent : sig
  type t

  val create : domains:int -> t
  (** Spawn [domains - 1] worker domains (the submitting thread
      participates in every batch, so total parallelism is [domains];
      with [domains = 1] no domain is spawned and batches run
      inline).
      @raise Invalid_argument if [domains < 1]. *)

  val size : t -> int
  (** The [domains] the pool was created with. *)

  val map_supervised :
    t ->
    ?policy:Bgl_resilience.Supervise.policy ->
    ?on_complete:(int -> 'b -> unit) ->
    ('a -> 'b) ->
    'a array ->
    'b Bgl_resilience.Supervise.outcome array * Bgl_resilience.Supervise.degradation
  (** {!map_supervised} on the persistent workers. Blocks until the
      whole batch completes; [on_complete] has the same contract as
      the spawning pool's (domain-safe, must not raise).
      @raise Invalid_argument if the pool has been {!shutdown}. *)

  val shutdown : t -> unit
  (** Stop the workers and join them. Idempotent; submitting to a
      shut-down pool raises [Invalid_argument]. *)
end
