let recommended () = Domain.recommended_domain_count ()

(* Shared claim cursor: each domain grabs the next unclaimed item, so
   load balances itself whatever the per-item cost spread. [cell i]
   must store its own result; it must not raise. *)
let run_workers ~domains ~n cell =
  let workers = min domains n in
  if workers <= 1 then
    for i = 0 to n - 1 do
      cell i
    done
  else begin
    let obs = Bgl_obs.Runtime.snapshot () in
    let next = Atomic.make 0 in
    let worker () =
      let rec claim () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          cell i;
          claim ()
        end
      in
      claim ()
    in
    let spawned =
      Array.init (workers - 1) (fun _ ->
          Domain.spawn (fun () ->
              Bgl_obs.Runtime.install obs;
              worker ()))
    in
    worker ();
    Array.iter Domain.join spawned
  end

let map ~domains f items =
  if domains < 1 then invalid_arg "Pool.map: domains must be >= 1";
  let n = Array.length items in
  if min domains n <= 1 then Array.map f items
  else begin
    let slots = Array.make n None in
    run_workers ~domains ~n (fun i ->
        slots.(i) <-
          (match f items.(i) with
          | v -> Some (Ok v)
          | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index below [n] was claimed *))
      slots
  end

let map_supervised ?(policy = Bgl_resilience.Supervise.default) ?on_complete ~domains f items =
  if domains < 1 then invalid_arg "Pool.map_supervised: domains must be >= 1";
  let open Bgl_resilience in
  let n = Array.length items in
  let outcomes =
    Array.make n
      (Supervise.Quarantined { message = "unclaimed"; attempts = 0; transient = false })
  in
  run_workers ~domains ~n (fun i ->
      let outcome =
        Supervise.run policy (fun () ->
            Failpoint.hit ~index:i "pool.cell";
            f items.(i))
      in
      outcomes.(i) <- outcome;
      match (outcome, on_complete) with
      | Supervise.Completed { value; _ }, Some cb -> cb i value
      | _ -> ());
  let degradation = Supervise.degradation_of outcomes in
  let reg = Bgl_obs.Runtime.registry () in
  if not (Bgl_obs.Registry.is_noop reg) then begin
    let count outcome v =
      Bgl_obs.Registry.add
        (Bgl_obs.Registry.counter reg ~help:"supervised sweep cells by outcome"
           (Printf.sprintf "bgl_pool_cells_total{outcome=%S}" outcome))
        (float_of_int v)
    in
    count "completed" degradation.Supervise.completed;
    count "retried" degradation.Supervise.retried;
    count "quarantined" (List.length degradation.Supervise.quarantined)
  end;
  (outcomes, degradation)
