let recommended () = Domain.recommended_domain_count ()

(* Shared claim cursor: each domain grabs the next unclaimed item, so
   load balances itself whatever the per-item cost spread. [cell i]
   must store its own result; it must not raise. *)
let run_workers ~domains ~n cell =
  let workers = min domains n in
  if workers <= 1 then
    for i = 0 to n - 1 do
      cell i
    done
  else begin
    let obs = Bgl_obs.Runtime.snapshot () in
    let next = Atomic.make 0 in
    let worker () =
      let rec claim () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          cell i;
          claim ()
        end
      in
      claim ()
    in
    let spawned =
      Array.init (workers - 1) (fun _ ->
          Domain.spawn (fun () ->
              Bgl_obs.Runtime.install obs;
              worker ()))
    in
    worker ();
    Array.iter Domain.join spawned
  end

let map ~domains f items =
  if domains < 1 then invalid_arg "Pool.map: domains must be >= 1";
  let n = Array.length items in
  if min domains n <= 1 then Array.map f items
  else begin
    let slots = Array.make n None in
    run_workers ~domains ~n (fun i ->
        slots.(i) <-
          (match f items.(i) with
          | v -> Some (Ok v)
          | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index below [n] was claimed *))
      slots
  end

(* The supervised-cell wrapper shared by the spawning and persistent
   pools: run every item under Supervise, store outcomes in item order,
   stream completions, export degradation counters. [runner ~n cell]
   must call [cell i] exactly once for each [i < n] and return only
   when all calls have; [cell] never raises (Supervise absorbs). *)
let supervised ~runner ?(policy = Bgl_resilience.Supervise.default) ?on_complete f items =
  let open Bgl_resilience in
  let n = Array.length items in
  let outcomes =
    Array.make n
      (Supervise.Quarantined { message = "unclaimed"; attempts = 0; transient = false })
  in
  runner ~n (fun i ->
      let outcome =
        Supervise.run policy (fun () ->
            Failpoint.hit ~index:i "pool.cell";
            f items.(i))
      in
      outcomes.(i) <- outcome;
      match (outcome, on_complete) with
      | Supervise.Completed { value; _ }, Some cb -> cb i value
      | _ -> ());
  let degradation = Supervise.degradation_of outcomes in
  let reg = Bgl_obs.Runtime.registry () in
  if not (Bgl_obs.Registry.is_noop reg) then begin
    let count outcome v =
      Bgl_obs.Registry.add
        (Bgl_obs.Registry.counter reg ~help:"supervised sweep cells by outcome"
           (Printf.sprintf "bgl_pool_cells_total{outcome=%S}" outcome))
        (float_of_int v)
    in
    count "completed" degradation.Supervise.completed;
    count "retried" degradation.Supervise.retried;
    count "quarantined" (List.length degradation.Supervise.quarantined)
  end;
  (outcomes, degradation)

let map_supervised ?policy ?on_complete ~domains f items =
  if domains < 1 then invalid_arg "Pool.map_supervised: domains must be >= 1";
  supervised ~runner:(run_workers ~domains) ?policy ?on_complete f items

(* ------------------------------------------------------------------ *)
(* Persistent pool: worker domains spawned once and reused across
   batches — the execution substrate of a long-running service, where
   spawning (and tearing down) domains per request would dominate
   small-request latency. Work claiming inside a batch is the same
   atomic cursor as [run_workers], so results are bit-identical to the
   spawning pool. *)

module Persistent = struct
  type batch = {
    n : int;
    cell : int -> unit;
    next : int Atomic.t;
    completed : int Atomic.t;
    obs : Bgl_obs.Runtime.snapshot;
  }

  type t = {
    lock : Mutex.t;
    work : Condition.t;  (* workers wait here for a new batch *)
    finished : Condition.t;  (* submitters wait here for batch completion *)
    mutable batch : batch option;
    mutable generation : int;  (* bumped per batch; a worker joins each generation once *)
    mutable stop : bool;
    size : int;
    mutable workers : unit Domain.t array;
  }

  let size t = t.size

  let finish_cell t b =
    if Atomic.fetch_and_add b.completed 1 = b.n - 1 then begin
      Mutex.lock t.lock;
      Condition.broadcast t.finished;
      Mutex.unlock t.lock
    end

  let claim t b =
    let rec go () =
      let i = Atomic.fetch_and_add b.next 1 in
      if i < b.n then begin
        b.cell i;
        finish_cell t b;
        go ()
      end
    in
    go ()

  let worker t =
    let seen = ref 0 in
    let rec loop () =
      Mutex.lock t.lock;
      while (not t.stop) && (t.batch = None || t.generation = !seen) do
        Condition.wait t.work t.lock
      done;
      if t.stop then Mutex.unlock t.lock
      else begin
        let b = Option.get t.batch in
        seen := t.generation;
        Mutex.unlock t.lock;
        (* Each batch carries the submitter's observability config so
           metrics/traces from worker domains land in the right place
           whatever was reconfigured between batches. *)
        Bgl_obs.Runtime.install b.obs;
        claim t b;
        loop ()
      end
    in
    loop ()

  let create ~domains =
    if domains < 1 then invalid_arg "Pool.Persistent.create: domains must be >= 1";
    let t =
      {
        lock = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        batch = None;
        generation = 0;
        stop = false;
        size = domains;
        workers = [||];
      }
    in
    t.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let run_batch t ~n cell =
    if n > 0 then begin
      let b =
        {
          n;
          cell;
          next = Atomic.make 0;
          completed = Atomic.make 0;
          obs = Bgl_obs.Runtime.snapshot ();
        }
      in
      Mutex.lock t.lock;
      if t.stop then begin
        Mutex.unlock t.lock;
        invalid_arg "Pool.Persistent: pool is shut down"
      end;
      while t.batch <> None do
        Condition.wait t.finished t.lock
      done;
      t.batch <- Some b;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      (* The submitter claims cells too: with [domains = 1] no worker
         domain exists and the batch runs entirely here. *)
      claim t b;
      Mutex.lock t.lock;
      while Atomic.get b.completed < n do
        Condition.wait t.finished t.lock
      done;
      t.batch <- None;
      (* Wake any submitter queued behind this batch for the slot. *)
      Condition.broadcast t.finished;
      Mutex.unlock t.lock
    end

  let map_supervised t ?policy ?on_complete f items =
    supervised ~runner:(fun ~n cell -> run_batch t ~n cell) ?policy ?on_complete f items

  let shutdown t =
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
end
