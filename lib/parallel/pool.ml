let recommended () = Domain.recommended_domain_count ()

let map ~domains f items =
  if domains < 1 then invalid_arg "Pool.map: domains must be >= 1";
  let n = Array.length items in
  let workers = min domains n in
  if workers <= 1 then Array.map f items
  else begin
    let obs = Bgl_obs.Runtime.snapshot () in
    (* Shared claim cursor: each domain grabs the next unclaimed item,
       so load balances itself whatever the per-item cost spread. *)
    let next = Atomic.make 0 in
    let slots = Array.make n None in
    let worker () =
      let rec claim () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (slots.(i) <-
             (match f items.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          claim ()
        end
      in
      claim ()
    in
    let spawned =
      Array.init (workers - 1) (fun _ ->
          Domain.spawn (fun () ->
              Bgl_obs.Runtime.install obs;
              worker ()))
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index below [n] was claimed *))
      slots
  end
