type t = {
  by_node : (int, float array) Hashtbl.t;  (* sorted event times per node *)
  all : Bgl_trace.Failure_log.event array;  (* sorted by time *)
}

let of_log (log : Bgl_trace.Failure_log.t) =
  let tmp = Hashtbl.create 64 in
  Array.iter
    (fun (e : Bgl_trace.Failure_log.event) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt tmp e.node) in
      Hashtbl.replace tmp e.node (e.time :: existing))
    log.events;
  let by_node = Hashtbl.create (Hashtbl.length tmp) in
  Hashtbl.iter
    (fun node times ->
      let arr = Array.of_list (List.rev times) in
      Array.sort compare arr;
      Hashtbl.replace by_node node arr)
    tmp;
  { by_node; all = Array.copy log.events }

let event_count t = Array.length t.all

(* Index of the first element strictly greater than [x], or length. *)
let upper_bound arr x =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid) <= x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length arr)

let first_failure_in t ~node ~t0 ~t1 =
  match Hashtbl.find_opt t.by_node node with
  | None -> None
  | Some times ->
      let i = upper_bound times t0 in
      if i < Array.length times && times.(i) <= t1 then Some times.(i) else None

let has_failure_in t ~node ~t0 ~t1 = first_failure_in t ~node ~t0 ~t1 <> None

let count_in t ~node ~t0 ~t1 =
  match Hashtbl.find_opt t.by_node node with
  | None -> 0
  | Some times -> max 0 (upper_bound times t1 - upper_bound times t0)

let next_event_after t ~after =
  (* t.all is sorted by (time, node); binary search on time. *)
  let n = Array.length t.all in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.all.(mid).time <= after then go (mid + 1) hi else go lo mid
  in
  let i = go 0 n in
  if i < n then Some (t.all.(i).time, t.all.(i).node) else None

let events_at t ~time =
  Array.fold_left
    (fun acc (e : Bgl_trace.Failure_log.event) -> if e.time = time then e.node :: acc else acc)
    [] t.all
  |> List.sort Int.compare
