(* Both estimators need the past events of one node up to [now]; the
   index's count/first queries give them in O(log n). *)

let check_params ~positive ~non_negative =
  if positive <= 0. then invalid_arg "History: window/half_life must be positive";
  if non_negative < 0. then invalid_arg "History: threshold must be non-negative"

let make ~name ~intensity ~threshold =
  let prob ~node ~now ~horizon = Float.min 1. (intensity ~node ~now *. horizon) in
  {
    Predictor.name;
    node_prob = (fun ~node ~now ~horizon -> prob ~node ~now ~horizon);
    node_will_fail = (fun ~node ~now ~horizon -> intensity ~node ~now *. horizon >= threshold);
  }

let rate ~window ~threshold index =
  check_params ~positive:window ~non_negative:threshold;
  let intensity ~node ~now =
    let events = Failure_index.count_in index ~node ~t0:(now -. window) ~t1:now in
    float_of_int events /. window
  in
  make ~name:(Printf.sprintf "history-rate(w=%g,th=%g)" window threshold) ~intensity ~threshold

let ewma ~half_life ~threshold index =
  check_params ~positive:half_life ~non_negative:threshold;
  (* Sum 2^(-age/half_life) over past events by stepping through
     geometrically growing age buckets; 32 half-lives bound the tail. *)
  let intensity ~node ~now =
    let lambda = Float.log 2. /. half_life in
    let rec bucket_sum k acc =
      if k >= 32 then acc
      else
        let age_hi = half_life *. float_of_int (k + 1) in
        let age_lo = half_life *. float_of_int k in
        let events =
          Failure_index.count_in index ~node ~t0:(now -. age_hi) ~t1:(now -. age_lo)
        in
        (* weight every event in the bucket at its youngest age (an
           upper bound; consistent across nodes, so ranking is fair) *)
        let weight = Float.exp (-.lambda *. age_lo) in
        bucket_sum (k + 1) (acc +. (float_of_int events *. weight))
    in
    lambda *. bucket_sum 0 0.
  in
  make ~name:(Printf.sprintf "history-ewma(hl=%g,th=%g)" half_life threshold) ~intensity ~threshold
