(** Predictor quality measurement.

    The paper characterises predictors by their false-negative and
    false-positive probabilities (Section 4.2) but never measures them
    inside the simulation; this module closes that loop. A predictor is
    scored against the ground-truth failure log over a grid of
    (query time, node, horizon) probes, yielding the confusion counts
    and the derived rates the paper reasons with. *)

type counts = {
  true_positive : int;  (** predicted fail, failure occurred *)
  false_positive : int;  (** predicted fail, no failure *)
  true_negative : int;
  false_negative : int;  (** predicted safe, failure occurred *)
}

type report = {
  counts : counts;
  precision : float;  (** tp / (tp + fp); 1 when no positives *)
  recall : float;  (** tp / (tp + fn) = 1 − p_f−; 1 when no failures probed *)
  false_positive_rate : float;  (** fp / (fp + tn); the paper's p_f+ *)
  accuracy : float;
}

val of_counts : counts -> report

val probe :
  Predictor.t ->
  truth:Failure_index.t ->
  span:float ->
  horizon:float ->
  nodes:int ->
  samples:int ->
  report
(** Score boolean predictions over [samples] probe times uniformly
    spaced in [\[0, span\]] × all [nodes] node ids, each asking about
    the window [(t, t + horizon\]]. Deterministic. *)

val pp : Format.formatter -> report -> unit
