type counts = {
  true_positive : int;
  false_positive : int;
  true_negative : int;
  false_negative : int;
}

type report = {
  counts : counts;
  precision : float;
  recall : float;
  false_positive_rate : float;
  accuracy : float;
}

let ratio num den ~default = if den = 0 then default else float_of_int num /. float_of_int den

let of_counts counts =
  let { true_positive = tp; false_positive = fp; true_negative = tn; false_negative = fn } =
    counts
  in
  {
    counts;
    precision = ratio tp (tp + fp) ~default:1.;
    recall = ratio tp (tp + fn) ~default:1.;
    false_positive_rate = ratio fp (fp + tn) ~default:0.;
    accuracy = ratio (tp + tn) (tp + fp + tn + fn) ~default:1.;
  }

let probe (predictor : Predictor.t) ~truth ~span ~horizon ~nodes ~samples =
  if span <= 0. || horizon <= 0. then invalid_arg "Evaluation.probe: span and horizon must be positive";
  if nodes <= 0 || samples <= 0 then invalid_arg "Evaluation.probe: nodes and samples must be positive";
  let tp = ref 0 and fp = ref 0 and tn = ref 0 and fn = ref 0 in
  for sample = 0 to samples - 1 do
    let now = span *. float_of_int sample /. float_of_int samples in
    for node = 0 to nodes - 1 do
      let predicted = predictor.node_will_fail ~node ~now ~horizon in
      let actual = Failure_index.has_failure_in truth ~node ~t0:now ~t1:(now +. horizon) in
      match (predicted, actual) with
      | true, true -> incr tp
      | true, false -> incr fp
      | false, false -> incr tn
      | false, true -> incr fn
    done
  done;
  of_counts
    { true_positive = !tp; false_positive = !fp; true_negative = !tn; false_negative = !fn }

let pp ppf r =
  Format.fprintf ppf
    "tp=%d fp=%d tn=%d fn=%d  precision=%.3f recall=%.3f fpr=%.4f accuracy=%.3f"
    r.counts.true_positive r.counts.false_positive r.counts.true_negative
    r.counts.false_negative r.precision r.recall r.false_positive_rate r.accuracy
