(** Time-indexed view of a failure log.

    Both the predictors (which consult the log as their ground truth,
    per Section 4 of the paper) and the simulation engine (which must
    kill jobs when a node they occupy fails) need fast "failures of
    node n in window (t0, t1]" queries; this index provides them in
    O(log events-per-node) via per-node sorted arrays. *)

type t

val of_log : Bgl_trace.Failure_log.t -> t

val event_count : t -> int

val has_failure_in : t -> node:int -> t0:float -> t1:float -> bool
(** Any event for [node] with time in the half-open window [(t0, t1\]].
    An empty or inverted window yields [false]. *)

val first_failure_in : t -> node:int -> t0:float -> t1:float -> float option
(** Earliest such event time. *)

val count_in : t -> node:int -> t0:float -> t1:float -> int

val next_event_after : t -> after:float -> (float * int) option
(** Earliest event in the whole log strictly after [after], as
    [(time, node)] — how the engine schedules failure injections. *)

val events_at : t -> time:float -> int list
(** Nodes with an event at exactly [time] (simultaneous burst
    members). *)
