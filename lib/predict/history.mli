(** History-based (non-oracle) failure prediction.

    The paper simulates prediction quality by peeking at the failure
    log with a confidence knob. This module provides the honest
    counterpart in the lineage of the statistical predictors it cites
    (Sahoo et al. 2003; Vilalta & Ma 2002): estimate each node's
    failure intensity from events {e strictly in the past} and flag
    nodes whose estimated probability of failing within the query
    horizon crosses a threshold.

    Two estimators:

    - {!rate}: sliding-window event counting — intensity =
      events in [(now − window, now\]] / window;
    - {!ewma}: the same counting with exponential age weighting, which
      reacts faster to the bursty traces the generator produces.

    Because the synthetic (and real) failure logs concentrate events on
    chronically bad nodes, past intensity genuinely predicts future
    failures; {!Evaluation.probe} quantifies how well, and the
    [ablate-history] bench compares scheduling with a learned predictor
    against the paper's simulated-confidence one. *)

val rate : window:float -> threshold:float -> Failure_index.t -> Predictor.t
(** Flag a node when [intensity * horizon >= threshold], with
    [intensity] the past-window event rate. The probability view
    reports [min 1 (intensity * horizon)] (a one-term Poisson
    approximation). [window] must be positive, [threshold]
    non-negative. *)

val ewma : half_life:float -> threshold:float -> Failure_index.t -> Predictor.t
(** Exponentially weighted intensity: each past event contributes
    [ln 2 / half_life * 2^(-(age / half_life))]. Same decision rule as
    {!rate}. *)
