type t = {
  name : string;
  node_prob : node:int -> now:float -> horizon:float -> float;
  node_will_fail : node:int -> now:float -> horizon:float -> bool;
}

let null =
  {
    name = "null";
    node_prob = (fun ~node:_ ~now:_ ~horizon:_ -> 0.);
    node_will_fail = (fun ~node:_ ~now:_ ~horizon:_ -> false);
  }

let check_param what v =
  if v < 0. || v > 1. then invalid_arg (Printf.sprintf "Predictor: %s must be in [0, 1]" what)

let balancing ~confidence index =
  check_param "confidence" confidence;
  let failure_coming ~node ~now ~horizon =
    Failure_index.has_failure_in index ~node ~t0:now ~t1:(now +. horizon)
  in
  {
    name = Printf.sprintf "balancing(a=%g)" confidence;
    node_prob =
      (fun ~node ~now ~horizon -> if failure_coming ~node ~now ~horizon then confidence else 0.);
    node_will_fail =
      (fun ~node ~now ~horizon -> confidence > 0. && failure_coming ~node ~now ~horizon);
  }

(* The stochastic yes/no is keyed on the identity of the first upcoming
   failure event (node, millisecond timestamp), so asking twice about
   the same event gives the same answer while distinct events are
   independent draws. *)
let event_draw ~seed ~node time = Bgl_stats.Rng.hash_float ~seed node (int_of_float (time *. 1000.))

let tie_breaking ~accuracy ~seed index =
  check_param "accuracy" accuracy;
  let will_fail ~node ~now ~horizon =
    match Failure_index.first_failure_in index ~node ~t0:now ~t1:(now +. horizon) with
    | None -> false
    | Some time -> event_draw ~seed ~node time < accuracy
  in
  {
    name = Printf.sprintf "tie-breaking(a=%g)" accuracy;
    node_prob = (fun ~node ~now ~horizon -> if will_fail ~node ~now ~horizon then 1. else 0.);
    node_will_fail = will_fail;
  }

let oracle index =
  let t = tie_breaking ~accuracy:1. ~seed:0 index in
  { t with name = "oracle" }

let noisy ~accuracy ~false_positive ~seed index =
  check_param "accuracy" accuracy;
  check_param "false_positive" false_positive;
  let base = tie_breaking ~accuracy ~seed index in
  let will_fail ~node ~now ~horizon =
    if base.node_will_fail ~node ~now ~horizon then true
    else if Failure_index.has_failure_in index ~node ~t0:now ~t1:(now +. horizon) then false
      (* a true upcoming failure that the accuracy draw suppressed stays
         a false negative; spurious alarms only arise on quiet nodes *)
    else
      let bucket = int_of_float ((now +. horizon) /. 3600.) in
      Bgl_stats.Rng.hash_float ~seed:(seed + 0x5f5e1) node bucket < false_positive
  in
  {
    name = Printf.sprintf "noisy(a=%g,fp=%g)" accuracy false_positive;
    node_prob = (fun ~node ~now ~horizon -> if will_fail ~node ~now ~horizon then 1. else 0.);
    node_will_fail = will_fail;
  }

let partition_prob_raw t ~combine ~nodes ~now ~horizon =
  match combine with
  | `Max ->
      List.fold_left (fun acc node -> Float.max acc (t.node_prob ~node ~now ~horizon)) 0. nodes
  | `Product ->
      let survive =
        List.fold_left (fun acc node -> acc *. (1. -. t.node_prob ~node ~now ~horizon)) 1. nodes
      in
      1. -. survive

(* Predictor queries dominate the fault-aware policies' scheduling
   passes; the span guard keeps the unprofiled path allocation-free. *)
let partition_prob t ~combine ~nodes ~now ~horizon =
  if Bgl_obs.Span.enabled () then
    Bgl_obs.Span.time ~name:"predictor.partition_prob" (fun () ->
        partition_prob_raw t ~combine ~nodes ~now ~horizon)
  else partition_prob_raw t ~combine ~nodes ~now ~horizon

let partition_will_fail t ~nodes ~now ~horizon =
  if Bgl_obs.Span.enabled () then
    Bgl_obs.Span.time ~name:"predictor.partition_will_fail" (fun () ->
        List.exists (fun node -> t.node_will_fail ~node ~now ~horizon) nodes)
  else List.exists (fun node -> t.node_will_fail ~node ~now ~horizon) nodes
