(** Fault predictors (Section 4 of the paper).

    A predictor answers two kinds of query about the window
    [(now, now + horizon\]]:

    - a {b probability} that a given node fails in the window (used by
      the balancing algorithm's L_PF term), and
    - a {b boolean} "will this node fail?" (used by the tie-breaking
      algorithm).

    As in the paper, predictors are simulated against the failure log
    itself rather than running a real prediction model: the quality
    knob [a] is the {e confidence} attached to true upcoming failures
    (balancing predictor, Section 4.1) or the {e accuracy}
    [1 - p_false_negative] of the boolean answer (tie-breaking
    predictor, Section 4.2). Boolean answers are deterministic
    functions of (seed, node, failure event), so repeated queries about
    the same upcoming failure are consistent. *)

type t = {
  name : string;
  node_prob : node:int -> now:float -> horizon:float -> float;
  node_will_fail : node:int -> now:float -> horizon:float -> bool;
}

val null : t
(** Predicts nothing: probability 0, never "yes". Fault-oblivious
    scheduling (the a = 0 baseline). *)

val balancing : confidence:float -> Failure_index.t -> t
(** Section 4.1: probability [confidence] if the log has a failure for
    the node in the window, else 0. The boolean view answers
    [confidence > 0 && failure-in-window]. *)

val tie_breaking : accuracy:float -> seed:int -> Failure_index.t -> t
(** Section 4.2: if the log has a failure in the window, answers "yes"
    with probability [accuracy] (i.e. false-negative rate
    [1 - accuracy]); no false positives. The probability view returns
    1 or 0 according to the boolean answer. *)

val oracle : Failure_index.t -> t
(** Perfect prediction: [tie_breaking ~accuracy:1.] /
    [balancing ~confidence:1.] semantics. *)

val noisy : accuracy:float -> false_positive:float -> seed:int -> Failure_index.t -> t
(** Extension beyond the paper (which argues p_f+ stays below p_f−/2
    and ignores it): like {!tie_breaking} but additionally answers a
    spurious "yes" with probability [false_positive] when no failure is
    coming. False positives are resampled per hour-bucket of the query
    window so they are stable for nearby queries. *)

val partition_prob :
  t -> combine:[ `Product | `Max ] -> nodes:int list -> now:float -> horizon:float -> float
(** Partition failure probability from per-node probabilities:
    [`Product] is Section 5.2.1's [1 - Π (1 - p_n)]; [`Max] is Section
    4.1's [max p_n]. *)

val partition_will_fail : t -> nodes:int list -> now:float -> horizon:float -> bool
(** Whether any node of the partition is predicted to fail. *)
