open Bgl_torus

type algo = Naive | Pop | Shape_search | Prefix

let all_algos = [ Naive; Pop; Shape_search; Prefix ]

let algo_name = function
  | Naive -> "naive"
  | Pop -> "pop"
  | Shape_search -> "shape-search"
  | Prefix -> "prefix"

let compute_bases (d : Dims.t) ~wrap (s : Shape.t) =
  let range extent dim =
    if wrap then if extent = dim then [ 0 ] else List.init dim Fun.id
    else List.init (dim - extent + 1) Fun.id
  in
  let xs = range s.sx d.nx and ys = range s.sy d.ny and zs = range s.sz d.nz in
  List.concat_map (fun z -> List.concat_map (fun y -> List.map (fun x -> Coord.make x y z) xs) ys) zs

(* Base sets depend only on (dims, wrap, shape); the schedulers query
   them millions of times per simulation, so they are cached as
   arrays. The cache is domain-local: a global [Hashtbl] would race
   (and can corrupt its buckets) under parallel sweeps, and a mutex
   would serialise the hottest lookup in the code base — so each
   domain fills its own table, at the cost of one recomputation per
   (key, domain). *)
let bases_cache : (int * int * int * bool * int * int * int, Coord.t array) Hashtbl.t Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let bases_arr (d : Dims.t) ~wrap (s : Shape.t) =
  let cache = Domain.DLS.get bases_cache in
  let key = (d.nx, d.ny, d.nz, wrap, s.sx, s.sy, s.sz) in
  match Hashtbl.find_opt cache key with
  | Some arr -> arr
  | None ->
      let arr = Array.of_list (compute_bases d ~wrap s) in
      Hashtbl.replace cache key arr;
      arr

let bases d ~wrap s = Array.to_list (bases_arr d ~wrap s)

let sort_boxes = List.sort Box.compare

(* Node-by-node freeness with early exit: the practical reading of the
   appendix's "no need to search further once we hit the value for that
   dimension". *)
let box_free_scan grid (box : Box.t) =
  let d = Grid.dims grid in
  let b = box.base and s = box.shape in
  let rec go dx dy dz =
    if dz = s.sz then true
    else if dy = s.sy then go 0 0 (dz + 1)
    else if dx = s.sx then go 0 (dy + 1) dz
    else
      let c = Coord.wrap d (Coord.make (b.x + dx) (b.y + dy) (b.z + dz)) in
      Grid.is_free grid (Coord.index d c) && go (dx + 1) dy dz
  in
  go 0 0 0

let find_naive grid ~volume =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let acc = ref [] in
  (* Enumerate boxes of every size, then filter: the O(M^9) strawman. *)
  List.iter
    (fun shape ->
      List.iter
        (fun base ->
          let box = Box.make base shape in
          if box_free_scan grid box then acc := box :: !acc)
        (bases d ~wrap shape))
    (Shapes.shapes_desc d);
  List.filter (fun b -> Box.volume b = volume) !acc |> sort_boxes

let find_shape_search grid ~volume =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let acc = ref [] in
  List.iter
    (fun shape ->
      List.iter
        (fun base ->
          let box = Box.make base shape in
          if box_free_scan grid box then acc := box :: !acc)
        (bases d ~wrap shape))
    (Shapes.shapes_of_volume d volume);
  sort_boxes !acc

let find_prefix_with grid table ~volume =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let acc = ref [] in
  List.iter
    (fun shape ->
      Array.iter
        (fun base ->
          let box = Box.make base shape in
          if Prefix.box_is_free table box then acc := box :: !acc)
        (bases_arr d ~wrap shape))
    (Shapes.shapes_of_volume d volume);
  sort_boxes !acc

let find_prefix grid ~volume = find_prefix_with grid (Prefix.build grid) ~volume

(* Span guards sit outside Span.time so the disabled path allocates no
   closure: candidate enumeration runs millions of times per sweep. *)
let find_with table grid ~volume =
  if volume <= 0 then invalid_arg "Finder.find_with: volume must be positive";
  Bgl_resilience.Budget.check ~site:"finder.find_with";
  if volume > Grid.volume grid then []
  else if Bgl_obs.Span.enabled () then
    Bgl_obs.Span.time ~name:"finder.find_with" (fun () -> find_prefix_with grid table ~volume)
  else find_prefix_with grid table ~volume

let exists_free_scan table grid ~volume =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  List.exists
    (fun shape ->
      Array.exists
        (fun base -> Prefix.box_is_free table (Box.make base shape))
        (bases_arr d ~wrap shape))
    (Shapes.shapes_of_volume d volume)

let exists_free_with table grid ~volume =
  if volume <= 0 then invalid_arg "Finder.exists_free_with: volume must be positive";
  Bgl_resilience.Budget.check ~site:"finder.exists_free";
  if volume > Grid.volume grid then false
  else if Bgl_obs.Span.enabled () then
    Bgl_obs.Span.time ~name:"finder.exists_free" (fun () -> exists_free_scan table grid ~volume)
  else exists_free_scan table grid ~volume

(* Projection of partitions: for every z-extent starting at z0, keep a
   2-D map of columns that are free across the whole extent (AND-ed in
   incrementally as the extent grows), and find free rectangles in it
   with 2-D prefix sums. *)
let find_pop grid ~volume =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let ex = if wrap then 2 * d.nx else d.nx in
  let ey = if wrap then 2 * d.ny else d.ny in
  let cum = Array.make ((ex + 1) * (ey + 1)) 0 in
  let free2d = Array.make (d.nx * d.ny) true in
  let rebuild_cum () =
    (* cum.(i + (ex+1)*j) = #blocked columns in [0,i) x [0,j) of the
       (possibly doubled) 2-D space. *)
    for j = 1 to ey do
      for i = 1 to ex do
        let blocked = if free2d.((i - 1) mod d.nx + (d.nx * ((j - 1) mod d.ny))) then 0 else 1 in
        cum.(i + ((ex + 1) * j)) <-
          blocked
          + cum.(i - 1 + ((ex + 1) * j))
          + cum.(i + ((ex + 1) * (j - 1)))
          - cum.(i - 1 + ((ex + 1) * (j - 1)))
      done
    done
  in
  let rect_free x0 y0 sx sy =
    let at i j = cum.(i + ((ex + 1) * j)) in
    at (x0 + sx) (y0 + sy) - at x0 (y0 + sy) - at (x0 + sx) y0 + at x0 y0 = 0
  in
  let acc = ref [] in
  (* Every z is a candidate base whether or not the torus wraps; the
     wrap distinction lives in [max_sz] and the canonical rule below. *)
  let z_starts = List.init d.nz Fun.id in
  List.iter
    (fun z0 ->
      Array.fill free2d 0 (Array.length free2d) true;
      let max_sz = if wrap then d.nz else d.nz - z0 in
      for sz = 1 to max_sz do
        (* Grow the projection by layer z0 + sz - 1. *)
        let z = (z0 + sz - 1) mod d.nz in
        for y = 0 to d.ny - 1 do
          for x = 0 to d.nx - 1 do
            if not (Grid.is_free grid (Coord.index d (Coord.make x y z))) then
              free2d.(x + (d.nx * y)) <- false
          done
        done;
        (* Canonical rule: a full wrap of the z dimension is only
           reported at base z = 0. *)
        let z_canonical = (not wrap) || sz < d.nz || z0 = 0 in
        if volume mod sz = 0 && z_canonical then begin
          rebuild_cum ();
          let area = volume / sz in
          List.iter
            (fun sx ->
              if sx <= d.nx && area / sx <= d.ny then begin
                let sy = area / sx in
                let xs =
                  if wrap then if sx = d.nx then [ 0 ] else List.init d.nx Fun.id
                  else List.init (d.nx - sx + 1) Fun.id
                in
                let ys =
                  if wrap then if sy = d.ny then [ 0 ] else List.init d.ny Fun.id
                  else List.init (d.ny - sy + 1) Fun.id
                in
                List.iter
                  (fun y0 ->
                    List.iter
                      (fun x0 ->
                        if rect_free x0 y0 sx sy then
                          acc :=
                            Box.make (Coord.make x0 y0 z0) (Shape.make sx sy sz) :: !acc)
                      xs)
                  ys
              end)
            (Shapes.divisors area)
        end
      done)
    z_starts;
  sort_boxes !acc

let find algo grid ~volume =
  if volume <= 0 then invalid_arg "Finder.find: volume must be positive";
  Bgl_resilience.Budget.check ~site:"finder.find";
  if volume > Grid.volume grid then []
  else
    let run () =
      match algo with
      | Naive -> find_naive grid ~volume
      | Pop -> find_pop grid ~volume
      | Shape_search -> find_shape_search grid ~volume
      | Prefix -> find_prefix grid ~volume
    in
    if Bgl_obs.Span.enabled () then Bgl_obs.Span.time ~name:"finder.find" run else run ()

let find_for_size algo grid ~size =
  match Shapes.round_up_volume (Grid.dims grid) size with
  | None -> []
  | Some volume -> find algo grid ~volume

let exists_free grid ~volume =
  if volume <= 0 then invalid_arg "Finder.exists_free: volume must be positive";
  Bgl_resilience.Budget.check ~site:"finder.exists_free";
  if volume > Grid.volume grid then false
  else
    let run () = exists_free_scan (Prefix.build grid) grid ~volume in
    if Bgl_obs.Span.enabled () then Bgl_obs.Span.time ~name:"finder.exists_free" run
    else run ()
