open Bgl_torus

type algo = Naive | Pop | Shape_search | Prefix | Auto

let all_algos = [ Naive; Pop; Shape_search; Prefix; Auto ]

let algo_name = function
  | Naive -> "naive"
  | Pop -> "pop"
  | Shape_search -> "shape-search"
  | Prefix -> "prefix"
  | Auto -> "auto"

(* ------------------------------------------------------------------ *)
(* Scale selection: machine-volume thresholds for the finder
   front-end. Supernode-scale grids (the paper's 4x4x8) scan directly
   with no table; mid-size grids use the summed-area table; at
   [summary_gate_volume] and above every scan first consults the
   grid's Summary to reject shapes without enumerating bases — on the
   full 64x32x32 machine a shape has up to 65,536 bases, so the O(nx +
   ny + nz + #blocks) summary probe is the difference between a
   feasibility check and a machine-size scan. *)

let direct_volume_max = 128
let summary_gate_volume = 512

let summary_gated grid = Grid.volume grid >= summary_gate_volume

let shape_possible grid shape =
  (not (summary_gated grid))
  || Summary.shape_feasible (Grid.summary grid) ~wrap:(Grid.wrap grid) shape

let compute_bases (d : Dims.t) ~wrap (s : Shape.t) =
  let range extent dim =
    if wrap then if extent = dim then [ 0 ] else List.init dim Fun.id
    else List.init (dim - extent + 1) Fun.id
  in
  let xs = range s.sx d.nx and ys = range s.sy d.ny and zs = range s.sz d.nz in
  List.concat_map (fun z -> List.concat_map (fun y -> List.map (fun x -> Coord.make x y z) xs) ys) zs

(* Non-allocating base enumeration in the same order as
   [compute_bases] (x fastest, then y, then z): the scan paths iterate
   bases instead of materializing them, because at full machine scale
   a single shape's base array is ~65k coordinates. *)
let iter_bases (d : Dims.t) ~wrap (s : Shape.t) ~f =
  let hi extent dim = if wrap then if extent = dim then 0 else dim - 1 else dim - extent in
  let x_hi = hi s.sx d.nx and y_hi = hi s.sy d.ny and z_hi = hi s.sz d.nz in
  for z = 0 to z_hi do
    for y = 0 to y_hi do
      for x = 0 to x_hi do
        f x y z
      done
    done
  done

(* Base sets depend only on (dims, wrap, shape); the schedulers query
   them millions of times per simulation, so they are cached as
   arrays. The cache is domain-local: a global [Hashtbl] would race
   (and can corrupt its buckets) under parallel sweeps, and a mutex
   would serialise the hottest lookup in the code base — so each
   domain fills its own table, at the cost of one recomputation per
   (key, domain). The cache is capped: a sweep over many machine
   sizes or a long-lived process probing odd shapes would otherwise
   accumulate base arrays without bound, and at 64x32x32 each one is
   ~65k coordinates. Eviction is wholesale ([Hashtbl.reset]) — the
   arrays are pure functions of the key, so dropping a warm entry
   costs one recomputation, never correctness. *)
let bases_cache_cap = 256

let bases_cache : (int * int * int * bool * int * int * int, Coord.t array) Hashtbl.t Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let bases_cache_stats () = (Hashtbl.length (Domain.DLS.get bases_cache), bases_cache_cap)

let bases_arr (d : Dims.t) ~wrap (s : Shape.t) =
  let cache = Domain.DLS.get bases_cache in
  let key = (d.nx, d.ny, d.nz, wrap, s.sx, s.sy, s.sz) in
  match Hashtbl.find_opt cache key with
  | Some arr -> arr
  | None ->
      let arr = Array.of_list (compute_bases d ~wrap s) in
      if Hashtbl.length cache >= bases_cache_cap then Hashtbl.reset cache;
      Hashtbl.replace cache key arr;
      arr

let bases d ~wrap s = Array.to_list (bases_arr d ~wrap s)

let sort_boxes = List.sort Box.compare

(* Node-by-node freeness with early exit: the practical reading of the
   appendix's "no need to search further once we hit the value for that
   dimension". *)
let box_free_scan grid (box : Box.t) =
  let d = Grid.dims grid in
  let b = box.base and s = box.shape in
  let rec go dx dy dz =
    if dz = s.sz then true
    else if dy = s.sy then go 0 0 (dz + 1)
    else if dx = s.sx then go 0 (dy + 1) dz
    else
      let c = Coord.wrap d (Coord.make (b.x + dx) (b.y + dy) (b.z + dz)) in
      Grid.is_free grid (Coord.index d c) && go (dx + 1) dy dz
  in
  go 0 0 0

let find_naive grid ~volume =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let acc = ref [] in
  (* Enumerate boxes of every size, then filter: the O(M^9) strawman. *)
  List.iter
    (fun shape ->
      List.iter
        (fun base ->
          let box = Box.make base shape in
          if box_free_scan grid box then acc := box :: !acc)
        (bases d ~wrap shape))
    (Shapes.shapes_desc d);
  List.filter (fun b -> Box.volume b = volume) !acc |> sort_boxes

let find_shape_search grid ~volume =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let acc = ref [] in
  List.iter
    (fun shape ->
      List.iter
        (fun base ->
          let box = Box.make base shape in
          if box_free_scan grid box then acc := box :: !acc)
        (bases d ~wrap shape))
    (Shapes.shapes_of_volume d volume);
  sort_boxes !acc

(* The table argument is lazy so a query whose every shape is rejected
   by the summary never builds or syncs the summed-area table at all —
   the common case for ghost-grid feasibility probes on a busy
   machine. [Prefix.box_is_free] syncs internally, so force order does
   not matter for correctness. *)
let find_prefix_scan ?(gate = true) grid table ~volume =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let gate = gate && summary_gated grid in
  let acc = ref [] in
  List.iter
    (fun shape ->
      if (not gate) || shape_possible grid shape then begin
        let tbl = Lazy.force table in
        iter_bases d ~wrap shape ~f:(fun x y z ->
            let box = Box.make (Coord.make x y z) shape in
            if Prefix.box_is_free tbl box then acc := box :: !acc)
      end)
    (Shapes.shapes_of_volume d volume);
  sort_boxes !acc

let find_prefix_with grid table ~volume = find_prefix_scan grid (Lazy.from_val table) ~volume
let find_prefix grid ~volume = find_prefix_scan grid (lazy (Prefix.build grid)) ~volume

exception Found_base

let exists_base_free table d ~wrap shape =
  try
    iter_bases d ~wrap shape ~f:(fun x y z ->
        if Prefix.box_is_free table (Box.make (Coord.make x y z) shape) then raise Found_base);
    false
  with Found_base -> true

let exists_free_scan grid table ~volume =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let gate = summary_gated grid in
  List.exists
    (fun shape ->
      ((not gate) || shape_possible grid shape)
      && exists_base_free (Lazy.force table) d ~wrap shape)
    (Shapes.shapes_of_volume d volume)

(* ------------------------------------------------------------------ *)
(* Differential mode: cross-check accelerated queries against an
   independent reference finder. Global and atomic so parallel sweep
   domains share one switch; the check is orders of magnitude slower
   than the query it guards, so it is strictly a debug/CI facility.
   On machines too large for the naive O(M^9) oracle the reference is
   a freshly built, summary-ungated table scan: an independent
   occupancy representation exercising none of the incremental
   maintenance, memoization or summary gating under test. A sampling
   rate makes the mode affordable on full-machine runs: [sample = n]
   checks every nth guarded query. *)

exception Divergence of string

let () = Printexc.register_printer (function Divergence msg -> Some msg | _ -> None)

(* 0 = off; n >= 1 = cross-check every nth guarded query. *)
let differential = Atomic.make 0
let diff_tick = Atomic.make 0

let set_differential ?(sample = 1) on =
  if sample < 1 then invalid_arg "Finder.set_differential: sample must be >= 1";
  Atomic.set differential (if on then sample else 0);
  Atomic.set diff_tick 0

let differential_enabled () = Atomic.get differential > 0

(* Whether this particular guarded query gets checked. *)
let differential_armed () =
  match Atomic.get differential with
  | 0 -> false
  | 1 -> true
  | n -> Atomic.fetch_and_add diff_tick 1 mod n = 0

let naive_oracle_max = 128

let reference_find grid ~volume =
  if Grid.volume grid <= naive_oracle_max then find_naive grid ~volume
  else find_prefix_scan ~gate:false grid (lazy (Prefix.build grid)) ~volume

let pp_box_list ppf boxes =
  if boxes = [] then Format.fprintf ppf "(none)"
  else Format.(pp_print_list ~pp_sep:pp_print_space Box.pp) ppf boxes

(* A full ASCII dump of a 64x32x32 grid helps nobody; keep it for the
   supernode-scale grids where it is actually readable. *)
let pp_grid_capped ppf grid =
  if Grid.volume grid <= 4096 then Grid.pp ppf grid
  else
    Format.fprintf ppf "(grid dump suppressed: %a, %d nodes free)" Dims.pp (Grid.dims grid)
      (Grid.free_count grid)

let divergence ~site grid ~volume ~fast ~reference =
  raise
    (Divergence
       (Format.asprintf
          "@[<v>finder divergence at %s: volume=%d dims=%a wrap=%b@ accelerated (%d boxes): \
           @[<hov>%a@]@ reference (%d boxes): @[<hov>%a@]@ grid:@ %a@]"
          site volume Dims.pp (Grid.dims grid) (Grid.wrap grid) (List.length fast) pp_box_list
          fast (List.length reference) pp_box_list reference pp_grid_capped grid))

let check_counter () =
  Bgl_obs.Registry.counter
    (Bgl_obs.Runtime.registry ())
    ~help:"accelerated finder queries cross-checked against the reference finder"
    "bgl_finder_differential_checks_total"

(* The accelerated result must be equal to the reference enumeration
   AND pass direct validity checks (free, in-bounds, exact volume) so a
   bug shared by both paths — e.g. in the base enumeration — still has
   a chance to surface. *)
let differential_check ~site grid ~volume fast =
  Bgl_obs.Registry.inc (check_counter ());
  let reference = reference_find grid ~volume in
  if not (List.equal Box.equal fast reference) then divergence ~site grid ~volume ~fast ~reference;
  let d = Grid.dims grid in
  List.iter
    (fun (b : Box.t) ->
      if
        (not (Coord.in_bounds d b.base))
        || Box.volume b <> volume
        || not (Grid.box_is_free grid b)
      then
        raise
          (Divergence
             (Format.asprintf "finder divergence at %s: invalid box %a (volume %d, dims %a)" site
                Box.pp b volume Dims.pp d)))
    fast

let differential_check_exists ~site grid ~volume fast =
  Bgl_obs.Registry.inc (check_counter ());
  let reference = reference_find grid ~volume <> [] in
  if fast <> reference then
    raise
      (Divergence
         (Format.asprintf
            "@[<v>finder divergence at %s: exists_free volume=%d returned %b, reference says \
             %b@ grid:@ %a@]"
            site volume fast reference pp_grid_capped grid))

(* Span guards sit outside Span.time so the disabled path allocates no
   closure: candidate enumeration runs millions of times per sweep. *)
let find_with table grid ~volume =
  if volume <= 0 then invalid_arg "Finder.find_with: volume must be positive";
  Bgl_resilience.Budget.check ~site:"finder.find_with";
  if volume > Grid.volume grid then []
  else begin
    let result =
      if Bgl_obs.Span.enabled () then
        Bgl_obs.Span.time ~name:"finder.find_with" (fun () -> find_prefix_with grid table ~volume)
      else find_prefix_with grid table ~volume
    in
    if differential_armed () then differential_check ~site:"find_with" grid ~volume result;
    result
  end

let exists_free_with table grid ~volume =
  if volume <= 0 then invalid_arg "Finder.exists_free_with: volume must be positive";
  Bgl_resilience.Budget.check ~site:"finder.exists_free";
  if volume > Grid.volume grid then false
  else begin
    let table = Lazy.from_val table in
    let result =
      if Bgl_obs.Span.enabled () then
        Bgl_obs.Span.time ~name:"finder.exists_free" (fun () ->
            exists_free_scan grid table ~volume)
      else exists_free_scan grid table ~volume
    in
    if differential_armed () then
      differential_check_exists ~site:"exists_free_with" grid ~volume result;
    result
  end

(* Projection of partitions: for every z-extent starting at z0, keep a
   2-D map of columns that are free across the whole extent (AND-ed in
   incrementally as the extent grows), and find free rectangles in it
   with 2-D prefix sums. *)
let find_pop grid ~volume =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let ex = if wrap then 2 * d.nx else d.nx in
  let ey = if wrap then 2 * d.ny else d.ny in
  let cum = Array.make ((ex + 1) * (ey + 1)) 0 in
  let free2d = Array.make (d.nx * d.ny) true in
  let rebuild_cum () =
    (* cum.(i + (ex+1)*j) = #blocked columns in [0,i) x [0,j) of the
       (possibly doubled) 2-D space. *)
    for j = 1 to ey do
      for i = 1 to ex do
        let blocked = if free2d.((i - 1) mod d.nx + (d.nx * ((j - 1) mod d.ny))) then 0 else 1 in
        cum.(i + ((ex + 1) * j)) <-
          blocked
          + cum.(i - 1 + ((ex + 1) * j))
          + cum.(i + ((ex + 1) * (j - 1)))
          - cum.(i - 1 + ((ex + 1) * (j - 1)))
      done
    done
  in
  let rect_free x0 y0 sx sy =
    let at i j = cum.(i + ((ex + 1) * j)) in
    at (x0 + sx) (y0 + sy) - at x0 (y0 + sy) - at (x0 + sx) y0 + at x0 y0 = 0
  in
  let acc = ref [] in
  (* Every z is a candidate base whether or not the torus wraps; the
     wrap distinction lives in [max_sz] and the canonical rule below. *)
  let z_starts = List.init d.nz Fun.id in
  List.iter
    (fun z0 ->
      Array.fill free2d 0 (Array.length free2d) true;
      let max_sz = if wrap then d.nz else d.nz - z0 in
      for sz = 1 to max_sz do
        (* Grow the projection by layer z0 + sz - 1. *)
        let z = (z0 + sz - 1) mod d.nz in
        for y = 0 to d.ny - 1 do
          for x = 0 to d.nx - 1 do
            if not (Grid.is_free grid (Coord.index d (Coord.make x y z))) then
              free2d.(x + (d.nx * y)) <- false
          done
        done;
        (* Canonical rule: a full wrap of the z dimension is only
           reported at base z = 0. *)
        let z_canonical = (not wrap) || sz < d.nz || z0 = 0 in
        if volume mod sz = 0 && z_canonical then begin
          rebuild_cum ();
          let area = volume / sz in
          List.iter
            (fun sx ->
              if sx <= d.nx && area / sx <= d.ny then begin
                let sy = area / sx in
                let xs =
                  if wrap then if sx = d.nx then [ 0 ] else List.init d.nx Fun.id
                  else List.init (d.nx - sx + 1) Fun.id
                in
                let ys =
                  if wrap then if sy = d.ny then [ 0 ] else List.init d.ny Fun.id
                  else List.init (d.ny - sy + 1) Fun.id
                in
                List.iter
                  (fun y0 ->
                    List.iter
                      (fun x0 ->
                        if rect_free x0 y0 sx sy then
                          acc :=
                            Box.make (Coord.make x0 y0 z0) (Shape.make sx sy sz) :: !acc)
                      xs)
                  ys
              end)
            (Shapes.divisors area)
        end
      done)
    z_starts;
  sort_boxes !acc

(* ------------------------------------------------------------------ *)
(* Counted enumeration: answer capped candidate queries without ever
   materialising the full box list. A first pass computes the exact
   number of free boxes based in every (z, y) row — O(1) summed-area
   queries per row in the common all-free case via the ribbon trick
   below, with whole planes and rows skipped through the grid summary —
   and a second pass walks only the rows holding the selected ranks
   and emits those boxes directly.

   The load-bearing invariant is that both passes enumerate in exactly
   the order of the sorted materialised list: [Box.compare] orders by
   base (z, then y, then x — [Coord.compare]) and then by shape
   ([Shape.compare]), so rows ascend in (z, y), bases within a row
   ascend in x, and shapes within a base follow [Shapes.shapes_of_volume],
   which is sorted by [Shape.compare]. Under that invariant the rank-r
   box of the counted walk IS element r of [find]'s sorted result, so
   the engine's deterministic even subsample [i*n/cap] reproduces
   byte-identically — proven by the qcheck equivalence layer and the
   differential oracle rather than trusted. *)

type counted_shape = {
  cs : Shape.t;
  cx_hi : int;  (* inclusive base bounds, as in [iter_bases] *)
  cy_hi : int;
  cz_hi : int;
  (* Per-axis feasible-start masks from the summary (None when the
     grid is below the gating threshold): [false] at a coordinate is a
     proof no free box of the shape can be based there, so skipping on
     it never changes a count. *)
  cz_ok : bool array option;
  cy_ok : bool array option;
}

type count_plan = {
  p_shapes : counted_shape array;
  p_rows : int array;  (* (z * ny + y) -> free boxes based in that row *)
  p_total : int;
  p_skips : int;  (* shapes + base rows the summary ruled out *)
}

let base_hi ~wrap extent dim =
  if wrap then if extent = dim then 0 else dim - 1 else dim - extent

let plane_ok mask i = match mask with None -> true | Some m -> m.(i)

let counted_shapes grid ~volume ~skips =
  let d = Grid.dims grid in
  let wrap = Grid.wrap grid in
  let gated = summary_gated grid in
  let summary = Grid.summary grid in
  List.filter_map
    (fun (s : Shape.t) ->
      if gated && not (Summary.shape_feasible summary ~wrap s) then begin
        incr skips;
        None
      end
      else
        Some
          {
            cs = s;
            cx_hi = base_hi ~wrap s.sx d.nx;
            cy_hi = base_hi ~wrap s.sy d.ny;
            cz_hi = base_hi ~wrap s.sz d.nz;
            cz_ok =
              (if gated then
                 Some
                   (Summary.feasible_starts summary ~wrap ~axis:`Z ~extent:s.sz
                      ~threshold:(s.sx * s.sy))
               else None);
            cy_ok =
              (if gated then
                 Some
                   (Summary.feasible_starts summary ~wrap ~axis:`Y ~extent:s.sy
                      ~threshold:(s.sx * s.sz))
               else None);
          })
    (Shapes.shapes_of_volume d volume)

(* Count pass. The ribbon trick: the box based at (lo, y, z) spanning
   x extent hi - lo + sx has zero occupied cells iff every cell any
   box based in [lo, hi] of that row could touch is free — in which
   case all hi - lo + 1 bases count from one O(1) summed-area query.
   (With wraparound the ribbon may cover some cells twice in the
   doubled prefix space; double-counting cannot make an all-free
   ribbon nonzero or an occupied one zero, so the test is exact.) An
   occupied ribbon bisects, so clustered occupancy — the scheduler's
   steady state of a few job boxes on a mostly free machine — costs
   O(log nx) splits per cluster boundary instead of a per-base scan;
   a fully free row stays a single query. *)
let count_plan grid table ~volume =
  let d = Grid.dims grid in
  let skips = ref 0 in
  let shapes = Array.of_list (counted_shapes grid ~volume ~skips) in
  let rows = Array.make (d.ny * d.nz) 0 in
  let total = ref 0 in
  Array.iter
    (fun c ->
      let s = c.cs in
      let tbl = Lazy.force table in
      let row_full = c.cx_hi + 1 in
      let credit y z n =
        if n > 0 then begin
          rows.((z * d.ny) + y) <- rows.((z * d.ny) + y) + n;
          total := !total + n
        end
      in
      (* The same ribbon test applied at every level of the (z, y, x)
         nesting: the slab based at the range's low corner, extended by
         the shape along each spanned axis, covers every cell any box
         based in the range could touch, so occupied = 0 proves every
         base in the range hosts a free box — the whole range resolves
         in one O(1) query, and an occupied slab bisects. A feasibility
         mask cannot contradict a free slab (a masked start has an
         occupied node in every would-be box), so the fast path never
         needs to consult the masks; they are checked only when the
         recursion bottoms out on single planes and rows. *)
      let rec count_x y z lo hi =
        if Prefix.occupied_in_range tbl ~x0:lo ~y0:y ~z0:z ~sx:(hi - lo + s.sx) ~sy:s.sy ~sz:s.sz = 0
        then hi - lo + 1
        else if lo = hi then 0 (* the ribbon IS the base's box *)
        else
          let mid = (lo + hi) / 2 in
          count_x y z lo mid + count_x y z (mid + 1) hi
      in
      let row y z = if plane_ok c.cy_ok y then credit y z (count_x y z 0 c.cx_hi) else incr skips in
      let rec count_y z lo hi =
        if
          Prefix.occupied_in_range tbl ~x0:0 ~y0:lo ~z0:z ~sx:(c.cx_hi + s.sx)
            ~sy:(hi - lo + s.sy) ~sz:s.sz
          = 0
        then
          for y = lo to hi do
            credit y z row_full
          done
        else if lo = hi then row lo z
        else begin
          let mid = (lo + hi) / 2 in
          count_y z lo mid;
          count_y z (mid + 1) hi
        end
      in
      let plane z = if plane_ok c.cz_ok z then count_y z 0 c.cy_hi else incr skips in
      let rec count_z lo hi =
        if
          Prefix.occupied_in_range tbl ~x0:0 ~y0:0 ~z0:lo ~sx:(c.cx_hi + s.sx)
            ~sy:(c.cy_hi + s.sy) ~sz:(hi - lo + s.sz)
          = 0
        then
          for z = lo to hi do
            for y = 0 to c.cy_hi do
              credit y z row_full
            done
          done
        else if lo = hi then plane lo
        else begin
          let mid = (lo + hi) / 2 in
          count_z lo mid;
          count_z (mid + 1) hi
        end
      in
      count_z 0 c.cz_hi)
    shapes;
  { p_shapes = shapes; p_rows = rows; p_total = !total; p_skips = !skips }

(* Select pass: walk rows in (z, y) order, using the per-row counts to
   skip whole rows by rank arithmetic, and probe bases (x ascending,
   shapes in sorted order) only inside rows that hold a target rank.
   [targets] must be strictly increasing. *)
let select_from_plan plan grid table ~targets =
  let d = Grid.dims grid in
  let n_targets = Array.length targets in
  let acc = ref [] in
  let ti = ref 0 in
  let rank = ref 0 in
  let nrows = Array.length plan.p_rows in
  let r = ref 0 in
  while !ti < n_targets && !r < nrows do
    let rc = plan.p_rows.(!r) in
    if rc > 0 then begin
      let row_end = !rank + rc in
      if targets.(!ti) < row_end then begin
        let z = !r / d.ny and y = !r mod d.ny in
        let tbl = Lazy.force table in
        for x = 0 to d.nx - 1 do
          if !ti < n_targets && targets.(!ti) < row_end then
            Array.iter
              (fun c ->
                if
                  x <= c.cx_hi && y <= c.cy_hi && z <= c.cz_hi
                  && plane_ok c.cz_ok z && plane_ok c.cy_ok y
                  && Prefix.box_is_free tbl (Box.make (Coord.make x y z) c.cs)
                then begin
                  if !ti < n_targets && targets.(!ti) = !rank then begin
                    acc := Box.make (Coord.make x y z) c.cs :: !acc;
                    incr ti
                  end;
                  incr rank
                end)
              plan.p_shapes
        done
      end;
      rank := row_end
    end;
    incr r
  done;
  List.rev !acc

(* The engine's historical cap semantics, reproduced exactly: identity
   below the cap, else the deterministic even subsample over sorted
   ranks. Strictly increasing when n > cap because consecutive targets
   differ by at least floor(n/cap) >= 1. *)
let even_targets ~n ~cap =
  if n <= cap then Array.init n Fun.id else Array.init cap (fun i -> i * n / cap)

let counted_span name f =
  if Bgl_obs.Span.enabled () then Bgl_obs.Span.time ~name f else f ()

let count_scan grid table ~volume =
  counted_span "finder.count.scan" (fun () -> count_plan grid table ~volume)

let select_scan grid table ~volume ~cap =
  let plan = count_scan grid table ~volume in
  let targets = even_targets ~n:plan.p_total ~cap in
  let boxes =
    counted_span "finder.count.select" (fun () -> select_from_plan plan grid table ~targets)
  in
  (plan, boxes)

let counted_queries_counter () =
  Bgl_obs.Registry.counter
    (Bgl_obs.Runtime.registry ())
    ~help:"counted (count-then-select) finder queries" "bgl_finder_counted_queries_total"

let counted_skips_counter () =
  Bgl_obs.Registry.counter
    (Bgl_obs.Runtime.registry ())
    ~help:"shapes and base rows the summary let counted queries skip"
    "bgl_finder_counted_skips_total"

let note_counted ?queries ?skips plan =
  Bgl_obs.Registry.inc (match queries with Some c -> c | None -> counted_queries_counter ());
  if plan.p_skips > 0 then
    Bgl_obs.Registry.add
      (match skips with Some c -> c | None -> counted_skips_counter ())
      (float_of_int plan.p_skips)

(* Differential checks for the counted paths: the reference is the
   independent materialising finder plus a literal transcription of
   the historical subsample, so a counted-walk bug cannot hide behind
   shared code. *)
let reference_cap ~cap boxes =
  let n = List.length boxes in
  if n <= cap then boxes
  else
    let arr = Array.of_list boxes in
    List.init cap (fun i -> arr.(i * n / cap))

let differential_check_count ~site grid ~volume fast =
  Bgl_obs.Registry.inc (check_counter ());
  let reference = List.length (reference_find grid ~volume) in
  if fast <> reference then
    raise
      (Divergence
         (Format.asprintf
            "@[<v>finder divergence at %s: count volume=%d returned %d, reference says %d@ \
             grid:@ %a@]"
            site volume fast reference pp_grid_capped grid))

let differential_check_select ~site grid ~volume ~cap fast =
  Bgl_obs.Registry.inc (check_counter ());
  let reference = reference_cap ~cap (reference_find grid ~volume) in
  if not (List.equal Box.equal fast reference) then divergence ~site grid ~volume ~fast ~reference;
  let d = Grid.dims grid in
  List.iter
    (fun (b : Box.t) ->
      if
        (not (Coord.in_bounds d b.base))
        || Box.volume b <> volume
        || not (Grid.box_is_free grid b)
      then
        raise
          (Divergence
             (Format.asprintf "finder divergence at %s: invalid box %a (volume %d, dims %a)" site
                Box.pp b volume Dims.pp d)))
    fast

let count_with table grid ~volume =
  if volume <= 0 then invalid_arg "Finder.count_with: volume must be positive";
  Bgl_resilience.Budget.check ~site:"finder.count";
  if volume > Grid.volume grid then 0
  else begin
    let plan = count_scan grid (Lazy.from_val table) ~volume in
    note_counted plan;
    if differential_armed () then differential_check_count ~site:"count_with" grid ~volume plan.p_total;
    plan.p_total
  end

let count grid ~volume =
  if volume <= 0 then invalid_arg "Finder.count: volume must be positive";
  Bgl_resilience.Budget.check ~site:"finder.count";
  if volume > Grid.volume grid then 0
  else begin
    let plan = count_scan grid (lazy (Prefix.build grid)) ~volume in
    note_counted plan;
    if differential_armed () then differential_check_count ~site:"count" grid ~volume plan.p_total;
    plan.p_total
  end

let nth grid ~volume ~rank =
  if volume <= 0 then invalid_arg "Finder.nth: volume must be positive";
  if rank < 0 then invalid_arg "Finder.nth: rank must be >= 0";
  Bgl_resilience.Budget.check ~site:"finder.nth";
  if volume > Grid.volume grid then None
  else begin
    let table = lazy (Prefix.build grid) in
    let plan = count_scan grid table ~volume in
    note_counted plan;
    if rank >= plan.p_total then None
    else
      match select_from_plan plan grid table ~targets:[| rank |] with
      | [ box ] -> Some box
      | _ -> None
  end

let select_with table grid ~volume ~cap =
  if volume <= 0 then invalid_arg "Finder.select_with: volume must be positive";
  if cap < 1 then invalid_arg "Finder.select_with: cap must be >= 1";
  Bgl_resilience.Budget.check ~site:"finder.select";
  if volume > Grid.volume grid then []
  else begin
    let plan, boxes = select_scan grid (Lazy.from_val table) ~volume ~cap in
    note_counted plan;
    if differential_armed () then
      differential_check_select ~site:"select_with" grid ~volume ~cap boxes;
    boxes
  end

let select grid ~volume ~cap =
  if volume <= 0 then invalid_arg "Finder.select: volume must be positive";
  if cap < 1 then invalid_arg "Finder.select: cap must be >= 1";
  Bgl_resilience.Budget.check ~site:"finder.select";
  if volume > Grid.volume grid then []
  else begin
    let plan, boxes = select_scan grid (lazy (Prefix.build grid)) ~volume ~cap in
    note_counted plan;
    if differential_armed () then differential_check_select ~site:"select" grid ~volume ~cap boxes;
    boxes
  end

(* ------------------------------------------------------------------ *)
(* Per-pass candidate cache: memoise finder results keyed on the grid's
   occupancy fingerprint, over an incrementally maintained summed-area
   table. Within one scheduling pass the engine re-queries the same
   volumes many times (head retry, backfill scan, MFP probes restore
   the fingerprint), so repeated enumeration work collapses into a
   hash lookup; any occupancy change flips the fingerprint and
   invalidates exactly the stale entries. *)

module Cache = struct
  type counters = { mutable hits : int; mutable misses : int }

  type t = {
    grid : Grid.t;
    table : Prefix.t Lazy.t;
        (* tracking table (Prefix.track), built on first forced use:
           the engine creates ghost caches per backfill/migration
           probe, and at full machine scale an eager 545k-entry build
           per probe would dominate — summary-gated probes often never
           touch the table at all. *)
    find_memo : (int, int * Box.t list) Hashtbl.t;  (* volume -> fingerprint, result *)
    exists_memo : (int, int * bool) Hashtbl.t;
    count_memo : (int, int * int) Hashtbl.t;  (* volume -> fingerprint, count *)
    select_memo : (int * int, int * Box.t list) Hashtbl.t;
        (* (volume, cap) -> fingerprint, subsample *)
    mutable mfp_slot : (int * Box.t option) option;
        (* one-deep MFP memo: the stable (unprobed) occupancy state *)
    counters : counters;
    obs_hits : Bgl_obs.Registry.counter;
    obs_misses : Bgl_obs.Registry.counter;
    obs_incr : Bgl_obs.Registry.counter;
    obs_full : Bgl_obs.Registry.counter;
    obs_counted : Bgl_obs.Registry.counter;
    obs_counted_skips : Bgl_obs.Registry.counter;
    mutable last_stats : Prefix.stats;
  }

  let create grid =
    let open Bgl_obs.Registry in
    let reg = Bgl_obs.Runtime.registry () in
    {
      grid;
      table = lazy (Prefix.track grid);
      find_memo = Hashtbl.create 32;
      exists_memo = Hashtbl.create 32;
      count_memo = Hashtbl.create 32;
      select_memo = Hashtbl.create 32;
      mfp_slot = None;
      counters = { hits = 0; misses = 0 };
      obs_hits = counter reg ~help:"finder candidate-cache hits" "bgl_finder_cache_hits_total";
      obs_misses =
        counter reg ~help:"finder candidate-cache misses" "bgl_finder_cache_misses_total";
      obs_incr =
        counter reg ~help:"summed-area table updates, by kind"
          "bgl_prefix_updates_total{kind=\"incremental\"}";
      obs_full =
        counter reg ~help:"summed-area table updates, by kind"
          "bgl_prefix_updates_total{kind=\"full\"}";
      obs_counted =
        counter reg ~help:"counted (count-then-select) finder queries"
          "bgl_finder_counted_queries_total";
      obs_counted_skips =
        counter reg ~help:"shapes and base rows the summary let counted queries skip"
          "bgl_finder_counted_skips_total";
      last_stats = { Prefix.full_rebuilds = 0; incremental_updates = 0 };
    }

  let grid t = t.grid

  (* Notes only reach a table that exists; a table built later starts
     from the grid's then-current occupancy, so unforwarded notes are
     never missed state. *)
  let note_box t box = if Lazy.is_val t.table then Prefix.note_box (Lazy.force t.table) box
  let note_node t node = if Lazy.is_val t.table then Prefix.note_node (Lazy.force t.table) node

  let flush_table_stats t =
    let s = Prefix.stats (Lazy.force t.table) in
    let incr = s.Prefix.incremental_updates - t.last_stats.Prefix.incremental_updates in
    let full = s.Prefix.full_rebuilds - t.last_stats.Prefix.full_rebuilds in
    if incr > 0 then Bgl_obs.Registry.add t.obs_incr (float_of_int incr);
    if full > 0 then Bgl_obs.Registry.add t.obs_full (float_of_int full);
    if incr > 0 || full > 0 then t.last_stats <- s

  let table t =
    let tbl = Lazy.force t.table in
    Prefix.sync tbl;
    flush_table_stats t;
    tbl

  (* A per-query lazy view: synced (and built) only if the scan
     actually consults it. *)
  let lazy_table t = lazy (table t)

  let hit t =
    t.counters.hits <- t.counters.hits + 1;
    Bgl_obs.Registry.inc t.obs_hits

  let miss t =
    t.counters.misses <- t.counters.misses + 1;
    Bgl_obs.Registry.inc t.obs_misses

  let stats t = (t.counters.hits, t.counters.misses)
  let table_stats t = Prefix.stats (Lazy.force t.table)

  let find t ~volume =
    if volume <= 0 then invalid_arg "Finder.Cache.find: volume must be positive";
    Bgl_resilience.Budget.check ~site:"finder.cache.find";
    let result =
      if volume > Grid.volume t.grid then []
      else
        let fp = Grid.fingerprint t.grid in
        match Hashtbl.find_opt t.find_memo volume with
        | Some (fp', boxes) when fp' = fp ->
            hit t;
            boxes
        | _ ->
            miss t;
            let table = lazy_table t in
            let boxes =
              if Bgl_obs.Span.enabled () then
                Bgl_obs.Span.time ~name:"finder.cache.find" (fun () ->
                    find_prefix_scan t.grid table ~volume)
              else find_prefix_scan t.grid table ~volume
            in
            Hashtbl.replace t.find_memo volume (fp, boxes);
            boxes
    in
    if differential_armed () then differential_check ~site:"cache.find" t.grid ~volume result;
    result

  let exists_free t ~volume =
    if volume <= 0 then invalid_arg "Finder.Cache.exists_free: volume must be positive";
    Bgl_resilience.Budget.check ~site:"finder.cache.exists_free";
    let result =
      if volume > Grid.volume t.grid then false
      else
        let fp = Grid.fingerprint t.grid in
        match Hashtbl.find_opt t.exists_memo volume with
        | Some (fp', r) when fp' = fp ->
            hit t;
            r
        | _ ->
            miss t;
            let table = lazy_table t in
            let r =
              if Bgl_obs.Span.enabled () then
                Bgl_obs.Span.time ~name:"finder.cache.exists_free" (fun () ->
                    exists_free_scan t.grid table ~volume)
              else exists_free_scan t.grid table ~volume
            in
            Hashtbl.replace t.exists_memo volume (fp, r);
            r
    in
    if differential_armed () then
      differential_check_exists ~site:"cache.exists_free" t.grid ~volume result;
    result

  let count t ~volume =
    if volume <= 0 then invalid_arg "Finder.Cache.count: volume must be positive";
    Bgl_resilience.Budget.check ~site:"finder.cache.count";
    let result =
      if volume > Grid.volume t.grid then 0
      else
        let fp = Grid.fingerprint t.grid in
        match Hashtbl.find_opt t.count_memo volume with
        | Some (fp', n) when fp' = fp ->
            hit t;
            n
        | _ ->
            miss t;
            let plan = count_scan t.grid (lazy_table t) ~volume in
            note_counted ~queries:t.obs_counted ~skips:t.obs_counted_skips plan;
            Hashtbl.replace t.count_memo volume (fp, plan.p_total);
            plan.p_total
    in
    if differential_armed () then differential_check_count ~site:"cache.count" t.grid ~volume result;
    result

  (* The capped engine query: count, pick the historical even-subsample
     ranks, and emit only those boxes. Also seeds the count memo — the
     count pass already ran. *)
  let select t ~volume ~cap =
    if volume <= 0 then invalid_arg "Finder.Cache.select: volume must be positive";
    if cap < 1 then invalid_arg "Finder.Cache.select: cap must be >= 1";
    Bgl_resilience.Budget.check ~site:"finder.cache.select";
    let result =
      if volume > Grid.volume t.grid then []
      else
        let fp = Grid.fingerprint t.grid in
        match Hashtbl.find_opt t.select_memo (volume, cap) with
        | Some (fp', boxes) when fp' = fp ->
            hit t;
            boxes
        | _ ->
            miss t;
            let table = lazy_table t in
            let plan, boxes = select_scan t.grid table ~volume ~cap in
            note_counted ~queries:t.obs_counted ~skips:t.obs_counted_skips plan;
            Hashtbl.replace t.count_memo volume (fp, plan.p_total);
            Hashtbl.replace t.select_memo (volume, cap) (fp, boxes);
            boxes
    in
    if differential_armed () then
      differential_check_select ~site:"cache.select" t.grid ~volume ~cap result;
    result

  (* MFP search does not fit the per-volume memo (its result is a box,
     found by scanning volume levels), so it gets a one-deep slot:
     callers like [Mfp.box ~cache] pass the actual search as [compute].
     What-if probes bypass this slot so the stable pre-probe state is
     not evicted by transient fingerprints. *)
  let mfp_cached t ~compute =
    let fp = Grid.fingerprint t.grid in
    match t.mfp_slot with
    | Some (fp', r) when fp' = fp ->
        hit t;
        r
    | _ ->
        miss t;
        let r = compute () in
        t.mfp_slot <- Some (fp, r);
        r
end

let find algo grid ~volume =
  if volume <= 0 then invalid_arg "Finder.find: volume must be positive";
  Bgl_resilience.Budget.check ~site:"finder.find";
  if volume > Grid.volume grid then []
  else
    let run () =
      match algo with
      | Naive -> find_naive grid ~volume
      | Pop -> find_pop grid ~volume
      | Shape_search -> find_shape_search grid ~volume
      | Prefix -> find_prefix grid ~volume
      | Auto ->
          (* Scale-selected: direct scan on supernode-scale grids (no
             table to amortise), summed-area table above that, with
             summary gating kicking in automatically past
             [summary_gate_volume] inside the prefix scan. *)
          if Grid.volume grid <= direct_volume_max then find_shape_search grid ~volume
          else find_prefix grid ~volume
    in
    let result =
      if Bgl_obs.Span.enabled () then Bgl_obs.Span.time ~name:"finder.find" run else run ()
    in
    if differential_armed () && algo <> Naive then
      differential_check ~site:(algo_name algo) grid ~volume result;
    result

let find_for_size algo grid ~size =
  match Shapes.round_up_volume (Grid.dims grid) size with
  | None -> []
  | Some volume -> find algo grid ~volume

let exists_free grid ~volume =
  if volume <= 0 then invalid_arg "Finder.exists_free: volume must be positive";
  Bgl_resilience.Budget.check ~site:"finder.exists_free";
  if volume > Grid.volume grid then false
  else
    let run () = exists_free_scan grid (lazy (Prefix.build grid)) ~volume in
    let result =
      if Bgl_obs.Span.enabled () then Bgl_obs.Span.time ~name:"finder.exists_free" run
      else run ()
    in
    if differential_armed () then
      differential_check_exists ~site:"exists_free" grid ~volume result;
    result
