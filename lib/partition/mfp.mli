(** Maximal Free Partition (MFP) computation.

    The MFP is the largest contiguous rectangular free partition in the
    torus (Section 5.1, Figure 1). Krevat's heuristic prefers
    placements that leave the largest MFP behind; the balancing
    algorithm's L_MFP term is the drop in MFP volume caused by a
    candidate placement. The search scans shapes in decreasing-volume
    order over a summed-area table, so it stops at the first volume
    level that still has a free box.

    Every entry point takes an optional {!Finder.Cache.t}. When the
    cache is bound to the queried grid, the search reuses the cache's
    incrementally maintained summed-area table instead of building a
    fresh one per call, and whole-grid results are memoised on the
    occupancy fingerprint. A cache bound to a different grid (the
    schedulers probe ghost copies) is ignored. *)

open Bgl_torus

val volume : ?cache:Finder.Cache.t -> Grid.t -> int
(** Volume of the MFP; 0 when no node is free. *)

val box : ?cache:Finder.Cache.t -> Grid.t -> Box.t option
(** Some maximal free partition (the first in scan order), if any. *)

val search_with : Prefix.t -> Grid.t -> Box.t option
(** MFP search over a caller-supplied summed-area table (which must
    reflect the grid's current occupancy). *)

val volume_after : ?cache:Finder.Cache.t -> Grid.t -> Box.t -> int
(** [volume_after grid candidate] is the MFP volume once [candidate]
    (which must be free) is occupied. The grid is mutated temporarily
    and restored before returning; with a cache, the probe is noted on
    the way in and out so the table updates stay incremental. *)

val loss : ?cache:Finder.Cache.t -> Grid.t -> Box.t -> int
(** [loss grid candidate = volume grid - volume_after grid candidate]:
    the L_MFP term of the balancing algorithm. *)

val loss_given : ?cache:Finder.Cache.t -> before:int -> Grid.t -> Box.t -> int
(** Same as {!loss} with the pre-placement MFP volume already known —
    the schedulers compute it once per scheduling decision. *)
