(** Maximal Free Partition (MFP) computation.

    The MFP is the largest contiguous rectangular free partition in the
    torus (Section 5.1, Figure 1). Krevat's heuristic prefers
    placements that leave the largest MFP behind; the balancing
    algorithm's L_MFP term is the drop in MFP volume caused by a
    candidate placement. The search scans shapes in decreasing-volume
    order over a summed-area table, so it stops at the first volume
    level that still has a free box. *)

open Bgl_torus

val volume : Grid.t -> int
(** Volume of the MFP; 0 when no node is free. *)

val box : Grid.t -> Box.t option
(** Some maximal free partition (the first in scan order), if any. *)

val volume_after : Grid.t -> Box.t -> int
(** [volume_after grid candidate] is the MFP volume once [candidate]
    (which must be free) is occupied. The grid is mutated temporarily
    and restored before returning. *)

val loss : Grid.t -> Box.t -> int
(** [loss grid candidate = volume grid - volume_after grid candidate]:
    the L_MFP term of the balancing algorithm. *)

val loss_given : before:int -> Grid.t -> Box.t -> int
(** Same as {!loss} with the pre-placement MFP volume already known —
    the schedulers compute it once per scheduling decision. *)
