open Bgl_torus

exception Found of Box.t

(* The table is lazy so a search whose every shape is skipped — too
   large for the free count, or rejected by the grid's summary — never
   builds it; ghost-grid probes on a busy full-scale machine hit that
   case constantly. Shape and base order are unchanged from the eager
   scan, so the returned box is identical. *)
let search_lazy table grid =
  if Grid.free_count grid = 0 then None
  else
    let d = Grid.dims grid in
    let wrap = Grid.wrap grid in
    let free = Grid.free_count grid in
    let first_free_in shapes =
      try
        Array.iter
          (fun shape ->
            if Finder.shape_possible grid shape then begin
              let tbl = Lazy.force table in
              Finder.iter_bases d ~wrap shape ~f:(fun x y z ->
                  let box = Box.make (Coord.make x y z) shape in
                  if Prefix.box_is_free tbl box then raise (Found box))
            end)
          shapes;
        None
      with Found b -> Some b
    in
    (* Levels are sorted by decreasing volume; no box larger than the
       free-node count can be free, so those levels are skipped, and
       the first level with any free box yields the MFP. *)
    let rec scan_levels = function
      | [] -> None
      | (volume, shapes) :: rest ->
          if volume > free then scan_levels rest
          else (match first_free_in shapes with Some b -> Some b | None -> scan_levels rest)
    in
    scan_levels (Shapes.levels_desc d)

let search_with table grid = search_lazy (Lazy.from_val table) grid
let search grid = search_lazy (lazy (Prefix.build grid)) grid

(* With a cache the search scans the cache's incrementally maintained
   table, and the result is memoised on the occupancy fingerprint via
   the cache's one-deep MFP slot. *)
(* A cache only applies to the very grid it is bound to: callers probe
   ghost copies too (reservation feasibility, migration planning), and
   those must fall back to cold searches. *)
let cache_for cache grid =
  match cache with Some c when Finder.Cache.grid c == grid -> Some c | _ -> None

let box ?cache grid =
  match cache_for cache grid with
  | None -> search grid
  | Some c -> Finder.Cache.mfp_cached c ~compute:(fun () -> search_with (Finder.Cache.table c) grid)

let volume ?cache grid = match box ?cache grid with None -> 0 | Some b -> Box.volume b

(* A distinct owner id out of the job-id space; Grid forbids negative
   owners other than its own sentinels, so use a huge positive id. *)
let probe_owner = max_int

let volume_after ?cache grid candidate =
  let cache = cache_for cache grid in
  Grid.occupy grid candidate ~owner:probe_owner;
  (match cache with Some c -> Finder.Cache.note_box c candidate | None -> ());
  Fun.protect
    ~finally:(fun () ->
      Grid.vacate grid candidate ~owner:probe_owner;
      match cache with Some c -> Finder.Cache.note_box c candidate | None -> ())
    (fun () ->
      match cache with
      | None -> volume grid
      | Some c -> (
          (* Probe states are transient (the vacate in [finally]
             restores the fingerprint), so bypass the MFP memo slot —
             it must keep the stable pre-probe result — but do reuse
             the incremental table: the probe box is noted going in and
             coming out, so both syncs are dirty-block updates. *)
          match search_with (Finder.Cache.table c) grid with
          | None -> 0
          | Some b -> Box.volume b))

let loss ?cache grid candidate = volume ?cache grid - volume_after ?cache grid candidate
let loss_given ?cache ~before grid candidate = before - volume_after ?cache grid candidate
