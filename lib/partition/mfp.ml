open Bgl_torus

let search grid =
  if Grid.free_count grid = 0 then None
  else
    let d = Grid.dims grid in
    let wrap = Grid.wrap grid in
    let free = Grid.free_count grid in
    let table = Prefix.build grid in
    let first_free_in shapes =
      Array.fold_left
        (fun acc shape ->
          match acc with
          | Some _ -> acc
          | None ->
              Array.fold_left
                (fun acc base ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                      let box = Box.make base shape in
                      if Prefix.box_is_free table box then Some box else None)
                None
                (Finder.bases_arr d ~wrap shape))
        None shapes
    in
    (* Levels are sorted by decreasing volume; no box larger than the
       free-node count can be free, so those levels are skipped, and
       the first level with any free box yields the MFP. *)
    let rec scan_levels = function
      | [] -> None
      | (volume, shapes) :: rest ->
          if volume > free then scan_levels rest
          else (match first_free_in shapes with Some b -> Some b | None -> scan_levels rest)
    in
    scan_levels (Shapes.levels_desc d)

let box grid = search grid

let volume grid = match search grid with None -> 0 | Some b -> Box.volume b

(* A distinct owner id out of the job-id space; Grid forbids negative
   owners other than its own sentinels, so use a huge positive id. *)
let probe_owner = max_int

let volume_after grid candidate =
  Grid.occupy grid candidate ~owner:probe_owner;
  Fun.protect
    ~finally:(fun () -> Grid.vacate grid candidate ~owner:probe_owner)
    (fun () -> volume grid)

let loss grid candidate = volume grid - volume_after grid candidate
let loss_given ~before grid candidate = before - volume_after grid candidate
