(** Free-partition finders.

    Four algorithms with identical observable behaviour — they return
    the same canonical set of free boxes — but very different running
    times, matching the lineage in the paper's Appendix 9:

    - {!Naive}: enumerate every box of every size, check node by node,
      filter by volume. O(M⁹) on an empty M×M×M torus. The reference
      the others are validated against.
    - {!Pop}: a Krevat-style Projection-of-Partitions dynamic program —
      project each z-extent onto a 2-D free map maintained
      incrementally, then scan rectangles with 2-D prefix sums. O(M⁵)
      flavour.
    - {!Shape_search}: the paper's algorithm — only divisor shapes of
      the requested volume, scanning bases with early exit on the
      first occupied node.
    - {!Prefix}: the shape search with a 3-D summed-area table so each
      candidate box costs O(1) (this repository's refinement; used by
      the schedulers).

    All results are canonical ({!Bgl_torus.Box.canonical}) and sorted,
    so finder outputs can be compared structurally. *)

open Bgl_torus

type algo = Naive | Pop | Shape_search | Prefix

val all_algos : algo list
val algo_name : algo -> string

val bases : Dims.t -> wrap:bool -> Shape.t -> Coord.t list
(** Base coordinates to try for a shape: every in-bounds coordinate
    with wraparound (collapsed to 0 along dimensions the shape spans
    fully), or only non-overflowing bases without. *)

val bases_arr : Dims.t -> wrap:bool -> Shape.t -> Coord.t array
(** Cached array view of {!bases}; callers must not mutate it. *)

val find : algo -> Grid.t -> volume:int -> Box.t list
(** All free partitions of exactly [volume] nodes, canonical and
    sorted. [volume] must be positive; an unrealisable volume yields
    []. *)

val find_with : Prefix.t -> Grid.t -> volume:int -> Box.t list
(** {!Prefix}-algorithm search reusing a prebuilt summed-area table
    (which must reflect the grid's current occupancy) — the engine
    shares one table across a scheduling pass. *)

val exists_free_with : Prefix.t -> Grid.t -> volume:int -> bool

val find_for_size : algo -> Grid.t -> size:int -> Box.t list
(** Candidates for a job of [size] nodes: the free partitions of the
    rounded-up volume ({!Shapes.round_up_volume}). *)

val exists_free : Grid.t -> volume:int -> bool
(** Whether at least one free partition of exactly [volume] exists
    (prefix-based, with early exit). *)
