(** Free-partition finders.

    Five algorithms with identical observable behaviour — they return
    the same canonical set of free boxes — but very different running
    times, matching the lineage in the paper's Appendix 9:

    - {!Naive}: enumerate every box of every size, check node by node,
      filter by volume. O(M⁹) on an empty M×M×M torus. The reference
      the others are validated against.
    - {!Pop}: a Krevat-style Projection-of-Partitions dynamic program —
      project each z-extent onto a 2-D free map maintained
      incrementally, then scan rectangles with 2-D prefix sums. O(M⁵)
      flavour.
    - {!Shape_search}: the paper's algorithm — only divisor shapes of
      the requested volume, scanning bases with early exit on the
      first occupied node.
    - {!Prefix}: the shape search with a 3-D summed-area table so each
      candidate box costs O(1) (this repository's refinement; used by
      the schedulers). At machine volumes of 512 and above, shapes are
      first filtered through the grid's {!Bgl_torus.Summary} so
      infeasible shapes never pay for a base scan or a table sync.
    - {!Auto}: scale-selected front-end — direct shape scan on
      supernode-scale grids (volume ≤ 128), summed-area table above
      that, summary-guided table at full machine scale.

    All results are canonical ({!Bgl_torus.Box.canonical}) and sorted,
    so finder outputs can be compared structurally. *)

open Bgl_torus

type algo = Naive | Pop | Shape_search | Prefix | Auto

val all_algos : algo list
val algo_name : algo -> string

val bases : Dims.t -> wrap:bool -> Shape.t -> Coord.t list
(** Base coordinates to try for a shape: every in-bounds coordinate
    with wraparound (collapsed to 0 along dimensions the shape spans
    fully), or only non-overflowing bases without. *)

val bases_arr : Dims.t -> wrap:bool -> Shape.t -> Coord.t array
(** Cached array view of {!bases}; callers must not mutate it. *)

val iter_bases : Dims.t -> wrap:bool -> Shape.t -> f:(int -> int -> int -> unit) -> unit
(** [iter_bases d ~wrap s ~f] calls [f x y z] for every base of
    {!bases}, in the same order, without materializing the set — at
    full machine scale a shape has up to 65k bases, so the scan paths
    iterate instead of allocating. *)

val bases_cache_stats : unit -> int * int
(** [(entries, cap)] of the calling domain's base-array cache. The
    cache is evicted wholesale when an insertion would exceed the cap,
    so [entries <= cap] always holds. *)

val summary_gated : Grid.t -> bool
(** Whether finder scans on this grid consult the occupancy summary
    before enumerating bases (machine volume ≥ 512). *)

val shape_possible : Grid.t -> Shape.t -> bool
(** [false] only when the grid's {!Bgl_torus.Summary} proves no free
    box of the shape exists; always [true] below the gating volume.
    The fast pre-filter used by the scan paths and {!Bgl_partition.Mfp}. *)

val find : algo -> Grid.t -> volume:int -> Box.t list
(** All free partitions of exactly [volume] nodes, canonical and
    sorted. [volume] must be positive; an unrealisable volume yields
    []. *)

val find_with : Prefix.t -> Grid.t -> volume:int -> Box.t list
(** {!Prefix}-algorithm search reusing a prebuilt summed-area table
    (which must reflect the grid's current occupancy) — the engine
    shares one table across a scheduling pass. *)

val exists_free_with : Prefix.t -> Grid.t -> volume:int -> bool

val find_for_size : algo -> Grid.t -> size:int -> Box.t list
(** Candidates for a job of [size] nodes: the free partitions of the
    rounded-up volume ({!Shapes.round_up_volume}). *)

val exists_free : Grid.t -> volume:int -> bool
(** Whether at least one free partition of exactly [volume] exists
    (prefix-based, with early exit). *)

(** {1 Counted enumeration}

    Capped candidate queries without materialising the full candidate
    list. A count pass computes the exact number of free boxes per
    (z, y) base row — O(1) summed-area queries per row on mostly-free
    grids, with whole shapes, planes and rows skipped through the grid
    {!Bgl_torus.Summary} — and a select pass walks only the rows
    holding the requested ranks.

    The invariant all three functions share: ranks are taken in the
    canonical sorted order of {!find}'s result ({!Bgl_torus.Box.compare}:
    base z, y, x, then shape), so [select ~cap] is {e definitionally}
    equal to capping the materialised list with the engine's historical
    even subsample [i*n/cap] — the equality the qcheck layer and the
    differential oracle enforce. Counted queries are observable as
    [bgl_finder_counted_queries_total] / [bgl_finder_counted_skips_total]
    and the [finder.count.scan] / [finder.count.select] spans. *)

val count : Grid.t -> volume:int -> int
(** [count grid ~volume = List.length (find Prefix grid ~volume)],
    computed without allocating the list. *)

val count_with : Prefix.t -> Grid.t -> volume:int -> int
(** As {!count}, reusing a prebuilt summed-area table that must
    reflect the grid's current occupancy. *)

val nth : Grid.t -> volume:int -> rank:int -> Box.t option
(** [nth grid ~volume ~rank = List.nth_opt (find Prefix grid ~volume) rank]
    without materialising the list. [rank] must be ≥ 0. *)

val select : Grid.t -> volume:int -> cap:int -> Box.t list
(** The deterministic even subsample over the sorted candidate list:
    the whole list when its length [n] ≤ [cap], else the [cap] boxes
    at ranks [i*n/cap]. [cap] must be ≥ 1. *)

val select_with : Prefix.t -> Grid.t -> volume:int -> cap:int -> Box.t list

(** {1 Differential mode}

    A global debug switch: while enabled, accelerated queries ({!find}
    with a non-naive algorithm, {!find_with}, {!exists_free_with},
    {!exists_free}, and all {!Cache} queries) are cross-checked
    against an independent reference on the same grid, and the
    returned boxes are independently validated (in-bounds, exact
    volume, actually free). The reference is the {!Naive} enumeration
    on supernode-scale grids (volume ≤ 128) and a freshly built,
    summary-ungated table scan above that — an independent occupancy
    representation exercising none of the incremental maintenance,
    memoization or summary gating under test. Any disagreement raises
    {!Divergence}. Orders of magnitude slower than the queries it
    guards — meant for CI smoke runs and bug hunts, never production
    sweeps. The flag is atomic and process-wide, so parallel sweep
    domains all honour it. *)

exception Divergence of string
(** Raised when an accelerated finder disagrees with the reference.
    The payload is a human-readable report including both result sets
    and (on small grids) an ASCII dump of the grid. *)

val set_differential : ?sample:int -> bool -> unit
(** [set_differential ~sample:n true] cross-checks every nth guarded
    query (default 1 = every query) — sampling makes differential mode
    affordable on full-machine runs. [sample] must be ≥ 1. *)

val differential_enabled : unit -> bool

(** {1 Candidate cache}

    A per-engine cache that accelerates repeated finder queries against
    one long-lived grid. It owns an incrementally maintained
    summed-area table ({!Bgl_torus.Prefix.track}) — callers report each
    grid mutation via {!Cache.note_box}/{!Cache.note_node} — and
    memoises query results keyed on the grid's occupancy
    {!Bgl_torus.Grid.fingerprint}, so a repeated query on unchanged
    occupancy is a hash lookup. MFP what-if probes (occupy then vacate)
    restore the fingerprint, so they do not evict entries. *)

module Cache : sig
  type t

  val create : Grid.t -> t
  (** Bind a cache to [grid]. O(1): the summed-area table is built on
      first use, so ghost caches created for feasibility probes that
      the summary rejects outright never pay for one. Obs counters
      ([bgl_finder_cache_hits_total], [bgl_finder_cache_misses_total],
      [bgl_prefix_updates_total{kind=...}]) are registered against the
      current {!Bgl_obs.Runtime.registry}. *)

  val grid : t -> Grid.t

  val note_box : t -> Box.t -> unit
  (** Report that every node of the box was just occupied or vacated.
      Call once per {!Grid.occupy}/{!Grid.vacate} on the cached grid.
      An unreported mutation is detected via the grid's version counter
      and degrades the next query to a full table rebuild — stale
      results are never served. *)

  val note_node : t -> int -> unit
  (** Single-node variant (failure takedown / repair). *)

  val table : t -> Prefix.t
  (** The underlying summed-area table, synced to the grid's current
      occupancy — for callers that scan it directly (MFP search). *)

  val find : t -> volume:int -> Box.t list
  (** As {!Finder.find_with} on the cached grid, memoised per volume on
      the occupancy fingerprint. *)

  val exists_free : t -> volume:int -> bool

  val count : t -> volume:int -> int
  (** As {!Finder.count} on the cached grid, memoised per volume on the
      occupancy fingerprint. *)

  val select : t -> volume:int -> cap:int -> Box.t list
  (** As {!Finder.select} on the cached grid, memoised per
      (volume, cap) on the occupancy fingerprint. The engine's capped
      candidate query: byte-identical to
      [cap ∘ {!find}] but never materialises the full list. *)

  val mfp_cached : t -> compute:(unit -> Box.t option) -> Box.t option
  (** One-deep memo for the maximal-free-partition search: returns the
      remembered result if the fingerprint still matches, otherwise
      runs [compute] and remembers it. *)

  val stats : t -> int * int
  (** [(hits, misses)] across {!find}, {!exists_free} and
      {!mfp_cached}. *)

  val table_stats : t -> Prefix.stats
  (** Incremental-vs-full update counts of the underlying table. *)
end
