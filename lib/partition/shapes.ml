open Bgl_torus

let divisors n =
  if n <= 0 then invalid_arg "Shapes.divisors: argument must be positive";
  let rec loop d acc =
    if d * d > n then List.sort Int.compare acc
    else if n mod d = 0 then
      let acc = d :: (if d <> n / d then (n / d) :: acc else acc) in
      loop (d + 1) acc
    else loop (d + 1) acc
  in
  loop 1 []

let shapes_of_volume (d : Dims.t) v =
  if v <= 0 then invalid_arg "Shapes.shapes_of_volume: volume must be positive";
  let acc = ref [] in
  List.iter
    (fun sx ->
      if sx <= d.nx then
        List.iter
          (fun sy ->
            if sy <= d.ny then
              let sz = v / (sx * sy) in
              if sz <= d.nz then acc := Shape.make sx sy sz :: !acc)
          (divisors (v / sx)))
    (divisors v);
  List.sort Shape.compare !acc

(* Catalogue of every fitting shape, computed once per dimension. *)
type catalogue = { volumes : int list; desc : Shape.t list; levels : (int * Shape.t array) list }

(* An immutable assoc list behind an Atomic rather than a Hashtbl:
   every domain of a parallel sweep hits this cache on its placement
   path, and unsynchronized Hashtbl mutation is a data race. The list
   stays tiny (one entry per distinct torus dimension), reads are
   lock-free, and a publication race at worst computes a catalogue
   twice — the value is deterministic in the key, so either copy is
   correct. *)
let catalogues : ((int * int * int) * catalogue) list Atomic.t = Atomic.make []

let rec publish key c =
  let seen = Atomic.get catalogues in
  if List.mem_assoc key seen then ()
  else if not (Atomic.compare_and_set catalogues seen ((key, c) :: seen)) then publish key c

let catalogue (d : Dims.t) =
  let key = (d.nx, d.ny, d.nz) in
  match List.assoc_opt key (Atomic.get catalogues) with
  | Some c -> c
  | None ->
      let all = ref [] in
      for sx = 1 to d.nx do
        for sy = 1 to d.ny do
          for sz = 1 to d.nz do
            all := Shape.make sx sy sz :: !all
          done
        done
      done;
      let volumes = List.map Shape.volume !all |> List.sort_uniq Int.compare in
      let desc =
        List.sort
          (fun a b ->
            match Int.compare (Shape.volume b) (Shape.volume a) with
            | 0 -> Shape.compare a b
            | c -> c)
          !all
      in
      let levels =
        (* [desc] is sorted by volume descending, so each level is a
           consecutive run — one grouping pass instead of one full-list
           filter per distinct volume, which is quadratic in the shape
           count and costs seconds at 64x32x32. *)
        let rec group = function
          | [] -> []
          | s :: _ as l ->
              let v = Shape.volume s in
              let rec take acc = function
                | s' :: rest when Shape.volume s' = v -> take (s' :: acc) rest
                | rest -> (List.rev acc, rest)
              in
              let run, rest = take [] l in
              (v, Array.of_list run) :: group rest
        in
        group desc
      in
      let c = { volumes; desc; levels } in
      publish key c;
      c

let feasible_volumes d = (catalogue d).volumes

let round_up_volume d s =
  if s <= 0 then invalid_arg "Shapes.round_up_volume: size must be positive";
  List.find_opt (fun v -> v >= s) (feasible_volumes d)

let shapes_desc d = (catalogue d).desc

let levels_desc d = (catalogue d).levels

(* Rotations guarded by the machine: [Shape.rotations] enumerates all
   axis permutations, which is only safe verbatim on a cubic torus —
   on the real 64x32x32 machine a 1x1x64 job cannot stand up along y
   or z. Candidate enumeration must go through this filter (or
   [shapes_of_volume], which guards the same way). *)
let orientations (d : Dims.t) s = List.filter (Shape.fits d) (Shape.rotations s)
