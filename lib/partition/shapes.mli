(** Enumeration of admissible partition shapes.

    The paper's Appendix 9 builds the candidate set from
    [SHAPES = { (x, y, z) | xyz = s }]; this module provides that
    enumeration restricted to shapes that fit the torus, plus the
    job-size rounding rule: a request for [s] nodes is served by the
    smallest box volume [v >= s] for which some shape fits (e.g. 11
    nodes on a 4×4×8 torus round up to 12). Catalogues are cached per
    dimension because the scheduler queries them on every placement. *)

open Bgl_torus

val divisors : int -> int list
(** Sorted positive divisors. Argument must be positive. *)

val shapes_of_volume : Dims.t -> int -> Shape.t list
(** All shapes with the exact volume that fit the torus, sorted. *)

val feasible_volumes : Dims.t -> int list
(** Sorted list of all volumes realisable by some fitting shape. *)

val round_up_volume : Dims.t -> int -> int option
(** [round_up_volume d s] is the smallest realisable volume [>= s], or
    [None] when [s] exceeds the torus volume. [s] must be positive. *)

val shapes_desc : Dims.t -> Shape.t list
(** Every fitting shape, sorted by decreasing volume (ties in shape
    order); the scan order used by the maximal-free-partition search. *)

val levels_desc : Dims.t -> (int * Shape.t array) list
(** The same shapes grouped by volume, volumes descending. Cached;
    callers must not mutate the arrays. *)

val orientations : Dims.t -> Shape.t -> Shape.t list
(** The axis permutations of a shape that actually fit the torus: on a
    non-cubic machine (e.g. 64×32×32), {!Bgl_torus.Shape.rotations}
    emits orientations with no valid placement, so candidate
    enumeration must filter through the dimensions. Sorted, distinct;
    may be empty when no orientation fits. *)
