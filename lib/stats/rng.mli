(** Deterministic pseudo-random number generation.

    All stochastic components of the simulator draw from this module so
    that every experiment is exactly reproducible from a seed. The
    generator is SplitMix64, which is fast, has a 64-bit state, passes
    BigCrush, and supports cheap stream splitting — each subsystem
    (workload generator, failure generator, predictor, scheduler) gets
    an independent stream derived from the master seed, so adding draws
    in one subsystem never perturbs another. *)

type t
(** A mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> label:string -> t
(** [split t ~label] derives a new independent stream from [t]'s
    current state and [label]. Splitting with distinct labels yields
    decorrelated streams; [t] itself is advanced once. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly uniform, by
    rejection sampling of the top partial block rather than a biased
    modulo. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** A fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on
    an empty array. *)

val hash_float : seed:int -> int -> int -> float
(** [hash_float ~seed a b] is a deterministic pseudo-uniform value in
    [\[0, 1)] depending only on [(seed, a, b)]. Used where a stochastic
    answer must be stable across repeated queries with the same
    arguments (e.g. the tie-breaking predictor's response for a given
    node and failure event). *)
