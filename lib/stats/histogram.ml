type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (lo < hi) then invalid_arg "Histogram.create: need lo < hi";
  { lo; hi; width = (hi -. lo) /. float_of_int bins; counts = Array.make bins 0; underflow = 0; overflow = 0 }

let add t x =
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = min i (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let total t = t.underflow + t.overflow + Array.fold_left ( + ) 0 t.counts
let counts t = Array.copy t.counts
let underflow t = t.underflow
let overflow t = t.overflow

let bin_bounds t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_bounds: index out of range";
  (t.lo +. (float_of_int i *. t.width), t.lo +. (float_of_int (i + 1) *. t.width))

let pp ppf t =
  let max_count = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_bounds t i in
      let bar = String.make (c * 40 / max_count) '#' in
      Format.fprintf ppf "[%10.3g, %10.3g) %6d %s@." lo hi c bar)
    t.counts;
  if t.underflow > 0 then Format.fprintf ppf "underflow: %d@." t.underflow;
  if t.overflow > 0 then Format.fprintf ppf "overflow: %d@." t.overflow
