(** Samplers for the probability distributions used by the workload and
    failure models. All samplers take an explicit {!Rng.t} so call
    sites remain reproducible. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with the given rate (mean [1. /. rate]). [rate] must be
    positive. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** Log-normal: [exp (mu + sigma * N(0,1))]. The mean is
    [exp (mu +. sigma ** 2. /. 2.)]. *)

val normal : Rng.t -> mean:float -> std:float -> float
(** Gaussian via Box–Muller. *)

val weibull : Rng.t -> shape:float -> scale:float -> float
(** Weibull; [shape < 1.] gives the heavy-tailed, bursty inter-arrival
    behaviour observed in failure logs. *)

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto type I with minimum [scale]. *)

val geometric : Rng.t -> p:float -> int
(** Number of Bernoulli(p) trials up to and including the first
    success; support is [{1, 2, ...}]. [p] must be in [(0, 1\]]. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson by inversion for small means, with a normal approximation
    above 60 to stay O(1). *)

val zipf_weights : n:int -> skew:float -> float array
(** [zipf_weights ~n ~skew] is the normalised Zipf pmf
    [w.(i) ∝ 1 / (i+1)^skew] over [n] ranks. *)

val categorical : Rng.t -> float array -> int
(** Index drawn from unnormalised non-negative weights. At least one
    weight must be positive. *)

val discrete : Rng.t -> ('a * float) array -> 'a
(** [discrete rng pairs] draws a value from weighted pairs. *)
