(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). State advances by the golden-gamma
   constant; output is a finalizing mix of the state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* FNV-1a over the label bytes, folded into the parent's next output. *)
let split t ~label =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    label;
  { state = mix (Int64.logxor (bits64 t) !h) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Unbiased bounded draw by rejection (the bounded-draw debiasing of
     Lemire 2019, in the divisionless-free form): [v mod bound] is
     uniform iff [v] lands below the largest multiple of [bound] in
     [0, 2^62), so the partial block at the top — fewer than [bound]
     values — is redrawn. [max_int] is 2^62 - 1, hence
     [2^62 mod bound = ((max_int mod bound) + 1) mod bound]; the shift
     by 2 keeps the draw within OCaml's 63-bit non-negative range. *)
  let rem = ((max_int mod bound) + 1) mod bound in
  let lim = max_int - rem in
  let rec go () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    if v <= lim then v mod bound else go ()
  in
  go ()

let unit_float t =
  (* 53 random bits scaled into [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1.0p-53

let float t bound = unit_float t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let hash_float ~seed a b =
  let z = Int64.of_int seed in
  let z = mix (Int64.add z (Int64.mul golden_gamma (Int64.of_int (a + 0x9e3779b9)))) in
  let z = mix (Int64.add z (Int64.mul golden_gamma (Int64.of_int (b + 0x85ebca6b)))) in
  let v = Int64.to_int (Int64.shift_right_logical z 11) in
  float_of_int v *. 0x1.0p-53
