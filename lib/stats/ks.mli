(** One-sample Kolmogorov–Smirnov goodness-of-fit testing.

    Used to validate the synthetic workload and failure generators
    against their target distributions: the tests assert that generated
    runtimes are consistent with the profile's log-normal and that the
    uniform-baseline failure times are consistent with uniformity. *)

val statistic : samples:float array -> cdf:(float -> float) -> float
(** The KS statistic D_n = sup |F_empirical − F|; [samples] need not be
    sorted. The sample must be non-empty. *)

val p_value : d:float -> n:int -> float
(** Asymptotic two-sided p-value of D_n = [d] for sample size [n]
    (Kolmogorov distribution via its alternating series). *)

val test : samples:float array -> cdf:(float -> float) -> alpha:float -> bool
(** [true] when the sample is {e consistent} with the distribution at
    significance level [alpha] (i.e. p-value >= alpha). *)

val erf : float -> float
(** Error function (Abramowitz–Stegun 7.1.26, |error| < 1.5e-7). *)

val normal_cdf : mean:float -> std:float -> float -> float
val lognormal_cdf : mu:float -> sigma:float -> float -> float
val exponential_cdf : rate:float -> float -> float
val uniform_cdf : lo:float -> hi:float -> float -> float
