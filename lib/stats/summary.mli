(** Descriptive statistics over float samples, used by the metrics
    layer and by the report renderers. *)

type t = {
  count : int;
  mean : float;
  std : float;  (** population standard deviation; 0 for count < 2 *)
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

val empty : t
(** All-zero summary for an empty sample. *)

val of_list : float list -> t
val of_array : float array -> t

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0, 1\]], by linear
    interpolation. The array must be sorted ascending and non-empty. *)

val pp : Format.formatter -> t -> unit

(** Online mean/variance accumulator (Welford). *)
module Online : sig
  type acc

  val create : unit -> acc
  val add : acc -> float -> unit
  val count : acc -> int
  val mean : acc -> float
  val variance : acc -> float
  val std : acc -> float
end
