let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  (* 1 - u avoids log 0. *)
  -.log (1. -. Rng.unit_float rng) /. rate

let normal rng ~mean ~std =
  let u1 = 1. -. Rng.unit_float rng in
  let u2 = Rng.unit_float rng in
  mean +. (std *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~std:sigma)

let weibull rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Dist.weibull: parameters must be positive";
  scale *. ((-.log (1. -. Rng.unit_float rng)) ** (1. /. shape))

let pareto rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Dist.pareto: parameters must be positive";
  scale /. ((1. -. Rng.unit_float rng) ** (1. /. shape))

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: p must be in (0, 1]";
  if p >= 1. then 1
  else
    let u = 1. -. Rng.unit_float rng in
    1 + int_of_float (Float.floor (log u /. log (1. -. p)))

let poisson rng ~mean =
  if mean < 0. then invalid_arg "Dist.poisson: mean must be non-negative";
  if mean <= 0. then 0
  else if mean > 60. then
    (* Normal approximation with continuity correction. *)
    max 0 (int_of_float (Float.round (normal rng ~mean ~std:(sqrt mean))))
  else
    (* Knuth inversion. *)
    let l = exp (-.mean) in
    let rec loop k p =
      let p = p *. Rng.unit_float rng in
      if p <= l then k else loop (k + 1) p
    in
    loop 0 1.

let zipf_weights ~n ~skew =
  if n <= 0 then invalid_arg "Dist.zipf_weights: n must be positive";
  let w = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** skew)) in
  let total = Array.fold_left ( +. ) 0. w in
  Array.map (fun x -> x /. total) w

let categorical rng weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Dist.categorical: weights must include a positive entry";
  let target = Rng.unit_float rng *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let discrete rng pairs =
  let idx = categorical rng (Array.map snd pairs) in
  fst pairs.(idx)
