type t = {
  count : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

let empty = { count = 0; mean = 0.; std = 0.; min = 0.; max = 0.; median = 0.; p90 = 0.; p99 = 0. }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Summary.percentile: q out of [0, 1]";
  if n = 1 then sorted.(0)
  else
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let of_array a =
  let n = Array.length a in
  if n = 0 then empty
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    let total = Array.fold_left ( +. ) 0. a in
    let mean = total /. float_of_int n in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. a in
    {
      count = n;
      mean;
      std = (if n < 2 then 0. else sqrt (sq /. float_of_int n));
      min = sorted.(0);
      max = sorted.(n - 1);
      median = percentile sorted 0.5;
      p90 = percentile sorted 0.9;
      p99 = percentile sorted 0.99;
    }
  end

let of_list l = of_array (Array.of_list l)

let mean l =
  match l with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g std=%.4g min=%.4g med=%.4g p90=%.4g p99=%.4g max=%.4g"
    t.count t.mean t.std t.min t.median t.p90 t.p99 t.max

module Online = struct
  type acc = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add acc x =
    acc.n <- acc.n + 1;
    let delta = x -. acc.mean in
    acc.mean <- acc.mean +. (delta /. float_of_int acc.n);
    acc.m2 <- acc.m2 +. (delta *. (x -. acc.mean))

  let count acc = acc.n
  let mean acc = if acc.n = 0 then 0. else acc.mean
  let variance acc = if acc.n < 2 then 0. else acc.m2 /. float_of_int acc.n
  let std acc = sqrt (variance acc)
end
