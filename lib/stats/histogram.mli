(** Fixed-bin histograms, used by the trace-inspection tooling and by
    tests that check distribution shapes. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal-width
    bins plus underflow and overflow counters. [bins] must be positive
    and [lo < hi]. *)

val add : t -> float -> unit
val total : t -> int

val counts : t -> int array
(** In-range bin counts, length [bins]. *)

val underflow : t -> int
val overflow : t -> int

val bin_bounds : t -> int -> float * float
(** [bin_bounds t i] is the half-open interval covered by bin [i]. *)

val pp : Format.formatter -> t -> unit
(** Render as an ASCII bar chart, one line per bin. *)
