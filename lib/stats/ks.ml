let statistic ~samples ~cdf =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Ks.statistic: empty sample";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let lo = float_of_int i /. float_of_int n in
      let hi = float_of_int (i + 1) /. float_of_int n in
      d := Float.max !d (Float.max (abs_float (f -. lo)) (abs_float (hi -. f))))
    sorted;
  !d

let p_value ~d ~n =
  if n <= 0 then invalid_arg "Ks.p_value: n must be positive";
  if d <= 0. then 1.
  else if d >= 1. then 0.
  else begin
    (* Kolmogorov distribution with the Stephens finite-n correction. *)
    let sqrt_n = sqrt (float_of_int n) in
    let lambda = (sqrt_n +. 0.12 +. (0.11 /. sqrt_n)) *. d in
    let sum = ref 0. in
    for k = 1 to 100 do
      let fk = float_of_int k in
      sum := !sum +. ((-1.) ** (fk -. 1.) *. exp (-2. *. fk *. fk *. lambda *. lambda))
    done;
    Float.max 0. (Float.min 1. (2. *. !sum))
  end

let test ~samples ~cdf ~alpha =
  let d = statistic ~samples ~cdf in
  p_value ~d ~n:(Array.length samples) >= alpha

let erf x =
  (* Abramowitz & Stegun 7.1.26. *)
  let sign = if x < 0. then -1. else 1. in
  let x = abs_float x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
       +. (t *. (-0.284496736 +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  sign *. (1. -. (poly *. exp (-.x *. x)))

let normal_cdf ~mean ~std x =
  if std <= 0. then invalid_arg "Ks.normal_cdf: std must be positive";
  0.5 *. (1. +. erf ((x -. mean) /. (std *. sqrt 2.)))

let lognormal_cdf ~mu ~sigma x =
  if x <= 0. then 0. else normal_cdf ~mean:mu ~std:sigma (log x)

let exponential_cdf ~rate x = if x <= 0. then 0. else 1. -. exp (-.rate *. x)

let uniform_cdf ~lo ~hi x =
  if not (lo < hi) then invalid_arg "Ks.uniform_cdf: need lo < hi";
  if x <= lo then 0. else if x >= hi then 1. else (x -. lo) /. (hi -. lo)
