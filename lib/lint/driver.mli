(** The analysis driver: file discovery, parsing
    ([Parse.implementation] from compiler-libs — the linter sees
    exactly the grammar the compiler sees), rule dispatch, waiver
    application, rendering.

    Failures route through {!Bgl_resilience.Error}: unreadable inputs
    are [Io] (exit 74), source or waiver files that do not parse are
    [Parse] (exit 65). Findings are data, not errors — the CLI maps a
    non-{!clean} outcome to exit 1. *)

val lint_source : path:string -> string -> (Finding.t list, Bgl_resilience.Error.t) result
(** Analyze one implementation given as a string ([path] labels
    locations and selects path-sensitive rules like R6). Never raises;
    unparseable source is [Error (Parse _)]. *)

val lint_file : string -> (Finding.t list, Bgl_resilience.Error.t) result

val collect_files : string list -> (string list, Bgl_resilience.Error.t) result
(** Expand the argument paths: directories recurse to every [*.ml]
    (skipping [_build], [_opam] and dot-directories), files pass
    through. Deterministically sorted per directory level. *)

type outcome = {
  files_scanned : int;
  findings : Finding.t list;  (** non-waived, in {!Finding.compare} order *)
  waived : int;
  stale : Waivers.entry list;
}

val clean : outcome -> bool
(** No findings and no stale waivers — the build may pass. *)

val run : ?waivers:Waivers.t -> string list -> (outcome, Bgl_resilience.Error.t) result
(** The syntactic per-file pass (R1-R6). Typed waiver entries are out
    of scope: neither applied nor reported stale. *)

val run_typed :
  ?waivers:Waivers.t ->
  ?config:Typed_rules.config ->
  string list ->
  (outcome, Bgl_resilience.Error.t) result
(** The typed interprocedural pass (R7-R10) over every [.cmt] under
    the given paths — or under their [_build/default] mirrors when
    invoked from the source root. [files_scanned] counts distinct
    compiled units. Finding no [.cmt] at all is an [Io] error (build
    first); a corrupt or foreign [.cmt] is silently skipped (the
    analyzer is total over whatever [_build] contains). R7 waiver
    entries double as taint barriers and are exempt from staleness
    when consumed that way. *)

val pp_human : Format.formatter -> outcome -> unit
(** One ["file:line:col"] line per finding, then stale waivers. *)

val to_jsonl : outcome -> string list
(** One JSON object per finding / stale waiver, parseable by
    {!Bgl_obs.Jsonl.parse}. *)

val pp_summary : Format.formatter -> outcome -> unit
(** One-line scan summary for stderr. *)
