type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10
type severity = Error | Warning

let id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"

let name = function
  | R1 -> "wall-clock"
  | R2 -> "stdlib-random"
  | R3 -> "unsynchronized-global"
  | R4 -> "swallowed-exception"
  | R5 -> "float-literal-equality"
  | R6 -> "stray-stdout"
  | R7 -> "determinism-taint"
  | R8 -> "cross-domain-escape"
  | R9 -> "exception-flow"
  | R10 -> "lifecycle-protocol"

let severity = function
  | R1 | R2 | R3 | R4 | R7 | R8 | R9 | R10 -> Error
  | R5 | R6 -> Warning

let severity_label = function Error -> "error" | Warning -> "warning"

(* R1-R6 run on the Parsetree of one file at a time; R7-R10 run on the
   Typedtree (.cmt) of the whole tree at once and may carry a [trail]
   (the call path that justifies the finding). *)
let typed = function
  | R7 | R8 | R9 | R10 -> true
  | R1 | R2 | R3 | R4 | R5 | R6 -> false

let all_rules = [ R1; R2; R3; R4; R5; R6; R7; R8; R9; R10 ]
let rule_of_id s = List.find_opt (fun r -> id r = s) all_rules

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  end_col : int;
  message : string;
  trail : string list;
      (* interprocedural evidence: the call path from the reported site
         to the offending primitive, outermost first. [] for the
         single-site rules. *)
}

let make ?(trail = []) rule ~file (loc : Location.t) message =
  let col (p : Lexing.position) = p.pos_cnum - p.pos_bol in
  {
    rule;
    file;
    line = loc.loc_start.pos_lnum;
    col = col loc.loc_start;
    end_col = col loc.loc_end;
    message;
    trail;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare (id a.rule) (id b.rule) in
        if c <> 0 then c else String.compare a.message b.message

let pp_trail ppf = function
  | [] -> ()
  | trail -> Format.fprintf ppf "@.    via %s" (String.concat " -> " trail)

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d-%d: [%s/%s] %s: %s%a" t.file t.line t.col t.end_col (id t.rule)
    (severity_label (severity t.rule))
    (name t.rule) t.message pp_trail t.trail

let to_json t =
  Bgl_obs.Jsonl.obj
    ([
       ("kind", Bgl_obs.Jsonl.string "finding");
       ("rule", Bgl_obs.Jsonl.string (id t.rule));
       ("name", Bgl_obs.Jsonl.string (name t.rule));
       ("severity", Bgl_obs.Jsonl.string (severity_label (severity t.rule)));
       ("file", Bgl_obs.Jsonl.string t.file);
       ("line", Bgl_obs.Jsonl.int t.line);
       ("col", Bgl_obs.Jsonl.int t.col);
       ("end_col", Bgl_obs.Jsonl.int t.end_col);
       ("msg", Bgl_obs.Jsonl.string t.message);
     ]
    @
    match t.trail with
    | [] -> []
    | trail ->
        [
          ( "trail",
            "[" ^ String.concat "," (List.map Bgl_obs.Jsonl.string trail) ^ "]" );
        ])
