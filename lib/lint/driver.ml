let describe_parse_exn exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) -> (
      match report.Location.main with
      | { loc; txt } -> Format.asprintf "%a: %t" Location.print_loc loc txt)
  | _ -> Printexc.to_string exn

let lint_source ~path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok (Rules.check ~path structure)
  | exception exn ->
      Error (Bgl_resilience.Error.Parse { name = path; detail = describe_parse_exn exn })

let lint_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> lint_source ~path src
  | exception Sys_error detail -> Error (Bgl_resilience.Error.Io { path; detail })

let skip_dir name = name = "_build" || name = "_opam" || String.starts_with ~prefix:"." name

(* Deterministic file discovery: sorted at every level, so findings
   come out in the same order on every machine. *)
let collect_files paths =
  let rec add_path acc path =
    Result.bind acc (fun acc ->
        match Sys.is_directory path with
        | true ->
            let entries = Sys.readdir path in
            Array.sort String.compare entries;
            Array.fold_left
              (fun acc entry ->
                let child = Filename.concat path entry in
                if Sys.is_directory child then
                  if skip_dir entry then acc else add_path acc child
                else if Filename.check_suffix entry ".ml" then Result.map (List.cons child) acc
                else acc)
              (Ok acc) entries
        | false ->
            if Sys.file_exists path then Ok (path :: acc)
            else Error (Bgl_resilience.Error.Io { path; detail = "no such file or directory" })
        | exception Sys_error detail -> Error (Bgl_resilience.Error.Io { path; detail }))
  in
  Result.map List.rev (List.fold_left add_path (Ok []) paths)

type outcome = {
  files_scanned : int;
  findings : Finding.t list;
  waived : int;
  stale : Waivers.entry list;
}

let clean outcome = outcome.findings = [] && outcome.stale = []

let run ?(waivers = []) paths =
  Result.bind (collect_files paths) (fun files ->
      let rec lint_all acc = function
        | [] -> Ok (List.rev acc)
        | file :: rest ->
            Result.bind (lint_file file) (fun findings -> lint_all (findings :: acc) rest)
      in
      Result.map
        (fun per_file ->
          let all = List.sort Finding.compare (List.concat per_file) in
          let { Waivers.kept; waived; stale } = Waivers.apply waivers all ~scanned:files in
          { files_scanned = List.length files; findings = kept; waived; stale })
        (lint_all [] files))

let pp_human ppf t =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) t.findings;
  List.iter (fun e -> Format.fprintf ppf "%a@." Waivers.pp_stale e) t.stale

let to_jsonl t =
  List.map Finding.to_json t.findings @ List.map Waivers.stale_to_json t.stale

let pp_summary ppf t =
  Format.fprintf ppf "bgl-lint: %d file%s, %d finding%s (%d waived)%s"
    t.files_scanned
    (if t.files_scanned = 1 then "" else "s")
    (List.length t.findings)
    (if List.length t.findings = 1 then "" else "s")
    t.waived
    (match t.stale with
    | [] -> ""
    | l -> Printf.sprintf ", %d stale waiver%s" (List.length l) (if List.length l = 1 then "" else "s"))
