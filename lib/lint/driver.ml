let describe_parse_exn exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) -> (
      match report.Location.main with
      | { loc; txt } -> Format.asprintf "%a: %t" Location.print_loc loc txt)
  | _ -> Printexc.to_string exn

let lint_source ~path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok (Rules.check ~path structure)
  | exception exn ->
      Error (Bgl_resilience.Error.Parse { name = path; detail = describe_parse_exn exn })

let lint_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> lint_source ~path src
  | exception Sys_error detail -> Error (Bgl_resilience.Error.Io { path; detail })

let skip_dir name = name = "_build" || name = "_opam" || String.starts_with ~prefix:"." name

(* Deterministic file discovery: sorted at every level, so findings
   come out in the same order on every machine. *)
let collect_files paths =
  let rec add_path acc path =
    Result.bind acc (fun acc ->
        match Sys.is_directory path with
        | true ->
            let entries = Sys.readdir path in
            Array.sort String.compare entries;
            Array.fold_left
              (fun acc entry ->
                let child = Filename.concat path entry in
                if Sys.is_directory child then
                  if skip_dir entry then acc else add_path acc child
                else if Filename.check_suffix entry ".ml" then Result.map (List.cons child) acc
                else acc)
              (Ok acc) entries
        | false ->
            if Sys.file_exists path then Ok (path :: acc)
            else Error (Bgl_resilience.Error.Io { path; detail = "no such file or directory" })
        | exception Sys_error detail -> Error (Bgl_resilience.Error.Io { path; detail }))
  in
  Result.map List.rev (List.fold_left add_path (Ok []) paths)

type outcome = {
  files_scanned : int;
  findings : Finding.t list;
  waived : int;
  stale : Waivers.entry list;
}

let clean outcome = outcome.findings = [] && outcome.stale = []

let run ?(waivers = []) paths =
  Result.bind (collect_files paths) (fun files ->
      let rec lint_all acc = function
        | [] -> Ok (List.rev acc)
        | file :: rest ->
            Result.bind (lint_file file) (fun findings -> lint_all (findings :: acc) rest)
      in
      Result.map
        (fun per_file ->
          let all = List.sort Finding.compare (List.concat per_file) in
          let { Waivers.kept; waived; stale } =
            (* This pass only produces R1-R6; typed (R7-R10) waiver
               entries belong to [run_typed] and are out of scope here,
               neither consumed nor stale. *)
            Waivers.apply ~scope:(fun r -> not (Finding.typed r)) waivers all ~scanned:files
          in
          { files_scanned = List.length files; findings = kept; waived; stale })
        (lint_all [] files))

(* The typed pass: load every `.cmt` under the given paths (falling
   back to their `_build/default` mirrors when invoked from the source
   root), build the cross-module call graph, and run R7-R10 over it.
   R7 waiver entries double as taint barriers; the ones the analysis
   consumed that way are exempt from staleness. *)
let run_typed ?(waivers = []) ?config paths =
  Result.bind (Cmt_loader.collect_cmts paths) (fun cmts ->
      match cmts with
      | [] ->
          Error
            (Bgl_resilience.Error.Io
               {
                 path = String.concat " " paths;
                 detail =
                   "no .cmt files found — build first (dune build) so the typed pass has \
                    compiled units to analyze";
               })
      | cmts ->
          let units = List.filter_map Cmt_loader.load cmts in
          let cfg = match config with Some c -> c | None -> Typed_rules.default in
          let graph = Callgraph.build ~spawn_sites:cfg.Typed_rules.spawn_sites units in
          let findings, consumed = Typed_rules.check ~config:cfg ~waivers graph in
          let scanned =
            List.sort_uniq String.compare
              (List.map (fun (u : Cmt_loader.unit_info) -> u.source) units)
          in
          let { Waivers.kept; waived; stale } =
            Waivers.apply ~scope:Finding.typed
              ~preconsumed:(fun e -> List.memq e consumed)
              waivers findings ~scanned
          in
          Ok { files_scanned = List.length scanned; findings = kept; waived; stale })

let pp_human ppf t =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) t.findings;
  List.iter (fun e -> Format.fprintf ppf "%a@." Waivers.pp_stale e) t.stale

let to_jsonl t =
  List.map Finding.to_json t.findings @ List.map Waivers.stale_to_json t.stale

let pp_summary ppf t =
  Format.fprintf ppf "bgl-lint: %d file%s, %d finding%s (%d waived)%s"
    t.files_scanned
    (if t.files_scanned = 1 then "" else "s")
    (List.length t.findings)
    (if List.length t.findings = 1 then "" else "s")
    t.waived
    (match t.stale with
    | [] -> ""
    | l -> Printf.sprintf ", %d stale waiver%s" (List.length l) (if List.length l = 1 then "" else "s"))
