(** The rule implementations: a single [Ast_iterator] pass for the
    expression-level rules (R1, R2, R4, R5, R6) plus a structure-level
    scan for R3.

    Known blind spots, by design (a source-level analyzer with no
    typing environment): module aliasing ([module R = Random]) and
    shadowing dodge the ident rules; R3's mutable-record detection
    only sees record types declared in the same file; R3 accepts a
    [Mutex.create] binding within two structure items (or named
    [<binding>_mutex] / [<binding>_lock]) as the guard. The waiver
    file, not cleverness here, handles the legitimate exceptions. *)

val in_lib : string -> bool
(** Whether [path] lies under a [lib/] directory — gates R6. *)

val check : path:string -> Parsetree.structure -> Finding.t list
(** All findings for one parsed implementation, sorted by
    {!Finding.compare}, deduplicated. Never raises on any parse-able
    input. *)
