type entry = { rule : Finding.rule; path : string; reason : string; line : int }
type t = entry list

let normalize p =
  let p = if String.starts_with ~prefix:"./" p then String.sub p 2 (String.length p - 2) else p in
  String.map (fun c -> if c = '\\' then '/' else c) p

(* [entry.path] matches [file] exactly or as a trailing path suffix on
   a component boundary, so waivers written repo-relative keep working
   when the linter runs over a copied tree (the dune @lint rule). *)
let matches entry ~file =
  let file = normalize file in
  entry.path = file
  ||
  let suffix = "/" ^ entry.path in
  let ls = String.length suffix and lf = String.length file in
  ls <= lf && String.sub file (lf - ls) ls = suffix

let of_string ~name src =
  let errors = ref [] in
  let entries = ref [] in
  let err line fmt =
    Printf.ksprintf (fun m -> errors := Printf.sprintf "%s:%d: %s" name line m :: !errors) fmt
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim raw in
      if s <> "" && not (String.starts_with ~prefix:"#" s) then
        match String.index_opt s ' ' with
        | None -> err line "expected '<rule-id> <path> <reason>', got %S" s
        | Some sp -> (
            let rule_id = String.sub s 0 sp in
            let rest = String.trim (String.sub s (sp + 1) (String.length s - sp - 1)) in
            match Finding.rule_of_id rule_id with
            | None -> err line "unknown rule id %S (known: R1..R10)" rule_id
            | Some rule -> (
                match String.index_opt rest ' ' with
                | None ->
                    err line "waiver for %s %s needs a reason — say why the finding is fine"
                      rule_id rest
                | Some sp2 ->
                    let path = normalize (String.sub rest 0 sp2) in
                    let reason =
                      String.trim (String.sub rest (sp2 + 1) (String.length rest - sp2 - 1))
                    in
                    entries := { rule; path; reason; line } :: !entries)))
    (String.split_on_char '\n' src);
  match !errors with
  | [] -> Ok (List.rev !entries)
  | es -> Error (String.concat "; " (List.rev es))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | src ->
      Result.map_error
        (fun detail -> Bgl_resilience.Error.Parse { name = path; detail })
        (of_string ~name:path src)
  | exception Sys_error detail -> Error (Bgl_resilience.Error.Io { path; detail })

type applied = {
  kept : Finding.t list;
  waived : int;
  stale : entry list;
}

(* [scope] limits which waiver entries a pass even considers: the
   syntactic driver passes the R1-R6 predicate, the typed driver
   R7-R10, so each pass neither consumes nor reports-stale the other
   pass's entries. [preconsumed] marks entries the rules already used
   internally (an R7 waiver acting as a taint barrier matches no
   finding, but it is anything but stale). *)
let apply ?(scope = fun (_ : Finding.rule) -> true)
    ?(preconsumed = fun (_ : entry) -> false) t findings ~scanned =
  let scanned = List.map normalize scanned in
  let used = Array.make (List.length t) false in
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        let covered = ref false in
        List.iteri
          (fun i e ->
            if scope e.rule && e.rule = f.rule && matches e ~file:f.file then begin
              used.(i) <- true;
              covered := true
            end)
          t;
        not !covered)
      findings
  in
  let stale =
    List.filteri
      (fun i e ->
        scope e.rule
        && (not used.(i))
        && (not (preconsumed e))
        && List.exists (fun file -> matches e ~file) scanned)
      t
  in
  { kept; waived = List.length findings - List.length kept; stale }

let pp_stale ppf e =
  Format.fprintf ppf "stale waiver (line %d): %s %s (%s) matched no finding — delete it" e.line
    (Finding.id e.rule) e.path e.reason

let stale_to_json e =
  Bgl_obs.Jsonl.obj
    [
      ("kind", Bgl_obs.Jsonl.string "stale-waiver");
      ("rule", Bgl_obs.Jsonl.string (Finding.id e.rule));
      ("path", Bgl_obs.Jsonl.string e.path);
      ("reason", Bgl_obs.Jsonl.string e.reason);
      ("line", Bgl_obs.Jsonl.int e.line);
    ]
