(* The interprocedural rule families R7-R10, over a Callgraph.t.

   R7 determinism taint — no nondeterministic primitive (wall clock,
   Random, environment) may be reachable through calls from a
   deterministic root (engine step, finders, sweep cells). An R7
   waiver on a file acts as a taint *barrier*: reachability stops
   there, and the consumed entry is reported back so the driver does
   not call it stale.

   R8 cross-domain escape — a closure handed to a spawn site must not
   capture mutable state (ref, Hashtbl, Buffer, mutable record) that
   lacks Atomic/Mutex/DLS discipline. Classification is by type, not
   by name, so aliases resolve for free; a mutable record that carries
   its own Mutex.t field is treated as self-guarded. Arrays are
   exempt: the pool's disjoint-index writes are the sanctioned idiom.

   R9 exception flow — least-fixpoint raisable set of the protected
   control exceptions per function; a catch-all handler whose guarded
   expression can raise one of them (and that does not re-raise) is
   flagged. Unlike the syntactic R4 this only fires when a protected
   exception is actually reachable.

   R10 lifecycle protocol — every write to a protocol-controlled field
   (Job.t's [state]) must happen inside its blessed transition
   function. *)

module SSet = Callgraph.SSet

type config = {
  roots : string list;  (* def names or def-name prefixes *)
  sinks : string list;  (* exact nondeterministic primitives *)
  sink_prefixes : string list;  (* e.g. "Random." *)
  spawn_sites : string list;  (* callee suffixes that cross domains/threads *)
  protected_exns : string list;  (* constructor names a catch-all must not eat *)
  protocols : (string * string * string) list;
      (* record-type suffix, field, blessed-writer suffix *)
}

let default =
  {
    roots =
      [
        "Bgl_sim.Engine.run";
        "Bgl_core.Scenario.run";
        "Bgl_core.Sweep.run";
        "Bgl_core.Figures.produce";
        "Bgl_partition.Finder";
      ];
    sinks =
      [
        "Unix.gettimeofday";
        "Unix.time";
        "Unix.localtime";
        "Unix.gmtime";
        "Unix.getenv";
        "Unix.environment";
        "Sys.time";
        "Sys.getenv";
        "Sys.getenv_opt";
      ];
    sink_prefixes = [ "Random." ];
    spawn_sites =
      [
        "Domain.spawn";
        "Thread.create";
        "Pool.map";
        "Pool.map_supervised";
        "Pool.supervised";
        "Pool.run_workers";
        "Persistent.run_batch";
        "Persistent.map_supervised";
      ];
    protected_exns = [ "Budget_exceeded"; "Injected"; "Divergence" ];
    protocols = [ ("Job.t", "state", "Job.transition") ];
  }

(* ------------------------------------------------------------------ *)
(* R7 *)

let r7 cfg ~waivers graph findings consumed =
  let is_sink p =
    List.mem p cfg.sinks
    || List.exists (fun prefix -> String.starts_with ~prefix p) cfg.sink_prefixes
  in
  let barriers_for file =
    List.filter
      (fun (e : Waivers.entry) -> e.rule = Finding.R7 && Waivers.matches e ~file)
      waivers
  in
  let is_root (d : Callgraph.def) =
    List.exists (fun r -> d.name = r || String.starts_with ~prefix:(r ^ ".") d.name) cfg.roots
  in
  let roots = ref [] in
  Callgraph.iter_defs graph (fun d -> if is_root d then roots := d :: !roots);
  List.iter
    (fun (root : Callgraph.def) ->
      let visited = Hashtbl.create 64 in
      let reported = Hashtbl.create 8 in
      let pending = Queue.create () in
      Queue.add (root, [ root.Callgraph.name ]) pending;
      Hashtbl.replace visited root.name ();
      while not (Queue.is_empty pending) do
        let (d : Callgraph.def), rev_trail = Queue.pop pending in
        let barriers = if d == root then [] else barriers_for d.file in
        if barriers <> [] then
          List.iter
            (fun e -> if not (List.memq e !consumed) then consumed := e :: !consumed)
            barriers
        else begin
          List.iter
            (fun (s : Callgraph.site) ->
              if is_sink s.path && not (Hashtbl.mem reported s.path) then begin
                Hashtbl.replace reported s.path ();
                findings :=
                  Finding.make Finding.R7
                    ~trail:(List.rev (s.path :: rev_trail))
                    ~file:root.file root.def_loc
                    (Printf.sprintf
                       "nondeterministic primitive %s (at %s:%d) is reachable from deterministic \
                        root %s; thread the value in as data, or waive the intermediate file to \
                        declare the barrier"
                       s.path d.file s.ref_loc.loc_start.pos_lnum root.name)
                  :: !findings
              end)
            d.refs;
          List.iter
            (fun (callee : Callgraph.def) ->
              if not (Hashtbl.mem visited callee.name) then begin
                Hashtbl.replace visited callee.name ();
                Queue.add (callee, callee.name :: rev_trail) pending
              end)
            (Callgraph.callees graph d)
        end
      done)
    (List.rev !roots)

(* ------------------------------------------------------------------ *)
(* R8 *)

let safe_heads =
  [ "Atomic.t"; "Mutex.t"; "Condition.t"; "Semaphore.Counting.t"; "Semaphore.Binary.t";
    "Domain.DLS.key" ]

let builtin_mutable = [ "ref"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t"; "bytes" ]

(* A type head referenced from inside its own unit is unqualified
   ("job", not "Fixture.job"), so record lookup resolves through the
   def's context chain exactly like value references do. *)
let mutable_kind (graph : Callgraph.t) ~ctx ty =
  if ty = "" || List.mem ty safe_heads then None
  else if List.mem ty builtin_mutable then Some ty
  else
    let candidates = List.map (fun c -> c ^ "." ^ ty) (Callgraph.context_chain ctx) @ [ ty ] in
    let mem set = List.exists (fun c -> SSet.mem c set) candidates in
    if mem graph.mutable_records && not (mem graph.locked_records) then
      Some (Printf.sprintf "mutable record %s" ty)
    else None

let r8 graph findings =
  Callgraph.iter_defs graph (fun (d : Callgraph.def) ->
      List.iter
        (fun (sp : Callgraph.spawn) ->
          List.iter
            (fun (c : Callgraph.capture) ->
              match mutable_kind graph ~ctx:d.ctx c.ty with
              | None -> ()
              | Some kind ->
                  findings :=
                    Finding.make Finding.R8 ~trail:[ d.name ] ~file:d.file c.cap_loc
                      (Printf.sprintf
                         "closure passed to %s captures %s `%s` with no Atomic/Mutex/DLS \
                          discipline; copy the data in, guard it, or keep it domain-local"
                         sp.callee kind c.var)
                    :: !findings)
            sp.captures)
        d.spawns)

(* ------------------------------------------------------------------ *)
(* R9 *)

let r9 cfg graph findings =
  let protected_of l = SSet.of_list (List.filter (fun c -> List.mem c cfg.protected_exns) l) in
  (* callee names per def, computed once *)
  let edges = Hashtbl.create 256 in
  Callgraph.iter_defs graph (fun d ->
      Hashtbl.replace edges d.name
        (List.map (fun (c : Callgraph.def) -> c.name) (Callgraph.callees graph d)));
  let raisable = Hashtbl.create 256 in
  Callgraph.iter_defs graph (fun d -> Hashtbl.replace raisable d.name (protected_of d.raises));
  let changed = ref true in
  while !changed do
    changed := false;
    Callgraph.iter_defs graph (fun d ->
        let cur = Hashtbl.find raisable d.name in
        let next =
          List.fold_left
            (fun acc callee -> SSet.union acc (Hashtbl.find raisable callee))
            cur (Hashtbl.find edges d.name)
        in
        if not (SSet.equal next cur) then begin
          Hashtbl.replace raisable d.name next;
          changed := true
        end)
  done;
  Callgraph.iter_defs graph (fun (d : Callgraph.def) ->
      List.iter
        (fun (t : Callgraph.tri) ->
          if not t.reraises then begin
            let from_body =
              List.fold_left
                (fun acc p ->
                  match Callgraph.resolve graph ~ctx:d.ctx p with
                  | Some callee -> SSet.union acc (Hashtbl.find raisable callee.name)
                  | None -> acc)
                (protected_of t.body_raises) t.body_refs
            in
            if not (SSet.is_empty from_body) then
              findings :=
                Finding.make Finding.R9 ~trail:[ d.name ] ~file:d.file t.try_loc
                  (Printf.sprintf
                     "catch-all handler can swallow %s raised by the guarded expression; match \
                      the exceptions you mean to handle, or re-raise"
                     (String.concat ", " (SSet.elements from_body)))
                :: !findings
          end)
        d.tries)

(* ------------------------------------------------------------------ *)
(* R10 *)

let r10 cfg graph findings =
  Callgraph.iter_defs graph (fun (d : Callgraph.def) ->
      List.iter
        (fun (s : Callgraph.setfield) ->
          List.iter
            (fun (ty_suffix, field, blessed) ->
              if
                s.field = field
                && Callgraph.suffix_matches ~suffix:ty_suffix s.record_ty
                && not (Callgraph.suffix_matches ~suffix:blessed d.name)
              then
                findings :=
                  Finding.make Finding.R10 ~trail:[ d.name ] ~file:d.file s.set_loc
                    (Printf.sprintf
                       "%s.%s is mutated outside %s; every lifecycle edge must go through the \
                        blessed transition function"
                       s.record_ty s.field blessed)
                  :: !findings)
            cfg.protocols)
        d.setfields)

(* ------------------------------------------------------------------ *)

let check ?(config = default) ~waivers graph =
  let findings = ref [] in
  let consumed = ref [] in
  r7 config ~waivers graph findings consumed;
  r8 graph findings;
  r9 config graph findings;
  r10 config graph findings;
  (List.sort_uniq Finding.compare !findings, List.rev !consumed)
