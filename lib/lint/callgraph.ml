(* Cross-module call graph over typed units.

   One [def] per (sub)module-level value binding, carrying everything
   the interprocedural rules need: the value paths it references
   (edges, after [resolve]), the exception constructors it raises
   directly, the closures it hands to spawn sites with their captured
   variables, its [Texp_setfield] writes, and its catch-all exception
   handlers. Typedtree paths are already resolved through opens and
   aliases, so edge resolution is a name lookup, not a scoping
   problem. *)

module SSet = Set.Make (String)

type site = { path : string; ref_loc : Location.t }

type capture = { var : string; ty : string; cap_loc : Location.t }
(* a free variable of a spawned closure, with the head of its type *)

type spawn = { callee : string; captures : capture list; spawn_loc : Location.t }

type setfield = { record_ty : string; field : string; set_loc : Location.t }

type tri = {
  reraises : bool;  (* the catch-all handler mentions raise *)
  body_refs : string list;  (* paths referenced by the guarded expression *)
  body_raises : string list;  (* constructors raised directly by it *)
  try_loc : Location.t;
}

type def = {
  name : string;  (* fully qualified, e.g. "Bgl_sim.Engine.start_job" *)
  ctx : string;  (* enclosing module path, for edge resolution *)
  file : string;
  def_loc : Location.t;
  mutable refs : site list;
  mutable raises : string list;
  mutable spawns : spawn list;
  mutable setfields : setfield list;
  mutable tries : tri list;
}

type t = {
  defs : (string, def) Hashtbl.t;
  order : string list;  (* def names, deterministic *)
  mutable_records : SSet.t;  (* record types with a mutable field *)
  locked_records : SSet.t;  (* ...that also carry their own Mutex.t *)
}

(* ------------------------------------------------------------------ *)
(* Small helpers over compiler types *)

let type_head ty =
  let rec go ty =
    match Types.get_desc ty with
    | Tconstr (p, _, _) -> Cmt_loader.normalize_path p
    | Tpoly (ty, _) -> go ty
    | _ -> ""
  in
  go ty

(* [suffix] matches [name] exactly or on a dotted-component boundary,
   mirroring the waiver-file path matching. *)
let suffix_matches ~suffix name =
  name = suffix
  ||
  let s = "." ^ suffix in
  let ls = String.length s and ln = String.length name in
  ls <= ln && String.sub name (ln - ls) ls = s

let is_raise n = n = "raise" || n = "raise_notrace" || n = "Printexc.raise_with_backtrace"

let raised_constructor (f : Typedtree.expression) args =
  match f.exp_desc with
  | Texp_ident (p, _, _) when is_raise (Cmt_loader.normalize_path p) -> (
      match args with
      | (_, Some { Typedtree.exp_desc = Texp_construct (_, cstr, _); _ }) :: _ ->
          Some cstr.Types.cstr_name
      | _ -> None)
  | _ -> None

let rec catch_all_value (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_any | Tpat_var _ -> true
  | Tpat_alias (p, _, _) -> catch_all_value p
  | Tpat_or (a, b, _) -> catch_all_value a || catch_all_value b
  | _ -> false

let rec exn_catch_all (p : Typedtree.computation Typedtree.general_pattern) =
  match p.pat_desc with
  | Tpat_exception p -> catch_all_value p
  | Tpat_or (a, b, _) -> exn_catch_all a || exn_catch_all b
  | _ -> false

(* Paths referenced / constructors raised directly under [expr0]. Used
   for the guarded body of a [try], independently of the enclosing
   def's accumulation. *)
let shallow_refs expr0 =
  let refs = ref [] in
  let raises = ref [] in
  let expr iter (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> refs := Cmt_loader.normalize_path p :: !refs
    | Texp_apply (f, args) -> (
        match raised_constructor f args with
        | Some c -> raises := c :: !raises
        | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr iter e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it expr0;
  (List.rev !refs, List.rev !raises)

let expr_reraises expr0 =
  let found = ref false in
  let expr iter (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> if is_raise (Cmt_loader.normalize_path p) then found := true
    | _ -> ());
    Tast_iterator.default_iterator.expr iter e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it expr0;
  !found

(* Free variables of a literal closure: idents used minus idents bound
   anywhere inside it. Exact, because [Ident.unique_name] carries the
   binder's stamp. *)
let free_vars (fn : Typedtree.expression) =
  let used : (string, capture) Hashtbl.t = Hashtbl.create 16 in
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let bind id = Hashtbl.replace bound (Ident.unique_name id) () in
  let expr iter (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        let key = Ident.unique_name id in
        if not (Hashtbl.mem used key) then
          Hashtbl.replace used key
            { var = Ident.name id; ty = type_head e.exp_type; cap_loc = e.exp_loc }
    | Texp_function { param; _ } -> bind param
    | Texp_for (id, _, _, _, _, _) -> bind id
    | Texp_letop { param; _ } -> bind param
    | _ -> ());
    Tast_iterator.default_iterator.expr iter e
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr;
      pat =
        (fun iter p ->
          List.iter bind (Typedtree.pat_bound_idents p);
          Tast_iterator.default_iterator.pat iter p);
    }
  in
  it.expr it fn;
  Hashtbl.fold (fun key cap acc -> if Hashtbl.mem bound key then acc else cap :: acc) used []
  |> List.sort (fun a b ->
         match String.compare a.var b.var with
         | 0 -> Int.compare a.cap_loc.loc_start.pos_cnum b.cap_loc.loc_start.pos_cnum
         | c -> c)

(* ------------------------------------------------------------------ *)
(* Per-def collection *)

let collect_into ~spawn_sites def expr0 =
  let expr iter (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) ->
        def.refs <- { path = Cmt_loader.normalize_path p; ref_loc = e.exp_loc } :: def.refs
    | Texp_apply (f, args) -> (
        (match raised_constructor f args with
        | Some c -> def.raises <- c :: def.raises
        | None -> ());
        match f.exp_desc with
        | Texp_ident (p, _, _) ->
            let callee = Cmt_loader.normalize_path p in
            if List.exists (fun s -> suffix_matches ~suffix:s callee) spawn_sites then begin
              let captures =
                List.concat_map
                  (fun (_, arg) ->
                    match arg with
                    | Some ({ Typedtree.exp_desc = Texp_function _; _ } as closure) ->
                        free_vars closure
                    | Some _ | None -> [])
                  args
              in
              def.spawns <- { callee; captures; spawn_loc = e.exp_loc } :: def.spawns
            end
        | _ -> ())
    | Texp_setfield (record, _, label, _) ->
        def.setfields <-
          { record_ty = type_head record.exp_type; field = label.Types.lbl_name; set_loc = e.exp_loc }
          :: def.setfields
    | Texp_try (body, cases) ->
        let catchers = List.filter (fun c -> catch_all_value c.Typedtree.c_lhs) cases in
        if catchers <> [] then begin
          let reraises = List.exists (fun c -> expr_reraises c.Typedtree.c_rhs) catchers in
          let body_refs, body_raises = shallow_refs body in
          let try_loc = (List.hd catchers).Typedtree.c_lhs.pat_loc in
          def.tries <- { reraises; body_refs; body_raises; try_loc } :: def.tries
        end
    | Texp_match (scrutinee, cases, _) ->
        let catchers = List.filter (fun c -> exn_catch_all c.Typedtree.c_lhs) cases in
        if catchers <> [] then begin
          let reraises = List.exists (fun c -> expr_reraises c.Typedtree.c_rhs) catchers in
          let body_refs, body_raises = shallow_refs scrutinee in
          let try_loc = (List.hd catchers).Typedtree.c_lhs.pat_loc in
          def.tries <- { reraises; body_refs; body_raises; try_loc } :: def.tries
        end
    | _ -> ());
    Tast_iterator.default_iterator.expr iter e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it expr0

(* ------------------------------------------------------------------ *)
(* Structure walk *)

type builder = {
  tbl : (string, def) Hashtbl.t;
  mutable rev_order : string list;
  mutable mut_records : SSet.t;
  mutable lock_records : SSet.t;
  spawn_sites : string list;
}

let new_def b ~ctx ~file ~name loc =
  let qualified = ctx ^ "." ^ name in
  match Hashtbl.find_opt b.tbl qualified with
  | Some d -> d
  | None ->
      let d =
        {
          name = qualified;
          ctx;
          file;
          def_loc = loc;
          refs = [];
          raises = [];
          spawns = [];
          setfields = [];
          tries = [];
        }
      in
      Hashtbl.add b.tbl qualified d;
      b.rev_order <- qualified :: b.rev_order;
      d

let note_type_decl b ~ctx (decl : Typedtree.type_declaration) =
  match decl.typ_kind with
  | Ttype_record labels ->
      let mutable_field =
        List.exists (fun (l : Typedtree.label_declaration) -> l.ld_mutable = Mutable) labels
      in
      if mutable_field then begin
        let tyname = ctx ^ "." ^ decl.typ_name.txt in
        b.mut_records <- SSet.add tyname b.mut_records;
        let has_lock =
          List.exists
            (fun (l : Typedtree.label_declaration) ->
              type_head l.ld_type.ctyp_type = "Mutex.t")
            labels
        in
        if has_lock then b.lock_records <- SSet.add tyname b.lock_records
      end
  | _ -> ()

let binding_name (vb : Typedtree.value_binding) =
  match Typedtree.pat_bound_idents vb.vb_pat with
  | [ id ] -> Some (Ident.name id)
  | _ -> None

let rec walk_structure b ~ctx ~file (str : Typedtree.structure) =
  List.iter (walk_item b ~ctx ~file) str.str_items

and walk_item b ~ctx ~file (item : Typedtree.structure_item) =
  match item.str_desc with
  | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          let def =
            match binding_name vb with
            | Some name -> new_def b ~ctx ~file ~name vb.vb_pat.pat_loc
            | None -> new_def b ~ctx ~file ~name:"(init)" item.str_loc
          in
          collect_into ~spawn_sites:b.spawn_sites def vb.vb_expr)
        vbs
  | Tstr_eval (e, _) ->
      collect_into ~spawn_sites:b.spawn_sites
        (new_def b ~ctx ~file ~name:"(init)" item.str_loc)
        e
  | Tstr_type (_, decls) -> List.iter (note_type_decl b ~ctx) decls
  | Tstr_module mb -> walk_module_binding b ~ctx ~file mb
  | Tstr_recmodule mbs -> List.iter (walk_module_binding b ~ctx ~file) mbs
  | Tstr_include incl -> walk_module_expr b ~ctx ~file incl.incl_mod
  | _ -> ()

and walk_module_binding b ~ctx ~file (mb : Typedtree.module_binding) =
  match mb.mb_name.txt with
  | Some name -> walk_module_expr b ~ctx:(ctx ^ "." ^ name) ~file mb.mb_expr
  | None -> ()

and walk_module_expr b ~ctx ~file (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> walk_structure b ~ctx ~file str
  | Tmod_constraint (me, _, _, _) -> walk_module_expr b ~ctx ~file me
  | Tmod_functor (_, me) -> walk_module_expr b ~ctx ~file me
  | _ -> ()

let build ~spawn_sites (units : Cmt_loader.unit_info list) =
  let b =
    {
      tbl = Hashtbl.create 256;
      rev_order = [];
      mut_records = SSet.empty;
      lock_records = SSet.empty;
      spawn_sites;
    }
  in
  let units =
    List.sort
      (fun (a : Cmt_loader.unit_info) (c : Cmt_loader.unit_info) ->
        match String.compare a.modname c.modname with
        | 0 -> String.compare a.source c.source
        | n -> n)
      units
  in
  List.iter
    (fun (u : Cmt_loader.unit_info) -> walk_structure b ~ctx:u.modname ~file:u.source u.structure)
    units;
  List.iter (fun name -> (Hashtbl.find b.tbl name).refs <- List.rev (Hashtbl.find b.tbl name).refs)
    b.rev_order;
  {
    defs = b.tbl;
    order = List.rev b.rev_order;
    mutable_records = b.mut_records;
    locked_records = b.lock_records;
  }

(* ------------------------------------------------------------------ *)
(* Edge resolution *)

(* Candidate contexts for an unqualified or partially qualified
   reference, innermost enclosing module first. *)
let context_chain ctx =
  let rec go acc c =
    let acc = c :: acc in
    match String.rindex_opt c '.' with
    | None -> acc
    | Some i -> go acc (String.sub c 0 i)
  in
  List.rev (go [] ctx)

let resolve t ~ctx path =
  let candidates = List.map (fun c -> c ^ "." ^ path) (context_chain ctx) @ [ path ] in
  List.find_map (fun name -> Hashtbl.find_opt t.defs name) candidates

(* Resolved callees of a def, in reference order, deduplicated. *)
let callees t (d : def) =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun s ->
      match resolve t ~ctx:d.ctx s.path with
      | Some callee when callee.name <> d.name && not (Hashtbl.mem seen callee.name) ->
          Hashtbl.replace seen callee.name ();
          Some callee
      | Some _ | None -> None)
    d.refs

let iter_defs t f = List.iter (fun name -> f (Hashtbl.find t.defs name)) t.order
