open Parsetree
module SSet = Set.Make (String)

(* R1: ambient time sources. The allowlist mechanism is the waiver
   file, not this list — every hit is reported. *)
let wall_clock_reads = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

(* R6: writers that bypass Bgl_obs sinks / caller-supplied
   formatters. Only checked under lib/ — CLIs and tests own their
   stdout. *)
let stray_writers =
  [
    "print_endline";
    "print_string";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "print_bytes";
    "prerr_endline";
    "prerr_string";
    "prerr_newline";
    "prerr_char";
    "prerr_bytes";
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
  ]

(* R3: constructors whose result is shared mutable state when bound at
   the top of a module... *)
let mutable_makers =
  [
    "ref";
    "Hashtbl.create";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Array.make";
    "Array.create_float";
    "Bytes.create";
    "Bytes.make";
  ]

(* ...unless the binding is one of the sanctioned wrappers. A
   [Mutex.create] binding is itself fine: it exists to guard its
   neighbours. *)
let safe_makers = [ "Atomic.make"; "Mutex.create"; "Domain.DLS.new_key" ]

let rec flatten_lid acc = function
  | Longident.Lident s -> Some (s :: acc)
  | Longident.Ldot (l, s) -> flatten_lid (s :: acc) l
  | Longident.Lapply _ -> None

let dotted lid = Option.map (String.concat ".") (flatten_lid [] lid)

let in_lib path =
  String.starts_with ~prefix:"lib/" path
  || String.starts_with ~prefix:"./lib/" path
  ||
  let needle = "/lib/" in
  let n = String.length needle and len = String.length path in
  let rec scan i = i + n <= len && (String.sub path i n = needle || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* Expression-level rules: R1, R2, R4, R5, R6. *)

let rec catch_all_pat p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catch_all_pat p
  | Ppat_or (a, b) -> catch_all_pat a || catch_all_pat b
  | _ -> false

let rec float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (e, _) -> float_literal e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident ("~-." | "~+."); _ }; _ }, [ (_, e) ]) ->
      float_literal e
  | _ -> false

let expr_rule ~lib add (iter : Ast_iterator.iterator) e =
  (match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten_lid [] txt with
      | None -> ()
      | Some parts ->
          let p = String.concat "." parts in
          if List.mem p wall_clock_reads then
            add Finding.R1 e.pexp_loc
              (Printf.sprintf
                 "ambient wall-clock read %s breaks replayability; take the time source as an \
                  argument (or waive the site)"
                 p);
          (match parts with
          | "Random" :: _ :: _ ->
              add Finding.R2 e.pexp_loc
                (Printf.sprintf "%s bypasses the seeded Bgl_stats.Rng; draw from an Rng.t split \
                                 from the scenario seed" p)
          | _ -> ());
          if lib && List.mem p stray_writers then
            add Finding.R6 e.pexp_loc
              (Printf.sprintf
                 "%s writes to a global channel from library code; route output through Bgl_obs \
                  sinks or a Format.formatter passed by the caller"
                 p))
  | Pexp_try (_, cases) ->
      List.iter
        (fun c ->
          if catch_all_pat c.pc_lhs then
            add Finding.R4 c.pc_lhs.ppat_loc
              "catch-all exception handler would swallow typed control exceptions \
               (Budget_exceeded, Divergence, Injected); match the exceptions you mean to handle")
        cases
  | Pexp_match (_, cases) ->
      List.iter
        (fun c ->
          match c.pc_lhs.ppat_desc with
          | Ppat_exception p when catch_all_pat p ->
              add Finding.R4 c.pc_lhs.ppat_loc
                "catch-all exception case would swallow typed control exceptions \
                 (Budget_exceeded, Divergence, Injected); match the exceptions you mean to handle"
          | _ -> ())
        cases
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); _ }; _ },
        [ (_, a); (_, b) ] )
    when float_literal a || float_literal b ->
      add Finding.R5 e.pexp_loc
        (Printf.sprintf
           "(%s) against a float literal is brittle under rounding; compare with an inequality \
            or an explicit tolerance"
           op)
  | _ -> ());
  Ast_iterator.default_iterator.expr iter e

(* ------------------------------------------------------------------ *)
(* R3: structure-level scan of top-level bindings. *)

let binding_name pat =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go pat

let rec rhs_head e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> rhs_head e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> dotted txt
  | _ -> None

(* Mutable field names declared by the [items] of one structure (plus
   anything inherited from enclosing structures): a top-level literal
   of such a record is shared mutable state just like a ref. *)
let mutable_fields items inherited =
  List.fold_left
    (fun set item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.fold_left
            (fun set d ->
              match d.ptype_kind with
              | Ptype_record labels ->
                  List.fold_left
                    (fun set l ->
                      if l.pld_mutable = Mutable then SSet.add l.pld_name.txt set else set)
                    set labels
              | _ -> set)
            set decls
      | _ -> set)
    inherited items

let record_mutable_field mf e =
  let rec go e =
    match e.pexp_desc with
    | Pexp_constraint (e, _) -> go e
    | Pexp_record (fields, _) ->
        List.find_map
          (fun (lid, _) ->
            match flatten_lid [] lid.Location.txt with
            | Some parts -> (
                match List.rev parts with
                | last :: _ when SSet.mem last mf -> Some last
                | _ -> None)
            | None -> None)
          fields
    | _ -> None
  in
  go e

let is_mutex_item item =
  match item.pstr_desc with
  | Pstr_value (_, vbs) -> List.exists (fun vb -> rhs_head vb.pvb_expr = Some "Mutex.create") vbs
  | _ -> false

let mutex_names_of_item item =
  match item.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.filter_map
        (fun vb ->
          if rhs_head vb.pvb_expr = Some "Mutex.create" then binding_name vb.pvb_pat else None)
        vbs
  | _ -> []

let classify_rhs mf e =
  match rhs_head e with
  | Some head when List.mem head safe_makers -> None
  | Some head when List.mem head mutable_makers -> Some head
  | _ -> (
      match record_mutable_field mf e with
      | Some field -> Some (Printf.sprintf "record literal with mutable field %s" field)
      | None -> None)

let rec structure_rule add ~inherited items =
  let mf = mutable_fields items inherited in
  let arr = Array.of_list items in
  let n = Array.length arr in
  let mutex_at i = i >= 0 && i < n && is_mutex_item arr.(i) in
  let all_mutex_names = Array.to_list arr |> List.concat_map mutex_names_of_item in
  Array.iteri
    (fun i item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match binding_name vb.pvb_pat with
              | None -> ()
              | Some bname -> (
                  let adjacent_mutex =
                    mutex_at (i - 1) || mutex_at (i - 2) || mutex_at (i + 1) || mutex_at (i + 2)
                  in
                  let named_mutex =
                    List.exists
                      (fun m -> m = bname ^ "_mutex" || m = bname ^ "_lock")
                      all_mutex_names
                  in
                  if not (adjacent_mutex || named_mutex) then
                    match classify_rhs mf vb.pvb_expr with
                    | Some what ->
                        add Finding.R3 vb.pvb_pat.ppat_loc
                          (Printf.sprintf
                             "top-level mutable state %s (%s) is shared across domains; wrap it \
                              in Atomic or Domain.DLS, or guard it with an adjacent Mutex"
                             bname what)
                    | None -> ()))
            vbs
      | Pstr_module { pmb_expr; _ } -> module_expr_rule add ~inherited:mf pmb_expr
      | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr_rule add ~inherited:mf mb.pmb_expr) mbs
      | _ -> ())
    arr

and module_expr_rule add ~inherited me =
  match me.pmod_desc with
  | Pmod_structure items -> structure_rule add ~inherited items
  | Pmod_constraint (me, _) | Pmod_functor (_, me) -> module_expr_rule add ~inherited me
  | _ -> ()

(* ------------------------------------------------------------------ *)

let check ~path structure =
  let acc = ref [] in
  let add rule loc message = acc := Finding.make rule ~file:path loc message :: !acc in
  let lib = in_lib path in
  let iter = { Ast_iterator.default_iterator with expr = expr_rule ~lib add } in
  iter.structure iter structure;
  structure_rule add ~inherited:SSet.empty structure;
  List.sort_uniq Finding.compare !acc
