(** Lint findings: rule ids, severities and source spans.

    The rule catalogue (see DESIGN §11 for the incident each rule
    guards against):

    - R1 [wall-clock] — ambient time reads ([Unix.gettimeofday],
      [Unix.time], [Sys.time]) make runs non-replayable.
    - R2 [stdlib-random] — any [Random.*]; simulation code must draw
      from [Bgl_stats.Rng] so seeds split deterministically.
    - R3 [unsynchronized-global] — top-level mutable state ([ref],
      [Hashtbl.create], [Buffer.create], mutable-record literals)
      neither wrapped in [Atomic] / [Domain.DLS] nor guarded by an
      adjacent [Mutex]: a data race once sweeps run on domains.
    - R4 [swallowed-exception] — catch-all [with _ ->] handlers (and
      [| exception _ ->] cases) that would eat typed control
      exceptions such as [Budget_exceeded] or [Divergence].
    - R5 [float-literal-equality] — [=] / [<>] against a float
      literal; bit-exactness claims make these silently brittle.
    - R6 [stray-stdout] — direct [print_*] / [prerr_*] /
      [Printf.printf] in [lib/]; output must go through [Bgl_obs]
      sinks or a [Format.formatter] passed in by the caller.

    The typed pass (DESIGN §16) adds four interprocedural families
    computed over [.cmt] units and the cross-module call graph:

    - R7 [determinism-taint] — a nondeterministic primitive (wall
      clock, [Random], environment) is reachable through calls from a
      deterministic root; reported at the root with the call path.
    - R8 [cross-domain-escape] — a closure passed to a spawn site
      captures mutable state with no Atomic/Mutex/DLS discipline,
      classified by type rather than by name.
    - R9 [exception-flow] — a catch-all handler guards an expression
      that can transitively raise a typed control exception
      ([Budget_exceeded], [Injected], [Divergence]).
    - R10 [lifecycle-protocol] — a protocol-controlled field
      ([Job.t]'s [state]) is written outside its blessed transition
      function. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10
type severity = Error | Warning

val id : rule -> string
(** ["R1"] .. ["R10"]. *)

val name : rule -> string
(** Short kebab-case rule name, e.g. ["wall-clock"]. *)

val severity : rule -> severity
val severity_label : severity -> string

val typed : rule -> bool
(** [true] for the interprocedural rules (R7-R10) computed from [.cmt]
    files; [false] for the syntactic per-file rules. *)

val all_rules : rule list

val rule_of_id : string -> rule option
(** Inverse of {!id}; [None] for unknown ids (waiver validation). *)

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  end_col : int;
  message : string;
  trail : string list;
      (** interprocedural evidence: the call path justifying the
          finding, outermost first; [[]] for single-site rules *)
}

val make : ?trail:string list -> rule -> file:string -> Location.t -> string -> t
(** Build a finding from a parsetree location; columns are 0-based. *)

val compare : t -> t -> int
(** Order by file, line, column, rule id, message — the stable report
    order. *)

val pp : Format.formatter -> t -> unit
(** ["file:line:col-col: [R3/error] unsynchronized-global: ..."]. *)

val to_json : t -> string
(** One compact JSONL object (kind ["finding"]). *)
