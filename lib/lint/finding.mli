(** Lint findings: rule ids, severities and source spans.

    The rule catalogue (see DESIGN §11 for the incident each rule
    guards against):

    - R1 [wall-clock] — ambient time reads ([Unix.gettimeofday],
      [Unix.time], [Sys.time]) make runs non-replayable.
    - R2 [stdlib-random] — any [Random.*]; simulation code must draw
      from [Bgl_stats.Rng] so seeds split deterministically.
    - R3 [unsynchronized-global] — top-level mutable state ([ref],
      [Hashtbl.create], [Buffer.create], mutable-record literals)
      neither wrapped in [Atomic] / [Domain.DLS] nor guarded by an
      adjacent [Mutex]: a data race once sweeps run on domains.
    - R4 [swallowed-exception] — catch-all [with _ ->] handlers (and
      [| exception _ ->] cases) that would eat typed control
      exceptions such as [Budget_exceeded] or [Divergence].
    - R5 [float-literal-equality] — [=] / [<>] against a float
      literal; bit-exactness claims make these silently brittle.
    - R6 [stray-stdout] — direct [print_*] / [prerr_*] /
      [Printf.printf] in [lib/]; output must go through [Bgl_obs]
      sinks or a [Format.formatter] passed in by the caller. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6
type severity = Error | Warning

val id : rule -> string
(** ["R1"] .. ["R6"]. *)

val name : rule -> string
(** Short kebab-case rule name, e.g. ["wall-clock"]. *)

val severity : rule -> severity
val severity_label : severity -> string

val all_rules : rule list

val rule_of_id : string -> rule option
(** Inverse of {!id}; [None] for unknown ids (waiver validation). *)

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  end_col : int;
  message : string;
}

val make : rule -> file:string -> Location.t -> string -> t
(** Build a finding from a parsetree location; columns are 0-based. *)

val compare : t -> t -> int
(** Order by file, line, column, rule id — the stable report order. *)

val pp : Format.formatter -> t -> unit
(** ["file:line:col-col: [R3/error] unsynchronized-global: ..."]. *)

val to_json : t -> string
(** One compact JSONL object (kind ["finding"]). *)
