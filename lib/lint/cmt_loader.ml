(* Loading and naming for the typed pass.

   The typed rules (R7-R10) work on the compiler's own `.cmt` output,
   so they see resolved paths and inferred types instead of surface
   syntax. This module hides the two impedance mismatches: dune's
   module-name mangling (`Bgl_sim__Engine`, `Bgl_sim__.Job.t`) and the
   fact that `.cmt` files live under `_build`, not next to their
   sources. *)

type unit_info = {
  modname : string;  (* normalized dotted module path, e.g. "Bgl_sim.Engine" *)
  source : string;  (* source path as recorded by the compiler *)
  structure : Typedtree.structure;
}

(* Dune mangles wrapped-library modules as `Lib__Module` and the
   library alias unit as `Lib__`; compiled paths may also thread
   through the alias (`Bgl_sim__.Job.t`). Splitting every
   module-looking component on `__` and dropping the empties folds all
   spellings onto one canonical `Lib.Module` form. Lowercase
   components (value names) pass through untouched so a value named
   `foo__bar` keeps its name. *)
let split_mangled comp =
  if comp = "" || not (comp.[0] >= 'A' && comp.[0] <= 'Z') then [ comp ]
  else begin
    let parts = ref [] in
    let buf = Buffer.create (String.length comp) in
    let n = String.length comp in
    let i = ref 0 in
    while !i < n do
      if !i + 1 < n && comp.[!i] = '_' && comp.[!i + 1] = '_' then begin
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf;
        i := !i + 2
      end
      else begin
        Buffer.add_char buf comp.[!i];
        incr i
      end
    done;
    parts := Buffer.contents buf :: !parts;
    List.filter (fun s -> s <> "") (List.rev !parts)
  end

let normalize_dotted s =
  let comps = List.concat_map split_mangled (String.split_on_char '.' s) in
  let comps = match comps with "Stdlib" :: (_ :: _ as rest) -> rest | comps -> comps in
  String.concat "." comps

let normalize_path p = normalize_dotted (Path.name p)

(* Corrupt or alien `.cmt` files are skipped, not fatal: the analyzer
   must stay total over whatever `_build` happens to contain. *)
let load path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Implementation structure; cmt_modname; cmt_sourcefile; _ } ->
      let source =
        match cmt_sourcefile with
        | Some s -> s
        | None -> String.uncapitalize_ascii cmt_modname ^ ".ml"
      in
      Some { modname = normalize_dotted cmt_modname; source; structure }
  | _ -> None
  | exception Cmt_format.Error _
  | exception Cmi_format.Error _
  | exception Sys_error _
  | exception End_of_file
  | exception Failure _ ->
      None

(* `.cmt` discovery. Unlike the syntactic scan this must descend into
   dune's dot-directories (`.bgl_sim.objs`), and when invoked from the
   source root (where no `.cmt` exists) it falls back to the mirror of
   each path under `_build/default`. Sorted at every level so unit
   order — and thus finding order — is machine-independent. *)
(* Dangling symlinks (and files racing with their deletion) make
   [Sys.is_directory] raise; a tree walk must shrug them off. *)
let is_dir path = match Sys.is_directory path with b -> b | exception Sys_error _ -> false

let rec collect_under acc path =
  Result.bind acc (fun acc ->
      match Sys.is_directory path with
      | true ->
          let entries = Sys.readdir path in
          Array.sort String.compare entries;
          Array.fold_left
            (fun acc entry ->
              let child = Filename.concat path entry in
              if is_dir child then
                if entry = ".git" || entry = "_opam" then acc else collect_under acc child
              else if Filename.check_suffix entry ".cmt" then Result.map (List.cons child) acc
              else acc)
            (Ok acc) entries
      | false ->
          if Filename.check_suffix path ".cmt" then Ok (path :: acc)
          else if Sys.file_exists path then Ok acc
          else Error (Bgl_resilience.Error.Io { path; detail = "no such file or directory" })
      | exception Sys_error detail -> Error (Bgl_resilience.Error.Io { path; detail }))

let collect_cmts paths =
  let one path =
    let direct = collect_under (Ok []) path in
    match direct with
    | Ok [] ->
        let mirrored = Filename.concat (Filename.concat "_build" "default") path in
        if Sys.file_exists mirrored then collect_under (Ok []) mirrored else direct
    | Ok _ | Error _ -> direct
  in
  List.fold_left
    (fun acc path -> Result.bind acc (fun acc -> Result.map (fun l -> acc @ List.rev l) (one path)))
    (Ok []) paths

(* ------------------------------------------------------------------ *)
(* In-process typechecking, for the rule fixtures in test/. Tests
   cannot ship `.cmt` files (they would bit-rot against the compiler
   version), so they feed source strings through the same front end
   the compiler uses and hand the resulting Typedtree to the
   analyzer. *)

let tc_initialized = Atomic.make false

let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let typecheck_source ?(modname = "Fixture") ~path src =
  if not (Atomic.exchange tc_initialized true) then Compmisc.init_path ();
  (* Fixtures deliberately contain rule violations; the warnings they
     also trip are noise. *)
  let saved = !Location.formatter_for_warnings in
  Location.formatter_for_warnings := null_formatter;
  let finish result =
    Location.formatter_for_warnings := saved;
    result
  in
  Env.set_unit_name modname;
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | exception exn ->
      finish
        (Error
           (Bgl_resilience.Error.Parse { name = path; detail = "parse: " ^ Printexc.to_string exn }))
  | parsetree -> (
      match Typemod.type_structure env parsetree with
      | structure, _, _, _, _ -> finish (Ok { modname; source = path; structure })
      | exception exn ->
          let detail =
            match Location.error_of_exn exn with
            | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
            | Some `Already_displayed | None -> Printexc.to_string exn
          in
          finish (Error (Bgl_resilience.Error.Parse { name = path; detail })))
