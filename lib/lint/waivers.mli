(** The [.lint-waivers] file: one waiver per line,

    {v <rule-id> <path> <reason...> v}

    ([#] comments and blank lines allowed). A waiver silences every
    finding of that rule in that file — and a waiver that silences
    nothing is itself an error ({!applied.stale}), so the file can
    only shrink as code gets fixed. Reasons are mandatory: a waiver
    states {e why} the finding is fine, not just that it is. *)

type entry = { rule : Finding.rule; path : string; reason : string; line : int }
type t = entry list

val matches : entry -> file:string -> bool
(** Path equality modulo [./] prefixes, or a trailing-suffix match on
    a ["/"] boundary (waivers are written repo-relative; scans may run
    over a copied tree). *)

val of_string : name:string -> string -> (t, string) result
(** Parse waiver syntax; all malformed lines are reported at once.
    [name] labels errors. *)

val load : string -> (t, Bgl_resilience.Error.t) result
(** {!of_string} on a file; missing/unreadable is [Io], malformed is
    [Parse]. *)

type applied = {
  kept : Finding.t list;  (** findings no waiver covers — these fail the build *)
  waived : int;  (** findings silenced by a waiver *)
  stale : entry list;
      (** waivers whose path was scanned but which silenced nothing — also fail the build *)
}

val apply :
  ?scope:(Finding.rule -> bool) ->
  ?preconsumed:(entry -> bool) ->
  t ->
  Finding.t list ->
  scanned:string list ->
  applied
(** Waivers whose path matches no scanned file are ignored (a partial
    run, e.g. [bgl-lint lib/obs], must not mark the rest of the file
    stale).

    [scope] (default: everything) limits which entries this pass
    considers at all — the syntactic pass passes R1-R6, the typed pass
    R7-R10, so neither consumes nor stales the other's entries.
    [preconsumed] marks entries the analysis already used internally
    (an R7 entry acting as a taint barrier matches no finding but is
    not stale). *)

val pp_stale : Format.formatter -> entry -> unit
val stale_to_json : entry -> string
