(** The simulator's future-event list: a binary min-heap ordered by
    [(time, insertion sequence)], so simultaneous events are processed
    in the order they were scheduled — which keeps runs deterministic
    and lets the engine batch same-timestamp failure bursts. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on NaN time. *)

val peek : 'a t -> (float * 'a) option
val pop : 'a t -> (float * 'a) option

val pop_if_at : 'a t -> time:float -> 'a option
(** Pop the head only if its time equals [time] exactly — used to
    drain a batch of simultaneous events. *)

val retains : 'a t -> 'a -> bool
(** Whether the backing array still holds a physically-equal reference
    to [x] anywhere — including vacated slots beyond {!size}. Exposed
    for the space-leak regression tests; only meaningful for boxed
    payloads. *)
