(** Simulation configuration.

    {!default} reproduces the paper's experimental setting (Section 6):
    the 4×4×8 BG/L supernode torus with wraparound, FCFS with
    backfilling, transient failures with zero repair time, and no
    checkpointing. *)

open Bgl_torus

type t = {
  dims : Dims.t;
  wrap : bool;
  backfill : bool;
  backfill_depth : int;  (** max queued jobs examined per backfill pass *)
  candidate_cap : int option;
      (** evaluate at most this many candidate partitions per placement
          (evenly subsampled, deterministic); [None] = all. Bounds the
          cost of the MFP heuristic on busy tori. *)
  migration : bool;
      (** when the queue head cannot be placed, try re-packing running
          jobs (largest first) to defragment the torus — Krevat's
          migration option. Checkpoint/restart cost of the moves is
          [migration_overhead] wall seconds added to each moved job. *)
  migration_overhead : float;
  repair_time : float;
      (** node downtime after a failure; 0 = the paper's instant
          recovery assumption *)
  checkpoint : Checkpoint.spec option;
  slowdown_tau : float;  (** Γ of the bounded-slowdown metric *)
  drop_oversize : bool;
      (** silently drop jobs larger than the torus (otherwise raise) *)
}

val default : t

val validate : t -> unit
(** @raise Invalid_argument on inconsistent settings. *)
