open Bgl_torus

(* Bump whenever the JSONL trace shape changes incompatibly; the
   auditor refuses schemas newer than it understands. Version 1 was
   the ad-hoc run_begin/run_end framing (PR 4); version 2 frames runs
   with run_meta/run_summary and records arrivals. *)
let schema_version = 2

type entry =
  | Run_meta of {
      time : float;
      log : string;
      failures : string;
      policy : string;
      dims : Dims.t;
      wrap : bool;
      jobs : int;
      seed : int option;
      parent : string option;
      repair_time : float;
      checkpointed : bool;
    }
  | Job_arrived of { job : int; time : float; size : int; run_time : float }
  | Job_started of { job : int; time : float; box : Box.t; restart : bool }
  | Job_killed of { job : int; time : float; node : int; lost_node_seconds : float }
  | Job_finished of { job : int; time : float }
  | Job_migrated of { job : int; time : float; from_box : Box.t; to_box : Box.t }
  | Node_failed of { time : float; node : int; victim : int option }
  | Node_repaired of { time : float; node : int }
  | Run_summary of { time : float; report : Metrics.report }

type t = { sink : entry Bgl_obs.Sink.t }

let create ?sink () =
  { sink = (match sink with Some s -> s | None -> Bgl_obs.Sink.buffer ()) }

let jsonl_of_box (b : Box.t) =
  Printf.sprintf "{\"x\":%d,\"y\":%d,\"z\":%d,\"sx\":%d,\"sy\":%d,\"sz\":%d}" b.base.x b.base.y
    b.base.z b.shape.sx b.shape.sy b.shape.sz

let entry_to_json ?run entry =
  let open Bgl_obs.Jsonl in
  let tagged fields =
    match run with None -> obj fields | Some id -> obj (("run", string id) :: fields)
  in
  match entry with
  | Run_meta m ->
      tagged
        [ ("ev", string "run_meta"); ("t", float m.time); ("schema", int schema_version);
          ("log", string m.log); ("failures", string m.failures); ("policy", string m.policy);
          ("dims", string (Dims.to_string m.dims)); ("wrap", bool m.wrap); ("jobs", int m.jobs);
          ("seed", match m.seed with Some s -> int s | None -> "null");
          ("parent", match m.parent with Some p -> string p | None -> "null");
          ("repair_time", float m.repair_time); ("checkpointed", bool m.checkpointed) ]
  | Job_arrived a ->
      tagged
        [ ("ev", string "job_arrive"); ("t", float a.time); ("job", int a.job);
          ("size", int a.size); ("work", float a.run_time) ]
  | Job_started s ->
      tagged
        [ ("ev", string "job_start"); ("t", float s.time); ("job", int s.job);
          ("box", jsonl_of_box s.box); ("restart", bool s.restart) ]
  | Job_killed k ->
      tagged
        [ ("ev", string "job_kill"); ("t", float k.time); ("job", int k.job);
          ("node", int k.node); ("lost_node_s", float k.lost_node_seconds) ]
  | Job_finished f -> tagged [ ("ev", string "job_finish"); ("t", float f.time); ("job", int f.job) ]
  | Job_migrated m ->
      tagged
        [ ("ev", string "job_migrate"); ("t", float m.time); ("job", int m.job);
          ("from", jsonl_of_box m.from_box); ("to", jsonl_of_box m.to_box) ]
  | Node_failed n ->
      tagged
        [ ("ev", string "node_fail"); ("t", float n.time); ("node", int n.node);
          ("victim", match n.victim with Some j -> int j | None -> "null") ]
  | Node_repaired n -> tagged [ ("ev", string "node_repair"); ("t", float n.time); ("node", int n.node) ]
  | Run_summary s ->
      tagged
        [ ("ev", string "run_summary"); ("t", float s.time);
          ("report", Metrics.report_to_json s.report) ]

let jsonl channel = create ~sink:(Bgl_obs.Sink.jsonl_channel ~to_json:entry_to_json channel) ()

let record t entry = Bgl_obs.Sink.emit t.sink entry
let entries t = Bgl_obs.Sink.contents t.sink
let length t = Bgl_obs.Sink.count t.sink
let is_buffered t = Bgl_obs.Sink.is_buffered t.sink
let flush t = Bgl_obs.Sink.flush t.sink

(* The replay accessors only see the full run on a buffered sink;
   answering [] for a streaming recorder would silently report "no
   kills" for a run full of them. *)
let require_buffered t ~fn =
  if not (is_buffered t) then
    invalid_arg (Printf.sprintf "Recorder.%s: streaming recorder retains no entries" fn)

let starts_of t ~job =
  require_buffered t ~fn:"starts_of";
  List.filter_map
    (function Job_started s when s.job = job -> Some (s.time, s.box) | _ -> None)
    (entries t)

let kills_of t ~job =
  require_buffered t ~fn:"kills_of";
  List.filter_map
    (function Job_killed k when k.job = job -> Some (k.time, k.node) | _ -> None)
    (entries t)

let busiest_victim t =
  require_buffered t ~fn:"busiest_victim";
  let counts = Hashtbl.create 16 in
  List.iter
    (function
      | Job_killed k ->
          Hashtbl.replace counts k.job (1 + Option.value ~default:0 (Hashtbl.find_opt counts k.job))
      | _ -> ())
    (entries t);
  Hashtbl.fold
    (fun job kills best ->
      match best with
      | Some (_, best_kills) when best_kills >= kills -> best
      | Some _ | None -> Some (job, kills))
    counts None

let pp_entry ppf = function
  | Run_meta m ->
      Format.fprintf ppf "%10.1f  meta    %s vs %s under %s on %s (%d jobs)" m.time m.log
        m.failures m.policy (Dims.to_string m.dims) m.jobs
  | Job_arrived a ->
      Format.fprintf ppf "%10.1f  arrive  job %d (%d nodes, %.3g s)" a.time a.job a.size a.run_time
  | Job_started s ->
      Format.fprintf ppf "%10.1f  start   job %d on %a%s" s.time s.job Box.pp s.box
        (if s.restart then " (restart)" else "")
  | Job_killed k ->
      Format.fprintf ppf "%10.1f  kill    job %d by node %d (lost %.3g node-s)" k.time k.job k.node
        k.lost_node_seconds
  | Job_finished f -> Format.fprintf ppf "%10.1f  finish  job %d" f.time f.job
  | Job_migrated m ->
      Format.fprintf ppf "%10.1f  migrate job %d %a -> %a" m.time m.job Box.pp m.from_box Box.pp
        m.to_box
  | Node_failed n ->
      Format.fprintf ppf "%10.1f  failure node %d%s" n.time n.node
        (match n.victim with Some j -> Format.asprintf " kills job %d" j | None -> " (idle)")
  | Node_repaired n -> Format.fprintf ppf "%10.1f  repair  node %d" n.time n.node
  | Run_summary s ->
      Format.fprintf ppf "%10.1f  summary %d/%d jobs completed" s.time s.report.completed_jobs
        s.report.total_jobs
