open Bgl_torus

type entry =
  | Job_started of { job : int; time : float; box : Box.t; restart : bool }
  | Job_killed of { job : int; time : float; node : int; lost_node_seconds : float }
  | Job_finished of { job : int; time : float }
  | Job_migrated of { job : int; time : float; from_box : Box.t; to_box : Box.t }
  | Node_failed of { time : float; node : int; victim : int option }
  | Node_repaired of { time : float; node : int }

type t = { sink : entry Bgl_obs.Sink.t }

let create ?sink () =
  { sink = (match sink with Some s -> s | None -> Bgl_obs.Sink.buffer ()) }

let jsonl_of_box (b : Box.t) =
  Printf.sprintf "{\"x\":%d,\"y\":%d,\"z\":%d,\"sx\":%d,\"sy\":%d,\"sz\":%d}" b.base.x b.base.y
    b.base.z b.shape.sx b.shape.sy b.shape.sz

let entry_to_json entry =
  let open Bgl_obs.Jsonl in
  match entry with
  | Job_started s ->
      obj
        [ ("ev", string "job_start"); ("t", float s.time); ("job", int s.job);
          ("box", jsonl_of_box s.box); ("restart", bool s.restart) ]
  | Job_killed k ->
      obj
        [ ("ev", string "job_kill"); ("t", float k.time); ("job", int k.job);
          ("node", int k.node); ("lost_node_s", float k.lost_node_seconds) ]
  | Job_finished f -> obj [ ("ev", string "job_finish"); ("t", float f.time); ("job", int f.job) ]
  | Job_migrated m ->
      obj
        [ ("ev", string "job_migrate"); ("t", float m.time); ("job", int m.job);
          ("from", jsonl_of_box m.from_box); ("to", jsonl_of_box m.to_box) ]
  | Node_failed n ->
      obj
        [ ("ev", string "node_fail"); ("t", float n.time); ("node", int n.node);
          ("victim", match n.victim with Some j -> int j | None -> "null") ]
  | Node_repaired n -> obj [ ("ev", string "node_repair"); ("t", float n.time); ("node", int n.node) ]

let jsonl channel = create ~sink:(Bgl_obs.Sink.jsonl_channel ~to_json:entry_to_json channel) ()

let record t entry = Bgl_obs.Sink.emit t.sink entry
let entries t = Bgl_obs.Sink.contents t.sink
let length t = Bgl_obs.Sink.count t.sink
let is_buffered t = Bgl_obs.Sink.is_buffered t.sink
let flush t = Bgl_obs.Sink.flush t.sink

let starts_of t ~job =
  List.filter_map
    (function
      | Job_started s when s.job = job -> Some (s.time, s.box)
      | Job_started _ | Job_killed _ | Job_finished _ | Job_migrated _ | Node_failed _
      | Node_repaired _ ->
          None)
    (entries t)

let kills_of t ~job =
  List.filter_map
    (function
      | Job_killed k when k.job = job -> Some (k.time, k.node)
      | Job_started _ | Job_killed _ | Job_finished _ | Job_migrated _ | Node_failed _
      | Node_repaired _ ->
          None)
    (entries t)

let busiest_victim t =
  let counts = Hashtbl.create 16 in
  List.iter
    (function
      | Job_killed k ->
          Hashtbl.replace counts k.job (1 + Option.value ~default:0 (Hashtbl.find_opt counts k.job))
      | Job_started _ | Job_finished _ | Job_migrated _ | Node_failed _ | Node_repaired _ -> ())
    (entries t);
  Hashtbl.fold
    (fun job kills best ->
      match best with
      | Some (_, best_kills) when best_kills >= kills -> best
      | Some _ | None -> Some (job, kills))
    counts None

let pp_entry ppf = function
  | Job_started s ->
      Format.fprintf ppf "%10.1f  start   job %d on %a%s" s.time s.job Box.pp s.box
        (if s.restart then " (restart)" else "")
  | Job_killed k ->
      Format.fprintf ppf "%10.1f  kill    job %d by node %d (lost %.3g node-s)" k.time k.job k.node
        k.lost_node_seconds
  | Job_finished f -> Format.fprintf ppf "%10.1f  finish  job %d" f.time f.job
  | Job_migrated m ->
      Format.fprintf ppf "%10.1f  migrate job %d %a -> %a" m.time m.job Box.pp m.from_box Box.pp
        m.to_box
  | Node_failed n ->
      Format.fprintf ppf "%10.1f  failure node %d%s" n.time n.node
        (match n.victim with Some j -> Format.asprintf " kills job %d" j | None -> " (idle)")
  | Node_repaired n -> Format.fprintf ppf "%10.1f  repair  node %d" n.time n.node
