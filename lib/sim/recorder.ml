open Bgl_torus

type entry =
  | Job_started of { job : int; time : float; box : Box.t; restart : bool }
  | Job_killed of { job : int; time : float; node : int; lost_node_seconds : float }
  | Job_finished of { job : int; time : float }
  | Job_migrated of { job : int; time : float; from_box : Box.t; to_box : Box.t }
  | Node_failed of { time : float; node : int; victim : int option }
  | Node_repaired of { time : float; node : int }

type t = { mutable entries : entry list; mutable length : int }

let create () = { entries = []; length = 0 }

let record t entry =
  t.entries <- entry :: t.entries;
  t.length <- t.length + 1

let entries t = List.rev t.entries
let length t = t.length

let starts_of t ~job =
  List.filter_map
    (function
      | Job_started s when s.job = job -> Some (s.time, s.box)
      | Job_started _ | Job_killed _ | Job_finished _ | Job_migrated _ | Node_failed _
      | Node_repaired _ ->
          None)
    (entries t)

let kills_of t ~job =
  List.filter_map
    (function
      | Job_killed k when k.job = job -> Some (k.time, k.node)
      | Job_started _ | Job_killed _ | Job_finished _ | Job_migrated _ | Node_failed _
      | Node_repaired _ ->
          None)
    (entries t)

let busiest_victim t =
  let counts = Hashtbl.create 16 in
  List.iter
    (function
      | Job_killed k ->
          Hashtbl.replace counts k.job (1 + Option.value ~default:0 (Hashtbl.find_opt counts k.job))
      | Job_started _ | Job_finished _ | Job_migrated _ | Node_failed _ | Node_repaired _ -> ())
    (entries t);
  Hashtbl.fold
    (fun job kills best ->
      match best with
      | Some (_, best_kills) when best_kills >= kills -> best
      | Some _ | None -> Some (job, kills))
    counts None

let pp_entry ppf = function
  | Job_started s ->
      Format.fprintf ppf "%10.1f  start   job %d on %a%s" s.time s.job Box.pp s.box
        (if s.restart then " (restart)" else "")
  | Job_killed k ->
      Format.fprintf ppf "%10.1f  kill    job %d by node %d (lost %.3g node-s)" k.time k.job k.node
        k.lost_node_seconds
  | Job_finished f -> Format.fprintf ppf "%10.1f  finish  job %d" f.time f.job
  | Job_migrated m ->
      Format.fprintf ppf "%10.1f  migrate job %d %a -> %a" m.time m.job Box.pp m.from_box Box.pp
        m.to_box
  | Node_failed n ->
      Format.fprintf ppf "%10.1f  failure node %d%s" n.time n.node
        (match n.victim with Some j -> Format.asprintf " kills job %d" j | None -> " (idle)")
  | Node_repaired n -> Format.fprintf ppf "%10.1f  repair  node %d" n.time n.node
