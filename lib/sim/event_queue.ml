type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* slots >= len are dead and hold [dummy] *)
  mutable len : int;
  mutable next_seq : int;
  dummy : 'a entry;
      (* Sentinel written into vacated slots so the heap array never
         retains a popped payload (space leak: the queue lives for the
         whole simulation, the payloads it has popped should not). Its
         payload is an immediate and is never read — slots >= len are
         untouched by the sift loops. *)
}

let create () = { heap = [||]; len = 0; next_seq = 0; dummy = { time = 0.; seq = -1; payload = Obj.magic 0 } }
let is_empty t = t.len = 0
let size t = t.len

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nheap = Array.make ncap t.dummy in
    Array.blit t.heap 0 nheap 0 t.len;
    t.heap <- nheap
  end

let push_raw t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let push t ~time payload =
  if Bgl_obs.Span.enabled () then
    Bgl_obs.Span.time ~name:"event_queue.push" (fun () -> push_raw t ~time payload)
  else push_raw t ~time payload

let peek t = if t.len = 0 then None else Some (t.heap.(0).time, t.heap.(0).payload)

let pop_raw t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- t.dummy;
    if t.len > 0 then begin
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.payload)
  end

let pop t =
  if Bgl_obs.Span.enabled () then Bgl_obs.Span.time ~name:"event_queue.pop" (fun () -> pop_raw t)
  else pop_raw t

let retains t x = Array.exists (fun (e : _ entry) -> e.payload == x) t.heap

let pop_if_at t ~time =
  match peek t with
  | Some (head_time, _) when head_time = time -> Option.map snd (pop t)
  | Some _ | None -> None
