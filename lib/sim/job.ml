open Bgl_torus

type run = {
  box : Box.t;
  started : float;
  finish_time : float;
  generation : int;
  work_at_start : float;
  interval : float option;
}

type state = Queued | Running of run | Completed

type t = {
  spec : Bgl_trace.Job_log.job;
  volume : int;
  mutable state : state;
  mutable generation : int;
  mutable remaining : float;
  mutable restarts : int;
  mutable first_start : float option;
  mutable completion : float option;
  mutable lost_node_seconds : float;
  mutable checkpoints_taken : int;
}

let create (spec : Bgl_trace.Job_log.job) ~volume =
  if volume < spec.size then invalid_arg "Job.create: volume smaller than requested size";
  {
    spec;
    volume;
    state = Queued;
    generation = 0;
    remaining = spec.run_time;
    restarts = 0;
    first_start = None;
    completion = None;
    lost_node_seconds = 0.;
    checkpoints_taken = 0;
  }

(* ------------------------------------------------------------------ *)
(* Lifecycle protocol. [transition] is the one blessed mutation point
   for [state] — the typed lint rule R10 fails the build on any other
   write — so the legality table below is the whole reachable state
   machine: queued jobs start; running jobs migrate, complete, or are
   killed back to queued. Completed is terminal. *)

type edge = Start of run | Migrate of run | Complete | Kill

exception Illegal_transition of { job : int; edge : string; state : string }

let state_label = function Queued -> "queued" | Running _ -> "running" | Completed -> "completed"

let edge_label = function
  | Start _ -> "start"
  | Migrate _ -> "migrate"
  | Complete -> "complete"
  | Kill -> "kill"

let legal state edge =
  match (state, edge) with
  | Queued, Start _ -> true
  | Running _, (Migrate _ | Complete | Kill) -> true
  | Queued, (Migrate _ | Complete | Kill) | Running _, Start _ | Completed, _ -> false

(* Every accepted transition is counted per edge; with the default
   noop registry this is one branch. *)
let emit_transition edge =
  let reg = Bgl_obs.Runtime.registry () in
  if not (Bgl_obs.Registry.is_noop reg) then
    Bgl_obs.Registry.inc
      (Bgl_obs.Registry.counter reg ~help:"accepted job lifecycle transitions, by edge"
         (Printf.sprintf "bgl_job_transitions_total{edge=%S}" (edge_label edge)))

let transition t edge =
  if not (legal t.state edge) then
    raise
      (Illegal_transition { job = t.spec.id; edge = edge_label edge; state = state_label t.state });
  (match edge with
  | Start r | Migrate r -> t.state <- Running r
  | Complete -> t.state <- Completed
  | Kill -> t.state <- Queued);
  emit_transition edge

let is_queued t = t.state = Queued
let is_running t = match t.state with Running _ -> true | Queued | Completed -> false
let is_completed t = t.state = Completed
let current_run t = match t.state with Running r -> Some r | Queued | Completed -> None

let wait_time t =
  match t.first_start with
  | Some s -> s -. t.spec.arrival
  | None -> invalid_arg "Job.wait_time: job never started"

let response_time t =
  match t.completion with
  | Some f -> f -. t.spec.arrival
  | None -> invalid_arg "Job.response_time: job not completed"

let bounded_slowdown ?(tau = 10.) t =
  Float.max (response_time t) tau /. Float.max t.spec.run_time tau
