open Bgl_torus

type run = {
  box : Box.t;
  started : float;
  finish_time : float;
  generation : int;
  work_at_start : float;
  interval : float option;
}

type state = Queued | Running of run | Completed

type t = {
  spec : Bgl_trace.Job_log.job;
  volume : int;
  mutable state : state;
  mutable generation : int;
  mutable remaining : float;
  mutable restarts : int;
  mutable first_start : float option;
  mutable completion : float option;
  mutable lost_node_seconds : float;
  mutable checkpoints_taken : int;
}

let create (spec : Bgl_trace.Job_log.job) ~volume =
  if volume < spec.size then invalid_arg "Job.create: volume smaller than requested size";
  {
    spec;
    volume;
    state = Queued;
    generation = 0;
    remaining = spec.run_time;
    restarts = 0;
    first_start = None;
    completion = None;
    lost_node_seconds = 0.;
    checkpoints_taken = 0;
  }

let is_queued t = t.state = Queued
let is_running t = match t.state with Running _ -> true | Queued | Completed -> false
let is_completed t = t.state = Completed
let current_run t = match t.state with Running r -> Some r | Queued | Completed -> None

let wait_time t =
  match t.first_start with
  | Some s -> s -. t.spec.arrival
  | None -> invalid_arg "Job.wait_time: job never started"

let response_time t =
  match t.completion with
  | Some f -> f -. t.spec.arrival
  | None -> invalid_arg "Job.response_time: job not completed"

let bounded_slowdown ?(tau = 10.) t =
  Float.max (response_time t) tau /. Float.max t.spec.run_time tau
