type spec =
  | Periodic of { interval : float; overhead : float }
  | Adaptive of { risky_interval : float; safe_interval : float; overhead : float }

let validate = function
  | Periodic { interval; overhead } ->
      if interval <= 0. then invalid_arg "Checkpoint: interval must be positive";
      if overhead < 0. then invalid_arg "Checkpoint: overhead must be non-negative"
  | Adaptive { risky_interval; safe_interval; overhead } ->
      if risky_interval <= 0. || safe_interval <= 0. then
        invalid_arg "Checkpoint: intervals must be positive";
      if overhead < 0. then invalid_arg "Checkpoint: overhead must be non-negative"

let interval_for spec ~risky =
  match spec with
  | Periodic { interval; _ } -> interval
  | Adaptive { risky_interval; safe_interval; _ } -> if risky then risky_interval else safe_interval

let overhead = function
  | Periodic { overhead; _ } -> overhead
  | Adaptive { overhead; _ } -> overhead

let checkpoints_for_work ~interval ~work =
  if work <= 0. then 0
  else
    (* A checkpoint after every full interval of work, but none
       coinciding with job completion. *)
    let n = int_of_float (ceil (work /. interval)) - 1 in
    max 0 n

let wall_time ~interval ~overhead ~work =
  work +. (float_of_int (checkpoints_for_work ~interval ~work) *. overhead)

let checkpoints_completed ~interval ~overhead ~work ~elapsed =
  if elapsed <= 0. then 0
  else
    (* Completing checkpoint k costs k * interval of work plus k
       overheads, so k = floor (elapsed / (interval + overhead)). *)
    let k = int_of_float (elapsed /. (interval +. overhead)) in
    min k (checkpoints_for_work ~interval ~work)

let persisted_at ~interval ~overhead ~work ~elapsed =
  float_of_int (checkpoints_completed ~interval ~overhead ~work ~elapsed) *. interval

let young_interval ~mtbf ~overhead =
  if mtbf <= 0. || overhead <= 0. then
    invalid_arg "Checkpoint.young_interval: mtbf and overhead must be positive";
  sqrt (2. *. overhead *. mtbf)

let mtbf_of_failures ~events ~span ~nodes_per_job ~volume =
  if events <= 0 || span <= 0. || nodes_per_job <= 0. || volume <= 0 then
    invalid_arg "Checkpoint.mtbf_of_failures: arguments must be positive";
  span *. float_of_int volume /. (float_of_int events *. nodes_per_job)
