(** Per-job simulation state.

    A job moves [Queued -> Running -> Completed]; a node failure while
    running sends it back to [Queued] with its restart count bumped and
    (absent checkpointing) its full work remaining. The [generation]
    counter invalidates finish/checkpoint events scheduled for runs
    that were killed. *)

open Bgl_torus

type run = {
  box : Box.t;
  started : float;
  finish_time : float;  (** scheduled completion (wall clock) *)
  generation : int;
  work_at_start : float;  (** remaining useful work when the run began *)
  interval : float option;  (** checkpoint interval in force, if any *)
}

type state = Queued | Running of run | Completed

type t = {
  spec : Bgl_trace.Job_log.job;
  volume : int;  (** partition volume after size rounding *)
  mutable state : state;
  mutable generation : int;
  mutable remaining : float;  (** useful work still to execute *)
  mutable restarts : int;
  mutable first_start : float option;
  mutable completion : float option;
  mutable lost_node_seconds : float;  (** busy time destroyed by failures *)
  mutable checkpoints_taken : int;
}

val create : Bgl_trace.Job_log.job -> volume:int -> t

type edge = Start of run | Migrate of run | Complete | Kill
(** A lifecycle edge. [Start] and [Migrate] carry the new run;
    [Complete] and [Kill] close the current one. *)

exception Illegal_transition of { job : int; edge : string; state : string }

val legal : state -> edge -> bool
(** The legality table: [Queued --Start--> Running],
    [Running --Migrate--> Running], [Running --Complete--> Completed],
    [Running --Kill--> Queued]. Everything else is illegal. *)

val transition : t -> edge -> unit
(** The {e only} sanctioned write to {!field-state} — the typed lint
    rule R10 fails the build on any other [state <-] site. Applies the
    edge if {!legal}, emits a [bgl_job_transitions_total{edge=...}]
    obs counter increment, and raises {!Illegal_transition} otherwise,
    leaving the job untouched. *)

val is_queued : t -> bool
val is_running : t -> bool
val is_completed : t -> bool

val current_run : t -> run option

val wait_time : t -> float
(** First start minus arrival. Only valid once started. *)

val response_time : t -> float
(** Completion minus arrival. Only valid once completed. *)

val bounded_slowdown : ?tau:float -> t -> float
(** Bounded slowdown with threshold [tau] (default 10 s, the paper's
    Γ): [max(response, tau) / max(run_time, tau)]. The paper prints
    [min] in the denominator, which would make the metric diverge even
    for zero-wait jobs; we follow the standard Feitelson definition the
    rest of the paper's numbers are consistent with. *)
