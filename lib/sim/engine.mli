(** The event-driven simulator (Section 6.1 of the paper).

    The engine replays a job log against a failure log on a torus
    occupancy grid. Events are arrivals, run completions, node
    failures, node repairs (downtime extension) — checkpoints are
    folded into run wall times. The queue discipline is FCFS; when the
    queue head cannot be placed the engine optionally backfills later
    jobs under an EASY-style spatial reservation (never delaying the
    head's earliest estimated start), and optionally migrates running
    jobs to defragment the torus. Placement decisions among candidate
    partitions are delegated to a {!Policy.t}.

    Failure semantics follow the paper: failures are transient; a
    failure on a node occupied by a job kills the whole job, whose
    unsaved work is lost and which is requeued with its original
    arrival priority; the node is immediately reusable (unless a
    non-zero repair time is configured). *)

type outcome = {
  name : string;
  report : Metrics.report;
  jobs : Job.t array;  (** final state of every admitted job *)
  dropped_jobs : int;  (** jobs larger than the torus, dropped at ingest *)
  complete : bool;  (** every admitted job completed *)
}

val run :
  ?config:Config.t ->
  ?predictor:Bgl_predict.Predictor.t ->
  ?recorder:Recorder.t ->
  ?budget:Bgl_resilience.Budget.t ->
  ?run_id:string ->
  ?seed:int ->
  policy:Policy.t ->
  log:Bgl_trace.Job_log.t ->
  failures:Bgl_trace.Failure_log.t ->
  unit ->
  outcome
(** Run the simulation to completion. [predictor] (default
    {!Bgl_predict.Predictor.null}) is only consulted by the engine for
    adaptive checkpointing risk decisions; placement policies carry
    their own predictor. A [recorder] receives every lifecycle
    transition for post-hoc analysis.

    [run_id] tags every streamed trace line with a ["run"] member so
    concurrent runs sharing one trace writer (a parallel sweep) can be
    demultiplexed; it defaults to a digest of the run's inputs. [seed]
    is provenance only, copied verbatim into the trace's [run_meta]
    header (sweep scenarios pass their generator seed).

    [budget] installs a cooperative fuel/deadline budget for the run
    (see {!Bgl_resilience.Budget}): the event loop burns one fuel unit
    per event and the partition finders one per enumeration, so a
    pathological run raises [Budget_exceeded] at the next boundary
    instead of hanging. Without [budget], any budget already installed
    by the caller (e.g. a supervised sweep cell) still applies.

    @raise Bgl_resilience.Budget.Budget_exceeded when the installed
    budget is spent.
    @raise Invalid_argument on an invalid config, a failure log that
    references nodes outside the torus, or (with
    [config.drop_oversize = false]) a job larger than the torus. *)
