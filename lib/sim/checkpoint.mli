(** Checkpointing models (the paper's first future-work item).

    With no checkpointing — the paper's experimental setting — a job
    killed by a failure restarts from the beginning. A checkpoint
    policy persists completed work at intervals, at a wall-clock
    [overhead] per checkpoint during which the partition is held but no
    useful work is done.

    [Adaptive] is the prediction-coupled variant the paper proposes:
    runs placed on partitions the predictor flags as doomed checkpoint
    at [risky_interval], all others at [safe_interval]. *)

type spec =
  | Periodic of { interval : float; overhead : float }
  | Adaptive of { risky_interval : float; safe_interval : float; overhead : float }

val validate : spec -> unit
(** @raise Invalid_argument on non-positive intervals or negative
    overhead. *)

val interval_for : spec -> risky:bool -> float
(** The checkpoint interval a run uses. *)

val overhead : spec -> float

val checkpoints_for_work : interval:float -> work:float -> int
(** Number of checkpoints taken while executing [work] seconds of
    useful computation: one after every full [interval], except that no
    checkpoint is taken at the very end of the job. *)

val wall_time : interval:float -> overhead:float -> work:float -> float
(** Wall-clock duration of a failure-free run doing [work] seconds of
    computation: [work + checkpoints * overhead]. *)

val checkpoints_completed : interval:float -> overhead:float -> work:float -> elapsed:float -> int
(** Checkpoints that fully completed within the first [elapsed]
    wall-clock seconds of a run doing [work] seconds of computation —
    the single credit calculation behind both {!persisted_at} and the
    engine's per-kill checkpoint accounting. *)

val persisted_at : interval:float -> overhead:float -> work:float -> elapsed:float -> float
(** Useful work safely persisted when a failure interrupts the run
    [elapsed] wall-clock seconds after it started:
    [checkpoints_completed * interval]. *)

val young_interval : mtbf:float -> overhead:float -> float
(** Young's first-order optimal checkpoint interval,
    [sqrt (2 * overhead * mtbf)] — the classical rule of thumb the
    checkpoint ablation compares against. Both arguments must be
    positive. *)

val mtbf_of_failures : events:int -> span:float -> nodes_per_job:float -> volume:int -> float
(** Mean time between failures {e as seen by one job}: a trace with
    [events] failures over [span] seconds on a [volume]-node machine
    hits a partition of [nodes_per_job] nodes every
    [span * volume / (events * nodes_per_job)] seconds on average. *)
