(** Simulation metrics (Sections 3.4 and 6.1 of the paper).

    Timing metrics are per-job: wait time t_w, response time t_r, and
    bounded slowdown t_b with threshold Γ. Capacity metrics are
    machine-wide over the simulation span T = max finish − min arrival:

    - ω_util = Σ s_j·t_e / (T·N) — useful work accomplished;
    - ω_unused = ∫ max(0, f(t) − q(t)) / (T·N) dt — free capacity not
      demanded by any waiting job;
    - ω_lost = 1 − ω_util − ω_unused — capacity destroyed by failures,
      fragmentation, and scheduling delay.

    The accumulator integrates f(t) − q(t) piecewise between events;
    the engine reports occupancy/demand changes through {!advance}. *)

type t
(** Mutable accumulator owned by the engine. *)

val create : nodes:int -> slowdown_tau:float -> t

val advance : t -> now:float -> free:int -> queued_demand:int -> unit
(** Integrate the interval since the previous call with the {e
    previous} occupancy, then record the new state. The first call
    anchors the integration start (min arrival). Calls with [now]
    before the anchor are ignored. *)

val record_completion : t -> Job.t -> unit
val record_failure_event : t -> unit
val record_job_kill : t -> lost_node_seconds:float -> unit
val record_migration : t -> unit
val record_checkpoint : t -> unit

type report = {
  total_jobs : int;
  completed_jobs : int;
  avg_wait : float;
  avg_response : float;
  avg_bounded_slowdown : float;
  median_bounded_slowdown : float;
  p90_bounded_slowdown : float;
  util : float;
  unused : float;
  lost : float;
  busy_fraction : float;  (** measured node-busy integral / (T·N) *)
  makespan : float;  (** T *)
  failures_injected : int;
  job_kills : int;
  restarts : int;
  lost_work : float;  (** node-seconds destroyed by kills *)
  migrations : int;
  checkpoints : int;
}

val report : t -> jobs:Job.t list -> total_jobs:int -> report
(** Finalise. [jobs] are the completed jobs; integration is cut at the
    last completion (capacity integrals are only defined on the span,
    and trailing failure events must not dilute them). *)

val pp_report : Format.formatter -> report -> unit

val report_to_registry : Bgl_obs.Registry.t -> report -> unit
(** Publish every report field as a [bgl_report_*] gauge, so one
    [--metrics-out] snapshot carries the paper's capacity and timing
    metrics next to the live engine counters. *)

val report_to_csv_header : string
val report_to_csv_row : report -> string

val report_to_json : report -> string
(** One-line JSON object, one member per field. Floats are emitted
    with 17 significant digits so {!report_of_json} round-trips them
    bit-exactly — the property the sweep journal's byte-identical
    resume rests on. Non-finite values encode as [null]. *)

val report_of_json : Bgl_obs.Jsonl.value -> (report, string) result
(** Inverse of {!report_to_json}; [Error] names the missing or
    ill-typed member. Never raises. *)
