type t = {
  nodes : int;
  slowdown_tau : float;
  mutable anchored : bool;
  mutable start_time : float;
  mutable last_time : float;
  mutable cur_free : int;
  mutable cur_demand : int;
  mutable busy_integral : float;  (* node-seconds occupied *)
  mutable unused_integral : float;  (* node-seconds free beyond demand *)
  mutable waits : float list;
  mutable responses : float list;
  mutable slowdowns : float list;
  mutable failures_injected : int;
  mutable job_kills : int;
  mutable lost_work : float;
  mutable migrations : int;
  mutable checkpoints : int;
}

let create ~nodes ~slowdown_tau =
  {
    nodes;
    slowdown_tau;
    anchored = false;
    start_time = 0.;
    last_time = 0.;
    cur_free = nodes;
    cur_demand = 0;
    busy_integral = 0.;
    unused_integral = 0.;
    waits = [];
    responses = [];
    slowdowns = [];
    failures_injected = 0;
    job_kills = 0;
    lost_work = 0.;
    migrations = 0;
    checkpoints = 0;
  }

let advance t ~now ~free ~queued_demand =
  if not t.anchored then begin
    (* The first advance anchors the span: the engine calls it on the
       first job arrival. Earlier calls only refresh the snapshot. *)
    t.anchored <- true;
    t.start_time <- now;
    t.last_time <- now
  end
  else begin
    let dt = now -. t.last_time in
    if dt > 0. then begin
      let busy = t.nodes - t.cur_free in
      t.busy_integral <- t.busy_integral +. (float_of_int busy *. dt);
      let surplus = max 0 (t.cur_free - t.cur_demand) in
      t.unused_integral <- t.unused_integral +. (float_of_int surplus *. dt);
      t.last_time <- now
    end
  end;
  t.cur_free <- free;
  t.cur_demand <- queued_demand

let record_completion t (job : Job.t) =
  t.waits <- Job.wait_time job :: t.waits;
  t.responses <- Job.response_time job :: t.responses;
  t.slowdowns <- Job.bounded_slowdown ~tau:t.slowdown_tau job :: t.slowdowns

let record_failure_event t = t.failures_injected <- t.failures_injected + 1

let record_job_kill t ~lost_node_seconds =
  t.job_kills <- t.job_kills + 1;
  t.lost_work <- t.lost_work +. lost_node_seconds

let record_migration t = t.migrations <- t.migrations + 1
let record_checkpoint t = t.checkpoints <- t.checkpoints + 1

type report = {
  total_jobs : int;
  completed_jobs : int;
  avg_wait : float;
  avg_response : float;
  avg_bounded_slowdown : float;
  median_bounded_slowdown : float;
  p90_bounded_slowdown : float;
  util : float;
  unused : float;
  lost : float;
  busy_fraction : float;
  makespan : float;
  failures_injected : int;
  job_kills : int;
  restarts : int;
  lost_work : float;
  migrations : int;
  checkpoints : int;
}

let report t ~jobs ~total_jobs =
  let makespan = t.last_time -. t.start_time in
  let capacity = makespan *. float_of_int t.nodes in
  let useful =
    List.fold_left
      (fun acc (j : Job.t) -> acc +. (float_of_int j.spec.size *. j.spec.run_time))
      0. jobs
  in
  let slow = Bgl_stats.Summary.of_list t.slowdowns in
  let util = if capacity > 0. then useful /. capacity else 0. in
  let unused = if capacity > 0. then t.unused_integral /. capacity else 0. in
  {
    total_jobs;
    completed_jobs = List.length jobs;
    avg_wait = Bgl_stats.Summary.mean t.waits;
    avg_response = Bgl_stats.Summary.mean t.responses;
    avg_bounded_slowdown = slow.mean;
    median_bounded_slowdown = slow.median;
    p90_bounded_slowdown = slow.p90;
    util;
    unused;
    lost = 1. -. util -. unused;
    busy_fraction = (if capacity > 0. then t.busy_integral /. capacity else 0.);
    makespan;
    failures_injected = t.failures_injected;
    job_kills = t.job_kills;
    restarts = List.fold_left (fun acc (j : Job.t) -> acc + j.restarts) 0 jobs;
    lost_work = t.lost_work;
    migrations = t.migrations;
    checkpoints = t.checkpoints;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>jobs: %d/%d completed, makespan %.0f s@,\
     wait %.1f s  response %.1f s  bounded slowdown avg %.2f (median %.2f, p90 %.2f)@,\
     capacity: util %.4f  unused %.4f  lost %.4f  (busy %.4f)@,\
     failures %d  kills %d  restarts %d  lost work %.3g node-s  migrations %d  checkpoints %d@]"
    r.completed_jobs r.total_jobs r.makespan r.avg_wait r.avg_response r.avg_bounded_slowdown
    r.median_bounded_slowdown r.p90_bounded_slowdown r.util r.unused r.lost r.busy_fraction
    r.failures_injected r.job_kills r.restarts r.lost_work r.migrations r.checkpoints

let report_to_registry reg r =
  let g name help v = Bgl_obs.Registry.set (Bgl_obs.Registry.gauge reg ~help name) v in
  let gi name help v = g name help (float_of_int v) in
  gi "bgl_report_jobs_total" "jobs submitted to the run" r.total_jobs;
  gi "bgl_report_jobs_completed" "jobs that ran to completion" r.completed_jobs;
  g "bgl_report_wait_seconds_avg" "mean job wait time" r.avg_wait;
  g "bgl_report_response_seconds_avg" "mean job response time" r.avg_response;
  g "bgl_report_bounded_slowdown_avg" "mean bounded slowdown" r.avg_bounded_slowdown;
  g "bgl_report_bounded_slowdown_median" "median bounded slowdown" r.median_bounded_slowdown;
  g "bgl_report_bounded_slowdown_p90" "90th percentile bounded slowdown" r.p90_bounded_slowdown;
  g "bgl_report_util" "omega_util: useful work / capacity" r.util;
  g "bgl_report_unused" "omega_unused: undemanded free capacity / capacity" r.unused;
  g "bgl_report_lost" "omega_lost: 1 - util - unused" r.lost;
  g "bgl_report_busy_fraction" "node-busy integral / capacity" r.busy_fraction;
  g "bgl_report_makespan_seconds" "simulation span T" r.makespan;
  gi "bgl_report_failures_injected" "failure events injected" r.failures_injected;
  gi "bgl_report_job_kills" "jobs killed by failures" r.job_kills;
  gi "bgl_report_restarts" "job restarts" r.restarts;
  g "bgl_report_lost_work_node_seconds" "node-seconds destroyed by kills" r.lost_work;
  gi "bgl_report_migrations" "jobs migrated" r.migrations;
  gi "bgl_report_checkpoints" "checkpoints taken" r.checkpoints

let report_to_csv_header =
  "total_jobs,completed_jobs,avg_wait,avg_response,avg_bounded_slowdown,median_bounded_slowdown,p90_bounded_slowdown,util,unused,lost,busy_fraction,makespan,failures_injected,job_kills,restarts,lost_work,migrations,checkpoints"

let report_to_csv_row r =
  Printf.sprintf "%d,%d,%.3f,%.3f,%.4f,%.4f,%.4f,%.5f,%.5f,%.5f,%.5f,%.1f,%d,%d,%d,%.1f,%d,%d"
    r.total_jobs r.completed_jobs r.avg_wait r.avg_response r.avg_bounded_slowdown
    r.median_bounded_slowdown r.p90_bounded_slowdown r.util r.unused r.lost r.busy_fraction
    r.makespan r.failures_injected r.job_kills r.restarts r.lost_work r.migrations r.checkpoints

(* ------------------------------------------------------------------ *)
(* JSON round-trip for the sweep journal. Floats go out with 17
   significant digits (enough to reconstruct any float64 exactly), so
   a journaled report replays bit-identically on resume. *)

let report_to_json r =
  let f v = if Float.is_finite v then Printf.sprintf "%.17g" v else "null" in
  let i = Bgl_obs.Jsonl.int in
  Bgl_obs.Jsonl.obj
    [
      ("total_jobs", i r.total_jobs);
      ("completed_jobs", i r.completed_jobs);
      ("avg_wait", f r.avg_wait);
      ("avg_response", f r.avg_response);
      ("avg_bounded_slowdown", f r.avg_bounded_slowdown);
      ("median_bounded_slowdown", f r.median_bounded_slowdown);
      ("p90_bounded_slowdown", f r.p90_bounded_slowdown);
      ("util", f r.util);
      ("unused", f r.unused);
      ("lost", f r.lost);
      ("busy_fraction", f r.busy_fraction);
      ("makespan", f r.makespan);
      ("failures_injected", i r.failures_injected);
      ("job_kills", i r.job_kills);
      ("restarts", i r.restarts);
      ("lost_work", f r.lost_work);
      ("migrations", i r.migrations);
      ("checkpoints", i r.checkpoints);
    ]

let report_of_json v =
  let ( let* ) = Result.bind in
  let f name =
    match Bgl_obs.Jsonl.member name v with
    | Some (Bgl_obs.Jsonl.Number x) -> Ok x
    | Some Bgl_obs.Jsonl.Null -> Ok Float.nan
    | Some _ -> Error (Printf.sprintf "report member %s is not a number" name)
    | None -> Error (Printf.sprintf "report member %s missing" name)
  in
  let i name = Result.map int_of_float (f name) in
  let* total_jobs = i "total_jobs" in
  let* completed_jobs = i "completed_jobs" in
  let* avg_wait = f "avg_wait" in
  let* avg_response = f "avg_response" in
  let* avg_bounded_slowdown = f "avg_bounded_slowdown" in
  let* median_bounded_slowdown = f "median_bounded_slowdown" in
  let* p90_bounded_slowdown = f "p90_bounded_slowdown" in
  let* util = f "util" in
  let* unused = f "unused" in
  let* lost = f "lost" in
  let* busy_fraction = f "busy_fraction" in
  let* makespan = f "makespan" in
  let* failures_injected = i "failures_injected" in
  let* job_kills = i "job_kills" in
  let* restarts = i "restarts" in
  let* lost_work = f "lost_work" in
  let* migrations = i "migrations" in
  let* checkpoints = i "checkpoints" in
  Ok
    {
      total_jobs;
      completed_jobs;
      avg_wait;
      avg_response;
      avg_bounded_slowdown;
      median_bounded_slowdown;
      p90_bounded_slowdown;
      util;
      unused;
      lost;
      busy_fraction;
      makespan;
      failures_injected;
      job_kills;
      restarts;
      lost_work;
      migrations;
      checkpoints;
    }
