open Bgl_torus

type ctx = {
  now : float;
  grid : Grid.t;
  cache : Bgl_partition.Finder.Cache.t option;
  mfp_before : int Lazy.t;
  mfp_boxes : Box.t list Lazy.t;
}

type t = {
  name : string;
  choose :
    ctx -> job:Bgl_trace.Job_log.job -> volume:int -> candidates:Box.t list -> Box.t option;
}

let make_ctx ?cache ~now grid =
  let mfp_before = lazy (Bgl_partition.Mfp.volume ?cache grid) in
  let mfp_boxes =
    lazy
      (let v = Lazy.force mfp_before in
       if v = 0 then []
       else
         match cache with
         | Some c when Bgl_partition.Finder.Cache.grid c == grid ->
             Bgl_partition.Finder.Cache.find c ~volume:v
         | _ -> Bgl_partition.Finder.find Bgl_partition.Finder.Prefix grid ~volume:v)
  in
  { now; grid; cache; mfp_before; mfp_boxes }
