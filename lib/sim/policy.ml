open Bgl_torus

type ctx = {
  now : float;
  grid : Grid.t;
  mfp_before : int Lazy.t;
  mfp_boxes : Box.t list Lazy.t;
}

type t = {
  name : string;
  choose :
    ctx -> job:Bgl_trace.Job_log.job -> volume:int -> candidates:Box.t list -> Box.t option;
}

let make_ctx ~now grid =
  let mfp_before = lazy (Bgl_partition.Mfp.volume grid) in
  let mfp_boxes =
    lazy
      (let v = Lazy.force mfp_before in
       if v = 0 then [] else Bgl_partition.Finder.find Bgl_partition.Finder.Prefix grid ~volume:v)
  in
  { now; grid; mfp_before; mfp_boxes }
