open Bgl_torus

type t = {
  dims : Dims.t;
  wrap : bool;
  backfill : bool;
  backfill_depth : int;
  candidate_cap : int option;
  migration : bool;
  migration_overhead : float;
  repair_time : float;
  checkpoint : Checkpoint.spec option;
  slowdown_tau : float;
  drop_oversize : bool;
}

let default =
  {
    dims = Dims.bgl;
    wrap = true;
    backfill = true;
    backfill_depth = 16;
    candidate_cap = Some 24;
    migration = false;
    migration_overhead = 0.;
    repair_time = 0.;
    checkpoint = None;
    slowdown_tau = 10.;
    drop_oversize = true;
  }

let validate t =
  if t.backfill_depth < 0 then invalid_arg "Config: backfill_depth must be non-negative";
  (match t.candidate_cap with
  | Some c when c <= 0 -> invalid_arg "Config: candidate_cap must be positive"
  | Some _ | None -> ());
  if t.repair_time < 0. then invalid_arg "Config: repair_time must be non-negative";
  if t.migration_overhead < 0. then invalid_arg "Config: migration_overhead must be non-negative";
  if t.slowdown_tau <= 0. then invalid_arg "Config: slowdown_tau must be positive";
  Option.iter Checkpoint.validate t.checkpoint
