open Bgl_torus

type event =
  | Arrival of int  (* job index *)
  | Finish of int * int  (* job index, generation *)
  | Failure of int  (* node *)
  | Repair of int  (* node *)

type outcome = {
  name : string;
  report : Metrics.report;
  jobs : Job.t array;
  dropped_jobs : int;
  complete : bool;
}

(* Live instruments resolved once per run against the process-wide
   registry (Bgl_obs.Runtime). With the default noop registry every
   cell below is inert and the increments cost one branch. *)
type obs = {
  active : bool;  (* false iff the registry is noop: guards arguments
                     that would cost something to compute (lengths) *)
  ev_arrival : Bgl_obs.Registry.counter;
  ev_finish : Bgl_obs.Registry.counter;
  ev_failure : Bgl_obs.Registry.counter;
  ev_repair : Bgl_obs.Registry.counter;
  jobs_started : Bgl_obs.Registry.counter;
  jobs_finished : Bgl_obs.Registry.counter;
  jobs_killed : Bgl_obs.Registry.counter;
  jobs_migrated : Bgl_obs.Registry.counter;
  g_free_nodes : Bgl_obs.Registry.gauge;
  g_queue_depth : Bgl_obs.Registry.gauge;
  g_sim_time : Bgl_obs.Registry.gauge;
  h_wait : Bgl_obs.Registry.histogram;
  h_candidates : Bgl_obs.Registry.histogram;
}

let make_obs () =
  let open Bgl_obs.Registry in
  let reg = Bgl_obs.Runtime.registry () in
  let ev kind = counter reg ~help:"simulation events handled, by kind"
      (Printf.sprintf "bgl_sim_events_total{kind=%S}" kind)
  in
  {
    active = not (is_noop reg);
    ev_arrival = ev "arrival";
    ev_finish = ev "finish";
    ev_failure = ev "failure";
    ev_repair = ev "repair";
    jobs_started = counter reg ~help:"job (re)starts" "bgl_sim_job_starts_total";
    jobs_finished = counter reg ~help:"job completions" "bgl_sim_job_finishes_total";
    jobs_killed = counter reg ~help:"jobs killed by node failures" "bgl_sim_job_kills_total";
    jobs_migrated = counter reg ~help:"job migrations" "bgl_sim_job_migrations_total";
    g_free_nodes = gauge reg ~help:"free nodes after the last event" "bgl_sim_free_nodes";
    g_queue_depth = gauge reg ~help:"jobs waiting in the queue" "bgl_sim_queue_depth";
    g_sim_time = gauge reg ~help:"simulated clock (seconds)" "bgl_sim_time_seconds";
    h_wait = histogram reg ~help:"per-job wait time (sim seconds)" "bgl_sim_job_wait_seconds";
    h_candidates =
      histogram reg ~help:"free-partition candidates per placement attempt"
        ~buckets:[| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512. |]
        "bgl_sim_placement_candidates";
  }

(* The wait queue is a set ordered by (arrival, id) — the FCFS order the
   old sorted-list queue maintained — with the job index carried along.
   Insert and remove are O(log Q) where the list walked O(Q) per
   operation (O(Q²) across a bursty arrival batch); iteration order is
   identical, so scheduling behaviour is byte-for-byte unchanged.
   (arrival, id) is already unique per job; the index is payload, not a
   tiebreak. *)
module Jobq = Set.Make (struct
  type t = float * int * int  (* arrival, id, job index *)

  let compare = Stdlib.compare
end)

(* Jobs currently holding partitions. The old [int list] paid O(n) for
   the removal on every completion and kill; this set removes in
   O(log n). Ordered by {e descending} start sequence so iteration
   reproduces the old list's LIFO order exactly: the stable sorts in
   [compute_reservation] and [try_migrate] tie-break on iteration
   order, and the fig-3 golden traces pin it byte for byte. *)
module Runset = Set.Make (struct
  type t = int * int  (* start sequence, job index *)

  let compare (sa, ia) (sb, ib) =
    match Int.compare sb sa with 0 -> Int.compare ib ia | c -> c
end)

type state = {
  cfg : Config.t;
  policy : Policy.t;
  recorder : Recorder.t option;
  trace : Recorder.t option;
      (* streaming JSONL recorder wired from Bgl_obs.Runtime.trace_writer;
         independent of the caller's recorder *)
  obs : obs;
  heartbeat : Bgl_obs.Heartbeat.t option;
  predictor : Bgl_predict.Predictor.t;
  grid : Grid.t;
  jobs : Job.t array;
  events : event Event_queue.t;
  metrics : Metrics.t;
  mutable queue : Jobq.t;  (* FCFS by (arrival, id); holds job indices *)
  mutable queue_len : int;
  mutable queued_demand : int;  (* sum of requested sizes over the queue *)
  mutable running : Runset.t;
  start_seq : int array;  (* per job index: sequence of its current run *)
  mutable next_seq : int;
  mutable arrivals_pending : int;
  mutable now : float;
  cache : Bgl_partition.Finder.Cache.t;
      (* finder cache over [grid]: incrementally maintained summed-area
         table plus fingerprint-keyed memo of finder results. Every
         occupancy mutation below is paired with a [note_box]/[note_node]
         so table updates stay incremental; a missed note only costs a
         full rebuild (the cache self-heals via the grid version). *)
}

(* Running job indices, most recently started first — the old list's
   iteration order ([Runset]'s comparator inverts the sequence). *)
let running_lifo st = List.map snd (Runset.elements st.running)

let running_add st idx =
  st.start_seq.(idx) <- st.next_seq;
  st.next_seq <- st.next_seq + 1;
  st.running <- Runset.add (st.start_seq.(idx), idx) st.running

let running_remove st idx = st.running <- Runset.remove (st.start_seq.(idx), idx) st.running

let record st entry =
  (match st.recorder with Some r -> Recorder.record r entry | None -> ());
  match st.trace with Some r -> Recorder.record r entry | None -> ()

(* ------------------------------------------------------------------ *)
(* Queue management *)

let queue_key st idx =
  let j = st.jobs.(idx).spec in
  (j.Bgl_trace.Job_log.arrival, j.id, idx)

let queue_insert st idx =
  st.queue <- Jobq.add (queue_key st idx) st.queue;
  st.queue_len <- st.queue_len + 1;
  st.queued_demand <- st.queued_demand + st.jobs.(idx).spec.size

let queue_remove st idx =
  st.queue <- Jobq.remove (queue_key st idx) st.queue;
  st.queue_len <- st.queue_len - 1;
  st.queued_demand <- st.queued_demand - st.jobs.(idx).spec.size

(* ------------------------------------------------------------------ *)
(* Placement *)

(* One capped query: [Cache.select] answers with the deterministic even
   subsample (the historical [cap_candidates ∘ find] semantics, proven
   equivalent by the qcheck layer and the differential oracle) without
   materialising the full candidate list — the term that used to be
   super-linear in machine size. The uncapped path keeps the full
   enumeration. *)
let find_candidates st volume =
  if Grid.free_count st.grid < volume then []
  else
    match st.cfg.Config.candidate_cap with
    | None -> Bgl_partition.Finder.Cache.find st.cache ~volume
    | Some cap -> Bgl_partition.Finder.Cache.select st.cache ~volume ~cap

let checkpoint_interval st (job : Job.t) box =
  match st.cfg.checkpoint with
  | None -> None
  | Some spec ->
      let risky =
        match spec with
        | Checkpoint.Periodic _ -> false
        | Checkpoint.Adaptive _ ->
            Bgl_predict.Predictor.partition_will_fail st.predictor
              ~nodes:(Box.indices (Grid.dims st.grid) box)
              ~now:st.now ~horizon:job.spec.estimate
      in
      Some (Checkpoint.interval_for spec ~risky)

let start_job st idx box =
  let job = st.jobs.(idx) in
  let interval = checkpoint_interval st job box in
  let wall =
    match interval with
    | None -> job.remaining
    | Some iv ->
        Checkpoint.wall_time ~interval:iv
          ~overhead:(Checkpoint.overhead (Option.get st.cfg.checkpoint))
          ~work:job.remaining
  in
  Grid.occupy st.grid box ~owner:idx;
  Bgl_partition.Finder.Cache.note_box st.cache box;
  if job.first_start = None then job.first_start <- Some st.now;
  Job.transition job
    (Job.Start
       {
         box;
         started = st.now;
         finish_time = st.now +. wall;
         generation = job.generation;
         work_at_start = job.remaining;
         interval;
       });
  running_add st idx;
  record st
    (Recorder.Job_started { job = job.spec.id; time = st.now; box; restart = job.restarts > 0 });
  Bgl_obs.Registry.inc st.obs.jobs_started;
  Event_queue.push st.events ~time:(st.now +. wall) (Finish (idx, job.generation))

let try_place st (job : Job.t) =
  let candidates = find_candidates st job.volume in
  if st.obs.active then
    Bgl_obs.Registry.observe st.obs.h_candidates (float_of_int (List.length candidates));
  match candidates with
  | [] -> None
  | candidates ->
      let ctx = Policy.make_ctx ~cache:st.cache ~now:st.now st.grid in
      st.policy.choose ctx ~job:job.spec ~volume:job.volume ~candidates

(* ------------------------------------------------------------------ *)
(* EASY backfilling with a spatial reservation *)

let estimated_run_end st idx =
  let job = st.jobs.(idx) in
  match Job.current_run job with
  | None -> st.now
  | Some r -> r.started +. Float.max job.spec.estimate (st.now -. r.started)

(* Earliest time the head job could start if running jobs end at their
   estimates, and a partition it could then take. *)
let compute_reservation st (head : Job.t) =
  let ghost = Grid.copy st.grid in
  (* The ghost gets its own finder cache so the summed-area table is
     built once and then patched incrementally as runs are released,
     instead of rebuilt per feasibility probe. *)
  let gcache = Bgl_partition.Finder.Cache.create ghost in
  let feasible () =
    Grid.free_count ghost >= head.volume
    && Bgl_partition.Finder.Cache.exists_free gcache ~volume:head.volume
  in
  let by_end =
    List.sort
      (fun a b -> compare (estimated_run_end st a) (estimated_run_end st b))
      (running_lifo st)
  in
  let rec release shadow = function
    | [] -> (shadow, None)
    | idx :: rest -> (
        let job = st.jobs.(idx) in
        (match Job.current_run job with
        | Some r ->
            Grid.vacate ghost r.box ~owner:idx;
            Bgl_partition.Finder.Cache.note_box gcache r.box
        | None -> ());
        let shadow = estimated_run_end st idx in
        if feasible () then
          (* Only the sorted head is needed: rank 0 of the counted walk
             is the head of the materialised list. *)
          match Bgl_partition.Finder.Cache.select gcache ~volume:head.volume ~cap:1 with
          | box :: _ -> (shadow, Some box)
          | [] -> (shadow, None) (* unreachable: feasible () just held *)
        else release shadow rest)
  in
  if feasible () then (st.now, None) (* should have been placed directly *)
  else release st.now by_end

let backfill_pass st head_idx =
  let head = st.jobs.(head_idx) in
  let shadow, reserved = compute_reservation st head in
  let dims = Grid.dims st.grid in
  let depth = st.cfg.backfill_depth in
  (* Snapshot of the queue behind the head, in FCFS order. The set is
     immutable, so starting a backfilled job (which removes it from
     [st.queue]) cannot disturb the ongoing scan. *)
  let rest = Jobq.remove (queue_key st head_idx) st.queue in
  let rec scan count seq =
    if count >= depth then ()
    else
      match seq () with
      | Seq.Nil -> ()
      | Seq.Cons ((_, _, idx), later) ->
          let job = st.jobs.(idx) in
          let candidates = find_candidates st job.volume in
          let allowed =
            if candidates = [] then []
            else if st.now +. job.spec.estimate <= shadow then candidates
            else
              match reserved with
              | None -> candidates
              | Some res -> List.filter (fun b -> not (Box.overlap dims b res)) candidates
          in
          (if allowed <> [] then
             let ctx = Policy.make_ctx ~cache:st.cache ~now:st.now st.grid in
             match st.policy.choose ctx ~job:job.spec ~volume:job.volume ~candidates:allowed with
             | Some box ->
                 queue_remove st idx;
                 start_job st idx box
             | None -> ());
          scan (count + 1) later
  in
  scan 0 (Jobq.to_seq rest)

(* ------------------------------------------------------------------ *)
(* Migration: re-pack running jobs (largest first) to defragment *)

let try_migrate st (head : Job.t) =
  if Grid.free_count st.grid < head.volume then false
  else begin
    let dims = Grid.dims st.grid in
    let ghost = Grid.create ~wrap:(Grid.wrap st.grid) dims in
    (* Keep downed nodes down in the ghost. *)
    Grid.iter_owned st.grid (fun node owner ->
        if owner = Grid.down_owner then Grid.occupy_node ghost node ~owner:Grid.down_owner);
    (* Repacking queries the ghost once per running job as it fills up:
       a local cache keeps those incremental. *)
    let gcache = Bgl_partition.Finder.Cache.create ghost in
    let order =
      List.sort
        (fun a b -> Int.compare st.jobs.(b).volume st.jobs.(a).volume)
        (running_lifo st)
    in
    let placements =
      List.fold_left
        (fun acc idx ->
          match acc with
          | None -> None
          | Some placed -> (
              let job = st.jobs.(idx) in
              match Bgl_partition.Finder.Cache.select gcache ~volume:job.volume ~cap:1 with
              | [] -> None
              | box :: _ ->
                  Grid.occupy ghost box ~owner:idx;
                  Bgl_partition.Finder.Cache.note_box gcache box;
                  Some ((idx, box) :: placed)))
        (Some []) order
    in
    match placements with
    | None -> false
    | Some placed ->
        if not (Bgl_partition.Finder.Cache.exists_free gcache ~volume:head.volume) then false
        else begin
          (* Commit in two phases: a job's new box may overlap another
             job's old box, so every moved job vacates before any
             occupies. *)
          let moves =
            List.filter_map
              (fun (idx, new_box) ->
                match Job.current_run st.jobs.(idx) with
                | Some r when not (Box.equal r.box new_box) -> Some (idx, r, new_box)
                | Some _ | None -> None)
              placed
          in
          List.iter
            (fun (idx, (r : Job.run), _) ->
              Grid.vacate st.grid r.box ~owner:idx;
              Bgl_partition.Finder.Cache.note_box st.cache r.box)
            moves;
          List.iter
            (fun (idx, (r : Job.run), new_box) ->
              let job = st.jobs.(idx) in
              Grid.occupy st.grid new_box ~owner:idx;
              Bgl_partition.Finder.Cache.note_box st.cache new_box;
              record st
                (Recorder.Job_migrated
                   { job = job.spec.id; time = st.now; from_box = r.box; to_box = new_box });
              job.generation <- job.generation + 1;
              let finish_time = r.finish_time +. st.cfg.migration_overhead in
              Job.transition job
                (Job.Migrate { r with box = new_box; finish_time; generation = job.generation });
              Event_queue.push st.events ~time:finish_time (Finish (idx, job.generation));
              Bgl_obs.Registry.inc st.obs.jobs_migrated;
              Metrics.record_migration st.metrics)
            moves;
          true
        end
  end

(* ------------------------------------------------------------------ *)
(* The scheduling pass: place the head while possible, then backfill *)

let schedule_pass st =
  let rec go migration_tried =
    match Jobq.min_elt_opt st.queue with
    | None -> ()
    | Some (_, _, head_idx) -> (
        let head = st.jobs.(head_idx) in
        match try_place st head with
        | Some box ->
            queue_remove st head_idx;
            start_job st head_idx box;
            go migration_tried
        | None ->
            if st.cfg.migration && (not migration_tried) && try_migrate st head then go true
            else if st.cfg.backfill then backfill_pass st head_idx)
  in
  go false

(* ------------------------------------------------------------------ *)
(* Event handling *)

let complete_run st idx =
  let job = st.jobs.(idx) in
  match Job.current_run job with
  | None -> ()
  | Some r ->
      Grid.vacate st.grid r.box ~owner:idx;
      Bgl_partition.Finder.Cache.note_box st.cache r.box;
      running_remove st idx;
      (match r.interval with
      | None -> ()
      | Some iv ->
          let n = Checkpoint.checkpoints_for_work ~interval:iv ~work:r.work_at_start in
          job.checkpoints_taken <- job.checkpoints_taken + n;
          for _ = 1 to n do
            Metrics.record_checkpoint st.metrics
          done);
      job.remaining <- 0.;
      Job.transition job Job.Complete;
      job.completion <- Some st.now;
      record st (Recorder.Job_finished { job = job.spec.id; time = st.now });
      Bgl_obs.Registry.inc st.obs.jobs_finished;
      if st.obs.active then Bgl_obs.Registry.observe st.obs.h_wait (Job.wait_time job);
      Metrics.record_completion st.metrics job

let kill_job st idx ~node =
  let job = st.jobs.(idx) in
  match Job.current_run job with
  | None -> ()
  | Some r ->
      let elapsed = st.now -. r.started in
      (* One credit calculation feeds both the persisted-work figure
         and the checkpoint count, so they cannot drift apart. *)
      let credits, persisted =
        match (r.interval, st.cfg.checkpoint) with
        | Some iv, Some spec ->
            let k =
              Checkpoint.checkpoints_completed ~interval:iv ~overhead:(Checkpoint.overhead spec)
                ~work:r.work_at_start ~elapsed
            in
            (k, float_of_int k *. iv)
        | None, _ | _, None -> (0, 0.)
      in
      if credits > 0 then begin
        job.checkpoints_taken <- job.checkpoints_taken + credits;
        for _ = 1 to credits do
          Metrics.record_checkpoint st.metrics
        done
      end;
      Grid.vacate st.grid r.box ~owner:idx;
      Bgl_partition.Finder.Cache.note_box st.cache r.box;
      running_remove st idx;
      let lost = float_of_int job.volume *. (elapsed -. persisted) in
      job.lost_node_seconds <- job.lost_node_seconds +. lost;
      record st
        (Recorder.Job_killed { job = job.spec.id; time = st.now; node; lost_node_seconds = lost });
      Bgl_obs.Registry.inc st.obs.jobs_killed;
      Metrics.record_job_kill st.metrics ~lost_node_seconds:lost;
      job.remaining <- r.work_at_start -. persisted;
      job.generation <- job.generation + 1;
      job.restarts <- job.restarts + 1;
      Job.transition job Job.Kill;
      queue_insert st idx

let handle st = function
  | Arrival idx ->
      Bgl_obs.Registry.inc st.obs.ev_arrival;
      st.arrivals_pending <- st.arrivals_pending - 1;
      let spec = st.jobs.(idx).spec in
      record st
        (Recorder.Job_arrived
           { job = spec.id; time = st.now; size = spec.size; run_time = spec.run_time });
      queue_insert st idx
  | Finish (idx, gen) -> (
      Bgl_obs.Registry.inc st.obs.ev_finish;
      let job = st.jobs.(idx) in
      match Job.current_run job with
      | Some r when r.generation = gen -> complete_run st idx
      | Some _ | None -> () (* stale event from a killed or migrated run *))
  | Failure node -> (
      Bgl_obs.Registry.inc st.obs.ev_failure;
      Metrics.record_failure_event st.metrics;
      let victim =
        match Grid.owner st.grid node with
        | Some owner when owner >= 0 ->
            let victim_id = st.jobs.(owner).spec.id in
            kill_job st owner ~node;
            Some victim_id
        | Some _ | None -> None
      in
      record st (Recorder.Node_failed { time = st.now; node; victim });
      (* Downtime extension: hold the node out of service. *)
      if st.cfg.repair_time > 0. then
        match Grid.owner st.grid node with
        | None ->
            Grid.occupy_node st.grid node ~owner:Grid.down_owner;
            Bgl_partition.Finder.Cache.note_node st.cache node;
            Event_queue.push st.events ~time:(st.now +. st.cfg.repair_time) (Repair node)
        | Some _ -> () (* already down: burst double-hit *))
  | Repair node -> (
      Bgl_obs.Registry.inc st.obs.ev_repair;
      match Grid.owner st.grid node with
      | Some owner when owner = Grid.down_owner ->
          Grid.vacate_node st.grid node ~owner;
          Bgl_partition.Finder.Cache.note_node st.cache node;
          record st (Recorder.Node_repaired { time = st.now; node })
      | Some _ | None -> ())

(* ------------------------------------------------------------------ *)
(* Driver *)

let run ?(config = Config.default) ?(predictor = Bgl_predict.Predictor.null) ?recorder ?budget
    ?run_id ?seed ~(policy : Policy.t) ~(log : Bgl_trace.Job_log.t)
    ~(failures : Bgl_trace.Failure_log.t) () =
  Bgl_resilience.Budget.with_budget budget @@ fun () ->
  Config.validate config;
  (match Bgl_trace.Failure_log.validate_nodes failures ~volume:(Dims.volume config.dims) with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  let dropped = ref 0 in
  let jobs =
    Array.to_list log.jobs
    |> List.filter_map (fun (spec : Bgl_trace.Job_log.job) ->
           match Bgl_partition.Shapes.round_up_volume config.dims spec.size with
           | Some volume -> Some (Job.create spec ~volume)
           | None ->
               if config.drop_oversize then begin
                 incr dropped;
                 None
               end
               else
                 invalid_arg
                   (Printf.sprintf "Engine.run: job %d (%d nodes) exceeds the torus" spec.id
                      spec.size))
    |> Array.of_list
  in
  (* Every streamed trace line is tagged with this id, so concurrent
     runs multiplexed into one writer (a parallel sweep) demux cleanly
     line by line. *)
  let rid =
    match run_id with
    | Some id -> id
    | None ->
        Digest.to_hex
          (Digest.string
             (Printf.sprintf "%s|%s|%s|%d" log.name failures.name policy.name (Array.length jobs)))
  in
  let trace =
    Option.map
      (fun w ->
        Recorder.create
          ~sink:(Bgl_obs.Sink.jsonl_writer ~to_json:(Recorder.entry_to_json ~run:rid) w) ())
      (Bgl_obs.Runtime.trace_writer ())
  in
  let grid = Grid.create ~wrap:config.wrap config.dims in
  let st =
    {
      cfg = config;
      policy;
      recorder;
      trace;
      obs = make_obs ();
      heartbeat = Bgl_obs.Runtime.heartbeat ();
      predictor;
      grid;
      jobs;
      events = Event_queue.create ();
      metrics = Metrics.create ~nodes:(Dims.volume config.dims) ~slowdown_tau:config.slowdown_tau;
      queue = Jobq.empty;
      queue_len = 0;
      queued_demand = 0;
      running = Runset.empty;
      start_seq = Array.make (Array.length jobs) 0;
      next_seq = 0;
      arrivals_pending = Array.length jobs;
      now = 0.;
      cache = Bgl_partition.Finder.Cache.create grid;
    }
  in
  (* Frame the run: a run_meta header carrying everything the auditor
     needs (torus, policy, provenance), a run_summary trailer with the
     engine's own totals for it to cross-check. *)
  record st
    (Recorder.Run_meta
       {
         time = st.now;
         log = log.name;
         failures = failures.name;
         policy = policy.name;
         dims = config.dims;
         wrap = config.wrap;
         jobs = Array.length jobs;
         seed;
         parent = Bgl_obs.Runtime.trace_parent ();
         repair_time = config.repair_time;
         checkpointed = Option.is_some config.checkpoint;
       });
  Array.iteri (fun idx (j : Job.t) -> Event_queue.push st.events ~time:j.spec.arrival (Arrival idx)) jobs;
  Array.iter
    (fun (e : Bgl_trace.Failure_log.event) -> Event_queue.push st.events ~time:e.time (Failure e.node))
    failures.events;
  let first_arrival = if Array.length jobs = 0 then 0. else jobs.(0).spec.arrival in
  let rec loop () =
    if st.arrivals_pending = 0 && Jobq.is_empty st.queue && Runset.is_empty st.running then ()
    else
      match Event_queue.pop st.events with
      | None -> () (* unschedulable leftovers; reported as incomplete *)
      | Some (time, ev) ->
          Bgl_resilience.Budget.check ~site:"engine.event";
          st.now <- time;
          handle st ev;
          (* Drain the batch of simultaneous events (failure bursts)
             before scheduling once. *)
          let rec drain () =
            match Event_queue.pop_if_at st.events ~time with
            | Some ev ->
                handle st ev;
                drain ()
            | None -> ()
          in
          drain ();
          (if Bgl_obs.Span.enabled () then
             Bgl_obs.Span.time ~name:"engine.schedule_pass" (fun () -> schedule_pass st)
           else schedule_pass st);
          if time >= first_arrival then
            Metrics.advance st.metrics ~now:time ~free:(Grid.free_count st.grid)
              ~queued_demand:st.queued_demand;
          if st.obs.active then begin
            Bgl_obs.Registry.set st.obs.g_sim_time st.now;
            Bgl_obs.Registry.set st.obs.g_free_nodes (float_of_int (Grid.free_count st.grid));
            Bgl_obs.Registry.set st.obs.g_queue_depth (float_of_int st.queue_len)
          end;
          (match st.heartbeat with
          | None -> ()
          | Some hb ->
              Bgl_obs.Heartbeat.tick hb (fun () ->
                  {
                    Bgl_obs.Heartbeat.sim_time = st.now;
                    queue_depth = st.queue_len;
                    running = Runset.cardinal st.running;
                    free_nodes = Grid.free_count st.grid;
                  }));
          loop ()
  in
  loop ();
  let completed = Array.to_list jobs |> List.filter Job.is_completed in
  let report = Metrics.report st.metrics ~jobs:completed ~total_jobs:(Array.length jobs) in
  record st (Recorder.Run_summary { time = st.now; report });
  Option.iter Recorder.flush trace;
  {
    name = Printf.sprintf "%s vs %s under %s" log.name failures.name policy.name;
    report;
    jobs;
    dropped_jobs = !dropped;
    complete = List.length completed = Array.length jobs;
  }
