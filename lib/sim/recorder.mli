(** Execution-trace recording.

    An optional observer the engine notifies on every job lifecycle
    transition and failure injection. Downstream tooling replays the
    entries to analyse schedules (Gantt-style reconstruction, kill
    forensics, predictor post-mortems) without touching engine
    internals; `examples/schedule_forensics.ml` and the predictor
    evaluation tests are the in-repo consumers. *)

open Bgl_torus

type entry =
  | Job_started of { job : int; time : float; box : Box.t; restart : bool }
      (** [job] is the job id from the log (not the engine index). *)
  | Job_killed of { job : int; time : float; node : int; lost_node_seconds : float }
      (** [node] is the failed node that killed the job. *)
  | Job_finished of { job : int; time : float }
  | Job_migrated of { job : int; time : float; from_box : Box.t; to_box : Box.t }
  | Node_failed of { time : float; node : int; victim : int option }
      (** [victim] is the id of the job killed by this event, if any. *)
  | Node_repaired of { time : float; node : int }

type t

val create : ?sink:entry Bgl_obs.Sink.t -> unit -> t
(** Defaults to a buffered sink, which retains every entry in memory —
    fine for figure-scale runs, unbounded for long sweeps. Pass a
    JSONL sink (or {!jsonl}) to stream entries to disk in constant
    memory instead, or a tee to do both. *)

val jsonl : out_channel -> t
(** A recorder streaming one JSON line per entry to the channel (the
    schema is {!entry_to_json}'s). The caller owns the channel. *)

val entry_to_json : entry -> string
(** One compact JSON object, no trailing newline. See the
    "Observability" section of README.md for the schema. *)

val record : t -> entry -> unit
(** Append an entry (engine-facing). *)

val entries : t -> entry list
(** All entries in recording order — for recorders over a buffered
    sink; streaming recorders return []. *)

val length : t -> int
(** Entries recorded so far (maintained by every sink kind). *)

val is_buffered : t -> bool
(** Whether {!entries} reflects the full run. *)

val flush : t -> unit
(** Flush a streaming recorder's underlying channel. *)

val starts_of : t -> job:int -> (float * Box.t) list
(** Every (re)start of a job, in time order (buffered sinks only). *)

val kills_of : t -> job:int -> (float * int) list
(** Every kill of a job as [(time, node)] (buffered sinks only). *)

val busiest_victim : t -> (int * int) option
(** The job killed most often, as [(job, kills)] (buffered sinks
    only). *)

val pp_entry : Format.formatter -> entry -> unit
