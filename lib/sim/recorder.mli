(** Execution-trace recording.

    An optional observer the engine notifies on every job lifecycle
    transition and failure injection. Downstream tooling replays the
    entries to analyse schedules (Gantt-style reconstruction, kill
    forensics, predictor post-mortems) without touching engine
    internals; `examples/schedule_forensics.ml`, the predictor
    evaluation tests and the {!Bgl_audit} certificate checker are the
    in-repo consumers.

    Trace framing (schema version {!schema_version}): the engine
    brackets every run with a leading {!entry.Run_meta} (declaring the
    torus, policy and provenance) and a trailing {!entry.Run_summary}
    (its own metric totals), and announces every job submission as
    {!entry.Job_arrived} — together enough for an external auditor to
    re-verify the schedule with no access to engine state. *)

open Bgl_torus

val schema_version : int
(** Version stamp carried by every [run_meta] line. Bumped on any
    incompatible change to the JSONL shape; currently 2. *)

type entry =
  | Run_meta of {
      time : float;
      log : string;
      failures : string;
      policy : string;
      dims : Dims.t;
      wrap : bool;
      jobs : int;
      seed : int option;  (** scenario seed, when the caller knows it *)
      parent : string option;
          (** fingerprint of the journal this run resumes from, if any *)
      repair_time : float;
      checkpointed : bool;  (** whether a checkpointing spec was active *)
    }  (** First entry of every run: everything the auditor needs up front. *)
  | Job_arrived of { job : int; time : float; size : int; run_time : float }
      (** [run_time] is the job's true work requirement (node-seconds
          per node), not its user estimate. *)
  | Job_started of { job : int; time : float; box : Box.t; restart : bool }
      (** [job] is the job id from the log (not the engine index). *)
  | Job_killed of { job : int; time : float; node : int; lost_node_seconds : float }
      (** [node] is the failed node that killed the job. *)
  | Job_finished of { job : int; time : float }
  | Job_migrated of { job : int; time : float; from_box : Box.t; to_box : Box.t }
  | Node_failed of { time : float; node : int; victim : int option }
      (** [victim] is the id of the job killed by this event, if any. *)
  | Node_repaired of { time : float; node : int }
  | Run_summary of { time : float; report : Metrics.report }
      (** Last entry of every run: the engine's own totals, which an
          auditor cross-checks against its independent recomputation. *)

type t

val create : ?sink:entry Bgl_obs.Sink.t -> unit -> t
(** Defaults to a buffered sink, which retains every entry in memory —
    fine for figure-scale runs, unbounded for long sweeps. Pass a
    JSONL sink (or {!jsonl}) to stream entries to disk in constant
    memory instead, or a tee to do both. *)

val jsonl : out_channel -> t
(** A recorder streaming one JSON line per entry to the channel (the
    schema is {!entry_to_json}'s). The caller owns the channel. *)

val entry_to_json : ?run:string -> entry -> string
(** One compact JSON object, no trailing newline. When [run] is given,
    a leading ["run"] member tags the line with that run id, so the
    interleaved stream of a parallel sweep can be demultiplexed line
    by line. See the "Observability" section of README.md for the
    schema. *)

val record : t -> entry -> unit
(** Append an entry (engine-facing). *)

val entries : t -> entry list
(** All entries in recording order — for recorders over a buffered
    sink; streaming recorders return []. *)

val length : t -> int
(** Entries recorded so far (maintained by every sink kind). *)

val is_buffered : t -> bool
(** Whether {!entries} reflects the full run. *)

val flush : t -> unit
(** Flush a streaming recorder's underlying channel. *)

val starts_of : t -> job:int -> (float * Box.t) list
(** Every (re)start of a job, in time order.
    @raise Invalid_argument on a streaming recorder, which retains no
    entries to answer from. *)

val kills_of : t -> job:int -> (float * int) list
(** Every kill of a job as [(time, node)].
    @raise Invalid_argument on a streaming recorder. *)

val busiest_victim : t -> (int * int) option
(** The job killed most often, as [(job, kills)].
    @raise Invalid_argument on a streaming recorder. *)

val pp_entry : Format.formatter -> entry -> unit
