(** Execution-trace recording.

    An optional observer the engine notifies on every job lifecycle
    transition and failure injection. Downstream tooling replays the
    entries to analyse schedules (Gantt-style reconstruction, kill
    forensics, predictor post-mortems) without touching engine
    internals; `examples/schedule_forensics.ml` and the predictor
    evaluation tests are the in-repo consumers. *)

open Bgl_torus

type entry =
  | Job_started of { job : int; time : float; box : Box.t; restart : bool }
      (** [job] is the job id from the log (not the engine index). *)
  | Job_killed of { job : int; time : float; node : int; lost_node_seconds : float }
      (** [node] is the failed node that killed the job. *)
  | Job_finished of { job : int; time : float }
  | Job_migrated of { job : int; time : float; from_box : Box.t; to_box : Box.t }
  | Node_failed of { time : float; node : int; victim : int option }
      (** [victim] is the id of the job killed by this event, if any. *)
  | Node_repaired of { time : float; node : int }

type t

val create : unit -> t

val record : t -> entry -> unit
(** Append an entry (engine-facing). *)

val entries : t -> entry list
(** All entries in recording order. *)

val length : t -> int

val starts_of : t -> job:int -> (float * Box.t) list
(** Every (re)start of a job, in time order. *)

val kills_of : t -> job:int -> (float * int) list
(** Every kill of a job as [(time, node)]. *)

val busiest_victim : t -> (int * int) option
(** The job killed most often, as [(job, kills)]. *)

val pp_entry : Format.formatter -> entry -> unit
