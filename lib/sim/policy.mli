(** Placement-policy interface.

    The engine owns the queue discipline (FCFS with optional EASY
    backfilling and migration); a policy only chooses {e which} of the
    free candidate partitions a job should occupy — this is where the
    paper's baseline MFP heuristic, balancing algorithm and
    tie-breaking algorithm differ. Concrete policies live in
    [Bgl_sched.Placement]. *)

open Bgl_torus

type ctx = {
  now : float;
  grid : Grid.t;
      (** current occupancy; policies may probe it (e.g. via
          [Mfp.volume_after], which restores the grid) but must leave
          it unchanged *)
  cache : Bgl_partition.Finder.Cache.t option;
      (** the engine's finder cache over [grid], when one exists —
          policies should thread it into [Mfp] probes so MFP searches
          reuse the incremental summed-area table *)
  mfp_before : int Lazy.t;  (** MFP volume before the placement *)
  mfp_boxes : Box.t list Lazy.t;
      (** all free boxes achieving [mfp_before] — lets policies skip
          the expensive MFP recomputation for candidates that do not
          intersect every maximal box *)
}

type t = {
  name : string;
  choose :
    ctx -> job:Bgl_trace.Job_log.job -> volume:int -> candidates:Box.t list -> Box.t option;
      (** [None] declines placement (the job keeps waiting) — with a
          non-empty candidate list only threshold-style policies do
          this. *)
}

val make_ctx : ?cache:Bgl_partition.Finder.Cache.t -> now:float -> Grid.t -> ctx
(** Build a context with lazily computed MFP data. When [cache] is the
    engine's finder cache over [grid], the MFP data is served from (and
    memoised in) the cache. *)
