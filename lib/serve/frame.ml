let max_frame = 16 * 1024 * 1024

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let write fd payload =
  Bgl_resilience.Failpoint.hit "serve.write";
  let header = string_of_int (String.length payload) ^ "\n" in
  (* One write per frame keeps frames atomic enough for a local socket
     reader; correctness never depends on it (the reader buffers). *)
  let frame = header ^ payload ^ "\n" in
  write_all fd frame 0 (String.length frame)

type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable buf : string;  (** bytes received, not yet consumed *)
  mutable pos : int;  (** consumption offset into [buf] *)
}

let reader fd = { fd; chunk = Bytes.create 65536; buf = ""; pos = 0 }

let refill r =
  if r.pos > 0 then begin
    r.buf <- String.sub r.buf r.pos (String.length r.buf - r.pos);
    r.pos <- 0
  end;
  let n = Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) in
  if n > 0 then r.buf <- r.buf ^ Bytes.sub_string r.chunk 0 n;
  n > 0

(* Next newline-terminated line, or [None] at EOF before any byte of
   one. EOF after a partial line is a framing error (truncated). *)
let rec read_line r =
  match String.index_from_opt r.buf r.pos '\n' with
  | Some nl ->
      let line = String.sub r.buf r.pos (nl - r.pos) in
      r.pos <- nl + 1;
      Ok (Some line)
  | None ->
      if refill r then read_line r
      else if r.pos >= String.length r.buf then Ok None
      else Error "stream truncated inside a frame header"

let rec read_exact r len =
  if String.length r.buf - r.pos >= len then begin
    let payload = String.sub r.buf r.pos len in
    r.pos <- r.pos + len;
    Ok payload
  end
  else if refill r then read_exact r len
  else Error "stream truncated inside a frame payload"

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let rec read r =
  Bgl_resilience.Failpoint.hit "serve.frame";
  match read_line r with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some line) ->
      let line =
        (* Tolerate CRLF from interactive clients. *)
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      if line = "" then read r
      else if String.length line > 0 && (line.[0] = '{' || line.[0] = '[') then
        (* Bare JSON line: a human on [nc] typed a payload without a
           length prefix. *)
        Ok (Some line)
      else if is_digits line then begin
        match int_of_string_opt line with
        | Some len when len <= max_frame -> (
            match read_exact r len with
            | Error _ as e -> e
            | Ok payload -> (
                (* Consume the frame's trailing newline (tolerating
                   CRLF and a missing terminator at EOF). *)
                match read_line r with
                | Ok (Some ("" | "\r")) | Ok None -> Ok (Some payload)
                | Ok (Some junk) ->
                    Error
                      (Printf.sprintf "expected frame terminator, got %S"
                         (String.sub junk 0 (min 32 (String.length junk))))
                | Error _ as e -> e))
        | _ ->
            Error
              (Printf.sprintf "frame length %s exceeds the %d-byte limit" line
                 max_frame)
      end
      else
        Error
          (Printf.sprintf "malformed frame header %S"
             (String.sub line 0 (min 32 (String.length line))))
