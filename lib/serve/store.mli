(** Durable request store — the server's crash-safety ladder.

    One directory holds, per request fingerprint [fp]:

    - [fp.req] — the raw request payload, fsync'd {e before} the
      [accepted] frame is sent (an acknowledged request survives
      SIGKILL);
    - [fp.journal] — the request's {!Bgl_core.Sweep} cell journal,
      appended by the sweep machinery as cells complete;
    - [fp.result] — the final result frame bytes, fsync'd at
      completion. Its presence marks the request done; a restarted
      server replays these bytes verbatim for a duplicate request —
      byte-identical, because result frames are deterministic in the
      request.

    Startup recovery ({!pending}) is the list of [.req] files without
    a [.result]: the work the previous process acknowledged but never
    finished. Re-executing such a request resumes its journal, so
    completed cells are replayed, not re-simulated, and the stitched
    trace attempts audit clean.

    All writes are atomic (tmp + fsync + rename + directory fsync):
    a crash leaves either the old state or the new, never a torn
    file. *)

type t

val create : dir:string -> t
(** Creates [dir] (one level) if missing. *)

val dir : t -> string

val record_request : t -> fp:string -> payload:string -> unit
val record_result : t -> fp:string -> frame:string -> unit

val result : t -> fp:string -> string option
(** The stored result frame, if the request already completed. *)

val journal_path : t -> fp:string -> string

val journal_exists : t -> fp:string -> bool

val remove : t -> fp:string -> unit
(** Forget a request (degraded outcome: nothing worth replaying).
    Removes [.req] and [.journal]; idempotent. *)

val pending : t -> (string * string) list
(** [(fp, payload)] for every acknowledged-but-unfinished request, in
    unspecified order. *)
