(** Length-prefixed JSONL framing over a file descriptor.

    Wire format, writer side: one frame is the decimal byte length of
    the payload, a newline, the payload (one JSON document, no
    newlines required), and a trailing newline:

    {v 14\n{"op":"ping"}\n v}

    The length prefix lets the reader pass arbitrary payloads (inline
    SWF logs contain newlines once unescaped — the JSON itself never
    does, but the prefix makes the framing independent of that) and
    reject oversized frames before buffering them. For hand-driven
    sessions ([nc -U]), the reader also accepts a {e bare} JSON line —
    a line starting with ['{'] is taken as a whole payload — so a
    human can type requests without counting bytes.

    Failpoint site: ["serve.frame"] (in {!read}, before decoding) and
    ["serve.write"] (in {!write}, before the write) — the codec's
    failure paths are deterministically testable. *)

val max_frame : int
(** Upper bound on a payload's byte length (16 MiB); longer frames are
    a framing error, never an allocation. *)

val write : Unix.file_descr -> string -> unit
(** Write one frame. Raises [Unix.Unix_error] on I/O failure (EPIPE
    when the peer vanished; EAGAIN when a send timeout set on the
    socket expired) and {!Bgl_resilience.Failpoint.Injected} from the
    ["serve.write"] site. *)

type reader

val reader : Unix.file_descr -> reader
(** A buffered frame reader. The descriptor is still owned by the
    caller (close it yourself). *)

val read : reader -> (string option, string) result
(** Next frame payload. [Ok None] is clean end-of-stream at a frame
    boundary; [Error] is a framing violation (junk header, oversized
    length, stream truncated inside a frame) — the stream cannot be
    resynchronised after it. Blank lines between frames are
    tolerated. Raises [Unix.Unix_error] on I/O failure and
    {!Bgl_resilience.Failpoint.Injected} from ["serve.frame"]. *)
