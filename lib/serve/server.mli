(** The bgl-served daemon: accept loop, connection threads, executor.

    Architecture (DESIGN.md §14):

    - the {e accept loop} (caller's thread) multiplexes a nonblocking
      listener through [select] so a shutdown flag set by a signal
      handler is observed within a tick;
    - one {e connection thread} per client parses frames, answers the
      inline ops ([ping] / [health] / [metrics]) immediately, and
      admits work through the bounded {!Admission} queue — full queue
      means a [rejected] frame with [retry_after], never unbounded
      buffering;
    - a single {e executor thread} runs admitted requests in order.
      Requests execute one at a time (the figure memo, journal and
      trace plumbing are single-writer state); each request's {e
      cells} fan out across a persistent {!Bgl_parallel.Pool}, so the
      machine is saturated by one request, not by request
      concurrency.

    Durability: an [accepted] request is fsync'd to the {!Store}
    before the frame is sent; sweep cells journal as they complete; a
    SIGKILL'd server re-executes unfinished requests at the next
    startup (before accepting traffic), resuming their journals — so
    completed cells replay instead of re-simulating and the response
    is byte-identical to the uninterrupted one. SIGTERM/SIGINT drain:
    stop accepting, finish and journal everything admitted, exit 0.

    Failpoint sites: ["serve.accept"] (drops the new connection),
    ["serve.frame"] (request read — degrades to an [error] frame on
    that connection), ["serve.write"] (response write — drops the
    frame). None of them takes the server down. *)

type listen = Unix_socket of string | Tcp of { host : string; port : int }

val listen_of_string : string -> (listen, string) result
(** ["unix:PATH"] (or a bare path), ["tcp:HOST:PORT"], [":PORT"]
    (binds 127.0.0.1). *)

val listen_to_string : listen -> string

type config = {
  listen : listen;
  state_dir : string;  (** request store + journals + traces *)
  domains : int;  (** persistent pool size *)
  queue_capacity : int;  (** admission bound *)
  memo_capacity : int;  (** result memo entries *)
  retry_after : float;  (** seconds, advertised in [rejected] frames *)
  heartbeat_every : int option;  (** engine progress lines to stderr *)
  log : Format.formatter;  (** server log lines (stderr by default) *)
}

val default_config : listen:listen -> state_dir:string -> config
(** Pool of {!Bgl_parallel.Pool.recommended} domains, queue bound 16,
    memo 64, retry-after 1s, no heartbeat, log to stderr. *)

val run : config -> (unit, Bgl_resilience.Error.t) result
(** Recover, listen, serve until SIGTERM/SIGINT, drain, return. Owns
    the calling thread. [Error] only for startup failures (state dir
    or socket unusable) — once serving, per-request and per-connection
    failures degrade to frames, never to an exit. *)
