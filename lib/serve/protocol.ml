open Bgl_core
module Jsonl = Bgl_obs.Jsonl

type sim = {
  scenario : Scenario.t;
  log : Bgl_trace.Job_log.t option;
  failures : Bgl_trace.Failure_log.t option;
  swf_digest : string option;
  flog_digest : string option;
}

type sweep = { figure : string; scale : Figures.scale }

type work = Sim of sim | Sweep of sweep

type request =
  | Ping
  | Health
  | Metrics
  | Work of { work : work; fuel : int option; deadline : float option }

(* --- parsing ---------------------------------------------------- *)

let ( let* ) = Result.bind

let str_field name v = Option.bind (Jsonl.member name v) Jsonl.to_string_opt
let num_field name v = Option.bind (Jsonl.member name v) Jsonl.to_float

let int_field name v =
  match num_field name v with
  | None -> Ok None
  | Some f ->
      if Float.is_integer f then Ok (Some (int_of_float f))
      else Error (Printf.sprintf "field %S must be an integer" name)

let pos_int_field name v =
  let* n = int_field name v in
  match n with
  | Some n when n < 1 -> Error (Printf.sprintf "field %S must be >= 1" name)
  | n -> Ok n

let budget_fields v =
  let* fuel = pos_int_field "fuel" v in
  let* deadline =
    match num_field "deadline" v with
    | Some d when d <= 0. -> Error "field \"deadline\" must be > 0"
    | d -> Ok d
  in
  Ok (fuel, deadline)

let profile_field v =
  match str_field "profile" v with
  | None -> Ok Bgl_workload.Profile.sdsc
  | Some name -> (
      match Bgl_workload.Profile.by_name name with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "unknown profile %S (nasa|sdsc|llnl)" name))

let dims_field v =
  match str_field "dims" v with
  | None -> Ok None
  | Some s ->
      let* d = Bgl_torus.Dims.of_string s in
      Ok (Some d)

let parse_sim v =
  let* profile = profile_field v in
  let* algo =
    match str_field "algo" v with
    | None -> Ok Scenario.Fault_oblivious
    | Some s -> Scenario.algo_of_string s
  in
  let* n_jobs = pos_int_field "jobs" v in
  let* seed = int_field "seed" v in
  let* failures_paper = int_field "failures" v in
  let load = num_field "load" v in
  let* dims = dims_field v in
  let scenario =
    Scenario.make ?n_jobs ?seed ?failures_paper ?load ?dims ~profile algo
  in
  let* log, swf_digest =
    match str_field "swf" v with
    | None -> Ok (None, None)
    | Some text -> (
        match Bgl_trace.Swf.of_string ~name:"inline" text with
        | Ok (log, _report) ->
            Ok (Some log, Some (Digest.to_hex (Digest.string text)))
        | Error e -> Error ("swf payload: " ^ e))
  in
  let* failures, flog_digest =
    match str_field "failure_log" v with
    | None -> Ok (None, None)
    | Some text -> (
        match Bgl_trace.Failure_log.of_string ~name:"inline" text with
        | Ok f -> Ok (Some f, Some (Digest.to_hex (Digest.string text)))
        | Error e -> Error ("failure_log payload: " ^ e))
  in
  if failures <> None && log = None then
    Error "failure_log payload requires an swf payload"
  else Ok (Sim { scenario; log; failures; swf_digest; flog_digest })

let parse_sweep v =
  let* figure =
    match str_field "figure" v with
    | None -> Error "sweep requires a \"figure\" field"
    | Some id -> (
        match Figures.by_id id with
        | Some _ -> Ok (String.lowercase_ascii (String.trim id))
        | None -> Error (Printf.sprintf "unknown figure %S" id))
  in
  let* n_jobs = pos_int_field "jobs" v in
  let* n_seeds = pos_int_field "seeds" v in
  let* dims = dims_field v in
  let quick = Figures.quick in
  let scale =
    {
      quick with
      Figures.n_jobs = Option.value n_jobs ~default:quick.Figures.n_jobs;
      seeds =
        (match n_seeds with
        | None -> quick.Figures.seeds
        | Some n -> List.init n (fun i -> 11 + i));
      dims = Option.value dims ~default:quick.Figures.dims;
    }
  in
  Ok (Sweep { figure; scale })

let parse payload =
  let* v =
    match Jsonl.parse payload with
    | Ok v -> Ok v
    | Error e -> Error ("request is not valid JSON: " ^ e)
  in
  match str_field "op" v with
  | None -> Error "request has no \"op\" field"
  | Some "ping" -> Ok Ping
  | Some "health" -> Ok Health
  | Some "metrics" -> Ok Metrics
  | Some (("sim" | "sweep") as op) ->
      let* work = if op = "sim" then parse_sim v else parse_sweep v in
      let* fuel, deadline = budget_fields v in
      Ok (Work { work; fuel; deadline })
  | Some op -> Error (Printf.sprintf "unknown op %S" op)

(* --- identity --------------------------------------------------- *)

let key = function
  | Ping | Health | Metrics -> None
  | Work { work; fuel; deadline = _ } ->
      let fuel = match fuel with None -> "-" | Some f -> string_of_int f in
      let body =
        match work with
        | Sim s ->
            Printf.sprintf "sim|%s|swf=%s|flog=%s"
              (Scenario.label s.scenario)
              (Option.value s.swf_digest ~default:"-")
              (Option.value s.flog_digest ~default:"-")
        | Sweep s ->
            Printf.sprintf "sweep|%s|jobs=%d|seeds=%s|a=%s|ff=%s|dims=%s"
              s.figure s.scale.Figures.n_jobs
              (String.concat "," (List.map string_of_int s.scale.Figures.seeds))
              (String.concat ","
                 (List.map string_of_float s.scale.Figures.a_values))
              (String.concat ","
                 (List.map string_of_float s.scale.Figures.fail_fracs))
              (Bgl_torus.Dims.to_string s.scale.Figures.dims)
      in
      Some (body ^ "|fuel=" ^ fuel)

let fingerprint r =
  match key r with None -> None | Some k -> Some (Digest.to_hex (Digest.string k))

(* --- response frames -------------------------------------------- *)

let ev name fields = Jsonl.obj (("ev", Jsonl.string name) :: fields)

let pong = ev "pong" []

let health ~status ~queue_depth ~inflight ~memo_hits ~memo_misses
    ~requests_total ~heartbeat =
  let hb =
    match heartbeat with
    | None -> []
    | Some (h : Bgl_obs.Heartbeat.snapshot) ->
        [
          ( "engine",
            Jsonl.obj
              [
                ("sim_time", Jsonl.float h.sim_time);
                ("queue", Jsonl.int h.queue_depth);
                ("running", Jsonl.int h.running);
                ("free_nodes", Jsonl.int h.free_nodes);
              ] );
        ]
  in
  ev "health"
    ([
       ("status", Jsonl.string status);
       ("queue_depth", Jsonl.int queue_depth);
       ("inflight", Jsonl.int inflight);
       ("memo_hits", Jsonl.int memo_hits);
       ("memo_misses", Jsonl.int memo_misses);
       ("requests_total", Jsonl.int requests_total);
     ]
    @ hb)

let metrics ~prometheus = ev "metrics" [ ("prometheus", Jsonl.string prometheus) ]

let accepted ~req ~queue_depth =
  ev "accepted"
    [ ("req", Jsonl.string req); ("queue_depth", Jsonl.int queue_depth) ]

let rejected ~queue_depth ~retry_after =
  ev "rejected"
    [
      ("queue_depth", Jsonl.int queue_depth);
      ("retry_after", Jsonl.float retry_after);
    ]

let cell ~req ~label ~report =
  ev "cell"
    [
      ("req", Jsonl.string req);
      ("label", Jsonl.string label);
      ("report", Bgl_sim.Metrics.report_to_json report);
    ]

let result_sim ~req ~report =
  ev "result"
    [
      ("req", Jsonl.string req);
      ("kind", Jsonl.string "sim");
      ("report", Bgl_sim.Metrics.report_to_json report);
    ]

let points_json points =
  "["
  ^ String.concat ","
      (List.map
         (fun (x, y) -> "[" ^ Jsonl.float x ^ "," ^ Jsonl.float y ^ "]")
         points)
  ^ "]"

let series_json (s : Series.series) =
  Jsonl.obj
    [ ("label", Jsonl.string s.label); ("points", points_json s.points) ]

let figure_json (f : Series.figure) =
  Jsonl.obj
    [
      ("id", Jsonl.string f.id);
      ("title", Jsonl.string f.title);
      ("xlabel", Jsonl.string f.xlabel);
      ("ylabel", Jsonl.string f.ylabel);
      ("series", "[" ^ String.concat "," (List.map series_json f.series) ^ "]");
    ]

let result_sweep ~req ~figures ~quarantined =
  let quarantined_field =
    match quarantined with
    | [] -> []
    | cells ->
        [
          ( "quarantined",
            "["
            ^ String.concat "," (List.map Jsonl.string cells)
            ^ "]" );
        ]
  in
  ev "result"
    ([
       ("req", Jsonl.string req);
       ("kind", Jsonl.string "sweep");
       ("figures", "[" ^ String.concat "," (List.map figure_json figures) ^ "]");
     ]
    @ quarantined_field)

let error ?req ~code detail =
  let req = match req with None -> [] | Some r -> [ ("req", Jsonl.string r) ] in
  ev "error" (req @ [ ("code", Jsonl.int code); ("detail", Jsonl.string detail) ])
