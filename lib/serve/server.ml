open Bgl_resilience

type listen = Unix_socket of string | Tcp of { host : string; port : int }

let listen_of_string s =
  let tcp host port =
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 ->
        Ok (Tcp { host = (if host = "" then "127.0.0.1" else host); port = p })
    | _ -> Error (Printf.sprintf "bad port %S" port)
  in
  match String.index_opt s ':' with
  | None -> if s = "" then Error "empty listen address" else Ok (Unix_socket s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" -> if rest = "" then Error "unix: needs a path" else Ok (Unix_socket rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error "tcp: needs HOST:PORT"
          | Some j ->
              tcp (String.sub rest 0 j)
                (String.sub rest (j + 1) (String.length rest - j - 1)))
      | "" -> tcp "" rest
      | _ -> Error (Printf.sprintf "unknown listen scheme %S" scheme))

let listen_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

type config = {
  listen : listen;
  state_dir : string;
  domains : int;
  queue_capacity : int;
  memo_capacity : int;
  retry_after : float;
  heartbeat_every : int option;
  log : Format.formatter;
}

let default_config ~listen ~state_dir =
  {
    listen;
    state_dir;
    domains = Bgl_parallel.Pool.recommended ();
    queue_capacity = 16;
    memo_capacity = 64;
    retry_after = 1.0;
    heartbeat_every = None;
    log = Format.err_formatter;
  }

(* --- server state ----------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  send_lock : Mutex.t;
  mutable alive : bool;
}

type job = {
  fp : string;
  payload : string;
  work : Protocol.work;
  fuel : int option;
  deadline : float option;
  conn : conn option;  (** [None] for recovered requests *)
}

type t = {
  config : config;
  store : Store.t;
  memo : Memo.t;
  queue : job Admission.t;
  pool : Bgl_parallel.Pool.Persistent.t;
  stopping : bool Atomic.t;
  heartbeat : Bgl_obs.Heartbeat.t option;
  registry : Bgl_obs.Registry.t;
  c_requests : Bgl_obs.Registry.counter;
  c_rejected : Bgl_obs.Registry.counter;
  c_results : Bgl_obs.Registry.counter;
  c_errors : Bgl_obs.Registry.counter;
  g_queue : Bgl_obs.Registry.gauge;
  g_inflight : Bgl_obs.Registry.gauge;
  g_memo_hits : Bgl_obs.Registry.gauge;
  g_memo_misses : Bgl_obs.Registry.gauge;
  conns_lock : Mutex.t;
  mutable conns : (conn * Thread.t) list;
}

let logf t fmt =
  Format.fprintf t.config.log ("[bgl-served] " ^^ fmt ^^ "@.")

(* --- frame sending ---------------------------------------------- *)

(* Caller holds [conn.send_lock]. A peer that vanished (EPIPE /
   ECONNRESET / send-timeout EAGAIN) or raised an injected
   ["serve.write"] fault costs this frame — and for I/O errors the
   connection — never the server. *)
let send_unlocked t conn frame =
  if conn.alive then
    try Frame.write conn.fd frame with
    | Unix.Unix_error _ -> conn.alive <- false
    | Failpoint.Injected { site; _ } ->
        Bgl_obs.Registry.inc t.c_errors;
        logf t "dropped a frame (injected fault at %s)" site

let send t conn frame =
  Mutex.lock conn.send_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.send_lock)
    (fun () -> send_unlocked t conn frame)

let send_opt t job frame =
  match job.conn with None -> () | Some conn -> send t conn frame

(* --- per-request traces ----------------------------------------- *)

(* Same flush discipline as Obs_cli: force the line buffer out at each
   section trailer so trace durability stays ahead of the journal
   append that follows it. *)
let contains_summary line =
  let needle = {|"ev":"run_summary"|} in
  let n = String.length needle and h = String.length line in
  let rec hit i j = j = n || (line.[i + j] = needle.[j] && hit i (j + 1)) in
  let rec go i = i + n <= h && (hit i 0 || go (i + 1)) in
  go 0

(* Each execution attempt of a request writes its own numbered trace
   file; after a kill-and-resume, [fp.trace.1 fp.trace.2 ...] audit as
   one stitched stream (the resumed attempt declares its parent via
   the journal digest {!Bgl_core.Sweep.run} installs). *)
let with_trace t ~fp f =
  let rec fresh n =
    let path =
      Filename.concat (Store.dir t.store) (Printf.sprintf "%s.trace.%d" fp n)
    in
    if Sys.file_exists path then fresh (n + 1) else path
  in
  let oc = open_out_bin (fresh 1) in
  Bgl_obs.Runtime.set_trace_writer
    (Some
       (fun line ->
         output_string oc (line ^ "\n");
         if contains_summary line then flush oc));
  Fun.protect
    ~finally:(fun () ->
      Bgl_obs.Runtime.set_trace_writer None;
      Bgl_obs.Runtime.set_trace_parent None;
      flush oc;
      close_out oc)
    f

(* --- request execution (executor thread only) -------------------- *)

let exec_sim job policy (s : Protocol.sim) =
  let run () =
    match s.log with
    | None -> (Bgl_core.Scenario.run s.scenario).Bgl_sim.Engine.report
    | Some log ->
        let failures =
          match s.failures with
          | Some f -> f
          | None ->
              Bgl_core.Scenario.synthetic_failures
                ~log:
                  (Bgl_trace.Job_log.scale_runtime log
                     ~c:s.scenario.Bgl_core.Scenario.load)
                s.scenario
        in
        (Bgl_core.Scenario.run_on ~run_tag:job.fp ~log ~failures s.scenario)
          .Bgl_sim.Engine.report
  in
  match Supervise.run policy run with
  | Supervise.Completed { value = report; _ } ->
      (Protocol.result_sim ~req:job.fp ~report, true)
  | Supervise.Quarantined err ->
      ( Protocol.error ~req:job.fp ~code:3
          (Printf.sprintf "quarantined after %d attempt%s: %s" err.attempts
             (if err.attempts = 1 then "" else "s")
             err.message),
        false )

let exec_sweep t job policy (s : Protocol.sweep) =
  (* Cell-level sharing is per-request: each sweep starts from a clean
     figure memo so a previous request's quarantine placeholders can
     never leak into this one's points. Cross-request sharing happens
     at whole-request granularity ({!Memo} / {!Store}) and through
     this request's own journal on resume. *)
  Bgl_core.Figures.clear_cache ();
  let producer =
    match Bgl_core.Figures.by_id s.figure with
    | Some p -> p
    | None -> assert false (* validated at parse *)
  in
  let jpath = Store.journal_path t.store ~fp:job.fp in
  let journal =
    if Store.journal_exists t.store ~fp:job.fp then Bgl_core.Sweep.Resume jpath
    else Bgl_core.Sweep.Fresh jpath
  in
  let on_cell sc report =
    match job.conn with
    | None -> ()
    | Some conn ->
        send t conn
          (Protocol.cell ~req:job.fp ~label:(Bgl_core.Scenario.label sc) ~report)
  in
  match
    Bgl_core.Sweep.run ~policy ~journal ~pool:t.pool ~on_cell ~domains:1
      producer s.scale
  with
  | Error e ->
      (Protocol.error ~req:job.fp ~code:(Error.exit_code e) (Error.to_string e), false)
  | Ok outcome ->
      let quarantined =
        List.map
          (fun (c : Bgl_core.Sweep.cell_failure) -> c.Bgl_core.Sweep.label)
          outcome.Bgl_core.Sweep.quarantined
      in
      ( Protocol.result_sweep ~req:job.fp ~figures:outcome.Bgl_core.Sweep.figures
          ~quarantined,
        quarantined = [] )

let execute t job =
  match Store.result t.store ~fp:job.fp with
  | Some frame ->
      (* A duplicate admitted while the original was still queued. *)
      Memo.add t.memo job.fp frame;
      send_opt t job frame
  | None ->
      let policy =
        match (job.fuel, job.deadline) with
        | None, None -> Supervise.default
        | fuel, deadline ->
            {
              Supervise.default with
              Supervise.budget = Some (fun () -> Budget.make ?fuel ?deadline ());
            }
      in
      let frame, completed =
        Bgl_obs.Span.time ~name:"serve.request" (fun () ->
            with_trace t ~fp:job.fp (fun () ->
                match job.work with
                | Protocol.Sim s -> exec_sim job policy s
                | Protocol.Sweep s -> exec_sweep t job policy s))
      in
      if completed then begin
        Store.record_result t.store ~fp:job.fp ~frame;
        Memo.add t.memo job.fp frame;
        Bgl_obs.Registry.inc t.c_results
      end
      else begin
        (* Degraded: nothing worth replaying — forget the request so a
           restart does not loop on it. *)
        Store.remove t.store ~fp:job.fp;
        Bgl_obs.Registry.inc t.c_errors
      end;
      send_opt t job frame

let rec executor_loop t =
  match Admission.take t.queue with
  | None -> ()
  | Some job ->
      Bgl_obs.Registry.set t.g_queue (float_of_int (Admission.depth t.queue));
      Bgl_obs.Registry.set t.g_inflight 1.;
      (try execute t job
       with e ->
         (* The executor survives anything a request throws at it. *)
         Bgl_obs.Registry.inc t.c_errors;
         logf t "request %s failed: %s" job.fp (Printexc.to_string e);
         send_opt t job
           (Protocol.error ~req:job.fp ~code:(Error.exit_code (Error.of_exn e))
              (Printexc.to_string e)));
      Bgl_obs.Registry.set t.g_inflight 0.;
      executor_loop t

(* --- inline ops and admission (connection threads) ---------------- *)

let health_frame t =
  Protocol.health
    ~status:(if Atomic.get t.stopping then "draining" else "ok")
    ~queue_depth:(Admission.depth t.queue)
    ~inflight:(int_of_float (Bgl_obs.Registry.gauge_value t.g_inflight))
    ~memo_hits:(Memo.hits t.memo) ~memo_misses:(Memo.misses t.memo)
    ~requests_total:
      (int_of_float (Bgl_obs.Registry.counter_value t.c_requests))
    ~heartbeat:(Option.bind t.heartbeat Bgl_obs.Heartbeat.last)

let metrics_frame t =
  Bgl_obs.Registry.set t.g_queue (float_of_int (Admission.depth t.queue));
  Bgl_obs.Registry.set t.g_memo_hits (float_of_int (Memo.hits t.memo));
  Bgl_obs.Registry.set t.g_memo_misses (float_of_int (Memo.misses t.memo));
  Bgl_obs.Span.export t.registry;
  Protocol.metrics ~prometheus:(Bgl_obs.Registry.to_prometheus t.registry)

let admit t conn req ~payload =
  match (req : Protocol.request) with
  | Protocol.Ping | Protocol.Health | Protocol.Metrics -> assert false
  | Protocol.Work { work; fuel; deadline } -> (
      Bgl_obs.Registry.inc t.c_requests;
      let fp = Option.get (Protocol.fingerprint req) in
      match Memo.find t.memo fp with
      | Some frame -> send t conn frame
      | None -> (
          match Store.result t.store ~fp with
          | Some frame ->
              Memo.add t.memo fp frame;
              send t conn frame
          | None ->
              let job = { fp; payload; work; fuel; deadline; conn = Some conn } in
              (* Hold the send lock across submit + ack so the
                 [accepted] frame is on the wire before the executor
                 can emit the first frame for this job (its sends
                 queue on the same lock). *)
              Mutex.lock conn.send_lock;
              Fun.protect
                ~finally:(fun () -> Mutex.unlock conn.send_lock)
                (fun () ->
                  match Admission.submit t.queue job with
                  | Admission.Admitted depth ->
                      Store.record_request t.store ~fp ~payload;
                      Bgl_obs.Registry.set t.g_queue (float_of_int depth);
                      send_unlocked t conn
                        (Protocol.accepted ~req:fp ~queue_depth:depth)
                  | Admission.Full depth ->
                      Bgl_obs.Registry.inc t.c_rejected;
                      send_unlocked t conn
                        (Protocol.rejected ~queue_depth:depth
                           ~retry_after:t.config.retry_after)
                  | Admission.Draining ->
                      send_unlocked t conn
                        (Protocol.error ~req:fp ~code:74
                           "server is draining; retry after restart"))))

let handle_request t conn payload =
  match Protocol.parse payload with
  | Error detail -> send t conn (Protocol.error ~code:2 detail)
  | Ok Protocol.Ping -> send t conn Protocol.pong
  | Ok Protocol.Health -> send t conn (health_frame t)
  | Ok Protocol.Metrics -> send t conn (metrics_frame t)
  | Ok (Protocol.Work _ as req) -> admit t conn req ~payload

let conn_loop t conn =
  let reader = Frame.reader conn.fd in
  (* [faults] counts consecutive injected read faults: one degrades to
     an [error] frame, a streak closes the connection so an
     always-armed site cannot spin the thread. *)
  let rec loop faults =
    match Frame.read reader with
    | Ok None -> ()
    | Ok (Some payload) ->
        handle_request t conn payload;
        if conn.alive then loop 0
    | Error detail ->
        (* The stream cannot be resynchronised after a framing error:
           answer once, then hang up. *)
        send t conn (Protocol.error ~code:65 ("framing: " ^ detail))
    | exception Failpoint.Injected { site; _ } ->
        Bgl_obs.Registry.inc t.c_errors;
        send t conn
          (Protocol.error ~code:74 (Printf.sprintf "injected fault at %s" site));
        if faults < 2 then loop (faults + 1)
    | exception Unix.Unix_error _ -> ()
  in
  (try loop 0
   with e -> logf t "connection thread died: %s" (Printexc.to_string e));
  conn.alive <- false;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_lock;
  t.conns <- List.filter (fun (c, _) -> c != conn) t.conns;
  Mutex.unlock t.conns_lock

(* --- startup: recovery and the listener -------------------------- *)

let recover t =
  match Store.pending t.store with
  | [] -> ()
  | pending ->
      logf t "recovering %d unfinished request%s" (List.length pending)
        (if List.length pending = 1 then "" else "s");
      List.iter
        (fun (fp, payload) ->
          match Protocol.parse payload with
          | Ok (Protocol.Work { work; fuel; deadline }) ->
              logf t "re-executing %s" fp;
              let job = { fp; payload; work; fuel; deadline; conn = None } in
              (try execute t job
               with e ->
                 logf t "recovery of %s failed: %s" fp (Printexc.to_string e))
          | Ok _ | Error _ ->
              logf t "dropping unreadable stored request %s" fp;
              Store.remove t.store ~fp)
        pending

let listener config =
  match config.listen with
  | Unix_socket path ->
      (* A stale socket file from a killed server would make bind fail;
         it is only ever ours (the path is the caller's to manage). *)
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp { host; port } ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen fd 64;
      fd

let accept_loop t lfd =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ lfd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true lfd with
          | cfd, _ -> (
              Unix.clear_nonblock cfd;
              (* Bound how long a send to a slow or dead client can
                 block the executor; on expiry the frame is dropped
                 and the connection marked dead. *)
              (try Unix.setsockopt_float cfd Unix.SO_SNDTIMEO 10.
               with Unix.Unix_error _ | Invalid_argument _ -> ());
              match Failpoint.hit "serve.accept" with
              | () ->
                  let conn =
                    { fd = cfd; send_lock = Mutex.create (); alive = true }
                  in
                  Mutex.lock t.conns_lock;
                  t.conns <- (conn, Thread.create (conn_loop t) conn) :: t.conns;
                  Mutex.unlock t.conns_lock
              | exception Failpoint.Injected _ ->
                  Bgl_obs.Registry.inc t.c_errors;
                  (try Unix.close cfd with Unix.Unix_error _ -> ()))
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
            -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* --- lifecycle --------------------------------------------------- *)

let run config =
  Error.ignore_sigpipe ();
  let store = Store.create ~dir:config.state_dir in
  let registry = Bgl_obs.Registry.create () in
  Bgl_obs.Runtime.set_registry registry;
  let heartbeat =
    Option.map
      (fun every -> Bgl_obs.Heartbeat.create ~out:config.log ~every ())
      config.heartbeat_every
  in
  Bgl_obs.Runtime.set_heartbeat heartbeat;
  let t =
    {
      config;
      store;
      memo = Memo.create ~capacity:config.memo_capacity;
      queue = Admission.create ~capacity:config.queue_capacity;
      pool = Bgl_parallel.Pool.Persistent.create ~domains:config.domains;
      stopping = Atomic.make false;
      heartbeat;
      registry;
      c_requests = Bgl_obs.Registry.counter registry "bgl_serve_requests_total";
      c_rejected = Bgl_obs.Registry.counter registry "bgl_serve_rejected_total";
      c_results = Bgl_obs.Registry.counter registry "bgl_serve_results_total";
      c_errors = Bgl_obs.Registry.counter registry "bgl_serve_errors_total";
      g_queue = Bgl_obs.Registry.gauge registry "bgl_serve_queue_depth";
      g_inflight = Bgl_obs.Registry.gauge registry "bgl_serve_inflight";
      g_memo_hits = Bgl_obs.Registry.gauge registry "bgl_serve_memo_hits";
      g_memo_misses = Bgl_obs.Registry.gauge registry "bgl_serve_memo_misses";
      conns_lock = Mutex.create ();
      conns = [];
    }
  in
  (* Signals first: a SIGTERM that lands during recovery must set the
     drain flag, not kill the process mid-journal. *)
  let stop _signal = Atomic.set t.stopping true in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle stop) in
  let finish () =
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigint prev_int;
    Bgl_parallel.Pool.Persistent.shutdown t.pool;
    Bgl_obs.Runtime.reset ()
  in
  (* Finish what a killed predecessor acknowledged before taking new
     traffic: recovered responses are already durable when the client
     retries its request. *)
  (try recover t
   with e ->
     finish ();
     raise e);
  match listener config with
  | exception Unix.Unix_error (err, fn, arg) ->
      finish ();
      Error
        (Error.Io
           {
             path = listen_to_string config.listen;
             detail = Printf.sprintf "%s %s: %s" fn arg (Unix.error_message err);
           })
  | lfd ->
      Unix.set_nonblock lfd;
      let executor = Thread.create executor_loop t in
      logf t "listening on %s (pool=%d queue=%d)"
        (listen_to_string config.listen)
        (Bgl_parallel.Pool.Persistent.size t.pool)
        (Admission.capacity t.queue);
      accept_loop t lfd;
      (* Drain: stop accepting, finish everything admitted, then close
         the lingering connections and leave. *)
      logf t "draining (%d queued)" (Admission.depth t.queue);
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (match config.listen with
      | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ());
      Admission.drain t.queue;
      Thread.join executor;
      Mutex.lock t.conns_lock;
      let conns = t.conns in
      Mutex.unlock t.conns_lock;
      List.iter
        (fun (conn, _) ->
          try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        conns;
      List.iter (fun (_, thread) -> Thread.join thread) conns;
      finish ();
      logf t "drained, exiting";
      Ok ()
