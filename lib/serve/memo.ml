type t = {
  lock : Mutex.t;
  table : (string, string) Hashtbl.t;
  order : string Queue.t;  (** insertion order, for FIFO eviction *)
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Memo.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    table = Hashtbl.create capacity;
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
          t.hits <- t.hits + 1;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t key value =
  locked t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        Queue.add key t.order;
        while Queue.length t.order > t.capacity do
          Hashtbl.remove t.table (Queue.take t.order)
        done
      end;
      Hashtbl.replace t.table key value)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let length t = locked t (fun () -> Hashtbl.length t.table)
