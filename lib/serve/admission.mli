(** Bounded admission queue with explicit backpressure.

    The accept-side threads {!submit} work items; the single executor
    thread {!take}s them. The queue never grows past its capacity:
    when it is full, {!submit} answers [Full] immediately and the
    connection layer sends the client a [rejected] frame with a
    [retry_after] hint — the server never buffers unboundedly, and
    never blocks the accept loop on the executor.

    Draining ({!drain}) flips the queue into shutdown mode: further
    submissions answer [Draining], and {!take} returns the remaining
    items then [None] — the SIGTERM path finishes admitted work and
    stops. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

type 'a submitted =
  | Admitted of int  (** queue depth after insertion *)
  | Full of int  (** queue depth (= capacity); retry later *)
  | Draining  (** server is shutting down; go elsewhere *)

val submit : 'a t -> 'a -> 'a submitted
(** Never blocks. *)

val take : 'a t -> 'a option
(** Block until an item is available ([Some]) or the queue is draining
    {e and} empty ([None], terminal). Single-consumer by convention;
    multiple consumers are safe but see items in unspecified order. *)

val drain : 'a t -> unit
(** Idempotent. Wakes any blocked {!take}. *)

val depth : 'a t -> int
(** Items admitted and not yet taken (advisory — racy by nature). *)

val capacity : 'a t -> int
