type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable draining : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    draining = false;
  }

type 'a submitted = Admitted of int | Full of int | Draining

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let submit t x =
  locked t (fun () ->
      if t.draining then Draining
      else if Queue.length t.items >= t.capacity then Full (Queue.length t.items)
      else begin
        Queue.add x t.items;
        Condition.signal t.nonempty;
        Admitted (Queue.length t.items)
      end)

let take t =
  locked t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.take t.items)
        else if t.draining then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let drain t =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.nonempty)

let depth t = locked t (fun () -> Queue.length t.items)
let capacity t = t.capacity
