type t = { dir : string }

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let create ~dir =
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  { dir }

let dir t = t.dir

let path t name = Filename.concat t.dir name

let atomic_write t name contents =
  let tmp = path t (name ^ ".tmp") in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let rec loop off len =
        if len > 0 then begin
          let n = Unix.write_substring fd contents off len in
          loop (off + n) (len - n)
        end
      in
      loop 0 (String.length contents);
      Unix.fsync fd);
  Unix.rename tmp (path t name);
  fsync_dir t.dir

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let record_request t ~fp ~payload = atomic_write t (fp ^ ".req") payload
let record_result t ~fp ~frame = atomic_write t (fp ^ ".result") frame

let result t ~fp =
  let p = path t (fp ^ ".result") in
  if Sys.file_exists p then Some (read_file p) else None

let journal_path t ~fp = path t (fp ^ ".journal")
let journal_exists t ~fp = Sys.file_exists (journal_path t ~fp)

let remove t ~fp =
  List.iter
    (fun name ->
      try Sys.remove (path t name) with Sys_error _ -> ())
    [ fp ^ ".req"; fp ^ ".journal" ]

let pending t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter_map (fun name ->
         match Filename.chop_suffix_opt ~suffix:".req" name with
         | None -> None
         | Some fp ->
             if Sys.file_exists (path t (fp ^ ".result")) then None
             else Some (fp, read_file (path t name)))
