(** The bgl-served request/response vocabulary.

    Requests are one JSON object per frame with an ["op"] field:

    - [{"op":"ping"}] — liveness probe, answered inline;
    - [{"op":"health"}] — queue depth, in-flight count, memo stats;
    - [{"op":"metrics"}] — the live registry in Prometheus exposition
      format;
    - [{"op":"sim", ...}] — one scenario run: [profile], [algo]
      (through {!Bgl_core.Scenario.algo_of_string}), [jobs], [load],
      [failures] (paper scale), [seed], [dims] ("8x8x8"), optional
      inline [swf] and [failure_log] payloads, optional [fuel] /
      [deadline] budget;
    - [{"op":"sweep", ...}] — one figure sweep: [figure] (an
      {!Bgl_core.Figures.by_id} id), [jobs], [seeds] (replication
      count), [dims], [fuel], [deadline].

    Responses are frames with an ["ev"] field: [pong], [health],
    [metrics], [accepted], [rejected] (backpressure, with
    [retry_after]), [cell] (per-cell progress), [result], [error].
    [result] frames are {e deterministic in the request}: they carry
    no queue positions, timings, or cache markers, so a response
    replayed from the store after a crash is byte-identical to the one
    a live run would have produced. Run-dependent colour lives only in
    the advisory [accepted] / [cell] / [health] frames. *)

type sim = {
  scenario : Bgl_core.Scenario.t;
  log : Bgl_trace.Job_log.t option;  (** parsed inline SWF payload *)
  failures : Bgl_trace.Failure_log.t option;  (** parsed inline failure log *)
  swf_digest : string option;  (** digest of the raw payload, for {!key} *)
  flog_digest : string option;
}

type sweep = { figure : string; scale : Bgl_core.Figures.scale }

type work = Sim of sim | Sweep of sweep

type request =
  | Ping
  | Health
  | Metrics
  | Work of { work : work; fuel : int option; deadline : float option }

val parse : string -> (request, string) result
(** Parse and validate one request payload. Inline SWF / failure-log
    payloads are parsed here, so a poison request dies at admission
    with a clean [error] frame instead of poisoning the executor. *)

val key : request -> string option
(** Canonical semantic key of a work request ([None] for the inline
    ops). Two requests with the same key compute the same result:
    the key spells out the scenario label (which includes config and
    dims), payload digests, figure id, scale, and [fuel] — but not
    [deadline], which is wall-clock and cannot change a {e completed}
    result (a deadline overrun degrades the request, and degraded
    results are never stored or memoized). *)

val fingerprint : request -> string option
(** Hex digest of {!key} — the request's identity in the admission
    queue, the durable store, and every response frame's ["req"]. *)

(** {1 Response frames} *)

val pong : string

val health :
  status:string ->
  queue_depth:int ->
  inflight:int ->
  memo_hits:int ->
  memo_misses:int ->
  requests_total:int ->
  heartbeat:Bgl_obs.Heartbeat.snapshot option ->
  string

val metrics : prometheus:string -> string

val accepted : req:string -> queue_depth:int -> string

val rejected : queue_depth:int -> retry_after:float -> string
(** The backpressure frame: admission queue full, try again in
    [retry_after] seconds. *)

val cell : req:string -> label:string -> report:Bgl_sim.Metrics.report -> string

val result_sim : req:string -> report:Bgl_sim.Metrics.report -> string

val result_sweep :
  req:string ->
  figures:Bgl_core.Series.figure list ->
  quarantined:string list ->
  string
(** [quarantined] non-empty marks a degraded sweep (those cells'
    figure points are placeholders); degraded results are sent but
    never stored. *)

val error : ?req:string -> code:int -> string -> string
(** [code] is the {!Bgl_resilience.Error.exit_code} the same failure
    would produce in a CLI. *)
