(** Cross-request result memoization.

    Completed (non-degraded) result frames are cached under the
    request {!Protocol.fingerprint}, so a repeated request is answered
    from memory without touching the executor queue — and answered
    with the {e same bytes}, because result frames are deterministic
    in the request. Bounded FIFO eviction; hit/miss counts feed the
    [health] frame and the bench's hit-ratio number.

    Thread-safe: connection threads probe it at admission while the
    executor inserts. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val find : t -> string -> string option
(** Counts a hit or a miss. *)

val add : t -> string -> string -> unit
(** Insert (or refresh) a result, evicting the oldest entry past
    capacity. *)

val hits : t -> int
val misses : t -> int
val length : t -> int
