(** Synthetic failure-trace generation.

    Stands in for the proprietary one-year, 350-node cluster failure
    logs of Sahoo et al. (2003) that the paper replays. The generator
    reproduces the two structural properties the paper's analysis
    leans on:

    - {b temporal burstiness} — "many instances of multiple failure
      events, simultaneously reported from different nodes": events
      arrive in bursts (Poisson burst arrivals, geometric burst sizes,
      small intra-burst jitter);
    - {b spatial skew} — a minority of nodes produces a majority of
      events: per-node propensities follow a Zipf law over a seeded
      random permutation of the torus.

    The event count is exact, matching the paper's practice of scaling
    traces to a fixed number of failures (4000 for NASA/SDSC runs,
    1000 for LLNL runs), and the span is aligned to the job log. *)

type spec = {
  n_events : int;  (** exact number of events to produce *)
  span : float;  (** events lie in [\[0, span\]] *)
  volume : int;  (** number of nodes (torus volume) *)
  burst_mean_size : float;  (** mean events per burst, >= 1 *)
  burst_jitter : float;  (** max seconds between events of one burst *)
  node_skew : float;  (** Zipf exponent of per-node propensity, >= 0 *)
  seed : int;
}

val default : span:float -> volume:int -> n_events:int -> seed:int -> spec
(** Burstiness and skew defaults calibrated to the qualitative shape
    reported for the source logs: mean burst size 3, 30 s jitter,
    Zipf skew 1.4. *)

val generate : spec -> Bgl_trace.Failure_log.t
(** Deterministic in [seed]. Produces exactly [n_events] events. *)

val poisson_uniform : span:float -> volume:int -> n_events:int -> seed:int -> Bgl_trace.Failure_log.t
(** Baseline trace with no burstiness and no skew (independent uniform
    times, uniform nodes) — the ablation comparator. *)
