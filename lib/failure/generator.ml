open Bgl_stats

type spec = {
  n_events : int;
  span : float;
  volume : int;
  burst_mean_size : float;
  burst_jitter : float;
  node_skew : float;
  seed : int;
}

let default ~span ~volume ~n_events ~seed =
  { n_events; span; volume; burst_mean_size = 3.; burst_jitter = 30.; node_skew = 1.4; seed }

let validate spec =
  if spec.n_events < 0 then invalid_arg "Generator: negative n_events";
  if spec.span <= 0. then invalid_arg "Generator: span must be positive";
  if spec.volume <= 0 then invalid_arg "Generator: volume must be positive";
  if spec.burst_mean_size < 1. then invalid_arg "Generator: burst_mean_size must be >= 1";
  if spec.node_skew < 0. then invalid_arg "Generator: node_skew must be >= 0"

let generate spec =
  validate spec;
  let master = Rng.create ~seed:spec.seed in
  let time_rng = Rng.split master ~label:"times" in
  let node_rng = Rng.split master ~label:"nodes" in
  (* Per-node propensity: Zipf over a random permutation, so the flaky
     nodes are scattered across the torus rather than clustered at
     index 0. *)
  let weights = Dist.zipf_weights ~n:spec.volume ~skew:spec.node_skew in
  let perm = Array.init spec.volume Fun.id in
  Rng.shuffle node_rng perm;
  let node_weights = Array.make spec.volume 0. in
  Array.iteri (fun rank node -> node_weights.(node) <- weights.(rank)) perm;
  let draw_node () = Dist.categorical node_rng node_weights in
  (* Bursts until the event budget is spent; the last burst is trimmed,
     so the count is exact. *)
  let p_burst = 1. /. spec.burst_mean_size in
  let events = ref [] in
  let remaining = ref spec.n_events in
  while !remaining > 0 do
    let burst_time = Rng.float time_rng spec.span in
    let burst_size = min !remaining (Dist.geometric time_rng ~p:p_burst) in
    for _ = 1 to burst_size do
      let time = Float.min spec.span (burst_time +. Rng.float time_rng spec.burst_jitter) in
      events := { Bgl_trace.Failure_log.time; node = draw_node () } :: !events
    done;
    remaining := !remaining - burst_size
  done;
  let name =
    Printf.sprintf "synth-failures(n=%d,span=%.0f,seed=%d)" spec.n_events spec.span spec.seed
  in
  Bgl_trace.Failure_log.make ~name !events

let poisson_uniform ~span ~volume ~n_events ~seed =
  let spec =
    { n_events; span; volume; burst_mean_size = 1.; burst_jitter = 0.; node_skew = 0.; seed }
  in
  let log = generate spec in
  { log with name = Printf.sprintf "uniform-failures(n=%d,seed=%d)" n_events seed }
