(** Standard Workload Format (SWF) interchange.

    The Parallel Workloads Archive logs the paper uses (NASA iPSC/860,
    SDSC SP, LLNL Cray T3D) are distributed in SWF: one job per line,
    18 whitespace-separated fields, [;] comment/header lines. This
    module reads the fields the simulator needs and can write logs
    back out, so real archive files can be dropped into the harness in
    place of the synthetic generators.

    Field usage (1-based SWF numbering): 1 job number, 2 submit time,
    4 run time, 5 allocated processors, 8 requested processors
    (fallback when 5 is -1), 9 requested time (estimate; falls back to
    run time when absent). Jobs with unknown (-1) run time or
    processor count are skipped and counted in the report. *)

type parse_report = {
  parsed : int;
  skipped : int;  (** well-formed lines without usable run time/size *)
  malformed : int list;  (** 1-based line numbers that failed to parse *)
}

val of_string : name:string -> string -> (Job_log.t * parse_report, string) result
(** Parse SWF text. Fails only when no job at all can be recovered or a
    recovered job violates {!Job_log.make} validation. *)

val load : string -> (Job_log.t * parse_report, string) result
(** Read a file; the log is named after the file's basename. *)

val to_string : Job_log.t -> string
(** Render as SWF with a header comment; unknown fields are -1. *)

val save : Job_log.t -> string -> unit
