type parse_report = {
  parsed : int;
  skipped : int;
  malformed : int list;
}

(* SWF numbers fields from 1; [field fs i] is field i or None. *)
let field fs i = List.nth_opt fs (i - 1)

let float_field fs i =
  match field fs i with
  | None -> None
  | Some s -> ( match float_of_string_opt s with Some v when v >= 0. -> Some v | _ -> None)

let int_field fs i =
  match field fs i with
  | None -> None
  | Some s -> ( match int_of_string_opt s with Some v when v >= 0 -> Some v | _ -> None)

let parse_job fs =
  match (int_field fs 1, float_field fs 2, float_field fs 4) with
  | Some id, Some submit, Some run_time when run_time > 0. ->
      let size =
        match int_field fs 5 with
        | Some p when p > 0 -> Some p
        | _ -> ( match int_field fs 8 with Some p when p > 0 -> Some p | _ -> None)
      in
      (match size with
      | None -> `Skip
      | Some size ->
          let estimate =
            match float_field fs 9 with Some e when e > 0. -> max e run_time | _ -> run_time
          in
          `Job { Job_log.id; arrival = submit; size; run_time; estimate })
  | Some _, Some _, _ -> `Skip
  | _ -> `Malformed

let of_string ~name text =
  let lines = String.split_on_char '\n' text in
  let jobs = ref [] and parsed = ref 0 and skipped = ref 0 and malformed = ref [] in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> ';' then
        match parse_job (Fields.split line) with
        | `Job j ->
            incr parsed;
            jobs := j :: !jobs
        | `Skip -> incr skipped
        | `Malformed -> malformed := (lineno + 1) :: !malformed)
    lines;
  if !parsed = 0 then Error (Printf.sprintf "%s: no parsable SWF jobs" name)
  else
    match Job_log.make ~name (List.rev !jobs) with
    | log -> Ok (log, { parsed = !parsed; skipped = !skipped; malformed = List.rev !malformed })
    | exception Invalid_argument msg -> Error msg

let load path =
  Bgl_resilience.Failpoint.hit "trace.swf.read";
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string ~name:(Filename.basename path) text
  | exception Sys_error msg -> Error msg

let to_string (log : Job_log.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "; SWF export of log %s (%d jobs)\n" log.name (Job_log.length log));
  Array.iter
    (fun (j : Job_log.job) ->
      (* 18 fields; the ones we do not track are -1. *)
      Buffer.add_string buf
        (Printf.sprintf "%d %.0f -1 %.0f %d -1 -1 %d %.0f -1 1 -1 -1 -1 -1 -1 -1 -1\n" j.id
           j.arrival j.run_time j.size j.size j.estimate))
    log.jobs;
  Buffer.contents buf

let save log path =
  Bgl_resilience.Failpoint.hit "trace.swf.write";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string log))
