(** Whitespace field splitting shared by the trace parsers.

    Archive logs mix spaces and tabs as column separators (SWF headers
    say "whitespace"); every parser in this library must accept both,
    so they share this one splitter. *)

val split : string -> string list
(** Split on runs of spaces and tabs; never yields empty fields. *)
