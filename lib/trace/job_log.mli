(** Job logs: the workload the simulator replays.

    A log is a sequence of jobs sorted by arrival time. Runtimes are
    the jobs' intrinsic (failure-free) execution times; the simulator
    derives wait/response/slowdown from what actually happens on the
    machine. The scheduler additionally sees a user-supplied runtime
    [estimate] (never smaller than the runtime in our generators),
    which drives backfill reservations and prediction windows. *)

type job = {
  id : int;  (** unique within the log *)
  arrival : float;  (** seconds since log start, non-decreasing *)
  size : int;  (** requested nodes, positive *)
  run_time : float;  (** actual execution time, positive seconds *)
  estimate : float;  (** user estimate, >= run_time in generated logs *)
}

type t = { name : string; jobs : job array }

val make : name:string -> job list -> t
(** Sorts by [(arrival, id)] and validates: positive sizes and
    runtimes, non-negative arrivals, positive estimates, unique ids.
    @raise Invalid_argument on violation. *)

val length : t -> int
val span : t -> float
(** [max (arrival + run_time)] over jobs minus [min arrival]; 0 for an
    empty log. A lower bound on the simulated makespan. *)

val total_work : t -> float
(** Σ size·run_time in node-seconds. *)

val offered_load : t -> nodes:int -> float
(** [total_work / (span * nodes)]: the utilisation the log would induce
    on a machine with [nodes] nodes and no scheduling loss. *)

val scale_runtime : t -> c:float -> t
(** The paper's load-scale coefficient: multiply every run time and
    estimate by [c] (Section 6.2). Renames the log with a ["@c"]
    suffix. *)

val filter_max_size : t -> max_size:int -> t
(** Drop jobs requesting more than [max_size] nodes (jobs bigger than
    the machine cannot be scheduled). *)

val max_size : t -> int
val pp_stats : Format.formatter -> t -> unit
