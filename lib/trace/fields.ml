let split line =
  String.split_on_char ' ' (String.concat " " (String.split_on_char '\t' line))
  |> List.filter (fun s -> s <> "")
