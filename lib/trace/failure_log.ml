type event = { time : float; node : int }
type t = { name : string; events : event array }

let make ~name events =
  let arr = Array.of_list events in
  Array.iter
    (fun e ->
      if e.time < 0. then invalid_arg "Failure_log: negative event time";
      if e.node < 0 then invalid_arg "Failure_log: negative node id")
    arr;
  Array.sort (fun a b -> match compare a.time b.time with 0 -> Int.compare a.node b.node | c -> c) arr;
  { name; events = arr }

let length t = Array.length t.events
let span t = if length t = 0 then 0. else t.events.(length t - 1).time -. t.events.(0).time

let nodes t =
  Array.fold_left (fun acc e -> e.node :: acc) [] t.events |> List.sort_uniq Int.compare

let truncate t ~keep =
  if keep < 0 then invalid_arg "Failure_log.truncate: negative keep";
  let keep = min keep (length t) in
  { name = Printf.sprintf "%s[:%d]" t.name keep; events = Array.sub t.events 0 keep }

let scale_count t ~target ~seed =
  if target < 0 then invalid_arg "Failure_log.scale_count: negative target";
  if target >= length t then t
  else begin
    let rng = Bgl_stats.Rng.create ~seed in
    let idx = Array.init (length t) Fun.id in
    Bgl_stats.Rng.shuffle rng idx;
    let chosen = Array.sub idx 0 target in
    Array.sort Int.compare chosen;
    {
      name = Printf.sprintf "%s[%d]" t.name target;
      events = Array.map (fun i -> t.events.(i)) chosen;
    }
  end

let shift t ~offset =
  make ~name:t.name (Array.to_list (Array.map (fun e -> { e with time = e.time +. offset }) t.events))

let validate_nodes t ~volume =
  match Array.find_opt (fun e -> e.node >= volume) t.events with
  | None -> Ok ()
  | Some e -> Error (Printf.sprintf "failure log %s: node %d outside torus of %d nodes" t.name e.node volume)

let merge ~name logs =
  make ~name (List.concat_map (fun t -> Array.to_list t.events) logs)

let of_string ~name text =
  let events = ref [] and bad = ref None in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match Fields.split line with
        | [ time; node ] -> (
            match (float_of_string_opt time, int_of_string_opt node) with
            | Some time, Some node when time >= 0. && node >= 0 ->
                events := { time; node } :: !events
            | _ -> if !bad = None then bad := Some (lineno + 1))
        | _ -> if !bad = None then bad := Some (lineno + 1))
    (String.split_on_char '\n' text);
  match !bad with
  | Some lineno -> Error (Printf.sprintf "%s: malformed failure event at line %d" name lineno)
  | None -> Ok (make ~name (List.rev !events))

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# failure log %s (%d events)\n" t.name (length t));
  (* %.17g round-trips every finite float exactly; %.3f silently merged
     events closer than a millisecond on save/load. *)
  Array.iter (fun e -> Buffer.add_string buf (Printf.sprintf "%.17g %d\n" e.time e.node)) t.events;
  Buffer.contents buf

let load path =
  Bgl_resilience.Failpoint.hit "trace.failure_log.read";
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string ~name:(Filename.basename path) text
  | exception Sys_error msg -> Error msg

let save t path =
  Bgl_resilience.Failpoint.hit "trace.failure_log.write";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string t))

let pp_stats ppf t =
  Format.fprintf ppf "failure log %s: %d events over %.0f s on %d distinct nodes" t.name (length t)
    (span t) (List.length (nodes t))
