(** Failure logs: timestamped fatal events on individual nodes.

    The paper drives the simulator with a failure trace aligned to the
    job log's time span (Section 6.2). Events are sorted by time; node
    ids are linear supernode indices into the simulated torus. The
    on-disk format is one event per line, ["<time> <node>"], with [#]
    comments. *)

type event = { time : float; node : int }
type t = { name : string; events : event array }

val make : name:string -> event list -> t
(** Sorts by time and validates non-negative times and node ids. *)

val length : t -> int
val span : t -> float

val nodes : t -> int list
(** Sorted distinct node ids appearing in the log. *)

val truncate : t -> keep:int -> t
(** First [keep] events in time order — how the fig-3/4 sweeps vary the
    failure rate from one generated trace. *)

val scale_count : t -> target:int -> seed:int -> t
(** Uniform random subsample (or identity if [target >= length]): the
    paper's "scaled up/down the number of hardware failures" step.
    Deterministic in [seed]. *)

val shift : t -> offset:float -> t
(** Add [offset] to every timestamp (align a trace to a log start). *)

val validate_nodes : t -> volume:int -> (unit, string) result
(** Check every node id is within [\[0, volume)]. *)

val merge : name:string -> t list -> t
(** Union of the events of several logs, re-sorted. *)

val of_string : name:string -> string -> (t, string) result
val to_string : t -> string
val load : string -> (t, string) result
val save : t -> string -> unit
val pp_stats : Format.formatter -> t -> unit
