type job = {
  id : int;
  arrival : float;
  size : int;
  run_time : float;
  estimate : float;
}

type t = { name : string; jobs : job array }

let validate_job j =
  if j.size <= 0 then invalid_arg (Printf.sprintf "Job_log: job %d has size %d" j.id j.size);
  if j.run_time <= 0. then
    invalid_arg (Printf.sprintf "Job_log: job %d has run_time %g" j.id j.run_time);
  if j.estimate <= 0. then
    invalid_arg (Printf.sprintf "Job_log: job %d has estimate %g" j.id j.estimate);
  if j.arrival < 0. then
    invalid_arg (Printf.sprintf "Job_log: job %d has negative arrival" j.id)

let make ~name jobs =
  let arr = Array.of_list jobs in
  Array.iter validate_job arr;
  Array.sort (fun a b -> match compare a.arrival b.arrival with 0 -> Int.compare a.id b.id | c -> c) arr;
  let ids = Hashtbl.create (Array.length arr) in
  Array.iter
    (fun j ->
      if Hashtbl.mem ids j.id then invalid_arg (Printf.sprintf "Job_log: duplicate id %d" j.id);
      Hashtbl.add ids j.id ())
    arr;
  { name; jobs = arr }

let length t = Array.length t.jobs

let span t =
  if length t = 0 then 0.
  else
    let first = t.jobs.(0).arrival in
    let last = Array.fold_left (fun acc j -> max acc (j.arrival +. j.run_time)) 0. t.jobs in
    last -. first

let total_work t = Array.fold_left (fun acc j -> acc +. (float_of_int j.size *. j.run_time)) 0. t.jobs

let offered_load t ~nodes =
  let s = span t in
  if s <= 0. then 0. else total_work t /. (s *. float_of_int nodes)

let scale_runtime t ~c =
  if c <= 0. then invalid_arg "Job_log.scale_runtime: c must be positive";
  {
    name = Printf.sprintf "%s@c=%g" t.name c;
    jobs = Array.map (fun j -> { j with run_time = j.run_time *. c; estimate = j.estimate *. c }) t.jobs;
  }

let filter_max_size t ~max_size =
  { t with jobs = Array.of_list (List.filter (fun j -> j.size <= max_size) (Array.to_list t.jobs)) }

let max_size t = Array.fold_left (fun acc j -> max acc j.size) 0 t.jobs

let pp_stats ppf t =
  let sizes = Array.map (fun j -> float_of_int j.size) t.jobs in
  let runtimes = Array.map (fun j -> j.run_time) t.jobs in
  Format.fprintf ppf "@[<v>log %s: %d jobs, span %.0f s, work %.3g node-s@,size: %a@,run_time: %a@]"
    t.name (length t) (span t) (total_work t)
    Bgl_stats.Summary.pp (Bgl_stats.Summary.of_array sizes)
    Bgl_stats.Summary.pp (Bgl_stats.Summary.of_array runtimes)
