type cell = { mutable count : int; mutable total : float; mutable max : float }

(* Accumulation is domain-local so the domains of a parallel sweep
   never contend (or race) on one table; every domain's table is
   registered here on first use so {!stats} can merge them after the
   workers join. Tables of finished domains stay registered — their
   spans still belong in the profile. *)
let all_tables : (string, cell) Hashtbl.t list ref = ref []
let all_tables_mutex = Mutex.create ()

let table_key : (string, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let t = Hashtbl.create 64 in
      Mutex.protect all_tables_mutex (fun () -> all_tables := t :: !all_tables);
      t)

let on = Atomic.make false

(* An Atomic, not a ref: tests swap in fake clocks while parallel
   suites may still be timing, and a plain ref would be a data race
   (and invisible to the worker domains' program order). *)
let clock = Atomic.make Unix.gettimeofday

let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b
let set_clock f = Atomic.set clock f

let reset () = Mutex.protect all_tables_mutex (fun () -> List.iter Hashtbl.reset !all_tables)

let cell name =
  let table = Domain.DLS.get table_key in
  match Hashtbl.find_opt table name with
  | Some c -> c
  | None ->
      let c = { count = 0; total = 0.; max = 0. } in
      Hashtbl.replace table name c;
      c

let record name dt =
  let c = cell name in
  c.count <- c.count + 1;
  c.total <- c.total +. dt;
  if dt > c.max then c.max <- dt

let time ~name f =
  if not (Atomic.get on) then f ()
  else begin
    let now = Atomic.get clock in
    let t0 = now () in
    Fun.protect ~finally:(fun () -> record name (now () -. t0)) f
  end

type stat = {
  name : string;
  count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
}

let stats () =
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 64 in
  Mutex.protect all_tables_mutex (fun () ->
      List.iter
        (fun table ->
          Hashtbl.iter
            (fun name (c : cell) ->
              match Hashtbl.find_opt merged name with
              | Some m ->
                  m.count <- m.count + c.count;
                  m.total <- m.total +. c.total;
                  if c.max > m.max then m.max <- c.max
              | None ->
                  Hashtbl.replace merged name { count = c.count; total = c.total; max = c.max })
            table)
        !all_tables);
  Hashtbl.fold
    (fun name (c : cell) acc ->
      { name;
        count = c.count;
        total_s = c.total;
        mean_s = (if c.count = 0 then 0. else c.total /. float_of_int c.count);
        max_s = c.max }
      :: acc)
    merged []
  |> List.sort (fun a b -> compare b.total_s a.total_s)

let export reg =
  List.iter
    (fun s ->
      let series prefix v =
        Registry.set (Registry.gauge reg (Printf.sprintf "%s{span=%S}" prefix s.name)) v
      in
      series "bgl_span_seconds_total" s.total_s;
      series "bgl_span_calls" (float_of_int s.count);
      series "bgl_span_max_seconds" s.max_s)
    (stats ())

let pp_profile ppf () =
  match stats () with
  | [] -> Format.fprintf ppf "no spans recorded (enable with Span.set_enabled)"
  | l ->
      Format.fprintf ppf "@[<v>%-36s %10s %12s %12s %12s@," "span" "calls" "total ms" "mean us"
        "max us";
      List.iter
        (fun s ->
          Format.fprintf ppf "%-36s %10d %12.2f %12.2f %12.2f@," s.name s.count
            (s.total_s *. 1e3) (s.mean_s *. 1e6) (s.max_s *. 1e6))
        l;
      Format.fprintf ppf "@]"
