type cell = { mutable count : int; mutable total : float; mutable max : float }

let table : (string, cell) Hashtbl.t = Hashtbl.create 64
let on = ref false
let clock = ref Unix.gettimeofday

let enabled () = !on
let set_enabled b = on := b
let set_clock f = clock := f
let reset () = Hashtbl.reset table

let cell name =
  match Hashtbl.find_opt table name with
  | Some c -> c
  | None ->
      let c = { count = 0; total = 0.; max = 0. } in
      Hashtbl.replace table name c;
      c

let record name dt =
  let c = cell name in
  c.count <- c.count + 1;
  c.total <- c.total +. dt;
  if dt > c.max then c.max <- dt

let time ~name f =
  if not !on then f ()
  else begin
    let t0 = !clock () in
    Fun.protect ~finally:(fun () -> record name (!clock () -. t0)) f
  end

type stat = {
  name : string;
  count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
}

let stats () =
  Hashtbl.fold
    (fun name (c : cell) acc ->
      { name;
        count = c.count;
        total_s = c.total;
        mean_s = (if c.count = 0 then 0. else c.total /. float_of_int c.count);
        max_s = c.max }
      :: acc)
    table []
  |> List.sort (fun a b -> compare b.total_s a.total_s)

let export reg =
  List.iter
    (fun s ->
      let series prefix v =
        Registry.set (Registry.gauge reg (Printf.sprintf "%s{span=%S}" prefix s.name)) v
      in
      series "bgl_span_seconds_total" s.total_s;
      series "bgl_span_calls" (float_of_int s.count);
      series "bgl_span_max_seconds" s.max_s)
    (stats ())

let pp_profile ppf () =
  match stats () with
  | [] -> Format.fprintf ppf "no spans recorded (enable with Span.set_enabled)"
  | l ->
      Format.fprintf ppf "@[<v>%-36s %10s %12s %12s %12s@," "span" "calls" "total ms" "mean us"
        "max us";
      List.iter
        (fun s ->
          Format.fprintf ppf "%-36s %10d %12.2f %12.2f %12.2f@," s.name s.count
            (s.total_s *. 1e3) (s.mean_s *. 1e6) (s.max_s *. 1e6))
        l;
      Format.fprintf ppf "@]"
