type snapshot = { sim_time : float; queue_depth : int; running : int; free_nodes : int }

type t = {
  every : int;
  out : Format.formatter;
  clock : unit -> float;
  m : Mutex.t;  (* one heartbeat may be shared by every worker domain *)
  mutable events : int;
  mutable nbeats : int;
  mutable last_wall : float;
  mutable last_events : int;
  mutable last_snapshot : snapshot option;
}

let create ?(out = Format.err_formatter) ?(clock = Unix.gettimeofday) ~every () =
  if every < 1 then invalid_arg "Heartbeat.create: every must be >= 1";
  {
    every;
    out;
    clock;
    m = Mutex.create ();
    events = 0;
    nbeats = 0;
    last_wall = clock ();
    last_events = 0;
    last_snapshot = None;
  }

let tick t snapshot =
  Mutex.protect t.m (fun () ->
      t.events <- t.events + 1;
      if t.events mod t.every = 0 then begin
        let s = snapshot () in
        let wall = t.clock () in
        let dt = wall -. t.last_wall in
        let rate =
          if dt > 0. then float_of_int (t.events - t.last_events) /. dt else Float.infinity
        in
        t.last_wall <- wall;
        t.last_events <- t.events;
        t.nbeats <- t.nbeats + 1;
        t.last_snapshot <- Some s;
        Format.fprintf t.out "[obs] events=%d sim_t=%.1f queue=%d running=%d free=%d ev/s=%.0f@."
          t.events s.sim_time s.queue_depth s.running s.free_nodes rate
      end)

let ticks t = t.events
let beats t = t.nbeats
let last t = Mutex.protect t.m (fun () -> t.last_snapshot)
