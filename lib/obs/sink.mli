(** Streaming event sinks.

    A sink consumes a stream of typed events. The buffered sink
    retains them (recording-order access via {!contents}); the JSONL
    sinks serialise each event to one line and hand it to a writer or
    channel, retaining nothing — so arbitrarily long runs stream to
    disk in constant memory. {!tee} fans one stream out to two sinks
    (e.g. buffer for in-process analysis + JSONL to disk). *)

type 'a t

val null : unit -> 'a t
(** Count-only: events are dropped. *)

val buffer : unit -> 'a t
(** Retain every event in memory. *)

val jsonl_writer : to_json:('a -> string) -> (string -> unit) -> 'a t
(** Serialise each event with [to_json] (which must produce one JSON
    value without a trailing newline) and pass it to the writer. *)

val jsonl_channel : to_json:('a -> string) -> out_channel -> 'a t
(** {!jsonl_writer} onto a channel, one line per event. The channel
    remains owned by the caller; {!flush} flushes it. *)

val tee : 'a t -> 'a t -> 'a t

val emit : 'a t -> 'a -> unit

val count : 'a t -> int
(** Events emitted into this sink so far. *)

val contents : 'a t -> 'a list
(** Buffered events, oldest first. Empty for non-buffered sinks; for a
    tee, the first buffered branch wins. *)

val is_buffered : 'a t -> bool
(** Whether {!contents} reflects the full stream. *)

val flush : 'a t -> unit
