(** Hot-path span timing.

    A span names a region of code; {!time} accumulates call count,
    total and maximum duration per name into a domain-local table
    ({!stats} merges the tables of every domain that recorded spans,
    so parallel sweeps profile without contention). Timing is
    off by default: the fast path of {!time} is a single flag test
    plus the call, so instrumented library code stays essentially free
    until a profile is requested ({!set_enabled}). Call sites on very
    hot paths should guard with {!enabled} themselves to avoid even
    the closure allocation:

    {[ if Span.enabled () then Span.time ~name:"eq.push" (fun () -> push_raw t x)
       else push_raw t x ]}

    The clock defaults to [Unix.gettimeofday] — the steadiest widely
    available source without C stubs — and lives in an [Atomic.t] so
    swapping it is safe even while other domains are timing;
    {!set_clock} substitutes a fake clock in tests. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val time : name:string -> (unit -> 'a) -> 'a
(** Run [f], attributing its duration to [name] when enabled. The
    duration is recorded even if [f] raises. *)

type stat = {
  name : string;
  count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
}

val stats : unit -> stat list
(** Accumulated spans merged across all domains, largest [total_s]
    first. Call after parallel workers have joined: merging is
    mutex-guarded against table {e registration}, but reads entries
    without synchronising against in-flight {!time} calls. *)

val reset : unit -> unit
(** Drop all accumulated spans, in every domain's table (the enabled
    flag is unchanged). *)

val set_clock : (unit -> float) -> unit
(** Override the time source (seconds), atomically — in-flight
    {!time} calls finish on the clock they started with. Tests
    only. *)

val export : Registry.t -> unit
(** Publish every span as [bgl_span_seconds_total{span="..."}],
    [bgl_span_calls{span="..."}] and [bgl_span_max_seconds{span="..."}]
    gauges. *)

val pp_profile : Format.formatter -> unit -> unit
(** A human-readable profile table of {!stats}. *)
