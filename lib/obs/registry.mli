(** Metrics registry: named counters, gauges and fixed-bucket
    histograms, exportable as Prometheus text format or CSV.

    Instruments are created against a registry. The distinguished
    {!noop} registry hands out inert instruments whose operations are
    cheap no-ops, so library code can instrument unconditionally and
    pay (almost) nothing when observability is off — see
    {!Runtime.registry}.

    Metric names follow Prometheus conventions
    ([bgl_sim_events_total]). A counter or gauge name may carry a
    label set inline, e.g. [bgl_sim_events_total{kind="arrival"}]:
    the registry treats the full string as the series identity and
    groups series sharing a base name under one [# TYPE] header.
    Histogram names must be plain (no labels). *)

type t

type counter
type gauge
type histogram

val create : unit -> t
(** A fresh, live registry. *)

val noop : t
(** The inert registry: instruments created from it do nothing and
    exports are empty. *)

val is_noop : t -> bool

val counter : t -> ?help:string -> string -> counter
(** Register (or look up) a monotonically increasing counter.
    Registering the same name twice returns the same underlying cell.
    @raise Invalid_argument on an empty name or if the name is already
    registered with a different instrument kind. *)

val inc : counter -> unit
val add : counter -> float -> unit

val counter_value : counter -> float
(** 0 for noop counters. *)

val gauge : t -> ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val default_buckets : float array
(** Decades from 1e-3 to 1e5 — a serviceable span for both wall-clock
    seconds and simulated seconds. *)

val histogram : t -> ?help:string -> ?buckets:float array -> string -> histogram
(** Fixed upper-bound buckets (strictly increasing; an implicit [+Inf]
    bucket is always appended). Defaults to {!default_buckets}.
    @raise Invalid_argument on empty/unsorted buckets or a labelled
    name. *)

val observe : histogram -> float -> unit
(** Count [v] into the first bucket whose upper bound is [>= v]. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val names : t -> string list
(** Registered series names, sorted. *)

val to_prometheus : t -> string
(** Prometheus text exposition format, version 0.0.4. Histogram
    buckets are cumulative and include the [+Inf] bucket, [_sum] and
    [_count] series. *)

val to_csv : t -> string
(** [name,kind,value] rows (header included); histograms are expanded
    into one cumulative row per bucket plus [_sum] and [_count]. *)
