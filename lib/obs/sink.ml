type 'a kind =
  | Null
  | Buffer of { mutable rev : 'a list }
  | Stream of { to_json : 'a -> string; write : string -> unit; flush_out : unit -> unit }
  | Tee of 'a t * 'a t

and 'a t = { kind : 'a kind; mutable emitted : int }

let null () = { kind = Null; emitted = 0 }
let buffer () = { kind = Buffer { rev = [] }; emitted = 0 }

let jsonl_writer ~to_json write =
  { kind = Stream { to_json; write; flush_out = (fun () -> ()) }; emitted = 0 }

let jsonl_channel ~to_json oc =
  {
    kind =
      Stream
        {
          to_json;
          write =
            (fun line ->
              output_string oc line;
              output_char oc '\n');
          flush_out = (fun () -> flush oc);
        };
    emitted = 0;
  }

let tee a b = { kind = Tee (a, b); emitted = 0 }

let rec emit t x =
  t.emitted <- t.emitted + 1;
  match t.kind with
  | Null -> ()
  | Buffer b -> b.rev <- x :: b.rev
  | Stream s -> s.write (s.to_json x)
  | Tee (a, b) ->
      emit a x;
      emit b x

let count t = t.emitted

let rec contents t =
  match t.kind with
  | Buffer b -> List.rev b.rev
  | Null | Stream _ -> []
  | Tee (a, b) -> ( match contents a with [] -> contents b | l -> l)

let rec is_buffered t =
  match t.kind with
  | Buffer _ -> true
  | Null | Stream _ -> false
  | Tee (a, b) -> is_buffered a || is_buffered b

let rec flush t =
  match t.kind with
  | Null | Buffer _ -> ()
  | Stream s -> s.flush_out ()
  | Tee (a, b) ->
      flush a;
      flush b
