(** Periodic progress reporting for long runs.

    The engine calls {!tick} once per simulation event with a thunk
    producing the current state snapshot; every [every] ticks the
    heartbeat forces the thunk and prints one line — sim-time, queue
    depth, running jobs, free nodes, and the wall-clock event rate
    since the previous beat — so multi-minute sweeps are no longer
    silent. Off-beat ticks cost one increment and one compare; the
    snapshot is only computed on beats. *)

type snapshot = { sim_time : float; queue_depth : int; running : int; free_nodes : int }

type t

val create : ?out:Format.formatter -> ?clock:(unit -> float) -> every:int -> unit -> t
(** [out] defaults to [Format.err_formatter]; [clock] (wall seconds)
    defaults to [Unix.gettimeofday].
    @raise Invalid_argument if [every < 1]. *)

val tick : t -> (unit -> snapshot) -> unit

val ticks : t -> int
(** Total ticks seen. *)

val beats : t -> int
(** Lines printed so far. *)

val last : t -> snapshot option
(** The snapshot forced on the most recent beat — the engine state a
    health endpoint can report without touching the engine itself.
    [None] before the first beat. *)
