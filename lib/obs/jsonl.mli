(** Minimal JSON helpers for the streaming trace.

    Emission side: tiny combinators producing compact one-line JSON
    without an AST (the trace hot path formats straight into strings).
    Consumption side: {!parse} into a small {!value} AST — the sweep
    journal reads its records back through it — and {!valid}, the
    parser with the value thrown away, used by the tests and the CI
    smoke check. *)

val escape : string -> string
(** JSON string-escape the contents (no surrounding quotes). *)

val string : string -> string
(** A quoted, escaped JSON string. *)

val float : float -> string
(** Compact float literal; non-finite values become [null] (JSON has
    no NaN/infinity). *)

val int : int -> string
val bool : bool -> string

val obj : (string * string) list -> string
(** [obj [("a", int 1)]] is [{"a":1}]. Values must already be JSON. *)

type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

val parse : string -> (value, string) result
(** Parse exactly one JSON value (trailing whitespace allowed). Never
    raises: malformed input is an [Error] with an offset. Numbers are
    parsed as [float]; integers are exact up to 2{^53}. *)

val member : string -> value -> value option
(** Field lookup; [None] on non-objects and missing keys. *)

val to_float : value -> float option
val to_string_opt : value -> string option

val valid : string -> bool
(** Whether the string is exactly one well-formed JSON value. *)
