(** Minimal JSON helpers for the streaming trace.

    Emission side: tiny combinators producing compact one-line JSON
    without an AST (the trace hot path formats straight into strings).
    Consumption side: {!valid}, a small structural validator used by
    the tests and the CI smoke check. *)

val escape : string -> string
(** JSON string-escape the contents (no surrounding quotes). *)

val string : string -> string
(** A quoted, escaped JSON string. *)

val float : float -> string
(** Compact float literal; non-finite values become [null] (JSON has
    no NaN/infinity). *)

val int : int -> string
val bool : bool -> string

val obj : (string * string) list -> string
(** [obj [("a", int 1)]] is [{"a":1}]. Values must already be JSON. *)

val valid : string -> bool
(** Whether the string is exactly one well-formed JSON value. *)
