(* Instruments are shared between the domains of a parallel sweep, so
   every update path must tolerate concurrent writers: counters and
   gauges are atomics (adds are CAS loops), histograms — multi-field
   updates — take a per-cell mutex, and registration takes a
   per-registry mutex. Reads (values, exposition) are not linearisable
   against concurrent writers; callers export after workers join. *)

type counter_cell = { cv : float Atomic.t }
type gauge_cell = { gv : float Atomic.t }

type hist_cell = {
  bounds : float array;
  counts : int array;  (* length = Array.length bounds + 1; last is +Inf *)
  mutable sum : float;
  mutable observations : int;
  hm : Mutex.t;
}

type counter = No_counter | Counter of counter_cell
type gauge = No_gauge | Gauge of gauge_cell
type histogram = No_histogram | Histogram of hist_cell

type instrument = C of counter_cell | G of gauge_cell | H of hist_cell

type t = Noop | Real of { tbl : (string, string option * instrument) Hashtbl.t; rm : Mutex.t }

let create () = Real { tbl = Hashtbl.create 64; rm = Mutex.create () }
let noop = Noop
let is_noop = function Noop -> true | Real _ -> false

(* [Atomic.compare_and_set] compares physically, so the CAS must be fed
   the very boxed float read by [Atomic.get]. *)
let atomic_addf cell v =
  let rec go () =
    let old = Atomic.get cell in
    if not (Atomic.compare_and_set cell old (old +. v)) then go ()
  in
  go ()

let check_name what name =
  if name = "" then invalid_arg (Printf.sprintf "Registry.%s: empty name" what);
  String.iter
    (fun c -> if c = '\n' || c = ' ' then invalid_arg (Printf.sprintf "Registry.%s: invalid name %S" what name))
    name

let register tbl rm what name help make =
  check_name what name;
  Mutex.protect rm (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some (_, instr) -> instr
      | None ->
          let instr = make () in
          Hashtbl.replace tbl name (help, instr);
          instr)

let kind_clash what name =
  invalid_arg (Printf.sprintf "Registry.%s: %S already registered as another kind" what name)

let counter t ?help name =
  match t with
  | Noop -> No_counter
  | Real { tbl; rm } -> (
      match register tbl rm "counter" name help (fun () -> C { cv = Atomic.make 0. }) with
      | C cell -> Counter cell
      | G _ | H _ -> kind_clash "counter" name)

let inc = function No_counter -> () | Counter c -> atomic_addf c.cv 1.

let add counter v =
  match counter with
  | No_counter -> ()
  | Counter c ->
      if v < 0. then invalid_arg "Registry.add: counters only increase";
      atomic_addf c.cv v

let counter_value = function No_counter -> 0. | Counter c -> Atomic.get c.cv

let gauge t ?help name =
  match t with
  | Noop -> No_gauge
  | Real { tbl; rm } -> (
      match register tbl rm "gauge" name help (fun () -> G { gv = Atomic.make 0. }) with
      | G cell -> Gauge cell
      | C _ | H _ -> kind_clash "gauge" name)

let set g v = match g with No_gauge -> () | Gauge cell -> Atomic.set cell.gv v
let gauge_value = function No_gauge -> 0. | Gauge cell -> Atomic.get cell.gv

let default_buckets = [| 1e-3; 1e-2; 1e-1; 1.; 10.; 100.; 1e3; 1e4; 1e5 |]

let histogram t ?help ?(buckets = default_buckets) name =
  if String.contains name '{' then invalid_arg "Registry.histogram: labelled names unsupported";
  if Array.length buckets = 0 then invalid_arg "Registry.histogram: empty buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Registry.histogram: buckets must be strictly increasing")
    buckets;
  match t with
  | Noop -> No_histogram
  | Real { tbl; rm } -> (
      let make () =
        H
          {
            bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            sum = 0.;
            observations = 0;
            hm = Mutex.create ();
          }
      in
      match register tbl rm "histogram" name help make with
      | H cell -> Histogram cell
      | C _ | G _ -> kind_clash "histogram" name)

let observe h v =
  match h with
  | No_histogram -> ()
  | Histogram cell ->
      let n = Array.length cell.bounds in
      let rec slot i = if i = n || v <= cell.bounds.(i) then i else slot (i + 1) in
      let i = slot 0 in
      Mutex.protect cell.hm (fun () ->
          cell.counts.(i) <- cell.counts.(i) + 1;
          cell.sum <- cell.sum +. v;
          cell.observations <- cell.observations + 1)

let histogram_count = function No_histogram -> 0 | Histogram c -> c.observations
let histogram_sum = function No_histogram -> 0. | Histogram c -> c.sum

(* ------------------------------------------------------------------ *)
(* Exposition *)

let base_name name = match String.index_opt name '{' with None -> name | Some i -> String.sub name 0 i

let sorted_series tbl =
  Hashtbl.fold (fun name (help, instr) acc -> (name, help, instr) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let names t =
  match t with Noop -> [] | Real { tbl; _ } -> List.map (fun (n, _, _) -> n) (sorted_series tbl)

(* Prometheus floats: integral values print without a fraction so
   counters read naturally; everything else keeps full precision. *)
let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let to_prometheus t =
  match t with
  | Noop -> ""
  | Real { tbl; _ } ->
      let buf = Buffer.create 1024 in
      let last_base = ref "" in
      List.iter
        (fun (name, help, instr) ->
          let base = base_name name in
          if base <> !last_base then begin
            last_base := base;
            (match help with
            | Some h -> Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" base h)
            | None -> ());
            Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base (kind_name instr))
          end;
          match instr with
          | C { cv } -> Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt_value (Atomic.get cv)))
          | G { gv } -> Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt_value (Atomic.get gv)))
          | H h ->
              let cumulative = ref 0 in
              Array.iteri
                (fun i bound ->
                  cumulative := !cumulative + h.counts.(i);
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" name bound !cumulative))
                h.bounds;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.observations);
              Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" name (fmt_value h.sum));
              Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.observations))
        (sorted_series tbl);
      Buffer.contents buf

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  match t with
  | Noop -> "name,kind,value\n"
  | Real { tbl; _ } ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "name,kind,value\n";
      let row name kind value =
        Buffer.add_string buf (Printf.sprintf "%s,%s,%s\n" (csv_field name) kind value)
      in
      List.iter
        (fun (name, _, instr) ->
          match instr with
          | C { cv } -> row name "counter" (fmt_value (Atomic.get cv))
          | G { gv } -> row name "gauge" (fmt_value (Atomic.get gv))
          | H h ->
              let cumulative = ref 0 in
              Array.iteri
                (fun i bound ->
                  cumulative := !cumulative + h.counts.(i);
                  row (Printf.sprintf "%s_bucket{le=\"%g\"}" name bound) "histogram"
                    (string_of_int !cumulative))
                h.bounds;
              row (Printf.sprintf "%s_bucket{le=\"+Inf\"}" name) "histogram"
                (string_of_int h.observations);
              row (name ^ "_sum") "histogram" (fmt_value h.sum);
              row (name ^ "_count") "histogram" (string_of_int h.observations))
        (sorted_series tbl);
      Buffer.contents buf
