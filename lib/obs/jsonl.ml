let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let string s = "\"" ^ escape s ^ "\""

let float v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.12g" v

let int = string_of_int
let bool = string_of_bool

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> string k ^ ":" ^ v) fields) ^ "}"

(* ------------------------------------------------------------------ *)
(* Parsing: a recursive-descent parser into a small AST. The journal
   reader and the tests consume it; [valid] is the parser with the
   value thrown away. *)

type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let bad msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    if peek () = Some c then advance () else bad (Printf.sprintf "expected %C" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else bad (Printf.sprintf "expected %s" lit)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj_body ()
    | Some '[' -> arr_body ()
    | Some '"' -> String (str ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Number (number ())
    | Some _ | None -> bad "expected a JSON value"
  and str () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> bad "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'
          | Some '\\' -> advance (); Buffer.add_char buf '\\'
          | Some '/' -> advance (); Buffer.add_char buf '/'
          | Some 'b' -> advance (); Buffer.add_char buf '\b'
          | Some 'f' -> advance (); Buffer.add_char buf '\012'
          | Some 'n' -> advance (); Buffer.add_char buf '\n'
          | Some 'r' -> advance (); Buffer.add_char buf '\r'
          | Some 't' -> advance (); Buffer.add_char buf '\t'
          | Some 'u' ->
              advance ();
              let code = ref 0 in
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') ->
                    code := (16 * !code) + int_of_string (Printf.sprintf "0x%c" s.[!pos]);
                    advance ()
                | Some _ | None -> bad "bad \\u escape"
              done;
              (* Escaped code points re-encode as UTF-8; the emitter
                 only escapes control characters, so this is enough to
                 round-trip anything [escape] produces. *)
              let c = !code in
              if c < 0x80 then Buffer.add_char buf (Char.chr c)
              else if c < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
              end
          | Some _ | None -> bad "bad escape");
          go ()
      | Some c when Char.code c < 0x20 -> bad "control character in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  and number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      let rec go () = match peek () with Some '0' .. '9' -> advance (); go () | _ -> () in
      go ();
      if !pos = d0 then bad "expected digits"
    in
    digits ();
    if peek () = Some '.' then begin advance (); digits () end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  and obj_body () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Object []
    end
    else
      let rec members acc =
        skip_ws ();
        let k = str () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ((k, v) :: acc)
        | Some '}' ->
            advance ();
            Object (List.rev ((k, v) :: acc))
        | Some _ | None -> bad "expected ',' or '}'"
      in
      members []
  and arr_body () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Array []
    end
    else
      let rec elements acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elements (v :: acc)
        | Some ']' ->
            advance ();
            Array (List.rev (v :: acc))
        | Some _ | None -> bad "expected ',' or ']'"
      in
      elements []
  in
  match value () with
  | v ->
      skip_ws ();
      if !pos = n then Ok v else Error (Printf.sprintf "trailing bytes at offset %d" !pos)
  | exception Bad (at, msg) -> Error (Printf.sprintf "%s at offset %d" msg at)

let valid s = Result.is_ok (parse s)

let member key = function
  | Object fields -> List.assoc_opt key fields
  | Null | Bool _ | Number _ | String _ | Array _ -> None

let to_float = function
  | Number v -> Some v
  | Null | Bool _ | String _ | Array _ | Object _ -> None

let to_string_opt = function
  | String s -> Some s
  | Null | Bool _ | Number _ | Array _ | Object _ -> None
