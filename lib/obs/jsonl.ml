let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let string s = "\"" ^ escape s ^ "\""

let float v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.12g" v

let int = string_of_int
let bool = string_of_bool

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> string k ^ ":" ^ v) fields) ^ "}"

(* ------------------------------------------------------------------ *)
(* Validation: a recursive-descent checker, no AST. *)

exception Bad

let valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c = if peek () = Some c then advance () else raise Bad in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l else raise Bad
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj_body ()
    | Some '[' -> arr_body ()
    | Some '"' -> str ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some _ | None -> raise Bad
  and str () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> raise Bad
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | Some _ | None -> raise Bad
              done
          | Some _ | None -> raise Bad);
          go ()
      | Some c when Char.code c < 0x20 -> raise Bad
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  and number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let start = !pos in
      let rec go () = match peek () with Some '0' .. '9' -> advance (); go () | _ -> () in
      go ();
      if !pos = start then raise Bad
    in
    digits ();
    if peek () = Some '.' then begin advance (); digits () end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ())
  and obj_body () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | Some _ | None -> raise Bad
      in
      members ()
  and arr_body () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elements ()
        | Some ']' -> advance ()
        | Some _ | None -> raise Bad
      in
      elements ()
  in
  match value () with
  | () ->
      skip_ws ();
      !pos = n
  | exception Bad -> false
