type snapshot = {
  registry : Registry.t;
  heartbeat : Heartbeat.t option;
  trace : (string -> unit) option;
}

let inert = { registry = Registry.noop; heartbeat = None; trace = None }

(* Domain-local: each domain sees its own configuration, so a worker
   can never race the main domain's [set_*] calls. Workers of a
   parallel sweep start from the inert default; the pool copies the
   spawner's configuration over with {!snapshot}/{!install}. The state
   record is mutable (rather than re-binding the DLS slot) so the
   accessors stay allocation-free. *)
type state = {
  mutable registry_v : Registry.t;
  mutable heartbeat_v : Heartbeat.t option;
  mutable trace_v : (string -> unit) option;
}

let key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { registry_v = Registry.noop; heartbeat_v = None; trace_v = None })

let registry () = (Domain.DLS.get key).registry_v
let set_registry r = (Domain.DLS.get key).registry_v <- r
let heartbeat () = (Domain.DLS.get key).heartbeat_v
let set_heartbeat h = (Domain.DLS.get key).heartbeat_v <- h
let trace_writer () = (Domain.DLS.get key).trace_v
let set_trace_writer w = (Domain.DLS.get key).trace_v <- w

let snapshot () =
  let s = Domain.DLS.get key in
  { registry = s.registry_v; heartbeat = s.heartbeat_v; trace = s.trace_v }

let install { registry; heartbeat; trace } =
  let s = Domain.DLS.get key in
  s.registry_v <- registry;
  s.heartbeat_v <- heartbeat;
  s.trace_v <- trace

let reset () = install inert
