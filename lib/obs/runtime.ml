let registry_ref = ref Registry.noop
let heartbeat_ref : Heartbeat.t option ref = ref None
let trace_ref : (string -> unit) option ref = ref None

let registry () = !registry_ref
let set_registry r = registry_ref := r
let heartbeat () = !heartbeat_ref
let set_heartbeat h = heartbeat_ref := h
let trace_writer () = !trace_ref
let set_trace_writer w = trace_ref := w

let reset () =
  registry_ref := Registry.noop;
  heartbeat_ref := None;
  trace_ref := None
