type snapshot = {
  registry : Registry.t;
  heartbeat : Heartbeat.t option;
  trace : (string -> unit) option;
  trace_parent : string option;
}

let inert = { registry = Registry.noop; heartbeat = None; trace = None; trace_parent = None }

(* Domain-local: each domain sees its own configuration, so a worker
   can never race the main domain's [set_*] calls. Workers of a
   parallel sweep start from the inert default; the pool copies the
   spawner's configuration over with {!snapshot}/{!install}. The state
   record is mutable (rather than re-binding the DLS slot) so the
   accessors stay allocation-free. *)
type state = {
  mutable registry_v : Registry.t;
  mutable heartbeat_v : Heartbeat.t option;
  mutable trace_v : (string -> unit) option;
  mutable trace_parent_v : string option;
}

let key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { registry_v = Registry.noop; heartbeat_v = None; trace_v = None; trace_parent_v = None })

let registry () = (Domain.DLS.get key).registry_v
let set_registry r = (Domain.DLS.get key).registry_v <- r
let heartbeat () = (Domain.DLS.get key).heartbeat_v
let set_heartbeat h = (Domain.DLS.get key).heartbeat_v <- h
let trace_writer () = (Domain.DLS.get key).trace_v
let set_trace_writer w = (Domain.DLS.get key).trace_v <- w
let trace_parent () = (Domain.DLS.get key).trace_parent_v
let set_trace_parent p = (Domain.DLS.get key).trace_parent_v <- p

let snapshot () =
  let s = Domain.DLS.get key in
  {
    registry = s.registry_v;
    heartbeat = s.heartbeat_v;
    trace = s.trace_v;
    trace_parent = s.trace_parent_v;
  }

let install { registry; heartbeat; trace; trace_parent } =
  let s = Domain.DLS.get key in
  s.registry_v <- registry;
  s.heartbeat_v <- heartbeat;
  s.trace_v <- trace;
  s.trace_parent_v <- trace_parent

let reset () = install inert
