(** Per-domain observability configuration.

    The engine and the instrumented libraries read their observability
    environment from here instead of threading it through every call
    chain (figure sweeps call the engine many layers deep). Defaults
    are fully inert: the {!Registry.noop} registry, no heartbeat, no
    trace writer — so an unconfigured process pays only dead branches.
    CLIs flip the switches at startup ([--metrics-out], [--progress],
    [--trace-out]).

    The configuration is domain-local: a freshly spawned domain starts
    inert, and [set_*] calls never race across domains. The parallel
    pool propagates the spawning domain's configuration to its workers
    with {!snapshot}/{!install} — the shared {!Registry.t} inside is
    itself domain-safe, so workers can feed one registry. *)

val registry : unit -> Registry.t
(** Defaults to {!Registry.noop}. *)

val set_registry : Registry.t -> unit

val heartbeat : unit -> Heartbeat.t option
val set_heartbeat : Heartbeat.t option -> unit

val trace_writer : unit -> (string -> unit) option
(** When set, every engine run streams its lifecycle events as JSONL
    lines (plus [run_begin]/[run_end] markers) into the writer, which
    must append exactly one newline per call it receives. *)

val set_trace_writer : (string -> unit) option -> unit

val trace_parent : unit -> string option
(** Provenance for resumed runs: the fingerprint of the journal the
    current sweep is resuming from, if any. The engine copies it into
    the [run_meta] trace header so an auditor can tie the stitched
    halves of a kill-then-resume trace together. *)

val set_trace_parent : string option -> unit

type snapshot
(** The current domain's full configuration, as one value. *)

val snapshot : unit -> snapshot

val install : snapshot -> unit
(** Make the current domain's configuration equal to [snapshot]. *)

val reset : unit -> unit
(** Back to the inert defaults, for the current domain (tests). *)
