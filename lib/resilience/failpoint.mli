(** Deterministic fault injection.

    Library code declares {e sites} by calling {!hit} at the places
    where real systems fail — trace I/O, journal writes, sweep cell
    execution. A site is inert (one atomic load) until it is {e armed}
    from a test or a CLI flag; an armed site raises {!Injected}
    according to its firing mode, deterministically, so graceful
    degradation is provable rather than asserted.

    Arming is process-global and domain-safe: sites armed before a
    parallel sweep fire inside pool workers. *)

exception Injected of { site : string; visit : int }
(** Raised by {!hit} when an armed site fires. [visit] is the 1-based
    visit count at which it fired. *)

type mode =
  | Always  (** fire on every visit *)
  | Once  (** fire on the first visit only *)
  | Visit of int  (** fire on the n-th visit (1-based) only *)
  | Index of int  (** fire on every visit whose [?index] matches *)
  | Index_once of int  (** fire on the first visit whose [?index] matches *)
  | Prob of { p : float; seed : int }
      (** fire when a hash of [(seed, visit, index)] falls below [p]:
          pseudo-random but exactly reproducible *)

type spec = { site : string; mode : mode }

val of_string : string -> (spec, string) result
(** Parse a CLI arming spec:
    ["site"] or ["site:always"], ["site:once"], ["site:visit=3"],
    ["site:index=2"], ["site:index=2,once"], ["site:p=0.5,seed=7"]. *)

val to_string : spec -> string

val arm : spec -> unit
(** Arm (or re-arm, resetting counters) a site. *)

val disarm : string -> unit
val reset : unit -> unit

val hit : ?index:int -> string -> unit
(** Declare a site visit. No-op (one atomic load) when nothing is
    armed anywhere; raises {!Injected} when this site is armed and its
    mode fires. [index] identifies the work item for [Index]-style
    modes (e.g. a sweep cell's position). *)

val visits : string -> int
(** Visits observed on an armed site since arming (0 if not armed). *)

val fired : string -> int
(** Times an armed site has fired since arming. *)
