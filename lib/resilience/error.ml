type t =
  | Usage of string
  | Parse of { name : string; detail : string }
  | Io of { path : string; detail : string }
  | Degraded of { quarantined : string list; detail : string }
  | Internal of string

let exit_code = function
  | Usage _ -> 2
  | Degraded _ -> 3
  | Parse _ -> 65
  | Internal _ -> 70
  | Io _ -> 74

exception Cli of t

let usagef fmt = Printf.ksprintf (fun m -> Error (Usage m)) fmt
let raise_usagef fmt = Printf.ksprintf (fun m -> raise (Cli (Usage m))) fmt

let pp ppf = function
  | Usage m -> Format.fprintf ppf "usage: %s" m
  | Parse { name; detail } -> Format.fprintf ppf "parse error in %s: %s" name detail
  | Io { path; detail } -> Format.fprintf ppf "i/o error on %s: %s" path detail
  | Degraded { quarantined; detail } ->
      Format.fprintf ppf "degraded: %s" detail;
      List.iter (fun c -> Format.fprintf ppf "@.  quarantined: %s" c) quarantined
  | Internal m -> Format.fprintf ppf "internal error: %s" m

let to_string t = Format.asprintf "%a" pp t

let of_exn = function
  | Cli e -> e
  | Failpoint.Injected { site; visit } ->
      Io { path = site; detail = Printf.sprintf "injected fault (visit %d)" visit }
  | Budget.Budget_exceeded { site; detail } ->
      Degraded { quarantined = []; detail = Printf.sprintf "budget exceeded at %s: %s" site detail }
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), fn, _) ->
      Io { path = fn; detail = "peer closed the connection (broken pipe)" }
  | Sys_error msg -> Io { path = "<sys>"; detail = msg }
  | e -> Internal (Printexc.to_string e)

(* With SIGPIPE at its default disposition, a reader that goes away
   mid-stream (bgl-sim | head, a disconnecting bgl-served client)
   kills the whole process with an unhandled signal. Ignoring it turns
   the write into EPIPE — Sys_error on channels, Unix_error on raw
   fds — which [of_exn] maps to a clean Io exit (74). *)
let ignore_sigpipe () = if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let run ~prog f =
  ignore_sigpipe ();
  let report e =
    Format.eprintf "%s: %a@." prog pp e;
    exit_code e
  in
  match f () with
  | Ok code -> code
  | Error e -> report e
  | exception e -> report (of_exn e)
