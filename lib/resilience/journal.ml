type writer = { path : string; fd : Unix.file_descr; mutable records : int }

let open_with flags path = { path; fd = Unix.openfile path flags 0o644; records = 0 }
let create ~path = open_with [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] path
let append_to ~path = open_with [ Unix.O_WRONLY; O_CREAT; O_APPEND ] path

let write_all fd line =
  let n = String.length line in
  let rec go off = if off < n then go (off + Unix.write_substring fd line off (n - off)) in
  go 0

let append w ~key ~fields =
  Failpoint.hit ~index:w.records "journal.append";
  let line = Bgl_obs.Jsonl.obj (("cell", Bgl_obs.Jsonl.string key) :: fields) ^ "\n" in
  write_all w.fd line;
  Failpoint.hit ~index:w.records "journal.fsync";
  Unix.fsync w.fd;
  w.records <- w.records + 1

let close w = Unix.close w.fd

type entry = { key : string; value : Bgl_obs.Jsonl.value }

let load_string text =
  let entries = ref [] and dropped = ref 0 in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Bgl_obs.Jsonl.parse line with
        | Ok value -> (
            match Option.bind (Bgl_obs.Jsonl.member "cell" value) Bgl_obs.Jsonl.to_string_opt with
            | Some key -> entries := { key; value } :: !entries
            | None -> incr dropped)
        | Error _ -> incr dropped)
    (String.split_on_char '\n' text);
  (List.rev !entries, !dropped)

let load ~path =
  Failpoint.hit "journal.read";
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok (load_string text)
  | exception Sys_error msg -> Error msg
