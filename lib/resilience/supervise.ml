type error = { message : string; attempts : int; transient : bool }
type 'a outcome = Completed of { value : 'a; attempts : int } | Quarantined of error

type policy = {
  max_attempts : int;
  backoff : int -> float;
  sleep : float -> unit;
  retryable : exn -> bool;
  budget : (unit -> Budget.t) option;
}

let exponential ~base n = base *. (2. ** float_of_int (n - 1))

let default =
  {
    max_attempts = 3;
    backoff = exponential ~base:0.05;
    sleep = Unix.sleepf;
    retryable = (function Budget.Budget_exceeded _ -> false | _ -> true);
    budget = None;
  }

let no_retry = { default with max_attempts = 1 }

let run policy f =
  if policy.max_attempts < 1 then invalid_arg "Supervise.run: max_attempts must be >= 1";
  let budget () = Option.map (fun mk -> mk ()) policy.budget in
  let rec attempt n =
    match Budget.with_budget (budget ()) f with
    | v -> Completed { value = v; attempts = n }
    | exception e ->
        let transient = policy.retryable e in
        if transient && n < policy.max_attempts then begin
          let delay = policy.backoff n in
          if delay > 0. then policy.sleep delay;
          attempt (n + 1)
        end
        else Quarantined { message = Printexc.to_string e; attempts = n; transient }
  in
  attempt 1

(* ------------------------------------------------------------------ *)

type degradation = {
  total : int;
  completed : int;
  retried : int;
  quarantined : (int * error) list;
}

let degradation_of outcomes =
  let completed = ref 0 and retried = ref 0 and quarantined = ref [] in
  Array.iteri
    (fun i -> function
      | Completed { attempts; _ } ->
          incr completed;
          if attempts > 1 then incr retried
      | Quarantined e -> quarantined := (i, e) :: !quarantined)
    outcomes;
  {
    total = Array.length outcomes;
    completed = !completed;
    retried = !retried;
    quarantined = List.rev !quarantined;
  }

let degraded d = d.quarantined <> []

let pp_degradation ppf d =
  Format.fprintf ppf "%d/%d cells completed (%d retried, %d quarantined)" d.completed d.total
    d.retried
    (List.length d.quarantined);
  List.iter
    (fun (i, e) ->
      Format.fprintf ppf "@.  cell %d: %s after %d attempt%s%s" i e.message e.attempts
        (if e.attempts = 1 then "" else "s")
        (if e.transient then "" else " (permanent)"))
    d.quarantined
