(** Structured CLI errors with stable exit codes.

    Replaces the scattered [failwith] / [prerr_endline ...; exit 1]
    paths: tools compute a [(int, Error.t) result] and hand it to
    {!run}, which prints one ["<prog>: ..."] line to stderr and maps
    the error to its exit code. The codes (documented in the README):

    - 0 — success
    - 2 — usage error (bad flag value, conflicting options)
    - 3 — degraded: the run finished but cells were quarantined or a
      budget was exceeded; partial results were emitted
    - 65 — data error: a trace, log or journal failed to parse
    - 70 — internal error (unexpected exception)
    - 74 — I/O error (including injected faults outside supervision) *)

type t =
  | Usage of string
  | Parse of { name : string; detail : string }
      (** [name] is the input being parsed (file or label) *)
  | Io of { path : string; detail : string }
  | Degraded of { quarantined : string list; detail : string }
      (** [quarantined] names the cells lost; partial output exists *)
  | Internal of string

exception Cli of t
(** Escape hatch for code too deep to thread a [result] through (flag
    plumbing inside library setup helpers): {!run} catches it via
    {!of_exn}, so raising [Cli e] behaves exactly like returning
    [Error e]. *)

val exit_code : t -> int
val usagef : ('a, unit, string, ('b, t) result) format4 -> 'a

val raise_usagef : ('a, unit, string, 'b) format4 -> 'a
(** [usagef] as an exception ({!Cli}), for non-[result] contexts. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_exn : exn -> t
(** Map the resilience exceptions ({!Failpoint.Injected},
    {!Budget.Budget_exceeded}), [Sys_error], and disconnected-peer
    I/O ([EPIPE]/[ECONNRESET]) to structured errors; anything else
    becomes [Internal]. *)

val ignore_sigpipe : unit -> unit
(** Set SIGPIPE to ignored (no-op on Windows), so a reader that goes
    away mid-stream ([bgl-sim | head], a disconnecting service client)
    surfaces as an [EPIPE] write error instead of killing the process
    with an unhandled signal. {!run} installs this for every CLI. *)

val run : prog:string -> (unit -> (int, t) result) -> int
(** Evaluate the tool body: [Ok code] passes through; [Error e] (or a
    raised exception, via {!of_exn}) prints ["<prog>: <error>"] to
    stderr and returns {!exit_code}. Never raises. SIGPIPE is ignored
    for the process ({!ignore_sigpipe}), and [EPIPE]/[ECONNRESET] map
    to a clean exit 74. *)
