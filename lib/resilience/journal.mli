(** Crash-safe append-only JSONL journal.

    One record per line: a JSON object carrying the record key under
    ["cell"] plus caller fields, e.g.
    [{"cell":"<fingerprint>","label":"...","report":{...}}]. Each
    {!append} issues a single [write] of the whole line followed by
    [fsync], so a record is either durably complete or (after a crash
    mid-write) a truncated final line that the tolerant {!load} drops —
    never a silently corrupt prefix.

    Failpoint sites: ["journal.append"] (before the write),
    ["journal.fsync"] (after the write, before the fsync — the record
    exists but is not yet durable), ["journal.read"] (in {!load}). *)

type writer

val create : path:string -> writer
(** Open for writing, truncating any existing file. *)

val append_to : path:string -> writer
(** Open for appending (resume), creating the file if missing. *)

val append : writer -> key:string -> fields:(string * string) list -> unit
(** Durably append one record. [fields] are JSON-encoded
    [(name, value)] pairs ({!Bgl_obs.Jsonl} combinators); the key is
    prepended as ["cell"]. *)

val close : writer -> unit

type entry = { key : string; value : Bgl_obs.Jsonl.value }
(** [value] is the whole record object (including ["cell"]). *)

val load : path:string -> (entry list * int, string) result
(** Read a journal tolerantly: entries in file order plus the number
    of dropped lines (truncated tail from a crash, corrupt bytes,
    records without a ["cell"] key). [Error] only if the file cannot
    be read at all.

    The reader tolerates a {e concurrent appender}: loading while a
    {!writer} still holds the file open ([O_APPEND] semantics — the
    server's resume scan against a live journal) sees every record
    whose [write] completed before the load, and at most one torn
    in-flight line, which is dropped like a crash tail. It never
    fails or mis-parses because of the concurrent writer. *)

val load_string : string -> entry list * int
(** {!load} on in-memory bytes; never raises. *)
