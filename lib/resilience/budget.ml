exception Budget_exceeded of { site : string; detail : string }

let () =
  Printexc.register_printer (function
    | Budget_exceeded { site; detail } ->
        Some (Printf.sprintf "Budget_exceeded(%s: %s)" site detail)
    | _ -> None)

type t = { fuel : int option; deadline : float option }

type installed = {
  spec : t;
  mutable remaining : int;  (* meaningful when spec.fuel <> None *)
  mutable expires_at : float;  (* meaningful when spec.deadline <> None *)
  mutable until_clock : int;  (* checks left before the next clock read *)
}

let make ?fuel ?deadline () =
  (match (fuel, deadline) with
  | None, None -> invalid_arg "Budget.make: give fuel and/or deadline"
  | _ -> ());
  (match fuel with
  | Some f when f <= 0 -> invalid_arg "Budget.make: fuel must be positive"
  | _ -> ());
  (match deadline with
  | Some d when d <= 0. -> invalid_arg "Budget.make: deadline must be positive"
  | _ -> ());
  { fuel; deadline }

let clock_every = 256

let ambient : installed option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = !(Domain.DLS.get ambient) <> None

let with_budget spec f =
  match spec with
  | None -> f ()
  | Some spec ->
      let cell = Domain.DLS.get ambient in
      let prev = !cell in
      cell :=
        Some
          {
            spec;
            remaining = Option.value spec.fuel ~default:max_int;
            expires_at =
              (match spec.deadline with
              | Some d -> Unix.gettimeofday () +. d
              | None -> Float.infinity);
            until_clock = clock_every;
          };
      Fun.protect ~finally:(fun () -> cell := prev) f

let check ~site =
  match !(Domain.DLS.get ambient) with
  | None -> ()
  | Some b ->
      (match b.spec.fuel with
      | Some fuel ->
          b.remaining <- b.remaining - 1;
          if b.remaining < 0 then
            raise
              (Budget_exceeded
                 { site; detail = Printf.sprintf "fuel of %d checks spent" fuel })
      | None -> ());
      (match b.spec.deadline with
      | Some d ->
          b.until_clock <- b.until_clock - 1;
          if b.until_clock <= 0 then begin
            b.until_clock <- clock_every;
            if Unix.gettimeofday () > b.expires_at then
              raise
                (Budget_exceeded
                   { site; detail = Printf.sprintf "deadline of %gs passed" d })
          end
      | None -> ())
