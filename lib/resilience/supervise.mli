(** Supervised execution of independent work items.

    {!run} executes one attempt-loop: exceptions become structured
    outcomes instead of propagating, transient failures are retried
    with bounded attempts and deterministic backoff, and repeated
    failure quarantines the item. {!Pool.map_supervised} applies it to
    every cell of a sweep and reports partial results plus a
    {!degradation} summary.

    {!Budget.Budget_exceeded} is permanent by default — a cell that
    ran out of fuel deterministically will again — while any other
    exception (injected faults included) is considered transient and
    retried. *)

type error = {
  message : string;  (** printable form of the final exception *)
  attempts : int;  (** attempts consumed *)
  transient : bool;  (** the final failure was retryable, just out of attempts *)
}

type 'a outcome = Completed of { value : 'a; attempts : int } | Quarantined of error

type policy = {
  max_attempts : int;  (** >= 1 *)
  backoff : int -> float;
      (** seconds to wait after failed attempt [n] (1-based) before
          attempt [n+1]; deterministic in [n] *)
  sleep : float -> unit;  (** injectable for tests; [Unix.sleepf] by default *)
  retryable : exn -> bool;
  budget : (unit -> Budget.t) option;
      (** a fresh budget installed around each attempt *)
}

val exponential : base:float -> int -> float
(** [base *. 2.^(n-1)] — the default backoff curve. *)

val default : policy
(** 3 attempts, exponential backoff from 50 ms, everything but
    [Budget_exceeded] retryable, no budget. *)

val no_retry : policy
(** [default] with a single attempt. *)

val run : policy -> (unit -> 'a) -> 'a outcome

(* ------------------------------------------------------------------ *)

type degradation = {
  total : int;
  completed : int;
  retried : int;  (** items that completed but needed more than one attempt *)
  quarantined : (int * error) list;  (** item index, in item order *)
}

val degradation_of : 'a outcome array -> degradation
val degraded : degradation -> bool
val pp_degradation : Format.formatter -> degradation -> unit
