(** Cooperative deadlines: a fuel and/or wall-clock budget that
    long-running computations check at their loop boundaries.

    A budget is installed for the dynamic extent of a computation
    ({!with_budget}); the simulator's event loop and the partition
    finders call {!check} at each iteration, and the first check past
    the limit raises {!Budget_exceeded}. Supervision
    ({!Supervise.run}) converts the exception into a quarantined cell
    instead of a hung or runaway sweep.

    The installed budget is domain-local, so parallel sweep cells each
    get their own — a fresh budget per cell attempt, never shared
    state across domains. Checks are one domain-local load when no
    budget is installed. *)

exception Budget_exceeded of { site : string; detail : string }
(** Raised by {!check} at [site] when the installed budget is spent. *)

type t

val make : ?fuel:int -> ?deadline:float -> unit -> t
(** [fuel] bounds the number of {!check} calls (simulation events,
    enumeration passes); [deadline] bounds wall-clock seconds from
    installation. At least one must be given.
    @raise Invalid_argument if neither is given or either is <= 0. *)

val with_budget : t option -> (unit -> 'a) -> 'a
(** Install the budget (restarting its fuel counter and deadline
    clock) for the call's dynamic extent, restoring the previous
    installation on exit. [None] leaves the current installation in
    place, so nested budget-less layers never mask an outer budget. *)

val check : site:string -> unit
(** Burn one unit of the installed fuel, and every 256 calls compare
    the clock against the deadline. No-op when nothing is installed.
    @raise Budget_exceeded when the budget is spent. *)

val active : unit -> bool
(** Whether a budget is installed on the current domain. *)
