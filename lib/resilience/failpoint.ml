exception Injected of { site : string; visit : int }

let () =
  Printexc.register_printer (function
    | Injected { site; visit } ->
        Some (Printf.sprintf "injected fault at %s (visit %d)" site visit)
    | _ -> None)

type mode =
  | Always
  | Once
  | Visit of int
  | Index of int
  | Index_once of int
  | Prob of { p : float; seed : int }

type spec = { site : string; mode : mode }

type armed = { mode : mode; mutable visits : int; mutable fired : int }

(* Sites armed rarely (test setup, CLI startup), hit from every domain
   of a parallel sweep: a mutexed table with an atomic emptiness check
   in front keeps the disarmed fast path to one load. *)
let table : (string, armed) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()
let n_armed = Atomic.make 0

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm spec =
  with_lock (fun () ->
      if not (Hashtbl.mem table spec.site) then Atomic.incr n_armed;
      Hashtbl.replace table spec.site { mode = spec.mode; visits = 0; fired = 0 })

let disarm site =
  with_lock (fun () ->
      if Hashtbl.mem table site then begin
        Hashtbl.remove table site;
        Atomic.decr n_armed
      end)

let reset () =
  with_lock (fun () ->
      Hashtbl.reset table;
      Atomic.set n_armed 0)

let hit ?(index = -1) site =
  if Atomic.get n_armed > 0 then begin
    let fire =
      with_lock (fun () ->
          match Hashtbl.find_opt table site with
          | None -> None
          | Some a ->
              a.visits <- a.visits + 1;
              let fire =
                match a.mode with
                | Always -> true
                | Once -> a.fired = 0
                | Visit n -> a.visits = n
                | Index i -> index = i
                | Index_once i -> index = i && a.fired = 0
                | Prob { p; seed } -> Bgl_stats.Rng.hash_float ~seed a.visits index < p
              in
              if fire then a.fired <- a.fired + 1;
              if fire then Some a.visits else None)
    in
    match fire with
    | Some visit -> raise (Injected { site; visit })
    | None -> ()
  end

let visits site =
  with_lock (fun () ->
      match Hashtbl.find_opt table site with Some a -> a.visits | None -> 0)

let fired site =
  with_lock (fun () ->
      match Hashtbl.find_opt table site with Some a -> a.fired | None -> 0)

(* ------------------------------------------------------------------ *)
(* CLI spec syntax *)

let to_string { site; mode } =
  match mode with
  | Always -> site
  | Once -> site ^ ":once"
  | Visit n -> Printf.sprintf "%s:visit=%d" site n
  | Index i -> Printf.sprintf "%s:index=%d" site i
  | Index_once i -> Printf.sprintf "%s:index=%d,once" site i
  | Prob { p; seed } -> Printf.sprintf "%s:p=%g,seed=%d" site p seed

let valid_site site =
  site <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       site

let of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt s ':' with
  | None ->
      if valid_site s then Ok { site = s; mode = Always }
      else fail "bad failpoint site %S (want e.g. pool.cell or trace.swf.read)" s
  | Some i -> (
      let site = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      if not (valid_site site) then
        fail "bad failpoint site %S (want e.g. pool.cell or trace.swf.read)" site
      else
        let items = String.split_on_char ',' rest |> List.map String.trim in
        let kv item =
          match String.index_opt item '=' with
          | None -> (item, None)
          | Some j ->
              ( String.sub item 0 j,
                Some (String.sub item (j + 1) (String.length item - j - 1)) )
        in
        let assoc = List.map kv items in
        let get k = List.assoc_opt k assoc in
        let int_of k v =
          match int_of_string_opt v with
          | Some n when n >= 0 -> Ok n
          | _ -> fail "failpoint %s: %s must be a non-negative integer, got %S" site k v
        in
        let once = List.mem ("once", None) assoc in
        match (get "visit", get "index", get "p") with
        | Some (Some v), None, None ->
            Result.map (fun n -> { site; mode = Visit n }) (int_of "visit" v)
        | None, Some (Some v), None ->
            Result.map
              (fun i -> { site; mode = (if once then Index_once i else Index i) })
              (int_of "index" v)
        | None, None, Some (Some v) -> (
            match float_of_string_opt v with
            | Some p when p >= 0. && p <= 1. ->
                let seed =
                  match get "seed" with Some (Some s) -> int_of_string_opt s | _ -> Some 0
                in
                (match seed with
                | Some seed -> Ok { site; mode = Prob { p; seed } }
                | None -> fail "failpoint %s: bad seed" site)
            | _ -> fail "failpoint %s: p must be in [0,1], got %S" site v)
        | None, None, None ->
            if once then Ok { site; mode = Once }
            else if rest = "always" || rest = "" then Ok { site; mode = Always }
            else fail "failpoint %s: unknown mode %S" site rest
        | _ -> fail "failpoint %s: combine at most one of visit=/index=/p= %S" site rest)
