open Bgl_torus

let () =
  (* 28x8x8 torus, wrap on: volume 1792 >= 512 so finders gate on Summary. *)
  let dims = Dims.make 28 8 8 in
  let grid = Grid.create dims in
  (* Occupy everything except a wrapped 14x1x1 strip at y=0,z=0, x=15..(15+13 mod 28). *)
  let free_xs = List.init 14 (fun i -> (15 + i) mod 28) in
  for z = 0 to 7 do
    for y = 0 to 7 do
      for x = 0 to 27 do
        let is_strip = y = 0 && z = 0 && List.mem x free_xs in
        if not is_strip then
          Grid.occupy_node grid (Coord.index dims (Coord.make x y z)) ~owner:1
      done
    done
  done;
  let shape = Shape.make 14 1 1 in
  let feas = Summary.shape_feasible (Grid.summary grid) ~wrap:true shape in
  Printf.printf "shape_feasible says: %b\n" feas;
  let table = Prefix.build grid in
  let box = Box.make (Coord.make 15 0 0) shape in
  Printf.printf "box actually free: %b\n" (Prefix.box_is_free table box);
  let found = Bgl_partition.Finder.find Bgl_partition.Finder.Prefix grid ~volume:14 in
  Printf.printf "Finder.find Prefix found %d boxes of volume 14\n" (List.length found);
  let naive = Bgl_partition.Finder.find Bgl_partition.Finder.Naive grid ~volume:14 in
  Printf.printf "Finder.find Naive found %d boxes of volume 14\n" (List.length naive)
