(* bgl-audit: certify a run trace.

     bgl-audit run.trace                    # human certificate
     bgl-audit --format jsonl run.trace     # findings + certificate, one JSON per line
     bgl-audit attempt1.trace resumed.trace # stitched kill-then-resume audit

   Replays the schema-2 JSONL trace written by bgl-sim/bgl-sweep
   --trace-out and re-verifies the schedule independently of the
   engine: occupancy exclusivity on the torus, job lifecycle legality,
   box validity, conservation of job counts, and the summary metrics
   (utilization, lost node-seconds, the omega-identity) recomputed
   from the events. Multiple files are audited as one stitched stream,
   in the order given, so a killed sweep's trace plus its resumed
   trace certify together.

   Exit codes follow the Bgl_resilience.Error conventions: 0 the
   certificate passes, 1 violations found, 2 usage, 74 I/O. *)

open Cmdliner

let paths =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"TRACE"
        ~doc:"Trace files (JSONL, written by --trace-out). Several files are stitched in the \
              order given.")

let run format quiet paths =
  Bgl_resilience.Error.run ~prog:"bgl-audit" @@ fun () ->
  Bgl_core.Cli_flags.set_quiet quiet;
  Result.bind (Bgl_audit.Driver.audit_files paths) @@ fun cert ->
  (match format with
  | Bgl_core.Cli_flags.Human -> Format.printf "%a@?" Bgl_audit.Driver.pp cert
  | Bgl_core.Cli_flags.Jsonl -> List.iter print_endline (Bgl_audit.Driver.to_jsonl cert));
  Ok (if Bgl_audit.Driver.pass cert then 0 else 1)

let cmd =
  let doc = "machine-check a run trace against the scheduler's invariants" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Audits the execution trace of a simulation run (or a whole sweep) and emits a \
         certificate: either every checker passed, or the violations as findings in the same \
         JSONL shape $(b,bgl-lint) uses. The checkers re-derive the schedule from the events \
         alone — torus occupancy by sweep line, job lifecycles, partition-box geometry, job \
         conservation, and the run summary's metrics recomputed within a relative tolerance — \
         so a passing certificate does not depend on trusting the engine that wrote the trace.";
      `P
        "A trace whose final line was cut mid-write (a crash tail) is still certifiable: the \
         torn line is dropped, like the sweep journal reader does. A run section with no \
         run_summary only certifies when a complete section of the same run id replays it as \
         an exact event prefix — the kill-then-resume case.";
    ]
  in
  Cmd.v
    (Cmd.info "bgl-audit" ~doc ~man)
    Term.(const run $ Bgl_core.Cli_flags.format $ Bgl_core.Cli_flags.quiet $ paths)

let () = exit (Cmd.eval' cmd)
