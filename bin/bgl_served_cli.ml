(* bgl-served: the scheduler simulation service.

     bgl-served start --listen unix:/tmp/bgl.sock --state-dir /tmp/bgl-state
     bgl-served ping --listen unix:/tmp/bgl.sock
     bgl-served call --listen unix:/tmp/bgl.sock '{"op":"sim","algo":"mfp","jobs":200}'

   `start` runs the daemon in the foreground until SIGTERM/SIGINT,
   then drains: admitted requests finish and journal, the socket
   closes, exit 0. SIGKILL is survivable too — acknowledged requests
   are durable, and the next `start` on the same --state-dir finishes
   them (resuming their cell journals) before accepting traffic.

   `call` sends one request and streams every response frame to
   stdout as JSONL. Exit codes: 0 result received, the frame's own
   code for an error frame, 75 rejected by backpressure (after
   --retries attempts), 74 transport failure.

   `ping` / `health` / `metrics` are `call` with a fixed payload. *)

open Cmdliner
open Bgl_resilience
module Serve = Bgl_serve

let listen_arg =
  let listen_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error
            (fun e -> `Msg e)
            (Serve.Server.listen_of_string s)),
        fun ppf l -> Format.pp_print_string ppf (Serve.Server.listen_to_string l) )
  in
  Arg.(
    required
    & opt (some listen_conv) None
    & info [ "l"; "listen" ] ~docv:"ADDR"
        ~doc:
          "Server address: $(b,unix:PATH) (or a bare path), $(b,tcp:HOST:PORT), \
           or $(b,:PORT) for 127.0.0.1.")

(* --- start ------------------------------------------------------- *)

let state_dir =
  Arg.(
    required
    & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Durable request store: acknowledged requests, their cell journals, \
           per-attempt traces, and completed results live here; a restarted \
           server recovers from it.")

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains in the persistent pool (default: CPU count, capped).")

let queue_cap =
  Arg.(
    value & opt int 16
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission queue bound. A request past the bound is rejected with a \
           retry-after hint — the server never buffers unboundedly.")

let memo_cap =
  Arg.(
    value & opt int 64
    & info [ "memo" ] ~docv:"N" ~doc:"In-memory result memo entries (FIFO eviction).")

let retry_after =
  Arg.(
    value & opt float 1.0
    & info [ "retry-after" ] ~docv:"SECONDS"
        ~doc:"Hint advertised in rejected frames.")

let progress =
  Arg.(
    value
    & opt (some int) None
    & info [ "progress" ] ~docv:"N"
        ~doc:"Print an engine heartbeat line to stderr every N simulation events.")

let fail_specs =
  Arg.(
    value & opt_all string []
    & info [ "fail" ] ~docv:"SITE[:MODE]"
        ~doc:
          "Arm a failpoint, e.g. serve.frame:once, serve.accept:visit=2, \
           pool.cell:index=3,once. Repeatable. Injected faults degrade to \
           per-request or per-connection errors, never a server exit.")

let arm_failpoints specs =
  List.fold_left
    (fun acc spec ->
      Result.bind acc (fun () ->
          match Failpoint.of_string spec with
          | Ok s ->
              Failpoint.arm s;
              Ok ()
          | Error e -> Error.usagef "bad --fail %s: %s" spec e))
    (Ok ()) specs

let start listen state_dir domains queue_cap memo_cap retry_after progress specs =
  Error.run ~prog:"bgl-served" @@ fun () ->
  Result.bind (arm_failpoints specs) @@ fun () ->
  if queue_cap < 1 then Error.usagef "--queue must be >= 1 (got %d)" queue_cap
  else if memo_cap < 1 then Error.usagef "--memo must be >= 1 (got %d)" memo_cap
  else begin
    let config = Serve.Server.default_config ~listen ~state_dir in
    let config =
      {
        config with
        Serve.Server.domains =
          Option.value domains ~default:config.Serve.Server.domains;
        queue_capacity = queue_cap;
        memo_capacity = memo_cap;
        retry_after;
        heartbeat_every = progress;
      }
    in
    if config.Serve.Server.domains < 1 then
      Error.usagef "--domains must be >= 1 (got %d)" config.Serve.Server.domains
    else Result.map (fun () -> 0) (Serve.Server.run config)
  end

let start_cmd =
  let doc = "run the service until SIGTERM, then drain and exit 0" in
  Cmd.v
    (Cmd.info "start" ~doc)
    Term.(
      const start $ listen_arg $ state_dir $ domains $ queue_cap $ memo_cap
      $ retry_after $ progress $ fail_specs)

(* --- client ------------------------------------------------------ *)

let connect_once listen =
  match listen with
  | Serve.Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      fd
  | Serve.Server.Tcp { host; port } ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
       with e -> Unix.close fd; raise e);
      fd

(* A restarting server recovers unfinished requests before it binds
   its socket, so "connection refused / no such socket" right after a
   restart is expected — poll until the deadline. *)
let connect ~connect_timeout listen =
  let deadline = Unix.gettimeofday () +. connect_timeout in
  let rec attempt () =
    match connect_once listen with
    | fd -> fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.2;
        attempt ()
  in
  attempt ()

let frame_ev frame =
  match Bgl_obs.Jsonl.parse frame with
  | Error _ -> None
  | Ok v -> Option.bind (Bgl_obs.Jsonl.member "ev" v) Bgl_obs.Jsonl.to_string_opt

let frame_int field frame =
  match Bgl_obs.Jsonl.parse frame with
  | Error _ -> None
  | Ok v ->
      Option.map int_of_float
        (Option.bind (Bgl_obs.Jsonl.member field v) Bgl_obs.Jsonl.to_float)

(* One request/response exchange; every received frame is echoed to
   stdout. [`Rejected delay] asks the caller to retry. *)
let exchange ~connect_timeout listen payload =
  let fd = connect ~connect_timeout listen in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Serve.Frame.write fd payload;
      let reader = Serve.Frame.reader fd in
      let rec loop () =
        match Serve.Frame.read reader with
        | Error detail ->
            Error (Error.Parse { name = "response stream"; detail })
        | Ok None ->
            Error
              (Error.Io
                 {
                   path = Serve.Server.listen_to_string listen;
                   detail = "server closed the stream before a final frame";
                 })
        | Ok (Some frame) -> (
            print_endline frame;
            match frame_ev frame with
            | Some ("pong" | "health" | "metrics" | "result") -> Ok `Done
            | Some "error" ->
                Ok (`Failed (Option.value (frame_int "code" frame) ~default:70))
            | Some "rejected" ->
                Ok
                  (`Rejected
                    (Option.value
                       (Option.bind (Bgl_obs.Jsonl.parse frame |> Result.to_option)
                          (fun v ->
                            Option.bind (Bgl_obs.Jsonl.member "retry_after" v)
                              Bgl_obs.Jsonl.to_float))
                       ~default:1.0))
            | Some ("accepted" | "cell") | Some _ | None -> loop ())
      in
      loop ())

let call_once ?(connect_timeout = 10.) ~retries listen payload =
  let rec attempt left =
    match exchange ~connect_timeout listen payload with
    | Error e -> Error e
    | Ok `Done -> Ok 0
    | Ok (`Failed code) -> Ok code
    | Ok (`Rejected delay) ->
        if left > 0 then begin
          Unix.sleepf delay;
          attempt (left - 1)
        end
        else Ok 75
  in
  attempt retries

let connect_timeout_arg =
  Arg.(
    value & opt float 10.
    & info [ "connect-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Keep retrying the initial connection for this long — a restarting \
           server recovers its unfinished requests before it binds the socket.")

let retries =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "On a backpressure rejection, sleep the advertised retry-after and \
           resubmit up to N times before giving up with exit 75.")

let payload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"JSON" ~doc:"The request payload; $(b,-) reads it from stdin.")

let read_stdin () = In_channel.input_all In_channel.stdin

let call listen connect_timeout retries payload =
  Error.run ~prog:"bgl-served" @@ fun () ->
  let payload = if payload = "-" then read_stdin () else payload in
  call_once ~connect_timeout ~retries listen payload

let call_cmd =
  let doc = "send one request, stream the response frames to stdout" in
  Cmd.v (Cmd.info "call" ~doc)
    Term.(const call $ listen_arg $ connect_timeout_arg $ retries $ payload_arg)

let fixed_op name op =
  let doc = Printf.sprintf "shorthand for call '{\"op\":\"%s\"}'" op in
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const (fun listen ->
          Error.run ~prog:"bgl-served" @@ fun () ->
          call_once ~retries:0 listen (Printf.sprintf {|{"op":%S}|} op))
      $ listen_arg)

let cmd =
  let doc = "crash-safe, backpressured scheduler simulation service" in
  Cmd.group
    (Cmd.info "bgl-served" ~doc)
    [
      start_cmd;
      call_cmd;
      fixed_op "ping" "ping";
      fixed_op "health" "health";
      fixed_op "metrics" "metrics";
    ]

let () = exit (Cmd.eval' cmd)
