(* bgl-sweep: regenerate the paper's figures or the ablation studies as
   text tables + CSV files. A cmdliner front-end over Bgl_core.Figures
   and Bgl_core.Ablations (bench/main.exe is the no-flags batch
   driver). *)

open Cmdliner

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"ID"
         ~doc:"Figure ids (intro, 3..10) and/or ablation ids (combine, fpos, checkpoint, \
               adaptive, backfill, migration, failure-model, repair, candidates). Empty = all \
               figures.")

let full = Arg.(value & flag & info [ "full" ] ~doc:"Full scale: 3000 jobs, 3 seeds.")

let n_jobs =
  Arg.(value & opt (some int) None & info [ "n-jobs" ] ~docv:"N" ~doc:"Override jobs per run.")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Simulate sweep cells on N OCaml domains (default 1 = sequential). Output is \
               byte-identical for every N; 0 = one per core.")

let seeds =
  Arg.(value & opt (some (list int)) None & info [ "seeds" ] ~docv:"S1,S2,..."
         ~doc:"Override the seed list.")

let out =
  Arg.(value & opt string "results" & info [ "out"; "o" ] ~docv:"DIR" ~doc:"CSV output directory.")

let chart = Arg.(value & flag & info [ "chart" ] ~doc:"Also print ASCII charts.")

let metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write a metrics snapshot aggregated over every run of the sweep: Prometheus text \
               format, or CSV if FILE ends in .csv.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Stream all runs' lifecycle events to FILE as JSONL; runs are framed by \
               run_begin/run_end lines.")

let progress =
  Arg.(value & opt (some int) None & info [ "progress" ] ~docv:"N"
         ~doc:"Print a heartbeat line to stderr every N simulation events (cumulative across \
               runs).")

let run ids full n_jobs jobs seeds out chart metrics_out trace_out progress =
  let obs = Bgl_core.Obs_cli.setup ?metrics_out ?trace_out ?progress () in
  let domains = if jobs = 0 then Bgl_parallel.Pool.recommended () else jobs in
  if domains < 1 then (
    prerr_endline "bgl: --jobs must be >= 0";
    exit 1);
  let scale = if full then Bgl_core.Figures.full else Bgl_core.Figures.quick in
  let scale =
    { scale with
      Bgl_core.Figures.n_jobs = Option.value n_jobs ~default:scale.Bgl_core.Figures.n_jobs;
      seeds = Option.value seeds ~default:scale.Bgl_core.Figures.seeds;
    }
  in
  if not (Sys.file_exists out) then Sys.mkdir out 0o755;
  let emit fig =
    Format.printf "%a@." Bgl_core.Series.pp_figure fig;
    if chart then Format.printf "%a@." (Bgl_core.Series.pp_chart ?height:None) fig;
    let path = Bgl_core.Series.save_csv fig ~dir:out in
    Format.printf "  (csv: %s)@.@." path
  in
  let resolve id =
    match Bgl_core.Figures.by_id id with
    | Some f -> Ok (`Figures f)
    | None -> (
        match Bgl_core.Ablations.by_id id with
        | Some f -> Ok (`Ablation f)
        | None -> (
            match Bgl_core.Baseline.by_id id with
            | Some f -> Ok (`Ablation f)
            | None -> Error id))
  in
  let code =
    match ids with
    | [] ->
        List.iter emit (Bgl_core.Figures.all ~domains scale);
        0
    | ids -> (
        let resolved = List.map resolve ids in
        match List.find_opt Result.is_error resolved with
        | Some (Error id) ->
            Format.eprintf "unknown id %S@." id;
            1
        | Some (Ok _) | None ->
            List.iter
              (function
                | Ok (`Figures f) -> List.iter emit (Bgl_core.Figures.produce ~domains f scale)
                | Ok (`Ablation f) ->
                    List.iter emit
                      (Bgl_core.Figures.produce ~domains (fun scale -> [ f scale ]) scale)
                | Error _ -> ())
              resolved;
            0)
  in
  Bgl_core.Obs_cli.finish obs;
  code

let cmd =
  let doc = "regenerate the paper's evaluation figures and ablations" in
  Cmd.v (Cmd.info "bgl-sweep" ~doc)
    Term.(
      const run $ ids $ full $ n_jobs $ jobs $ seeds $ out $ chart $ metrics_out $ trace_out
      $ progress)

let () = exit (Cmd.eval' cmd)
