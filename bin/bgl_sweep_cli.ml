(* bgl-sweep: regenerate the paper's figures or the ablation studies as
   text tables + CSV files. A cmdliner front-end over Bgl_core.Sweep
   (bench/main.exe is the no-flags batch driver).

   Sweeps are crash-safe and supervised: --journal records every
   completed cell durably, --resume skips the journaled cells of an
   interrupted sweep, --fail arms deterministic failpoints, and
   --cell-fuel/--cell-deadline bound each cell. Figure tables go to
   stdout; resilience reporting goes to stderr, so a resumed sweep's
   stdout is byte-identical to an uninterrupted one. *)

open Cmdliner

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"ID"
         ~doc:"Figure ids (intro, 3..10) and/or ablation ids (combine, fpos, checkpoint, \
               adaptive, backfill, migration, failure-model, repair, candidates). Empty = all \
               figures.")

let full = Arg.(value & flag & info [ "full" ] ~doc:"Full scale: 3000 jobs, 3 seeds.")

let n_jobs =
  Arg.(value & opt (some int) None & info [ "n-jobs" ] ~docv:"N" ~doc:"Override jobs per run.")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Simulate sweep cells on N OCaml domains (default 1 = sequential). Output is \
               byte-identical for every N; 0 = one per core.")

let seeds =
  Arg.(value & opt (some (list int)) None & info [ "seeds" ] ~docv:"S1,S2,..."
         ~doc:"Override the seed list.")

let out =
  Arg.(value & opt string "results" & info [ "out"; "o" ] ~docv:"DIR" ~doc:"CSV output directory.")

let chart = Arg.(value & flag & info [ "chart" ] ~doc:"Also print ASCII charts.")

let metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write a metrics snapshot aggregated over every run of the sweep: Prometheus text \
               format, or CSV if FILE ends in .csv.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Stream all runs' lifecycle events to FILE as JSONL; every run is framed by a \
               run_meta header and a run_summary trailer, and every line is tagged with its \
               run id so parallel sweeps demultiplex.")

let audit =
  Arg.(value & flag & info [ "audit" ]
         ~doc:"After the sweep, re-read the --trace-out file and machine-check every run \
               section (bgl-audit's checkers); report violations to stderr and exit 1 on any.")

let progress =
  Arg.(value & opt (some int) None & info [ "progress" ] ~docv:"N"
         ~doc:"Print a heartbeat line to stderr every N simulation events (cumulative across \
               runs).")

let journal =
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
         ~doc:"Append every completed sweep cell to FILE as one fsync'd JSONL record \
               (truncates FILE first). A killed sweep loses at most the cells in flight; \
               restart it with --resume FILE.")

let resume =
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE"
         ~doc:"Restore completed cells from journal FILE, simulate only the missing ones, and \
               keep appending to FILE. Output is byte-identical to an uninterrupted run.")

let fail =
  Arg.(value & opt_all string [] & info [ "fail" ] ~docv:"SPEC"
         ~doc:"Arm a deterministic failpoint, e.g. pool.cell:index=3 (that sweep cell always \
               fails), pool.cell:index=3,once (fails once, the retry succeeds), \
               journal.append:once, trace.swf.read, site:p=0.1,seed=7. Repeatable.")

let retries =
  Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
         ~doc:"Attempts per sweep cell before it is quarantined (>= 1).")

let cell_fuel =
  Arg.(value & opt (some int) None & info [ "cell-fuel" ] ~docv:"N"
         ~doc:"Cooperative budget: at most N engine/finder checks per cell attempt; a cell \
               that runs out is quarantined, not hung.")

let cell_deadline =
  Arg.(value & opt (some float) None & info [ "cell-deadline" ] ~docv:"SECONDS"
         ~doc:"Cooperative budget: wall-clock limit per cell attempt.")

let dims = Bgl_core.Cli_flags.dims

let differential =
  Arg.(value & opt ~vopt:(Some 1) (some int) None & info [ "differential-check" ] ~docv:"N"
         ~doc:"Cross-check accelerated partition-finder queries against the reference finder \
               in every sweep cell (all domains); abort with a divergence report on any \
               disagreement. Bare flag checks every query (orders of magnitude slower — \
               debug/CI at small sizes); with a value, only every Nth query is checked, the \
               affordable mode at full machine scale.")

let ( let* ) = Result.bind

let arm_failpoints specs =
  List.fold_left
    (fun acc spec ->
      let* () = acc in
      match Bgl_resilience.Failpoint.of_string spec with
      | Ok s ->
          Bgl_resilience.Failpoint.arm s;
          Ok ()
      | Error msg -> Bgl_resilience.Error.usagef "--fail %s" msg)
    (Ok ()) specs

let run ids full n_jobs jobs seeds dims out chart metrics_out trace_out progress journal resume
    fail retries cell_fuel cell_deadline differential audit =
  Bgl_resilience.Error.run ~prog:"bgl-sweep" @@ fun () ->
  let open Bgl_resilience in
  let* () =
    match differential with
    | None -> Ok (Bgl_partition.Finder.set_differential false)
    | Some n when n >= 1 -> Ok (Bgl_partition.Finder.set_differential ~sample:n true)
    | Some n -> Error.usagef "--differential-check %d: sample must be >= 1" n
  in
  let* () =
    if audit && trace_out = None then
      Error.usagef "--audit needs --trace-out (it re-reads the trace file)"
    else Ok ()
  in
  (* -- validation: every bad flag is a structured Usage error (exit 2) -- *)
  let* domains =
    if jobs < 0 then Error.usagef "--jobs must be >= 0, got %d" jobs
    else Ok (if jobs = 0 then Bgl_parallel.Pool.recommended () else jobs)
  in
  let* () =
    match n_jobs with
    | Some n when n <= 0 -> Error.usagef "--n-jobs must be positive, got %d" n
    | _ -> Ok ()
  in
  let* () =
    match seeds with
    | Some [] -> Error.usagef "--seeds needs at least one seed"
    | _ -> Ok ()
  in
  let* () =
    if retries < 1 then Error.usagef "--retries must be >= 1, got %d" retries else Ok ()
  in
  let* () =
    match cell_fuel with
    | Some n when n <= 0 -> Error.usagef "--cell-fuel must be positive, got %d" n
    | _ -> Ok ()
  in
  let* () =
    match cell_deadline with
    | Some d when d <= 0. -> Error.usagef "--cell-deadline must be positive, got %g" d
    | _ -> Ok ()
  in
  let* journal_mode =
    match (journal, resume) with
    | Some _, Some _ -> Error.usagef "--journal and --resume are mutually exclusive"
    | Some path, None -> Ok (Bgl_core.Sweep.Fresh path)
    | None, Some path ->
        if Sys.file_exists path then Ok (Bgl_core.Sweep.Resume path)
        else Result.error (Error.Io { path; detail = "no such journal" })
    | None, None -> Ok Bgl_core.Sweep.No_journal
  in
  let* () = arm_failpoints fail in
  let policy =
    {
      Supervise.default with
      max_attempts = retries;
      budget =
        (match (cell_fuel, cell_deadline) with
        | None, None -> None
        | fuel, deadline -> Some (fun () -> Budget.make ?fuel ?deadline ()));
    }
  in
  let scale = if full then Bgl_core.Figures.full else Bgl_core.Figures.quick in
  let scale =
    { scale with
      Bgl_core.Figures.n_jobs = Option.value n_jobs ~default:scale.Bgl_core.Figures.n_jobs;
      seeds = Option.value seeds ~default:scale.Bgl_core.Figures.seeds;
      dims = Bgl_core.Cli_flags.parse_dims ~default:scale.Bgl_core.Figures.dims dims;
    }
  in
  let* producer =
    let resolve id =
      match Bgl_core.Figures.by_id id with
      | Some f -> Ok f
      | None -> (
          match Bgl_core.Ablations.by_id id with
          | Some f -> Ok (fun scale -> [ f scale ])
          | None -> (
              match Bgl_core.Baseline.by_id id with
              | Some f -> Ok (fun scale -> [ f scale ])
              | None -> Error.usagef "unknown id %S" id))
    in
    match ids with
    | [] -> Ok (fun scale -> Bgl_core.Figures.all ~domains:1 scale)
    | ids ->
        let* fs =
          List.fold_left
            (fun acc id ->
              let* fs = acc in
              let* f = resolve id in
              Ok (f :: fs))
            (Ok []) ids
        in
        let fs = List.rev fs in
        Ok (fun scale -> List.concat_map (fun f -> f scale) fs)
  in
  if not (Sys.file_exists out) then Sys.mkdir out 0o755;
  let obs = Bgl_core.Obs_cli.setup ?metrics_out ?trace_out ?progress () in
  let result = Bgl_core.Sweep.run ~policy ~journal:journal_mode ~domains producer scale in
  let* outcome =
    match result with
    | Error e ->
        Bgl_core.Obs_cli.finish obs;
        Result.error e
    | Ok outcome -> Ok outcome
  in
  List.iter
    (fun fig ->
      Format.printf "%a@." Bgl_core.Series.pp_figure fig;
      if chart then Format.printf "%a@." (Bgl_core.Series.pp_chart ?height:None) fig;
      let path = Bgl_core.Series.save_csv fig ~dir:out in
      Format.printf "  (csv: %s)@.@." path)
    outcome.Bgl_core.Sweep.figures;
  Bgl_core.Obs_cli.finish obs;
  (* Resilience summary on stderr, so stdout stays byte-identical
     between clean, journaled and resumed sweeps. *)
  if outcome.replayed > 0 || outcome.journal_dropped > 0 then
    Format.eprintf "bgl-sweep: %d cells simulated, %d replayed from journal%s@."
      outcome.simulated outcome.replayed
      (if outcome.journal_dropped > 0 then
         Printf.sprintf " (%d journal lines dropped)" outcome.journal_dropped
       else "");
  if Supervise.degraded outcome.degradation then
    Format.eprintf "bgl-sweep: %a@." Supervise.pp_degradation outcome.degradation;
  (* Self-check after Obs_cli.finish closed the trace channel; a
     degradation error still takes precedence over the audit verdict. *)
  let* audit_exit =
    match (audit, trace_out) with
    | true, Some path ->
        let* cert = Bgl_audit.Driver.audit_files [ path ] in
        Format.eprintf "%a@?" Bgl_audit.Driver.pp cert;
        Ok (if Bgl_audit.Driver.pass cert then 0 else 1)
    | _ -> Ok 0
  in
  match Bgl_core.Sweep.degraded_error outcome with
  | Some e -> Result.error e
  | None -> Ok audit_exit

let cmd =
  let doc = "regenerate the paper's evaluation figures and ablations" in
  Cmd.v (Cmd.info "bgl-sweep" ~doc)
    Term.(
      const run $ ids $ full $ n_jobs $ jobs $ seeds $ dims $ out $ chart $ metrics_out
      $ trace_out $ progress $ journal $ resume $ fail $ retries $ cell_fuel $ cell_deadline
      $ differential $ audit)

let () = exit (Cmd.eval' cmd)
