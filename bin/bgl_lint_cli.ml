(* bgl-lint: the determinism & domain-safety static analyzer.

     bgl-lint lib bin test                 # human report, .lint-waivers applied
     bgl-lint --format jsonl lib           # one JSON object per finding
     bgl-lint --no-waivers lib             # report waived findings too

   Exit codes follow the Bgl_resilience.Error conventions: 0 clean,
   1 non-waived findings (or stale waivers), 2 usage, 65 a source or
   waiver file failed to parse, 74 I/O. *)

open Cmdliner

let paths =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"PATH" ~doc:"Files or directories to scan (directories recurse to *.ml).")

let waivers_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "waivers" ] ~docv:"FILE"
        ~doc:"Waiver file (default: .lint-waivers in the current directory, when present).")

let no_waivers =
  Arg.(
    value & flag
    & info [ "no-waivers" ]
        ~doc:"Ignore the waiver file and report every finding (CI uses this to smoke-check the \
              JSONL stream on a known-nonempty report).")

let typed =
  Arg.(
    value & flag
    & info [ "typed" ]
        ~doc:"Run the typed interprocedural pass (rules R7-R10) over compiled $(b,.cmt) units \
              instead of the syntactic per-file pass (R1-R6). Requires a prior $(b,dune build); \
              when invoked from the source root the $(b,_build/default) mirror of each path is \
              scanned.")

let default_waivers = ".lint-waivers"

let run format quiet typed waivers_file no_waivers paths =
  Bgl_resilience.Error.run ~prog:"bgl-lint" @@ fun () ->
  Bgl_core.Cli_flags.set_quiet quiet;
  let ( let* ) = Result.bind in
  let* waivers =
    if no_waivers then Ok []
    else
      match waivers_file with
      | Some path -> Bgl_lint.Waivers.load path
      | None ->
          if Sys.file_exists default_waivers then Bgl_lint.Waivers.load default_waivers
          else Ok []
  in
  let* outcome =
    if typed then Bgl_lint.Driver.run_typed ~waivers paths
    else Bgl_lint.Driver.run ~waivers paths
  in
  (match format with
  | Bgl_core.Cli_flags.Human -> Format.printf "%a@?" Bgl_lint.Driver.pp_human outcome
  | Bgl_core.Cli_flags.Jsonl ->
      List.iter print_endline (Bgl_lint.Driver.to_jsonl outcome));
  Bgl_core.Cli_flags.notef "%a@." Bgl_lint.Driver.pp_summary outcome;
  Ok (if Bgl_lint.Driver.clean outcome then 0 else 1)

let cmd =
  let doc = "statically check the tree for determinism and domain-safety violations" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every $(b,*.ml) under the given paths with the compiler's own parser and \
         reports the rule violations R1-R6 (wall-clock reads, stdlib Random, unsynchronized \
         top-level mutable state, swallowed exceptions, float-literal equality, stray stdout in \
         lib/). Findings a $(b,.lint-waivers) entry covers are suppressed; waivers that cover \
         nothing are stale and reported as findings themselves.";
      `P
        "With $(b,--typed), analyzes the compiler's $(b,.cmt) output instead: a cross-module \
         call graph supports R7 (nondeterministic primitives reachable from deterministic \
         roots, reported with the call path), R8 (mutable state captured by closures crossing \
         domains), R9 (catch-alls that can swallow typed control exceptions), and R10 (Job \
         lifecycle writes outside Job.transition). An R7 waiver doubles as a taint barrier on \
         its file.";
    ]
  in
  Cmd.v
    (Cmd.info "bgl-lint" ~doc ~man)
    Term.(
      const run $ Bgl_core.Cli_flags.format $ Bgl_core.Cli_flags.quiet $ typed $ waivers_file
      $ no_waivers $ paths)

let () = exit (Cmd.eval' cmd)
