(* bgl-sim: run one fault-aware scheduling simulation and print its
   metrics report.

   The workload is either a synthetic log drawn from a built-in profile
   (--profile nasa|sdsc|llnl) or a real SWF file (--swf). Failures are
   either synthetic (--failures, on the paper's count scale) or a
   failure-log file (--failure-log). *)

open Cmdliner

let profile_conv =
  let parse s =
    match Bgl_workload.Profile.by_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown profile %S (nasa, sdsc, llnl)" s))
  in
  Arg.conv (parse, fun ppf (p : Bgl_workload.Profile.t) -> Format.pp_print_string ppf p.name)

let algo_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Bgl_core.Scenario.algo_of_string s) in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Bgl_core.Scenario.algo_label a))

let profile =
  Arg.(value & opt profile_conv Bgl_workload.Profile.sdsc & info [ "profile" ] ~docv:"NAME"
         ~doc:"Synthetic workload profile: nasa, sdsc or llnl.")

let swf =
  Arg.(value & opt (some file) None & info [ "swf" ] ~docv:"FILE"
         ~doc:"Replay a real SWF job log instead of a synthetic one.")

let failure_log =
  Arg.(value & opt (some file) None & info [ "failure-log" ] ~docv:"FILE"
         ~doc:"Replay a failure-log file instead of a synthetic trace.")

let n_jobs =
  Arg.(value & opt int 2000 & info [ "jobs"; "n" ] ~docv:"N" ~doc:"Number of synthetic jobs.")

let load = Arg.(value & opt float 1.0 & info [ "load"; "c" ] ~docv:"C" ~doc:"Load-scale coefficient.")

let failures =
  Arg.(value & opt (some int) None & info [ "failures"; "f" ] ~docv:"N"
         ~doc:"Failure count on the paper's scale (default: the profile's).")

let algo =
  Arg.(value & opt algo_conv Bgl_core.Scenario.Fault_oblivious & info [ "algo"; "a" ] ~docv:"ALGO"
         ~doc:"Scheduling algorithm: first-fit, mfp, balancing:<a>, tie-breaking:<a>.")

let seed = Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")

let no_backfill = Arg.(value & flag & info [ "no-backfill" ] ~doc:"Disable EASY backfilling.")
let migration = Arg.(value & flag & info [ "migration" ] ~doc:"Enable job migration.")

let repair =
  Arg.(value & opt float 0. & info [ "repair" ] ~docv:"SECONDS"
         ~doc:"Node downtime after a failure (paper: 0).")

let checkpoint =
  Arg.(value & opt (some float) None & info [ "checkpoint" ] ~docv:"SECONDS"
         ~doc:"Enable periodic checkpointing with this interval (60 s overhead).")

let per_job = Arg.(value & flag & info [ "per-job" ] ~doc:"Also print one line per job.")

let timeline =
  Arg.(value & flag & info [ "timeline" ] ~doc:"Print an ASCII machine-utilisation strip.")

let metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write a metrics snapshot after the run: Prometheus text format, or CSV if FILE \
               ends in .csv.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Stream every lifecycle event to FILE as JSONL, one line per event (constant \
               memory, any run length).")

let progress =
  Arg.(value & opt (some int) None & info [ "progress" ] ~docv:"N"
         ~doc:"Print a heartbeat line to stderr every N simulation events.")

let audit =
  Arg.(value & flag & info [ "audit" ]
         ~doc:"After the run, re-read the --trace-out file and machine-check the schedule \
               (bgl-audit's checkers); report violations to stderr and exit 1 on any.")

let quiet = Bgl_core.Cli_flags.quiet

let fail =
  Arg.(value & opt_all string [] & info [ "fail" ] ~docv:"SPEC"
         ~doc:"Arm a deterministic failpoint (e.g. trace.swf.read, \
               trace.failure_log.read:once). Repeatable; mainly for testing the error paths.")

let dims = Bgl_core.Cli_flags.dims

let differential =
  Arg.(value & opt ~vopt:(Some 1) (some int) None & info [ "differential-check" ] ~docv:"N"
         ~doc:"Cross-check accelerated partition-finder queries against the reference finder \
               during the run; abort with a divergence report on any disagreement. Bare flag \
               checks every query (orders of magnitude slower — debug/CI at small sizes); \
               with a value, only every Nth query is checked, the affordable mode at full \
               machine scale.")

let arm_failpoints specs =
  List.fold_left
    (fun acc spec ->
      Result.bind acc (fun () ->
          match Bgl_resilience.Failpoint.of_string spec with
          | Ok s ->
              Bgl_resilience.Failpoint.arm s;
              Ok ()
          | Error msg -> Bgl_resilience.Error.usagef "--fail %s" msg))
    (Ok ()) specs

let run profile swf failure_log n_jobs load failures algo seed dims no_backfill migration repair
    checkpoint per_job timeline metrics_out trace_out progress quiet fail differential audit =
  Bgl_resilience.Error.run ~prog:"bgl-sim" @@ fun () ->
  Bgl_core.Cli_flags.set_quiet quiet;
  let ( let* ) = Result.bind in
  let* () = arm_failpoints fail in
  let* () =
    if audit && trace_out = None then
      Bgl_resilience.Error.usagef "--audit needs --trace-out (it re-reads the trace file)"
    else Ok ()
  in
  let* () =
    match differential with
    | None -> Ok (Bgl_partition.Finder.set_differential false)
    | Some n when n >= 1 -> Ok (Bgl_partition.Finder.set_differential ~sample:n true)
    | Some n -> Bgl_resilience.Error.usagef "--differential-check %d: sample must be >= 1" n
  in
  let obs = Bgl_core.Obs_cli.setup ?metrics_out ?trace_out ?progress () in
  let recorder = if timeline then Some (Bgl_sim.Recorder.create ()) else None in
  let config =
    {
      Bgl_sim.Config.default with
      dims = Bgl_core.Cli_flags.parse_dims ~default:Bgl_sim.Config.default.dims dims;
      backfill = not no_backfill;
      migration;
      migration_overhead = (if migration then 60. else 0.);
      repair_time = repair;
      checkpoint =
        Option.map (fun interval -> Bgl_sim.Checkpoint.Periodic { interval; overhead = 60. })
          checkpoint;
    }
  in
  let scenario =
    Bgl_core.Scenario.make ~n_jobs ~load ?failures_paper:failures ~seed ~config ~profile algo
  in
  let outcome =
    match (swf, failure_log) with
    | None, None when recorder = None -> Ok (Bgl_core.Scenario.run scenario)
    | _ -> (
        (* File-driven run: bypass the synthetic generators. *)
        let log_result =
          match swf with
          | None ->
              Ok
                (Bgl_trace.Job_log.scale_runtime ~c:load
                   (Bgl_workload.Synthetic.generate
                      { profile; n_jobs; max_nodes = Bgl_torus.Dims.volume config.dims; seed }))
          | Some path -> (
              match Bgl_trace.Swf.load path with
              | Ok (log, report) ->
                  if report.skipped > 0 || report.malformed <> [] then
                    Bgl_core.Cli_flags.notef "note: %d jobs skipped, %d malformed lines@."
                      report.skipped
                      (List.length report.malformed);
                  Ok (Bgl_trace.Job_log.scale_runtime ~c:load log)
              | Error msg -> Error (Bgl_resilience.Error.Parse { name = path; detail = msg }))
        in
        match log_result with
        | Error e -> Error e
        | Ok log -> (
            let failures_result =
              match failure_log with
              | Some path ->
                  Result.map_error
                    (fun msg -> Bgl_resilience.Error.Parse { name = path; detail = msg })
                    (Bgl_trace.Failure_log.load path)
              | None ->
                  let n_events = Bgl_core.Scenario.injected_failures scenario in
                  if n_events = 0 then Ok (Bgl_trace.Failure_log.make ~name:"no-failures" [])
                  else
                    Ok
                      (Bgl_failure.Generator.generate
                         (Bgl_failure.Generator.default
                            ~span:(Bgl_trace.Job_log.span log *. 1.5)
                            ~volume:(Bgl_torus.Dims.volume config.dims)
                            ~n_events ~seed:(seed lxor 0x5DEECE)))
            in
            match failures_result with
            | Error e -> Error e
            | Ok failure_trace ->
                let index = Bgl_predict.Failure_index.of_log failure_trace in
                let predictor_seed = seed lxor 0x2545F in
                let policy =
                  match algo with
                  | Bgl_core.Scenario.First_fit -> Bgl_sched.Placement.first_fit
                  | Bgl_core.Scenario.Random_fit -> Bgl_sched.Placement.random ~seed:predictor_seed
                  | Bgl_core.Scenario.Fault_oblivious -> Bgl_sched.Placement.mfp
                  | Bgl_core.Scenario.Safest ->
                      Bgl_sched.Placement.safest
                        ~predictor:(Bgl_predict.Predictor.oracle index) ()
                  | Bgl_core.Scenario.Balancing { confidence } ->
                      Bgl_sched.Placement.balancing
                        ~predictor:(Bgl_predict.Predictor.balancing ~confidence index)
                        ()
                  | Bgl_core.Scenario.Balancing_history { half_life; threshold } ->
                      Bgl_sched.Placement.balancing
                        ~predictor:(Bgl_predict.History.ewma ~half_life ~threshold index)
                        ()
                  | Bgl_core.Scenario.Tie_breaking { accuracy } ->
                      Bgl_sched.Placement.tie_breaking
                        ~predictor:
                          (Bgl_predict.Predictor.tie_breaking ~accuracy ~seed:predictor_seed index)
                        ()
                  | Bgl_core.Scenario.Tie_breaking_history { half_life; threshold } ->
                      Bgl_sched.Placement.tie_breaking
                        ~predictor:(Bgl_predict.History.ewma ~half_life ~threshold index)
                        ()
                in
                Ok
                  (Bgl_sim.Engine.run ~config ?recorder ~policy ~log ~failures:failure_trace ~seed
                     ())))
  in
  match outcome with
  | Error e ->
      Bgl_core.Obs_cli.finish obs;
      Result.error e
  | Ok outcome ->
      Bgl_core.Obs_cli.finish ~report:outcome.report obs;
      Format.printf "run: %s@." outcome.name;
      if outcome.dropped_jobs > 0 then
        Format.printf "dropped %d oversize jobs at ingest@." outcome.dropped_jobs;
      Format.printf "%a@." Bgl_sim.Metrics.pp_report outcome.report;
      if not outcome.complete then Format.printf "WARNING: some jobs never completed@.";
      Option.iter
        (fun r ->
          let segments = Bgl_core.Timeline.segments r in
          Format.printf "timeline (|%s|)@."
            (Bgl_core.Timeline.render segments ~volume:(Bgl_torus.Dims.volume config.dims)
               ~width:72))
        recorder;
      if per_job then
        Array.iter
          (fun (j : Bgl_sim.Job.t) ->
            if Bgl_sim.Job.is_completed j then
              Format.printf "job %d size=%d wait=%.0f response=%.0f slowdown=%.2f restarts=%d@."
                j.spec.id j.spec.size (Bgl_sim.Job.wait_time j) (Bgl_sim.Job.response_time j)
                (Bgl_sim.Job.bounded_slowdown j) j.restarts)
          outcome.jobs;
      (* Self-check: the channel is closed and flushed by Obs_cli.finish
         above, so the trace on disk is complete. *)
      match (audit, trace_out) with
      | true, Some path ->
          let* cert = Bgl_audit.Driver.audit_files [ path ] in
          Format.eprintf "%a@?" Bgl_audit.Driver.pp cert;
          Ok (if Bgl_audit.Driver.pass cert then 0 else 1)
      | _ -> Ok 0

(* ------------------------------------------------------------------ *)
(* bench: one full simulation with span timing on, then the profile *)

let bench profile n_jobs load failures algo seed dims no_backfill migration metrics_out =
  Bgl_resilience.Error.run ~prog:"bgl-sim" @@ fun () ->
  let obs = Bgl_core.Obs_cli.setup ?metrics_out () in
  Bgl_obs.Span.set_enabled true;
  let config =
    {
      Bgl_sim.Config.default with
      dims = Bgl_core.Cli_flags.parse_dims ~default:Bgl_sim.Config.default.dims dims;
      backfill = not no_backfill;
      migration;
    }
  in
  let scenario =
    Bgl_core.Scenario.make ~n_jobs ~load ?failures_paper:failures ~seed ~config ~profile algo
  in
  let t0 = Unix.gettimeofday () in
  let outcome = Bgl_core.Scenario.run scenario in
  let wall = Unix.gettimeofday () -. t0 in
  Bgl_obs.Span.set_enabled false;
  Format.printf "run: %s@." outcome.name;
  Format.printf "%a@." Bgl_sim.Metrics.pp_report outcome.report;
  Format.printf "wall time: %.3f s@.@." wall;
  Format.printf "%a@." Bgl_obs.Span.pp_profile ();
  Bgl_core.Obs_cli.finish ~report:outcome.report obs;
  Ok 0

let run_term =
  Term.(
    const run $ profile $ swf $ failure_log $ n_jobs $ load $ failures $ algo $ seed $ dims
    $ no_backfill $ migration $ repair $ checkpoint $ per_job $ timeline $ metrics_out
    $ trace_out $ progress $ quiet $ fail $ differential $ audit)

let bench_cmd =
  let doc = "profile one simulation: run with span timers on, print the timing table" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      const bench $ profile $ n_jobs $ load $ failures $ algo $ seed $ dims $ no_backfill
      $ migration $ metrics_out)

let cmd =
  let doc = "run one fault-aware BG/L scheduling simulation" in
  Cmd.group ~default:run_term (Cmd.info "bgl-sim" ~doc) [ bench_cmd ]

let () = exit (Cmd.eval' cmd)
