(* bgl-trace: generate and inspect job logs (SWF) and failure logs.

     bgl-trace jobs --profile sdsc --jobs 2000 --out log.swf
     bgl-trace failures --events 300 --span 1e6 --out failures.log
     bgl-trace inspect log.swf
     bgl-trace inspect failures.log --kind failures *)

open Cmdliner

let profile_conv =
  let parse s =
    match Bgl_workload.Profile.by_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown profile %S (nasa, sdsc, llnl)" s))
  in
  Arg.conv (parse, fun ppf (p : Bgl_workload.Profile.t) -> Format.pp_print_string ppf p.name)

(* ---- jobs ---- *)

let gen_jobs profile n_jobs max_nodes seed load out =
  Bgl_resilience.Error.run ~prog:"bgl-trace" @@ fun () ->
  let log =
    Bgl_workload.Synthetic.generate { profile; n_jobs; max_nodes; seed }
    |> Bgl_trace.Job_log.scale_runtime ~c:load
  in
  (match out with
  | Some path ->
      Bgl_trace.Swf.save log path;
      Format.printf "wrote %d jobs to %s@." (Bgl_trace.Job_log.length log) path
  | None -> print_string (Bgl_trace.Swf.to_string log));
  Format.printf "%a@." Bgl_trace.Job_log.pp_stats log;
  Format.printf "offered load on %d nodes: %.3f@." max_nodes
    (Bgl_trace.Job_log.offered_load log ~nodes:max_nodes);
  Ok 0

let jobs_cmd =
  let n_jobs = Arg.(value & opt int 2000 & info [ "jobs"; "n" ] ~docv:"N") in
  let max_nodes = Arg.(value & opt int 128 & info [ "nodes" ] ~docv:"N") in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED") in
  let load = Arg.(value & opt float 1.0 & info [ "load"; "c" ] ~docv:"C") in
  let profile = Arg.(value & opt profile_conv Bgl_workload.Profile.sdsc & info [ "profile" ]) in
  let out = Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "jobs" ~doc:"generate a synthetic job log (SWF)")
    Term.(const gen_jobs $ profile $ n_jobs $ max_nodes $ seed $ load $ out)

(* ---- failures ---- *)

let gen_failures events span volume seed skew burst uniform out =
  Bgl_resilience.Error.run ~prog:"bgl-trace" @@ fun () ->
  let log =
    if uniform then
      Bgl_failure.Generator.poisson_uniform ~span ~volume ~n_events:events ~seed
    else
      Bgl_failure.Generator.generate
        {
          (Bgl_failure.Generator.default ~span ~volume ~n_events:events ~seed) with
          node_skew = skew;
          burst_mean_size = burst;
        }
  in
  (match out with
  | Some path ->
      Bgl_trace.Failure_log.save log path;
      Format.printf "wrote %d events to %s@." (Bgl_trace.Failure_log.length log) path
  | None -> print_string (Bgl_trace.Failure_log.to_string log));
  Format.printf "%a@." Bgl_trace.Failure_log.pp_stats log;
  Ok 0

let failures_cmd =
  let events = Arg.(value & opt int 300 & info [ "events"; "n" ] ~docv:"N") in
  let span = Arg.(value & opt float 1e6 & info [ "span" ] ~docv:"SECONDS") in
  let volume = Arg.(value & opt int 128 & info [ "nodes" ] ~docv:"N") in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED") in
  let skew = Arg.(value & opt float 1.4 & info [ "skew" ] ~docv:"ZIPF") in
  let burst = Arg.(value & opt float 3. & info [ "burst" ] ~docv:"MEAN") in
  let uniform = Arg.(value & flag & info [ "uniform" ] ~doc:"Uniform Poisson trace (no bursts/skew).") in
  let out = Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "failures" ~doc:"generate a synthetic failure log")
    Term.(const gen_failures $ events $ span $ volume $ seed $ skew $ burst $ uniform $ out)

(* ---- inspect ---- *)

let inspect path kind =
  Bgl_resilience.Error.run ~prog:"bgl-trace" @@ fun () ->
  let as_failures () =
    match Bgl_trace.Failure_log.load path with
    | Ok log ->
        Format.printf "%a@." Bgl_trace.Failure_log.pp_stats log;
        let nodes = Bgl_trace.Failure_log.nodes log in
        let counts =
          List.map
            (fun n ->
              ( n,
                Array.fold_left
                  (fun acc (e : Bgl_trace.Failure_log.event) -> if e.node = n then acc + 1 else acc)
                  0 log.events ))
            nodes
          |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
        in
        Format.printf "top failing nodes:@.";
        List.iteri (fun i (n, c) -> if i < 10 then Format.printf "  node %3d: %d events@." n c) counts;
        Ok ()
    | Error e -> Error e
  in
  let as_jobs () =
    match Bgl_trace.Swf.load path with
    | Ok (log, report) ->
        Format.printf "%a@." Bgl_trace.Job_log.pp_stats log;
        Format.printf "parsed %d, skipped %d, malformed %d@." report.parsed report.skipped
          (List.length report.malformed);
        Format.printf "offered load on 128 nodes: %.3f@."
          (Bgl_trace.Job_log.offered_load log ~nodes:128);
        Ok ()
    | Error e -> Error e
  in
  let as_run_trace () =
    match Bgl_audit.Trace.load_files [ path ] with
    | Error e -> Error e
    | Ok t when t.sections = [] ->
        Error (Bgl_resilience.Error.Parse { name = path; detail = "no run sections (not a run trace)" })
    | Ok t ->
        let complete = List.filter Bgl_audit.Trace.complete t.sections in
        Format.printf "run trace: %d lines, %d section(s) (%d complete)@." t.lines_total
          (List.length t.sections) (List.length complete);
        List.iter
          (fun (s : Bgl_audit.Trace.section) ->
            let span =
              match s.summary with
              | Some (_, t_end) -> t_end -. s.meta_time
              | None -> (
                  match List.rev s.events with
                  | last :: _ -> last.time -. s.meta_time
                  | [] -> 0.)
            in
            Format.printf "section %s: schema %d, policy %s, %d jobs, %.0f s%s@."
              (Option.value ~default:"(untagged)" s.run)
              s.meta.schema s.meta.policy s.meta.jobs span
              (if Bgl_audit.Trace.complete s then "" else " [truncated]");
            let counts = Hashtbl.create 8 in
            List.iter
              (fun (it : Bgl_audit.Trace.item) ->
                let k = Bgl_audit.Trace.ev_name it.event in
                Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
              s.events;
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
            |> List.sort compare
            |> List.iter (fun (k, v) -> Format.printf "  %-12s %d@." k v))
          t.sections;
        Ok ()
  in
  (* A run trace is JSONL: the first line opens with '{', which no SWF
     or failure log does. *)
  let looks_jsonl () =
    match In_channel.with_open_text path In_channel.input_line with
    | Some l -> ( match String.trim l with "" -> false | t -> t.[0] = '{')
    | None -> false
    | exception Sys_error _ -> false
  in
  let parsed result =
    Result.map_error (fun msg -> Bgl_resilience.Error.Parse { name = path; detail = msg }) result
  in
  let result =
    match kind with
    | "jobs" -> parsed (as_jobs ())
    | "failures" -> parsed (as_failures ())
    | "trace" -> as_run_trace ()
    | "auto" ->
        if looks_jsonl () then as_run_trace ()
        else ( match as_jobs () with Ok () -> Ok () | Error _ -> parsed (as_failures ()))
    | other -> Bgl_resilience.Error.usagef "unknown kind %S (jobs, failures, trace, auto)" other
  in
  Result.map (fun () -> 0) result

let inspect_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let kind =
    Arg.(value & opt string "auto" & info [ "kind" ] ~docv:"KIND"
           ~doc:"What FILE is: jobs, failures, trace (a --trace-out run trace), or auto.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"summarise a job log, failure log or run trace")
    Term.(const inspect $ path $ kind)

let () =
  let doc = "generate and inspect workload and failure traces" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "bgl-trace" ~doc) [ jobs_cmd; failures_cmd; inspect_cmd ]))
