(* Tests for the observability subsystem: registry instruments and
   exposition formats, span timers, sinks, the JSONL trace schema, the
   heartbeat, engine wiring through Bgl_obs.Runtime, and the paper's
   capacity-metric identity as a property over randomized runs. *)

open Bgl_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_counter_gauge () =
  let reg = Registry.create () in
  let c = Registry.counter reg "c_total" in
  Registry.inc c;
  Registry.inc c;
  Registry.add c 3.5;
  check_float "counter accumulates" 5.5 (Registry.counter_value c);
  let c' = Registry.counter reg "c_total" in
  Registry.inc c';
  check_float "same name, same cell" 6.5 (Registry.counter_value c);
  let g = Registry.gauge reg "g" in
  Registry.set g 42.;
  Registry.set g (-1.);
  check_float "gauge keeps last" (-1.) (Registry.gauge_value g);
  check_bool "negative add rejected" true
    (try
       Registry.add c (-1.);
       false
     with Invalid_argument _ -> true);
  check_bool "kind clash rejected" true
    (try
       ignore (Registry.gauge reg "c_total");
       false
     with Invalid_argument _ -> true)

let test_noop_registry () =
  let c = Registry.counter Registry.noop "x" in
  Registry.inc c;
  check_float "noop counter stays 0" 0. (Registry.counter_value c);
  let h = Registry.histogram Registry.noop "h" in
  Registry.observe h 1.;
  check_int "noop histogram stays empty" 0 (Registry.histogram_count h);
  check_bool "is_noop" true (Registry.is_noop Registry.noop);
  check_bool "real not noop" false (Registry.is_noop (Registry.create ()));
  check_string "noop exposition empty" "" (Registry.to_prometheus Registry.noop)

let test_histogram_bucketing () =
  let reg = Registry.create () in
  let h = Registry.histogram reg ~buckets:[| 1.; 5.; 10. |] "lat" in
  List.iter (Registry.observe h) [ 0.5; 1.; 3.; 7.; 20. ];
  check_int "count" 5 (Registry.histogram_count h);
  check_float "sum" 31.5 (Registry.histogram_sum h);
  let text = Registry.to_prometheus reg in
  let expect_line line =
    check_bool (Printf.sprintf "exposition has %S" line) true
      (List.mem line (String.split_on_char '\n' text))
  in
  (* Buckets are cumulative; le="1" is inclusive. *)
  expect_line "lat_bucket{le=\"1\"} 2";
  expect_line "lat_bucket{le=\"5\"} 3";
  expect_line "lat_bucket{le=\"10\"} 4";
  expect_line "lat_bucket{le=\"+Inf\"} 5";
  expect_line "lat_sum 31.5";
  expect_line "lat_count 5";
  expect_line "# TYPE lat histogram";
  check_bool "unsorted buckets rejected" true
    (try
       ignore (Registry.histogram reg ~buckets:[| 2.; 1. |] "bad");
       false
     with Invalid_argument _ -> true)

let test_prometheus_labels () =
  let reg = Registry.create () in
  Registry.inc (Registry.counter reg ~help:"events by kind" "ev_total{kind=\"a\"}");
  Registry.inc (Registry.counter reg "ev_total{kind=\"b\"}");
  Registry.inc (Registry.counter reg "ev_total{kind=\"b\"}");
  let text = Registry.to_prometheus reg in
  let lines = String.split_on_char '\n' text in
  check_bool "one HELP for the base name" true
    (1 = List.length (List.filter (fun l -> l = "# HELP ev_total events by kind") lines));
  check_bool "one TYPE for the base name" true
    (1 = List.length (List.filter (fun l -> l = "# TYPE ev_total counter") lines));
  check_bool "series a" true (List.mem "ev_total{kind=\"a\"} 1" lines);
  check_bool "series b" true (List.mem "ev_total{kind=\"b\"} 2" lines)

let test_csv_export () =
  let reg = Registry.create () in
  Registry.inc (Registry.counter reg "c_total");
  Registry.set (Registry.gauge reg "g") 2.5;
  let h = Registry.histogram reg ~buckets:[| 1. |] "h" in
  Registry.observe h 0.5;
  let csv = Registry.to_csv reg in
  let lines = String.split_on_char '\n' csv in
  check_string "header" "name,kind,value" (List.hd lines);
  check_bool "counter row" true (List.mem "c_total,counter,1" lines);
  check_bool "gauge row" true (List.mem "g,gauge,2.5" lines);
  check_bool "bucket row quoted (contains comma-free name)" true
    (List.exists (fun l -> l = "h_bucket{le=\"1\"},histogram,1"
                           || l = "\"h_bucket{le=\"\"1\"\"}\",histogram,1") lines);
  check_bool "sum row" true (List.mem "h_sum,histogram,0.5" lines);
  check_bool "count row" true (List.mem "h_count,histogram,1" lines)

(* ------------------------------------------------------------------ *)
(* Span timers *)

let test_span_disabled_and_enabled () =
  Span.reset ();
  Span.set_enabled false;
  check_int "disabled run passes value through" 7 (Span.time ~name:"t.off" (fun () -> 7));
  check_bool "disabled records nothing" true
    (not (List.exists (fun (s : Span.stat) -> s.name = "t.off") (Span.stats ())));
  (* A fake clock advancing 1 s per reading makes durations exact. *)
  let t = ref 0. in
  Span.set_clock (fun () ->
      t := !t +. 1.;
      !t);
  Span.set_enabled true;
  check_int "enabled run passes value through" 9 (Span.time ~name:"t.on" (fun () -> 9));
  ignore (Span.time ~name:"t.on" (fun () -> 0));
  (try Span.time ~name:"t.on" (fun () -> failwith "boom") with Failure _ -> ());
  Span.set_enabled false;
  Span.set_clock Unix.gettimeofday;
  (match List.find_opt (fun (s : Span.stat) -> s.name = "t.on") (Span.stats ()) with
  | None -> Alcotest.fail "span t.on missing"
  | Some s ->
      check_int "raising calls still counted" 3 s.count;
      check_float "each call took one fake second" 3. s.total_s;
      check_float "mean" 1. s.mean_s);
  let reg = Registry.create () in
  Span.export reg;
  check_bool "export publishes gauges" true
    (List.mem "bgl_span_calls{span=\"t.on\"}" (Registry.names reg));
  Span.reset ();
  check_int "reset clears" 0 (List.length (Span.stats ()))

(* ------------------------------------------------------------------ *)
(* Sinks *)

let test_sink_buffer_and_tee () =
  let b = Sink.buffer () in
  Sink.emit b 1;
  Sink.emit b 2;
  Sink.emit b 3;
  Alcotest.(check (list int)) "buffer keeps order" [ 1; 2; 3 ] (Sink.contents b);
  check_int "count" 3 (Sink.count b);
  check_bool "buffered" true (Sink.is_buffered b);
  let n = Sink.null () in
  Sink.emit n 9;
  check_int "null counts" 1 (Sink.count n);
  Alcotest.(check (list int)) "null retains nothing" [] (Sink.contents n);
  let lines = ref [] in
  let j = Sink.jsonl_writer ~to_json:string_of_int (fun l -> lines := l :: !lines) in
  let t = Sink.tee b j in
  Sink.emit t 4;
  Alcotest.(check (list int)) "tee reaches buffer" [ 1; 2; 3; 4 ] (Sink.contents t);
  Alcotest.(check (list string)) "tee reaches writer" [ "4" ] !lines;
  check_bool "tee buffered if a branch is" true (Sink.is_buffered t)

(* ------------------------------------------------------------------ *)
(* JSONL helpers and validator *)

let test_jsonl_valid () =
  List.iter
    (fun s -> check_bool (Printf.sprintf "valid: %s" s) true (Jsonl.valid s))
    [
      "{}"; "[]"; "null"; "true"; "-1.5e3"; "\"a\\n\\u0041\"";
      "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}"; "  [ 1 , 2 ]  ";
    ];
  List.iter
    (fun s -> check_bool (Printf.sprintf "invalid: %s" s) false (Jsonl.valid s))
    [ ""; "{"; "{\"a\":}"; "[1,]"; "nul"; "1 2"; "{'a':1}"; "{\"a\":1}}"; "\"\\x\"" ];
  check_string "escape" "a\\\"b\\\\c\\nd" (Jsonl.escape "a\"b\\c\nd");
  check_string "float null for nan" "null" (Jsonl.float Float.nan);
  check_string "obj" "{\"a\":1,\"b\":\"x\"}" (Jsonl.obj [ ("a", Jsonl.int 1); ("b", Jsonl.string "x") ])

(* ------------------------------------------------------------------ *)
(* Recorder: JSONL trace schema *)

let box x y z sx sy sz = Bgl_torus.Box.make (Bgl_torus.Coord.make x y z) (Bgl_torus.Shape.make sx sy sz)

let test_recorder_trace_schema () =
  let open Bgl_sim.Recorder in
  let cases =
    [
      ( Run_meta
          {
            time = 0.; log = "l"; failures = "f"; policy = "p";
            dims = Bgl_torus.Dims.make 4 4 8; wrap = true; jobs = 3; seed = Some 42;
            parent = None; repair_time = 0.; checkpointed = false;
          },
        {|{"ev":"run_meta","t":0.0,"schema":2,"log":"l","failures":"f","policy":"p","dims":"4x4x8","wrap":true,"jobs":3,"seed":42,"parent":null,"repair_time":0.0,"checkpointed":false}|}
      );
      ( Job_arrived { job = 5; time = 10.; size = 32; run_time = 600. },
        {|{"ev":"job_arrive","t":10.0,"job":5,"size":32,"work":600.0}|} );
      ( Job_started { job = 5; time = 10.; box = box 0 1 2 4 2 1; restart = false },
        {|{"ev":"job_start","t":10.0,"job":5,"box":{"x":0,"y":1,"z":2,"sx":4,"sy":2,"sz":1},"restart":false}|}
      );
      ( Job_killed { job = 5; time = 11.5; node = 17; lost_node_seconds = 96. },
        {|{"ev":"job_kill","t":11.5,"job":5,"node":17,"lost_node_s":96.0}|} );
      (Job_finished { job = 5; time = 12. }, {|{"ev":"job_finish","t":12.0,"job":5}|});
      ( Job_migrated { job = 5; time = 13.; from_box = box 0 0 0 1 1 1; to_box = box 1 0 0 1 1 1 },
        {|{"ev":"job_migrate","t":13.0,"job":5,"from":{"x":0,"y":0,"z":0,"sx":1,"sy":1,"sz":1},"to":{"x":1,"y":0,"z":0,"sx":1,"sy":1,"sz":1}}|}
      );
      ( Node_failed { time = 14.; node = 3; victim = Some 5 },
        {|{"ev":"node_fail","t":14.0,"node":3,"victim":5}|} );
      ( Node_failed { time = 14.; node = 3; victim = None },
        {|{"ev":"node_fail","t":14.0,"node":3,"victim":null}|} );
      (Node_repaired { time = 15.; node = 3 }, {|{"ev":"node_repair","t":15.0,"node":3}|});
    ]
  in
  List.iter
    (fun (entry, expected) ->
      let json = entry_to_json entry in
      check_string "schema line" expected json;
      check_bool "line is valid JSON" true (Jsonl.valid json))
    cases;
  (* The run tag prefixes the object without disturbing the rest. *)
  check_string "run-tagged line"
    {|{"run":"abc","ev":"job_finish","t":12.0,"job":5}|}
    (entry_to_json ~run:"abc" (Job_finished { job = 5; time = 12. }))

let test_recorder_streaming () =
  let lines = ref [] in
  let sink =
    Sink.jsonl_writer ~to_json:Bgl_sim.Recorder.entry_to_json (fun l -> lines := l :: !lines)
  in
  let r = Bgl_sim.Recorder.create ~sink () in
  Bgl_sim.Recorder.record r (Bgl_sim.Recorder.Job_finished { job = 1; time = 1. });
  Bgl_sim.Recorder.record r (Bgl_sim.Recorder.Job_finished { job = 2; time = 2. });
  check_int "length counts streamed entries" 2 (Bgl_sim.Recorder.length r);
  check_bool "not buffered" false (Bgl_sim.Recorder.is_buffered r);
  check_int "entries empty for streaming sinks" 0 (List.length (Bgl_sim.Recorder.entries r));
  check_int "two lines written" 2 (List.length !lines);
  List.iter (fun l -> check_bool "streamed line valid" true (Jsonl.valid l)) !lines

(* ------------------------------------------------------------------ *)
(* Heartbeat *)

let test_heartbeat () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let t = ref 0. in
  let clock () =
    t := !t +. 0.5;
    !t
  in
  let hb = Heartbeat.create ~out:ppf ~clock ~every:2 () in
  let snap () = { Heartbeat.sim_time = 100.; queue_depth = 3; running = 2; free_nodes = 10 } in
  for _ = 1 to 5 do
    Heartbeat.tick hb snap
  done;
  Format.pp_print_flush ppf ();
  check_int "5 ticks" 5 (Heartbeat.ticks hb);
  check_int "2 beats" 2 (Heartbeat.beats hb);
  let lines = String.split_on_char '\n' (Buffer.contents buf) |> List.filter (( <> ) "") in
  check_int "2 lines" 2 (List.length lines);
  (* 2 events per 0.5 s of fake wall clock = 4 ev/s. *)
  check_string "beat line" "[obs] events=2 sim_t=100.0 queue=3 running=2 free=10 ev/s=4"
    (List.hd lines);
  check_bool "every < 1 rejected" true
    (try
       ignore (Heartbeat.create ~every:0 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Engine wiring through Runtime *)

let run_scenario ?(seed = 3) ?(n_jobs = 80) ?(load = 1.0) ?failures () =
  let scenario =
    Bgl_core.Scenario.make ~n_jobs ~load ?failures_paper:failures ~seed
      ~profile:Bgl_workload.Profile.sdsc Bgl_core.Scenario.Fault_oblivious
  in
  Bgl_core.Scenario.run scenario

let test_engine_registry_wiring () =
  let reg = Registry.create () in
  Runtime.set_registry reg;
  let outcome = Fun.protect ~finally:Runtime.reset (fun () -> run_scenario ()) in
  let value name = Registry.counter_value (Registry.counter reg name) in
  check_float "one arrival event per job" 80. (value "bgl_sim_events_total{kind=\"arrival\"}");
  check_float "finishes = completions" (float_of_int outcome.report.completed_jobs)
    (value "bgl_sim_job_finishes_total");
  check_bool "wait histogram saw every completion" true
    (Registry.histogram_count (Registry.histogram reg "bgl_sim_job_wait_seconds")
    = outcome.report.completed_jobs);
  check_bool "snapshot renders" true (String.length (Registry.to_prometheus reg) > 0)

let test_engine_trace_wiring () =
  let lines = ref [] in
  Runtime.set_trace_writer (Some (fun l -> lines := l :: !lines));
  let outcome = Fun.protect ~finally:Runtime.reset (fun () -> run_scenario ()) in
  let lines = List.rev !lines in
  check_bool "trace non-empty" true (List.length lines > 0);
  List.iter (fun l -> check_bool "trace line valid JSON" true (Jsonl.valid l)) lines;
  let member name l =
    match Jsonl.parse l with
    | Ok v -> Option.bind (Jsonl.member name v) Jsonl.to_string_opt
    | Error _ -> None
  in
  let ev l = Option.value ~default:"" (member "ev" l) in
  check_string "first line is run_meta" "run_meta" (ev (List.hd lines));
  check_string "last line is run_summary" "run_summary" (ev (List.nth lines (List.length lines - 1)));
  (* Every line carries the same run id tag. *)
  (match member "run" (List.hd lines) with
  | None -> Alcotest.fail "run_meta line has no run tag"
  | Some rid ->
      check_bool "every line tagged with the run id" true
        (List.for_all (fun l -> member "run" l = Some rid) lines));
  let finishes = List.length (List.filter (fun l -> ev l = "job_finish") lines) in
  check_int "one finish line per completed job" outcome.report.completed_jobs finishes

(* ------------------------------------------------------------------ *)
(* Capacity-metric identity over randomized runs (Section 3.4) *)

let prop_omega_identity =
  QCheck.Test.make ~name:"omega_util + omega_unused + omega_lost = 1 across random runs"
    ~count:8
    QCheck.(triple (int_bound 1000) (float_range 0.6 1.6) (int_bound 40))
    (fun (seed, load, failures) ->
      let outcome = run_scenario ~seed ~n_jobs:60 ~load ~failures () in
      let r = outcome.report in
      let sum = r.util +. r.unused +. r.lost in
      Float.abs (sum -. 1.) <= 1e-9
      && r.util >= 0. && r.util <= 1. +. 1e-9
      && r.unused >= 0. && r.unused <= 1. +. 1e-9)

let () =
  Alcotest.run "bgl_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
          Alcotest.test_case "noop registry" `Quick test_noop_registry;
          Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "prometheus labels" `Quick test_prometheus_labels;
          Alcotest.test_case "csv export" `Quick test_csv_export;
        ] );
      ( "span",
        [ Alcotest.test_case "disabled and enabled" `Quick test_span_disabled_and_enabled ] );
      ( "sink", [ Alcotest.test_case "buffer, null, tee" `Quick test_sink_buffer_and_tee ] );
      ( "jsonl", [ Alcotest.test_case "validator and emitters" `Quick test_jsonl_valid ] );
      ( "recorder",
        [
          Alcotest.test_case "trace schema" `Quick test_recorder_trace_schema;
          Alcotest.test_case "streaming sink" `Quick test_recorder_streaming;
        ] );
      ("heartbeat", [ Alcotest.test_case "beats every N ticks" `Quick test_heartbeat ]);
      ( "engine",
        [
          Alcotest.test_case "registry wiring" `Quick test_engine_registry_wiring;
          Alcotest.test_case "trace wiring" `Quick test_engine_trace_wiring;
        ] );
      ("metrics", [ QCheck_alcotest.to_alcotest prop_omega_identity ]);
    ]
