(* Tests for the placement policies (Section 5 of the paper). *)

open Bgl_torus
open Bgl_sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let box_t = Alcotest.testable Box.pp Box.equal

let job ?(size = 4) ?(run_time = 1000.) ?(estimate = 1000.) () =
  { Bgl_trace.Job_log.id = 0; arrival = 0.; size; run_time; estimate }

let index_of events =
  Bgl_predict.Failure_index.of_log
    (Bgl_trace.Failure_log.make ~name:"t"
       (List.map (fun (time, node) -> { Bgl_trace.Failure_log.time; node }) events))

let candidates_for grid volume = Bgl_partition.Finder.find Bgl_partition.Finder.Prefix grid ~volume

let choose policy grid ?(j = job ()) volume =
  let ctx = Policy.make_ctx ~now:0. grid in
  policy.Policy.choose ctx ~job:j ~volume ~candidates:(candidates_for grid volume)

(* ------------------------------------------------------------------ *)

let test_first_fit_picks_first () =
  let grid = Grid.create Dims.bgl in
  let candidates = candidates_for grid 8 in
  let ctx = Policy.make_ctx ~now:0. grid in
  Alcotest.(check (option box_t))
    "first candidate" (Some (List.hd candidates))
    (Bgl_sched.Placement.first_fit.choose ctx ~job:(job ()) ~volume:8 ~candidates)

let test_empty_candidates () =
  let grid = Grid.create Dims.bgl in
  let ctx = Policy.make_ctx ~now:0. grid in
  List.iter
    (fun (policy : Policy.t) ->
      Alcotest.(check (option box_t)) (policy.name ^ " none") None
        (policy.choose ctx ~job:(job ()) ~volume:8 ~candidates:[]))
    [
      Bgl_sched.Placement.first_fit;
      Bgl_sched.Placement.mfp;
      Bgl_sched.Placement.balancing ~predictor:Bgl_predict.Predictor.null ();
      Bgl_sched.Placement.tie_breaking ~predictor:Bgl_predict.Predictor.null ();
    ]

let test_mfp_loss_shortcut_agrees () =
  (* mfp_loss with the maximal-box shortcut must equal the direct
     Mfp.loss computation for every candidate. *)
  let rng = Bgl_stats.Rng.create ~seed:5 in
  for _ = 1 to 20 do
    let grid = Grid.create Dims.bgl in
    for node = 0 to 127 do
      if Bgl_stats.Rng.unit_float rng < 0.5 then Grid.occupy_node grid node ~owner:1
    done;
    let ctx = Policy.make_ctx ~now:0. grid in
    List.iter
      (fun candidate ->
        check_int "shortcut = direct"
          (Bgl_partition.Mfp.loss grid candidate)
          (Bgl_sched.Placement.mfp_loss ctx candidate))
      (candidates_for grid 4)
  done

let test_mfp_minimises_loss () =
  (* Figure 1 setup: the MFP policy must pick a placement with minimal
     MFP loss. *)
  let dims = Dims.make 4 4 1 in
  let grid = Grid.create ~wrap:false dims in
  Grid.occupy grid (Box.make (Coord.make 0 0 0) (Shape.make 2 2 1)) ~owner:1;
  let candidates = candidates_for grid 2 in
  let ctx = Policy.make_ctx ~now:0. grid in
  match Bgl_sched.Placement.mfp.choose ctx ~job:(job ~size:2 ()) ~volume:2 ~candidates with
  | None -> Alcotest.fail "no placement"
  | Some best ->
      let best_loss = Bgl_partition.Mfp.loss grid best in
      List.iter
        (fun c -> check_bool "no candidate beats it" true (Bgl_partition.Mfp.loss grid c >= best_loss))
        candidates

let test_balancing_equals_mfp_without_prediction () =
  (* With the null predictor, E_loss = L_MFP, so balancing must agree
     with the MFP policy on every grid. *)
  let rng = Bgl_stats.Rng.create ~seed:6 in
  let balancing = Bgl_sched.Placement.balancing ~predictor:Bgl_predict.Predictor.null () in
  for _ = 1 to 20 do
    let grid = Grid.create Dims.bgl in
    for node = 0 to 127 do
      if Bgl_stats.Rng.unit_float rng < 0.4 then Grid.occupy_node grid node ~owner:1
    done;
    Alcotest.(check (option box_t))
      "same choice"
      (choose Bgl_sched.Placement.mfp grid 8)
      (choose balancing grid 8)
  done

let test_balancing_avoids_doomed_when_tied () =
  (* Two symmetric columns, one doomed: even tiny confidence flips the
     choice to the stable one. *)
  let dims = Dims.make 4 2 1 in
  let grid = Grid.create ~wrap:false dims in
  Grid.occupy grid (Box.make (Coord.make 1 0 0) (Shape.make 2 2 1)) ~owner:1;
  let idx = index_of [ (500., Coord.index dims (Coord.make 0 0 0)) ] in
  let balancing =
    Bgl_sched.Placement.balancing ~predictor:(Bgl_predict.Predictor.balancing ~confidence:0.1 idx) ()
  in
  match choose balancing grid ~j:(job ~size:2 ()) 2 with
  | None -> Alcotest.fail "no placement"
  | Some box ->
      check_bool "avoids x=0 column" false (Box.member dims box (Coord.make 0 0 0))

let test_balancing_confidence_crossover () =
  (* The walkthrough scenario: low confidence accepts the doomed
     min-MFP-loss column, high confidence pays one MFP unit for
     stability. *)
  let dims = Dims.make 4 4 1 in
  let grid = Grid.create ~wrap:false dims in
  Grid.occupy grid (Box.make (Coord.make 0 0 0) (Shape.make 2 4 1)) ~owner:0;
  Grid.occupy grid (Box.make (Coord.make 3 3 0) (Shape.make 1 1 1)) ~owner:1;
  let doomed = Coord.make 2 0 0 in
  let idx = index_of [ (500., Coord.index dims doomed) ] in
  let pick confidence =
    let balancing =
      Bgl_sched.Placement.balancing ~predictor:(Bgl_predict.Predictor.balancing ~confidence idx) ()
    in
    Option.get (choose balancing grid ~j:(job ~size:4 ()) 4)
  in
  check_bool "low confidence takes the doomed column" true (Box.member dims (pick 0.1) doomed);
  check_bool "high confidence pays for stability" false (Box.member dims (pick 0.9) doomed)

let test_balancing_decline_threshold () =
  let dims = Dims.make 2 1 1 in
  let grid = Grid.create ~wrap:false dims in
  let idx = index_of [ (500., 0); (500., 1) ] in
  (* Every candidate is doomed with probability 1: a threshold below 1
     makes the policy decline. *)
  let balancing =
    Bgl_sched.Placement.balancing ~decline_threshold:0.5
      ~predictor:(Bgl_predict.Predictor.balancing ~confidence:1.0 idx)
      ()
  in
  Alcotest.(check (option box_t)) "declines" None (choose balancing grid ~j:(job ~size:2 ()) 2);
  let permissive =
    Bgl_sched.Placement.balancing
      ~predictor:(Bgl_predict.Predictor.balancing ~confidence:1.0 idx)
      ()
  in
  check_bool "without threshold it places" true (choose permissive grid ~j:(job ~size:2 ()) 2 <> None)

let test_balancing_combine_rules_differ () =
  (* One candidate with two moderately doomed nodes vs one with a
     single highly doomed node: product and max rank them
     differently. *)
  let dims = Dims.make 2 1 1 in
  let grid = Grid.create ~wrap:false dims in
  let p =
    {
      Bgl_predict.Predictor.name = "synthetic";
      node_prob =
        (fun ~node ~now:_ ~horizon:_ -> if node = 0 then 0.5 else 0.45);
      node_will_fail = (fun ~node:_ ~now:_ ~horizon:_ -> true);
    }
  in
  (* candidates are the two single cells; E_loss = P_f * 1 (no MFP
     difference on a line of 2? occupying either cell leaves MFP 1, so
     L_MFP ties) -> product picks node 1 (0.45), max picks node 1 too...
     use partition_prob directly to check the formulas instead. *)
  ignore grid;
  let prob combine nodes =
    Bgl_predict.Predictor.partition_prob p ~combine ~nodes ~now:0. ~horizon:1.
  in
  check_bool "product compounds" true (abs_float (prob `Product [ 0; 1 ] -. 0.725) < 1e-9);
  check_bool "max takes the worst" true (abs_float (prob `Max [ 0; 1 ] -. 0.5) < 1e-9)

let test_tie_breaking_prefers_safe_tie () =
  let dims = Dims.make 4 2 1 in
  let grid = Grid.create ~wrap:false dims in
  Grid.occupy grid (Box.make (Coord.make 1 0 0) (Shape.make 2 2 1)) ~owner:1;
  let idx = index_of [ (100., Coord.index dims (Coord.make 0 0 0)) ] in
  let tb =
    Bgl_sched.Placement.tie_breaking
      ~predictor:(Bgl_predict.Predictor.tie_breaking ~accuracy:1.0 ~seed:1 idx)
      ()
  in
  match choose tb grid ~j:(job ~size:2 ~run_time:600. ~estimate:600. ()) 2 with
  | None -> Alcotest.fail "no placement"
  | Some box -> check_bool "picks the safe column" false (Box.member dims box (Coord.make 0 0 0))

let test_tie_breaking_all_doomed_still_places () =
  let dims = Dims.make 2 1 1 in
  let grid = Grid.create ~wrap:false dims in
  let idx = index_of [ (100., 0); (100., 1) ] in
  let tb =
    Bgl_sched.Placement.tie_breaking
      ~predictor:(Bgl_predict.Predictor.tie_breaking ~accuracy:1.0 ~seed:1 idx)
      ()
  in
  check_bool "arbitrary choice when every candidate is doomed" true
    (choose tb grid ~j:(job ~size:1 ~run_time:600. ~estimate:600. ()) 1 <> None)

let test_tie_breaking_ignores_non_tied_safe () =
  (* A safe candidate with a worse MFP loss must not be preferred: the
     tie-breaking algorithm only consults the predictor among ties. *)
  let dims = Dims.make 4 4 1 in
  let grid = Grid.create ~wrap:false dims in
  Grid.occupy grid (Box.make (Coord.make 0 0 0) (Shape.make 2 4 1)) ~owner:0;
  Grid.occupy grid (Box.make (Coord.make 3 3 0) (Shape.make 1 1 1)) ~owner:1;
  (* Unique min-loss candidate is the x=2 column, and it is doomed. *)
  let idx = index_of [ (500., Coord.index dims (Coord.make 2 0 0)) ] in
  let tb =
    Bgl_sched.Placement.tie_breaking
      ~predictor:(Bgl_predict.Predictor.tie_breaking ~accuracy:1.0 ~seed:1 idx)
      ()
  in
  match choose tb grid ~j:(job ~size:4 ()) 4 with
  | None -> Alcotest.fail "no placement"
  | Some box ->
      check_bool "still takes the min-loss doomed column" true
        (Box.member dims box (Coord.make 2 0 0))

let test_random_policy () =
  let grid = Grid.create Dims.bgl in
  let candidates = candidates_for grid 8 in
  let ctx = Policy.make_ctx ~now:0. grid in
  let pick seed =
    Bgl_sched.Placement.(random ~seed).choose ctx ~job:(job ()) ~volume:8 ~candidates
  in
  (match pick 1 with
  | Some b -> check_bool "member of candidates" true (List.exists (Box.equal b) candidates)
  | None -> Alcotest.fail "no placement");
  Alcotest.(check (option box_t)) "deterministic in seed" (pick 1) (pick 1);
  (* across many seeds, more than one distinct candidate gets picked *)
  let distinct =
    List.init 20 pick |> List.filter_map Fun.id |> List.sort_uniq Box.compare |> List.length
  in
  check_bool "spreads over candidates" true (distinct > 1)

let test_safest_policy () =
  let dims = Dims.make 4 4 1 in
  let grid = Grid.create ~wrap:false dims in
  Grid.occupy grid (Box.make (Coord.make 0 0 0) (Shape.make 2 4 1)) ~owner:0;
  Grid.occupy grid (Box.make (Coord.make 3 3 0) (Shape.make 1 1 1)) ~owner:1;
  (* Same setup as the balancing crossover: the min-MFP-loss column is
     doomed. Safest must avoid it at ANY stake, unlike balancing at low
     confidence. *)
  let doomed = Coord.make 2 0 0 in
  let idx = index_of [ (500., Coord.index dims doomed) ] in
  let safest =
    Bgl_sched.Placement.safest ~predictor:(Bgl_predict.Predictor.balancing ~confidence:0.1 idx) ()
  in
  match choose safest grid ~j:(job ~size:4 ()) 4 with
  | None -> Alcotest.fail "no placement"
  | Some box -> check_bool "avoids doomed even at low confidence" false (Box.member dims box doomed)

(* ------------------------------------------------------------------ *)
(* Orientation handling: partitions are rectangular and the finder
   enumerates every rotation of every divisor shape, so the policies
   must cope with candidate lists mixing orientations — and pick the
   right one when occupancy or MFP loss singles one out. *)

let shape_t = Alcotest.testable Shape.pp Shape.equal

let candidate_shapes grid volume =
  candidates_for grid volume
  |> List.map (fun b -> b.Box.shape)
  |> List.sort_uniq Shape.compare

let test_candidates_cover_rotations () =
  (* Empty 4x4x1 grid: every rotation of 4x1x1 and 2x2x1 that fits the
     dims must appear among the volume-4 candidates — and nothing
     else. *)
  let grid = Grid.create ~wrap:false (Dims.make 4 4 1) in
  Alcotest.(check (list shape_t))
    "all fitting orientations"
    [ Shape.make 1 4 1; Shape.make 2 2 1; Shape.make 4 1 1 ]
    (candidate_shapes grid 4)

let test_orientation_forced_by_occupancy () =
  (* Occupy all but one row, then all but one column: in each case a
     single orientation of the volume-4 shape survives and every policy
     must return it. *)
  let dims = Dims.make 4 4 1 in
  let scenarios =
    [
      ("row", Box.make (Coord.make 0 1 0) (Shape.make 4 3 1), Shape.make 4 1 1);
      ("column", Box.make (Coord.make 1 0 0) (Shape.make 3 4 1), Shape.make 1 4 1);
    ]
  in
  List.iter
    (fun (label, blocker, expect_shape) ->
      let grid = Grid.create ~wrap:false dims in
      Grid.occupy grid blocker ~owner:1;
      let expected = Box.make (Coord.make 0 0 0) expect_shape in
      Alcotest.(check (list box_t)) (label ^ ": unique candidate") [ expected ]
        (candidates_for grid 4);
      List.iter
        (fun (policy : Policy.t) ->
          Alcotest.(check (option box_t))
            (label ^ ": " ^ policy.name)
            (Some expected)
            (choose policy grid ~j:(job ~size:4 ()) 4))
        [ Bgl_sched.Placement.first_fit; Bgl_sched.Placement.mfp ])
    scenarios

let test_mfp_picks_loss_free_orientation () =
  (* 4x4x1 with a 2x2 block occupied at (0,2): the 4x1 and 1x4
     orientations each cost 4 nodes of MFP, but a 2x2 placement can
     leave an 8-node maximal box untouched. MFP must choose the 2x2
     orientation. *)
  let dims = Dims.make 4 4 1 in
  let grid = Grid.create ~wrap:false dims in
  Grid.occupy grid (Box.make (Coord.make 0 2 0) (Shape.make 2 2 1)) ~owner:1;
  match choose Bgl_sched.Placement.mfp grid ~j:(job ~size:4 ()) 4 with
  | None -> Alcotest.fail "no placement"
  | Some box ->
      Alcotest.check shape_t "2x2 orientation" (Shape.make 2 2 1) box.Box.shape;
      check_int "zero MFP loss" 0 (Bgl_partition.Mfp.loss grid box)

(* ------------------------------------------------------------------ *)
(* Tie-breaking order: when scores tie, the earliest candidate in list
   order wins (argmin), and the tie-breaking policy scans ties in the
   same order. The engine relies on this for deterministic replay. *)

let line4 () = Grid.create ~wrap:false (Dims.make 4 1 1)

let cell i = Box.make (Coord.make i 0 0) (Shape.make 1 1 1)

(* On an empty 4x1x1 line, the end cells 0 and 3 tie at MFP loss 1
   while the middle cells cost 2: the tied set is {0, 3}. *)
let line_candidates = [ cell 0; cell 1; cell 2; cell 3 ]

let test_mfp_tie_goes_to_earliest () =
  let grid = line4 () in
  let pick candidates =
    let ctx = Policy.make_ctx ~now:0. grid in
    Bgl_sched.Placement.mfp.choose ctx ~job:(job ~size:1 ()) ~volume:1 ~candidates
  in
  check_int "end cells tie" (Bgl_partition.Mfp.loss grid (cell 0))
    (Bgl_partition.Mfp.loss grid (cell 3));
  check_bool "middle costs more" true
    (Bgl_partition.Mfp.loss grid (cell 1) > Bgl_partition.Mfp.loss grid (cell 0));
  Alcotest.(check (option box_t)) "forward order: first tied wins" (Some (cell 0))
    (pick line_candidates);
  Alcotest.(check (option box_t)) "reversed order: the other end wins" (Some (cell 3))
    (pick (List.rev line_candidates))

let test_tie_breaking_scan_order () =
  let grid = line4 () in
  let pick ~failed candidates =
    let idx = index_of (List.map (fun node -> (100., node)) failed) in
    let tb =
      Bgl_sched.Placement.tie_breaking
        ~predictor:(Bgl_predict.Predictor.tie_breaking ~accuracy:1.0 ~seed:1 idx)
        ()
    in
    let ctx = Policy.make_ctx ~now:0. grid in
    tb.Policy.choose ctx
      ~job:(job ~size:1 ~run_time:600. ~estimate:600. ())
      ~volume:1 ~candidates
  in
  (* No doomed tie: the first tied candidate wins, exactly like mfp. *)
  Alcotest.(check (option box_t)) "no doom: first tied" (Some (cell 0))
    (pick ~failed:[ 1 ] line_candidates);
  (* First tied candidate doomed: skips to the next safe tie, NOT to a
     safe non-tied candidate (cell 1 is safe but loses more MFP). *)
  Alcotest.(check (option box_t)) "doomed first tie skipped" (Some (cell 3))
    (pick ~failed:[ 0 ] line_candidates);
  (* Every tie doomed: falls back to the first tied candidate. *)
  Alcotest.(check (option box_t)) "all ties doomed: first tied" (Some (cell 0))
    (pick ~failed:[ 0; 3 ] line_candidates);
  (* Order sensitivity survives the predictor: reversed list, reversed
     winner. *)
  Alcotest.(check (option box_t)) "reversed: last becomes first" (Some (cell 3))
    (pick ~failed:[ 1 ] (List.rev line_candidates))

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_grid =
  QCheck.make
    ~print:(fun (seed, p) -> Printf.sprintf "seed=%d p=%.2f" seed p)
    QCheck.Gen.(pair small_int (float_bound_inclusive 0.8))

let build (seed, p) =
  let rng = Bgl_stats.Rng.create ~seed in
  let grid = Grid.create Dims.bgl in
  for node = 0 to 127 do
    if Bgl_stats.Rng.unit_float rng < p then Grid.occupy_node grid node ~owner:1
  done;
  grid

let prop_choices_are_candidates =
  QCheck.Test.make ~name:"every policy returns one of its candidates" ~count:60
    QCheck.(pair arb_grid (int_range 1 32))
    (fun (gspec, volume) ->
      let grid = build gspec in
      let candidates = candidates_for grid volume in
      let ctx = Policy.make_ctx ~now:0. grid in
      let idx = index_of [ (100., 0); (200., 5) ] in
      List.for_all
        (fun (policy : Policy.t) ->
          match policy.choose ctx ~job:(job ~size:volume ()) ~volume ~candidates with
          | None -> true
          | Some b -> List.exists (Box.equal b) candidates)
        [
          Bgl_sched.Placement.first_fit;
          Bgl_sched.Placement.mfp;
          Bgl_sched.Placement.balancing
            ~predictor:(Bgl_predict.Predictor.balancing ~confidence:0.5 idx) ();
          Bgl_sched.Placement.tie_breaking
            ~predictor:(Bgl_predict.Predictor.tie_breaking ~accuracy:0.5 ~seed:1 idx) ();
        ])

let prop_policies_leave_grid_unchanged =
  QCheck.Test.make ~name:"choosing does not mutate the grid" ~count:60
    QCheck.(pair arb_grid (int_range 1 32))
    (fun (gspec, volume) ->
      let grid = build gspec in
      let before = List.init 128 (Grid.owner grid) in
      let candidates = candidates_for grid volume in
      let ctx = Policy.make_ctx ~now:0. grid in
      ignore (Bgl_sched.Placement.mfp.choose ctx ~job:(job ~size:volume ()) ~volume ~candidates);
      List.init 128 (Grid.owner grid) = before)

let prop_mfp_early_exit_matches_exhaustive =
  (* The argmin early exit at loss 0 must return exactly the candidate
     a full first-minimum scan would. *)
  QCheck.Test.make ~name:"mfp early exit = exhaustive first-minimum" ~count:60
    QCheck.(pair arb_grid (int_range 1 16))
    (fun (gspec, volume) ->
      let grid = build gspec in
      let candidates = candidates_for grid volume in
      let ctx = Policy.make_ctx ~now:0. grid in
      let exhaustive =
        match candidates with
        | [] -> None
        | first :: rest ->
            let score c = Bgl_partition.Mfp.loss grid c in
            let best, _ =
              List.fold_left
                (fun (b, bs) c ->
                  let s = score c in
                  if s < bs then (c, s) else (b, bs))
                (first, score first) rest
            in
            Some best
      in
      let choice = Bgl_sched.Placement.mfp.choose ctx ~job:(job ~size:volume ()) ~volume ~candidates in
      match (choice, exhaustive) with
      | None, None -> true
      | Some a, Some b -> Box.equal a b
      | _ -> false)

let prop_mfp_choice_minimises =
  QCheck.Test.make ~name:"mfp policy choice has minimal loss" ~count:40
    QCheck.(pair arb_grid (int_range 1 16))
    (fun (gspec, volume) ->
      let grid = build gspec in
      let candidates = candidates_for grid volume in
      let ctx = Policy.make_ctx ~now:0. grid in
      match Bgl_sched.Placement.mfp.choose ctx ~job:(job ~size:volume ()) ~volume ~candidates with
      | None -> candidates = []
      | Some best ->
          let best_loss = Bgl_partition.Mfp.loss grid best in
          List.for_all (fun c -> Bgl_partition.Mfp.loss grid c >= best_loss) candidates)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_choices_are_candidates;
      prop_policies_leave_grid_unchanged;
      prop_mfp_early_exit_matches_exhaustive;
      prop_mfp_choice_minimises;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgl_sched"
    [
      ( "placement",
        [
          tc "first-fit" test_first_fit_picks_first;
          tc "empty candidates" test_empty_candidates;
          tc "mfp_loss shortcut" test_mfp_loss_shortcut_agrees;
          tc "mfp minimises loss" test_mfp_minimises_loss;
          tc "balancing = mfp without prediction" test_balancing_equals_mfp_without_prediction;
          tc "balancing avoids doomed tie" test_balancing_avoids_doomed_when_tied;
          tc "balancing confidence crossover" test_balancing_confidence_crossover;
          tc "balancing decline threshold" test_balancing_decline_threshold;
          tc "combine rules" test_balancing_combine_rules_differ;
          tc "tie-breaking prefers safe" test_tie_breaking_prefers_safe_tie;
          tc "tie-breaking all doomed" test_tie_breaking_all_doomed_still_places;
          tc "tie-breaking only breaks ties" test_tie_breaking_ignores_non_tied_safe;
          tc "random policy" test_random_policy;
          tc "safest policy" test_safest_policy;
        ] );
      ( "orientation",
        [
          tc "candidates cover rotations" test_candidates_cover_rotations;
          tc "occupancy forces orientation" test_orientation_forced_by_occupancy;
          tc "mfp picks loss-free orientation" test_mfp_picks_loss_free_orientation;
        ] );
      ( "tie-order",
        [
          tc "mfp tie goes to earliest" test_mfp_tie_goes_to_earliest;
          tc "tie-breaking scan order" test_tie_breaking_scan_order;
        ] );
      ("properties", props);
    ]
