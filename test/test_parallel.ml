(* Tests for the domain pool and the parallel-sweep plumbing: result
   order and exception propagation, domain-safe observability
   (counters summed across domains, spans merged), the domain-local
   finder cache, and bit-identical parallel vs sequential figures. *)

open Bgl_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_map_order () =
  let items = Array.init 100 Fun.id in
  let expect = Array.map (fun i -> i * i) items in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "squares with %d domains" domains)
        expect
        (Bgl_parallel.Pool.map ~domains (fun i -> i * i) items))
    [ 1; 2; 4; 7 ]

let test_map_edge_shapes () =
  Alcotest.(check (array int)) "empty" [||] (Bgl_parallel.Pool.map ~domains:4 (fun i -> i) [||]);
  Alcotest.(check (array int))
    "more domains than items" [| 10; 20 |]
    (Bgl_parallel.Pool.map ~domains:8 (fun i -> 10 * i) [| 1; 2 |])

let test_map_invalid_domains () =
  Alcotest.check_raises "0 domains" (Invalid_argument "Pool.map: domains must be >= 1")
    (fun () -> ignore (Bgl_parallel.Pool.map ~domains:0 Fun.id [| 1 |]))

exception Boom of int

let test_map_propagates_exception () =
  check_bool "first failing item's exception" true
    (try
       ignore
         (Bgl_parallel.Pool.map ~domains:4
            (fun i -> if i mod 3 = 0 then raise (Boom i) else i)
            (Array.init 32 (fun i -> i + 1)));
       false
     with Boom 3 -> true)

(* ------------------------------------------------------------------ *)
(* Observability across domains *)

let test_counters_sum_across_domains () =
  let reg = Bgl_obs.Registry.create () in
  let c = Bgl_obs.Registry.counter reg "test_parallel_total" in
  let n = 64 in
  ignore
    (Bgl_parallel.Pool.map ~domains:4
       (fun _ ->
         for _ = 1 to 100 do
           Bgl_obs.Registry.inc c
         done)
       (Array.make n ()));
  check_int "all increments kept" (n * 100)
    (int_of_float (Bgl_obs.Registry.counter_value c))

let test_engine_counters_after_parallel_runs () =
  (* The registry travels to workers via the Runtime snapshot; engine
     event counters must add up exactly as in a sequential sweep. *)
  let reg = Bgl_obs.Registry.create () in
  Bgl_obs.Runtime.set_registry reg;
  Fun.protect ~finally:Bgl_obs.Runtime.reset (fun () ->
      let scenarios =
        Array.of_list
          (List.map
             (fun seed ->
               Scenario.make ~n_jobs:50 ~seed ~profile:Bgl_workload.Profile.sdsc
                 Scenario.First_fit)
             [ 21; 22; 23; 24 ])
      in
      ignore (Bgl_parallel.Pool.map ~domains:4 (fun s -> (Scenario.run s).report) scenarios);
      let arrivals =
        Bgl_obs.Registry.counter reg "bgl_sim_events_total{kind=\"arrival\"}"
      in
      check_int "one arrival per job per run" 200
        (int_of_float (Bgl_obs.Registry.counter_value arrivals)))

let test_spans_merge_across_domains () =
  Bgl_obs.Span.reset ();
  Bgl_obs.Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Bgl_obs.Span.set_enabled false) (fun () ->
      ignore
        (Bgl_parallel.Pool.map ~domains:4
           (fun i -> Bgl_obs.Span.time ~name:"test.pool-span" (fun () -> i * 2))
           (Array.init 24 Fun.id)));
  match
    List.find_opt (fun (s : Bgl_obs.Span.stat) -> s.name = "test.pool-span")
      (Bgl_obs.Span.stats ())
  with
  | None -> Alcotest.fail "span not recorded"
  | Some s -> check_int "calls from every domain merged" 24 s.count

(* ------------------------------------------------------------------ *)
(* Finder cache under concurrency *)

let test_finder_cache_across_domains () =
  let open Bgl_torus in
  let d = Dims.make 4 4 4 in
  let g = Grid.create d in
  let rng = Bgl_stats.Rng.create ~seed:5 in
  for node = 0 to Dims.volume d - 1 do
    if Bgl_stats.Rng.unit_float rng < 0.4 then
      Grid.occupy_node g node ~owner:(node mod 7)
  done;
  let volumes = Array.init 16 (fun i -> i + 1) in
  let sequential =
    Array.map (fun volume -> Bgl_partition.Finder.find Bgl_partition.Finder.Pop g ~volume) volumes
  in
  let parallel =
    Bgl_parallel.Pool.map ~domains:4
      (fun volume -> Bgl_partition.Finder.find Bgl_partition.Finder.Pop g ~volume)
      volumes
  in
  check_bool "same boxes from every domain" true (parallel = sequential)

(* ------------------------------------------------------------------ *)
(* Parallel figures are bit-identical *)

let test_fig3_deterministic_across_domains () =
  let scale =
    { Figures.n_jobs = 300; seeds = [ 11; 12 ]; a_values = [ 0.; 0.5; 1. ];
      fail_fracs = [ 0.; 0.5; 1. ]; dims = Bgl_torus.Dims.bgl }
  in
  let produce domains =
    Figures.clear_cache ();
    Figures.produce ~domains (fun scale -> [ Figures.fig3 scale ]) scale
  in
  let sequential = produce 1 in
  let parallel = produce 4 in
  check_bool "fig3 identical with 1 and 4 domains" true (parallel = sequential)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgl_parallel"
    [
      ( "pool",
        [
          tc "map preserves order" test_map_order;
          tc "edge shapes" test_map_edge_shapes;
          tc "invalid domains" test_map_invalid_domains;
          tc "exception propagation" test_map_propagates_exception;
        ] );
      ( "obs",
        [
          tc "counters sum" test_counters_sum_across_domains;
          tc "engine counters" test_engine_counters_after_parallel_runs;
          tc "spans merge" test_spans_merge_across_domains;
        ] );
      ("finder", [ tc "cache across domains" test_finder_cache_across_domains ]);
      ("figures", [ tc "fig3 deterministic" test_fig3_deterministic_across_domains ]);
    ]
