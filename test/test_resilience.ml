(* Tests for the resilience subsystem: structured CLI errors,
   deterministic failpoints, cooperative budgets, supervised retry and
   quarantine, the crash-safe journal, and kill-and-resume equality of
   journaled sweeps (record-boundary and mid-record truncation). *)

open Bgl_resilience

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Every test runs with a clean failpoint table and memo cache; a
   leaked armed site would poison unrelated tests. *)
let wrap f () =
  Failpoint.reset ();
  Bgl_core.Figures.clear_cache ();
  Fun.protect ~finally:(fun () ->
      Failpoint.reset ();
      Bgl_core.Figures.clear_cache ())
    f

(* ------------------------------------------------------------------ *)
(* Error *)

let test_error_exit_codes () =
  let code e = Error.exit_code e in
  check_int "usage" 2 (code (Usage "x"));
  check_int "degraded" 3 (code (Degraded { quarantined = []; detail = "" }));
  check_int "parse" 65 (code (Parse { name = "f"; detail = "d" }));
  check_int "internal" 70 (code (Internal "x"));
  check_int "io" 74 (code (Io { path = "p"; detail = "d" }))

let test_error_of_exn () =
  (match Error.of_exn (Failpoint.Injected { site = "s"; visit = 3 }) with
  | Io _ -> ()
  | e -> Alcotest.failf "Injected should map to Io, got %s" (Error.to_string e));
  (match Error.of_exn (Budget.Budget_exceeded { site = "s"; detail = "d" }) with
  | Degraded _ -> ()
  | e -> Alcotest.failf "Budget_exceeded should map to Degraded, got %s" (Error.to_string e));
  (match Error.of_exn (Sys_error "no such file") with
  | Io _ -> ()
  | e -> Alcotest.failf "Sys_error should map to Io, got %s" (Error.to_string e));
  match Error.of_exn Exit with
  | Internal _ -> ()
  | e -> Alcotest.failf "unknown exn should map to Internal, got %s" (Error.to_string e)

let test_error_broken_pipe () =
  (* A vanished peer (broken pipe / reset) is an I/O error with exit
     code 74 in every CLI, not an unexplained Internal crash. *)
  (match Error.of_exn (Unix.Unix_error (Unix.EPIPE, "write", "")) with
  | Io _ as e -> check_int "EPIPE code" 74 (Error.exit_code e)
  | e -> Alcotest.failf "EPIPE should map to Io, got %s" (Error.to_string e));
  match Error.of_exn (Unix.Unix_error (Unix.ECONNRESET, "read", "")) with
  | Io _ as e -> check_int "ECONNRESET code" 74 (Error.exit_code e)
  | e -> Alcotest.failf "ECONNRESET should map to Io, got %s" (Error.to_string e)

let test_error_run_catches () =
  (* run never raises; stderr goes to the real stderr, which alcotest
     tolerates. *)
  check_int "ok passes through" 0 (Error.run ~prog:"t" (fun () -> Ok 0));
  check_int "error maps to its code" 65
    (Error.run ~prog:"t" (fun () -> Result.error (Error.Parse { name = "x"; detail = "y" })));
  check_int "raised exn becomes Internal" 70 (Error.run ~prog:"t" (fun () -> raise Exit))

(* ------------------------------------------------------------------ *)
(* Failpoint *)

let test_failpoint_spec_strings () =
  let ok s = match Failpoint.of_string s with Ok spec -> spec | Error m -> Alcotest.fail m in
  check_bool "bare site is Always" true ((ok "a.b").mode = Failpoint.Always);
  check_bool "once" true ((ok "a.b:once").mode = Failpoint.Once);
  check_bool "visit" true ((ok "a.b:visit=3").mode = Failpoint.Visit 3);
  check_bool "index" true ((ok "a.b:index=2").mode = Failpoint.Index 2);
  check_bool "index,once" true ((ok "a.b:index=2,once").mode = Failpoint.Index_once 2);
  check_bool "prob" true ((ok "a.b:p=0.5,seed=7").mode = Failpoint.Prob { p = 0.5; seed = 7 });
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "reject %S" s) true (Result.is_error (Failpoint.of_string s)))
    [ ""; "bad site"; "a=b"; "a.b:visit=x"; "a.b:p=2"; "a.b:index=-1"; "a.b:nonsense=1" ];
  List.iter
    (fun s ->
      check_string (Printf.sprintf "round-trip %S" s) s (Failpoint.to_string (ok s)))
    [ "a.b"; "a.b:once"; "a.b:visit=3"; "a.b:index=2"; "a.b:index=2,once" ]

let count_failures f n =
  let fired = ref 0 in
  for _ = 1 to n do
    try f () with Failpoint.Injected _ -> incr fired
  done;
  !fired

let test_failpoint_modes () =
  check_int "unarmed site never fires" 0 (count_failures (fun () -> Failpoint.hit "t.never") 10);
  Failpoint.arm { site = "t.always"; mode = Always };
  check_int "always fires every visit" 10 (count_failures (fun () -> Failpoint.hit "t.always") 10);
  Failpoint.arm { site = "t.once"; mode = Once };
  check_int "once fires once" 1 (count_failures (fun () -> Failpoint.hit "t.once") 10);
  Failpoint.arm { site = "t.v3"; mode = Visit 3 };
  check_int "visit=3 fires on third visit" 1 (count_failures (fun () -> Failpoint.hit "t.v3") 10);
  check_int "visits counted" 10 (Failpoint.visits "t.v3");
  check_int "fired counted" 1 (Failpoint.fired "t.v3");
  Failpoint.arm { site = "t.idx"; mode = Index 4 };
  let i = ref 0 in
  check_int "index=4 fires whenever item 4 runs" 3
    (count_failures
       (fun () ->
         let k = !i mod 6 in
         incr i;
         Failpoint.hit ~index:k "t.idx")
       18);
  Failpoint.arm { site = "t.idx1"; mode = Index_once 4 };
  i := 0;
  check_int "index=4,once fires only the first time" 1
    (count_failures
       (fun () ->
         let k = !i mod 6 in
         incr i;
         Failpoint.hit ~index:k "t.idx1")
       18);
  Failpoint.disarm "t.always";
  check_int "disarmed site is silent" 0 (count_failures (fun () -> Failpoint.hit "t.always") 5)

let test_failpoint_prob_deterministic () =
  let sample () =
    Failpoint.arm { site = "t.p"; mode = Prob { p = 0.3; seed = 42 } };
    let pattern = ref [] in
    for _ = 1 to 50 do
      pattern := (try Failpoint.hit "t.p"; false with Failpoint.Injected _ -> true) :: !pattern
    done;
    !pattern
  in
  let a = sample () and b = sample () in
  check_bool "same seed, same firing pattern" true (a = b);
  check_bool "p=0.3 fires sometimes" true (List.mem true a);
  check_bool "p=0.3 spares sometimes" true (List.mem false a)

(* ------------------------------------------------------------------ *)
(* Budget *)

let test_budget_fuel () =
  check_bool "no ambient budget" false (Budget.active ());
  let burned = ref 0 in
  (try
     Budget.with_budget (Some (Budget.make ~fuel:10 ())) (fun () ->
         for _ = 1 to 100 do
           Budget.check ~site:"t.loop";
           incr burned
         done)
   with Budget.Budget_exceeded { site; _ } -> check_string "site reported" "t.loop" site);
  check_int "exactly fuel checks pass" 10 !burned;
  check_bool "budget uninstalled after" false (Budget.active ())

let test_budget_none_is_transparent () =
  Budget.with_budget (Some (Budget.make ~fuel:5 ())) (fun () ->
      Budget.with_budget None (fun () ->
          check_bool "inner None keeps outer installed" true (Budget.active ());
          check_bool "outer budget still burns through a None layer" true
            (try
               for _ = 1 to 50 do
                 Budget.check ~site:"t.nested"
               done;
               false
             with Budget.Budget_exceeded _ -> true)))

let test_budget_make_validates () =
  Alcotest.check_raises "neither limit"
    (Invalid_argument "Budget.make: give fuel and/or deadline") (fun () ->
      ignore (Budget.make ()));
  check_bool "zero fuel rejected" true
    (try ignore (Budget.make ~fuel:0 ()); false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Supervise *)

(* A test policy that records backoff sleeps instead of sleeping. *)
let test_policy ?(max_attempts = 3) ?budget () =
  let slept = ref [] in
  ( { Supervise.default with max_attempts; sleep = (fun s -> slept := s :: !slept); budget },
    slept )

let test_supervise_retry_then_complete () =
  Failpoint.arm { site = "t.cell"; mode = Once };
  let policy, slept = test_policy () in
  match Supervise.run policy (fun () -> Failpoint.hit "t.cell"; 41 + 1) with
  | Completed { value; attempts } ->
      check_int "value" 42 value;
      check_int "second attempt succeeded" 2 attempts;
      check_bool "one backoff sleep" true (!slept = [ Supervise.exponential ~base:0.05 1 ])
  | Quarantined e -> Alcotest.failf "should complete after retry, got %s" e.message

let test_supervise_quarantine () =
  Failpoint.arm { site = "t.cell"; mode = Always };
  let policy, slept = test_policy () in
  match Supervise.run policy (fun () -> Failpoint.hit "t.cell") with
  | Completed _ -> Alcotest.fail "always-failing cell completed"
  | Quarantined e ->
      check_int "all attempts consumed" 3 e.attempts;
      check_bool "still transient (ran out of attempts)" true e.transient;
      check_int "backoff between each attempt" 2 (List.length !slept)

let test_supervise_budget_is_permanent () =
  let policy, slept = test_policy ~budget:(fun () -> Budget.make ~fuel:3 ()) () in
  match Supervise.run policy (fun () ->
          while true do Budget.check ~site:"t.spin" done) with
  | Completed _ -> Alcotest.fail "unbounded loop completed"
  | Quarantined e ->
      check_int "no retry for a deterministic budget blow" 1 e.attempts;
      check_bool "marked permanent" false e.transient;
      check_int "no backoff sleeps" 0 (List.length !slept)

let test_supervise_degradation_summary () =
  let outcomes =
    [|
      Supervise.Completed { value = (); attempts = 1 };
      Supervise.Completed { value = (); attempts = 2 };
      Supervise.Quarantined { message = "boom"; attempts = 3; transient = true };
    |]
  in
  let d = Supervise.degradation_of outcomes in
  check_int "total" 3 d.total;
  check_int "completed" 2 d.completed;
  check_int "retried" 1 d.retried;
  check_bool "quarantined index recorded" true (List.map fst d.quarantined = [ 2 ]);
  check_bool "degraded" true (Supervise.degraded d);
  check_bool "clean run not degraded" false
    (Supervise.degraded (Supervise.degradation_of [| Supervise.Completed { value = (); attempts = 1 } |]))

(* ------------------------------------------------------------------ *)
(* Pool.map_supervised *)

let test_pool_map_supervised_partial () =
  Failpoint.arm { site = "pool.cell"; mode = Index 5 };
  let policy, _ = test_policy () in
  List.iter
    (fun domains ->
      let outcomes, d =
        Bgl_parallel.Pool.map_supervised ~policy ~domains (fun i -> i * i)
          (Array.init 12 Fun.id)
      in
      check_int (Printf.sprintf "total with %d domains" domains) 12 d.Supervise.total;
      check_int "one quarantined" 1 (List.length d.quarantined);
      check_bool "the armed cell" true (List.map fst d.quarantined = [ 5 ]);
      Array.iteri
        (fun i -> function
          | Supervise.Completed { value; _ } ->
              check_int (Printf.sprintf "cell %d value" i) (i * i) value
          | Supervise.Quarantined _ ->
              check_int "only cell 5 is quarantined" 5 i)
        outcomes;
      (* counters must be re-armed for the next domain count *)
      Failpoint.arm { site = "pool.cell"; mode = Index 5 })
    [ 1; 3 ]

(* ------------------------------------------------------------------ *)
(* Journal *)

let temp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_journal_roundtrip () =
  let path = temp_path "bgl_test_journal.jsonl" in
  let w = Journal.create ~path in
  Journal.append w ~key:"k1" ~fields:[ ("x", Bgl_obs.Jsonl.int 1) ];
  Journal.append w ~key:"k2" ~fields:[ ("x", Bgl_obs.Jsonl.int 2) ];
  Journal.close w;
  (match Journal.load ~path with
  | Error e -> Alcotest.fail e
  | Ok (entries, dropped) ->
      check_int "two records" 2 (List.length entries);
      check_int "nothing dropped" 0 dropped;
      check_bool "keys in order" true (List.map (fun (e : Journal.entry) -> e.key) entries = [ "k1"; "k2" ]));
  (* resume: append_to extends the same file *)
  let w = Journal.append_to ~path in
  Journal.append w ~key:"k3" ~fields:[];
  Journal.close w;
  (match Journal.load ~path with
  | Error e -> Alcotest.fail e
  | Ok (entries, _) ->
      check_bool "appended after resume" true
        (List.map (fun (e : Journal.entry) -> e.key) entries = [ "k1"; "k2"; "k3" ]));
  Sys.remove path

let test_journal_tolerates_corruption () =
  let good k = Printf.sprintf "{\"cell\":%S,\"x\":1}" k in
  let text =
    String.concat "\n"
      [ good "a"; "{\"no_cell\":true}"; "garbage"; good "b"; "{\"cell\":\"trunc" ]
  in
  let entries, dropped = Journal.load_string text in
  check_bool "good records survive" true
    (List.map (fun (e : Journal.entry) -> e.key) entries = [ "a"; "b" ]);
  check_int "bad lines counted" 3 dropped;
  check_bool "empty input fine" true (Journal.load_string "" = ([], 0))

let test_journal_failpoints () =
  let path = temp_path "bgl_test_journal_fp.jsonl" in
  Failpoint.arm { site = "journal.append"; mode = Index 1 };
  let w = Journal.create ~path in
  Journal.append w ~key:"k0" ~fields:[];
  check_bool "second append fails" true
    (try Journal.append w ~key:"k1" ~fields:[]; false with Failpoint.Injected _ -> true);
  Journal.close w;
  (match Journal.load ~path with
  | Ok (entries, 0) -> check_int "only the durable record" 1 (List.length entries)
  | _ -> Alcotest.fail "journal unreadable");
  Sys.remove path

let test_journal_concurrent_appender () =
  (* The reader must tolerate a live appender on the same file: under
     O_APPEND semantics a concurrent load sees a prefix of whole
     records plus at most one torn in-flight line, which is dropped
     exactly like a crash tail — never mis-parsed, never fatal. *)
  let path = temp_path "bgl_test_journal_live.jsonl" in
  let w = Journal.create ~path in
  Journal.append w ~key:"k0" ~fields:[ ("x", Bgl_obs.Jsonl.int 0) ];
  Journal.append w ~key:"k1" ~fields:[ ("x", Bgl_obs.Jsonl.int 1) ];
  (* simulate the appender caught mid-record: a torn, unterminated line *)
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  let torn = {|{"cell":"k2","x":|} in
  ignore (Unix.write_substring fd torn 0 (String.length torn));
  (match Journal.load ~path with
  | Ok (entries, dropped) ->
      check_int "whole records visible" 2 (List.length entries);
      check_int "torn tail dropped" 1 dropped
  | Error e -> Alcotest.failf "load failed under a live appender: %s" e);
  (* the appender finishes its record: a later load sees everything *)
  let rest = {|2}|} ^ "\n" in
  ignore (Unix.write_substring fd rest 0 (String.length rest));
  Unix.close fd;
  (match Journal.load ~path with
  | Ok (entries, 0) -> check_int "completed record visible" 3 (List.length entries)
  | Ok (_, d) -> Alcotest.failf "unexpected drops after completion: %d" d
  | Error e -> Alcotest.failf "load failed: %s" e);
  Journal.close w;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Metrics report JSON round-trip (resume replays bit-exact figures) *)

let test_report_json_roundtrip () =
  let scenario =
    Bgl_core.Scenario.make ~n_jobs:80 ~load:1.0 ~seed:7
      ~profile:Bgl_workload.Profile.sdsc Bgl_core.Scenario.First_fit
  in
  let report = (Bgl_core.Scenario.run scenario).report in
  let json = Bgl_sim.Metrics.report_to_json report in
  match Bgl_obs.Jsonl.parse json with
  | Error e -> Alcotest.failf "emitted JSON unparseable: %s" e
  | Ok value -> (
      match Bgl_sim.Metrics.report_of_json value with
      | Error e -> Alcotest.failf "decode failed: %s" e
      | Ok back -> check_bool "bit-exact round-trip" true (back = report))

(* ------------------------------------------------------------------ *)
(* Sweep: kill-and-resume equality *)

let tiny_scale =
  { Bgl_core.Figures.n_jobs = 60; seeds = [ 7 ]; a_values = [ 0.9 ]; fail_fracs = [ 0.5 ];
    dims = Bgl_torus.Dims.bgl }

let intro = Option.get (Bgl_core.Figures.by_id "intro")

let figures_text figs =
  String.concat "\n" (List.map (Format.asprintf "%a" Bgl_core.Series.pp_figure) figs)

let quiet_policy = fst (test_policy ())

let run_sweep ?policy ?journal () =
  Bgl_core.Figures.clear_cache ();
  Bgl_core.Sweep.run ?policy ?journal ~domains:2 intro tiny_scale

let expect_ok = function
  | Ok o -> o
  | Error e -> Alcotest.failf "sweep failed: %s" (Error.to_string e)

let truncate_file path keep =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd keep;
  Unix.close fd

let test_sweep_resume_equality () =
  let path = temp_path "bgl_test_sweep.jsonl" in
  let clean = expect_ok (run_sweep ()) in
  let journaled = expect_ok (run_sweep ~journal:(Fresh path) ()) in
  check_string "journaling does not change figures" (figures_text clean.figures)
    (figures_text journaled.figures);
  check_bool "journal has every cell" true (journaled.simulated > 1);
  let size = (Unix.stat path).st_size in
  let lines = String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all) in
  let first_line_len = String.length (List.hd lines) + 1 in
  (* kill at a record boundary: only the first record survives *)
  truncate_file path first_line_len;
  let resumed = expect_ok (run_sweep ~journal:(Resume path) ()) in
  check_string "resume from boundary truncation is byte-identical"
    (figures_text clean.figures) (figures_text resumed.figures);
  check_int "one cell replayed" 1 resumed.replayed;
  check_int "rest simulated" (journaled.simulated - 1) resumed.simulated;
  check_int "no lines dropped" 0 resumed.journal_dropped;
  (* the resumed journal is now complete: everything replays *)
  let full = expect_ok (run_sweep ~journal:(Resume path) ()) in
  check_int "second resume simulates nothing" 0 full.simulated;
  check_string "and is still byte-identical" (figures_text clean.figures)
    (figures_text full.figures);
  (* kill mid-record: the torn tail is dropped, not mis-parsed *)
  truncate_file path (size - 7);
  let torn = expect_ok (run_sweep ~journal:(Resume path) ()) in
  check_int "torn final record dropped" 1 torn.journal_dropped;
  check_int "its cell re-simulated" 1 torn.simulated;
  check_string "mid-record truncation still byte-identical"
    (figures_text clean.figures) (figures_text torn.figures);
  Sys.remove path

let test_sweep_degraded_then_fixed () =
  let path = temp_path "bgl_test_sweep_deg.jsonl" in
  let clean = expect_ok (run_sweep ()) in
  (* one cell fails every attempt -> quarantined, sweep completes *)
  Failpoint.arm { site = "pool.cell"; mode = Index 1 };
  let degraded = expect_ok (run_sweep ~policy:quiet_policy ~journal:(Fresh path) ()) in
  Failpoint.reset ();
  check_int "one cell quarantined" 1 (List.length degraded.quarantined);
  check_int "remaining cells completed" (degraded.degradation.total - 1) degraded.simulated;
  check_bool "degraded_error names the cell" true
    (match Bgl_core.Sweep.degraded_error degraded with
    | Some (Error.Degraded { quarantined = [ name ]; _ }) ->
        let c = List.hd degraded.quarantined in
        String.length name >= String.length c.label
        && String.sub name 0 (String.length c.label) = c.label
    | _ -> false);
  check_bool "clean outcome has no degraded_error" true
    (Bgl_core.Sweep.degraded_error clean = None);
  (* fix (disarm) and resume: only the quarantined cell is simulated,
     output now matches the clean run exactly *)
  let fixed = expect_ok (run_sweep ~journal:(Resume path) ()) in
  check_int "only the quarantined cell re-simulated" 1 fixed.simulated;
  check_int "rest replayed" (degraded.degradation.total - 1) fixed.replayed;
  check_bool "no longer degraded" true (fixed.quarantined = []);
  check_string "fixed resume is byte-identical to clean"
    (figures_text clean.figures) (figures_text fixed.figures);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* qcheck: parsers never raise on corrupt bytes *)

let never_raises name f =
  QCheck.Test.make ~count:300 ~name QCheck.(string_of_size (Gen.int_bound 400)) (fun s ->
      try f s; true
      with e -> QCheck.Test.fail_reportf "%s raised %s on %S" name (Printexc.to_string e) s)

let mangle =
  (* corrupt well-formed content: truncate it, then flip one byte *)
  QCheck.(
    map
      (fun (n, k) ->
        let base = "{\"cell\":\"abc\",\"report\":{\"x\":1.5}}\n1.0\t3\n2 4\n" in
        let s = String.sub base 0 (abs n mod (String.length base + 1)) in
        let b = Bytes.of_string s in
        if Bytes.length b > 0 then Bytes.set b (abs k mod Bytes.length b) '\xff';
        Bytes.to_string b)
      (pair int int))

let qcheck_tests =
  List.map (QCheck_alcotest.to_alcotest ~verbose:false)
    [
      never_raises "Swf.of_string total" (fun s -> ignore (Bgl_trace.Swf.of_string ~name:"q" s));
      never_raises "Failure_log.of_string total" (fun s ->
          ignore (Bgl_trace.Failure_log.of_string ~name:"q" s));
      never_raises "Journal.load_string total" (fun s -> ignore (Journal.load_string s));
      never_raises "Jsonl.parse total" (fun s -> ignore (Bgl_obs.Jsonl.parse s));
      QCheck.Test.make ~count:200 ~name:"mangled records never raise" mangle (fun s ->
          ignore (Journal.load_string s);
          ignore (Bgl_trace.Failure_log.of_string ~name:"m" s);
          true);
    ]

(* ------------------------------------------------------------------ *)

let () =
  let t name f = Alcotest.test_case name `Quick (wrap f) in
  Alcotest.run "resilience"
    [
      ( "error",
        [
          t "exit codes" test_error_exit_codes;
          t "of_exn mapping" test_error_of_exn;
          t "broken pipe maps to Io/74" test_error_broken_pipe;
          t "run never raises" test_error_run_catches;
        ] );
      ( "failpoint",
        [
          t "spec strings" test_failpoint_spec_strings;
          t "firing modes" test_failpoint_modes;
          t "prob is deterministic" test_failpoint_prob_deterministic;
        ] );
      ( "budget",
        [
          t "fuel exhaustion" test_budget_fuel;
          t "None is transparent" test_budget_none_is_transparent;
          t "make validates" test_budget_make_validates;
        ] );
      ( "supervise",
        [
          t "retry then complete" test_supervise_retry_then_complete;
          t "quarantine after attempts" test_supervise_quarantine;
          t "budget blow is permanent" test_supervise_budget_is_permanent;
          t "degradation summary" test_supervise_degradation_summary;
        ] );
      ("pool", [ t "map_supervised partial results" test_pool_map_supervised_partial ]);
      ( "journal",
        [
          t "round-trip and resume" test_journal_roundtrip;
          t "tolerates corruption" test_journal_tolerates_corruption;
          t "failpoints" test_journal_failpoints;
          t "concurrent appender" test_journal_concurrent_appender;
        ] );
      ("metrics", [ t "report JSON round-trip" test_report_json_roundtrip ]);
      ( "sweep",
        [
          Alcotest.test_case "kill and resume equality" `Slow (wrap test_sweep_resume_equality);
          Alcotest.test_case "degraded then fixed" `Slow (wrap test_sweep_degraded_then_fixed);
        ] );
      ("qcheck", qcheck_tests);
    ]
