(* Tests for the workload profiles and the synthetic generator. *)

open Bgl_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let spec ?(profile = Profile.sdsc) ?(n_jobs = 500) ?(max_nodes = 128) ?(seed = 3) () =
  { Synthetic.profile; n_jobs; max_nodes; seed }

(* ------------------------------------------------------------------ *)
(* Profile *)

let test_by_name () =
  check_bool "nasa" true (Profile.by_name "nasa" <> None);
  check_bool "case insensitive" true (Profile.by_name " SDSC " <> None);
  check_bool "unknown" true (Profile.by_name "cray" = None)

let test_profiles_well_formed () =
  List.iter
    (fun (p : Profile.t) ->
      check_bool (p.name ^ " weights positive") true
        (Array.for_all (fun (_, w) -> w > 0.) p.size_mix);
      check_bool (p.name ^ " sizes positive and within machine") true
        (Array.for_all (fun (s, _) -> s > 0 && s <= p.machine_nodes) p.size_mix);
      check_bool (p.name ^ " runtime bounds") true (0. < p.runtime_min && p.runtime_min < p.runtime_cap);
      check_bool (p.name ^ " target util sane") true (0.3 < p.target_util && p.target_util < 0.95))
    Profile.all

let test_sizes_for_rescales () =
  (* LLNL is a 256-node machine: mapped onto 128 nodes, its sizes halve. *)
  let sizes = Profile.sizes_for Profile.llnl ~max_nodes:128 in
  check_bool "max is 128" true (Array.for_all (fun (s, _) -> s <= 128) sizes);
  check_bool "min scaled to 16" true (Array.exists (fun (s, _) -> s = 16) sizes);
  (* NASA already fits: unchanged. *)
  let nasa = Profile.sizes_for Profile.nasa ~max_nodes:128 in
  check_int "nasa mix unchanged" (Array.length Profile.nasa.size_mix) (Array.length nasa)

let test_sizes_for_merges_weights () =
  let sizes = Profile.sizes_for Profile.llnl ~max_nodes:16 in
  (* 256-node machine squeezed onto 16 nodes: scale 16, sizes {2,4,8,16};
     total weight must be conserved. *)
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. sizes in
  let orig = Array.fold_left (fun acc (_, w) -> acc +. w) 0. Profile.llnl.size_mix in
  check_bool "weight conserved" true (abs_float (total -. orig) < 1e-9)

let test_mean_size_positive () =
  List.iter
    (fun p ->
      let m = Profile.mean_size p ~max_nodes:128 in
      check_bool "positive and bounded" true (m > 0. && m <= 128.))
    Profile.all

(* ------------------------------------------------------------------ *)
(* Synthetic *)

let test_generate_count_and_order () =
  let log = Synthetic.generate (spec ()) in
  check_int "count" 500 (Bgl_trace.Job_log.length log);
  let sorted = ref true in
  Array.iteri
    (fun i (j : Bgl_trace.Job_log.job) ->
      if i > 0 && j.arrival < log.jobs.(i - 1).arrival then sorted := false)
    log.jobs;
  check_bool "arrivals non-decreasing" true !sorted

let test_generate_bounds () =
  List.iter
    (fun profile ->
      let log = Synthetic.generate (spec ~profile ~n_jobs:400 ()) in
      Array.iter
        (fun (j : Bgl_trace.Job_log.job) ->
          check_bool "size in [1, 128]" true (j.size >= 1 && j.size <= 128);
          check_bool "runtime in bounds" true
            (j.run_time >= profile.runtime_min && j.run_time <= profile.runtime_cap);
          check_bool "estimate >= runtime" true (j.estimate >= j.run_time))
        log.jobs)
    Profile.all

let test_generate_deterministic () =
  let a = Synthetic.generate (spec ~seed:9 ()) in
  let b = Synthetic.generate (spec ~seed:9 ()) in
  check_bool "same seed same log" true (a.jobs = b.jobs);
  let c = Synthetic.generate (spec ~seed:10 ()) in
  check_bool "different seed differs" false (a.jobs = c.jobs)

let test_generate_offered_load () =
  (* The realised offered load should approach target_util; the runtime
     cap trims the analytic mean, so allow a generous band. *)
  let log = Synthetic.generate (spec ~n_jobs:4000 ()) in
  let offered = Bgl_trace.Job_log.offered_load log ~nodes:128 in
  let target = Profile.sdsc.target_util in
  check_bool
    (Printf.sprintf "offered %.3f within [%.3f, %.3f]" offered (0.6 *. target) (1.25 *. target))
    true
    (offered > 0.6 *. target && offered < 1.25 *. target)

let test_generate_size_mix () =
  (* The empirical share of 1-node jobs in the NASA log should be close
     to the profile's 57%. *)
  let log = Synthetic.generate (spec ~profile:Profile.nasa ~n_jobs:4000 ()) in
  let ones =
    Array.fold_left (fun acc (j : Bgl_trace.Job_log.job) -> if j.size = 1 then acc + 1 else acc) 0 log.jobs
  in
  let share = float_of_int ones /. 4000. in
  check_bool (Printf.sprintf "sequential share %.3f near 0.57" share) true
    (abs_float (share -. 0.57) < 0.05)

let test_generate_invalid () =
  check_bool "n_jobs 0" true
    (try
       ignore (Synthetic.generate (spec ~n_jobs:0 ()));
       false
     with Invalid_argument _ -> true)

let test_arrival_rate_positive () =
  List.iter
    (fun p -> check_bool "rate > 0" true (Synthetic.arrival_rate p ~max_nodes:128 > 0.))
    Profile.all

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_generate_valid_log =
  QCheck.Test.make ~name:"generated logs satisfy Job_log invariants" ~count:30
    QCheck.(pair (int_range 1 200) small_int)
    (fun (n_jobs, seed) ->
      let log =
        Synthetic.generate { profile = Profile.sdsc; n_jobs; max_nodes = 128; seed }
      in
      Bgl_trace.Job_log.length log = n_jobs
      && Array.for_all
           (fun (j : Bgl_trace.Job_log.job) ->
             j.size >= 1 && j.run_time > 0. && j.estimate >= j.run_time && j.arrival >= 0.)
           log.jobs)

let prop_scaling_preserves_count =
  QCheck.Test.make ~name:"load scaling preserves job count and sizes" ~count:30
    QCheck.(pair (int_range 1 100) (float_range 0.5 1.5))
    (fun (n_jobs, c) ->
      let log = Synthetic.generate { profile = Profile.nasa; n_jobs; max_nodes = 128; seed = 1 } in
      let scaled = Bgl_trace.Job_log.scale_runtime log ~c in
      Bgl_trace.Job_log.length scaled = n_jobs
      && Array.for_all2
           (fun (a : Bgl_trace.Job_log.job) (b : Bgl_trace.Job_log.job) ->
             a.size = b.size && abs_float (b.run_time -. (a.run_time *. c)) < 1e-6)
           log.jobs scaled.jobs)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_generate_valid_log; prop_scaling_preserves_count ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgl_workload"
    [
      ( "profile",
        [
          tc "by_name" test_by_name;
          tc "well formed" test_profiles_well_formed;
          tc "sizes_for rescales" test_sizes_for_rescales;
          tc "sizes_for merges" test_sizes_for_merges_weights;
          tc "mean size" test_mean_size_positive;
        ] );
      ( "synthetic",
        [
          tc "count and order" test_generate_count_and_order;
          tc "bounds" test_generate_bounds;
          tc "deterministic" test_generate_deterministic;
          tc "offered load" test_generate_offered_load;
          tc "size mix" test_generate_size_mix;
          tc "invalid" test_generate_invalid;
          tc "arrival rate" test_arrival_rate_positive;
        ] );
      ("properties", props);
    ]
