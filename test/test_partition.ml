(* Unit and property tests for the partition finders and MFP. *)

open Bgl_torus
open Bgl_partition

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let box_t = Alcotest.testable Box.pp Box.equal
let boxes = Alcotest.(list box_t)

(* ------------------------------------------------------------------ *)
(* Shapes *)

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (Shapes.divisors 12);
  Alcotest.(check (list int)) "1" [ 1 ] (Shapes.divisors 1);
  Alcotest.(check (list int)) "prime" [ 1; 13 ] (Shapes.divisors 13);
  Alcotest.(check (list int)) "square" [ 1; 2; 4; 8; 16 ] (Shapes.divisors 16)

let test_divisors_invalid () =
  Alcotest.check_raises "zero" (Invalid_argument "Shapes.divisors: argument must be positive")
    (fun () -> ignore (Shapes.divisors 0))

let test_shapes_of_volume () =
  let d = Dims.bgl in
  let shapes = Shapes.shapes_of_volume d 8 in
  check_bool "all have volume 8" true (List.for_all (fun s -> Shape.volume s = 8) shapes);
  check_bool "all fit" true (List.for_all (Shape.fits d) shapes);
  (* Volume 8 on 4x4x8: 1x1x8 1x2x4 1x4x2 2x1x4 2x2x2 2x4x1 4x1x2 4x2x1 1x8x? no (ny=4). *)
  check_int "count" 8 (List.length shapes)

let test_shapes_of_volume_infeasible () =
  (* 11 is prime and 11 > 8, so no shape fits a 4x4x8 torus. *)
  Alcotest.(check (list (Alcotest.testable Shape.pp Shape.equal)))
    "no shape of 11" [] (Shapes.shapes_of_volume Dims.bgl 11)

let test_feasible_volumes () =
  let vols = Shapes.feasible_volumes Dims.bgl in
  check_bool "contains 1" true (List.mem 1 vols);
  check_bool "contains 128" true (List.mem 128 vols);
  check_bool "no 11" false (List.mem 11 vols);
  check_bool "sorted" true (List.sort Int.compare vols = vols);
  check_bool "contains 7 (1x1x7)" true (List.mem 7 vols)

let test_round_up_volume () =
  let d = Dims.bgl in
  Alcotest.(check (option int)) "exact" (Some 8) (Shapes.round_up_volume d 8);
  Alcotest.(check (option int)) "11 -> 12" (Some 12) (Shapes.round_up_volume d 11);
  Alcotest.(check (option int)) "torus-filling" (Some 128) (Shapes.round_up_volume d 128);
  Alcotest.(check (option int)) "too large" None (Shapes.round_up_volume d 129);
  (* 97..100: 97 prime > 8... the next feasible volume above 96 is 112 (2x4x14? no).
     Check it agrees with a direct search. *)
  let direct s =
    let rec up v = if v > 128 then None else if Shapes.shapes_of_volume d v <> [] then Some v else up (v + 1) in
    up s
  in
  for s = 1 to 128 do
    Alcotest.(check (option int))
      (Printf.sprintf "round_up %d" s)
      (direct s) (Shapes.round_up_volume d s)
  done

let test_shapes_desc_order () =
  let desc = Shapes.shapes_desc Dims.bgl in
  check_int "all shapes of 4x4x8" (4 * 4 * 8) (List.length desc);
  let volumes = List.map Shape.volume desc in
  check_bool "non-increasing" true
    (List.for_all2 (fun a b -> a >= b) (List.filteri (fun i _ -> i < List.length volumes - 1) volumes)
       (List.tl volumes))

(* ------------------------------------------------------------------ *)
(* Finders: hand-built scenarios *)

let test_find_empty_torus_singletons () =
  let g = Grid.create Dims.bgl in
  List.iter
    (fun algo ->
      check_int
        (Finder.algo_name algo ^ " singletons")
        128
        (List.length (Finder.find algo g ~volume:1)))
    Finder.all_algos

let test_find_full_torus () =
  let g = Grid.create Dims.bgl in
  List.iter
    (fun algo ->
      (* Exactly one canonical box covers the whole torus. *)
      Alcotest.check boxes
        (Finder.algo_name algo ^ " full box")
        [ Box.make (Coord.make 0 0 0) (Shape.make 4 4 8) ]
        (Finder.find algo g ~volume:128))
    Finder.all_algos

let test_find_respects_occupancy () =
  let g = Grid.create Dims.bgl in
  (* Occupy the z=0 plane: no box touching z=0 is free. *)
  for x = 0 to 3 do
    for y = 0 to 3 do
      Grid.occupy_node g (Coord.index Dims.bgl (Coord.make x y 0)) ~owner:1
    done
  done;
  List.iter
    (fun algo ->
      let found = Finder.find algo g ~volume:16 in
      check_bool
        (Finder.algo_name algo ^ " avoids z=0")
        true
        (List.for_all
           (fun b ->
             List.for_all (fun (c : Coord.t) -> c.z <> 0) (Box.cells Dims.bgl b))
           found);
      check_bool (Finder.algo_name algo ^ " finds some") true (found <> []))
    Finder.all_algos

let test_find_no_wrap_smaller () =
  let dwrap = Grid.create ~wrap:true (Dims.make 4 1 1) in
  let gnow = Grid.create ~wrap:false (Dims.make 4 1 1) in
  (* Occupy middle cells 1 and 2; a 2-box exists only with wraparound
     (cells 3 and 0). *)
  List.iter
    (fun g ->
      Grid.occupy_node g 1 ~owner:1;
      Grid.occupy_node g 2 ~owner:1)
    [ dwrap; gnow ];
  List.iter
    (fun algo ->
      check_int (Finder.algo_name algo ^ " wrap finds") 1
        (List.length (Finder.find algo dwrap ~volume:2));
      check_int (Finder.algo_name algo ^ " no-wrap finds none") 0
        (List.length (Finder.find algo gnow ~volume:2)))
    Finder.all_algos

let test_find_infeasible_volume () =
  let g = Grid.create Dims.bgl in
  List.iter
    (fun algo ->
      Alcotest.check boxes (Finder.algo_name algo ^ " volume 11") [] (Finder.find algo g ~volume:11);
      Alcotest.check boxes (Finder.algo_name algo ^ " beyond torus") []
        (Finder.find algo g ~volume:129))
    Finder.all_algos

let test_find_for_size_rounds_up () =
  let g = Grid.create Dims.bgl in
  let for_11 = Finder.find_for_size Finder.Prefix g ~size:11 in
  check_bool "non-empty" true (for_11 <> []);
  check_bool "all volume 12" true (List.for_all (fun b -> Box.volume b = 12) for_11)

let test_exists_free () =
  let g = Grid.create Dims.bgl in
  check_bool "empty torus has 128" true (Finder.exists_free g ~volume:128);
  Grid.occupy_node g 0 ~owner:1;
  check_bool "no longer 128" false (Finder.exists_free g ~volume:128);
  check_bool "still 64" true (Finder.exists_free g ~volume:64)

let test_canonical_dedup_full_dim () =
  (* With wraparound, a shape spanning a full dimension must appear
     only with base 0 in that dimension. *)
  let g = Grid.create (Dims.make 4 1 1) in
  List.iter
    (fun algo ->
      Alcotest.check boxes
        (Finder.algo_name algo ^ " full-x dedup")
        [ Box.make (Coord.make 0 0 0) (Shape.make 4 1 1) ]
        (Finder.find algo g ~volume:4))
    Finder.all_algos

(* ------------------------------------------------------------------ *)
(* Finder.Cache: hand-built scenarios *)

let test_cache_basic () =
  let g = Grid.create Dims.bgl in
  let cache = Finder.Cache.create g in
  let direct = Finder.find Finder.Prefix g ~volume:8 in
  Alcotest.check boxes "cold query" direct (Finder.Cache.find cache ~volume:8);
  Alcotest.check boxes "memo hit" direct (Finder.Cache.find cache ~volume:8);
  let hits, misses = Finder.Cache.stats cache in
  check_int "one hit" 1 hits;
  check_int "one miss" 1 misses;
  (* A noted mutation invalidates exactly the stale entries. *)
  let b = List.hd direct in
  Grid.occupy g b ~owner:3;
  Finder.Cache.note_box cache b;
  Alcotest.check boxes "after occupy" (Finder.find Finder.Prefix g ~volume:8)
    (Finder.Cache.find cache ~volume:8);
  check_bool "table stayed incremental" true
    ((Finder.Cache.table_stats cache).Prefix.full_rebuilds = 0);
  (* Occupy+vacate restores the fingerprint, so the memo re-hits. *)
  Grid.vacate g b ~owner:3;
  Finder.Cache.note_box cache b;
  ignore (Finder.Cache.find cache ~volume:8);
  let probe = Box.make (Coord.make 2 2 2) (Shape.make 1 1 2) in
  Grid.occupy g probe ~owner:4;
  Finder.Cache.note_box cache probe;
  Grid.vacate g probe ~owner:4;
  Finder.Cache.note_box cache probe;
  let hits_before, _ = Finder.Cache.stats cache in
  Alcotest.check boxes "restored fingerprint re-hits" direct (Finder.Cache.find cache ~volume:8);
  let hits_after, _ = Finder.Cache.stats cache in
  check_int "hit count grew" (hits_before + 1) hits_after

let test_cache_self_heals_unnoted () =
  let g = Grid.create Dims.bgl in
  let cache = Finder.Cache.create g in
  ignore (Finder.Cache.find cache ~volume:4);
  (* Mutate WITHOUT telling the cache: the fingerprint change kills the
     memo entry and the version drift forces a full table rebuild — the
     result must still be correct. *)
  Grid.occupy_node g 0 ~owner:9;
  Alcotest.check boxes "correct despite missing note"
    (Finder.find Finder.Prefix g ~volume:4)
    (Finder.Cache.find cache ~volume:4);
  check_bool "healed by full rebuild" true
    ((Finder.Cache.table_stats cache).Prefix.full_rebuilds >= 1)

let test_differential_mode_toggle () =
  check_bool "off by default" false (Finder.differential_enabled ());
  Finder.set_differential true;
  Fun.protect
    ~finally:(fun () -> Finder.set_differential false)
    (fun () ->
      check_bool "enabled" true (Finder.differential_enabled ());
      (* Checked queries still agree on a non-trivial grid. *)
      let g = Grid.create Dims.bgl in
      Grid.occupy g (Box.make (Coord.make 0 0 0) (Shape.make 2 2 2)) ~owner:1;
      let cache = Finder.Cache.create g in
      Alcotest.check boxes "checked cache query"
        (Finder.find Finder.Naive g ~volume:8)
        (Finder.Cache.find cache ~volume:8);
      check_bool "checked exists_free" true (Finder.exists_free g ~volume:64));
  check_bool "restored" false (Finder.differential_enabled ())

let test_differential_sampling () =
  Alcotest.check_raises "zero sample rejected"
    (Invalid_argument "Finder.set_differential: sample must be >= 1") (fun () ->
      Finder.set_differential ~sample:0 true);
  Finder.set_differential ~sample:3 true;
  Fun.protect
    ~finally:(fun () -> Finder.set_differential false)
    (fun () ->
      check_bool "sampling counts as enabled" true (Finder.differential_enabled ());
      (* Sampled queries must stay correct whether or not a given one
         is the checked one. *)
      let g = Grid.create Dims.bgl in
      Grid.occupy g (Box.make (Coord.make 1 1 1) (Shape.make 2 2 2)) ~owner:1;
      let cache = Finder.Cache.create g in
      for _ = 1 to 7 do
        Alcotest.check boxes "sampled cache query"
          (Finder.find Finder.Naive g ~volume:8)
          (Finder.Cache.find cache ~volume:8)
      done);
  check_bool "restored" false (Finder.differential_enabled ())

let test_bases_cache_cap () =
  let d = Dims.make 1 1 512 in
  for z = 1 to 300 do
    ignore (Finder.bases d ~wrap:false (Shape.make 1 1 z))
  done;
  let len, cap = Finder.bases_cache_stats () in
  check_bool "cap positive" true (cap > 0);
  check_bool "length within cap" true (len <= cap);
  (* A re-request after eviction still answers correctly. *)
  check_int "recomputed entry correct" 512 (List.length (Finder.bases d ~wrap:false (Shape.make 1 1 1)))

let test_orientations_non_cubic () =
  let d = Dims.make 2 3 4 in
  let os = Shapes.orientations d (Shape.make 1 1 4) in
  check_bool "all orientations fit" true (List.for_all (Shape.fits d) os);
  check_int "only the z-aligned rotation survives" 1 (List.length os);
  check_bool "dropped rotations not resurrected" false
    (List.exists (fun s -> s.Shape.sx = 4 || s.Shape.sy = 4) os);
  (* On a cube no rotation is lost. *)
  check_int "cube keeps all three" 3
    (List.length (Shapes.orientations (Dims.make 4 4 4) (Shape.make 1 1 4)))

(* Summary gating switches on at volume >= 512; the gate must never
   change what the finders return, only how fast they reject. *)
let test_gated_find_agrees_at_scale () =
  let d = Dims.make 8 8 16 in
  let g = Grid.create d in
  check_bool "summary gating active at 1024 nodes" true (Finder.summary_gated g);
  (* Mostly-occupied grid keeps the naive reference affordable. *)
  Grid.occupy g (Box.make (Coord.make 0 0 0) (Shape.make 8 8 16)) ~owner:1;
  Grid.vacate g (Box.make (Coord.make 0 0 0) (Shape.make 2 2 2)) ~owner:1;
  Grid.vacate g (Box.make (Coord.make 4 4 8) (Shape.make 2 2 4)) ~owner:1;
  List.iter
    (fun v ->
      Alcotest.check boxes
        (Printf.sprintf "gated prefix = naive at volume %d" v)
        (Finder.find Finder.Naive g ~volume:v)
        (Finder.find Finder.Prefix g ~volume:v);
      check_bool
        (Printf.sprintf "gated exists agrees at volume %d" v)
        (Finder.find Finder.Naive g ~volume:v <> [])
        (Finder.exists_free g ~volume:v))
    [ 1; 4; 8; 16; 32 ];
  check_int "gated MFP finds the larger pocket" 16 (Mfp.volume g)

(* ------------------------------------------------------------------ *)
(* MFP: hand-built scenarios *)

let test_mfp_empty_and_full () =
  let g = Grid.create Dims.bgl in
  check_int "empty torus MFP" 128 (Mfp.volume g);
  let full = Box.make (Coord.make 0 0 0) (Shape.make 4 4 8) in
  Grid.occupy g full ~owner:1;
  check_int "full torus MFP" 0 (Mfp.volume g);
  Alcotest.(check (option box_t)) "no box" None (Mfp.box g)

let test_mfp_after_restores_grid () =
  let g = Grid.create Dims.bgl in
  let candidate = Box.make (Coord.make 0 0 0) (Shape.make 2 2 2) in
  let free_before = Grid.free_count g in
  let v = Mfp.volume_after g candidate in
  check_int "grid restored" free_before (Grid.free_count g);
  check_bool "MFP shrank" true (v < 128);
  (* Occupying a 2x2x2 corner of a 4x4x8 torus leaves the 4x4x6 slab at
     z in [2, 8) entirely free, so the MFP after placement is 96. *)
  check_int "expected 96" 96 v

let test_mfp_loss () =
  let g = Grid.create Dims.bgl in
  let candidate = Box.make (Coord.make 0 0 0) (Shape.make 2 2 2) in
  check_int "loss" (128 - 96) (Mfp.loss g candidate);
  check_int "loss_given" (Mfp.loss g candidate) (Mfp.loss_given ~before:(Mfp.volume g) g candidate)

let test_mfp_figure1_intuition () =
  (* Figure 1 of the paper: placing a job flush against existing jobs
     preserves a larger MFP than splitting the free space. Model a
     4x4x1 plane with a 2x2 job in a corner; placing a 2x1x1 job
     adjacent (sharing the occupied boundary) leaves more MFP than
     placing it in the middle of the free area. *)
  let d = Dims.make 4 4 1 in
  let g = Grid.create ~wrap:false d in
  Grid.occupy g (Box.make (Coord.make 0 0 0) (Shape.make 2 2 1)) ~owner:1;
  let adjacent = Box.make (Coord.make 2 0 0) (Shape.make 2 1 1) in
  let middle = Box.make (Coord.make 1 2 0) (Shape.make 2 1 1) in
  check_bool "adjacent better" true (Mfp.volume_after g adjacent > Mfp.volume_after g middle)

(* ------------------------------------------------------------------ *)
(* Properties: cross-validate the finders and MFP *)

let dims_gen =
  QCheck.Gen.(map3 (fun a b c -> Dims.make a b c) (int_range 1 4) (int_range 1 4) (int_range 1 5))

let scenario_gen =
  QCheck.Gen.(
    map3
      (fun d (seed, wrap) p -> (d, seed, wrap, p))
      dims_gen (pair small_int bool) (float_bound_inclusive 0.9))

let print_scenario (d, seed, wrap, p) =
  Printf.sprintf "dims=%s seed=%d wrap=%b p=%.2f" (Dims.to_string d) seed wrap p

let arb_scenario = QCheck.make ~print:print_scenario scenario_gen

let build_grid (d, seed, wrap, p) =
  let rng = Bgl_stats.Rng.create ~seed in
  let g = Grid.create ~wrap d in
  for node = 0 to Dims.volume d - 1 do
    if Bgl_stats.Rng.unit_float rng < p then Grid.occupy_node g node ~owner:(node mod 5)
  done;
  g

let prop_finders_agree =
  QCheck.Test.make ~name:"all finders return the same set" ~count:150
    QCheck.(pair arb_scenario (int_range 1 40))
    (fun (scenario, volume) ->
      let g = build_grid scenario in
      let reference = Finder.find Finder.Naive g ~volume in
      List.for_all
        (fun algo -> Finder.find algo g ~volume = reference)
        [ Finder.Pop; Finder.Shape_search; Finder.Prefix ])

let prop_found_boxes_are_free =
  QCheck.Test.make ~name:"found boxes are free and sized" ~count:150
    QCheck.(pair arb_scenario (int_range 1 40))
    (fun (scenario, volume) ->
      let g = build_grid scenario in
      List.for_all
        (fun b -> Box.volume b = volume && Grid.box_is_free g b)
        (Finder.find Finder.Prefix g ~volume))

let prop_finder_complete =
  (* Every free canonical box of the requested volume is found. *)
  QCheck.Test.make ~name:"finder finds every free box" ~count:100
    QCheck.(pair arb_scenario (int_range 1 30))
    (fun (scenario, volume) ->
      let ((d, _, wrap, _) as sc) = scenario in
      let g = build_grid sc in
      let found = Finder.find Finder.Prefix g ~volume in
      let all_free = ref true in
      List.iter
        (fun shape ->
          List.iter
            (fun base ->
              let b = Box.canonical d ~wrap (Box.make base shape) in
              if Grid.box_is_free g b && not (List.exists (Box.equal b) found) then
                all_free := false)
            (Finder.bases d ~wrap shape))
        (Shapes.shapes_of_volume d volume);
      !all_free)

let prop_mfp_matches_naive =
  QCheck.Test.make ~name:"MFP equals max volume with a free box" ~count:100 arb_scenario
    (fun scenario ->
      let ((d, _, _, _) as sc) = scenario in
      let g = build_grid sc in
      let naive_best =
        List.fold_left
          (fun best v ->
            if v > best && Finder.find Finder.Naive g ~volume:v <> [] then v else best)
          0
          (Shapes.feasible_volumes d)
      in
      Mfp.volume g = naive_best)

let prop_mfp_box_is_free_and_maximal =
  QCheck.Test.make ~name:"MFP box is free with the reported volume" ~count:150 arb_scenario
    (fun scenario ->
      let g = build_grid scenario in
      match Mfp.box g with
      | None -> Mfp.volume g = 0
      | Some b -> Grid.box_is_free g b && Box.volume b = Mfp.volume g)

let prop_exists_free_agrees =
  QCheck.Test.make ~name:"exists_free agrees with find" ~count:150
    QCheck.(pair arb_scenario (int_range 1 40))
    (fun (scenario, volume) ->
      let g = build_grid scenario in
      Finder.exists_free g ~volume = (Finder.find Finder.Prefix g ~volume <> []))

let prop_find_with_matches_find =
  QCheck.Test.make ~name:"find_with over a fresh table equals find" ~count:100
    QCheck.(pair arb_scenario (int_range 1 30))
    (fun (scenario, volume) ->
      let g = build_grid scenario in
      let table = Prefix.build g in
      Finder.find_with table g ~volume = Finder.find Finder.Prefix g ~volume
      && Finder.exists_free_with table g ~volume = Finder.exists_free g ~volume)

let prop_finders_agree_both_wraps =
  (* Same occupancy, both torus modes, every algorithm: all four must
     return the same sorted, duplicate-free box list. Guards the POP
     wrap canonicalization (the [z_starts]/[max_sz] interplay) on the
     exact grid pair where wrapping is the only difference. *)
  QCheck.Test.make ~name:"all finders agree on wrapped and unwrapped grids" ~count:100
    QCheck.(pair arb_scenario (int_range 1 40))
    (fun ((d, seed, _, p), volume) ->
      List.for_all
        (fun wrap ->
          let g = build_grid (d, seed, wrap, p) in
          let reference = Finder.find Finder.Naive g ~volume in
          let sorted_dedup l =
            List.sort_uniq Box.compare l = l && List.sort Box.compare l = l
          in
          sorted_dedup reference
          && List.for_all
               (fun algo -> Finder.find algo g ~volume = reference)
               [ Finder.Pop; Finder.Shape_search; Finder.Prefix ])
        [ false; true ])

let prop_pop_wrap_canonical =
  (* On a wrapped torus a box spanning a full dimension is reported at
     base 0 in that dimension only — anywhere else would be the same
     node set again. *)
  QCheck.Test.make ~name:"POP reports full-dimension boxes at base 0" ~count:150
    QCheck.(pair arb_scenario (int_range 1 40))
    (fun ((d, seed, _, p), volume) ->
      let g = build_grid (d, seed, true, p) in
      List.for_all
        (fun (b : Box.t) ->
          (b.shape.sx < d.nx || b.base.x = 0)
          && (b.shape.sy < d.ny || b.base.y = 0)
          && (b.shape.sz < d.nz || b.base.z = 0))
        (Finder.find Finder.Pop g ~volume))

(* ------------------------------------------------------------------ *)
(* Differential properties: random alloc/free sequences, every finder
   flavour (including the incremental cache) against the naive
   reference. The op list shrinks as a list, so a failure minimizes to
   a short mutation sequence; the printer replays it and dumps the
   resulting grid. *)

let arb_dims = QCheck.make ~print:Dims.to_string dims_gen

(* Decode one op against the grid: claim a fully free box, release a
   box we own, or toggle a single node. Mutations go through the cache
   notes, so the cache's incremental table tracks them. *)
let apply_cache_op g cache (bseed, sseed) =
  let d = Grid.dims g in
  let owner = 5 in
  let sx = 1 + (sseed mod d.Dims.nx) in
  let sy = 1 + (sseed / 7 mod d.Dims.ny) in
  let sz = 1 + (sseed / 49 mod d.Dims.nz) in
  let b = Box.make (Coord.of_index d (bseed mod Dims.volume d)) (Shape.make sx sy sz) in
  let cells = Box.indices d b in
  if List.for_all (Grid.is_free g) cells then begin
    Grid.occupy g b ~owner;
    Finder.Cache.note_box cache b
  end
  else if List.for_all (fun i -> Grid.owner g i = Some owner) cells then begin
    Grid.vacate g b ~owner;
    Finder.Cache.note_box cache b
  end
  else begin
    let node = bseed mod Dims.volume d in
    (match Grid.owner g node with
    | None -> Grid.occupy_node g node ~owner
    | Some o -> Grid.vacate_node g node ~owner:o);
    Finder.Cache.note_node cache node
  end

let replay_ops (d, wrap, ops) =
  let g = Grid.create ~wrap d in
  let cache = Finder.Cache.create g in
  List.iter (apply_cache_op g cache) ops;
  (g, cache)

let arb_op_scenario =
  let arb =
    QCheck.(
      quad arb_dims bool
        (small_list (pair (int_range 0 999) (int_range 0 999)))
        (int_range 1 40))
  in
  QCheck.set_print
    (fun (d, wrap, ops, volume) ->
      let g, _ = replay_ops (d, wrap, ops) in
      Format.asprintf "dims=%s wrap=%b volume=%d ops=%s@.grid after replay:@.%a"
        (Dims.to_string d) wrap volume
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) ops))
        Grid.pp g)
    arb

let prop_differential_all_finders =
  QCheck.Test.make ~name:"all finders + incremental cache agree after random ops" ~count:150
    arb_op_scenario
    (fun (d, wrap, ops, volume) ->
      let g, cache = replay_ops (d, wrap, ops) in
      let reference = Finder.find Finder.Naive g ~volume in
      (* Feasibility and exact result agreement, every flavour. *)
      List.for_all
        (fun algo -> Finder.find algo g ~volume = reference)
        [ Finder.Pop; Finder.Shape_search; Finder.Prefix ]
      && Finder.find_with (Prefix.build g) g ~volume = reference
      && Finder.Cache.find cache ~volume = reference
      && Finder.Cache.find cache ~volume = reference (* memo-hit path *)
      && Finder.Cache.exists_free cache ~volume = (reference <> [])
      && Finder.exists_free g ~volume = (reference <> [])
      (* Validity of every returned partition: free, in-bounds base,
         exact volume. *)
      && List.for_all
           (fun (b : Box.t) ->
             Coord.in_bounds d b.base && Box.volume b = volume && Grid.box_is_free g b)
           reference)

let prop_cache_mfp_agrees =
  QCheck.Test.make ~name:"cached MFP equals uncached MFP after random ops" ~count:150
    arb_op_scenario
    (fun (d, wrap, ops, _volume) ->
      let g, cache = replay_ops (d, wrap, ops) in
      let plain = Mfp.volume g in
      let cached = Mfp.volume ~cache g in
      let again = Mfp.volume ~cache g in
      plain = cached && again = cached
      &&
      match Mfp.box ~cache g with
      | None -> plain = 0
      | Some candidate ->
          let fp = Grid.fingerprint g in
          let after_plain = Mfp.volume_after g candidate in
          let after_cached = Mfp.volume_after ~cache g candidate in
          after_plain = after_cached
          && Grid.fingerprint g = fp (* probes restored the grid *)
          && Mfp.volume ~cache g = plain (* memo survived the probes *))

(* ------------------------------------------------------------------ *)
(* Counted enumeration: count/nth/select must agree with the
   materialised list — count with its length, select with the engine's
   historical even subsample (transcribed literally below so a shared
   bug cannot hide), nth with positional lookup — on arbitrary
   occupancies, both torus modes, non-cubic dims, and the cap >= n /
   cap = 1 / n = 0 edges. Counterexamples shrink to a short op list
   and print the replayed grid, like the differential properties. *)

let cap_oracle cap boxes =
  let n = List.length boxes in
  if n <= cap then boxes
  else
    let arr = Array.of_list boxes in
    List.init cap (fun i -> arr.(i * n / cap))

let prop_count_equals_find_length =
  QCheck.Test.make ~name:"count equals length of find after random ops" ~count:150
    arb_op_scenario
    (fun (d, wrap, ops, volume) ->
      let g, cache = replay_ops (d, wrap, ops) in
      let reference = List.length (Finder.find Finder.Naive g ~volume) in
      Finder.count g ~volume = reference
      && Finder.count_with (Prefix.build g) g ~volume = reference
      && Finder.Cache.count cache ~volume = reference
      && Finder.Cache.count cache ~volume = reference (* memo-hit path *))

let prop_select_equals_capped_find =
  QCheck.Test.make ~name:"select equals even-capped find after random ops" ~count:150
    (QCheck.pair arb_op_scenario (QCheck.int_range 1 50))
    (fun ((d, wrap, ops, volume), cap) ->
      let g, cache = replay_ops (d, wrap, ops) in
      let sorted = Finder.find Finder.Naive g ~volume in
      let reference = cap_oracle cap sorted in
      Finder.select g ~volume ~cap = reference
      && Finder.select_with (Prefix.build g) g ~volume ~cap = reference
      && Finder.Cache.select cache ~volume ~cap = reference
      && Finder.Cache.select cache ~volume ~cap = reference (* memo-hit path *)
      && Finder.select g ~volume ~cap:1 = cap_oracle 1 sorted
      && Finder.nth g ~volume ~rank:0 = (match sorted with [] -> None | b :: _ -> Some b)
      && Finder.nth g ~volume ~rank:(cap - 1) = List.nth_opt sorted (cap - 1)
      && Finder.nth g ~volume ~rank:(List.length sorted) = None)

let test_counted_edges () =
  let d = Dims.make 3 3 4 in
  let g = Grid.create ~wrap:true d in
  (* n = 0: volume 7 has no divisor shape fitting 3x3x4 *)
  check_int "unrealisable volume counts zero" 0 (Finder.count g ~volume:7);
  check_bool "unrealisable volume selects nothing" true (Finder.select g ~volume:7 ~cap:5 = []);
  check_bool "nth on empty result" true (Finder.nth g ~volume:7 ~rank:0 = None);
  check_int "volume beyond the machine" 0 (Finder.count g ~volume:1000);
  let all = Finder.find Finder.Naive g ~volume:4 in
  check_int "count on a live volume" (List.length all) (Finder.count g ~volume:4);
  check_bool "cap >= n is the identity" true (Finder.select g ~volume:4 ~cap:10_000 = all);
  check_bool "cap = 1 is the sorted head" true
    (Finder.select g ~volume:4 ~cap:1 = [ List.hd all ]);
  check_bool "nth walks the sorted order" true
    (List.for_all
       (fun r -> Finder.nth g ~volume:4 ~rank:r = List.nth_opt all r)
       [ 0; 1; 2; List.length all - 1; List.length all ])

(* Same agreement above the summary-gating threshold, where the
   counted passes additionally use per-axis feasible-start masks and
   shape gating: the representation the full-scale engine runs on. *)
let test_counted_agrees_at_scale () =
  let d = Dims.make 8 8 16 in
  let g = Grid.create d in
  check_bool "summary gating active at 1024 nodes" true (Finder.summary_gated g);
  let check_all_volumes () =
    List.iter
      (fun v ->
        let sorted = Finder.find Finder.Prefix g ~volume:v in
        check_int
          (Printf.sprintf "gated count agrees at volume %d" v)
          (List.length sorted) (Finder.count g ~volume:v);
        List.iter
          (fun cap ->
            check_bool
              (Printf.sprintf "gated select agrees at volume %d cap %d" v cap)
              true
              (Finder.select g ~volume:v ~cap = cap_oracle cap sorted))
          [ 1; 3; 24 ])
      [ 1; 4; 8; 16; 32 ]
  in
  (* Near-empty: the ribbon fast path covers whole rows. *)
  Grid.occupy g (Box.make (Coord.make 3 2 5) (Shape.make 2 2 2)) ~owner:1;
  check_all_volumes ();
  (* Mostly-occupied: the per-base fallback does the counting. *)
  Grid.occupy g (Box.make (Coord.make 0 0 0) (Shape.make 8 8 5)) ~owner:2;
  Grid.occupy g (Box.make (Coord.make 0 0 8) (Shape.make 8 8 8)) ~owner:3;
  check_all_volumes ()

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_find_with_matches_find;
      prop_finders_agree;
      prop_finders_agree_both_wraps;
      prop_pop_wrap_canonical;
      prop_found_boxes_are_free;
      prop_finder_complete;
      prop_mfp_matches_naive;
      prop_mfp_box_is_free_and_maximal;
      prop_exists_free_agrees;
      prop_differential_all_finders;
      prop_cache_mfp_agrees;
      prop_count_equals_find_length;
      prop_select_equals_capped_find;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgl_partition"
    [
      ( "shapes",
        [
          tc "divisors" test_divisors;
          tc "divisors invalid" test_divisors_invalid;
          tc "shapes_of_volume" test_shapes_of_volume;
          tc "infeasible volume" test_shapes_of_volume_infeasible;
          tc "feasible volumes" test_feasible_volumes;
          tc "round_up_volume" test_round_up_volume;
          tc "shapes_desc order" test_shapes_desc_order;
          tc "orientations on non-cubic dims" test_orientations_non_cubic;
        ] );
      ( "finder",
        [
          tc "singletons on empty torus" test_find_empty_torus_singletons;
          tc "full torus" test_find_full_torus;
          tc "respects occupancy" test_find_respects_occupancy;
          tc "wraparound matters" test_find_no_wrap_smaller;
          tc "infeasible volume" test_find_infeasible_volume;
          tc "find_for_size rounds up" test_find_for_size_rounds_up;
          tc "exists_free" test_exists_free;
          tc "canonical dedup" test_canonical_dedup_full_dim;
          tc "bases cache capped" test_bases_cache_cap;
          tc "gating never changes results" test_gated_find_agrees_at_scale;
          tc "counted enumeration edges" test_counted_edges;
          tc "counted agrees above the gate" test_counted_agrees_at_scale;
        ] );
      ( "cache",
        [
          tc "memoisation and invalidation" test_cache_basic;
          tc "self-heals on unnoted mutation" test_cache_self_heals_unnoted;
          tc "differential mode toggle" test_differential_mode_toggle;
          tc "differential sampling" test_differential_sampling;
        ] );
      ( "mfp",
        [
          tc "empty and full" test_mfp_empty_and_full;
          tc "volume_after restores" test_mfp_after_restores_grid;
          tc "loss" test_mfp_loss;
          tc "figure 1 intuition" test_mfp_figure1_intuition;
        ] );
      ("properties", props);
    ]
