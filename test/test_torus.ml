(* Unit and property tests for the bgl_torus substrate. *)

open Bgl_torus

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let coord = Alcotest.testable Coord.pp Coord.equal
let box_t = Alcotest.testable Box.pp Box.equal

(* ------------------------------------------------------------------ *)
(* Dims *)

let test_dims_make () =
  let d = Dims.make 4 4 8 in
  check_int "volume" 128 (Dims.volume d);
  check_int "max_dim" 8 (Dims.max_dim d);
  check_bool "bgl equal" true (Dims.equal d Dims.bgl)

let test_dims_invalid () =
  Alcotest.check_raises "zero" (Invalid_argument "Dims.make: dimensions must be positive")
    (fun () -> ignore (Dims.make 0 1 1))

let test_dims_string_round_trip () =
  Alcotest.(check string) "to_string" "4x4x8" (Dims.to_string Dims.bgl);
  (match Dims.of_string "4x4x8" with
  | Ok d -> check_bool "parse" true (Dims.equal d Dims.bgl)
  | Error e -> Alcotest.fail e);
  (match Dims.of_string " 2X3x4 " with
  | Ok d -> check_bool "case and spaces" true (Dims.equal d (Dims.make 2 3 4))
  | Error e -> Alcotest.fail e);
  check_bool "garbage rejected" true (Result.is_error (Dims.of_string "4x4"));
  check_bool "negative rejected" true (Result.is_error (Dims.of_string "4x-4x8"))

let test_dims_comma_form () =
  (match Dims.of_string "64,32,32" with
  | Ok d -> check_bool "comma parse" true (Dims.equal d Dims.bgl_full)
  | Error e -> Alcotest.fail e);
  (match Dims.of_string " 4, 4, 8 " with
  | Ok d -> check_bool "comma with spaces" true (Dims.equal d Dims.bgl)
  | Error e -> Alcotest.fail e);
  check_bool "mixed separators rejected" true (Result.is_error (Dims.of_string "4,4x8"));
  check_bool "trailing comma rejected" true (Result.is_error (Dims.of_string "4,4,8,"));
  check_int "bgl_full volume" 65536 (Dims.volume Dims.bgl_full)

(* ------------------------------------------------------------------ *)
(* Coord *)

let test_coord_index_round_trip () =
  let d = Dims.bgl in
  for i = 0 to Dims.volume d - 1 do
    check_int "round trip" i (Coord.index d (Coord.of_index d i))
  done

let test_coord_index_order () =
  let d = Dims.make 3 4 5 in
  check_int "origin" 0 (Coord.index d (Coord.make 0 0 0));
  check_int "x fastest" 1 (Coord.index d (Coord.make 1 0 0));
  check_int "then y" 3 (Coord.index d (Coord.make 0 1 0));
  check_int "then z" 12 (Coord.index d (Coord.make 0 0 1))

let test_coord_wrap () =
  let d = Dims.make 4 4 8 in
  Alcotest.check coord "wrap positive" (Coord.make 1 0 2) (Coord.wrap d (Coord.make 5 4 10));
  Alcotest.check coord "wrap negative" (Coord.make 3 3 7) (Coord.wrap d (Coord.make (-1) (-1) (-1)))

let test_coord_in_bounds () =
  let d = Dims.make 2 2 2 in
  check_bool "inside" true (Coord.in_bounds d (Coord.make 1 1 1));
  check_bool "outside" false (Coord.in_bounds d (Coord.make 2 0 0));
  check_bool "negative" false (Coord.in_bounds d (Coord.make 0 (-1) 0))

let test_coord_of_index_invalid () =
  Alcotest.check_raises "too large" (Invalid_argument "Coord.of_index: out of range") (fun () ->
      ignore (Coord.of_index Dims.bgl 128))

(* ------------------------------------------------------------------ *)
(* Shape *)

let test_shape_volume_fits () =
  let s = Shape.make 2 3 4 in
  check_int "volume" 24 (Shape.volume s);
  check_bool "fits 4x4x8" true (Shape.fits Dims.bgl s);
  check_bool "5 wide does not fit" false (Shape.fits Dims.bgl (Shape.make 5 1 1))

let test_shape_rotations () =
  check_int "distinct perms of 1x2x3" 6 (List.length (Shape.rotations (Shape.make 1 2 3)));
  check_int "cube has one" 1 (List.length (Shape.rotations (Shape.make 2 2 2)));
  check_int "two equal extents" 3 (List.length (Shape.rotations (Shape.make 2 2 3)))

(* ------------------------------------------------------------------ *)
(* Box *)

let test_box_cells_count_and_dedup () =
  let d = Dims.bgl in
  let b = Box.make (Coord.make 3 3 7) (Shape.make 2 2 2) in
  let cells = Box.cells d b in
  check_int "volume cells" 8 (List.length cells);
  check_int "all distinct" 8 (List.length (List.sort_uniq Coord.compare cells));
  check_bool "wraps through origin" true (List.exists (Coord.equal (Coord.make 0 0 0)) cells)

let test_box_indices_in_range () =
  let d = Dims.bgl in
  let b = Box.make (Coord.make 2 3 6) (Shape.make 3 2 4) in
  List.iter
    (fun i -> check_bool "index in range" true (i >= 0 && i < Dims.volume d))
    (Box.indices d b)

let test_box_canonical () =
  let d = Dims.bgl in
  let full_z = Box.make (Coord.make 1 2 5) (Shape.make 1 1 8) in
  let canon = Box.canonical d ~wrap:true full_z in
  Alcotest.check box_t "z collapsed" (Box.make (Coord.make 1 2 0) (Shape.make 1 1 8)) canon;
  Alcotest.check box_t "no wrap unchanged" full_z (Box.canonical d ~wrap:false full_z)

let test_box_member () =
  let d = Dims.bgl in
  let b = Box.make (Coord.make 3 0 0) (Shape.make 2 1 1) in
  check_bool "base" true (Box.member d b (Coord.make 3 0 0));
  check_bool "wrapped cell" true (Box.member d b (Coord.make 0 0 0));
  check_bool "not member" false (Box.member d b (Coord.make 1 0 0))

let test_box_overlap () =
  let d = Dims.bgl in
  let a = Box.make (Coord.make 0 0 0) (Shape.make 2 2 2) in
  let b = Box.make (Coord.make 1 1 1) (Shape.make 2 2 2) in
  let c = Box.make (Coord.make 2 2 2) (Shape.make 2 2 2) in
  check_bool "a overlaps b" true (Box.overlap d a b);
  check_bool "a does not overlap c" false (Box.overlap d a c);
  let wrapped = Box.make (Coord.make 3 0 0) (Shape.make 2 2 2) in
  check_bool "wraps into a" true (Box.overlap d a wrapped)

(* ------------------------------------------------------------------ *)
(* Grid *)

let test_grid_occupy_vacate () =
  let g = Grid.create Dims.bgl in
  check_int "all free" 128 (Grid.free_count g);
  let b = Box.make (Coord.make 0 0 0) (Shape.make 2 2 2) in
  Grid.occupy g b ~owner:7;
  check_int "free after occupy" 120 (Grid.free_count g);
  check_int "busy" 8 (Grid.busy_count g);
  Alcotest.(check (option int)) "owner" (Some 7) (Grid.owner g 0);
  check_bool "box not free" false (Grid.box_is_free g b);
  Grid.vacate g b ~owner:7;
  check_int "free after vacate" 128 (Grid.free_count g);
  check_bool "box free again" true (Grid.box_is_free g b)

let test_grid_double_occupy_rejected () =
  let g = Grid.create Dims.bgl in
  let b = Box.make (Coord.make 0 0 0) (Shape.make 2 2 2) in
  Grid.occupy g b ~owner:1;
  let overlapping = Box.make (Coord.make 1 1 1) (Shape.make 2 2 2) in
  check_bool "raises on overlap" true
    (try
       Grid.occupy g overlapping ~owner:2;
       false
     with Invalid_argument _ -> true);
  (* The failed claim must not have changed anything. *)
  check_int "free count unchanged" 120 (Grid.free_count g);
  Alcotest.(check (option int)) "unclaimed cell still free" None
    (Grid.owner g (Coord.index Dims.bgl (Coord.make 2 2 2)))

let test_grid_vacate_wrong_owner () =
  let g = Grid.create Dims.bgl in
  let b = Box.make (Coord.make 0 0 0) (Shape.make 1 1 1) in
  Grid.occupy g b ~owner:1;
  check_bool "wrong owner rejected" true
    (try
       Grid.vacate g b ~owner:2;
       false
     with Invalid_argument _ -> true)

let test_grid_copy_independent () =
  let g = Grid.create Dims.bgl in
  let b = Box.make (Coord.make 0 0 0) (Shape.make 1 1 1) in
  let g2 = Grid.copy g in
  Grid.occupy g b ~owner:1;
  check_bool "copy unaffected" true (Grid.box_is_free g2 b)

let test_grid_owners () =
  let g = Grid.create Dims.bgl in
  Grid.occupy g (Box.make (Coord.make 0 0 0) (Shape.make 1 1 1)) ~owner:5;
  Grid.occupy g (Box.make (Coord.make 1 0 0) (Shape.make 1 1 1)) ~owner:3;
  Grid.occupy_node g 10 ~owner:Grid.down_owner;
  Alcotest.(check (list int)) "owners sorted" [ Grid.down_owner; 3; 5 ] (Grid.owners g)

let test_grid_down_owner () =
  let g = Grid.create Dims.bgl in
  Grid.occupy_node g 0 ~owner:Grid.down_owner;
  check_bool "down node not free" false (Grid.is_free g 0);
  Grid.vacate_node g 0 ~owner:Grid.down_owner;
  check_bool "repaired" true (Grid.is_free g 0)

let test_grid_version_fingerprint () =
  let g = Grid.create Dims.bgl in
  check_int "fresh version" 0 (Grid.version g);
  check_int "fresh fingerprint" 0 (Grid.fingerprint g);
  let b = Box.make (Coord.make 0 0 0) (Shape.make 2 2 2) in
  Grid.occupy g b ~owner:7;
  check_int "version counts cells" 8 (Grid.version g);
  let fp_occupied = Grid.fingerprint g in
  check_bool "occupied fingerprint differs" true (fp_occupied <> 0);
  (* Same occupancy under a different owner: same fingerprint. *)
  let g2 = Grid.create Dims.bgl in
  Grid.occupy g2 b ~owner:3;
  check_int "owner-independent" fp_occupied (Grid.fingerprint g2);
  (* A probe (occupy then vacate) restores the fingerprint but not the
     version. *)
  let probe = Box.make (Coord.make 2 2 2) (Shape.make 2 1 1) in
  Grid.occupy g probe ~owner:9;
  check_bool "probe changes fingerprint" true (Grid.fingerprint g <> fp_occupied);
  Grid.vacate g probe ~owner:9;
  check_int "probe restores fingerprint" fp_occupied (Grid.fingerprint g);
  check_int "version is monotonic" 12 (Grid.version g);
  (* Vacating back to empty restores the empty fingerprint. *)
  Grid.vacate g b ~owner:7;
  check_int "empty again" 0 (Grid.fingerprint g);
  (* copy carries both. *)
  Grid.occupy g b ~owner:7;
  let c = Grid.copy g in
  check_int "copy version" (Grid.version g) (Grid.version c);
  check_int "copy fingerprint" (Grid.fingerprint g) (Grid.fingerprint c)

(* ------------------------------------------------------------------ *)
(* Prefix *)

let random_grid rng dims wrap p_busy =
  let g = Grid.create ~wrap dims in
  for node = 0 to Dims.volume dims - 1 do
    if Bgl_stats.Rng.unit_float rng < p_busy then Grid.occupy_node g node ~owner:(node mod 7)
  done;
  g

let test_prefix_matches_direct () =
  let rng = Bgl_stats.Rng.create ~seed:77 in
  let d = Dims.make 3 4 5 in
  List.iter
    (fun wrap ->
      let g = random_grid rng d wrap 0.4 in
      let table = Prefix.build g in
      let shapes = [ Shape.make 1 1 1; Shape.make 2 2 2; Shape.make 3 1 2; Shape.make 3 4 5 ] in
      List.iter
        (fun shape ->
          List.iter
            (fun base ->
              let b = Box.make base shape in
              let direct =
                List.length (List.filter (fun i -> not (Grid.is_free g i)) (Box.indices d b))
              in
              check_int "prefix count" direct (Prefix.occupied_in_box table b))
            (if wrap then
               List.concat_map
                 (fun z ->
                   List.concat_map
                     (fun y -> List.map (fun x -> Coord.make x y z) (List.init d.nx Fun.id))
                     (List.init d.ny Fun.id))
                 (List.init d.nz Fun.id)
             else
               let ok ext dim = List.init (dim - ext + 1) Fun.id in
               List.concat_map
                 (fun z ->
                   List.concat_map
                     (fun y -> List.map (fun x -> Coord.make x y z) (ok shape.sx d.nx))
                     (ok shape.sy d.ny))
                 (ok shape.sz d.nz)))
        shapes)
    [ true; false ]

let test_prefix_track_incremental () =
  let d = Dims.bgl in
  let g = Grid.create d in
  let t = Prefix.track g in
  let b = Box.make (Coord.make 1 2 3) (Shape.make 2 2 2) in
  Grid.occupy g b ~owner:4;
  Prefix.note_box t b;
  check_bool "stale before sync" true (Prefix.is_stale t);
  check_int "counts after occupy" 8 (Prefix.occupied_in_box t (Box.make (Coord.make 0 0 0) (Shape.make 4 4 8)));
  check_bool "synced by query" false (Prefix.is_stale t);
  check_bool "equals fresh build" true (Prefix.equal t (Prefix.build g));
  let s = Prefix.stats t in
  check_int "one incremental update" 1 s.Prefix.incremental_updates;
  check_int "no full rebuild" 0 s.Prefix.full_rebuilds;
  (* A box wrapping past an axis end is noted from corner 0 of that
     axis and still lands on the right cells. *)
  let wrapping = Box.make (Coord.make 3 3 7) (Shape.make 2 2 2) in
  Grid.occupy g wrapping ~owner:5;
  Prefix.note_box t wrapping;
  check_bool "wrapping box incremental" true (Prefix.equal t (Prefix.build g));
  check_int "still no full rebuild" 0 (Prefix.stats t).Prefix.full_rebuilds

let test_prefix_track_self_heals () =
  let d = Dims.bgl in
  let g = Grid.create d in
  let t = Prefix.track g in
  (* Mutate WITHOUT noting: the tracker must detect the drift via the
     grid version and fall back to a full rebuild, never serving stale
     counts. *)
  Grid.occupy_node g 17 ~owner:2;
  check_int "unnoted change still counted" 1
    (Prefix.occupied_in_box t (Box.make (Coord.make 0 0 0) (Shape.make 4 4 8)));
  check_int "healed by full rebuild" 1 (Prefix.stats t).Prefix.full_rebuilds;
  (* Same when notes cover only part of a batch of mutations. *)
  Grid.occupy_node g 3 ~owner:2;
  Grid.occupy_node g 5 ~owner:2;
  Prefix.note_node t 3;
  check_int "partial notes also rebuild" 3
    (Prefix.occupied_in_box t (Box.make (Coord.make 0 0 0) (Shape.make 4 4 8)));
  check_int "second full rebuild" 2 (Prefix.stats t).Prefix.full_rebuilds;
  check_bool "matches fresh build" true (Prefix.equal t (Prefix.build g))

(* ------------------------------------------------------------------ *)
(* Summary *)

let test_summary_counts () =
  let d = Dims.make 4 4 8 in
  let g = Grid.create d in
  let s = Grid.summary g in
  check_int "x slab starts full" (4 * 8) (Summary.slab_free s ~axis:`X 0);
  check_int "z slab starts full" (4 * 4) (Summary.slab_free s ~axis:`Z 7);
  let v0 = Summary.version s in
  Grid.occupy g (Box.make (Coord.make 1 2 3) (Shape.make 1 1 1)) ~owner:5;
  check_int "x slab decremented" ((4 * 8) - 1) (Summary.slab_free s ~axis:`X 1);
  check_int "y slab decremented" ((4 * 8) - 1) (Summary.slab_free s ~axis:`Y 2);
  check_int "z slab decremented" ((4 * 4) - 1) (Summary.slab_free s ~axis:`Z 3);
  check_int "other slab untouched" (4 * 8) (Summary.slab_free s ~axis:`X 0);
  check_bool "version advanced" true (Summary.version s > v0);
  Grid.vacate g (Box.make (Coord.make 1 2 3) (Shape.make 1 1 1)) ~owner:5;
  check_int "x slab restored" (4 * 8) (Summary.slab_free s ~axis:`X 1)

let test_summary_copy_independent () =
  let d = Dims.make 4 4 8 in
  let g = Grid.create d in
  let ghost = Grid.copy g in
  Grid.occupy ghost (Box.make (Coord.make 0 0 0) (Shape.make 2 2 2)) ~owner:1;
  check_int "original summary untouched" (4 * 8) (Summary.slab_free (Grid.summary g) ~axis:`X 0);
  check_int "copy summary tracked" ((4 * 8) - 4)
    (Summary.slab_free (Grid.summary ghost) ~axis:`X 0)

let test_summary_full_grid_infeasible () =
  let d = Dims.make 4 4 8 in
  let g = Grid.create d in
  Grid.occupy g (Box.make (Coord.make 0 0 0) (Shape.make 4 4 8)) ~owner:1;
  check_bool "unit shape infeasible on full grid" false
    (Summary.shape_feasible (Grid.summary g) ~wrap:true (Shape.make 1 1 1));
  Grid.vacate g (Box.make (Coord.make 0 0 0) (Shape.make 4 4 8)) ~owner:1;
  check_bool "whole machine feasible when empty" true
    (Summary.shape_feasible (Grid.summary g) ~wrap:true (Shape.make 4 4 8))

(* ------------------------------------------------------------------ *)
(* Properties *)

let dims_gen =
  QCheck.Gen.(
    map3 (fun a b c -> Dims.make a b c) (int_range 1 5) (int_range 1 5) (int_range 1 6))

let arb_dims = QCheck.make ~print:Dims.to_string dims_gen

let prop_coord_round_trip =
  QCheck.Test.make ~name:"coord index round-trip" ~count:300
    QCheck.(pair arb_dims (int_range 0 1000))
    (fun (d, i) ->
      let i = i mod Dims.volume d in
      Coord.index d (Coord.of_index d i) = i)

let prop_box_cells_distinct =
  QCheck.Test.make ~name:"box cells are volume-many distinct nodes" ~count:300
    QCheck.(quad arb_dims (int_range 0 999) (int_range 1 6) (pair (int_range 1 6) (int_range 1 6)))
    (fun (d, base_seed, sx, (sy, sz)) ->
      let sx = 1 + (sx - 1) mod d.nx
      and sy = 1 + (sy - 1) mod d.ny
      and sz = 1 + (sz - 1) mod d.nz in
      let base = Coord.of_index d (base_seed mod Dims.volume d) in
      let b = Box.make base (Shape.make sx sy sz) in
      let cells = Box.cells d b in
      List.length cells = sx * sy * sz
      && List.length (List.sort_uniq Coord.compare cells) = sx * sy * sz
      && List.for_all (Coord.in_bounds d) cells)

let prop_overlap_matches_cells =
  QCheck.Test.make ~name:"Box.overlap agrees with cell intersection" ~count:300
    QCheck.(
      pair arb_dims (pair (pair (int_range 0 999) (int_range 0 999)) (pair (int_range 1 216) (int_range 1 216))))
    (fun (d, ((b1, b2), (s1, s2))) ->
      let mk bseed sseed =
        let base = Coord.of_index d (bseed mod Dims.volume d) in
        let sx = 1 + (sseed mod d.nx) in
        let sy = 1 + (sseed / 7 mod d.ny) in
        let sz = 1 + (sseed / 49 mod d.nz) in
        Box.make base (Shape.make sx sy sz)
      in
      let bx1 = mk b1 s1 and bx2 = mk b2 s2 in
      let set1 = Box.indices d bx1 and set2 = Box.indices d bx2 in
      let inter = List.exists (fun i -> List.mem i set2) set1 in
      Box.overlap d bx1 bx2 = inter)

let prop_member_matches_cells =
  QCheck.Test.make ~name:"Box.member agrees with cell list" ~count:300
    QCheck.(pair arb_dims (pair (int_range 0 999) (int_range 1 216)))
    (fun (d, (bseed, sseed)) ->
      let base = Coord.of_index d (bseed mod Dims.volume d) in
      let sx = 1 + (sseed mod d.nx) in
      let sy = 1 + (sseed / 7 mod d.ny) in
      let sz = 1 + (sseed / 49 mod d.nz) in
      let b = Box.make base (Shape.make sx sy sz) in
      let cells = Box.cells d b in
      List.for_all
        (fun i ->
          let c = Coord.of_index d i in
          Box.member d b c = List.exists (Coord.equal c) cells)
        (List.init (Dims.volume d) Fun.id))

let prop_grid_free_count =
  QCheck.Test.make ~name:"grid free count tracks occupancy" ~count:200
    QCheck.(pair small_int (pair arb_dims (float_bound_inclusive 1.)))
    (fun (seed, (d, p)) ->
      let rng = Bgl_stats.Rng.create ~seed in
      let g = random_grid rng d true p in
      let free = ref 0 in
      for i = 0 to Dims.volume d - 1 do
        if Grid.is_free g i then incr free
      done;
      !free = Grid.free_count g && Grid.busy_count g = Dims.volume d - !free)

let prop_prefix_agrees =
  QCheck.Test.make ~name:"prefix counts equal direct counts" ~count:200
    QCheck.(
      pair small_int (pair arb_dims (pair bool (pair (float_bound_inclusive 1.) (pair (int_range 0 999) (int_range 1 216))))))
    (fun (seed, (d, (wrap, (p, (bseed, sseed))))) ->
      let rng = Bgl_stats.Rng.create ~seed in
      let g = random_grid rng d wrap p in
      let table = Prefix.build g in
      let sx = 1 + (sseed mod d.nx) in
      let sy = 1 + (sseed / 7 mod d.ny) in
      let sz = 1 + (sseed / 49 mod d.nz) in
      let base =
        if wrap then Coord.of_index d (bseed mod Dims.volume d)
        else
          Coord.make
            (bseed mod (d.nx - sx + 1))
            (bseed / 5 mod (d.ny - sy + 1))
            (bseed / 25 mod (d.nz - sz + 1))
      in
      let b = Box.make base (Shape.make sx sy sz) in
      let direct = List.length (List.filter (fun i -> not (Grid.is_free g i)) (Box.indices d b)) in
      Prefix.occupied_in_box table b = direct)

(* Random alloc/free sequences against a tracking table. Each op is a
   pair of seeds decoded against the dims: it either claims a fully
   free box, releases a box we own, or toggles one node. Every mutation
   is noted, so the tracker must stay equal to a from-scratch build
   using only incremental updates. The op list shrinks as a list, so
   counterexamples minimize to short sequences. *)
let apply_op g table (bseed, sseed) =
  let d = Grid.dims g in
  let owner = 5 in
  let sx = 1 + (sseed mod d.nx) in
  let sy = 1 + (sseed / 7 mod d.ny) in
  let sz = 1 + (sseed / 49 mod d.nz) in
  let b = Box.make (Coord.of_index d (bseed mod Dims.volume d)) (Shape.make sx sy sz) in
  let cells = Box.indices d b in
  if List.for_all (Grid.is_free g) cells then begin
    Grid.occupy g b ~owner;
    Prefix.note_box table b
  end
  else if List.for_all (fun i -> Grid.owner g i = Some owner) cells then begin
    Grid.vacate g b ~owner;
    Prefix.note_box table b
  end
  else begin
    let node = bseed mod Dims.volume d in
    (match Grid.owner g node with
    | None -> Grid.occupy_node g node ~owner
    | Some o -> Grid.vacate_node g node ~owner:o);
    Prefix.note_node table node
  end

let prop_summary_feasible_necessary =
  (* The summary may say "maybe" for a shape with no placement, but it
     must never say "no" when a direct scan finds a free box — a false
     rejection would make the gated finders drop real candidates. *)
  QCheck.Test.make ~name:"summary shape_feasible is a necessary condition" ~count:300
    QCheck.(
      pair
        (pair arb_dims bool)
        (pair (small_list (int_range 0 999)) (pair (int_range 1 6) (pair (int_range 1 6) (int_range 1 6)))))
    (fun ((d, wrap), (nodes, (sx, (sy, sz)))) ->
      let g = Grid.create ~wrap d in
      List.iter
        (fun n ->
          let n = n mod Dims.volume d in
          if Grid.is_free g n then Grid.occupy_node g n ~owner:7)
        nodes;
      let s =
        Shape.make (1 + ((sx - 1) mod d.nx)) (1 + ((sy - 1) mod d.ny)) (1 + ((sz - 1) mod d.nz))
      in
      let box_free b = List.for_all (Grid.is_free g) (Box.indices d b) in
      let hi dim ext = if wrap then dim - 1 else dim - ext in
      let exists_direct = ref false in
      for x = 0 to hi d.nx s.Shape.sx do
        for y = 0 to hi d.ny s.Shape.sy do
          for z = 0 to hi d.nz s.Shape.sz do
            if box_free (Box.make (Coord.make x y z) s) then exists_direct := true
          done
        done
      done;
      (not !exists_direct) || Summary.shape_feasible (Grid.summary g) ~wrap s)

let prop_prefix_incremental_equals_rebuild =
  QCheck.Test.make ~name:"incremental prefix state = from-scratch rebuild" ~count:200
    QCheck.(
      pair (pair arb_dims bool) (small_list (pair (int_range 0 999) (int_range 0 999))))
    (fun ((d, wrap), ops) ->
      let g = Grid.create ~wrap d in
      let table = Prefix.track g in
      (* Sync at every step, not just at the end: each op must be
         digestible as a dirty-block update on its own. *)
      List.iter
        (fun op ->
          apply_op g table op;
          if not (Prefix.equal table (Prefix.build g)) then
            QCheck.Test.fail_reportf "tracker diverged after an op:@.%a" Grid.pp g)
        ops;
      let s = Prefix.stats table in
      if s.Prefix.full_rebuilds > 0 then
        QCheck.Test.fail_reportf "noted mutations caused %d full rebuilds" s.Prefix.full_rebuilds;
      true)

let prop_prefix_batched_notes =
  QCheck.Test.make ~name:"batched notes merge into one dirty region" ~count:200
    QCheck.(
      pair (pair arb_dims bool) (small_list (pair (int_range 0 999) (int_range 0 999))))
    (fun ((d, wrap), ops) ->
      let g = Grid.create ~wrap d in
      let table = Prefix.track g in
      (* All ops first, one sync at the end: the dirty corners must
         merge correctly. *)
      List.iter (apply_op g table) ops;
      Prefix.equal table (Prefix.build g))

let prop_fingerprint_tracks_occupancy =
  QCheck.Test.make ~name:"fingerprint identifies the free/occupied set" ~count:200
    QCheck.(
      pair (pair arb_dims bool) (small_list (pair (int_range 0 999) (int_range 0 999))))
    (fun ((d, wrap), ops) ->
      let g = Grid.create ~wrap d in
      let reference = Grid.create ~wrap d in
      (* Replay the same occupancy into [reference] node by node, in a
         different order and under different owners: fingerprints must
         still agree, and version must count every mutation. *)
      let table = Prefix.track g in
      List.iter (apply_op g table) ops;
      for node = Dims.volume d - 1 downto 0 do
        if not (Grid.is_free g node) then Grid.occupy_node reference node ~owner:11
      done;
      Grid.fingerprint reference = Grid.fingerprint g
      && Grid.version g >= Grid.busy_count g)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_coord_round_trip;
      prop_box_cells_distinct;
      prop_overlap_matches_cells;
      prop_member_matches_cells;
      prop_grid_free_count;
      prop_prefix_agrees;
      prop_summary_feasible_necessary;
      prop_prefix_incremental_equals_rebuild;
      prop_prefix_batched_notes;
      prop_fingerprint_tracks_occupancy;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgl_torus"
    [
      ( "dims",
        [
          tc "make/volume" test_dims_make;
          tc "invalid" test_dims_invalid;
          tc "string round trip" test_dims_string_round_trip;
          tc "comma form and bgl_full" test_dims_comma_form;
        ] );
      ( "coord",
        [
          tc "index round trip" test_coord_index_round_trip;
          tc "index order" test_coord_index_order;
          tc "wrap" test_coord_wrap;
          tc "in_bounds" test_coord_in_bounds;
          tc "of_index invalid" test_coord_of_index_invalid;
        ] );
      ("shape", [ tc "volume/fits" test_shape_volume_fits; tc "rotations" test_shape_rotations ]);
      ( "box",
        [
          tc "cells count and dedup" test_box_cells_count_and_dedup;
          tc "indices in range" test_box_indices_in_range;
          tc "canonical" test_box_canonical;
          tc "member" test_box_member;
          tc "overlap" test_box_overlap;
        ] );
      ( "grid",
        [
          tc "occupy/vacate" test_grid_occupy_vacate;
          tc "double occupy rejected" test_grid_double_occupy_rejected;
          tc "vacate wrong owner" test_grid_vacate_wrong_owner;
          tc "copy independent" test_grid_copy_independent;
          tc "owners" test_grid_owners;
          tc "down owner" test_grid_down_owner;
          tc "version and fingerprint" test_grid_version_fingerprint;
        ] );
      ( "prefix",
        [
          tc "matches direct counts" test_prefix_matches_direct;
          tc "incremental tracking" test_prefix_track_incremental;
          tc "self-heals on unnoted changes" test_prefix_track_self_heals;
        ] );
      ( "summary",
        [
          tc "slab counts track mutations" test_summary_counts;
          tc "copy is independent" test_summary_copy_independent;
          tc "full grid is infeasible" test_summary_full_grid_infeasible;
        ] );
      ("properties", props);
    ]
