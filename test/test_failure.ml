(* Tests for the synthetic failure-trace generator. *)

open Bgl_failure

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let spec ?(n_events = 400) ?(span = 1e6) ?(volume = 128) ?(seed = 5) () =
  Generator.default ~span ~volume ~n_events ~seed

let test_exact_count () =
  List.iter
    (fun n ->
      check_int
        (Printf.sprintf "exactly %d events" n)
        n
        (Bgl_trace.Failure_log.length (Generator.generate (spec ~n_events:n ()))))
    [ 0; 1; 7; 400 ]

let test_within_span () =
  let log = Generator.generate (spec ()) in
  Array.iter
    (fun (e : Bgl_trace.Failure_log.event) ->
      check_bool "time in [0, span]" true (e.time >= 0. && e.time <= 1e6))
    log.events

let test_nodes_within_volume () =
  let log = Generator.generate (spec ~volume:16 ()) in
  check_bool "nodes < 16" true (List.for_all (fun n -> n >= 0 && n < 16) (Bgl_trace.Failure_log.nodes log))

let test_deterministic () =
  let a = Generator.generate (spec ()) in
  let b = Generator.generate (spec ()) in
  check_bool "same seed same trace" true (a.events = b.events);
  let c = Generator.generate (spec ~seed:6 ()) in
  check_bool "different seed differs" false (a.events = c.events)

let test_node_skew () =
  (* With Zipf skew, the busiest node should soak up far more than the
     uniform share of events. *)
  let log = Generator.generate (spec ~n_events:2000 ()) in
  let counts = Array.make 128 0 in
  Array.iter (fun (e : Bgl_trace.Failure_log.event) -> counts.(e.node) <- counts.(e.node) + 1) log.events;
  let max_count = Array.fold_left max 0 counts in
  let uniform_share = 2000 / 128 in
  check_bool
    (Printf.sprintf "max node count %d >> uniform %d" max_count uniform_share)
    true
    (max_count > 4 * uniform_share)

let test_uniform_baseline_not_skewed () =
  let log = Generator.poisson_uniform ~span:1e6 ~volume:128 ~n_events:2000 ~seed:5 in
  let counts = Array.make 128 0 in
  Array.iter (fun (e : Bgl_trace.Failure_log.event) -> counts.(e.node) <- counts.(e.node) + 1) log.events;
  let max_count = Array.fold_left max 0 counts in
  check_bool "uniform stays near uniform" true (max_count < 3 * (2000 / 128))

let test_burstiness () =
  (* Bursty traces have many near-simultaneous pairs; a uniform trace
     over the same span essentially none. Count consecutive gaps under
     a minute. *)
  let close_pairs (log : Bgl_trace.Failure_log.t) =
    let n = Bgl_trace.Failure_log.length log in
    let count = ref 0 in
    for i = 1 to n - 1 do
      if log.events.(i).time -. log.events.(i - 1).time < 60. then incr count
    done;
    !count
  in
  let bursty = close_pairs (Generator.generate (spec ~n_events:500 ())) in
  let uniform = close_pairs (Generator.poisson_uniform ~span:1e6 ~volume:128 ~n_events:500 ~seed:5) in
  check_bool
    (Printf.sprintf "bursty %d >> uniform %d" bursty uniform)
    true
    (bursty > (3 * uniform) + 20)

let test_uniform_times_pass_ks () =
  (* The uniform baseline's event times must be consistent with
     U(0, span); the bursty generator's must not. *)
  let times log =
    Array.map (fun (e : Bgl_trace.Failure_log.event) -> e.time) log.Bgl_trace.Failure_log.events
  in
  let uniform = Generator.poisson_uniform ~span:1e6 ~volume:128 ~n_events:800 ~seed:9 in
  check_bool "uniform passes" true
    (Bgl_stats.Ks.test ~samples:(times uniform) ~cdf:(Bgl_stats.Ks.uniform_cdf ~lo:0. ~hi:1e6)
       ~alpha:0.01);
  let bursty = Generator.generate (spec ~n_events:800 ~seed:9 ()) in
  (* bursty times are still roughly uniform at burst level, but the
     within-burst clustering shows up in the KS distance; assert only
     that the uniform trace is at least as close to uniformity *)
  let d log = Bgl_stats.Ks.statistic ~samples:(times log) ~cdf:(Bgl_stats.Ks.uniform_cdf ~lo:0. ~hi:1e6) in
  check_bool "bursty is no closer to uniform" true (d bursty >= d uniform -. 0.01)

let test_validation () =
  let invalid s msg =
    check_bool msg true
      (try
         ignore (Generator.generate s);
         false
       with Invalid_argument _ -> true)
  in
  invalid { (spec ()) with span = 0. } "zero span";
  invalid { (spec ()) with volume = 0 } "zero volume";
  invalid { (spec ()) with n_events = -1 } "negative events";
  invalid { (spec ()) with burst_mean_size = 0.5 } "burst < 1";
  invalid { (spec ()) with node_skew = -1. } "negative skew"

(* ------------------------------------------------------------------ *)

let prop_generator_invariants =
  QCheck.Test.make ~name:"generator count/span/node invariants" ~count:50
    QCheck.(triple (int_range 0 300) (int_range 1 64) small_int)
    (fun (n_events, volume, seed) ->
      let log = Generator.generate (Generator.default ~span:1e5 ~volume ~n_events ~seed) in
      Bgl_trace.Failure_log.length log = n_events
      && Array.for_all
           (fun (e : Bgl_trace.Failure_log.event) ->
             e.time >= 0. && e.time <= 1e5 && e.node >= 0 && e.node < volume)
           log.events)

let props = List.map QCheck_alcotest.to_alcotest [ prop_generator_invariants ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgl_failure"
    [
      ( "generator",
        [
          tc "exact count" test_exact_count;
          tc "within span" test_within_span;
          tc "nodes within volume" test_nodes_within_volume;
          tc "deterministic" test_deterministic;
          tc "node skew" test_node_skew;
          tc "uniform baseline" test_uniform_baseline_not_skewed;
          tc "burstiness" test_burstiness;
          tc "uniform KS" test_uniform_times_pass_ks;
          tc "validation" test_validation;
        ] );
      ("properties", props);
    ]
