(* Tests for job logs, SWF interchange and failure logs. *)

open Bgl_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let job ?(id = 0) ?(arrival = 0.) ?(size = 1) ?(run_time = 100.) ?estimate () =
  { Job_log.id; arrival; size; run_time; estimate = Option.value estimate ~default:run_time }

(* ------------------------------------------------------------------ *)
(* Job_log *)

let test_make_sorts () =
  let log =
    Job_log.make ~name:"t"
      [ job ~id:2 ~arrival:50. (); job ~id:1 ~arrival:10. (); job ~id:3 ~arrival:50. () ]
  in
  Alcotest.(check (list int)) "sorted by (arrival, id)" [ 1; 2; 3 ]
    (Array.to_list (Array.map (fun (j : Job_log.job) -> j.id) log.jobs))

let test_make_validates () =
  let invalid j msg =
    check_bool msg true
      (try
         ignore (Job_log.make ~name:"t" [ j ]);
         false
       with Invalid_argument _ -> true)
  in
  invalid (job ~size:0 ()) "zero size";
  invalid (job ~run_time:0. ()) "zero runtime";
  invalid (job ~arrival:(-1.) ()) "negative arrival";
  invalid { (job ()) with estimate = 0. } "zero estimate";
  check_bool "duplicate ids" true
    (try
       ignore (Job_log.make ~name:"t" [ job ~id:1 (); job ~id:1 ~arrival:5. () ]);
       false
     with Invalid_argument _ -> true)

let test_span_and_work () =
  let log =
    Job_log.make ~name:"t"
      [ job ~id:1 ~arrival:100. ~run_time:50. ~size:4 (); job ~id:2 ~arrival:120. ~run_time:200. ~size:2 () ]
  in
  check_float "span" 220. (Job_log.span log);
  check_float "work" ((4. *. 50.) +. (2. *. 200.)) (Job_log.total_work log);
  check_float "offered" (600. /. (220. *. 10.)) (Job_log.offered_load log ~nodes:10)

let test_empty_log () =
  let log = Job_log.make ~name:"empty" [] in
  check_int "length" 0 (Job_log.length log);
  check_float "span" 0. (Job_log.span log);
  check_float "offered" 0. (Job_log.offered_load log ~nodes:10)

let test_scale_runtime () =
  let log = Job_log.make ~name:"t" [ job ~id:1 ~run_time:100. ~estimate:150. () ] in
  let scaled = Job_log.scale_runtime log ~c:1.2 in
  check_float "runtime scaled" 120. scaled.jobs.(0).run_time;
  check_float "estimate scaled" 180. scaled.jobs.(0).estimate;
  check_float "arrival unchanged" 0. scaled.jobs.(0).arrival;
  check_bool "invalid c" true
    (try
       ignore (Job_log.scale_runtime log ~c:0.);
       false
     with Invalid_argument _ -> true)

let test_filter_max_size () =
  let log =
    Job_log.make ~name:"t" [ job ~id:1 ~size:10 (); job ~id:2 ~arrival:1. ~size:200 () ]
  in
  let filtered = Job_log.filter_max_size log ~max_size:128 in
  check_int "one left" 1 (Job_log.length filtered);
  check_int "max size" 10 (Job_log.max_size filtered)

(* ------------------------------------------------------------------ *)
(* Swf *)

let sample_swf =
  "; header comment\n\
   1 0 5 100 4 -1 -1 4 200 -1 1 -1 -1 -1 -1 -1 -1 -1\n\
   2 50 -1 60 -1 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n\
   3 80 0 -1 4 -1 -1 4 100 -1 0 -1 -1 -1 -1 -1 -1 -1\n\
   not a number at all\n"

let test_swf_parse () =
  match Swf.of_string ~name:"sample" sample_swf with
  | Error e -> Alcotest.fail e
  | Ok (log, report) ->
      check_int "parsed" 2 report.parsed;
      check_int "skipped (unknown runtime)" 1 report.skipped;
      Alcotest.(check (list int)) "malformed line numbers" [ 5 ] report.malformed;
      let j1 = log.jobs.(0) in
      check_int "id" 1 j1.id;
      check_float "arrival" 0. j1.arrival;
      check_float "runtime" 100. j1.run_time;
      check_int "size from field 5" 4 j1.size;
      check_float "estimate from field 9" 200. j1.estimate;
      let j2 = log.jobs.(1) in
      check_int "size falls back to field 8" 8 j2.size;
      check_float "estimate falls back to runtime" 60. j2.estimate

let test_swf_estimate_never_below_runtime () =
  let text = "1 0 0 500 4 -1 -1 4 100 -1 1 -1 -1 -1 -1 -1 -1 -1\n" in
  match Swf.of_string ~name:"t" text with
  | Error e -> Alcotest.fail e
  | Ok (log, _) -> check_float "estimate raised to runtime" 500. log.jobs.(0).estimate

let test_swf_empty_rejected () =
  check_bool "no jobs is an error" true (Result.is_error (Swf.of_string ~name:"t" "; nothing\n"))

let test_swf_round_trip () =
  let log =
    Job_log.make ~name:"rt"
      [
        job ~id:1 ~arrival:10. ~size:4 ~run_time:100. ~estimate:150. ();
        job ~id:2 ~arrival:20. ~size:128 ~run_time:3600. ();
      ]
  in
  match Swf.of_string ~name:"rt" (Swf.to_string log) with
  | Error e -> Alcotest.fail e
  | Ok (parsed, report) ->
      check_int "all jobs back" (Job_log.length log) report.parsed;
      Array.iteri
        (fun i (j : Job_log.job) ->
          let orig = log.jobs.(i) in
          check_int "id" orig.id j.id;
          check_int "size" orig.size j.size;
          check_float "arrival" orig.arrival j.arrival;
          check_float "runtime" orig.run_time j.run_time;
          check_float "estimate" orig.estimate j.estimate)
        parsed.jobs

let test_swf_file_io () =
  let log = Job_log.make ~name:"io" [ job ~id:1 ~size:2 () ] in
  let path = Filename.temp_file "bgl_test" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Swf.save log path;
      match Swf.load path with
      | Ok (parsed, _) -> check_int "length" 1 (Job_log.length parsed)
      | Error e -> Alcotest.fail e)

let test_swf_load_missing () =
  check_bool "missing file is an error" true (Result.is_error (Swf.load "/nonexistent/x.swf"))

(* ------------------------------------------------------------------ *)
(* Failure_log *)

let test_failure_log_sorting () =
  let log =
    Failure_log.make ~name:"t"
      [ { time = 50.; node = 3 }; { time = 10.; node = 7 }; { time = 50.; node = 1 } ]
  in
  Alcotest.(check (list (pair (float 0.) int)))
    "sorted by (time, node)"
    [ (10., 7); (50., 1); (50., 3) ]
    (Array.to_list (Array.map (fun (e : Failure_log.event) -> (e.time, e.node)) log.events));
  check_float "span" 40. (Failure_log.span log);
  Alcotest.(check (list int)) "nodes" [ 1; 3; 7 ] (Failure_log.nodes log)

let test_failure_log_validation () =
  check_bool "negative time" true
    (try
       ignore (Failure_log.make ~name:"t" [ { time = -1.; node = 0 } ]);
       false
     with Invalid_argument _ -> true);
  check_bool "negative node" true
    (try
       ignore (Failure_log.make ~name:"t" [ { time = 1.; node = -2 } ]);
       false
     with Invalid_argument _ -> true)

let test_failure_truncate_and_scale () =
  let events = List.init 100 (fun i -> { Failure_log.time = float_of_int i; node = i mod 5 }) in
  let log = Failure_log.make ~name:"t" events in
  let truncated = Failure_log.truncate log ~keep:10 in
  check_int "truncated" 10 (Failure_log.length truncated);
  check_float "first kept" 0. truncated.events.(0).time;
  let sampled = Failure_log.scale_count log ~target:30 ~seed:5 in
  check_int "sampled" 30 (Failure_log.length sampled);
  (* subsample must be sorted and drawn from the original *)
  let times = Array.map (fun (e : Failure_log.event) -> e.time) sampled.events in
  check_bool "sorted" true (Array.for_all2 (fun a b -> a <= b) (Array.sub times 0 29) (Array.sub times 1 29));
  let same = Failure_log.scale_count log ~target:30 ~seed:5 in
  check_bool "deterministic" true (same.events = sampled.events);
  check_int "target >= length is identity" 100 (Failure_log.length (Failure_log.scale_count log ~target:500 ~seed:1))

let test_failure_shift () =
  let log = Failure_log.make ~name:"t" [ { time = 5.; node = 0 } ] in
  let shifted = Failure_log.shift log ~offset:10. in
  check_float "shifted" 15. shifted.events.(0).time

let test_failure_validate_nodes () =
  let log = Failure_log.make ~name:"t" [ { time = 1.; node = 127 } ] in
  check_bool "within" true (Result.is_ok (Failure_log.validate_nodes log ~volume:128));
  check_bool "outside" true (Result.is_error (Failure_log.validate_nodes log ~volume:100))

let test_failure_io_round_trip () =
  let log =
    Failure_log.make ~name:"t" [ { time = 1.5; node = 3 }; { time = 100.25; node = 77 } ]
  in
  match Failure_log.of_string ~name:"t" (Failure_log.to_string log) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      check_int "length" 2 (Failure_log.length parsed);
      check_float "time precision" 1.5 parsed.events.(0).time;
      check_int "node" 3 parsed.events.(0).node

(* Regression: to_string used %.3f, so events closer than a
   millisecond collapsed to the same timestamp across a save/load
   cycle, silently reordering ties. %.17g round-trips exactly. *)
let test_failure_io_precision () =
  let t0 = 1234.000123456789 in
  let log =
    Failure_log.make ~name:"t" [ { time = t0; node = 1 }; { time = t0 +. 1e-7; node = 2 } ]
  in
  match Failure_log.of_string ~name:"t" (Failure_log.to_string log) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      check_bool "bit-exact first" true (parsed.events.(0).time = t0);
      check_bool "bit-exact second" true (parsed.events.(1).time = t0 +. 1e-7);
      check_bool "distinct after round trip" true (parsed.events.(0).time < parsed.events.(1).time)

let test_failure_merge () =
  let a = Failure_log.make ~name:"a" [ { time = 10.; node = 1 }; { time = 30.; node = 2 } ] in
  let b = Failure_log.make ~name:"b" [ { time = 20.; node = 3 } ] in
  let merged = Failure_log.merge ~name:"m" [ a; b ] in
  check_int "all events" 3 (Failure_log.length merged);
  Alcotest.(check (list (pair (float 0.) int)))
    "interleaved in time order"
    [ (10., 1); (20., 3); (30., 2) ]
    (Array.to_list (Array.map (fun (e : Failure_log.event) -> (e.time, e.node)) merged.events));
  check_int "empty merge" 0 (Failure_log.length (Failure_log.merge ~name:"e" []))

let test_failure_parse_errors () =
  check_bool "malformed reported with line" true
    (match Failure_log.of_string ~name:"t" "# ok\n1.0 3\nbogus line here\n" with
    | Error msg -> String.length msg > 0
    | Ok _ -> false)

(* Regression: real failure logs are often tab-separated; of_string
   used to reject any line without a plain space. *)
let test_failure_tab_separated () =
  match Failure_log.of_string ~name:"t" "1.5\t3\n100.25 \t 77\n" with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      check_int "both events parsed" 2 (Failure_log.length parsed);
      check_int "tab-split node" 3 parsed.events.(0).node;
      check_int "mixed-whitespace node" 77 parsed.events.(1).node

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgl_trace"
    [
      ( "job_log",
        [
          tc "sorts" test_make_sorts;
          tc "validates" test_make_validates;
          tc "span and work" test_span_and_work;
          tc "empty" test_empty_log;
          tc "scale_runtime" test_scale_runtime;
          tc "filter_max_size" test_filter_max_size;
        ] );
      ( "swf",
        [
          tc "parse fields" test_swf_parse;
          tc "estimate >= runtime" test_swf_estimate_never_below_runtime;
          tc "empty rejected" test_swf_empty_rejected;
          tc "round trip" test_swf_round_trip;
          tc "file io" test_swf_file_io;
          tc "missing file" test_swf_load_missing;
        ] );
      ( "failure_log",
        [
          tc "sorting" test_failure_log_sorting;
          tc "validation" test_failure_log_validation;
          tc "truncate and scale" test_failure_truncate_and_scale;
          tc "shift" test_failure_shift;
          tc "validate nodes" test_failure_validate_nodes;
          tc "io round trip" test_failure_io_round_trip;
          tc "io round trip precision" test_failure_io_precision;
          tc "merge" test_failure_merge;
          tc "parse errors" test_failure_parse_errors;
          tc "tab-separated fields" test_failure_tab_separated;
        ] );
    ]
