(* Tests for bgl_audit: the trace parser, the checkers, and the
   certificate driver.

   Positive direction: real engine runs — sequential, parallel across
   domains, with failures, repair, migration and checkpointing — must
   all audit clean (the qcheck differential property). Negative
   direction: every checker must fire on a trace seeded with exactly
   its corruption class. *)

open Bgl_audit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Capturing engine traces through the obs runtime *)

let capture ?(seed = 3) ?(n_jobs = 60) ?(load = 1.0) ?(failures = 0) ?config ?parent
    ?(algo = Bgl_core.Scenario.Fault_oblivious) () =
  let lines = ref [] in
  Fun.protect ~finally:Bgl_obs.Runtime.reset (fun () ->
      Bgl_obs.Runtime.set_trace_writer (Some (fun l -> lines := l :: !lines));
      Bgl_obs.Runtime.set_trace_parent parent;
      let scenario =
        Bgl_core.Scenario.make ~n_jobs ~load ~failures_paper:failures ~seed ?config
          ~profile:Bgl_workload.Profile.sdsc algo
      in
      let outcome = Bgl_core.Scenario.run scenario in
      (outcome, List.rev !lines))

let has_rule rule (c : Driver.certificate) =
  List.exists (fun (f : Finding.t) -> f.rule = rule) c.findings

let fail_cert what (c : Driver.certificate) =
  Alcotest.failf "%s:@.%a" what (fun ppf c -> Driver.pp ppf c) c

let expect_rule rule lines =
  let c = Driver.audit_lines lines in
  if not (has_rule rule c) then
    fail_cert (Printf.sprintf "expected a %s finding" (Finding.name rule)) c

(* ------------------------------------------------------------------ *)
(* Line surgery helpers for seeding corruptions *)

let ev_of line =
  match Bgl_obs.Jsonl.parse line with
  | Ok v -> (
      match Option.bind (Bgl_obs.Jsonl.member "ev" v) Bgl_obs.Jsonl.to_string_opt with
      | Some e -> e
      | None -> "")
  | Error _ -> ""

let find_line ev lines =
  match List.find_opt (fun l -> ev_of l = ev) lines with
  | Some l -> l
  | None -> Alcotest.failf "trace has no %s line" ev

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

(* Replace the value of the first ["name":<value>] member with [value]
   (raw JSON). Values never contain ',' or '}', so scanning to the next
   delimiter is exact. *)
let patch_member name value line =
  let key = Printf.sprintf "\"%s\":" name in
  match find_sub line key with
  | None -> Alcotest.failf "no %s member in %s" name line
  | Some i ->
      let start = i + String.length key in
      let stop = ref start in
      while !stop < String.length line && line.[!stop] <> ',' && line.[!stop] <> '}' do
        incr stop
      done;
      String.sub line 0 start ^ value ^ String.sub line !stop (String.length line - !stop)

(* Replace the first line satisfying [sel] using [f]; [f] returning []
   deletes it, returning several inserts. *)
let edit_first sel f lines =
  let rec go = function
    | [] -> Alcotest.fail "no line matched the corruption target"
    | l :: rest when sel l -> f l @ rest
    | l :: rest -> l :: go rest
  in
  go lines

(* ------------------------------------------------------------------ *)
(* Clean runs certify *)

let test_clean_sequential () =
  let outcome, lines = capture ~failures:5000 () in
  let c = Driver.audit_lines lines in
  if not (Driver.pass c) then fail_cert "clean run must audit clean" c;
  check_int "one section" 1 c.sections;
  check_int "complete" 1 c.complete;
  check_bool "ran checks" true (c.checks > 0);
  check_int "no dropped tail" 0 c.dropped_tail;
  check_bool "completed jobs" true (outcome.report.completed_jobs > 0);
  (* to_jsonl renders exactly the certificate line when clean *)
  match Driver.to_jsonl c with
  | [ cert_line ] ->
      check_bool "certificate line" true (Option.is_some (find_sub cert_line "\"kind\":\"certificate\""));
      check_bool "pass flag" true (Option.is_some (find_sub cert_line "\"pass\":true"))
  | ls -> Alcotest.failf "expected 1 jsonl line, got %d" (List.length ls)

let test_clean_parallel_two_domains () =
  (* Two engine runs interleave into one writer from two domains; the
     run tag demultiplexes them back into two clean sections. *)
  let lines = ref [] in
  let m = Mutex.create () in
  Fun.protect ~finally:Bgl_obs.Runtime.reset (fun () ->
      Bgl_obs.Runtime.set_trace_writer
        (Some
           (fun l ->
             Mutex.lock m;
             lines := l :: !lines;
             Mutex.unlock m));
      let snap = Bgl_obs.Runtime.snapshot () in
      let spawn seed =
        Domain.spawn (fun () ->
            Bgl_obs.Runtime.install snap;
            let scenario =
              Bgl_core.Scenario.make ~n_jobs:40 ~load:1.0 ~failures_paper:4000 ~seed
                ~profile:Bgl_workload.Profile.sdsc Bgl_core.Scenario.Fault_oblivious
            in
            ignore (Bgl_core.Scenario.run scenario))
      in
      let d1 = spawn 1 and d2 = spawn 2 in
      Domain.join d1;
      Domain.join d2);
  let c = Driver.audit_lines (List.rev !lines) in
  if not (Driver.pass c) then fail_cert "parallel runs must audit clean" c;
  check_int "two sections" 2 c.sections;
  check_int "both complete" 2 c.complete

let test_clean_repair_checkpoint_migration () =
  let config =
    {
      Bgl_sim.Config.default with
      repair_time = 600.;
      migration = true;
      checkpoint = Some (Bgl_sim.Checkpoint.Periodic { interval = 1800.; overhead = 60. });
    }
  in
  let _, lines = capture ~failures:8000 ~config () in
  let c = Driver.audit_lines lines in
  if not (Driver.pass c) then fail_cert "repair+migration+checkpoint run must audit clean" c;
  check_int "complete" 1 c.complete

(* ------------------------------------------------------------------ *)
(* The differential property: every engine run audits clean *)

let prop_every_run_audits_clean =
  QCheck.Test.make ~name:"every engine run audits clean" ~count:6
    QCheck.(triple (int_bound 1000) (float_range 0.6 1.6) (int_bound 8000))
    (fun (seed, load, failures) ->
      let config =
        match seed mod 3 with
        | 0 -> None
        | 1 -> Some { Bgl_sim.Config.default with repair_time = 900.; migration = true }
        | _ ->
            Some
              {
                Bgl_sim.Config.default with
                checkpoint = Some (Bgl_sim.Checkpoint.Periodic { interval = 3600.; overhead = 30. });
              }
      in
      let _, lines = capture ~seed ~n_jobs:50 ~load ~failures ?config () in
      let c = Driver.audit_lines lines in
      if not (Driver.pass c) then
        QCheck.Test.fail_reportf "audit failed:@.%a" (fun ppf c -> Driver.pp ppf c) c
      else c.sections = 1 && c.complete = 1)

(* ------------------------------------------------------------------ *)
(* Corrupted traces: each checker fires on its corruption class *)

let corrupted () =
  (* A run guaranteed to contain kills so every event kind appears. *)
  let _, lines = capture ~failures:10000 ~n_jobs:60 () in
  check_bool "fixture has kills" true (List.exists (fun l -> ev_of l = "job_kill") lines);
  lines

let test_detects_malformed_line () =
  let lines = corrupted () in
  (* Mid-file garbage is a violation; only a *final* truncated line is
     forgiven as a crash tail. *)
  let seeded = edit_first (fun l -> ev_of l = "job_start") (fun l -> [ "{garbage"; l ]) lines in
  expect_rule Finding.A1 seeded

let test_crash_tail_tolerated () =
  let lines = corrupted () in
  (* Dropping the summary truncates the run (A2), but an unparseable
     final line alone is dropped silently, like the journal reader. *)
  let c = Driver.audit_lines (lines @ [ "{\"ev\":\"job_fin" ]) in
  if not (Driver.pass c) then fail_cert "crash tail must not fail the audit" c;
  check_int "tail dropped" 1 c.dropped_tail

let test_detects_framing () =
  let lines = corrupted () in
  let seeded = edit_first (fun l -> ev_of l = "run_summary") (fun _ -> []) lines in
  expect_rule Finding.A2 seeded

let test_detects_timestamp_regression () =
  let lines = corrupted () in
  let finish = find_line "job_finish" lines in
  let seeded = edit_first (( = ) finish) (fun l -> [ patch_member "t" "-5.0" l ]) lines in
  expect_rule Finding.A3 seeded

let test_detects_invalid_box () =
  let lines = corrupted () in
  (* Shape 9 cannot fit the 4x4x8 torus in any axis. *)
  let seeded =
    edit_first (fun l -> ev_of l = "job_start") (fun l -> [ patch_member "sx" "9" l ]) lines
  in
  expect_rule Finding.A4 seeded

let test_detects_overlap () =
  let lines = corrupted () in
  (* The same start replayed twice: the second occupation collides
     with the first on every node of the partition. *)
  let seeded = edit_first (fun l -> ev_of l = "job_start") (fun l -> [ l; l ]) lines in
  expect_rule Finding.A5 seeded

let test_detects_lifecycle () =
  let lines = corrupted () in
  (* A finish for a job that never arrived is an illegal transition. *)
  let seeded =
    edit_first (fun l -> ev_of l = "job_finish") (fun l -> [ patch_member "job" "999999" l; l ]) lines
  in
  expect_rule Finding.A6 seeded

let test_detects_lost_job () =
  let lines = corrupted () in
  (* Erase a finish: the job is still running at the summary and the
     completion counts disagree — conservation must fire. *)
  let seeded = edit_first (fun l -> ev_of l = "job_finish") (fun _ -> []) lines in
  expect_rule Finding.A7 seeded

let test_detects_omega_mismatch () =
  let lines = corrupted () in
  let seeded =
    edit_first (fun l -> ev_of l = "run_summary") (fun l -> [ patch_member "util" "0.123456" l ]) lines
  in
  expect_rule Finding.A8 seeded

(* ------------------------------------------------------------------ *)
(* Stitched kill-then-resume audits *)

let split_half lines =
  let n = List.length lines in
  check_bool "fixture long enough" true (n > 6);
  List.filteri (fun i _ -> i < n / 2) lines

let test_stitched_resume_certifies () =
  let _, first = capture ~failures:5000 () in
  let truncated = split_half first in
  (* The resumed attempt replays the same scenario (deterministic) and
     declares the journal it resumes from. *)
  let _, resumed = capture ~failures:5000 ~parent:"deadbeef" () in
  let t = Trace.of_lines [ ("attempt1.trace", truncated); ("attempt2.trace", resumed) ] in
  let c = Driver.audit ~files:[ "attempt1.trace"; "attempt2.trace" ] t in
  if not (Driver.pass c) then fail_cert "stitched resume must certify" c;
  check_int "two sections" 2 c.sections;
  check_int "one complete" 1 c.complete

let test_truncated_without_resume_fails () =
  let _, first = capture ~failures:5000 () in
  let c = Driver.audit_lines (split_half first) in
  check_bool "truncated-only trace must not certify" true (has_rule Finding.A2 c)

let test_resume_must_declare_parent () =
  let _, first = capture ~failures:5000 () in
  let truncated = split_half first in
  let _, resumed = capture ~failures:5000 () in
  (* Complete replay exists but claims no parent journal: the seam is
     unexplained and the stitch check must object. *)
  let t = Trace.of_lines [ ("attempt1.trace", truncated); ("attempt2.trace", resumed) ] in
  let c = Driver.audit ~files:[ "attempt1.trace"; "attempt2.trace" ] t in
  check_bool "undeclared resume must not certify" true (has_rule Finding.A2 c)

let test_divergent_replay_fails () =
  let _, first = capture ~failures:5000 () in
  let truncated = split_half first in
  (* A "resume" of a *different* scenario under the same run id cannot
     be an event prefix; force the id clash by reusing attempt 1's
     run_meta run tag. *)
  let _, other = capture ~failures:5000 ~seed:99 ~parent:"deadbeef" () in
  let run_tag l =
    match Bgl_obs.Jsonl.parse l with
    | Ok v -> Option.bind (Bgl_obs.Jsonl.member "run" v) Bgl_obs.Jsonl.to_string_opt
    | Error _ -> None
  in
  match (run_tag (List.hd truncated), run_tag (List.hd other)) with
  | Some id1, Some id2 ->
      let retagged = List.map (patch_member "run" (Printf.sprintf "\"%s\"" id1)) other in
      check_bool "fixture ids differ" true (id1 <> id2);
      let t = Trace.of_lines [ ("attempt1.trace", truncated); ("attempt2.trace", retagged) ] in
      let c = Driver.audit ~files:[ "a"; "b" ] t in
      check_bool "divergent replay must not certify" true (has_rule Finding.A2 c)
  | _ -> Alcotest.fail "traces missing run tags"

(* ------------------------------------------------------------------ *)
(* Obs wiring: counters and spans *)

let test_obs_counters () =
  let reg = Bgl_obs.Registry.create () in
  Fun.protect ~finally:Bgl_obs.Runtime.reset (fun () ->
      Bgl_obs.Runtime.set_registry reg;
      let _, lines = capture ~failures:4000 ~n_jobs:30 () in
      Bgl_obs.Runtime.set_registry reg;
      let c = Driver.audit_lines lines in
      let value name = Bgl_obs.Registry.counter_value (Bgl_obs.Registry.counter reg name) in
      check_bool "checks counted" true (value "bgl_audit_checks_total" = float_of_int c.checks);
      check_bool "violations counted" true (value "bgl_audit_violations_total" < 0.5))

let () =
  Alcotest.run "bgl_audit"
    [
      ( "clean",
        [
          Alcotest.test_case "sequential run certifies" `Quick test_clean_sequential;
          Alcotest.test_case "two-domain interleaved trace certifies" `Quick
            test_clean_parallel_two_domains;
          Alcotest.test_case "repair+checkpoint+migration certifies" `Quick
            test_clean_repair_checkpoint_migration;
          QCheck_alcotest.to_alcotest prop_every_run_audits_clean;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "malformed line (A1)" `Quick test_detects_malformed_line;
          Alcotest.test_case "crash tail tolerated" `Quick test_crash_tail_tolerated;
          Alcotest.test_case "framing (A2)" `Quick test_detects_framing;
          Alcotest.test_case "timestamp regression (A3)" `Quick test_detects_timestamp_regression;
          Alcotest.test_case "invalid box (A4)" `Quick test_detects_invalid_box;
          Alcotest.test_case "occupancy overlap (A5)" `Quick test_detects_overlap;
          Alcotest.test_case "lifecycle (A6)" `Quick test_detects_lifecycle;
          Alcotest.test_case "lost job (A7)" `Quick test_detects_lost_job;
          Alcotest.test_case "omega mismatch (A8)" `Quick test_detects_omega_mismatch;
        ] );
      ( "stitch",
        [
          Alcotest.test_case "kill-then-resume certifies" `Quick test_stitched_resume_certifies;
          Alcotest.test_case "truncated alone fails" `Quick test_truncated_without_resume_fails;
          Alcotest.test_case "resume must declare parent" `Quick test_resume_must_declare_parent;
          Alcotest.test_case "divergent replay fails" `Quick test_divergent_replay_fails;
        ] );
      ("obs", [ Alcotest.test_case "audit counters" `Quick test_obs_counters ]);
    ]
