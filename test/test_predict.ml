(* Tests for the failure index and the predictors of Section 4. *)

open Bgl_predict

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let log_of events =
  Bgl_trace.Failure_log.make ~name:"t"
    (List.map (fun (time, node) -> { Bgl_trace.Failure_log.time; node }) events)

let index_of events = Failure_index.of_log (log_of events)

(* ------------------------------------------------------------------ *)
(* Failure_index *)

let test_index_window_queries () =
  let idx = index_of [ (100., 3); (200., 3); (150., 7) ] in
  check_bool "event inside window" true (Failure_index.has_failure_in idx ~node:3 ~t0:50. ~t1:150.);
  check_bool "window excludes t0" false (Failure_index.has_failure_in idx ~node:3 ~t0:100. ~t1:150.);
  check_bool "window includes t1" true (Failure_index.has_failure_in idx ~node:3 ~t0:150. ~t1:200.);
  check_bool "other node" true (Failure_index.has_failure_in idx ~node:7 ~t0:0. ~t1:1000.);
  check_bool "unknown node" false (Failure_index.has_failure_in idx ~node:9 ~t0:0. ~t1:1000.);
  check_bool "inverted window" false (Failure_index.has_failure_in idx ~node:3 ~t0:300. ~t1:100.)

let test_index_first_and_count () =
  let idx = index_of [ (100., 3); (200., 3); (300., 3) ] in
  Alcotest.(check (option (float 1e-9))) "first" (Some 200.)
    (Failure_index.first_failure_in idx ~node:3 ~t0:100. ~t1:1000.);
  check_int "count" 2 (Failure_index.count_in idx ~node:3 ~t0:100. ~t1:1000.);
  check_int "count all" 3 (Failure_index.count_in idx ~node:3 ~t0:0. ~t1:1000.);
  check_int "event_count" 3 (Failure_index.event_count idx)

let test_index_next_event () =
  let idx = index_of [ (100., 3); (200., 7) ] in
  Alcotest.(check (option (pair (float 1e-9) int))) "next after 0" (Some (100., 3))
    (Failure_index.next_event_after idx ~after:0.);
  Alcotest.(check (option (pair (float 1e-9) int))) "next after 100" (Some (200., 7))
    (Failure_index.next_event_after idx ~after:100.);
  Alcotest.(check (option (pair (float 1e-9) int))) "none" None
    (Failure_index.next_event_after idx ~after:200.)

let test_index_events_at () =
  let idx = index_of [ (100., 3); (100., 7); (200., 1) ] in
  Alcotest.(check (list int)) "burst members" [ 3; 7 ] (Failure_index.events_at idx ~time:100.)

(* ------------------------------------------------------------------ *)
(* Predictors *)

let test_null_predictor () =
  check_float "prob" 0. (Predictor.null.node_prob ~node:0 ~now:0. ~horizon:1e9);
  check_bool "bool" false (Predictor.null.node_will_fail ~node:0 ~now:0. ~horizon:1e9)

let test_balancing_predictor () =
  let idx = index_of [ (100., 3) ] in
  let p = Predictor.balancing ~confidence:0.3 idx in
  check_float "failure coming" 0.3 (p.node_prob ~node:3 ~now:0. ~horizon:200.);
  check_float "failure past window" 0. (p.node_prob ~node:3 ~now:0. ~horizon:50.);
  check_float "failure already happened" 0. (p.node_prob ~node:3 ~now:150. ~horizon:1000.);
  check_float "other node" 0. (p.node_prob ~node:4 ~now:0. ~horizon:200.);
  check_bool "bool view" true (p.node_will_fail ~node:3 ~now:0. ~horizon:200.)

let test_balancing_zero_confidence () =
  let idx = index_of [ (100., 3) ] in
  let p = Predictor.balancing ~confidence:0. idx in
  check_float "prob 0" 0. (p.node_prob ~node:3 ~now:0. ~horizon:200.);
  check_bool "never yes" false (p.node_will_fail ~node:3 ~now:0. ~horizon:200.)

let test_predictor_param_validation () =
  let idx = index_of [] in
  check_bool "confidence out of range" true
    (try
       ignore (Predictor.balancing ~confidence:1.5 idx);
       false
     with Invalid_argument _ -> true);
  check_bool "accuracy out of range" true
    (try
       ignore (Predictor.tie_breaking ~accuracy:(-0.1) ~seed:0 idx);
       false
     with Invalid_argument _ -> true)

let test_tie_breaking_no_false_positives () =
  let idx = index_of [ (100., 3) ] in
  let p = Predictor.tie_breaking ~accuracy:1.0 ~seed:1 idx in
  (* Nodes without upcoming failures are never flagged, whatever the
     accuracy. *)
  for node = 0 to 20 do
    if node <> 3 then check_bool "no false positive" false (p.node_will_fail ~node ~now:0. ~horizon:500.)
  done

let test_tie_breaking_consistency () =
  let idx = index_of [ (100., 3) ] in
  let p = Predictor.tie_breaking ~accuracy:0.5 ~seed:1 idx in
  let first = p.node_will_fail ~node:3 ~now:0. ~horizon:200. in
  for _ = 1 to 10 do
    check_bool "same query same answer" first (p.node_will_fail ~node:3 ~now:0. ~horizon:200.)
  done

let test_tie_breaking_false_negative_rate () =
  (* Over many distinct failure events, the yes-rate approaches the
     accuracy. *)
  let events = List.init 2000 (fun i -> (float_of_int (100 + i), i mod 64)) in
  let idx = index_of events in
  let p = Predictor.tie_breaking ~accuracy:0.7 ~seed:2 idx in
  let yes = ref 0 in
  List.iter
    (fun (t, node) -> if p.node_will_fail ~node ~now:(t -. 1.) ~horizon:2. then incr yes)
    events;
  let rate = float_of_int !yes /. 2000. in
  check_bool (Printf.sprintf "yes rate %.3f near 0.7" rate) true (abs_float (rate -. 0.7) < 0.04)

let test_oracle () =
  let idx = index_of [ (100., 3) ] in
  let p = Predictor.oracle idx in
  check_bool "sees failure" true (p.node_will_fail ~node:3 ~now:0. ~horizon:200.);
  check_bool "no hallucination" false (p.node_will_fail ~node:4 ~now:0. ~horizon:200.);
  check_float "prob 1" 1. (p.node_prob ~node:3 ~now:0. ~horizon:200.)

let test_noisy_false_positive_rate () =
  let idx = index_of [] in
  let p = Predictor.noisy ~accuracy:1.0 ~false_positive:0.2 ~seed:3 idx in
  let yes = ref 0 in
  let trials = 3000 in
  for i = 0 to trials - 1 do
    (* distinct hour buckets so draws are independent *)
    if p.node_will_fail ~node:(i mod 64) ~now:(float_of_int i *. 3600.) ~horizon:1800. then incr yes
  done;
  let rate = float_of_int !yes /. float_of_int trials in
  check_bool (Printf.sprintf "fp rate %.3f near 0.2" rate) true (abs_float (rate -. 0.2) < 0.03)

let test_noisy_true_positive_unaffected () =
  let idx = index_of [ (100., 3) ] in
  let p = Predictor.noisy ~accuracy:1.0 ~false_positive:0.5 ~seed:3 idx in
  check_bool "true failure seen" true (p.node_will_fail ~node:3 ~now:0. ~horizon:200.)

let test_partition_prob_product_and_max () =
  let idx = index_of [ (100., 0); (100., 1) ] in
  let p = Predictor.balancing ~confidence:0.5 idx in
  let args = (0., 200.) in
  let now, horizon = args in
  check_float "product over two doomed nodes" 0.75
    (Predictor.partition_prob p ~combine:`Product ~nodes:[ 0; 1; 2 ] ~now ~horizon);
  check_float "max over two doomed nodes" 0.5
    (Predictor.partition_prob p ~combine:`Max ~nodes:[ 0; 1; 2 ] ~now ~horizon);
  check_float "empty partition" 0.
    (Predictor.partition_prob p ~combine:`Product ~nodes:[] ~now ~horizon)

let test_partition_will_fail () =
  let idx = index_of [ (100., 5) ] in
  let p = Predictor.oracle idx in
  check_bool "any doomed node dooms partition" true
    (Predictor.partition_will_fail p ~nodes:[ 1; 5; 9 ] ~now:0. ~horizon:200.);
  check_bool "safe partition" false
    (Predictor.partition_will_fail p ~nodes:[ 1; 2; 9 ] ~now:0. ~horizon:200.)

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let test_evaluation_oracle_perfect () =
  let idx = index_of [ (100., 3); (500., 7); (900., 3) ] in
  let r =
    Evaluation.probe (Predictor.oracle idx) ~truth:idx ~span:1000. ~horizon:50. ~nodes:10
      ~samples:100
  in
  check_float "precision" 1. r.precision;
  check_float "recall" 1. r.recall;
  check_float "fpr" 0. r.false_positive_rate;
  check_float "accuracy" 1. r.accuracy

let test_evaluation_null_predictor () =
  let idx = index_of [ (100., 3) ] in
  let r = Evaluation.probe Predictor.null ~truth:idx ~span:1000. ~horizon:50. ~nodes:10 ~samples:100 in
  check_int "no positives at all" 0 (r.counts.true_positive + r.counts.false_positive);
  check_float "fpr 0" 0. r.false_positive_rate;
  check_bool "recall < 1 (missed the failure)" true (r.recall < 1.)

let test_evaluation_tie_breaking_recall () =
  let events = List.init 500 (fun i -> (float_of_int (i * 17 mod 10_000), i mod 32)) in
  let idx = index_of events in
  let p = Predictor.tie_breaking ~accuracy:0.6 ~seed:4 idx in
  let r = Evaluation.probe p ~truth:idx ~span:10_000. ~horizon:100. ~nodes:32 ~samples:300 in
  check_float "no false positives" 0. r.false_positive_rate;
  check_bool (Printf.sprintf "recall %.3f near 0.6" r.recall) true (abs_float (r.recall -. 0.6) < 0.08)

let test_evaluation_of_counts_edge_cases () =
  let r = Evaluation.of_counts { true_positive = 0; false_positive = 0; true_negative = 0; false_negative = 0 } in
  check_float "empty precision defaults to 1" 1. r.precision;
  check_float "empty recall defaults to 1" 1. r.recall;
  check_float "empty accuracy defaults to 1" 1. r.accuracy

let test_evaluation_invalid () =
  let idx = index_of [] in
  check_bool "bad span" true
    (try
       ignore (Evaluation.probe Predictor.null ~truth:idx ~span:0. ~horizon:1. ~nodes:1 ~samples:1);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* History predictors *)

let chronic_trace =
  (* node 0 fails every 100 s; node 1 is quiet. *)
  index_of (List.init 50 (fun i -> (float_of_int (i * 100), 0)))

let test_history_rate_flags_chronic_node () =
  let p = History.rate ~window:1000. ~threshold:0.5 chronic_trace in
  check_bool "chronic node flagged" true (p.node_will_fail ~node:0 ~now:5000. ~horizon:100.);
  check_bool "quiet node not flagged" false (p.node_will_fail ~node:1 ~now:5000. ~horizon:100.)

let test_history_rate_uses_only_past () =
  (* All failures are in the future: nothing in the window, no alarm. *)
  let idx = index_of (List.init 10 (fun i -> (float_of_int (9000 + i), 0))) in
  let p = History.rate ~window:1000. ~threshold:0.01 idx in
  check_bool "future events invisible" false (p.node_will_fail ~node:0 ~now:500. ~horizon:100.)

let test_history_rate_prob_bounded () =
  let p = History.rate ~window:1000. ~threshold:0.5 chronic_trace in
  let prob = p.node_prob ~node:0 ~now:5000. ~horizon:1e9 in
  check_float "capped at 1" 1. prob;
  check_float "quiet node prob 0" 0. (p.node_prob ~node:1 ~now:5000. ~horizon:1e9)

let test_history_ewma_decays () =
  (* A node that failed often long ago: a short half-life forgets it,
     a long one remembers. *)
  let idx = index_of (List.init 20 (fun i -> (float_of_int (i * 50), 0))) in
  let now = 100_000. in
  let short = History.ewma ~half_life:500. ~threshold:0.001 idx in
  let long = History.ewma ~half_life:200_000. ~threshold:0.001 idx in
  check_bool "short half-life forgot" false (short.node_will_fail ~node:0 ~now ~horizon:1000.);
  check_bool "long half-life remembers" true (long.node_will_fail ~node:0 ~now ~horizon:1000.)

let test_history_validation () =
  check_bool "bad window" true
    (try
       ignore (History.rate ~window:0. ~threshold:0.1 chronic_trace);
       false
     with Invalid_argument _ -> true);
  check_bool "bad threshold" true
    (try
       ignore (History.ewma ~half_life:10. ~threshold:(-1.) chronic_trace);
       false
     with Invalid_argument _ -> true)

let test_history_beats_chance_on_skewed_trace () =
  (* On a skewed synthetic trace the learned predictor must have
     recall well above the fraction of flagged probes (i.e. it finds
     failures better than random flagging would). *)
  let log =
    Bgl_failure.Generator.generate
      (Bgl_failure.Generator.default ~span:1e6 ~volume:64 ~n_events:600 ~seed:8)
  in
  let idx = Failure_index.of_log log in
  let p = History.ewma ~half_life:200_000. ~threshold:0.02 idx in
  let r = Evaluation.probe p ~truth:idx ~span:1e6 ~horizon:3600. ~nodes:64 ~samples:300 in
  let flagged_fraction =
    float_of_int (r.counts.true_positive + r.counts.false_positive)
    /. float_of_int
         (r.counts.true_positive + r.counts.false_positive + r.counts.true_negative
        + r.counts.false_negative)
  in
  check_bool
    (Printf.sprintf "recall %.3f > flagged fraction %.3f" r.recall flagged_fraction)
    true
    (r.recall > flagged_fraction +. 0.1)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_index_agrees_with_scan =
  QCheck.Test.make ~name:"index window queries agree with direct scan" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 40) (pair (float_bound_inclusive 1000.) (int_range 0 9)))
        (pair (float_bound_inclusive 1000.) (float_bound_inclusive 1000.)))
    (fun (events, (t0, t1)) ->
      let idx = index_of events in
      List.for_all
        (fun node ->
          let direct = List.exists (fun (t, n) -> n = node && t > t0 && t <= t1) events in
          Failure_index.has_failure_in idx ~node ~t0 ~t1 = direct
          && Failure_index.count_in idx ~node ~t0 ~t1
             = List.length (List.filter (fun (t, n) -> n = node && t > t0 && t <= t1) events))
        (List.init 10 Fun.id))

let prop_tie_breaking_subset_of_oracle =
  QCheck.Test.make ~name:"tie-breaking yes implies oracle yes" ~count:100
    QCheck.(
      triple small_int
        (list_of_size Gen.(int_range 0 30) (pair (float_bound_inclusive 1000.) (int_range 0 9)))
        (float_bound_inclusive 1.))
    (fun (seed, events, accuracy) ->
      let idx = index_of events in
      let tb = Predictor.tie_breaking ~accuracy ~seed idx in
      let oracle = Predictor.oracle idx in
      List.for_all
        (fun node ->
          List.for_all
            (fun now ->
              (not (tb.node_will_fail ~node ~now ~horizon:100.))
              || oracle.node_will_fail ~node ~now ~horizon:100.)
            [ 0.; 250.; 500.; 900. ])
        (List.init 10 Fun.id))

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_index_agrees_with_scan; prop_tie_breaking_subset_of_oracle ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgl_predict"
    [
      ( "failure_index",
        [
          tc "window queries" test_index_window_queries;
          tc "first and count" test_index_first_and_count;
          tc "next event" test_index_next_event;
          tc "events_at" test_index_events_at;
        ] );
      ( "predictor",
        [
          tc "null" test_null_predictor;
          tc "balancing" test_balancing_predictor;
          tc "balancing a=0" test_balancing_zero_confidence;
          tc "param validation" test_predictor_param_validation;
          tc "tie-breaking no false positives" test_tie_breaking_no_false_positives;
          tc "tie-breaking consistency" test_tie_breaking_consistency;
          tc "tie-breaking false-negative rate" test_tie_breaking_false_negative_rate;
          tc "oracle" test_oracle;
          tc "noisy false positives" test_noisy_false_positive_rate;
          tc "noisy true positives" test_noisy_true_positive_unaffected;
          tc "partition prob" test_partition_prob_product_and_max;
          tc "partition will fail" test_partition_will_fail;
        ] );
      ( "evaluation",
        [
          tc "oracle perfect" test_evaluation_oracle_perfect;
          tc "null predictor" test_evaluation_null_predictor;
          tc "tie-breaking recall" test_evaluation_tie_breaking_recall;
          tc "of_counts edge cases" test_evaluation_of_counts_edge_cases;
          tc "invalid args" test_evaluation_invalid;
        ] );
      ( "history",
        [
          tc "rate flags chronic node" test_history_rate_flags_chronic_node;
          tc "rate uses only past" test_history_rate_uses_only_past;
          tc "rate prob bounded" test_history_rate_prob_bounded;
          tc "ewma decays" test_history_ewma_decays;
          tc "validation" test_history_validation;
          tc "beats chance on skewed trace" test_history_beats_chance_on_skewed_trace;
        ] );
      ("properties", props);
    ]
