(* Unit and property tests for the bgl_stats substrate. *)

open Bgl_stats

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  check_bool "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  let _ = Rng.bits64 a in
  (* advancing a does not advance b *)
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  check_bool "streams diverge after independent draws" false (va = vb)

let test_rng_split_labels () =
  let mk label =
    let r = Rng.create ~seed:5 in
    Rng.bits64 (Rng.split r ~label)
  in
  check_bool "distinct labels give distinct streams" false (mk "workload" = mk "failures")

let test_rng_split_reproducible () =
  let mk () =
    let r = Rng.create ~seed:5 in
    Rng.bits64 (Rng.split r ~label:"x")
  in
  Alcotest.(check int64) "split reproducible" (mk ()) (mk ())

let test_rng_int_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let r = Rng.create ~seed:3 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_int_unbiased () =
  (* Regression for the modulo-bias bug. With bound = 3·2^60 a 62-bit
     draw reduced by [mod] lands in [0, 2^60) with probability 1/2
     (both halves of the partial top block fold onto it) instead of
     1/3; rejection sampling restores uniformity. *)
  let bound = 3 * (1 lsl 60) in
  let r = Rng.create ~seed:7 in
  let n = 30_000 in
  let low = ref 0 in
  for _ = 1 to n do
    if Rng.int r bound < 1 lsl 60 then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  check_bool
    (Printf.sprintf "first third hit uniformly (got %.3f)" frac)
    true
    (Float.abs (frac -. (1. /. 3.)) < 0.02)

let test_rng_int_huge_bound () =
  let r = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Rng.int r max_int in
    check_bool "in range" true (v >= 0)
  done

let test_rng_unit_float_range () =
  let r = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Rng.unit_float r in
    check_bool "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_rng_unit_float_mean () =
  let r = Rng.create ~seed:13 in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Rng.unit_float r
  done;
  let mean = !total /. float_of_int n in
  check_bool "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_rng_bool_balance () =
  let r = Rng.create ~seed:17 in
  let n = 20_000 in
  let trues = ref 0 in
  for _ = 1 to n do
    if Rng.bool r then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  check_bool "roughly fair" true (abs_float (frac -. 0.5) < 0.02)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:23 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_choose_empty () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "empty choose" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose r [||]))

let test_hash_float_stable () =
  check_float "stable" (Rng.hash_float ~seed:9 3 14) (Rng.hash_float ~seed:9 3 14);
  check_bool "seed matters" false (Rng.hash_float ~seed:9 3 14 = Rng.hash_float ~seed:10 3 14);
  check_bool "args matter" false (Rng.hash_float ~seed:9 3 14 = Rng.hash_float ~seed:9 4 14)

let test_hash_float_uniformish () =
  let n = 5000 in
  let total = ref 0. in
  for i = 0 to n - 1 do
    let v = Rng.hash_float ~seed:1 i (i * 7) in
    assert (v >= 0. && v < 1.);
    total := !total +. v
  done;
  check_bool "mean near 0.5" true (abs_float ((!total /. float_of_int n) -. 0.5) < 0.02)

(* ------------------------------------------------------------------ *)
(* Dist *)

let sample_mean n f =
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. f ()
  done;
  !total /. float_of_int n

let test_exponential_mean () =
  let r = Rng.create ~seed:101 in
  let mean = sample_mean 50_000 (fun () -> Dist.exponential r ~rate:0.5) in
  check_bool "mean near 2" true (abs_float (mean -. 2.) < 0.05)

let test_exponential_positive () =
  let r = Rng.create ~seed:102 in
  for _ = 1 to 1000 do
    check_bool "positive" true (Dist.exponential r ~rate:3. >= 0.)
  done

let test_exponential_invalid () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "rate 0" (Invalid_argument "Dist.exponential: rate must be positive")
    (fun () -> ignore (Dist.exponential r ~rate:0.))

let test_normal_moments () =
  let r = Rng.create ~seed:103 in
  let acc = Summary.Online.create () in
  for _ = 1 to 50_000 do
    Summary.Online.add acc (Dist.normal r ~mean:3. ~std:2.)
  done;
  check_bool "mean near 3" true (abs_float (Summary.Online.mean acc -. 3.) < 0.05);
  check_bool "std near 2" true (abs_float (Summary.Online.std acc -. 2.) < 0.05)

let test_lognormal_median () =
  let r = Rng.create ~seed:104 in
  let samples = Array.init 20_001 (fun _ -> Dist.lognormal r ~mu:1. ~sigma:0.8) in
  Array.sort compare samples;
  let median = samples.(10_000) in
  (* Median of lognormal is exp mu. *)
  check_bool "median near e" true (abs_float (median -. exp 1.) < 0.15)

let test_weibull_shape1_is_exponential () =
  let r = Rng.create ~seed:105 in
  let mean = sample_mean 50_000 (fun () -> Dist.weibull r ~shape:1. ~scale:4.) in
  check_bool "mean near scale" true (abs_float (mean -. 4.) < 0.1)

let test_pareto_minimum () =
  let r = Rng.create ~seed:106 in
  for _ = 1 to 1000 do
    check_bool ">= scale" true (Dist.pareto r ~shape:2. ~scale:1.5 >= 1.5)
  done

let test_geometric_mean () =
  let r = Rng.create ~seed:107 in
  let mean = sample_mean 50_000 (fun () -> float_of_int (Dist.geometric r ~p:0.25)) in
  check_bool "mean near 4" true (abs_float (mean -. 4.) < 0.1)

let test_geometric_p1 () =
  let r = Rng.create ~seed:108 in
  for _ = 1 to 100 do
    check_int "always 1" 1 (Dist.geometric r ~p:1.)
  done

let test_poisson_mean_small () =
  let r = Rng.create ~seed:109 in
  let mean = sample_mean 50_000 (fun () -> float_of_int (Dist.poisson r ~mean:3.5)) in
  check_bool "mean near 3.5" true (abs_float (mean -. 3.5) < 0.1)

let test_poisson_mean_large () =
  let r = Rng.create ~seed:110 in
  let mean = sample_mean 20_000 (fun () -> float_of_int (Dist.poisson r ~mean:100.)) in
  check_bool "mean near 100" true (abs_float (mean -. 100.) < 1.)

let test_poisson_zero () =
  let r = Rng.create ~seed:111 in
  check_int "mean 0 gives 0" 0 (Dist.poisson r ~mean:0.)

let test_zipf_weights () =
  let w = Dist.zipf_weights ~n:5 ~skew:1. in
  check_float "normalised" 1. (Array.fold_left ( +. ) 0. w);
  check_bool "decreasing" true (w.(0) > w.(1) && w.(1) > w.(2));
  check_float "ratio" (w.(0) /. 2.) w.(1)

let test_categorical_distribution () =
  let r = Rng.create ~seed:112 in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let i = Dist.categorical r [| 1.; 2.; 1. |] in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int n in
  check_bool "middle twice as likely" true (abs_float (frac 1 -. 0.5) < 0.02);
  check_bool "edges balanced" true (abs_float (frac 0 -. frac 2) < 0.02)

let test_categorical_zero_weight_skipped () =
  let r = Rng.create ~seed:113 in
  for _ = 1 to 1000 do
    check_int "only positive weight drawn" 1 (Dist.categorical r [| 0.; 5.; 0. |])
  done

let test_categorical_invalid () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Dist.categorical: weights must include a positive entry") (fun () ->
      ignore (Dist.categorical r [| 0.; 0. |]))

let test_discrete () =
  let r = Rng.create ~seed:114 in
  for _ = 1 to 100 do
    let v = Dist.discrete r [| ("a", 0.); ("b", 1.) |] in
    Alcotest.(check string) "picks b" "b" v
  done

(* ------------------------------------------------------------------ *)
(* Summary *)

let test_summary_known () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  check_int "count" 5 s.count;
  check_float "mean" 3. s.mean;
  check_float "min" 1. s.min;
  check_float "max" 5. s.max;
  check_float "median" 3. s.median;
  check_float "std" (sqrt 2.) s.std

let test_summary_empty () =
  let s = Summary.of_list [] in
  check_int "count" 0 s.count;
  check_float "mean" 0. s.mean

let test_summary_singleton () =
  let s = Summary.of_list [ 7. ] in
  check_float "mean" 7. s.mean;
  check_float "median" 7. s.median;
  check_float "std" 0. s.std

let test_percentile_interpolation () =
  let sorted = [| 0.; 10. |] in
  check_float "p25" 2.5 (Summary.percentile sorted 0.25);
  check_float "p0" 0. (Summary.percentile sorted 0.);
  check_float "p100" 10. (Summary.percentile sorted 1.)

let test_percentile_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.percentile: empty sample") (fun () ->
      ignore (Summary.percentile [||] 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Summary.percentile: q out of [0, 1]") (fun () ->
      ignore (Summary.percentile [| 1. |] 1.5))

let test_mean_list () =
  check_float "empty" 0. (Summary.mean []);
  check_float "values" 2. (Summary.mean [ 1.; 2.; 3. ])

let test_online_matches_batch () =
  let values = List.init 100 (fun i -> float_of_int (i * i) /. 7.) in
  let acc = Summary.Online.create () in
  List.iter (Summary.Online.add acc) values;
  let batch = Summary.of_list values in
  check_int "count" batch.count (Summary.Online.count acc);
  check_bool "mean matches" true (abs_float (batch.mean -. Summary.Online.mean acc) < 1e-9);
  check_bool "std matches" true (abs_float (batch.std -. Summary.Online.std acc) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_basic () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Histogram.add h) [ 0.; 1.; 2.5; 9.99; -1.; 10.; 11. ];
  check_int "total" 7 (Histogram.total h);
  check_int "underflow" 1 (Histogram.underflow h);
  check_int "overflow" 2 (Histogram.overflow h);
  Alcotest.(check (array int)) "counts" [| 2; 1; 0; 0; 1 |] (Histogram.counts h)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  let lo, hi = Histogram.bin_bounds h 1 in
  check_float "lo" 2. lo;
  check_float "hi" 4. hi

let test_histogram_invalid () =
  Alcotest.check_raises "bins" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (Histogram.create ~lo:0. ~hi:1. ~bins:0));
  Alcotest.check_raises "range" (Invalid_argument "Histogram.create: need lo < hi") (fun () ->
      ignore (Histogram.create ~lo:1. ~hi:1. ~bins:3))

(* ------------------------------------------------------------------ *)
(* Ks *)

let samples n f =
  let r = Rng.create ~seed:314 in
  Array.init n (fun _ -> f r)

let test_erf_values () =
  check_bool "erf 0" true (abs_float (Ks.erf 0.) < 1e-7);
  check_bool "erf 1" true (abs_float (Ks.erf 1. -. 0.8427007929) < 1e-5);
  check_bool "odd" true (abs_float (Ks.erf (-1.) +. Ks.erf 1.) < 1e-9);
  check_bool "limit" true (Ks.erf 5. > 0.999999)

let test_normal_cdf () =
  check_bool "median" true (abs_float (Ks.normal_cdf ~mean:3. ~std:2. 3. -. 0.5) < 1e-9);
  check_bool "one sigma" true
    (abs_float (Ks.normal_cdf ~mean:0. ~std:1. 1. -. 0.8413447) < 1e-4)

let test_ks_accepts_matching_distribution () =
  check_bool "normal sample vs normal cdf" true
    (Ks.test
       ~samples:(samples 2000 (fun r -> Dist.normal r ~mean:5. ~std:2.))
       ~cdf:(Ks.normal_cdf ~mean:5. ~std:2.) ~alpha:0.01);
  check_bool "exponential sample vs exponential cdf" true
    (Ks.test
       ~samples:(samples 2000 (fun r -> Dist.exponential r ~rate:0.3))
       ~cdf:(Ks.exponential_cdf ~rate:0.3) ~alpha:0.01);
  check_bool "lognormal sample vs lognormal cdf" true
    (Ks.test
       ~samples:(samples 2000 (fun r -> Dist.lognormal r ~mu:1. ~sigma:0.7))
       ~cdf:(Ks.lognormal_cdf ~mu:1. ~sigma:0.7) ~alpha:0.01);
  check_bool "uniform sample vs uniform cdf" true
    (Ks.test
       ~samples:(samples 2000 (fun r -> Rng.float r 10.))
       ~cdf:(Ks.uniform_cdf ~lo:0. ~hi:10.) ~alpha:0.01)

let test_ks_rejects_wrong_distribution () =
  check_bool "exponential sample vs normal cdf rejected" false
    (Ks.test
       ~samples:(samples 2000 (fun r -> Dist.exponential r ~rate:1.))
       ~cdf:(Ks.normal_cdf ~mean:1. ~std:1.) ~alpha:0.01);
  check_bool "shifted mean rejected" false
    (Ks.test
       ~samples:(samples 2000 (fun r -> Dist.normal r ~mean:5. ~std:1.))
       ~cdf:(Ks.normal_cdf ~mean:5.5 ~std:1.) ~alpha:0.01)

let test_ks_statistic_known () =
  (* A single sample at the median of U(0,1): D = 0.5. *)
  check_float "single point" 0.5 (Ks.statistic ~samples:[| 0.5 |] ~cdf:(Ks.uniform_cdf ~lo:0. ~hi:1.));
  check_bool "p-value monotone in d" true (Ks.p_value ~d:0.1 ~n:100 > Ks.p_value ~d:0.2 ~n:100);
  check_float "d=0 gives p=1" 1. (Ks.p_value ~d:0. ~n:10)

let test_ks_invalid () =
  Alcotest.check_raises "empty sample" (Invalid_argument "Ks.statistic: empty sample") (fun () ->
      ignore (Ks.statistic ~samples:[||] ~cdf:(fun _ -> 0.)))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_summary_min_le_max =
  QCheck.Test.make ~name:"Summary orders min<=median<=max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
    (fun values ->
      let s = Summary.of_list values in
      s.min <= s.median && s.median <= s.max && s.min <= s.mean && s.mean <= s.max)

let prop_histogram_conserves =
  QCheck.Test.make ~name:"Histogram conserves sample count" ~count:200
    QCheck.(list (float_range (-50.) 50.))
    (fun values ->
      let h = Histogram.create ~lo:(-10.) ~hi:10. ~bins:7 in
      List.iter (Histogram.add h) values;
      Histogram.total h = List.length values)

let prop_categorical_picks_positive =
  QCheck.Test.make ~name:"categorical never picks zero weight" ~count:300
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 10) (float_bound_inclusive 5.)))
    (fun (seed, weights) ->
      let weights = Array.of_list weights in
      QCheck.assume (Array.exists (fun w -> w > 0.) weights);
      let r = Rng.create ~seed in
      let i = Dist.categorical r weights in
      weights.(i) > 0.)

let props = List.map QCheck_alcotest.to_alcotest
    [ prop_int_in_bounds; prop_summary_min_le_max; prop_histogram_conserves;
      prop_categorical_picks_positive ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgl_stats"
    [
      ( "rng",
        [
          tc "determinism" test_rng_determinism;
          tc "seed sensitivity" test_rng_seed_sensitivity;
          tc "copy independence" test_rng_copy_independent;
          tc "split labels" test_rng_split_labels;
          tc "split reproducible" test_rng_split_reproducible;
          tc "int bounds" test_rng_int_bounds;
          tc "int invalid" test_rng_int_invalid;
          tc "int unbiased" test_rng_int_unbiased;
          tc "int huge bound" test_rng_int_huge_bound;
          tc "unit_float range" test_rng_unit_float_range;
          tc "unit_float mean" test_rng_unit_float_mean;
          tc "bool balance" test_rng_bool_balance;
          tc "shuffle permutation" test_rng_shuffle_permutation;
          tc "choose empty" test_rng_choose_empty;
          tc "hash_float stable" test_hash_float_stable;
          tc "hash_float uniform-ish" test_hash_float_uniformish;
        ] );
      ( "dist",
        [
          tc "exponential mean" test_exponential_mean;
          tc "exponential positive" test_exponential_positive;
          tc "exponential invalid" test_exponential_invalid;
          tc "normal moments" test_normal_moments;
          tc "lognormal median" test_lognormal_median;
          tc "weibull shape 1" test_weibull_shape1_is_exponential;
          tc "pareto minimum" test_pareto_minimum;
          tc "geometric mean" test_geometric_mean;
          tc "geometric p=1" test_geometric_p1;
          tc "poisson mean (small)" test_poisson_mean_small;
          tc "poisson mean (large)" test_poisson_mean_large;
          tc "poisson zero" test_poisson_zero;
          tc "zipf weights" test_zipf_weights;
          tc "categorical distribution" test_categorical_distribution;
          tc "categorical skips zero" test_categorical_zero_weight_skipped;
          tc "categorical invalid" test_categorical_invalid;
          tc "discrete" test_discrete;
        ] );
      ( "summary",
        [
          tc "known values" test_summary_known;
          tc "empty" test_summary_empty;
          tc "singleton" test_summary_singleton;
          tc "percentile interpolation" test_percentile_interpolation;
          tc "percentile invalid" test_percentile_invalid;
          tc "mean list" test_mean_list;
          tc "online matches batch" test_online_matches_batch;
        ] );
      ( "histogram",
        [
          tc "basic" test_histogram_basic;
          tc "bin bounds" test_histogram_bounds;
          tc "invalid" test_histogram_invalid;
        ] );
      ( "ks",
        [
          tc "erf values" test_erf_values;
          tc "normal cdf" test_normal_cdf;
          tc "accepts matching" test_ks_accepts_matching_distribution;
          tc "rejects wrong" test_ks_rejects_wrong_distribution;
          tc "statistic known" test_ks_statistic_known;
          tc "invalid" test_ks_invalid;
        ] );
      ("properties", props);
    ]
