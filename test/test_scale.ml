(* Cross-size checks for the size-generic torus stack: the same
   deterministic simulation at the paper's 4x4x8 supernode view, an
   intermediate 8x8x16, and the full 64x32x32 BG/L node torus.

   The golden fixtures pin the rendered metrics report of one
   first-fit run per size, so any future change to the grid
   representation (bit-packing, summary maintenance, finder gating)
   that silently alters scheduling results fails here byte-for-byte.
   Regenerate after an intended behaviour change with:

     BGL_UPDATE_GOLDEN=$PWD/test/fixtures \
       dune exec test/test_scale.exe *)

open Bgl_core

let check_bool = Alcotest.(check bool)

let sizes =
  [
    ("4x4x8", Bgl_torus.Dims.bgl, 120);
    ("8x8x16", Bgl_torus.Dims.make 8 8 16, 60);
    ("64x32x32", Bgl_torus.Dims.bgl_full, 12);
  ]

let scenario dims n_jobs =
  Scenario.make ~n_jobs ~seed:7 ~dims ~profile:Bgl_workload.Profile.sdsc Scenario.First_fit

let render dims n_jobs =
  let outcome = Scenario.run (scenario dims n_jobs) in
  Format.asprintf "%s@.%a@." outcome.name Bgl_sim.Metrics.pp_report outcome.report

(* cwd is the build directory under [dune runtest] but the project
   root under [dune exec test/test_scale.exe]; accept both. *)
let fixture_path name =
  let candidates = [ "fixtures/" ^ name; "test/fixtures/" ^ name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_golden ~name ~render =
  match Sys.getenv_opt "BGL_UPDATE_GOLDEN" with
  | Some dir ->
      let text = render () in
      let path = Filename.concat dir name in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text);
      Printf.printf "golden fixture rewritten: %s\n%!" path;
      text
  | None -> In_channel.with_open_bin (fixture_path name) In_channel.input_all

let test_golden (label, dims, n_jobs) () =
  let name = Printf.sprintf "scale_%s_golden.txt" label in
  Alcotest.(check string)
    (label ^ " report matches fixture")
    (read_golden ~name ~render:(fun () -> render dims n_jobs))
    (render dims n_jobs)

(* Differential mode re-answers sampled finder queries with the naive
   (or fresh ungated table) reference and aborts on any disagreement,
   so completing at all certifies zero divergences; matching the
   unchecked fixture additionally certifies that checking is
   observation-only. *)
let test_full_scale_differential () =
  let label, dims, n_jobs = List.nth sizes 2 in
  let name = Printf.sprintf "scale_%s_golden.txt" label in
  Bgl_partition.Finder.set_differential ~sample:10 true;
  Fun.protect
    ~finally:(fun () -> Bgl_partition.Finder.set_differential false)
    (fun () ->
      Alcotest.(check string)
        "checked run matches unchecked fixture"
        (read_golden ~name ~render:(fun () -> render dims n_jobs))
        (render dims n_jobs))

let test_small_differential () =
  Bgl_partition.Finder.set_differential true;
  Fun.protect
    ~finally:(fun () -> Bgl_partition.Finder.set_differential false)
    (fun () ->
      List.iter
        (fun (label, dims, n_jobs) ->
          let outcome = Scenario.run (scenario dims n_jobs) in
          check_bool (label ^ " fully checked run completes") true outcome.complete)
        [ List.nth sizes 0; List.nth sizes 1 ])

(* The parallel sweep must stay byte-identical to the sequential one
   at every machine size, not just the 4x4x8 the goldens in
   test_core pin. *)
let sweep_identical dims () =
  let scale =
    {
      Figures.n_jobs = 60;
      seeds = [ 7 ];
      a_values = [ 0.9 ];
      fail_fracs = [ 0.5 ];
      dims;
    }
  in
  let produce domains =
    Figures.clear_cache ();
    let figs = Figures.produce ~domains (fun s -> [ Figures.fig3 s ]) scale in
    Figures.clear_cache ();
    String.concat "" (List.map (Format.asprintf "%a@." Series.pp_figure) figs)
  in
  Alcotest.(check string) "1 vs 2 domains identical" (produce 1) (produce 2)

let test_dims_flag () =
  let parsed = Cli_flags.parse_dims ~default:Bgl_torus.Dims.bgl (Some "8x8x16") in
  check_bool "flag value parsed" true (Bgl_torus.Dims.equal parsed (Bgl_torus.Dims.make 8 8 16));
  let defaulted = Cli_flags.parse_dims ~default:Bgl_torus.Dims.bgl None in
  check_bool "absent flag keeps default" true (Bgl_torus.Dims.equal defaulted Bgl_torus.Dims.bgl);
  try
    ignore (Cli_flags.parse_dims ~default:Bgl_torus.Dims.bgl (Some "sixty-four"));
    Alcotest.fail "malformed --dims accepted"
  with Bgl_resilience.Error.Cli e ->
    Alcotest.(check int) "usage error exits 2" 2 (Bgl_resilience.Error.exit_code e)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "bgl_scale"
    [
      ( "golden",
        [
          tc "4x4x8" (test_golden (List.nth sizes 0));
          tc "8x8x16" (test_golden (List.nth sizes 1));
          slow "64x32x32" (test_golden (List.nth sizes 2));
        ] );
      ( "differential",
        [
          tc "4x4x8 and 8x8x16 fully checked" test_small_differential;
          slow "64x32x32 sampled" test_full_scale_differential;
        ] );
      ( "domains",
        [
          tc "4x4x8 sweep 1 = 2 domains" (sweep_identical Bgl_torus.Dims.bgl);
          tc "8x8x16 sweep 1 = 2 domains" (sweep_identical (Bgl_torus.Dims.make 8 8 16));
        ] );
      ("cli", [ tc "--dims parse and usage error" test_dims_flag ]);
    ]
