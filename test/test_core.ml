(* Tests for the experiment layer: scenarios, series rendering, and
   reduced-scale figure smoke runs with shape assertions. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

open Bgl_core

(* ------------------------------------------------------------------ *)
(* Scenario *)

let test_injected_failures_scaling () =
  let sc =
    Scenario.make ~n_jobs:1500 ~failures_paper:4000 ~failure_amplification:2.0
      ~profile:Bgl_workload.Profile.sdsc Scenario.Fault_oblivious
  in
  (* 4000 * 1500 / 54041 * 2 = 222.1... *)
  check_int "scaled count" 222 (Scenario.injected_failures sc);
  let zero = Scenario.make ~failures_paper:0 ~profile:Bgl_workload.Profile.sdsc Scenario.Fault_oblivious in
  check_int "zero stays zero" 0 (Scenario.injected_failures zero)

let test_scenario_default_failures () =
  let sc = Scenario.make ~profile:Bgl_workload.Profile.llnl Scenario.Fault_oblivious in
  check_int "profile default" Bgl_workload.Profile.llnl.paper_failures sc.failures_paper

let test_scenario_labels_distinguish () =
  let base = Scenario.make ~profile:Bgl_workload.Profile.sdsc Scenario.Fault_oblivious in
  let variants =
    [
      Scenario.make ~profile:Bgl_workload.Profile.sdsc (Scenario.Balancing { confidence = 0.5 });
      Scenario.make ~load:1.2 ~profile:Bgl_workload.Profile.sdsc Scenario.Fault_oblivious;
      Scenario.make ~seed:99 ~profile:Bgl_workload.Profile.sdsc Scenario.Fault_oblivious;
      Scenario.make ~combine:`Max ~profile:Bgl_workload.Profile.sdsc Scenario.Fault_oblivious;
      Scenario.make
        ~config:{ Bgl_sim.Config.default with backfill = false }
        ~profile:Bgl_workload.Profile.sdsc Scenario.Fault_oblivious;
      { base with variant_tag = "uniform" };
    ]
  in
  List.iter
    (fun v -> check_bool "label differs" false (Scenario.label v = Scenario.label base))
    variants

let test_scenario_run_deterministic () =
  let sc =
    Scenario.make ~n_jobs:150 ~failures_paper:2000 ~profile:Bgl_workload.Profile.sdsc
      (Scenario.Balancing { confidence = 0.5 })
  in
  let a = (Scenario.run sc).report and b = (Scenario.run sc).report in
  check_bool "identical reports" true (a = b)

let test_scenario_runs_all_algos () =
  List.iter
    (fun algo ->
      let sc = Scenario.make ~n_jobs:120 ~profile:Bgl_workload.Profile.nasa algo in
      let o = Scenario.run sc in
      check_bool (Scenario.algo_label algo ^ " completes") true o.complete)
    [
      Scenario.First_fit;
      Scenario.Random_fit;
      Scenario.Fault_oblivious;
      Scenario.Balancing { confidence = 0.3 };
      Scenario.Tie_breaking { accuracy = 0.3 };
      Scenario.Safest;
      Scenario.Balancing_history { half_life = 86_400.; threshold = 0.5 };
      Scenario.Tie_breaking_history { half_life = 86_400.; threshold = 0.5 };
    ]

let test_zero_failures_means_no_kills () =
  let sc = Scenario.make ~n_jobs:200 ~failures_paper:0 ~profile:Bgl_workload.Profile.sdsc Scenario.Fault_oblivious in
  let o = Scenario.run sc in
  check_int "no failures" 0 o.report.failures_injected;
  check_int "no kills" 0 o.report.job_kills

(* ------------------------------------------------------------------ *)
(* Series *)

let fig =
  Series.figure ~id:"t" ~title:"test" ~xlabel:"x" ~ylabel:"y" ~notes:[ "n1" ]
    [
      Series.series ~label:"a" [ (1., 10.); (2., 20.) ];
      Series.series ~label:"b" [ (2., 200.); (3., 300.) ];
    ]

let test_series_xs_union () = Alcotest.(check (list (float 1e-9))) "xs" [ 1.; 2.; 3. ] (Series.xs fig)

let test_series_value_at () =
  Alcotest.(check (option (float 1e-9))) "hit" (Some 20.) (Series.value_at (List.hd fig.series) 2.);
  Alcotest.(check (option (float 1e-9))) "miss" None (Series.value_at (List.hd fig.series) 3.)

let test_series_csv () =
  let csv = Series.to_csv fig in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "x,a,b" (List.hd lines);
  check_int "rows" 4 (List.length lines);
  check_bool "missing cell is empty" true (List.mem "1,10," lines);
  check_bool "both present" true (List.mem "2,20,200" lines)

let test_series_csv_escaping () =
  let f =
    Series.figure ~id:"e" ~title:"t" ~xlabel:"x,axis" ~ylabel:"y"
      [ Series.series ~label:"with \"quote\"" [ (1., 1.) ] ]
  in
  let header = List.hd (String.split_on_char '\n' (Series.to_csv f)) in
  Alcotest.(check string) "escaped" "\"x,axis\",\"with \"\"quote\"\"\"" header

let test_series_save_csv () =
  let dir = Filename.temp_file "bgl" "dir" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let path = Series.save_csv fig ~dir in
      check_bool "file exists" true (Sys.file_exists path);
      check_bool "named by id" true (Filename.basename path = "t.csv"))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_pp_chart_renders () =
  let text = Format.asprintf "%a" (Series.pp_chart ?height:None) fig in
  check_bool "range line" true (contains ~needle:"t: y in [10, 300]" text);
  check_bool "one row per series" true (contains ~needle:"a " text && contains ~needle:"b " text);
  (* the maximum point renders as the top glyph *)
  check_bool "top glyph present" true (contains ~needle:"@" text);
  Alcotest.(check string) "empty figure renders nothing" ""
    (Format.asprintf "%a" (Series.pp_chart ?height:None)
       (Series.figure ~id:"e" ~title:"" ~xlabel:"" ~ylabel:"" []))

let test_pp_figure_renders () =
  let text = Format.asprintf "%a" Series.pp_figure fig in
  check_bool "has id and title" true (contains ~needle:"=== t: test ===" text);
  check_bool "has the note" true (contains ~needle:"note: n1" text);
  check_bool "has series labels" true (contains ~needle:"a" text && contains ~needle:"b" text);
  check_bool "missing cells dashed" true (contains ~needle:"-" text)

(* ------------------------------------------------------------------ *)
(* Figures: tiny-scale smoke runs with shape assertions *)

let tiny = { Figures.n_jobs = 200; seeds = [ 11 ]; a_values = [ 0.; 0.5; 1. ]; fail_fracs = [ 0.; 0.5; 1. ]; dims = Bgl_torus.Dims.bgl }

let series_values (s : Series.series) = List.map snd s.points

let test_fig3_shape () =
  Figures.clear_cache ();
  let fig = Figures.fig3 tiny in
  check_int "three series" 3 (List.length fig.series);
  List.iter (fun (s : Series.series) -> check_int "three points" 3 (List.length s.points)) fig.series;
  (* all series share the zero-failure point *)
  let at_zero = List.map (fun s -> Series.value_at s 0.) fig.series in
  check_bool "same baseline" true
    (List.for_all (fun v -> v = List.hd at_zero) at_zero);
  (* slowdown under failures should not be below the zero-failure
     baseline for the no-prediction series *)
  let no_pred = List.hd fig.series in
  let base = Option.get (Series.value_at no_pred 0.) in
  let worst = List.fold_left max 0. (series_values no_pred) in
  check_bool "failures hurt" true (worst >= base)

let test_fig5_capacity_identity () =
  Figures.clear_cache ();
  match Figures.fig5 tiny with
  | [ a; b ] ->
      List.iter
        (fun (f : Series.figure) ->
          let xs = Series.xs f in
          List.iter
            (fun x ->
              let total =
                List.fold_left
                  (fun acc s -> acc +. Option.value ~default:0. (Series.value_at s x))
                  0. f.series
              in
              check_float "util+unused+lost=1" 1. total)
            xs)
        [ a; b ]
  | _ -> Alcotest.fail "expected two sub-figures"

let test_fig6_structure () =
  Figures.clear_cache ();
  let figs = Figures.fig6 tiny in
  check_int "three sub-figures" 3 (List.length figs);
  List.iter
    (fun (f : Series.figure) ->
      check_int "two loads" 2 (List.length f.series);
      check_bool "positive slowdowns" true
        (List.for_all (fun s -> List.for_all (fun v -> v >= 1.) (series_values s)) f.series))
    figs

let test_by_id_lookup () =
  check_bool "fig3" true (Figures.by_id "3" <> None);
  check_bool "fig10" true (Figures.by_id "fig10" <> None);
  check_bool "intro" true (Figures.by_id "intro" <> None);
  check_bool "unknown" true (Figures.by_id "fig99" = None);
  check_bool "ablation" true (Ablations.by_id "combine" <> None);
  check_bool "history ablation" true (Ablations.by_id "history" <> None);
  check_bool "policy zoo" true (Ablations.by_id "zoo" <> None);
  check_bool "ablation unknown" true (Ablations.by_id "nope" = None)

let test_producers_cover_by_id () =
  List.iter
    (fun (name, _) -> check_bool (name ^ " resolvable") true (Figures.by_id name <> None))
    Figures.producers

let test_cache_reuse () =
  Figures.clear_cache ();
  let sc = Scenario.make ~n_jobs:100 ~profile:Bgl_workload.Profile.nasa Scenario.Fault_oblivious in
  let a = Figures.cached_report sc in
  let b = Figures.cached_report sc in
  check_bool "same physical report (cached)" true (a == b)

(* ------------------------------------------------------------------ *)
(* Timeline *)

let run_recorded () =
  let log =
    Bgl_trace.Job_log.make ~name:"tl"
      [
        { Bgl_trace.Job_log.id = 0; arrival = 0.; size = 128; run_time = 100.; estimate = 100. };
        { Bgl_trace.Job_log.id = 1; arrival = 0.; size = 64; run_time = 50.; estimate = 50. };
      ]
  in
  let failures =
    Bgl_trace.Failure_log.make ~name:"tl" [ { Bgl_trace.Failure_log.time = 40.; node = 0 } ]
  in
  let recorder = Bgl_sim.Recorder.create () in
  let _ =
    Bgl_sim.Engine.run ~recorder ~policy:Bgl_sched.Placement.first_fit ~log ~failures ()
  in
  recorder

let test_timeline_segments () =
  let recorder = run_recorded () in
  let segs = Timeline.segments recorder in
  (* job 0: killed tenancy [0,40) + restart [40,140); job 1 runs after. *)
  let job0 = List.filter (fun (s : Timeline.segment) -> s.job = 0) segs in
  check_int "job 0 has two tenancies" 2 (List.length job0);
  (match job0 with
  | [ first; second ] ->
      check_bool "first killed" true (match first.ending with Timeline.Killed 0 -> true | _ -> false);
      check_float "kill time" 40. first.ended;
      check_bool "second finished" true (second.ending = Timeline.Finished);
      check_float "finish" 140. second.ended
  | _ -> Alcotest.fail "unexpected segments");
  check_bool "segments sorted by start" true
    (let starts = List.map (fun (s : Timeline.segment) -> s.started) segs in
     List.sort compare starts = starts)

let test_timeline_render_and_util () =
  let recorder = run_recorded () in
  let segs = Timeline.segments recorder in
  let strip = Timeline.render segs ~volume:128 ~width:40 in
  check_int "strip width" 40 (String.length strip);
  check_bool "start fully busy" true (strip.[0] = '#');
  let util = Timeline.utilisation_of_segments segs ~volume:128 in
  check_bool "util in (0,1]" true (util > 0. && util <= 1.);
  Alcotest.(check string) "empty trace renders empty" "" (Timeline.render [] ~volume:128 ~width:10)

let test_timeline_busy_profile_conserves () =
  let recorder = run_recorded () in
  let segs = Timeline.segments recorder in
  (* job 1 only runs after job 0's restart completes, so the observed
     span reaches 190 s *)
  let span = List.fold_left (fun acc (s : Timeline.segment) -> Float.max acc s.ended) 0. segs in
  let profile = Timeline.busy_profile segs ~buckets:19 ~span in
  let total_node_seconds =
    List.fold_left
      (fun acc (s : Timeline.segment) ->
        acc +. (float_of_int (Bgl_torus.Box.volume s.box) *. (s.ended -. s.started)))
      0. segs
  in
  check_bool "profile conserves node-seconds" true
    (abs_float (Array.fold_left ( +. ) 0. profile -. total_node_seconds) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Baseline *)

let test_baseline_structure () =
  Figures.clear_cache ();
  let figs = Baseline.all tiny in
  check_int "three figures" 3 (List.length figs);
  List.iter
    (fun (f : Series.figure) -> check_bool (f.id ^ " non-empty") true (f.series <> []))
    figs;
  check_bool "by_id" true (Baseline.by_id "baseline-slowdown" <> None);
  check_bool "unknown" true (Baseline.by_id "nope" = None)

let test_baseline_backfill_wins () =
  Figures.clear_cache ();
  let fig = Baseline.slowdown { tiny with n_jobs = 300 } in
  match fig.series with
  | [ fcfs; backfill; _migration ] ->
      (* On the SDSC point (x=1), plain FCFS must be strictly worse
         than EASY backfilling - Krevat's central result. *)
      let at s x = Option.get (Series.value_at s x) in
      check_bool "backfill beats fcfs on SDSC" true (at backfill 1. < at fcfs 1.)
  | _ -> Alcotest.fail "expected three variants"

(* ------------------------------------------------------------------ *)
(* Golden-file regression: the fig-3 sweep summary must render
   byte-identically to the committed fixture — sequentially AND with
   the sweep cells pre-simulated on 2 domains. This locks down both
   the incremental-finder engine results and the deterministic
   parallel decomposition in one place.

   After an INTENTIONAL result change, regenerate the fixture with:

     BGL_UPDATE_GOLDEN=$PWD/test/fixtures/fig3_golden.txt \
       dune exec test/test_core.exe -- test golden *)

let golden_scale =
  { Figures.n_jobs = 120; seeds = [ 11; 12 ]; a_values = [ 0.; 0.5; 1. ]; fail_fracs = [ 0.; 0.5; 1. ]; dims = Bgl_torus.Dims.bgl }

(* cwd is the build directory under [dune runtest] but the project
   root under [dune exec test/test_core.exe]; accept both. *)
let golden_path =
  let candidates = [ "fixtures/fig3_golden.txt"; "test/fixtures/fig3_golden.txt" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let render_fig3 ~domains =
  Figures.clear_cache ();
  let figs = Figures.produce ~domains (fun s -> [ Figures.fig3 s ]) golden_scale in
  Figures.clear_cache ();
  String.concat "" (List.map (Format.asprintf "%a@." Series.pp_figure) figs)

let read_golden () =
  match Sys.getenv_opt "BGL_UPDATE_GOLDEN" with
  | Some path ->
      let text = render_fig3 ~domains:1 in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text);
      Printf.printf "golden fixture rewritten: %s\n%!" path;
      text
  | None -> In_channel.with_open_bin golden_path In_channel.input_all

let test_fig3_golden_sequential () =
  Alcotest.(check string) "sequential replay matches fixture" (read_golden ())
    (render_fig3 ~domains:1)

let test_fig3_golden_parallel () =
  Alcotest.(check string) "2-domain replay matches fixture" (read_golden ())
    (render_fig3 ~domains:2)

(* ------------------------------------------------------------------ *)
(* Candidate-cap ablation pin: the counted enumeration (Finder.select)
   must reproduce the engine's historical materialise-then-subsample
   byte-for-byte, so the cap ablation figure — which exercises every
   cap setting including the uncapped one — is pinned against fixtures
   generated before the counted path existed. Two grid sizes cover both
   finder representations: 4x4x8 (volume 128, direct scan) and 8x8x16
   (volume 1024, summary-gated prefix scan).

   After an INTENTIONAL result change, regenerate with:

     BGL_UPDATE_GOLDEN=$PWD/test/fixtures \
       dune exec test/test_core.exe -- test ablation *)

let ablation_scales =
  [
    ("4x4x8", Bgl_torus.Dims.bgl, 80);
    ("8x8x16", Bgl_torus.Dims.make 8 8 16, 40);
  ]

let render_cap_ablation dims n_jobs =
  Figures.clear_cache ();
  let scale =
    { Figures.n_jobs; seeds = [ 7 ]; a_values = []; fail_fracs = []; dims }
  in
  let text = Format.asprintf "%a@." Series.pp_figure (Ablations.candidate_cap scale) in
  Figures.clear_cache ();
  text

let ablation_fixture_path name =
  let candidates = [ "fixtures/" ^ name; "test/fixtures/" ^ name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_ablation_golden ~name ~render =
  match Sys.getenv_opt "BGL_UPDATE_GOLDEN" with
  | Some dir when Sys.is_directory dir ->
      let text = render () in
      let path = Filename.concat dir name in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text);
      Printf.printf "golden fixture rewritten: %s\n%!" path;
      text
  | _ -> In_channel.with_open_bin (ablation_fixture_path name) In_channel.input_all

let test_cap_ablation_pinned (label, dims, n_jobs) () =
  let name = Printf.sprintf "ablate_candidates_%s_golden.txt" label in
  Alcotest.(check string)
    (label ^ " cap ablation matches pre-counted fixture")
    (read_ablation_golden ~name ~render:(fun () -> render_cap_ablation dims n_jobs))
    (render_cap_ablation dims n_jobs)

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "bgl_core"
    [
      ( "scenario",
        [
          tc "injected failures scaling" test_injected_failures_scaling;
          tc "default failures" test_scenario_default_failures;
          tc "labels distinguish" test_scenario_labels_distinguish;
          tc "deterministic" test_scenario_run_deterministic;
          tc "all algorithms run" test_scenario_runs_all_algos;
          tc "zero failures" test_zero_failures_means_no_kills;
        ] );
      ( "series",
        [
          tc "xs union" test_series_xs_union;
          tc "value_at" test_series_value_at;
          tc "csv" test_series_csv;
          tc "csv escaping" test_series_csv_escaping;
          tc "save csv" test_series_save_csv;
          tc "pp renders" test_pp_figure_renders;
          tc "chart renders" test_pp_chart_renders;
        ] );
      ( "figures",
        [
          slow "fig3 shape" test_fig3_shape;
          slow "fig5 capacity identity" test_fig5_capacity_identity;
          slow "fig6 structure" test_fig6_structure;
          tc "by_id" test_by_id_lookup;
          tc "producers cover by_id" test_producers_cover_by_id;
          tc "cache reuse" test_cache_reuse;
        ] );
      ( "timeline",
        [
          tc "segments" test_timeline_segments;
          tc "render and util" test_timeline_render_and_util;
          tc "busy profile conserves" test_timeline_busy_profile_conserves;
        ] );
      ( "baseline",
        [
          slow "structure" test_baseline_structure;
          slow "backfill wins" test_baseline_backfill_wins;
        ] );
      ( "golden",
        [
          slow "fig3 sequential" test_fig3_golden_sequential;
          slow "fig3 two domains" test_fig3_golden_parallel;
        ] );
      ( "ablation",
        List.map
          (fun ((label, _, _) as size) ->
            slow ("candidate cap pinned " ^ label) (test_cap_ablation_pinned size))
          ablation_scales );
    ]
