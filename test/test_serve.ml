(* Tests for bgl-served: the frame codec, the bounded admission
   queue, the protocol parser and request fingerprints, the result
   memo and durable store — and end-to-end daemon tests that spawn the
   real binary: backpressure rejection, SIGTERM drain under load with
   zero lost requests, SIGKILL mid-sweep followed by a restart that
   resumes the journal and answers byte-identically (with the stitched
   per-attempt traces passing the auditor), and injected codec faults
   degrading to per-request errors. *)

open Bgl_serve

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let wrap f () =
  Bgl_resilience.Failpoint.reset ();
  Bgl_core.Figures.clear_cache ();
  Fun.protect
    ~finally:(fun () ->
      Bgl_resilience.Failpoint.reset ();
      Bgl_core.Figures.clear_cache ())
    f

let temp_dir name =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s.%d" name (Unix.getpid ()))
  in
  let rec clear p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun f -> clear (Filename.concat p f)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
  in
  clear path;
  Unix.mkdir path 0o755;
  path

(* ------------------------------------------------------------------ *)
(* Frame codec *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let write_raw fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let test_frame_roundtrip () =
  with_pipe (fun r w ->
      let payloads =
        [ {|{"op":"ping"}|}; {|{"op":"sim","swf":"line1\nline2"}|}; "[1,2,3]" ]
      in
      List.iter (Frame.write w) payloads;
      Unix.close w;
      let reader = Frame.reader r in
      List.iter
        (fun expect ->
          match Frame.read reader with
          | Ok (Some got) -> check_string "payload" expect got
          | Ok None -> Alcotest.fail "premature EOF"
          | Error e -> Alcotest.failf "framing error: %s" e)
        payloads;
      check_bool "clean EOF" true (Frame.read reader = Ok None))

let test_frame_bare_json_and_blanks () =
  with_pipe (fun r w ->
      write_raw w "\n\r\n{\"op\":\"ping\"}\r\n";
      Unix.close w;
      let reader = Frame.reader r in
      (match Frame.read reader with
      | Ok (Some got) -> check_string "bare line" {|{"op":"ping"}|} got
      | _ -> Alcotest.fail "bare JSON line not accepted");
      check_bool "then EOF" true (Frame.read reader = Ok None))

let test_frame_torn_and_junk () =
  with_pipe (fun r w ->
      write_raw w "12\n{\"op\":\"pi";
      Unix.close w;
      match Frame.read (Frame.reader r) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "torn frame must be a framing error");
  with_pipe (fun r w ->
      write_raw w "hello world\n";
      Unix.close w;
      match Frame.read (Frame.reader r) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "junk header must be a framing error");
  with_pipe (fun r w ->
      write_raw w (string_of_int (Frame.max_frame + 1) ^ "\n");
      Unix.close w;
      match Frame.read (Frame.reader r) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "oversized frame must be rejected")

let test_frame_failpoint () =
  Bgl_resilience.Failpoint.arm
    { site = "serve.frame"; mode = Bgl_resilience.Failpoint.Once };
  with_pipe (fun r w ->
      Frame.write w {|{"op":"ping"}|};
      Unix.close w;
      let reader = Frame.reader r in
      (match Frame.read reader with
      | exception Bgl_resilience.Failpoint.Injected _ -> ()
      | _ -> Alcotest.fail "armed serve.frame must raise");
      match Frame.read reader with
      | Ok (Some _) -> ()
      | _ -> Alcotest.fail "stream must survive the injected fault")

(* ------------------------------------------------------------------ *)
(* Admission *)

let test_admission_backpressure () =
  let q = Admission.create ~capacity:2 in
  check_bool "admit 1" true (Admission.submit q 1 = Admission.Admitted 1);
  check_bool "admit 2" true (Admission.submit q 2 = Admission.Admitted 2);
  check_bool "full at capacity" true (Admission.submit q 3 = Admission.Full 2);
  check_int "depth" 2 (Admission.depth q);
  check_bool "take fifo" true (Admission.take q = Some 1);
  check_bool "slot freed" true (Admission.submit q 4 = Admission.Admitted 2)

let test_admission_drain () =
  let q = Admission.create ~capacity:4 in
  ignore (Admission.submit q 1);
  Admission.drain q;
  check_bool "draining refuses" true (Admission.submit q 2 = Admission.Draining);
  check_bool "drains the backlog" true (Admission.take q = Some 1);
  check_bool "then terminal None" true (Admission.take q = None);
  (* a blocked consumer is woken by drain *)
  let q2 = Admission.create ~capacity:1 in
  let got = Atomic.make (Some 0) in
  let consumer = Thread.create (fun () -> Atomic.set got (Admission.take q2)) () in
  Thread.delay 0.05;
  Admission.drain q2;
  Thread.join consumer;
  check_bool "woken with None" true (Atomic.get got = None)

(* ------------------------------------------------------------------ *)
(* Protocol *)

let parse_ok payload =
  match Protocol.parse payload with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %s failed: %s" payload e

let fp payload = Option.get (Protocol.fingerprint (parse_ok payload))

let test_protocol_inline_ops () =
  check_bool "ping" true (parse_ok {|{"op":"ping"}|} = Protocol.Ping);
  check_bool "health" true (parse_ok {|{"op":"health"}|} = Protocol.Health);
  check_bool "metrics" true (parse_ok {|{"op":"metrics"}|} = Protocol.Metrics);
  check_bool "no fingerprint" true
    (Protocol.fingerprint Protocol.Ping = None)

let test_protocol_rejects () =
  let bad payload =
    match Protocol.parse payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a parse error for %s" payload
  in
  bad {|not json|};
  bad {|{"no":"op"}|};
  bad {|{"op":"launch-missiles"}|};
  bad {|{"op":"sim","algo":"quantum"}|};
  bad {|{"op":"sim","jobs":0}|};
  bad {|{"op":"sweep"}|};
  bad {|{"op":"sweep","figure":"42"}|};
  bad {|{"op":"sim","failure_log":"x"}|};
  bad {|{"op":"sim","fuel":-3}|};
  bad {|{"op":"sim","swf":"definitely not swf"}|}

let test_protocol_fingerprint_semantics () =
  (* identity is semantic: field order and defaults don't matter *)
  check_string "field order irrelevant"
    (fp {|{"op":"sim","algo":"mfp","jobs":200,"seed":7}|})
    (fp {|{"seed":7,"jobs":200,"algo":"mfp","op":"sim"}|});
  check_string "explicit default = omitted default"
    (fp {|{"op":"sim","algo":"mfp","jobs":200,"load":1.0}|})
    (fp {|{"op":"sim","algo":"mfp","jobs":200}|});
  check_bool "seed distinguishes" true
    (fp {|{"op":"sim","algo":"mfp","jobs":200,"seed":7}|}
    <> fp {|{"op":"sim","algo":"mfp","jobs":200,"seed":8}|});
  check_bool "fuel is identity" true
    (fp {|{"op":"sim","algo":"mfp","jobs":200,"fuel":1000}|}
    <> fp {|{"op":"sim","algo":"mfp","jobs":200}|});
  check_string "deadline is not identity"
    (fp {|{"op":"sim","algo":"mfp","jobs":200,"deadline":5.0}|})
    (fp {|{"op":"sim","algo":"mfp","jobs":200}|})

let test_protocol_sweep_scale () =
  match parse_ok {|{"op":"sweep","figure":"3","jobs":500,"seeds":3,"dims":"8x8x8"}|} with
  | Protocol.Work { work = Protocol.Sweep s; _ } ->
      check_int "jobs" 500 s.Protocol.scale.Bgl_core.Figures.n_jobs;
      check_int "seeds" 3 (List.length s.Protocol.scale.Bgl_core.Figures.seeds);
      check_string "dims" "8x8x8"
        (Bgl_torus.Dims.to_string s.Protocol.scale.Bgl_core.Figures.dims);
      check_string "figure" "3" s.Protocol.figure
  | _ -> Alcotest.fail "expected a sweep work item"

(* ------------------------------------------------------------------ *)
(* Memo and store *)

let test_memo () =
  let m = Memo.create ~capacity:2 in
  check_bool "miss" true (Memo.find m "a" = None);
  Memo.add m "a" "ra";
  Memo.add m "b" "rb";
  check_bool "hit" true (Memo.find m "a" = Some "ra");
  Memo.add m "c" "rc" (* evicts a, the oldest *);
  check_bool "evicted" true (Memo.find m "a" = None);
  check_bool "kept" true (Memo.find m "c" = Some "rc");
  check_int "hits" 2 (Memo.hits m);
  check_int "misses" 2 (Memo.misses m);
  check_int "bounded" 2 (Memo.length m)

let test_store () =
  let dir = temp_dir "bgl_test_store" in
  let s = Store.create ~dir in
  Store.record_request s ~fp:"aa" ~payload:"req-a";
  Store.record_request s ~fp:"bb" ~payload:"req-b";
  check_bool "both pending" true
    (List.sort compare (Store.pending s) = [ ("aa", "req-a"); ("bb", "req-b") ]);
  Store.record_result s ~fp:"aa" ~frame:"result-a";
  check_bool "completed leaves pending" true (Store.pending s = [ ("bb", "req-b") ]);
  check_bool "result replays" true (Store.result s ~fp:"aa" = Some "result-a");
  check_bool "no result yet" true (Store.result s ~fp:"bb" = None);
  Store.remove s ~fp:"bb";
  check_bool "removed" true (Store.pending s = [])

(* ------------------------------------------------------------------ *)
(* End-to-end daemon tests *)

(* Resolved relative to this test binary so it works under both `dune
   runtest` (cwd = test dir) and `dune exec` (cwd = project root). *)
let served_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "bgl_served_cli.exe"))

let start_server ?(extra = []) ~sock ~state () =
  let argv =
    [ served_exe; "start"; "-l"; "unix:" ^ sock; "--state-dir"; state; "--domains"; "2" ]
    @ extra
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let log =
    Unix.openfile (state ^ ".log")
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  let pid = Unix.create_process served_exe (Array.of_list argv) null Unix.stdout log in
  Unix.close null;
  Unix.close log;
  pid

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX sock) with e -> Unix.close fd; raise e);
  fd

let rec wait_ready ?(tries = 100) sock =
  match connect sock with
  | fd -> Unix.close fd
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
      if tries = 0 then Alcotest.fail "server never came up";
      Thread.delay 0.1;
      wait_ready ~tries:(tries - 1) sock

let frame_ev frame =
  match Bgl_obs.Jsonl.parse frame with
  | Error _ -> None
  | Ok v -> Option.bind (Bgl_obs.Jsonl.member "ev" v) Bgl_obs.Jsonl.to_string_opt

(* Send one request; collect frames until a terminal one. *)
let request sock payload =
  let fd = connect sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Frame.write fd payload;
      let reader = Frame.reader fd in
      let rec loop acc =
        match Frame.read reader with
        | Ok (Some frame) -> (
            match frame_ev frame with
            | Some ("result" | "error" | "rejected" | "pong" | "health" | "metrics")
              ->
                List.rev (frame :: acc)
            | _ -> loop (frame :: acc))
        | Ok None -> List.rev acc
        | Error e -> Alcotest.failf "client framing error: %s" e
      in
      loop [])

let last_ev sock payload =
  match List.rev (request sock payload) with
  | [] -> Alcotest.fail "no response frames"
  | last :: _ -> (Option.value (frame_ev last) ~default:"?", last)

let stop_server pid =
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  status

let test_served_ping_health_metrics () =
  let dir = temp_dir "bgl_e2e_ping" in
  let sock = Filename.concat dir "s.sock" in
  let pid = start_server ~sock ~state:(Filename.concat dir "state") () in
  Fun.protect
    ~finally:(fun () -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      wait_ready sock;
      check_string "pong" "pong" (fst (last_ev sock {|{"op":"ping"}|}));
      let ev, frame = last_ev sock {|{"op":"health"}|} in
      check_string "health" "health" ev;
      check_bool "status ok" true
        (Option.bind (Bgl_obs.Jsonl.parse frame |> Result.to_option)
           (fun v ->
             Option.bind (Bgl_obs.Jsonl.member "status" v)
               Bgl_obs.Jsonl.to_string_opt)
        = Some "ok");
      let ev, frame = last_ev sock {|{"op":"metrics"}|} in
      check_string "metrics" "metrics" ev;
      check_bool "prometheus text" true
        (let contains hay needle =
           let n = String.length needle and h = String.length hay in
           let rec go i =
             i + n <= h && (String.sub hay i n = needle || go (i + 1))
           in
           go 0
         in
         contains frame "bgl_serve_requests_total");
      check_bool "clean drain" true (stop_server pid = Unix.WEXITED 0))

let test_served_backpressure () =
  let dir = temp_dir "bgl_e2e_bp" in
  let sock = Filename.concat dir "s.sock" in
  let pid =
    start_server ~extra:[ "--queue"; "1" ] ~sock ~state:(Filename.concat dir "state") ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      wait_ready sock;
      (* A: occupies the executor. B: fills the queue. C: must bounce
         with an explicit rejection, immediately. *)
      let slow seed =
        Printf.sprintf
          {|{"op":"sweep","figure":"3","jobs":200,"seeds":1,"seed":%d}|} seed
      in
      let a = Thread.create (fun () -> request sock (slow 1)) () in
      Thread.delay 0.4;
      let b =
        Thread.create
          (fun () -> request sock {|{"op":"sim","algo":"mfp","jobs":150}|})
          ()
      in
      Thread.delay 0.2;
      let ev, frame =
        last_ev sock {|{"op":"sim","algo":"mfp","jobs":150,"seed":99}|}
      in
      check_string "backpressure" "rejected" ev;
      check_bool "advertises retry_after" true
        (Option.bind (Bgl_obs.Jsonl.parse frame |> Result.to_option)
           (fun v -> Bgl_obs.Jsonl.member "retry_after" v)
        <> None);
      Thread.join a;
      Thread.join b;
      check_bool "clean drain" true (stop_server pid = Unix.WEXITED 0))

let count_files dir suffix =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f suffix)
  |> List.length

let test_served_drain_under_load () =
  let dir = temp_dir "bgl_e2e_drain" in
  let sock = Filename.concat dir "s.sock" in
  let state = Filename.concat dir "state" in
  let pid = start_server ~sock ~state () in
  wait_ready sock;
  let payloads =
    List.map
      (fun seed ->
        Printf.sprintf {|{"op":"sim","algo":"mfp","jobs":250,"seed":%d}|} seed)
      [ 1; 2; 3 ]
  in
  (* Clients hold their connections through the drain: every admitted
     request must still be answered. *)
  let clients = List.map (fun p -> Thread.create (fun () -> request sock p) ()) payloads in
  Thread.delay 0.3;
  let status = stop_server pid in
  check_bool "SIGTERM drain exits 0" true (status = Unix.WEXITED 0);
  List.iter Thread.join clients;
  check_int "every accepted request has a durable result" 3
    (count_files state ".result");
  check_int "none were lost or duplicated" 3 (count_files state ".req")

let rec wait_for ?(tries = 200) pred =
  if pred () then ()
  else if tries = 0 then Alcotest.fail "condition never became true"
  else begin
    Thread.delay 0.05;
    wait_for ~tries:(tries - 1) pred
  end

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_served_kill9_resume_byte_identical () =
  let payload = {|{"op":"sweep","figure":"3","jobs":200,"seeds":1}|} in
  (* baseline: the uninterrupted answer *)
  let dir = temp_dir "bgl_e2e_kill" in
  let base_sock = Filename.concat dir "base.sock" in
  let base_state = Filename.concat dir "base" in
  let bpid = start_server ~sock:base_sock ~state:base_state () in
  wait_ready base_sock;
  let baseline =
    match List.rev (request base_sock payload) with
    | last :: _ -> last
    | [] -> Alcotest.fail "no baseline result"
  in
  check_bool "baseline drains" true (stop_server bpid = Unix.WEXITED 0);
  (* the victim: SIGKILL once the sweep has journaled some cells *)
  let sock = Filename.concat dir "s.sock" in
  let state = Filename.concat dir "state" in
  let pid = start_server ~sock ~state () in
  wait_ready sock;
  let client = Thread.create (fun () -> try ignore (request sock payload) with _exn -> ()) () in
  wait_for (fun () ->
      count_files state ".journal" = 1
      && (let j = Sys.readdir state |> Array.to_list
              |> List.find (fun f -> Filename.check_suffix f ".journal") in
          let lines =
            String.split_on_char '\n' (read_file (Filename.concat state j))
          in
          List.length (List.filter (fun l -> String.trim l <> "") lines) >= 2));
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Thread.join client;
  check_int "no result was stored before the kill" 0 (count_files state ".result");
  (* restart: recovery resumes the journal before accepting *)
  let pid2 = start_server ~sock ~state () in
  Fun.protect
    ~finally:(fun () -> try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      wait_ready ~tries:600 sock;
      let resumed =
        match List.rev (request sock payload) with
        | last :: _ -> last
        | [] -> Alcotest.fail "no resumed result"
      in
      check_string "byte-identical after kill -9 and resume" baseline resumed;
      check_bool "replayed, not re-simulated" true
        (count_files state ".result" = 1);
      (* the stitched per-attempt traces certify as one schedule *)
      let traces =
        Sys.readdir state |> Array.to_list
        |> List.filter (fun f ->
               let rec has_trace s =
                 match Filename.extension s with
                 | "" -> false
                 | ext -> ext = ".trace" || has_trace (Filename.remove_extension s)
               in
               has_trace f)
        |> List.sort compare
        |> List.map (Filename.concat state)
      in
      check_bool "two attempts traced" true (List.length traces = 2);
      (match Bgl_audit.Driver.audit_files traces with
      | Ok cert -> check_bool "stitched audit passes" true (Bgl_audit.Driver.pass cert)
      | Error e ->
          Alcotest.failf "audit failed to run: %s" (Bgl_resilience.Error.to_string e));
      check_bool "clean drain" true (stop_server pid2 = Unix.WEXITED 0))

let test_served_injected_frame_fault_degrades () =
  let dir = temp_dir "bgl_e2e_fp" in
  let sock = Filename.concat dir "s.sock" in
  let pid =
    start_server
      ~extra:[ "--fail"; "serve.frame:once" ]
      ~sock ~state:(Filename.concat dir "state") ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      (* No probe connection here: it would consume the armed fault.
         The socket file appears once the server is bound. *)
      wait_for (fun () -> Sys.file_exists sock);
      (* the armed read fault costs this request, answered in-band *)
      let ev, _ = last_ev sock {|{"op":"ping"}|} in
      check_string "per-request error" "error" ev;
      (* ...and nothing else: the server still serves *)
      check_string "server survives" "pong" (fst (last_ev sock {|{"op":"ping"}|}));
      check_bool "clean drain" true (stop_server pid = Unix.WEXITED 0))

(* ------------------------------------------------------------------ *)

let () =
  let t name f = Alcotest.test_case name `Quick (wrap f) in
  let slow name f = Alcotest.test_case name `Slow (wrap f) in
  Alcotest.run "serve"
    [
      ( "frame",
        [
          t "round-trip" test_frame_roundtrip;
          t "bare JSON and blank lines" test_frame_bare_json_and_blanks;
          t "torn, junk, oversized" test_frame_torn_and_junk;
          t "failpoint" test_frame_failpoint;
        ] );
      ( "admission",
        [
          t "backpressure at capacity" test_admission_backpressure;
          t "drain semantics" test_admission_drain;
        ] );
      ( "protocol",
        [
          t "inline ops" test_protocol_inline_ops;
          t "rejects bad requests" test_protocol_rejects;
          t "fingerprint semantics" test_protocol_fingerprint_semantics;
          t "sweep scale mapping" test_protocol_sweep_scale;
        ] );
      ("memo", [ t "hits, misses, eviction" test_memo ]);
      ("store", [ t "request lifecycle" test_store ]);
      ( "daemon",
        [
          slow "ping, health, metrics" test_served_ping_health_metrics;
          slow "backpressure rejection" test_served_backpressure;
          slow "SIGTERM drain under load" test_served_drain_under_load;
          slow "kill -9, resume, byte-identical + audit"
            test_served_kill9_resume_byte_identical;
          slow "injected frame fault degrades" test_served_injected_frame_fault_degrades;
        ] );
    ]
