(* Tests for the bgl-lint static analyzer: each rule R1-R6 fires on a
   known-bad snippet and stays silent on the fixed form; the waiver
   file round-trips, requires reasons, and reports stale entries; the
   JSONL report parses; and (qcheck) the analyzer never raises on
   arbitrary parse-able source. *)

open Bgl_lint

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Rule ids produced by linting [src] as the file [path] (default: a
   library implementation, so lib-only rules are live). *)
let ids_of ?(path = "lib/probe/probe.ml") src =
  match Driver.lint_source ~path src with
  | Ok findings -> List.map (fun (f : Finding.t) -> Finding.id f.rule) findings
  | Error e -> Alcotest.failf "lint_source failed: %s" (Bgl_resilience.Error.to_string e)

let fires ?path rule src = List.mem rule (ids_of ?path src)

let check_fires rule src = check_bool (rule ^ " fires") true (fires rule src)
let check_silent rule src = check_bool (rule ^ " silent") false (fires rule src)

(* ------------------------------------------------------------------ *)
(* R1 wall-clock *)

let test_r1 () =
  check_fires "R1" "let t0 = Unix.gettimeofday ()";
  check_fires "R1" "let t0 = Sys.time ()";
  check_fires "R1" "let t0 = Unix.time ()";
  (* The fixed form: the time source comes in as an argument. *)
  check_silent "R1" "let elapsed clock = clock () -. 1.";
  check_silent "R1" "let t0 = Unix.getpid ()";
  (* R1 is not lib-only: CLIs and tests are scanned too. *)
  check_bool "R1 fires in bin" true (fires ~path:"bin/probe.ml" "R1" "let t = Sys.time ()")

(* ------------------------------------------------------------------ *)
(* R2 stdlib-random *)

let test_r2 () =
  check_fires "R2" "let d = Random.int 6";
  check_fires "R2" "let s = Random.State.make [| 1 |]";
  check_fires "R2" "let () = Random.self_init ()";
  (* The fixed form, and idents that merely end in "random". *)
  check_silent "R2" "let d rng = Bgl_stats.Rng.int rng 6";
  check_silent "R2" "let p = Placement.random ~seed:1";
  check_silent "R2" "let r = Random_fit"

(* ------------------------------------------------------------------ *)
(* R3 unsynchronized-global *)

let test_r3 () =
  check_fires "R3" "let cache = Hashtbl.create 8";
  check_fires "R3" "let state = ref 0";
  check_fires "R3" "let buf = Buffer.create 256";
  check_fires "R3" "let q : int Queue.t = Queue.create ()";
  (* Nested modules are still program-global state. *)
  check_fires "R3" "module M = struct let q = Queue.create () end";
  (* Mutable-record literal (type declared in the same file). *)
  check_fires "R3" "type cell = { mutable n : int }\nlet shared = { n = 0 }";
  (* Sanctioned wrappers. *)
  check_silent "R3" "let cache = Atomic.make []";
  check_silent "R3" "let key = Domain.DLS.new_key (fun () -> Hashtbl.create 8)";
  check_silent "R3" "let lock = Mutex.create ()";
  (* Guarded: a Mutex within two structure items... *)
  check_silent "R3" "let tbl = Hashtbl.create 8\nlet lock = Mutex.create ()";
  (* ...or one named <binding>_mutex / <binding>_lock anywhere. *)
  check_silent "R3"
    "let tbl = Hashtbl.create 8\nlet a = 1\nlet b = 2\nlet c = 3\nlet tbl_mutex = Mutex.create ()";
  (* An unrelated, non-adjacent mutex guards nothing. *)
  check_fires "R3"
    "let tbl = Hashtbl.create 8\nlet a = 1\nlet b = 2\nlet c = 3\nlet other_lock = Mutex.create ()";
  (* Function-local mutable state is fine. *)
  check_silent "R3" "let f () = let x = ref 0 in incr x; !x";
  (* Immutable record literal is fine. *)
  check_silent "R3" "type p = { x : int }\nlet origin = { x = 0 }"

(* ------------------------------------------------------------------ *)
(* R4 swallowed-exception *)

let test_r4 () =
  check_fires "R4" "let f g = try g () with _ -> 0";
  check_fires "R4" "let f g = try g () with Not_found -> 1 | _ -> 0";
  check_fires "R4" "let f g = match g () with x -> x | exception _ -> 0";
  (* Specific handlers, and handlers that bind the exception, pass. *)
  check_silent "R4" "let f g = try g () with Not_found -> 0";
  check_silent "R4" "let f g h = try g () with e -> h e";
  check_silent "R4" "let f g = match g () with x -> x | exception Not_found -> 0"

(* ------------------------------------------------------------------ *)
(* R5 float-literal-equality *)

let test_r5 () =
  check_fires "R5" "let f x = x = 1.5";
  check_fires "R5" "let f x = x <> 0.";
  check_fires "R5" "let f x = 0.25 = x";
  (* Inequalities and integer literals pass. *)
  check_silent "R5" "let f x = x <= 0.";
  check_silent "R5" "let f x = x = 1";
  check_silent "R5" "let f x y = x = y"

(* ------------------------------------------------------------------ *)
(* R6 stray-stdout *)

let test_r6 () =
  check_fires "R6" "let () = print_endline \"done\"";
  check_fires "R6" "let f x = Printf.printf \"%d\" x";
  check_fires "R6" "let f x = Format.eprintf \"%d\" x";
  check_fires "R6" "let warn m = prerr_endline m";
  (* A formatter passed by the caller is the sanctioned route. *)
  check_silent "R6" "let pp ppf x = Format.fprintf ppf \"%d\" x";
  (* Only lib/ is held to it. *)
  check_bool "R6 silent in bin" false
    (fires ~path:"bin/probe.ml" "R6" "let () = print_endline \"done\"");
  check_bool "R6 silent in test" false
    (fires ~path:"test/probe.ml" "R6" "let () = print_endline \"done\"")

(* ------------------------------------------------------------------ *)
(* Findings carry usable spans *)

let test_spans () =
  match Driver.lint_source ~path:"lib/probe.ml" "let a = 1\nlet d = Random.int 6" with
  | Error e -> Alcotest.failf "unexpected error: %s" (Bgl_resilience.Error.to_string e)
  | Ok [ f ] ->
      check_int "line" 2 f.line;
      check_bool "cols ordered" true (f.col < f.end_col);
      Alcotest.(check string) "file" "lib/probe.ml" f.file;
      check_bool "jsonl parses" true (Bgl_obs.Jsonl.valid (Finding.to_json f))
  | Ok fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* ------------------------------------------------------------------ *)
(* Waivers *)

let probe_path = "lib/probe/probe.ml"

let findings_of src =
  match Driver.lint_source ~path:probe_path src with
  | Ok fs -> fs
  | Error e -> Alcotest.failf "lint_source failed: %s" (Bgl_resilience.Error.to_string e)

let parse_waivers src =
  match Waivers.of_string ~name:"test-waivers" src with
  | Ok w -> w
  | Error msg -> Alcotest.failf "waiver parse failed: %s" msg

let test_waiver_roundtrip () =
  let findings = findings_of "let d = Random.int 6\nlet t = Sys.time ()" in
  check_int "two findings" 2 (List.length findings);
  let w = parse_waivers "# comment\n\nR2 lib/probe/probe.ml synthetic test site\n" in
  let { Waivers.kept; waived; stale } = Waivers.apply w findings ~scanned:[ probe_path ] in
  check_int "R1 kept" 1 (List.length kept);
  check_int "R2 waived" 1 waived;
  check_int "no stale" 0 (List.length stale);
  (* Same waiver, but the file has no R2 finding left: stale. *)
  let clean = findings_of "let t = Sys.time ()" in
  let applied = Waivers.apply w clean ~scanned:[ probe_path ] in
  check_int "stale reported" 1 (List.length applied.stale);
  check_bool "stale jsonl parses" true
    (Bgl_obs.Jsonl.valid (Waivers.stale_to_json (List.hd applied.stale)));
  (* A waiver whose file was not scanned is ignored, not stale. *)
  let applied = Waivers.apply w clean ~scanned:[ "lib/other.ml" ] in
  check_int "unscanned not stale" 0 (List.length applied.stale)

let test_waiver_syntax () =
  check_bool "reason required" true
    (Result.is_error (Waivers.of_string ~name:"w" "R1 lib/x.ml"));
  check_bool "rule id validated" true
    (Result.is_error (Waivers.of_string ~name:"w" "R11 lib/x.ml some reason"));
  check_bool "typed rule ids accepted" true
    (Result.is_ok (Waivers.of_string ~name:"w" "R9 lib/x.ml some reason"));
  check_bool "comments and blanks ok" true
    (Result.is_ok (Waivers.of_string ~name:"w" "# only a comment\n\n"));
  let w = parse_waivers "R1 lib/obs/span.ml the default clock\n" in
  let e = List.hd w in
  check_bool "exact match" true (Waivers.matches e ~file:"lib/obs/span.ml");
  check_bool "suffix match on boundary" true
    (Waivers.matches e ~file:"_build/default/lib/obs/span.ml");
  check_bool "no mid-component match" false (Waivers.matches e ~file:"notlib/obs/span.ml");
  check_bool "dot-slash normalized" true (Waivers.matches e ~file:"./lib/obs/span.ml")

(* ------------------------------------------------------------------ *)
(* Driver over a real tree *)

let write_file dir name contents =
  let path = Filename.concat dir name in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents);
  path

let test_driver_tree () =
  let dir = Filename.temp_dir "bgl_lint_test" "" in
  let lib = Filename.concat dir "lib" in
  Sys.mkdir lib 0o755;
  ignore (write_file lib "one.ml" "let d = Random.int 6\n");
  ignore (write_file lib "two.ml" "let ok = 1\n");
  ignore (write_file lib "notml.txt" "Random.int is only flagged in .ml files\n");
  match Driver.run [ dir ] with
  | Error e -> Alcotest.failf "driver failed: %s" (Bgl_resilience.Error.to_string e)
  | Ok outcome ->
      check_int "scanned both ml files" 2 outcome.files_scanned;
      check_int "one finding" 1 (List.length outcome.findings);
      check_bool "not clean" false (Driver.clean outcome);
      check_int "jsonl line per finding" 1 (List.length (Driver.to_jsonl outcome));
      List.iter
        (fun line -> check_bool "jsonl line parses" true (Bgl_obs.Jsonl.valid line))
        (Driver.to_jsonl outcome)

let test_driver_errors () =
  (match Driver.lint_source ~path:"lib/broken.ml" "let x =" with
  | Error (Bgl_resilience.Error.Parse _) -> ()
  | Error e -> Alcotest.failf "expected Parse, got %s" (Bgl_resilience.Error.to_string e)
  | Ok _ -> Alcotest.fail "expected a parse error");
  match Driver.run [ "/nonexistent-bgl-lint-path" ] with
  | Error (Bgl_resilience.Error.Io _) -> ()
  | Error e -> Alcotest.failf "expected Io, got %s" (Bgl_resilience.Error.to_string e)
  | Ok _ -> Alcotest.fail "expected an io error"

(* ------------------------------------------------------------------ *)
(* Typed rules R7-R10. Fixtures are typechecked in-process by the same
   front end that produced the real `.cmt` files, then pushed through
   the callgraph + rule pipeline with a fixture-local config whose
   deterministic root is [Fixture.root] and whose lifecycle protocol
   covers the fixture's own [job] type. Only Stdlib modules appear in
   fixtures: the in-process typechecker sees the compiler's default
   load path, not the project's libraries. *)

let fixture_config =
  {
    Typed_rules.default with
    roots = [ "Fixture.root" ];
    protocols = [ ("job", "state", "transition") ];
  }

let typed_check ?(waivers = []) src =
  let unit_info =
    match Cmt_loader.typecheck_source ~path:"lib/fixture/fixture.ml" src with
    | Ok u -> u
    | Error e -> Alcotest.failf "typecheck failed: %s" (Bgl_resilience.Error.to_string e)
  in
  let graph = Callgraph.build ~spawn_sites:fixture_config.spawn_sites [ unit_info ] in
  Typed_rules.check ~config:fixture_config ~waivers graph

let typed_ids ?waivers src =
  List.map (fun (f : Finding.t) -> Finding.id f.rule) (fst (typed_check ?waivers src))

let check_typed_fires rule src = check_bool (rule ^ " fires") true (List.mem rule (typed_ids src))

let check_typed_silent rule src =
  check_bool (rule ^ " silent") false (List.mem rule (typed_ids src))

let test_r7 () =
  (* A sink reached through a call chain is reported at the root. *)
  check_typed_fires "R7" "let helper () = Sys.time ()\nlet root () = helper ()";
  check_typed_fires "R7" "let deep () = Random.int 6\nlet mid () = deep ()\nlet root () = mid ()";
  check_typed_fires "R7" "let root () = Sys.getenv \"HOME\"";
  (* The fixed form threads the clock in as data. *)
  check_typed_silent "R7" "let helper clock = clock ()\nlet root clock = helper clock";
  (* A sink in a function the root never calls is not the root's problem. *)
  check_typed_silent "R7" "let stray () = Sys.time ()\nlet root () = 1 + 1";
  (* The finding lands on the root and carries the full call path. *)
  match fst (typed_check "let helper () = Sys.time ()\nlet root () = helper ()") with
  | [ f ] ->
      check_int "reported at root line" 2 f.line;
      Alcotest.(check (list string))
        "call trail" [ "Fixture.root"; "Fixture.helper"; "Sys.time" ] f.trail
  | fs -> Alcotest.failf "expected exactly one R7 finding, got %d" (List.length fs)

let test_r7_barrier () =
  (* An R7 waiver on a file in the path is a taint barrier: the finding
     disappears and the entry is reported as consumed, not stale. *)
  let waivers = parse_waivers "R7 lib/fixture/fixture.ml fixture-declared barrier\n" in
  let findings, consumed =
    typed_check ~waivers "let helper () = Sys.time ()\nlet root () = helper ()"
  in
  check_int "barrier suppresses" 0 (List.length findings);
  check_int "barrier consumed" 1 (List.length consumed);
  (* ...but the root's own file is never a barrier for direct sinks. *)
  let findings, consumed = typed_check ~waivers "let root () = Sys.time ()" in
  check_int "direct sink still fires" 1 (List.length findings);
  check_int "nothing consumed" 0 (List.length consumed)

let test_r8 () =
  check_typed_fires "R8"
    "let run () =\n\
    \  let counter = ref 0 in\n\
    \  let d = Domain.spawn (fun () -> incr counter) in\n\
    \  Domain.join d";
  check_typed_fires "R8" "let run tbl = Domain.spawn (fun () -> Hashtbl.add tbl 1 1)";
  check_typed_fires "R8"
    "type cell = { mutable n : int }\nlet run (c : cell) = Domain.spawn (fun () -> c.n <- 1)";
  (* Sanctioned discipline: Atomic, a record carrying its own Mutex,
     and the pool's disjoint-index array idiom. *)
  check_typed_silent "R8"
    "let run () =\n\
    \  let counter = Atomic.make 0 in\n\
    \  let d = Domain.spawn (fun () -> Atomic.incr counter) in\n\
    \  Domain.join d";
  check_typed_silent "R8"
    "type guarded = { lock : Mutex.t; mutable n : int }\n\
     let run (g : guarded) = Domain.spawn (fun () -> g.n <- 1)";
  check_typed_silent "R8" "let run (a : int array) = Domain.spawn (fun () -> a.(0) <- 1)";
  (* Capturing immutable data is the point of closures. *)
  check_typed_silent "R8" "let run xs = Domain.spawn (fun () -> List.length xs)"

let test_r9 () =
  (* The raisable set is interprocedural: the raise is two calls away. *)
  check_typed_fires "R9"
    "exception Budget_exceeded\n\
     let deep () = raise Budget_exceeded\n\
     let mid () = deep () + 1\n\
     let run () = try mid () with _ -> 0";
  (* [exception _] match arms are the same hazard. *)
  check_typed_fires "R9"
    "exception Injected\n\
     let deep () = raise Injected\n\
     let run () = match deep () with n -> n | exception _ -> 0";
  (* Re-raising catch-alls and specific handlers pass. *)
  check_typed_silent "R9"
    "exception Budget_exceeded\n\
     let deep () = raise Budget_exceeded\n\
     let run () = try deep () with e -> raise e";
  check_typed_silent "R9"
    "exception Budget_exceeded\n\
     let deep () = raise Budget_exceeded\n\
     let run () = try deep () with Budget_exceeded -> 0";
  (* Unlike syntactic R4, a catch-all over unprotected exceptions is
     not this rule's business. *)
  check_typed_silent "R9" "let harmless () = raise Not_found\nlet run () = try harmless () with _ -> 0"

let test_r10 () =
  (* Any [state <-] outside the blessed transition function fires. *)
  (match
     fst
       (typed_check
          "type job = { mutable state : int }\n\
           let transition j = j.state <- 1\n\
           let sneaky j = j.state <- 2")
   with
  | [ f ] ->
      Alcotest.(check string) "rule" "R10" (Finding.id f.rule);
      Alcotest.(check (list string)) "culprit def" [ "Fixture.sneaky" ] f.trail
  | fs -> Alcotest.failf "expected exactly one R10 finding, got %d" (List.length fs));
  (* The blessed writer alone is clean. *)
  check_typed_silent "R10"
    "type job = { mutable state : int }\nlet transition j = j.state <- 1";
  (* Type-keyed: an unrelated record with a [state] field is free. *)
  check_typed_silent "R10"
    "type rngst = { mutable state : int }\nlet bump (r : rngst) = r.state <- r.state + 1"

let test_modname_normalization () =
  let check_norm input expect =
    Alcotest.(check string) input expect (Cmt_loader.normalize_dotted input)
  in
  check_norm "Bgl_sim__Engine" "Bgl_sim.Engine";
  check_norm "Bgl_sim__.Job.t" "Bgl_sim.Job.t";
  check_norm "Stdlib.Random.int" "Random.int";
  check_norm "Stdlib" "Stdlib";
  (* Lowercase components are value names; their underscores stay. *)
  check_norm "M.foo__bar" "M.foo__bar"

let test_run_typed_errors () =
  match Driver.run_typed [ "/nonexistent-bgl-typed-path" ] with
  | Error (Bgl_resilience.Error.Io _) -> ()
  | Error e -> Alcotest.failf "expected Io, got %s" (Bgl_resilience.Error.to_string e)
  | Ok _ -> Alcotest.fail "expected an io error"

(* ------------------------------------------------------------------ *)
(* qcheck: the analyzer is total on parse-able source *)

(* A generator of small, syntactically valid implementations: every
   production parenthesizes its sub-expressions, so anything it emits
   parses. The ident pool deliberately includes the triggers of every
   rule. *)
let gen_source =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map string_of_int small_signed_int;
        oneofl [ "1.5"; "0."; "3.14"; "nan" ];
        oneofl
          [
            "x";
            "f";
            "acc";
            "Unix.gettimeofday";
            "Sys.time";
            "Random.int";
            "Hashtbl.create";
            "Buffer.create";
            "Atomic.make";
            "Mutex.create";
            "print_endline";
            "Printf.printf";
            "List.map";
          ];
      ]
  in
  let rec expr n =
    if n <= 0 then leaf
    else
      let sub = expr (n / 2) in
      oneof
        [
          leaf;
          map2 (Printf.sprintf "(%s) (%s)") sub sub;
          (let* op = oneofl [ "="; "<>"; "+"; "<="; "+." ] in
           map2 (fun a b -> Printf.sprintf "(%s) %s (%s)" a op b) sub sub);
          map3 (Printf.sprintf "if (%s) then (%s) else (%s)") sub sub sub;
          (let* handler = oneofl [ "_"; "Not_found"; "e" ] in
           map2 (fun a b -> Printf.sprintf "try (%s) with %s -> (%s)" a handler b) sub sub);
          (let* pat = oneofl [ "_"; "0"; "exception _"; "exception Exit" ] in
           map2 (fun a b -> Printf.sprintf "match (%s) with | %s -> (%s) | _ -> (%s)" a pat b b)
             sub sub);
          map2 (Printf.sprintf "let z = (%s) in (%s)") sub sub;
          map (Printf.sprintf "fun q -> (%s)") sub;
          map (Printf.sprintf "ref (%s)") sub;
          map2 (Printf.sprintf "((%s); (%s))") sub sub;
        ]
  in
  let item =
    let* e = expr 6 in
    oneofl
      [
        Printf.sprintf "let v = %s" e;
        Printf.sprintf "let g () = %s" e;
        Printf.sprintf "let () = ignore (%s)" e;
        Printf.sprintf "module Mz = struct let inner = %s end" e;
        "type tz = { mutable mf : int }";
      ]
  in
  let* items = list_size (int_range 1 6) item in
  let* path = oneofl [ "lib/gen/gen.ml"; "bin/gen.ml"; "test/gen.ml" ] in
  pair (return path) (return (String.concat "\n" items))

let prop_never_raises =
  QCheck.Test.make ~count:500 ~name:"analyzer total on generated source"
    (QCheck.make ~print:(fun (p, s) -> p ^ ":\n" ^ s) gen_source)
    (fun (path, src) ->
      match Driver.lint_source ~path src with
      | Ok _ -> true
      | Error (Bgl_resilience.Error.Parse _) ->
          QCheck.Test.fail_reportf "generator emitted unparseable source:\n%s" src
      | Error e ->
          QCheck.Test.fail_reportf "unexpected error %s on:\n%s"
            (Bgl_resilience.Error.to_string e) src
      | exception e ->
          QCheck.Test.fail_reportf "analyzer raised %s on:\n%s" (Printexc.to_string e) src)

let prop_waivers_total =
  QCheck.Test.make ~count:300 ~name:"waiver parser total"
    QCheck.(string_of_size (Gen.int_bound 200))
    (fun s ->
      match Waivers.of_string ~name:"fuzz" s with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "Waivers.of_string raised %s on %S" (Printexc.to_string e) s)

(* The typed analyzer must be total over whatever `_build` contains.
   dune runs tests from `_build/default/test`, so the tree's real
   `.cmt` units are one directory up — but only walk `..` when it
   really is a dune build root, so running the binary from elsewhere
   doesn't crawl half the filesystem. Arbitrary subsets exercise the
   unresolved-edge paths a full build never hits. Loaded once. *)
let built_units =
  lazy
    (let root =
       if Sys.file_exists "_build/default" then Some "_build/default"
       else if Sys.file_exists "../lib/lint/.bgl_lint.objs" then Some ".."
       else None
     in
     match root with
     | None -> []
     | Some root -> (
         match Cmt_loader.collect_cmts [ root ] with
         | Ok cmts -> List.filter_map Cmt_loader.load cmts
         | Error _ -> []))

let prop_typed_total =
  QCheck.Test.make ~count:25 ~name:"typed analyzer total on built unit subsets"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      match Lazy.force built_units with
      | [] -> true (* no build tree in sight; vacuous *)
      | units -> (
          let units = List.filteri (fun i _ -> Hashtbl.hash (seed, i) land 3 <> 0) units in
          let graph =
            Callgraph.build ~spawn_sites:Typed_rules.default.spawn_sites units
          in
          match Typed_rules.check ~waivers:[] graph with
          | findings, _ ->
              List.for_all
                (fun (f : Finding.t) -> Bgl_obs.Jsonl.valid (Finding.to_json f))
                findings
          | exception e ->
              QCheck.Test.fail_reportf "typed analyzer raised %s on a %d-unit subset"
                (Printexc.to_string e) (List.length units)))

let qcheck_tests =
  List.map
    (QCheck_alcotest.to_alcotest ~verbose:false)
    [ prop_never_raises; prop_waivers_total; prop_typed_total ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "bgl_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 wall-clock" `Quick test_r1;
          Alcotest.test_case "R2 stdlib-random" `Quick test_r2;
          Alcotest.test_case "R3 unsynchronized-global" `Quick test_r3;
          Alcotest.test_case "R4 swallowed-exception" `Quick test_r4;
          Alcotest.test_case "R5 float-literal-equality" `Quick test_r5;
          Alcotest.test_case "R6 stray-stdout" `Quick test_r6;
          Alcotest.test_case "finding spans" `Quick test_spans;
        ] );
      ( "typed rules",
        [
          Alcotest.test_case "R7 determinism taint" `Quick test_r7;
          Alcotest.test_case "R7 waiver barrier" `Quick test_r7_barrier;
          Alcotest.test_case "R8 cross-domain escape" `Quick test_r8;
          Alcotest.test_case "R9 exception flow" `Quick test_r9;
          Alcotest.test_case "R10 lifecycle protocol" `Quick test_r10;
          Alcotest.test_case "module-name normalization" `Quick test_modname_normalization;
          Alcotest.test_case "run_typed error mapping" `Quick test_run_typed_errors;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "round-trip and staleness" `Quick test_waiver_roundtrip;
          Alcotest.test_case "syntax and matching" `Quick test_waiver_syntax;
        ] );
      ( "driver",
        [
          Alcotest.test_case "directory tree" `Quick test_driver_tree;
          Alcotest.test_case "error mapping" `Quick test_driver_errors;
        ] );
      ("qcheck", qcheck_tests);
    ]
