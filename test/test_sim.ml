(* Tests for the simulation engine: event queue, checkpoint arithmetic,
   job lifecycle, hand-computed metric values, failure semantics, and
   whole-simulation invariants as properties. *)

open Bgl_torus
open Bgl_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Event queue *)

let test_eq_order () =
  let q = Event_queue.create () in
  List.iter (fun (t, v) -> Event_queue.push q ~time:t v) [ (3., "c"); (1., "a"); (2., "b") ];
  let popped = List.init 3 (fun _ -> Option.get (Event_queue.pop q)) in
  Alcotest.(check (list (pair (float 0.) string)))
    "time order"
    [ (1., "a"); (2., "b"); (3., "c") ]
    popped;
  check_bool "empty" true (Event_queue.is_empty q)

let test_eq_fifo_on_ties () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.push q ~time:5. v) [ 1; 2; 3; 4 ];
  let popped = List.init 4 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list int)) "insertion order on equal times" [ 1; 2; 3; 4 ] popped

let test_eq_pop_if_at () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:1. "b";
  Event_queue.push q ~time:2. "c";
  Alcotest.(check (option string)) "match" (Some "a") (Event_queue.pop_if_at q ~time:1.);
  Alcotest.(check (option string)) "again" (Some "b") (Event_queue.pop_if_at q ~time:1.);
  Alcotest.(check (option string)) "no match" None (Event_queue.pop_if_at q ~time:1.);
  check_int "c remains" 1 (Event_queue.size q)

let test_eq_nan_rejected () =
  let q = Event_queue.create () in
  check_bool "nan" true
    (try
       Event_queue.push q ~time:Float.nan "x";
       false
     with Invalid_argument _ -> true)

let test_eq_no_leak () =
  (* Regression: popping used to leave the entry behind in the backing
     array (slots >= len), pinning every popped payload for the queue's
     lifetime. *)
  let q = Event_queue.create () in
  let payloads = List.init 32 (fun i -> ref i) in
  List.iteri (fun i p -> Event_queue.push q ~time:(float_of_int i) p) payloads;
  let popped, live =
    let rec split i acc = function
      | [] -> (List.rev acc, [])
      | rest when i = 0 -> (List.rev acc, rest)
      | p :: rest -> split (i - 1) (p :: acc) rest
    in
    split 20 [] payloads
  in
  List.iter (fun p -> assert (Option.get (Event_queue.pop q) |> snd == p)) popped;
  List.iter
    (fun p -> check_bool "popped payload released" false (Event_queue.retains q p))
    popped;
  List.iter (fun p -> check_bool "live payload retained" true (Event_queue.retains q p)) live;
  while not (Event_queue.is_empty q) do
    ignore (Event_queue.pop q)
  done;
  List.iter
    (fun p -> check_bool "drained payload released" false (Event_queue.retains q p))
    payloads

let prop_eq_heap_order =
  QCheck.Test.make ~name:"event queue pops in (time, seq) order" ~count:200
    QCheck.(list (float_bound_inclusive 100.))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:t i) times;
      let rec drain acc =
        match Event_queue.pop q with None -> List.rev acc | Some (t, i) -> drain ((t, i) :: acc)
      in
      let popped = drain [] in
      let rec ordered = function
        | [] | [ _ ] -> true
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && i1 < i2)) && ordered rest
      in
      List.length popped = List.length times && ordered popped)

(* ------------------------------------------------------------------ *)
(* Checkpoint arithmetic *)

let test_checkpoint_counts () =
  check_int "no work" 0 (Checkpoint.checkpoints_for_work ~interval:10. ~work:0.);
  check_int "less than interval" 0 (Checkpoint.checkpoints_for_work ~interval:10. ~work:5.);
  check_int "exact multiple skips final" 2 (Checkpoint.checkpoints_for_work ~interval:10. ~work:30.);
  check_int "10/3" 3 (Checkpoint.checkpoints_for_work ~interval:3. ~work:10.)

let test_checkpoint_wall_time () =
  check_float "no checkpoints" 5. (Checkpoint.wall_time ~interval:10. ~overhead:2. ~work:5.);
  check_float "3 checkpoints" (10. +. 6.) (Checkpoint.wall_time ~interval:3. ~overhead:2. ~work:10.)

let test_checkpoint_persisted () =
  (* interval 10, overhead 2: checkpoint k completes at 12k elapsed. *)
  check_float "before first" 0. (Checkpoint.persisted_at ~interval:10. ~overhead:2. ~work:100. ~elapsed:11.);
  check_float "after first" 10. (Checkpoint.persisted_at ~interval:10. ~overhead:2. ~work:100. ~elapsed:12.);
  check_float "after third" 30. (Checkpoint.persisted_at ~interval:10. ~overhead:2. ~work:100. ~elapsed:40.);
  (* capped at the number of checkpoints the job actually takes *)
  check_float "capped" 10. (Checkpoint.persisted_at ~interval:10. ~overhead:2. ~work:15. ~elapsed:1000.);
  check_float "non-positive elapsed" 0. (Checkpoint.persisted_at ~interval:10. ~overhead:2. ~work:100. ~elapsed:0.)

let test_checkpoint_interval_for () =
  let adaptive = Checkpoint.Adaptive { risky_interval = 5.; safe_interval = 50.; overhead = 1. } in
  check_float "risky" 5. (Checkpoint.interval_for adaptive ~risky:true);
  check_float "safe" 50. (Checkpoint.interval_for adaptive ~risky:false);
  check_float "periodic ignores risk" 7.
    (Checkpoint.interval_for (Checkpoint.Periodic { interval = 7.; overhead = 1. }) ~risky:true)

let test_young_interval () =
  check_float "sqrt(2*o*mtbf)" (sqrt (2. *. 60. *. 86400.))
    (Checkpoint.young_interval ~mtbf:86400. ~overhead:60.);
  check_bool "invalid" true
    (try
       ignore (Checkpoint.young_interval ~mtbf:0. ~overhead:1.);
       false
     with Invalid_argument _ -> true)

let test_mtbf_of_failures () =
  (* 100 failures over 1e6 s on 128 nodes, jobs of 16 nodes: a job is
     hit every 1e6 * 128 / (100 * 16) = 80k seconds. *)
  check_float "per-job mtbf" 80_000.
    (Checkpoint.mtbf_of_failures ~events:100 ~span:1e6 ~nodes_per_job:16. ~volume:128)

let test_checkpoint_validate () =
  check_bool "bad interval" true
    (try
       Checkpoint.validate (Checkpoint.Periodic { interval = 0.; overhead = 1. });
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Engine: hand-built scenarios *)

let mk_job ~id ~arrival ~size ~run_time =
  { Bgl_trace.Job_log.id; arrival; size; run_time; estimate = run_time }

(* ------------------------------------------------------------------ *)
(* Job lifecycle protocol: the full 3x4 (state, edge) matrix. The four
   legal cells apply and land in the right state; the eight illegal
   ones raise Illegal_transition and leave the job untouched. *)

let mk_run () =
  {
    Job.box = Box.make (Coord.make 0 0 0) (Shape.make 2 2 2);
    started = 0.;
    finish_time = 10.;
    generation = 0;
    work_at_start = 10.;
    interval = None;
  }

let job_in state =
  let j = Job.create (mk_job ~id:7 ~arrival:0. ~size:8 ~run_time:10.) ~volume:8 in
  (match state with
  | `Queued -> ()
  | `Running -> Job.transition j (Job.Start (mk_run ()))
  | `Completed ->
      Job.transition j (Job.Start (mk_run ()));
      Job.transition j Job.Complete);
  j

let state_name = function `Queued -> "queued" | `Running -> "running" | `Completed -> "completed"

let test_transition_matrix () =
  let edges () =
    [
      ("start", Job.Start (mk_run ()));
      ("migrate", Job.Migrate (mk_run ()));
      ("complete", Job.Complete);
      ("kill", Job.Kill);
    ]
  in
  let legal_cells =
    [ (`Queued, "start"); (`Running, "migrate"); (`Running, "complete"); (`Running, "kill") ]
  in
  List.iter
    (fun state ->
      List.iter
        (fun (edge_name, edge) ->
          let cell = Printf.sprintf "%s --%s-->" (state_name state) edge_name in
          let expect = List.mem (state, edge_name) legal_cells in
          let j = job_in state in
          check_bool (cell ^ " table") expect (Job.legal j.state edge);
          match Job.transition j edge with
          | () -> check_bool (cell ^ " applied") true expect
          | exception Job.Illegal_transition { job; _ } ->
              check_bool (cell ^ " rejected") false expect;
              check_int (cell ^ " names the job") 7 job;
              check_bool (cell ^ " state untouched") true (j.state = (job_in state).state))
        (edges ()))
    [ `Queued; `Running; `Completed ]

let test_transition_targets () =
  (* Each legal edge lands in the documented state, and a killed job
     can be restarted: the queued -> running -> queued -> running cycle
     is the engine's failure-restart path. *)
  let j = job_in `Queued in
  Job.transition j (Job.Start (mk_run ()));
  check_bool "start -> running" true (Job.is_running j);
  Job.transition j (Job.Migrate (mk_run ()));
  check_bool "migrate -> running" true (Job.is_running j);
  Job.transition j Job.Kill;
  check_bool "kill -> queued" true (Job.is_queued j);
  Job.transition j (Job.Start (mk_run ()));
  check_bool "restart after kill" true (Job.is_running j);
  Job.transition j Job.Complete;
  check_bool "complete -> completed" true (Job.is_completed j);
  check_bool "completed is terminal" false
    (List.exists
       (fun e -> Job.legal j.state e)
       [ Job.Start (mk_run ()); Job.Migrate (mk_run ()); Job.Complete; Job.Kill ])

let mk_log jobs = Bgl_trace.Job_log.make ~name:"test" jobs
let no_failures = Bgl_trace.Failure_log.make ~name:"none" []

let mk_failures events =
  Bgl_trace.Failure_log.make ~name:"test-failures"
    (List.map (fun (time, node) -> { Bgl_trace.Failure_log.time; node }) events)

let run ?config ?(policy = Bgl_sched.Placement.first_fit) ~log ~failures () =
  Engine.run ?config ~policy ~log ~failures ()

let test_single_job () =
  let log = mk_log [ mk_job ~id:0 ~arrival:100. ~size:8 ~run_time:1000. ] in
  let o = run ~log ~failures:no_failures () in
  check_bool "complete" true o.complete;
  let r = o.report in
  check_int "completed" 1 r.completed_jobs;
  check_float "wait" 0. r.avg_wait;
  check_float "response" 1000. r.avg_response;
  check_float "slowdown 1" 1. r.avg_bounded_slowdown;
  check_float "makespan" 1000. r.makespan;
  (* util: 8 nodes * 1000 s over 128 * 1000 s *)
  check_float "util" (8. /. 128.) r.util;
  check_float "unused (no queue demand)" (120. /. 128.) r.unused;
  check_float "lost" 0. r.lost

let test_two_jobs_sequential_on_full_machine () =
  (* Two whole-torus jobs: the second waits for the first. *)
  let log =
    mk_log
      [ mk_job ~id:0 ~arrival:0. ~size:128 ~run_time:100.; mk_job ~id:1 ~arrival:0. ~size:128 ~run_time:100. ]
  in
  let o = run ~log ~failures:no_failures () in
  let r = o.report in
  check_float "avg wait" 50. r.avg_wait;
  check_float "avg response" 150. r.avg_response;
  check_float "makespan" 200. r.makespan;
  check_float "util 1.0" 1. r.util;
  check_float "unused 0 (demand pending)" 0. r.unused

let test_parallel_jobs () =
  (* Two half-torus jobs run simultaneously. *)
  let log =
    mk_log
      [ mk_job ~id:0 ~arrival:0. ~size:64 ~run_time:100.; mk_job ~id:1 ~arrival:0. ~size:64 ~run_time:100. ]
  in
  let r = (run ~log ~failures:no_failures ()).report in
  check_float "no waiting" 0. r.avg_wait;
  check_float "makespan" 100. r.makespan;
  check_float "util 1.0" 1. r.util

let test_failure_kills_and_restarts () =
  (* One whole-torus job; a failure at t=40 kills it; it restarts and
     completes at 40 + 100. *)
  let log = mk_log [ mk_job ~id:0 ~arrival:0. ~size:128 ~run_time:100. ] in
  let o = run ~log ~failures:(mk_failures [ (40., 0) ]) () in
  let r = o.report in
  check_bool "complete" true o.complete;
  check_int "kills" 1 r.job_kills;
  check_int "restarts" 1 r.restarts;
  check_float "response includes rework" 140. r.avg_response;
  check_float "lost work" (128. *. 40.) r.lost_work;
  check_bool "lost capacity positive" true (r.lost > 0.)

let test_failure_on_free_node_harmless () =
  let log = mk_log [ mk_job ~id:0 ~arrival:0. ~size:1 ~run_time:100. ] in
  let o = run ~log ~failures:(mk_failures [ (50., 100) ]) () in
  check_int "no kills" 0 o.report.job_kills;
  check_float "response" 100. o.report.avg_response

let test_simultaneous_burst_kills_multiple_jobs () =
  (* Two 64-node jobs side by side; a burst at t=10 hits one node of
     each: both die. *)
  let log =
    mk_log
      [ mk_job ~id:0 ~arrival:0. ~size:64 ~run_time:100.; mk_job ~id:1 ~arrival:0. ~size:64 ~run_time:100. ]
  in
  let o = run ~log ~failures:(mk_failures [ (10., 0); (10., 127) ]) () in
  check_int "both killed" 2 o.report.job_kills;
  check_bool "both finish eventually" true o.complete

let test_repeated_failures_same_job () =
  let log = mk_log [ mk_job ~id:0 ~arrival:0. ~size:128 ~run_time:100. ] in
  let o = run ~log ~failures:(mk_failures [ (10., 0); (50., 1); (130., 2) ]) () in
  check_int "three kills" 3 o.report.job_kills;
  (* timeline: restart at 10, killed at 50 (40 in), restart, killed at
     130 (80 in), restart, completes at 230 *)
  check_float "response" 230. o.report.avg_response

let test_repair_time_blocks_node () =
  (* Whole-torus job arrives just after a failure; with repair time the
     node is down so the job must wait for the repair. *)
  let log = mk_log [ mk_job ~id:0 ~arrival:10. ~size:128 ~run_time:50. ] in
  let config = { Config.default with repair_time = 100. } in
  let o = run ~config ~log ~failures:(mk_failures [ (5., 3) ]) () in
  check_bool "complete" true o.complete;
  (* failure at 5, repair at 105, job starts then *)
  check_float "wait until repair" 95. o.report.avg_wait

let test_zero_repair_instant_reuse () =
  let log = mk_log [ mk_job ~id:0 ~arrival:10. ~size:128 ~run_time:50. ] in
  let o = run ~log ~failures:(mk_failures [ (5., 3) ]) () in
  check_float "no wait" 0. o.report.avg_wait

let test_checkpointed_job_resumes () =
  (* interval 20 + overhead 5: checkpoints complete at elapsed 25, 50...
     failure at elapsed 60 -> persisted 40, remaining 60. *)
  let log = mk_log [ mk_job ~id:0 ~arrival:0. ~size:128 ~run_time:100. ] in
  let config =
    { Config.default with checkpoint = Some (Checkpoint.Periodic { interval = 20.; overhead = 5. }) }
  in
  let o = run ~config ~log ~failures:(mk_failures [ (60., 0) ]) () in
  check_bool "complete" true o.complete;
  check_int "one kill" 1 o.report.job_kills;
  (* second run: work 60 -> ceil(60/20)-1 = 2 checkpoints -> wall 70;
     finishes at 60 + 70 = 130 *)
  check_float "response with resume" 130. o.report.avg_response;
  check_bool "checkpoints recorded" true (o.report.checkpoints > 0)

let test_checkpoint_overhead_without_failures () =
  (* work 100, interval 20, overhead 5 -> 4 checkpoints -> wall 120. *)
  let log = mk_log [ mk_job ~id:0 ~arrival:0. ~size:8 ~run_time:100. ] in
  let config =
    { Config.default with checkpoint = Some (Checkpoint.Periodic { interval = 20.; overhead = 5. }) }
  in
  let o = run ~config ~log ~failures:no_failures () in
  check_float "wall includes overhead" 120. o.report.avg_response;
  check_int "4 checkpoints" 4 o.report.checkpoints

let test_fcfs_order_without_backfill () =
  (* Three whole-torus jobs must run strictly in arrival order. *)
  let log =
    mk_log
      [
        mk_job ~id:0 ~arrival:0. ~size:128 ~run_time:10.;
        mk_job ~id:1 ~arrival:1. ~size:128 ~run_time:10.;
        mk_job ~id:2 ~arrival:2. ~size:128 ~run_time:10.;
      ]
  in
  let config = { Config.default with backfill = false } in
  let o = run ~config ~log ~failures:no_failures () in
  let starts =
    Array.to_list o.jobs
    |> List.map (fun (j : Job.t) -> (j.spec.id, Option.get j.first_start))
    |> List.sort compare
  in
  Alcotest.(check (list (pair int (float 1e-6)))) "strict FCFS" [ (0, 0.); (1, 10.); (2, 20.) ] starts

let test_queue_order_ties () =
  (* Three whole-torus jobs share one arrival time and are submitted out
     of id order; a fourth arrives earlier. The queue must serve them in
     (arrival, id) order regardless of submission order — the tie-break
     the set-backed queue encodes in its key. Backfill cannot reorder
     full-machine jobs, so both configurations must agree. *)
  let log =
    mk_log
      [
        mk_job ~id:5 ~arrival:10. ~size:128 ~run_time:10.;
        mk_job ~id:1 ~arrival:10. ~size:128 ~run_time:10.;
        mk_job ~id:3 ~arrival:10. ~size:128 ~run_time:10.;
        mk_job ~id:2 ~arrival:0. ~size:128 ~run_time:10.;
      ]
  in
  let starts_of config =
    let o = run ~config ~log ~failures:no_failures () in
    Array.to_list o.jobs
    |> List.map (fun (j : Job.t) -> (Option.get j.first_start, j.spec.id))
    |> List.sort compare
  in
  let expected = [ (0., 2); (10., 1); (20., 3); (30., 5) ] in
  let check_starts msg got = Alcotest.(check (list (pair (float 1e-6) int))) msg expected got in
  check_starts "arrival then id, no backfill" (starts_of { Config.default with backfill = false });
  check_starts "arrival then id, backfill on" (starts_of Config.default)

let test_backfill_fills_hole () =
  (* Job 0 takes half the torus; job 1 wants the whole torus and must
     wait; job 2 is small and short: backfilling runs it in the hole
     without delaying job 1. *)
  let log =
    mk_log
      [
        mk_job ~id:0 ~arrival:0. ~size:64 ~run_time:100.;
        mk_job ~id:1 ~arrival:1. ~size:128 ~run_time:10.;
        mk_job ~id:2 ~arrival:2. ~size:8 ~run_time:50.;
      ]
  in
  let o = run ~log ~failures:no_failures () in
  let start id =
    Option.get
      (Array.to_list o.jobs
      |> List.find_map (fun (j : Job.t) -> if j.spec.id = id then j.first_start else None))
  in
  check_float "small job backfilled immediately" 2. (start 2);
  check_float "head job not delayed" 100. (start 1)

let test_backfill_respects_reservation () =
  (* Like above, but the backfill candidate is long: starting it
     anywhere would be fine spatially, but it would overlap the whole
     torus reservation of job 1 and outlive the shadow time... with
     size 64 it can only use the reserved space, so it must NOT start
     before job 1. *)
  let log =
    mk_log
      [
        mk_job ~id:0 ~arrival:0. ~size:64 ~run_time:100.;
        mk_job ~id:1 ~arrival:1. ~size:128 ~run_time:10.;
        mk_job ~id:2 ~arrival:2. ~size:64 ~run_time:5000.;
      ]
  in
  let o = run ~log ~failures:no_failures () in
  let start id =
    Option.get
      (Array.to_list o.jobs
      |> List.find_map (fun (j : Job.t) -> if j.spec.id = id then j.first_start else None))
  in
  check_float "head job starts on time" 100. (start 1);
  check_bool "long job waits for head" true (start 2 >= 110.)

let test_oversize_jobs_dropped () =
  let log =
    mk_log [ mk_job ~id:0 ~arrival:0. ~size:500 ~run_time:10.; mk_job ~id:1 ~arrival:0. ~size:1 ~run_time:10. ]
  in
  let o = run ~log ~failures:no_failures () in
  check_int "dropped" 1 o.dropped_jobs;
  check_int "admitted" 1 o.report.total_jobs;
  let config = { Config.default with drop_oversize = false } in
  check_bool "raises when configured" true
    (try
       ignore (run ~config ~log ~failures:no_failures ());
       false
     with Invalid_argument _ -> true)

let test_migration_defragments () =
  (* Fragmentation scenario on a 4-node line (no wraparound): jobs A
     and B occupy alternating cells; C needs 2 contiguous. Without
     migration C waits for a finish; with migration the machine
     repacks A and B so C starts immediately. *)
  let dims = Dims.make 4 1 1 in
  let config = { Config.default with dims; wrap = false; backfill = false } in
  (* Arrange occupancy (A at cell 0, B at cell 2) via sizes/arrivals:
     A size 1 arrives first, dummy D size 1 second (cell 1), B size 1
     third (cell 2)... first-fit fills 0,1,2. Then D finishes early,
     leaving holes at 1. C size 2 arrives: free cells are 1 and 3 -
     not contiguous. *)
  let log =
    mk_log
      [
        mk_job ~id:0 ~arrival:0. ~size:1 ~run_time:1000.;
        mk_job ~id:1 ~arrival:0. ~size:1 ~run_time:10.;
        mk_job ~id:2 ~arrival:0. ~size:1 ~run_time:1000.;
        mk_job ~id:3 ~arrival:20. ~size:2 ~run_time:10.;
      ]
  in
  let start outcome id =
    Array.to_list outcome.Engine.jobs
    |> List.find_map (fun (j : Job.t) -> if j.spec.id = id then j.first_start else None)
    |> Option.get
  in
  let without = run ~config ~log ~failures:no_failures () in
  check_float "blocked until a long job ends" 1000. (start without 3);
  let with_migration = run ~config:{ config with migration = true } ~log ~failures:no_failures () in
  check_float "starts immediately after repack" 20. (start with_migration 3);
  check_bool "migrations recorded" true (with_migration.report.migrations > 0)

let test_candidate_cap_still_schedules () =
  (* Capping candidate evaluation must not change completeness. *)
  let log =
    mk_log (List.init 30 (fun id -> mk_job ~id ~arrival:(float_of_int id) ~size:(1 + (id mod 16)) ~run_time:50.))
  in
  List.iter
    (fun cap ->
      let config = { Config.default with candidate_cap = cap } in
      let o = run ~config ~policy:Bgl_sched.Placement.mfp ~log ~failures:no_failures () in
      check_bool "complete" true o.complete)
    [ Some 1; Some 4; None ]

let test_no_wrap_config () =
  (* Wraparound off: the same workload still completes; boxes never
     wrap (checked indirectly by the engine's own grid assertions). *)
  let config = { Config.default with wrap = false } in
  let log =
    mk_log (List.init 20 (fun id -> mk_job ~id ~arrival:(float_of_int id) ~size:(1 + (id mod 32)) ~run_time:100.))
  in
  let o = run ~config ~log ~failures:(mk_failures [ (50., 3); (120., 7) ]) () in
  check_bool "complete" true o.complete

let test_backfill_depth_zero () =
  (* depth 0: backfilling scans nobody, so strict FCFS order holds even
     with backfill enabled. *)
  let config = { Config.default with backfill = true; backfill_depth = 0 } in
  let log =
    mk_log
      [
        mk_job ~id:0 ~arrival:0. ~size:64 ~run_time:100.;
        mk_job ~id:1 ~arrival:1. ~size:128 ~run_time:10.;
        mk_job ~id:2 ~arrival:2. ~size:1 ~run_time:5.;
      ]
  in
  let o = run ~config ~log ~failures:no_failures () in
  let start id =
    Option.get
      (Array.to_list o.jobs
      |> List.find_map (fun (j : Job.t) -> if j.spec.id = id then j.first_start else None))
  in
  check_bool "small job not backfilled" true (start 2 >= 110.)

let test_empty_log_runs () =
  let o = run ~log:(mk_log []) ~failures:no_failures () in
  check_int "no jobs" 0 o.report.total_jobs;
  check_bool "complete" true o.complete

let test_adaptive_checkpoint_uses_prediction () =
  (* One doomed whole-torus job: with an adaptive spec and an oracle
     predictor, the run checkpoints at the risky interval; with the
     null predictor it uses the safe (huge) interval and loses
     everything at the failure. *)
  let log = mk_log [ mk_job ~id:0 ~arrival:0. ~size:128 ~run_time:100. ] in
  let failures = mk_failures [ (60., 0) ] in
  let config =
    {
      Config.default with
      checkpoint =
        Some (Checkpoint.Adaptive { risky_interval = 20.; safe_interval = 1e6; overhead = 5. });
    }
  in
  let index =
    Bgl_predict.Failure_index.of_log
      (Bgl_trace.Failure_log.make ~name:"t" [ { Bgl_trace.Failure_log.time = 60.; node = 0 } ])
  in
  let with_oracle =
    Engine.run ~config ~predictor:(Bgl_predict.Predictor.oracle index)
      ~policy:Bgl_sched.Placement.first_fit ~log ~failures ()
  in
  let with_null = Engine.run ~config ~policy:Bgl_sched.Placement.first_fit ~log ~failures () in
  (* oracle: the first run is flagged risky, checkpointing every 20 s
     of work (25 s wall each); the failure at 60 leaves 40 s persisted.
     The restart's window (60, 160] no longer contains the (spent)
     event, so it runs safe with no checkpoints: 60 + 60 = 120.
     null: nothing persisted, restart from scratch: 60 + 100 = 160. *)
  check_float "oracle-driven resume" 120. with_oracle.report.avg_response;
  check_float "null predictor restarts from zero" 160. with_null.report.avg_response;
  check_bool "oracle run checkpoints more" true
    (with_oracle.report.checkpoints > with_null.report.checkpoints)

(* ------------------------------------------------------------------ *)
(* Recorder *)

let test_recorder_lifecycle () =
  let log = mk_log [ mk_job ~id:7 ~arrival:0. ~size:128 ~run_time:100. ] in
  let recorder = Recorder.create () in
  let _ =
    Engine.run ~recorder ~policy:Bgl_sched.Placement.first_fit ~log
      ~failures:(mk_failures [ (40., 3) ]) ()
  in
  (* meta, arrival, start, node-failed+kill, restart, finish, summary *)
  check_int "entry count" 8 (Recorder.length recorder);
  (match Recorder.entries recorder with
  | [ Recorder.Run_meta m; Recorder.Job_arrived a; Recorder.Job_started s1; Recorder.Job_killed k;
      Recorder.Node_failed nf; Recorder.Job_started s2; Recorder.Job_finished f;
      Recorder.Run_summary summary ] ->
      check_int "meta job count" 1 m.jobs;
      check_bool "meta has no parent" true (m.parent = None);
      check_int "arrival job id" 7 a.job;
      check_int "arrival size" 128 a.size;
      check_int "job id" 7 s1.job;
      check_bool "first start not restart" false s1.restart;
      check_float "kill time" 40. k.time;
      check_int "killing node" 3 k.node;
      Alcotest.(check (option int)) "victim" (Some 7) nf.victim;
      check_bool "second start is restart" true s2.restart;
      check_float "finish" 140. f.time;
      check_int "summary completions" 1 summary.report.completed_jobs
  | entries ->
      Alcotest.failf "unexpected trace: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" Recorder.pp_entry) entries)));
  Alcotest.(check (list (pair (float 1e-6) int))) "kills_of" [ (40., 3) ]
    (Recorder.kills_of recorder ~job:7);
  check_int "two starts" 2 (List.length (Recorder.starts_of recorder ~job:7));
  Alcotest.(check (option (pair int int))) "busiest victim" (Some (7, 1))
    (Recorder.busiest_victim recorder)

let test_recorder_repair_entries () =
  (* repair at t=6, before the simulation drains at t=15 *)
  let log = mk_log [ mk_job ~id:0 ~arrival:10. ~size:1 ~run_time:5. ] in
  let recorder = Recorder.create () in
  let config = { Config.default with repair_time = 5. } in
  let _ =
    Engine.run ~recorder ~config ~policy:Bgl_sched.Placement.first_fit ~log
      ~failures:(mk_failures [ (1., 99) ]) ()
  in
  let entries = Recorder.entries recorder in
  check_bool "node failure recorded (idle)" true
    (List.exists (function Recorder.Node_failed { victim = None; node = 99; _ } -> true | _ -> false) entries);
  check_bool "repair recorded" true
    (List.exists (function Recorder.Node_repaired { node = 99; _ } -> true | _ -> false) entries)

let test_recorder_streaming_accessors () =
  (* A streaming recorder retains no entries; the forensic accessors
     must refuse loudly instead of silently answering from nothing. *)
  let null = Bgl_obs.Sink.null () in
  let recorder = Recorder.create ~sink:null () in
  let log = mk_log [ mk_job ~id:0 ~arrival:0. ~size:1 ~run_time:5. ] in
  let _ = Engine.run ~recorder ~policy:Bgl_sched.Placement.first_fit ~log ~failures:no_failures () in
  check_bool "not buffered" false (Recorder.is_buffered recorder);
  check_bool "entries empty" true (Recorder.entries recorder = []);
  check_bool "length still counts" true (Recorder.length recorder > 0);
  let raises fn =
    match fn () with
    | (_ : (float * Box.t) list) -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "starts_of raises" true (raises (fun () -> Recorder.starts_of recorder ~job:0));
  check_bool "kills_of raises" true
    (match Recorder.kills_of recorder ~job:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "busiest_victim raises" true
    (match Recorder.busiest_victim recorder with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_recorder_migration_entry () =
  let dims = Dims.make 4 1 1 in
  let config = { Config.default with dims; wrap = false; backfill = false; migration = true } in
  let log =
    mk_log
      [
        mk_job ~id:0 ~arrival:0. ~size:1 ~run_time:1000.;
        mk_job ~id:1 ~arrival:0. ~size:1 ~run_time:10.;
        mk_job ~id:2 ~arrival:0. ~size:1 ~run_time:1000.;
        mk_job ~id:3 ~arrival:20. ~size:2 ~run_time:10.;
      ]
  in
  let recorder = Recorder.create () in
  let _ = Engine.run ~recorder ~config ~policy:Bgl_sched.Placement.first_fit ~log ~failures:no_failures () in
  check_bool "migration recorded" true
    (List.exists
       (function Recorder.Job_migrated _ -> true | _ -> false)
       (Recorder.entries recorder))

(* ------------------------------------------------------------------ *)
(* Whole-simulation properties *)

let random_scenario_gen =
  QCheck.Gen.(
    map3
      (fun n_jobs n_failures seed -> (n_jobs, n_failures, seed))
      (int_range 1 60) (int_range 0 30) small_int)

let arb_scenario =
  QCheck.make
    ~print:(fun (j, f, s) -> Printf.sprintf "jobs=%d failures=%d seed=%d" j f s)
    random_scenario_gen

let build_scenario (n_jobs, n_failures, seed) =
  let rng = Bgl_stats.Rng.create ~seed in
  let jobs =
    List.init n_jobs (fun id ->
        mk_job ~id
          ~arrival:(Bgl_stats.Rng.float rng 5000.)
          ~size:(1 + Bgl_stats.Rng.int rng 128)
          ~run_time:(1. +. Bgl_stats.Rng.float rng 2000.))
  in
  let failures =
    mk_failures
      (List.init n_failures (fun _ ->
           (Bgl_stats.Rng.float rng 20000., Bgl_stats.Rng.int rng 128)))
  in
  (mk_log jobs, failures)

let policies =
  [
    ("first-fit", fun _ -> Bgl_sched.Placement.first_fit);
    ("mfp", fun _ -> Bgl_sched.Placement.mfp);
    ( "balancing",
      fun failures ->
        Bgl_sched.Placement.balancing
          ~predictor:
            (Bgl_predict.Predictor.balancing ~confidence:0.5
               (Bgl_predict.Failure_index.of_log failures))
          () );
    ( "tie-breaking",
      fun failures ->
        Bgl_sched.Placement.tie_breaking
          ~predictor:
            (Bgl_predict.Predictor.tie_breaking ~accuracy:0.5 ~seed:1
               (Bgl_predict.Failure_index.of_log failures))
          () );
  ]

let prop_all_jobs_complete =
  QCheck.Test.make ~name:"every admitted job completes under every policy" ~count:40 arb_scenario
    (fun params ->
      let log, failures = build_scenario params in
      List.for_all
        (fun (_, mk_policy) ->
          let o = Engine.run ~policy:(mk_policy failures) ~log ~failures () in
          o.complete)
        policies)

let prop_capacity_identity =
  QCheck.Test.make ~name:"util + unused + lost = 1" ~count:40 arb_scenario (fun params ->
      let log, failures = build_scenario params in
      QCheck.assume (Bgl_trace.Job_log.length log > 0);
      let o = Engine.run ~policy:Bgl_sched.Placement.mfp ~log ~failures () in
      let r = o.report in
      r.makespan <= 0. || abs_float (r.util +. r.unused +. r.lost -. 1.) < 1e-6)

let prop_metric_sanity =
  QCheck.Test.make ~name:"waits/responses/slowdowns are sane" ~count:40 arb_scenario
    (fun params ->
      let log, failures = build_scenario params in
      let o = Engine.run ~policy:Bgl_sched.Placement.first_fit ~log ~failures () in
      Array.for_all
        (fun (j : Job.t) ->
          (not (Job.is_completed j))
          || Job.wait_time j >= 0.
             && Job.response_time j >= j.spec.run_time -. 1e-6
             && Job.bounded_slowdown j >= 1. -. 1e-9)
        o.jobs)

let prop_deterministic =
  QCheck.Test.make ~name:"simulation is deterministic" ~count:15 arb_scenario (fun params ->
      let log, failures = build_scenario params in
      let run () =
        (Engine.run ~policy:Bgl_sched.Placement.mfp ~log ~failures ()).report
      in
      run () = run ())

let prop_migration_safe =
  (* Regression: migration commits must never double-book nodes (the
     Grid raises if they do), and every job still completes. *)
  QCheck.Test.make ~name:"migration never double-books and completes" ~count:25 arb_scenario
    (fun params ->
      let log, failures = build_scenario params in
      let config = { Config.default with migration = true; migration_overhead = 30. } in
      let o = Engine.run ~config ~policy:Bgl_sched.Placement.mfp ~log ~failures () in
      o.complete)

let prop_busy_covers_util =
  QCheck.Test.make ~name:"busy fraction >= useful utilization" ~count:40 arb_scenario
    (fun params ->
      let log, failures = build_scenario params in
      QCheck.assume (Bgl_trace.Job_log.length log > 0);
      let r = (Engine.run ~policy:Bgl_sched.Placement.first_fit ~log ~failures ()).report in
      (* Busy time includes destroyed work and the volume rounding, so
         it can only exceed the size-based useful utilization. *)
      r.makespan <= 0. || r.busy_fraction >= r.util -. 1e-6)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_eq_heap_order;
      prop_all_jobs_complete;
      prop_capacity_identity;
      prop_metric_sanity;
      prop_deterministic;
      prop_migration_safe;
      prop_busy_covers_util;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgl_sim"
    [
      ( "event_queue",
        [
          tc "order" test_eq_order;
          tc "fifo ties" test_eq_fifo_on_ties;
          tc "pop_if_at" test_eq_pop_if_at;
          tc "nan rejected" test_eq_nan_rejected;
          tc "no space leak" test_eq_no_leak;
        ] );
      ( "checkpoint",
        [
          tc "counts" test_checkpoint_counts;
          tc "wall time" test_checkpoint_wall_time;
          tc "persisted" test_checkpoint_persisted;
          tc "interval_for" test_checkpoint_interval_for;
          tc "young interval" test_young_interval;
          tc "mtbf of failures" test_mtbf_of_failures;
          tc "validate" test_checkpoint_validate;
        ] );
      ( "lifecycle",
        [
          tc "transition matrix" test_transition_matrix;
          tc "transition targets" test_transition_targets;
        ] );
      ( "engine",
        [
          tc "single job" test_single_job;
          tc "sequential full-machine jobs" test_two_jobs_sequential_on_full_machine;
          tc "parallel jobs" test_parallel_jobs;
          tc "failure kills and restarts" test_failure_kills_and_restarts;
          tc "failure on free node" test_failure_on_free_node_harmless;
          tc "simultaneous burst" test_simultaneous_burst_kills_multiple_jobs;
          tc "repeated failures" test_repeated_failures_same_job;
          tc "repair time" test_repair_time_blocks_node;
          tc "zero repair" test_zero_repair_instant_reuse;
          tc "checkpoint resume" test_checkpointed_job_resumes;
          tc "checkpoint overhead" test_checkpoint_overhead_without_failures;
          tc "FCFS order" test_fcfs_order_without_backfill;
          tc "queue ties: arrival then id" test_queue_order_ties;
          tc "backfill fills hole" test_backfill_fills_hole;
          tc "backfill reservation" test_backfill_respects_reservation;
          tc "oversize dropped" test_oversize_jobs_dropped;
          tc "migration defragments" test_migration_defragments;
          tc "candidate cap" test_candidate_cap_still_schedules;
          tc "no wraparound" test_no_wrap_config;
          tc "backfill depth zero" test_backfill_depth_zero;
          tc "adaptive checkpoint prediction" test_adaptive_checkpoint_uses_prediction;
          tc "empty log" test_empty_log_runs;
        ] );
      ( "recorder",
        [
          tc "lifecycle entries" test_recorder_lifecycle;
          tc "repair entries" test_recorder_repair_entries;
          tc "migration entry" test_recorder_migration_entry;
          tc "streaming accessors raise" test_recorder_streaming_accessors;
        ] );
      ("properties", props);
    ]
