(* Walkthrough of the paper's Figures 1 and 2: how the MFP heuristic
   chooses placements and how fault prediction changes the choice.

     dune exec examples/placement_walkthrough.exe *)

open Bgl_torus

let show_grid title grid = Format.printf "%s@.%a@." title Grid.pp grid

(* Figure 1: placing a job flush against existing allocations preserves
   a larger maximal free partition than splitting the free space. *)
let figure1 () =
  Format.printf "== Figure 1: the MFP heuristic ==@.";
  let dims = Dims.make 4 4 1 in
  let grid = Grid.create ~wrap:false dims in
  Grid.occupy grid (Box.make (Coord.make 0 0 0) (Shape.make 2 2 1)) ~owner:0;
  show_grid "torus (z=0 plane shown; A = running job):" grid;
  let adjacent = Box.make (Coord.make 2 0 0) (Shape.make 2 1 1) in
  let middle = Box.make (Coord.make 1 2 0) (Shape.make 2 1 1) in
  Format.printf "MFP before placement: %d@." (Bgl_partition.Mfp.volume grid);
  Format.printf "placement (a) in the middle of free space %a: MFP after = %d@." Box.pp middle
    (Bgl_partition.Mfp.volume_after grid middle);
  Format.printf "placement (b) flush against the job %a: MFP after = %d@." Box.pp adjacent
    (Bgl_partition.Mfp.volume_after grid adjacent);
  Format.printf "the scheduler prefers (b), which keeps the larger MFP.@.@."

(* Figure 2 (a)/(b): a larger-MFP placement on nodes predicted to fail
   versus a smaller-MFP stable placement; the balancing algorithm's
   E_loss = L_MFP + P_f * s decides, so the prediction confidence tips
   the choice. *)
let figure2 () =
  Format.printf "== Figure 2: balancing MFP loss against predicted failures ==@.";
  let dims = Dims.make 4 4 1 in
  let grid = Grid.create ~wrap:false dims in
  (* Two running jobs shape the free space so that the placement with
     the smallest MFP loss (the column at x=2) sits on a node that is
     about to fail, while a stable 2x2 placement costs one extra unit
     of MFP - exactly the trade-off of the paper's Figure 2(a)/(b). *)
  Grid.occupy grid (Box.make (Coord.make 0 0 0) (Shape.make 2 4 1)) ~owner:0;
  Grid.occupy grid (Box.make (Coord.make 3 3 0) (Shape.make 1 1 1)) ~owner:1;
  let doomed_nodes = [ Coord.index dims (Coord.make 2 0 0) ] in
  let failures =
    Bgl_trace.Failure_log.make ~name:"figure2"
      (List.map (fun node -> { Bgl_trace.Failure_log.time = 500.; node }) doomed_nodes)
  in
  let index = Bgl_predict.Failure_index.of_log failures in
  show_grid "torus (A, B = running jobs; node (2,0,0) will fail at t=500):" grid;
  let job = { Bgl_trace.Job_log.id = 1; arrival = 0.; size = 4; run_time = 1000.; estimate = 1000. } in
  let candidates = Bgl_partition.Finder.find Bgl_partition.Finder.Prefix grid ~volume:4 in
  Format.printf "candidates for the 4-node job: %d partitions@." (List.length candidates);
  List.iter
    (fun confidence ->
      let predictor = Bgl_predict.Predictor.balancing ~confidence index in
      let policy = Bgl_sched.Placement.balancing ~predictor () in
      let ctx = Bgl_sim.Policy.make_ctx ~now:0. grid in
      match policy.choose ctx ~job ~volume:4 ~candidates with
      | Some box ->
          let doomed = List.exists (fun n -> List.mem n (Box.indices dims box)) doomed_nodes in
          Format.printf "confidence %.1f -> places at %a%s@." confidence Box.pp box
            (if doomed then "  (on doomed nodes!)" else "  (stable)")
      | None -> Format.printf "confidence %.1f -> declines@." confidence)
    [ 0.0; 0.1; 0.5; 0.9 ];
  Format.printf "@."

(* Figure 2 (c)/(d): two placements with the same MFP loss; the
   tie-breaking algorithm picks the one the boolean predictor calls
   safe. *)
let figure2_tiebreak () =
  Format.printf "== Figure 2(c,d): tie-breaking between equal-MFP placements ==@.";
  let dims = Dims.make 4 2 1 in
  let grid = Grid.create ~wrap:false dims in
  Grid.occupy grid (Box.make (Coord.make 1 0 0) (Shape.make 2 2 1)) ~owner:0;
  (* Free columns x=0 and x=3 are symmetric: identical MFP loss. Column
     x=0 is doomed. *)
  let doomed = [ Coord.index dims (Coord.make 0 0 0) ] in
  let failures =
    Bgl_trace.Failure_log.make ~name:"figure2cd"
      (List.map (fun node -> { Bgl_trace.Failure_log.time = 100.; node }) doomed)
  in
  let index = Bgl_predict.Failure_index.of_log failures in
  show_grid "torus (free columns x=0 and x=3; x=0 will fail):" grid;
  let job = { Bgl_trace.Job_log.id = 2; arrival = 0.; size = 2; run_time = 600.; estimate = 600. } in
  let candidates = Bgl_partition.Finder.find Bgl_partition.Finder.Prefix grid ~volume:2 in
  let predictor = Bgl_predict.Predictor.tie_breaking ~accuracy:1.0 ~seed:3 index in
  let policy = Bgl_sched.Placement.tie_breaking ~predictor () in
  let ctx = Bgl_sim.Policy.make_ctx ~now:0. grid in
  (match policy.choose ctx ~job ~volume:2 ~candidates with
  | Some box ->
      Format.printf "tie-breaking picks %a (avoids the doomed column)@." Box.pp box;
      assert (not (List.exists (fun n -> List.mem n (Box.indices dims box)) doomed))
  | None -> assert false);
  Format.printf "@."

let () =
  figure1 ();
  figure2 ();
  figure2_tiebreak ()
