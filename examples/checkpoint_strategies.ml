(* Checkpoint strategies (the paper's first future-work item): compare
   no checkpointing, fixed periodic intervals, and the
   prediction-coupled adaptive policy that checkpoints aggressively
   only on placements the predictor flags as doomed.

     dune exec examples/checkpoint_strategies.exe *)

let () =
  let log =
    Bgl_workload.Synthetic.generate
      { profile = Bgl_workload.Profile.sdsc; n_jobs = 800; max_nodes = 128; seed = 21 }
  in
  let failures =
    Bgl_failure.Generator.generate
      (Bgl_failure.Generator.default
         ~span:(Bgl_trace.Job_log.span log *. 1.5)
         ~volume:128 ~n_events:250 ~seed:22)
  in
  let index = Bgl_predict.Failure_index.of_log failures in
  let predictor = Bgl_predict.Predictor.tie_breaking ~accuracy:0.7 ~seed:23 index in
  let policy = Bgl_sched.Placement.tie_breaking ~predictor () in
  let overhead = 120. in
  let strategies =
    [
      ("none (paper's setting)", None);
      ("periodic 30 min", Some (Bgl_sim.Checkpoint.Periodic { interval = 1800.; overhead }));
      ("periodic 2 h", Some (Bgl_sim.Checkpoint.Periodic { interval = 7200.; overhead }));
      ( "adaptive (30 min doomed / 4 h safe)",
        Some
          (Bgl_sim.Checkpoint.Adaptive
             { risky_interval = 1800.; safe_interval = 14400.; overhead }) );
    ]
  in
  Format.printf "%-36s %10s %10s %12s %12s@." "strategy" "slowdown" "util" "lost work" "checkpoints";
  List.iter
    (fun (name, checkpoint) ->
      let config = { Bgl_sim.Config.default with checkpoint } in
      let outcome = Bgl_sim.Engine.run ~config ~predictor ~policy ~log ~failures () in
      let r = outcome.report in
      Format.printf "%-36s %10.1f %10.3f %12.3g %12d@." name r.avg_bounded_slowdown r.util
        r.lost_work r.checkpoints)
    strategies;
  Format.printf
    "@.Adaptive checkpointing pays overhead only on the placements the predictor distrusts; \
     whether that beats blanket periodic checkpointing depends on the overhead and the \
     predictor's recall - compare the rows above (and see the ablate-adaptive bench).@."
